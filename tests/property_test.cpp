//===- tests/property_test.cpp - Cross-cutting property sweeps ------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Property-based sweeps over random programs: parser round-trips, SEQ
// machine state invariants (permission/written-set discipline of Fig. 1),
// refinement reflexivity, and optimizer idempotence + validation.
//
//===----------------------------------------------------------------------===//

#include "adequacy/RandomProgram.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "seq/BehaviorEnum.h"
#include "seq/SimpleRefinement.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

using namespace pseq;

//===----------------------------------------------------------------------===
// Parser round-trip: parse ∘ print ∘ parse = parse.
//===----------------------------------------------------------------------===

TEST(ParserPropertyTest, RoundTripOnRandomPrograms) {
  Rng R(99);
  for (unsigned Iter = 0; Iter != 200; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    for (const std::string *Text : {&Pair.Src, &Pair.Tgt}) {
      auto P1 = prog(*Text);
      std::string Printed = printProgram(*P1);
      auto P2 = prog(Printed);
      ASSERT_TRUE(sameLayout(*P1, *P2)) << Printed;
      ASSERT_TRUE(
          stmtStructurallyEquals(P1->thread(0).Body, P2->thread(0).Body))
          << "round-trip mismatch:\n"
          << *Text << "\nvs\n"
          << Printed;
    }
  }
}

TEST(ParserPropertyTest, PrintIsStable) {
  // print ∘ parse ∘ print = print (idempotence of normal form).
  Rng R(7);
  for (unsigned Iter = 0; Iter != 50; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    auto P1 = prog(Pair.Src);
    std::string Once = printProgram(*P1);
    auto P2 = prog(Once);
    EXPECT_EQ(Once, printProgram(*P2));
  }
}

//===----------------------------------------------------------------------===
// SEQ machine invariants (Fig. 1 discipline) over random programs.
//===----------------------------------------------------------------------===

namespace {

struct SeqStateHash {
  size_t operator()(const SeqState &S) const {
    return static_cast<size_t>(S.hash());
  }
};

/// Walks all reachable SEQ states/transitions checking structural
/// invariants; returns the number of transitions checked.
unsigned checkSeqInvariants(const Program &P, const SeqConfig &Cfg) {
  SeqMachine M(P, 0, Cfg);
  unsigned Checked = 0;
  for (const SeqState &Init : enumerateInitialStates(M)) {
    std::unordered_set<SeqState, SeqStateHash> Visited;
    std::deque<SeqState> Work{Init};
    Visited.insert(Init);
    unsigned Budget = 4000;
    while (!Work.empty() && Budget--) {
      SeqState S = Work.front();
      Work.pop_front();
      EXPECT_TRUE(S.Perm.isSubsetOf(Cfg.Universe))
          << "P must stay within the universe";
      for (const SeqTransition &T : M.successors(S)) {
        ++Checked;
        const SeqState &N = T.Next;
        // F only grows except at releases, which reset it.
        bool HasRelease = false, HasAcquire = false;
        for (const SeqEvent &E : T.Labels) {
          HasRelease |= E.isRelease();
          HasAcquire |= E.isAcquire();
          if (E.isAcquire()) {
            EXPECT_TRUE(E.P.isSubsetOf(E.P2)) << "acquire gains permissions";
            EXPECT_EQ(E.Vm.domain(), E.P2.setMinus(E.P))
                << "acquired values cover exactly the gained locations";
          }
          if (E.isRelease()) {
            EXPECT_TRUE(E.P2.isSubsetOf(E.P)) << "release loses permissions";
            EXPECT_EQ(E.Vm.domain(), E.P)
                << "released memory is M restricted to P";
          }
        }
        if (HasRelease) {
          EXPECT_TRUE(N.Written.isEmpty() ||
                      N.Written.isSubsetOf(S.Written.unionWith(N.Written)))
              << "release resets F (modulo a later RMW write)";
        }
        if (!HasRelease && !HasAcquire) {
          EXPECT_TRUE(S.Written.isSubsetOf(N.Written))
              << "F never shrinks between releases";
        }
        if (Visited.insert(N).second)
          Work.push_back(N);
      }
    }
  }
  return Checked;
}

} // namespace

TEST(SeqInvariantTest, HoldOnRandomPrograms) {
  Rng R(4242);
  unsigned TotalChecked = 0;
  for (unsigned Iter = 0; Iter != 25; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    auto P = prog(Pair.Src);
    SeqConfig Cfg;
    Cfg.Domain = ValueDomain::binary();
    Cfg.Universe = P->naLocs();
    TotalChecked += checkSeqInvariants(*P, Cfg);
  }
  EXPECT_GT(TotalChecked, 1000u) << "sweep must exercise real transitions";
}

//===----------------------------------------------------------------------===
// Refinement is reflexive on random programs (a cheap soundness canary:
// any asymmetry in label generation between "source" and "target" machine
// instances would break it).
//===----------------------------------------------------------------------===

TEST(RefinementPropertyTest, ReflexiveOnRandomPrograms) {
  Rng R(1234);
  for (unsigned Iter = 0; Iter != 40; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    auto A = prog(Pair.Src);
    auto B = prog(Pair.Src);
    SeqConfig Cfg;
    Cfg.Domain = ValueDomain::binary();
    RefinementResult Res = checkSimpleRefinement(*A, *B, Cfg);
    ASSERT_TRUE(Res.Holds) << Pair.Src << "\n" << Res.Counterexample;
  }
}

//===----------------------------------------------------------------------===
// The optimizer pipeline always validates and is idempotent on random
// programs (its output is a fixpoint).
//===----------------------------------------------------------------------===

TEST(OptimizerPropertyTest, ValidatedAndIdempotentOnRandomPrograms) {
  Rng R(31337);
  unsigned Rewrote = 0;
  for (unsigned Iter = 0; Iter != 40; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    auto P = prog(Pair.Src);
    PipelineOptions Opts;
    Opts.Cfg.Domain = ValueDomain::ternary();
    PipelineResult First = runPipeline(*P, Opts);
    ASSERT_TRUE(First.AllValidated) << Pair.Src;
    Rewrote += First.TotalRewrites > 0;

    PipelineResult Second = runPipeline(*First.Prog, Opts);
    EXPECT_EQ(Second.TotalRewrites, 0u)
        << "pipeline not idempotent on\n"
        << Pair.Src << "\nfirst output:\n"
        << printProgram(*First.Prog) << "\nsecond output:\n"
        << printProgram(*Second.Prog);
  }
  EXPECT_GT(Rewrote, 5u) << "sweep must exercise real rewrites";
}
