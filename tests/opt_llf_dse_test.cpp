//===- tests/opt_llf_dse_test.cpp - LLF and DSE passes (E7/E8) ------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Appendix D's load-to-load forwarding (Fig. 8a) and backward dead-store
// elimination (Fig. 8b), with translation validation on every rewrite —
// including the •-token DSE across a release write, which only the
// advanced refinement accepts (Example 3.5).
//
//===----------------------------------------------------------------------===//

#include "opt/DseAnalysis.h"
#include "opt/LlfAnalysis.h"
#include "opt/Pipeline.h"

#include "lang/Printer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

//===----------------------------------------------------------------------===
// LLF (Fig. 8a)
//===----------------------------------------------------------------------===

TEST(LlfTest, ForwardsSecondLoad) {
  auto P = prog("na x;\nthread { a := x@na; b := x@na; return b; }");
  PassResult R = runLlfPass(*P);
  EXPECT_EQ(R.Rewrites, 1u);
  ValidationResult V = validateTransform(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
  std::string Printed = printProgram(*R.Prog);
  EXPECT_NE(Printed.find("b := a;"), std::string::npos) << Printed;
}

TEST(LlfTest, ForwardsAcrossRelaxedAndRelease) {
  for (const char *Beta : {"y@rlx := 1;", "s := y@rlx;", "y@rel := 1;"}) {
    auto P = prog(std::string("na x; atomic y;\nthread { a := x@na; ") +
                  Beta + " b := x@na; return b; }");
    PassResult R = runLlfPass(*P);
    EXPECT_EQ(R.Rewrites, 1u) << "β = " << Beta;
    ValidationResult V = validateTransform(*P, *R.Prog);
    EXPECT_TRUE(V.Ok) << "β = " << Beta << ": " << V.Counterexample;
  }
}

TEST(LlfTest, BlockedByAcquire) {
  // An acquire may refresh the location's value (Fig. 8a clears all sets).
  auto P = prog("na x; atomic y;\n"
                "thread { a := x@na; s := y@acq; b := x@na; return b; }");
  EXPECT_EQ(runLlfPass(*P).Rewrites, 0u);
}

TEST(LlfTest, BlockedByInterveningWrite) {
  auto P = prog("na x;\n"
                "thread { a := x@na; x@na := 1; b := x@na; return b; }");
  EXPECT_EQ(runLlfPass(*P).Rewrites, 0u);
}

TEST(LlfTest, BlockedByRegisterClobber) {
  auto P = prog("na x;\n"
                "thread { a := x@na; a := 7; b := x@na; return a + b; }");
  EXPECT_EQ(runLlfPass(*P).Rewrites, 0u)
      << "the forwarding source was overwritten";
}

TEST(LlfTest, ReloadIntoSameRegisterIsLeftAlone) {
  auto P = prog("na x;\nthread { a := x@na; a := x@na; return a; }");
  // Forwarding a := a is a no-op; the pass declines.
  EXPECT_EQ(runLlfPass(*P).Rewrites, 0u);
}

TEST(LlfTest, JoinIsIntersection) {
  auto P = prog("na x;\n"
                "thread { c := choose; if (c == 1) { a := x@na; } "
                "else { skip; } b := x@na; return b; }");
  EXPECT_EQ(runLlfPass(*P).Rewrites, 0u)
      << "only one branch loaded x: the join must drop the register";
}

TEST(LlfTest, AnalysisExposesRegisterSets) {
  auto P = prog("na x;\n"
                "thread { a := x@na; b := x@na; c := x@na; return c; }");
  LlfAnalysisResult A = analyzeLlf(*P, 0);
  // The third load sees both a and b.
  unsigned MaxPop = 0;
  for (const auto &[S, Regs] : A.AtLoad)
    MaxPop = std::max(MaxPop,
                      static_cast<unsigned>(__builtin_popcountll(Regs)));
  EXPECT_EQ(MaxPop, 2u);
}

//===----------------------------------------------------------------------===
// DSE (Fig. 8b)
//===----------------------------------------------------------------------===

TEST(DseTest, EliminatesOverwrittenStore) {
  auto P = prog("na x;\nthread { x@na := 1; x@na := 2; return 0; }");
  PassResult R = runDsePass(*P);
  EXPECT_EQ(R.Rewrites, 1u);
  ValidationResult V = validateTransform(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(DseTest, EliminatesAcrossRelaxedAndAcquire) {
  // Example 3.5's simple cases: γ ∈ {rlx read, rlx write, acq read}.
  for (const char *Gamma : {"s := y@rlx;", "y@rlx := 1;", "s := y@acq;"}) {
    auto P = prog(std::string("na x; atomic y;\nthread { x@na := 1; ") +
                  Gamma + " x@na := 2; return 0; }");
    PassResult R = runDsePass(*P);
    EXPECT_EQ(R.Rewrites, 1u) << "γ = " << Gamma;
    ValidationResult V = validateTransform(*P, *R.Prog);
    EXPECT_TRUE(V.Ok) << "γ = " << Gamma << ": " << V.Counterexample;
  }
}

TEST(DseTest, EliminatesAcrossReleaseNeedsAdvancedRefinement) {
  // Example 3.5's • case: sound, but beyond the simple refinement.
  auto P = prog("na x; atomic y;\n"
                "thread { x@na := 1; y@rel := 1; x@na := 2; return 0; }");
  PassResult R = runDsePass(*P);
  ASSERT_EQ(R.Rewrites, 1u);

  ValidationResult Advanced =
      validateTransform(*P, *R.Prog, SeqConfig(), /*UseAdvanced=*/true);
  EXPECT_TRUE(Advanced.Ok) << Advanced.Counterexample;

  ValidationResult Simple =
      validateTransform(*P, *R.Prog, SeqConfig(), /*UseAdvanced=*/false);
  EXPECT_FALSE(Simple.Ok)
      << "the simple refinement must reject DSE across a release "
         "(Example 3.5) — if it passes, the checker lost precision";
}

TEST(DseTest, BlockedByReleaseAcquirePair) {
  auto P = prog("na x; atomic y, z;\n"
                "thread { x@na := 1; y@rel := 1; s := z@acq; x@na := 2; "
                "return 0; }");
  EXPECT_EQ(runDsePass(*P).Rewrites, 0u);
}

TEST(DseTest, BlockedByInterveningRead) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; a := x@na; x@na := 2; return a; }");
  EXPECT_EQ(runDsePass(*P).Rewrites, 0u);
}

TEST(DseTest, LastStoreIsNeverDead) {
  auto P = prog("na x;\nthread { x@na := 1; return 0; }");
  EXPECT_EQ(runDsePass(*P).Rewrites, 0u)
      << "other threads may read the final store";
}

TEST(DseTest, FaultingOperandIsKept) {
  auto P = prog("na x;\n"
                "thread { r := 0; x@na := 1 / r; x@na := 2; return 0; }");
  EXPECT_EQ(runDsePass(*P).Rewrites, 0u)
      << "deleting the store would erase the division's UB";
}

TEST(DseTest, BranchesJoinConservatively) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; c := choose; if (c == 1) "
                "{ x@na := 2; } else { a := x@na; } return 0; }");
  EXPECT_EQ(runDsePass(*P).Rewrites, 0u)
      << "the else branch reads x: ◦ ⊔ ⊤ = ⊤";
}

TEST(DseTest, BackwardTokensExposed) {
  auto P = prog("na x; atomic y;\n"
                "thread { x@na := 1; s := y@acq; x@na := 2; return 0; }");
  DseAnalysisResult A = analyzeDse(*P, 0);
  // The first store's after-token went ◦ → • through the acquire read
  // (backward), still eliminable.
  bool SawBullet = false;
  for (const auto &[S, T] : A.AtStore)
    if (T == DseToken::Bullet)
      SawBullet = true;
  EXPECT_TRUE(SawBullet);
  EXPECT_EQ(runDsePass(*P).Rewrites, 1u);
}

//===----------------------------------------------------------------------===
// Fence-mode ladders (atlas-derived): combined fences are both halves.
//===----------------------------------------------------------------------===

TEST(LlfTest, FenceLadderBlocksEveryAcquireContainingMode) {
  // Fig 8a's fence transfer keeps the known-value sets only across a lone
  // release fence; acq, acqrel and sc may all complete a release-acquire
  // pair and refresh the location, so the ladder must clear them.
  {
    auto P = prog("na x;\n"
                  "thread { a := x@na; fence @ rel; b := x@na; return b; }");
    PassResult R = runLlfPass(*P);
    EXPECT_EQ(R.Rewrites, 1u);
    ValidationResult V = validateTransform(*P, *R.Prog);
    EXPECT_TRUE(V.Ok) << V.Counterexample;
  }
  for (const char *Fence : {"fence @ acq;", "fence @ acqrel;", "fence @ sc;"}) {
    auto P = prog(std::string("na x;\nthread { a := x@na; ") + Fence +
                  " b := x@na; return b; }");
    EXPECT_EQ(runLlfPass(*P).Rewrites, 0u) << "fence = " << Fence;
  }
}

TEST(DseTest, FenceLadderBlocksCombinedModes) {
  // Backward Fig 8b walk: a lone acq fence leaves the store eliminable
  // (like the acquire read in BackwardTokensExposed), a lone rel fence is
  // Example 3.5's • case, but acqrel/sc are a whole release-acquire pair:
  // ◦ → (acq) • → (rel) ⊤. The ladder used to undo the halves in program
  // order, leaving • across a combined fence — this pins the fix.
  for (const char *Fence : {"fence @ acq;", "fence @ rel;"}) {
    auto P = prog(std::string("na x;\nthread { x@na := 1; ") + Fence +
                  " x@na := 2; return 0; }");
    PassResult R = runDsePass(*P);
    EXPECT_EQ(R.Rewrites, 1u) << "fence = " << Fence;
    ValidationResult V = validateTransform(*P, *R.Prog, SeqConfig(),
                                           /*UseAdvanced=*/true);
    EXPECT_TRUE(V.Ok) << "fence = " << Fence << ": " << V.Counterexample;
  }
  for (const char *Fence : {"fence @ acqrel;", "fence @ sc;"}) {
    auto P = prog(std::string("na x;\nthread { x@na := 1; ") + Fence +
                  " x@na := 2; return 0; }");
    EXPECT_EQ(runDsePass(*P).Rewrites, 0u) << "fence = " << Fence;

    // The pre-fix rewrite is genuinely invalid: the fence's release half
    // publishes the pending store to any acquirer, so deleting it loses
    // an observable value.
    auto Bad = prog(std::string("na x;\nthread { skip; ") + Fence +
                    " x@na := 2; return 0; }");
    ValidationResult V = validateTransform(*P, *Bad, SeqConfig(),
                                           /*UseAdvanced=*/true);
    EXPECT_FALSE(V.Ok) << "fence = " << Fence
                       << ": DSE across a combined fence must be rejected "
                          "(atlas fence ladder)";
  }
}
