//===- tests/lang_test.cpp - Language substrate unit tests ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "lang/Determinism.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/ProgState.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

//===----------------------------------------------------------------------===
// Value
//===----------------------------------------------------------------------===

TEST(ValueTest, RefinementOrder) {
  // v ⊑ v' iff v = v' or v' = undef (§2 "Values").
  EXPECT_TRUE(Value::of(3).refines(Value::of(3)));
  EXPECT_FALSE(Value::of(3).refines(Value::of(4)));
  EXPECT_TRUE(Value::of(3).refines(Value::undef()));
  EXPECT_TRUE(Value::undef().refines(Value::undef()));
  EXPECT_FALSE(Value::undef().refines(Value::of(3)));
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::of(1), Value::of(1));
  EXPECT_NE(Value::of(1), Value::of(2));
  EXPECT_NE(Value::of(0), Value::undef());
  EXPECT_EQ(Value::undef(), Value::undef());
}

//===----------------------------------------------------------------------===
// Expression evaluation
//===----------------------------------------------------------------------===

namespace {

EvalResult evalIn(Program &, const Expr *E) {
  std::vector<Value> Regs(4, Value::of(0));
  return E->eval(Regs);
}

} // namespace

TEST(ExprTest, ConstantArithmetic) {
  Program P;
  const Expr *E =
      P.exprBin(BinOp::Add, P.exprConst(2), P.exprConst(3));
  EvalResult R = evalIn(P, E);
  ASSERT_FALSE(R.IsUB);
  EXPECT_EQ(R.V, Value::of(5));
}

TEST(ExprTest, DivisionByZeroIsUB) {
  Program P;
  const Expr *E =
      P.exprBin(BinOp::Div, P.exprConst(1), P.exprConst(0));
  EXPECT_TRUE(evalIn(P, E).IsUB);
}

TEST(ExprTest, DivisionByUndefIsUB) {
  Program P;
  const Expr *E = P.exprBin(BinOp::Div, P.exprConst(1),
                            P.exprConst(Value::undef()));
  EXPECT_TRUE(evalIn(P, E).IsUB);
}

TEST(ExprTest, UndefPropagates) {
  Program P;
  const Expr *E = P.exprBin(BinOp::Add, P.exprConst(Value::undef()),
                            P.exprConst(1));
  EvalResult R = evalIn(P, E);
  ASSERT_FALSE(R.IsUB);
  EXPECT_TRUE(R.V.isUndef());
}

TEST(ExprTest, ComparisonOperators) {
  Program P;
  auto check = [&](BinOp Op, int64_t L, int64_t R, int64_t Want) {
    const Expr *E = P.exprBin(Op, P.exprConst(L), P.exprConst(R));
    EvalResult Res = evalIn(P, E);
    ASSERT_FALSE(Res.IsUB);
    EXPECT_EQ(Res.V, Value::of(Want));
  };
  check(BinOp::Eq, 2, 2, 1);
  check(BinOp::Ne, 2, 2, 0);
  check(BinOp::Lt, 1, 2, 1);
  check(BinOp::Le, 2, 2, 1);
  check(BinOp::Gt, 1, 2, 0);
  check(BinOp::Ge, 2, 3, 0);
  check(BinOp::And, 1, 0, 0);
  check(BinOp::Or, 1, 0, 1);
  check(BinOp::Mod, 7, 3, 1);
}

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

TEST(ParserTest, ParsesDeclarationsAndModes) {
  auto P = prog("na x; atomic z;\n"
                "thread { x@na := 1; a := z@acq; z@rel := a; return a; }");
  EXPECT_EQ(P->numLocs(), 2u);
  EXPECT_FALSE(P->isAtomicLoc(*P->lookupLoc("x")));
  EXPECT_TRUE(P->isAtomicLoc(*P->lookupLoc("z")));
  EXPECT_EQ(P->numThreads(), 1u);
}

TEST(ParserTest, RejectsModeMismatch) {
  ParseResult R = parseProgram("na x; thread { x@rlx := 1; return 0; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("atomicity"), std::string::npos);
}

TEST(ParserTest, RejectsLocationInExpression) {
  ParseResult R = parseProgram("na x; thread { a := x + 1; return a; }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, ReportsLineNumbers) {
  ParseResult R = parseProgram("na x;\nthread {\n  ??? }\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Line, 3u);
  EXPECT_EQ(R.Column, 3u);
  // The error string itself carries the position.
  EXPECT_NE(R.Error.find("line 3"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("column 3"), std::string::npos) << R.Error;
}

TEST(ParserTest, MalformedCorpusNeverCrashesAndAlwaysExplains) {
  // A corpus of hostile inputs: every one must be rejected with a
  // non-empty, position-carrying error — never a crash, hang, or a
  // silently "ok" parse.
  const char *Corpus[] = {
      "",
      ";",
      "}",
      "{",
      "thread",
      "thread {",
      "thread }",
      "thread { return }",
      "thread { return 0; } garbage",
      "na; thread { return 0; }",
      "na x thread { return 0; }",
      "atomic ; thread { return 0; }",
      "na x; thread { x@ := 1; return 0; }",
      "na x; thread { x@na = 1; return 0; }",
      "na x; thread { @na := 1; return 0; }",
      "thread { a := ; return a; }",
      "thread { a := (1; return a; }",
      "thread { a := 1 +; return a; }",
      "thread { a := cas(, 0, 1) @ acq rel; }",
      "thread { a := fadd(x, 1) @ rlx rlx; }", // x undeclared
      "thread { if (a { skip; } return 0; }",
      "thread { while () { skip; } return 0; }",
      "thread { fence; return 0; }",
      "thread { print(; return 0; }",
      "thread { 123; }",
      "thread { a := 99999999999999999999999999999; return a; }",
      "\xff\xfe\xfd",
      "thread { a := \xc3\xa9; return a; }",
      "na x; // comment never ends",
  };
  for (const char *Text : Corpus) {
    ParseResult R = parseProgram(Text);
    ASSERT_FALSE(R.ok()) << "accepted: " << Text;
    EXPECT_FALSE(R.Error.empty()) << "empty error for: " << Text;
    EXPECT_NE(R.Error.find("line "), std::string::npos)
        << "no position in: " << R.Error;
    EXPECT_NE(R.Error.find("column "), std::string::npos)
        << "no position in: " << R.Error;
  }
}

TEST(ParserTest, DeepNestingIsAnErrorNotAStackOverflow) {
  // 100k unary minuses / parens / nested ifs: the depth limit must kick in.
  std::string Minuses = "thread { a := " + std::string(100000, '-') +
                        "1; return a; }";
  ParseResult R1 = parseProgram(Minuses);
  ASSERT_FALSE(R1.ok());
  EXPECT_NE(R1.Error.find("depth"), std::string::npos) << R1.Error;

  std::string Parens = "thread { a := " + std::string(100000, '(') + "1" +
                       std::string(100000, ')') + "; return a; }";
  EXPECT_FALSE(parseProgram(Parens).ok());

  std::string Ifs = "thread { ";
  for (int I = 0; I != 100000; ++I)
    Ifs += "if (a == 0) { ";
  ParseResult R3 = parseProgram(Ifs);
  ASSERT_FALSE(R3.ok());
  EXPECT_NE(R3.Error.find("depth"), std::string::npos) << R3.Error;

  // A depth well under the limit still parses.
  std::string Ok = "thread { a := " + std::string(50, '(') + "1" +
                   std::string(50, ')') + "; return a; }";
  EXPECT_TRUE(parseProgram(Ok).ok());
}

TEST(ParserTest, ParsesControlFlowAndRmw) {
  auto P = prog("atomic z;\n"
                "thread {\n"
                "  r := cas(z, 0, 1) @ acq rel;\n"
                "  s := fadd(z, 2) @ rlx rlx;\n"
                "  fence @ sc;\n"
                "  if (r == 0) { print(s); } else { skip; }\n"
                "  while (s < 3) { s := s + 1; }\n"
                "  c := choose;\n"
                "  d := freeze(c);\n"
                "  return d;\n"
                "}");
  EXPECT_EQ(P->numThreads(), 1u);
  // The SC fence is lowered to rel;acq parts in the bytecode.
  unsigned Fences = 0;
  for (const Instr &I : P->thread(0).Code)
    if (I.Op == Instr::Opcode::Fence)
      ++Fences;
  EXPECT_EQ(Fences, 2u);
}

TEST(ParserTest, MultipleThreads) {
  auto P = prog("atomic z;\n"
                "thread { z@rlx := 1; return 0; }\n"
                "thread { a := z@rlx; return a; }");
  EXPECT_EQ(P->numThreads(), 2u);
}

TEST(ParserTest, CommentsAreIgnored) {
  auto P = prog("na x; // the data\n"
                "thread { x@na := 1; // store\n return 0; }");
  EXPECT_EQ(P->numThreads(), 1u);
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char *Text = "na x, y;\natomic z;\n"
                     "thread {\n"
                     "  x@na := 1;\n"
                     "  a := z@acq;\n"
                     "  if (a == 1) { b := x@na; } else { y@na := a + 2; }\n"
                     "  while (b < 2) { b := b + 1; }\n"
                     "  return b;\n"
                     "}";
  auto P1 = prog(Text);
  std::string Printed = printProgram(*P1);
  auto P2 = prog(Printed);
  ASSERT_TRUE(sameLayout(*P1, *P2));
  EXPECT_TRUE(stmtStructurallyEquals(P1->thread(0).Body, P2->thread(0).Body))
      << "printed form:\n"
      << Printed;
}

//===----------------------------------------------------------------------===
// Bytecode + ProgState LTS
//===----------------------------------------------------------------------===

TEST(ProgStateTest, StraightLineExecution) {
  auto P = prog("na x; thread { a := 2; x@na := a + 1; return a; }");
  ProgState S = ProgState::initial(*P, 0);

  // a := 2 is silent.
  ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Silent);
  S.applySilent(*P, 0);

  // The store's value is evaluated at the write.
  ProgState::Pending W = S.pending(*P, 0);
  ASSERT_EQ(W.K, ProgState::Pending::Kind::Write);
  EXPECT_EQ(W.WM, WriteMode::NA);
  EXPECT_EQ(W.WVal, Value::of(3));
  S.applyWrite(*P, 0);

  // return a.
  ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Silent);
  S.applySilent(*P, 0);
  ASSERT_TRUE(S.isDone());
  EXPECT_EQ(S.retVal(), Value::of(2));
}

TEST(ProgStateTest, BranchOnUndefIsUB) {
  auto P = prog("thread { a := undef; if (a == 0) { skip; } return 0; }");
  ProgState S = ProgState::initial(*P, 0);
  S.applySilent(*P, 0); // a := undef
  // The branch condition is undef == 0 → undef → UB.
  ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Fail);
  S.applySilent(*P, 0);
  EXPECT_TRUE(S.isError());
}

TEST(ProgStateTest, FreezeOfDefinedIsSilent) {
  auto P = prog("thread { a := 7; b := freeze(a); return b; }");
  ProgState S = ProgState::initial(*P, 0);
  S.applySilent(*P, 0);
  ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Silent);
  S.applySilent(*P, 0);
  S.applySilent(*P, 0);
  EXPECT_EQ(S.retVal(), Value::of(7));
}

TEST(ProgStateTest, FreezeOfUndefIsChoose) {
  auto P = prog("thread { b := freeze(undef); return b; }");
  ProgState S = ProgState::initial(*P, 0);
  ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Choose);
  S.applyChoose(*P, 0, Value::of(5));
  S.applySilent(*P, 0);
  EXPECT_EQ(S.retVal(), Value::of(5));
}

TEST(ProgStateTest, WhileLoopExecutes) {
  auto P = prog("thread { i := 0; while (i < 3) { i := i + 1; } return i; }");
  ProgState S = ProgState::initial(*P, 0);
  unsigned Guard = 0;
  while (!S.isDone()) {
    ASSERT_LT(++Guard, 100u);
    ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Silent);
    S.applySilent(*P, 0);
  }
  EXPECT_EQ(S.retVal(), Value::of(3));
}

TEST(ProgStateTest, CasSuccessAndFailure) {
  auto P = prog("atomic z; thread { r := cas(z, 1, 9) @ rlx rlx; return r; }");
  {
    ProgState S = ProgState::initial(*P, 0);
    ASSERT_EQ(S.pending(*P, 0).K, ProgState::Pending::Kind::Rmw);
    bool DoesWrite = false;
    Value NewVal;
    S.applyRmw(*P, 0, Value::of(1), DoesWrite, NewVal);
    EXPECT_TRUE(DoesWrite);
    EXPECT_EQ(NewVal, Value::of(9));
    S.applySilent(*P, 0);
    EXPECT_EQ(S.retVal(), Value::of(1));
  }
  {
    ProgState S = ProgState::initial(*P, 0);
    bool DoesWrite = true;
    Value NewVal;
    S.applyRmw(*P, 0, Value::of(0), DoesWrite, NewVal);
    EXPECT_FALSE(DoesWrite);
  }
  {
    // CAS comparison against undef is UB.
    ProgState S = ProgState::initial(*P, 0);
    bool DoesWrite = false;
    Value NewVal;
    S.applyRmw(*P, 0, Value::undef(), DoesWrite, NewVal);
    EXPECT_TRUE(S.isError());
  }
}

TEST(ProgStateTest, FaddAccumulates) {
  auto P = prog("atomic z; thread { r := fadd(z, 2) @ rlx rlx; return r; }");
  ProgState S = ProgState::initial(*P, 0);
  bool DoesWrite = false;
  Value NewVal;
  S.applyRmw(*P, 0, Value::of(3), DoesWrite, NewVal);
  EXPECT_TRUE(DoesWrite);
  EXPECT_EQ(NewVal, Value::of(5));
  S.applySilent(*P, 0);
  EXPECT_EQ(S.retVal(), Value::of(3)) << "fadd returns the old value";
}

TEST(ProgStateTest, ImplicitReturnZero) {
  auto P = prog("na x; thread { x@na := 1; }");
  ProgState S = ProgState::initial(*P, 0);
  S.applyWrite(*P, 0);
  S.applySilent(*P, 0);
  ASSERT_TRUE(S.isDone());
  EXPECT_EQ(S.retVal(), Value::of(0));
}

TEST(ProgStateTest, AccessSummary) {
  auto P = prog("na x, y; atomic z;\n"
                "thread { x@na := 1; a := y@na; b := z@acq; return b; }");
  AccessSummary Sum = P->accessSummary(0);
  EXPECT_TRUE(Sum.NaAccessed.contains(*P->lookupLoc("x")));
  EXPECT_TRUE(Sum.NaAccessed.contains(*P->lookupLoc("y")));
  EXPECT_TRUE(Sum.NaWritten.contains(*P->lookupLoc("x")));
  EXPECT_FALSE(Sum.NaWritten.contains(*P->lookupLoc("y")));
  EXPECT_TRUE(Sum.AtomicAccessed.contains(*P->lookupLoc("z")));
  EXPECT_TRUE(Sum.HasAcquire);
  EXPECT_FALSE(Sum.HasRelease);
}

//===----------------------------------------------------------------------===
// Determinism (Def 6.1)
//===----------------------------------------------------------------------===

TEST(DeterminismTest, StraightLineProgram) {
  auto P = prog("na x; thread { x@na := 1; a := x@na; return a; }");
  DeterminismReport R = checkDeterministic(*P, 0, ValueDomain::binary());
  EXPECT_TRUE(R.Deterministic);
  EXPECT_FALSE(R.Exhausted);
  EXPECT_GT(R.StatesVisited, 0u);
}

TEST(DeterminismTest, BranchingOnReadsAndChoices) {
  auto P = prog("atomic z;\n"
                "thread { a := z@rlx; c := choose; if (a == c) { z@rlx := 1; }"
                " return a; }");
  DeterminismReport R = checkDeterministic(*P, 0, ValueDomain::ternary());
  EXPECT_TRUE(R.Deterministic);
}

//===----------------------------------------------------------------------===
// Additional parser negatives and utility coverage.
//===----------------------------------------------------------------------===

TEST(ParserTest, RejectsNaRmw) {
  EXPECT_FALSE(
      parseProgram("na x; thread { r := cas(x, 0, 1) @ rlx rlx; }").ok());
  EXPECT_FALSE(
      parseProgram("atomic z; thread { r := cas(z, 0, 1) @ na rlx; }").ok());
}

TEST(ParserTest, RejectsEmptyProgram) {
  EXPECT_FALSE(parseProgram("na x;").ok());
  EXPECT_FALSE(parseProgram("").ok());
}

TEST(ParserTest, RejectsMissingSemicolons) {
  EXPECT_FALSE(parseProgram("thread { a := 1 return a; }").ok());
}

TEST(ParserTest, RejectsStoreWithoutMode) {
  EXPECT_FALSE(parseProgram("na x; thread { x := 1; }").ok());
}

TEST(ParserTest, RejectsLoadWithoutMode) {
  EXPECT_FALSE(parseProgram("na x; thread { a := x; return a; }").ok());
}

TEST(ParserTest, RejectsUnknownFenceMode) {
  EXPECT_FALSE(parseProgram("thread { fence @ weird; }").ok());
}

TEST(ParserTest, RejectsBadTokens) {
  EXPECT_FALSE(parseProgram("thread { a := 1 ? 2 : 3; }").ok());
}

TEST(ParserTest, PrecedenceParsesAsExpected) {
  auto P = prog("thread { a := 1 + 2 * 3; b := (1 + 2) * 3; "
                "c := 1 < 2 && 3 > 2 || 0 == 1; return a; }");
  ProgState S = ProgState::initial(*P, 0);
  S.applySilent(*P, 0);
  S.applySilent(*P, 0);
  S.applySilent(*P, 0);
  S.applySilent(*P, 0);
  ASSERT_TRUE(S.isDone());
  EXPECT_EQ(S.retVal(), Value::of(7));
  EXPECT_EQ(S.regs()[1], Value::of(9));
  EXPECT_EQ(S.regs()[2], Value::of(1));
}

TEST(PrinterTest, PrintCodeListsEveryInstruction) {
  auto P = prog("na x; atomic z;\n"
                "thread { x@na := 1; a := z@acq; if (a == 1) { abort; } "
                "while (a < 2) { a := a + 1; } print(a); return a; }");
  std::string Code = printCode(*P, 0);
  for (const char *Needle :
       {"x@na := 1", "a := z@acq", "br ", "jmp ", "abort", "print", "return"})
    EXPECT_NE(Code.find(Needle), std::string::npos) << Code;
}

TEST(CloneProgramTest, ClonesLayoutThreadsAndBehavior) {
  auto P = prog("na x; atomic z;\n"
                "thread { x@na := 1; a := x@na; return a; }\n"
                "thread { z@rlx := 1; return 0; }");
  std::unique_ptr<Program> Q = cloneProgram(*P);
  ASSERT_TRUE(sameLayout(*P, *Q));
  ASSERT_EQ(P->numThreads(), Q->numThreads());
  for (unsigned T = 0; T != P->numThreads(); ++T)
    EXPECT_TRUE(
        stmtStructurallyEquals(P->thread(T).Body, Q->thread(T).Body));
  EXPECT_EQ(printProgram(*P), printProgram(*Q));
}
