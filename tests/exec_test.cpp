//===- tests/exec_test.cpp - Parallel execution layer tests ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Units for the thread pool and work-stealing deques, plus the property
// the whole parallel layer is built around: every engine's result is
// bit-identical for every NumThreads. The sweeps run each engine at
// NumThreads 1, 2, and 8 over the corpus and 100 seeded random programs
// and compare complete results. Also holds the BehaviorCap regression
// tests: the enumerator must not count deduplicated re-emissions against
// the cap (the pre-fix behavior truncated sets that fit the budget).
//
//===----------------------------------------------------------------------===//

#include "adequacy/Harness.h"
#include "adequacy/RandomProgram.h"
#include "exec/ThreadPool.h"
#include "exec/WorkDeque.h"
#include "litmus/Corpus.h"
#include "obs/Telemetry.h"
#include "opt/Validator.h"
#include "psna/Explorer.h"
#include "seq/AdvancedRefinement.h"
#include "seq/BehaviorEnum.h"
#include "seq/SimpleRefinement.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace pseq;

//===----------------------------------------------------------------------===
// ThreadPool
//===----------------------------------------------------------------------===

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(exec::hardwareThreads(), 1u);
  EXPECT_EQ(exec::resolveThreads(0), exec::hardwareThreads());
  EXPECT_EQ(exec::resolveThreads(1), 1u);
  EXPECT_EQ(exec::resolveThreads(3), 3u);
}

TEST(ThreadPoolTest, RunExecutesEachIndexExactlyOnce) {
  constexpr unsigned N = 8;
  std::atomic<unsigned> Hits[N] = {};
  exec::ThreadPool::global().run(N, [&](unsigned W) { ++Hits[W]; });
  for (unsigned W = 0; W != N; ++W)
    EXPECT_EQ(Hits[W].load(), 1u) << "worker " << W;
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineAndUnmarked) {
  bool Inside = true;
  exec::ThreadPool::global().run(
      1, [&](unsigned W) {
        EXPECT_EQ(W, 0u);
        // run(1, ...) must leave the caller unmarked so inner engines can
        // still use the pool.
        Inside = exec::ThreadPool::insideWorker();
      });
  EXPECT_FALSE(Inside);
}

TEST(ThreadPoolTest, NestedRunDegradesToInline) {
  std::atomic<unsigned> InnerTotal{0};
  exec::ThreadPool::global().run(4, [&](unsigned) {
    EXPECT_TRUE(exec::ThreadPool::insideWorker());
    // The nested batch runs sequentially on this worker; all indices
    // still execute.
    exec::ThreadPool::global().run(3, [&](unsigned) { ++InnerTotal; });
  });
  EXPECT_EQ(InnerTotal.load(), 12u);
}

TEST(ThreadPoolTest, ParallelForCoversAllItems) {
  for (unsigned Workers : {1u, 3u, 8u}) {
    constexpr size_t Items = 100;
    std::vector<std::atomic<unsigned>> Hits(Items);
    exec::parallelFor(Workers, Items,
                      [&](size_t I, unsigned W) {
                        EXPECT_LT(W, Workers);
                        ++Hits[I];
                      });
    for (size_t I = 0; I != Items; ++I)
      EXPECT_EQ(Hits[I].load(), 1u) << "item " << I;
  }
}

TEST(ThreadPoolTest, BackToBackBatches) {
  // Exercises generation turnover: stale workers must not re-enter an old
  // batch.
  for (int Round = 0; Round != 50; ++Round) {
    std::atomic<unsigned> Count{0};
    exec::ThreadPool::global().run(4, [&](unsigned) { ++Count; });
    ASSERT_EQ(Count.load(), 4u) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===
// WorkDequeSet
//===----------------------------------------------------------------------===

TEST(WorkDequeTest, OwnerPopsLifo) {
  exec::WorkDequeSet<int> D(2);
  D.push(0, 1);
  D.push(0, 2);
  D.push(0, 3);
  EXPECT_EQ(D.pop(0), 3);
  EXPECT_EQ(D.pop(0), 2);
  EXPECT_EQ(D.pop(0), 1);
  EXPECT_FALSE(D.pop(0).has_value());
}

TEST(WorkDequeTest, ThiefStealsFifo) {
  exec::WorkDequeSet<int> D(2);
  D.push(0, 1);
  D.push(0, 2);
  D.push(0, 3);
  EXPECT_EQ(D.steal(1), 1); // oldest first
  EXPECT_EQ(D.steal(1), 2);
  EXPECT_EQ(D.pop(0), 3);
  EXPECT_FALSE(D.steal(1).has_value());
}

TEST(WorkDequeTest, NextPrefersOwnDeque) {
  exec::WorkDequeSet<int> D(2);
  D.push(0, 10);
  D.push(1, 20);
  EXPECT_EQ(D.next(0), 10);
  EXPECT_EQ(D.next(0), 20); // own deque empty: steals from worker 1
  EXPECT_FALSE(D.next(0).has_value());
  EXPECT_EQ(D.size(), 0u);
}

//===----------------------------------------------------------------------===
// Telemetry merge
//===----------------------------------------------------------------------===

TEST(TelemetryMergeTest, MergeCountersSums) {
  obs::Telemetry T;
  T.Counters.add("a", 3);
  obs::Stats S1, S2;
  S1.add("a", 4);
  S1.add("b", 1);
  S2.add("b", 2);
  exec::parallelFor(2, 2, [&](size_t I, unsigned) {
    T.mergeCounters(I == 0 ? S1 : S2);
  });
  EXPECT_EQ(T.Counters.counter("a"), 7u);
  EXPECT_EQ(T.Counters.counter("b"), 3u);
}

//===----------------------------------------------------------------------===
// Determinism sweeps: identical results for every NumThreads
//===----------------------------------------------------------------------===

namespace {

const unsigned ThreadCounts[] = {1, 2, 8};

std::vector<std::string> behaviorStrs(const BehaviorSet &B) {
  std::vector<std::string> Out;
  for (const SeqBehavior &SB : B.All)
    Out.push_back(SB.str());
  return Out;
}

} // namespace

TEST(ThreadInvarianceTest, SeqEnumeration) {
  const char *Programs[] = {
      "atomic x; na y;\nthread { x@rlx := 1; y@na := 2; return 3; }",
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; s := y@acq; b := x@na; return b; }",
      "na x;\nthread { c := choose; while (c != 0) { a := x@na; "
      "c := choose; } return 0; }",
  };
  for (const char *Text : Programs) {
    std::unique_ptr<Program> P = prog(Text);
    SeqConfig Base;
    Base.Domain = ValueDomain::binary();
    Base.Universe = P->naLocs();
    Base.StepBudget = 16;

    SeqConfig Ref = Base;
    Ref.NumThreads = 1;
    SeqMachine RefM(*P, 0, Ref);
    std::vector<SeqState> Inits = enumerateInitialStates(RefM);
    ASSERT_FALSE(Inits.empty());
    std::vector<BehaviorSet> Want = enumerateBehaviorsBatch(RefM, Inits);

    for (unsigned N : ThreadCounts) {
      SeqConfig Cfg = Base;
      Cfg.NumThreads = N;
      SeqMachine M(*P, 0, Cfg);
      // Per-init enumeration and the batched fan-out must both match the
      // sequential reference exactly.
      std::vector<BehaviorSet> Got = enumerateBehaviorsBatch(M, Inits);
      ASSERT_EQ(Got.size(), Want.size());
      for (size_t I = 0; I != Want.size(); ++I) {
        EXPECT_EQ(behaviorStrs(Got[I]), behaviorStrs(Want[I]))
            << Text << " init " << I << " threads " << N;
        EXPECT_EQ(Got[I].Cause, Want[I].Cause);
        BehaviorSet Single = enumerateBehaviors(M, Inits[I]);
        EXPECT_EQ(behaviorStrs(Single), behaviorStrs(Want[I]));
        EXPECT_EQ(Single.Cause, Want[I].Cause);
      }
    }
  }
}

TEST(ThreadInvarianceTest, PsnaExploration) {
  for (const LitmusCase &LC : litmusCorpus()) {
    PsConfig Ref;
    Ref.Domain = LC.Domain;
    Ref.PromiseBudget = LC.PromiseBudget;
    Ref.SplitBudget = LC.SplitBudget;
    Ref.NumThreads = 1;
    std::unique_ptr<Program> P = prog(LC.Text);
    PsBehaviorSet Want = explorePsna(*P, Ref);
    for (unsigned N : ThreadCounts) {
      PsConfig Cfg = Ref;
      Cfg.NumThreads = N;
      PsBehaviorSet Got = explorePsna(*P, Cfg);
      EXPECT_EQ(Got.strs(), Want.strs()) << LC.Name << " threads " << N;
      EXPECT_EQ(Got.StatesExplored, Want.StatesExplored) << LC.Name;
      EXPECT_EQ(Got.Cause, Want.Cause) << LC.Name;
    }
  }
}

TEST(ThreadInvarianceTest, RefinementCheckers) {
  for (const RefinementCase &RC : refinementCorpus()) {
    std::unique_ptr<Program> Src = prog(RC.Src);
    std::unique_ptr<Program> Tgt = prog(RC.Tgt);
    SeqConfig Ref;
    Ref.Domain = RC.Domain;
    Ref.StepBudget = RC.StepBudget;
    Ref.NumThreads = 1;
    RefinementResult SimpleWant = checkSimpleRefinement(*Src, *Tgt, Ref);
    RefinementResult AdvWant = checkAdvancedRefinement(*Src, *Tgt, Ref);
    for (unsigned N : {2u, 8u}) {
      SeqConfig Cfg = Ref;
      Cfg.NumThreads = N;
      RefinementResult Simple = checkSimpleRefinement(*Src, *Tgt, Cfg);
      EXPECT_EQ(Simple.Holds, SimpleWant.Holds) << RC.Name;
      EXPECT_EQ(Simple.Bounded, SimpleWant.Bounded) << RC.Name;
      EXPECT_EQ(Simple.Cause, SimpleWant.Cause) << RC.Name;
      EXPECT_EQ(Simple.Counterexample, SimpleWant.Counterexample) << RC.Name;
      EXPECT_EQ(Simple.SrcBehaviors, SimpleWant.SrcBehaviors) << RC.Name;
      EXPECT_EQ(Simple.TgtBehaviors, SimpleWant.TgtBehaviors) << RC.Name;
      RefinementResult Adv = checkAdvancedRefinement(*Src, *Tgt, Cfg);
      EXPECT_EQ(Adv.Holds, AdvWant.Holds) << RC.Name;
      EXPECT_EQ(Adv.Bounded, AdvWant.Bounded) << RC.Name;
      EXPECT_EQ(Adv.Counterexample, AdvWant.Counterexample) << RC.Name;
    }
  }
}

TEST(ThreadInvarianceTest, RandomProgramSweep) {
  // 100 seeded random (source, target) pairs through the SEQ checker: the
  // parallel sweep must reproduce the sequential verdict and
  // counterexample exactly.
  Rng R(2022);
  for (int I = 0; I != 100; ++I) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> Src = prog(Pair.Src);
    std::unique_ptr<Program> Tgt = prog(Pair.Tgt);
    SeqConfig Ref;
    Ref.NumThreads = 1;
    RefinementResult Want = checkSimpleRefinement(*Src, *Tgt, Ref);
    for (unsigned N : {2u, 8u}) {
      SeqConfig Cfg = Ref;
      Cfg.NumThreads = N;
      RefinementResult Got = checkSimpleRefinement(*Src, *Tgt, Cfg);
      EXPECT_EQ(Got.Holds, Want.Holds) << Pair.Mutation << " #" << I;
      EXPECT_EQ(Got.Bounded, Want.Bounded) << Pair.Mutation << " #" << I;
      EXPECT_EQ(Got.Counterexample, Want.Counterexample)
          << Pair.Mutation << " #" << I;
    }
  }
}

TEST(ThreadInvarianceTest, AdequacyHarness) {
  for (const char *Name :
       {"ex2.11-slf-across-rel-write", "ex2.12-no-slf-across-rel-acq"}) {
    const RefinementCase &RC = refinementCaseByName(Name);
    PsConfig Ref;
    Ref.PromiseBudget = 0;
    Ref.NumThreads = 1;
    AdequacyRecord Want = runAdequacy(RC, Ref);
    for (unsigned N : {2u, 8u}) {
      PsConfig Cfg = Ref;
      Cfg.NumThreads = N;
      AdequacyRecord Got = runAdequacy(RC, Cfg);
      EXPECT_EQ(Got.SeqSimple, Want.SeqSimple) << Name;
      EXPECT_EQ(Got.SeqAdvanced, Want.SeqAdvanced) << Name;
      EXPECT_EQ(Got.PsnaAllContexts, Want.PsnaAllContexts) << Name;
      EXPECT_EQ(Got.AnyBounded, Want.AnyBounded) << Name;
      ASSERT_EQ(Got.Contexts.size(), Want.Contexts.size()) << Name;
      for (size_t I = 0; I != Want.Contexts.size(); ++I) {
        EXPECT_EQ(Got.Contexts[I].Context, Want.Contexts[I].Context);
        EXPECT_EQ(Got.Contexts[I].Holds, Want.Contexts[I].Holds);
        EXPECT_EQ(Got.Contexts[I].Bounded, Want.Contexts[I].Bounded);
        EXPECT_EQ(Got.Contexts[I].Counterexample,
                  Want.Contexts[I].Counterexample);
      }
    }
  }
}

TEST(ThreadInvarianceTest, ValidatorTelemetryMatches) {
  // The validator's per-thread fan-out merges worker telemetry; counter
  // totals must equal the sequential run's.
  const RefinementCase &RC = refinementCaseByName("ex2.11-slf-across-rel-write");
  std::unique_ptr<Program> Src = prog(RC.Src);
  std::unique_ptr<Program> Tgt = prog(RC.Tgt);

  auto Run = [&](unsigned N) {
    obs::Telemetry Telem;
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    Cfg.NumThreads = N;
    Cfg.Telem = &Telem;
    ValidationResult V = validateTransform(*Src, *Tgt, Cfg,
                                           ValidationMethod::Advanced);
    EXPECT_TRUE(V.Ok);
    return Telem.Counters.counters();
  };
  EXPECT_EQ(Run(1), Run(8));
}

//===----------------------------------------------------------------------===
// BehaviorCap regressions (satellite: dedup before cap)
//===----------------------------------------------------------------------===

namespace {

BehaviorSet enumWithCap(const Program &P, unsigned Cap, obs::Telemetry *Telem,
                        unsigned StepBudget = 48) {
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.Universe = P.naLocs();
  Cfg.MaxBehaviors = Cap;
  Cfg.StepBudget = StepBudget;
  Cfg.NumThreads = 1;
  Cfg.Telem = Telem;
  SeqMachine M(P, 0, Cfg);
  std::vector<SeqState> Inits = enumerateInitialStates(M);
  return enumerateBehaviors(M, Inits.front());
}

} // namespace

TEST(BehaviorCapTest, DuplicatesDoNotCountAgainstCap) {
  // Two na loads repeat the same partial behavior, so the run emits
  // duplicates between the first partial and the terminal. With cap 1 a
  // duplicate arriving at a full set must register as a dedup hit, not a
  // capped emission — the pre-fix accounting checked the cap first and
  // charged every duplicate against it (dedup_hits 0, every post-cap
  // emission counted truncated).
  std::unique_ptr<Program> P =
      prog("na x;\nthread { a := x@na; b := x@na; return 1; }");
  obs::Telemetry Probe;
  BehaviorSet Free = enumWithCap(*P, 200000, &Probe);
  EXPECT_FALSE(Free.truncated());
  uint64_t Dups = Probe.Counters.counter("seq.enum.dedup_hits");
  ASSERT_GT(Dups, 0u)
      << "test program must actually produce duplicate emissions";

  obs::Telemetry Telem;
  BehaviorSet Capped = enumWithCap(*P, 1, &Telem);
  EXPECT_TRUE(Capped.truncated());
  EXPECT_EQ(Capped.Cause, TruncationCause::BehaviorCap);
  EXPECT_EQ(Capped.All.size(), 1u);
  // Duplicates of the one retained behavior are still dedup hits; only
  // genuinely distinct behaviors (here: the terminal) count as capped.
  EXPECT_EQ(Telem.Counters.counter("seq.enum.dedup_hits"), Dups);
  EXPECT_EQ(Telem.Counters.counter("seq.enum.trunc_behavior_cap"),
            Free.All.size() - 1);
}

TEST(BehaviorCapTest, TruncationCauseNotMasked) {
  // An na-read loop repeats one partial behavior until the step budget
  // trips: the enumeration's only genuine bound is StepBudget. With the
  // cap at the exact unique count the cause must stay StepBudget — the
  // pre-fix accounting tripped the cap on the first duplicate and
  // misreported BehaviorCap.
  std::unique_ptr<Program> P = prog(
      "na x;\nthread { a := x@na; while (a != 0) { a := x@na; } "
      "return 0; }");
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.Universe = P->naLocs();
  Cfg.StepBudget = 12;
  Cfg.NumThreads = 1;
  SeqMachine M(*P, 0, Cfg);
  bool FoundLoopingInit = false;
  for (const SeqState &Init : enumerateInitialStates(M)) {
    BehaviorSet Free = enumerateBehaviors(M, Init);
    if (Free.Cause != TruncationCause::StepBudget)
      continue;
    FoundLoopingInit = true;
    SeqConfig CapCfg = Cfg;
    CapCfg.MaxBehaviors = static_cast<unsigned>(Free.All.size());
    SeqMachine CapM(*P, 0, CapCfg);
    BehaviorSet Capped = enumerateBehaviors(CapM, Init);
    EXPECT_EQ(Capped.All.size(), Free.All.size());
    EXPECT_EQ(Capped.Cause, TruncationCause::StepBudget);
  }
  EXPECT_TRUE(FoundLoopingInit)
      << "no initial state drove the loop into the step budget";
}

TEST(BehaviorCapTest, CapBelowUniqueStillTruncates) {
  std::unique_ptr<Program> P =
      prog("na x;\nthread { a := x@na; b := x@na; return 1; }");
  BehaviorSet Free = enumWithCap(*P, 200000, nullptr);
  ASSERT_GT(Free.All.size(), 1u);
  unsigned Cap = static_cast<unsigned>(Free.All.size()) - 1;
  BehaviorSet Capped = enumWithCap(*P, Cap, nullptr);
  EXPECT_TRUE(Capped.truncated());
  EXPECT_EQ(Capped.Cause, TruncationCause::BehaviorCap);
  EXPECT_EQ(Capped.All.size(), Cap);
}

//===----------------------------------------------------------------------===
// covers() index (satellite: hash-indexed refinement lookup)
//===----------------------------------------------------------------------===

TEST(CoversIndexTest, IndexedCoversMatchesLinearSemantics) {
  // covers() is hash-indexed on the refinement key; every target behavior
  // found by a full refinement sweep must agree with a brute-force linear
  // scan over the source set.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; s := y@acq; b := x@na; return b; }");
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.Universe = P->naLocs();
  Cfg.NumThreads = 1;
  SeqMachine M(*P, 0, Cfg);
  std::vector<SeqState> Inits = enumerateInitialStates(M);
  ASSERT_FALSE(Inits.empty());
  BehaviorSet Set = enumerateBehaviors(M, Inits.front());
  ASSERT_FALSE(Set.All.empty());
  for (const SeqBehavior &Tgt : Set.All) {
    bool Linear = false;
    for (const SeqBehavior &Src : Set.All)
      Linear |= Tgt.refines(Src, Cfg.Universe);
    EXPECT_EQ(Set.covers(Tgt, Cfg.Universe), Linear) << Tgt.str();
    EXPECT_TRUE(Set.covers(Tgt, Cfg.Universe)) << "⊑ must be reflexive";
  }
}
