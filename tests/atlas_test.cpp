//===- tests/atlas_test.cpp - The transformation atlas --------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The atlas (src/atlas) decided end to end: grid coverage, the golden
// markdown table, the atlas-minted validator negative corpus (every
// SEQ-rejected entry must be rejected by all three validateTransform
// methods), the pinned PS^na mismatch set (unmodeled-reservation gap),
// and the fence-mode ladders the satellite audit of
// SlfAnalysis/LlfAnalysis/DseAnalysis locked in.
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"

#include "memo/MemoContext.h"
#include "opt/Validator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pseq;
using namespace pseq::atlas;

namespace {

/// One shared build: ~320 decisions take tens of seconds on one core, so
/// every test reads the same result. Memoization stays on so the repeated
/// refinement sweeps inside one decision share their suffix caches.
const AtlasResult &theAtlas() {
  static memo::MemoContext Memo;
  static AtlasResult R = [] {
    AtlasOptions Opts;
    Opts.Memo = &Memo;
    return buildAtlas(Opts);
  }();
  return R;
}

/// Exact-path golden compare (the table is a .md doc, not a .expected
/// snapshot, so matchesGolden()'s suffix convention does not apply).
::testing::AssertionResult matchesGoldenFile(const std::string &Path,
                                             const std::string &Actual) {
  if (updatingGolden()) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return ::testing::AssertionFailure() << "cannot write " << Path;
    bool Ok =
        std::fwrite(Actual.data(), 1, Actual.size(), F) == Actual.size();
    Ok &= std::fclose(F) == 0;
    return Ok ? ::testing::AssertionSuccess()
              : ::testing::AssertionFailure() << "short write to " << Path;
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return ::testing::AssertionFailure()
           << "missing golden file " << Path
           << " (run with --update-golden to create it)";
  std::string Expected;
  char Buf[4096];
  for (size_t R; (R = std::fread(Buf, 1, sizeof(Buf), F)) != 0;)
    Expected.append(Buf, R);
  std::fclose(F);
  if (Expected == Actual)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "golden mismatch for " << Path << ":\n"
         << renderGoldenDiff(Expected, Actual)
         << "  (re-run with --update-golden to regenerate)";
}

} // namespace

//===----------------------------------------------------------------------===
// Enumeration: the grid is covered and stable
//===----------------------------------------------------------------------===

TEST(AtlasEnum, CoversTheModeGrid) {
  std::vector<AtlasTemplate> Ts = enumerateTemplates();

  std::map<Category, unsigned> PerCat;
  std::set<std::string> Ids;
  for (const AtlasTemplate &T : Ts) {
    ++PerCat[T.Cat];
    EXPECT_TRUE(Ids.insert(T.Id).second) << "duplicate id " << T.Id;
    EXPECT_FALSE(templateMixesModes(T.Src, T.Tgt)) << T.Id;
  }

  // Pinned grid sizes (after the no-mixing filter): 10 access shapes per
  // location give 100 same-loc + 100 cross-loc + 80 access/fence + 12
  // fence-pair reorders minus the mixed-mode combinations; eliminations
  // are RAR + SLF + WAW + fence pairs + fence-after-na-load; and so on.
  // A change here means the grid itself changed — update the golden table
  // and this pin together.
  EXPECT_EQ(PerCat[Category::Reorder], 260u);
  EXPECT_EQ(PerCat[Category::Eliminate], 35u);
  EXPECT_EQ(PerCat[Category::Introduce], 14u);
  EXPECT_EQ(PerCat[Category::Weaken], 11u);
  EXPECT_EQ(Ts.size(), 320u);

  // Spot-check rows the passes and docs cite by id.
  EXPECT_TRUE(Ids.count("weaken/fence@sc -> fence@acqrel"));
  EXPECT_TRUE(Ids.count("weaken/r1:=x@acq -> r1:=x@rlx"));
  EXPECT_TRUE(Ids.count(
      "eliminate/fence@acqrel; fence@acqrel -> fence@acqrel; skip"));
  EXPECT_TRUE(Ids.count("eliminate/r1:=x@na; fence@sc -> r1:=x@na; skip"));
  EXPECT_TRUE(
      Ids.count("reorder/r1:=x@na; fence@acqrel -> fence@acqrel; r1:=x@na"));
}

//===----------------------------------------------------------------------===
// The decided atlas
//===----------------------------------------------------------------------===

TEST(AtlasDecide, TalliesAreConsistent) {
  const AtlasResult &R = theAtlas();
  ASSERT_EQ(R.Entries.size(), 320u);
  EXPECT_EQ(R.Sound + R.SeqIncomplete + R.Unsound, R.Entries.size());
  EXPECT_EQ(R.negativeEntries(), R.SeqIncomplete + R.Unsound);
  EXPECT_EQ(R.BoundedEntries, 0u) << "atlas budgets must decide exhaustively";
  for (const AtlasEntry &E : R.Entries) {
    // ⊑ ⊆ ⊑w (Prop: simple refinement implies advanced).
    if (E.SeqSimple)
      EXPECT_TRUE(E.SeqAdvanced) << E.Id;
    // Unsound means a context witnessed a difference, so PS^na failed.
    if (E.Verdict == AtlasVerdict::Unsound)
      EXPECT_FALSE(E.Psna) << E.Id;
    if (E.Verdict == AtlasVerdict::SeqIncomplete)
      EXPECT_TRUE(E.Psna && !E.SeqAdvanced) << E.Id;
  }
}

TEST(AtlasDecide, GoldenTable) {
  EXPECT_TRUE(matchesGoldenFile(std::string(PSEQ_GOLDEN_DIR) + "/atlas.md",
                                renderAtlasMarkdown(theAtlas())));
}

// Every ⊑w-accepted-but-PS^na-rejected row must be explained by the
// explorer's documented under-approximation: PS2.1 certification runs
// against capped memory without reservations (psna/Machine.cpp), so a
// source thread can never certify a promise fulfilled by its own adjacent
// RMW — exactly the behavior needed to match an RMW hoisted above a
// silent access. Anything outside that shape is a genuine checker
// soundness bug and must fail here.
TEST(AtlasDecide, MismatchRowsArePinnedToTheReservationGap) {
  const AtlasResult &R = theAtlas();
  std::set<std::string> Found;
  for (const AtlasEntry &E : R.Entries) {
    if (!E.Mismatch)
      continue;
    Found.insert(E.Id);
    EXPECT_EQ(E.Verdict, AtlasVerdict::Sound) << E.Id;
    EXPECT_TRUE(E.SeqAdvanced && !E.Psna) << E.Id;
    bool SrcHasRmw = false;
    for (const AtomSpec &A : E.Src)
      SrcHasRmw |= A.K == AtomSpec::Kind::Rmw;
    EXPECT_TRUE(SrcHasRmw)
        << E.Id << ": mismatch without an RMW in the source cannot be the "
        << "reservation gap — investigate as a checker soundness bug";
  }
  const std::set<std::string> Pinned = {
      "reorder/r1:=x@na; r2:=fadd(y)@rlx,rlx -> r2:=fadd(y)@rlx,rlx; "
      "r1:=x@na",
      "reorder/r1:=x@na; r2:=fadd(y)@acq,rlx -> r2:=fadd(y)@acq,rlx; "
      "r1:=x@na",
  };
  EXPECT_EQ(Found, Pinned);
  EXPECT_EQ(R.Mismatches, Pinned.size());
}

// The atlas-minted negative corpus: all three per-thread SEQ validator
// methods must reject every entry the atlas decided against (⊑ ⊆ ⊑w and
// simulation ⊆ ⊑w, so a ⊑w rejection propagates to all of them). This is
// the validator's fault-injection suite grown to 280+ cases for free.
TEST(AtlasDecide, NegativeEntriesRejectEverySeqMethod) {
  const AtlasResult &R = theAtlas();
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  unsigned Checked = 0;
  for (const AtlasEntry &E : R.Entries) {
    if (E.Verdict == AtlasVerdict::Sound)
      continue;
    TemplateLayout L = templateLayout(E.Src, E.Tgt);
    std::unique_ptr<Program> Src = buildTemplateProgram(E.Src, L);
    std::unique_ptr<Program> Tgt = buildTemplateProgram(E.Tgt, L);
    for (ValidationMethod M :
         {ValidationMethod::Simple, ValidationMethod::Advanced,
          ValidationMethod::Simulation}) {
      ValidationResult V = validateTransform(*Src, *Tgt, Cfg, M);
      EXPECT_FALSE(V.Ok)
          << E.Id << " accepted by " << validationMethodName(M);
      EXPECT_FALSE(V.Bounded) << E.Id;
    }
    ++Checked;
  }
  EXPECT_EQ(Checked, R.negativeEntries());
  EXPECT_GE(Checked, 200u) << "negative corpus unexpectedly small";
}

// The weakening pass cites atlas rows as its justification: every weaken
// row and the two elimination families it leans on (adjacent fence pairs,
// fence after a non-atomic load) must carry PS^na = yes — SEQ rejects the
// label change, no library context observes it. None may be unsound.
TEST(AtlasDecide, WeakenJustificationRowsAreContextSafe) {
  const AtlasResult &R = theAtlas();
  unsigned WeakenRows = 0, FenceElims = 0;
  for (const AtlasEntry &E : R.Entries) {
    bool FencePairElim =
        E.Cat == Category::Eliminate &&
        E.Src.size() == 2 && E.Src[0].K == AtomSpec::Kind::Fence;
    bool FenceAfterLoadElim =
        E.Cat == Category::Eliminate && E.Src.size() == 2 &&
        E.Src[0].K == AtomSpec::Kind::Load &&
        E.Src[1].K == AtomSpec::Kind::Fence;
    if (E.Cat == Category::Weaken)
      ++WeakenRows;
    else if (FencePairElim || FenceAfterLoadElim)
      ++FenceElims;
    else
      continue;
    EXPECT_TRUE(E.Psna) << E.Id << " is not context-safe";
    EXPECT_NE(E.Verdict, AtlasVerdict::Unsound) << E.Id;
  }
  EXPECT_EQ(WeakenRows, 11u);
  EXPECT_EQ(FenceElims, 16u + 4u);
}

// Fence-mode ladder rows the satellite audit pinned: a combined fence
// must behave as both halves in every analysis. The DSE row is the bug
// this PR fixed — the backward walk used to apply the release half first,
// leaving a dead-looking store eliminable across an acqrel/sc fence.
TEST(AtlasDecide, FenceLadderRows) {
  const AtlasResult &R = theAtlas();
  auto entry = [&](const std::string &Id) -> const AtlasEntry & {
    for (const AtlasEntry &E : R.Entries)
      if (E.Id == Id)
        return E;
    ADD_FAILURE() << "missing atlas row " << Id;
    static AtlasEntry Dummy;
    return Dummy;
  };
  // Dropping the second fence of an identical pair changes the label
  // sequence, so no SEQ method certifies it — but no context observes it
  // either: the exact seq-incomplete shape the weakening pass's R1 cites.
  const AtlasEntry &ScSc =
      entry("eliminate/fence@sc; fence@sc -> fence@sc; skip");
  EXPECT_EQ(ScSc.Verdict, AtlasVerdict::SeqIncomplete);
  EXPECT_TRUE(ScSc.Psna);
  const AtlasEntry &ArAr =
      entry("eliminate/fence@acqrel; fence@acqrel -> fence@acqrel; skip");
  EXPECT_EQ(ArAr.Verdict, AtlasVerdict::SeqIncomplete);
  EXPECT_TRUE(ArAr.Psna);
  // Reordering a non-atomic load past an acqrel fence is not ⊑w-certified
  // in either direction (the acquire half blocks one, the release half
  // the other).
  EXPECT_FALSE(
      entry("reorder/r1:=x@na; fence@acqrel -> fence@acqrel; r1:=x@na")
          .SeqAdvanced);
  EXPECT_FALSE(
      entry("reorder/fence@acqrel; r1:=x@na -> r1:=x@na; fence@acqrel")
          .SeqAdvanced);
}

int main(int argc, char **argv) {
  pseq::handleUpdateGoldenFlag(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
