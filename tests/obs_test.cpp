//===- tests/obs_test.cpp - Telemetry subsystem unit tests ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Covers the obs layer in isolation: counter/gauge registries and merge
// semantics, ScopedTally flushing, the hierarchical timer tree, JSONL
// escaping and the PSEQ_TRACE sink contract, and report determinism.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "memo/MemoContext.h"
#include "obs/Counters.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "obs/Timer.h"
#include "obs/TraceSink.h"
#include "seq/BehaviorEnum.h"
#include "seq/SimpleRefinement.h"
#include "support/Truncation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <unistd.h>

using namespace pseq;
using namespace pseq::obs;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::string tempPath(const char *Stem) {
  const char *Dir = std::getenv("TMPDIR");
  std::string Path = Dir && *Dir ? Dir : "/tmp";
  Path += '/';
  Path += Stem;
  Path += '.';
  Path += std::to_string(static_cast<unsigned long long>(::getpid()));
  return Path;
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(Counters, AddAndQuery) {
  Stats S;
  EXPECT_TRUE(S.empty());
  S.add("a.calls");
  S.add("a.calls", 4);
  S.add("b.calls", 2);
  EXPECT_EQ(S.counter("a.calls"), 5u);
  EXPECT_EQ(S.counter("b.calls"), 2u);
  EXPECT_EQ(S.counter("missing"), 0u);
  EXPECT_FALSE(S.empty());
}

TEST(Counters, GaugesSetAndMax) {
  Stats S;
  S.setGauge("depth", 3.0);
  S.maxGauge("depth", 1.0); // lower: keeps 3
  EXPECT_DOUBLE_EQ(S.gauge("depth"), 3.0);
  S.maxGauge("depth", 7.5); // higher: replaces
  EXPECT_DOUBLE_EQ(S.gauge("depth"), 7.5);
  S.setGauge("depth", 2.0); // set always overwrites
  EXPECT_DOUBLE_EQ(S.gauge("depth"), 2.0);
}

TEST(Counters, MergeAddsCountersAndMaxesGauges) {
  Stats A, B;
  A.add("shared", 3);
  A.add("only_a", 1);
  A.setGauge("peak", 10.0);
  B.add("shared", 4);
  B.add("only_b", 2);
  B.setGauge("peak", 6.0);
  B.setGauge("other", 1.0);
  A.merge(B);
  EXPECT_EQ(A.counter("shared"), 7u);
  EXPECT_EQ(A.counter("only_a"), 1u);
  EXPECT_EQ(A.counter("only_b"), 2u);
  EXPECT_DOUBLE_EQ(A.gauge("peak"), 10.0); // gauges take the max
  EXPECT_DOUBLE_EQ(A.gauge("other"), 1.0);
}

TEST(Counters, ScopedTallyFlushesOnDestruction) {
  Stats S;
  {
    ScopedTally Tally(&S);
    uint64_t &Hits = Tally.slot("hits");
    uint64_t &Misses = Tally.slot("misses");
    Hits += 3;
    ++Misses;
    // Same literal name returns the same slot.
    EXPECT_EQ(&Tally.slot("hits"), &Hits);
    // Nothing is visible in the target until flush.
    EXPECT_EQ(S.counter("hits"), 0u);
  }
  EXPECT_EQ(S.counter("hits"), 3u);
  EXPECT_EQ(S.counter("misses"), 1u);
}

TEST(Counters, ScopedTallyExplicitFlushDoesNotDoubleCount) {
  Stats S;
  ScopedTally Tally(&S);
  Tally.slot("n") += 5;
  Tally.flush();
  EXPECT_EQ(S.counter("n"), 5u);
  Tally.slot("n") += 2;
  Tally.flush();
  EXPECT_EQ(S.counter("n"), 7u);
}

TEST(Counters, ScopedTallyNullTargetIsNoop) {
  ScopedTally Tally(nullptr);
  Tally.slot("anything") += 42; // must not crash or leak anywhere
  Tally.flush();
}

TEST(Counters, ScopedTallySkipsZeroSlots) {
  Stats S;
  {
    ScopedTally Tally(&S);
    Tally.slot("touched") += 1;
    Tally.slot("untouched"); // registered but never incremented
  }
  EXPECT_EQ(S.counter("touched"), 1u);
  EXPECT_EQ(S.counters().count("untouched"), 0u);
}

//===----------------------------------------------------------------------===//
// Timers
//===----------------------------------------------------------------------===//

TEST(Timers, NestedPhasesBuildPaths) {
  TimerTree T;
  T.enter("pipeline");
  T.enter("slf");
  T.exit(1.5);
  T.enter("validate");
  T.exit(2.0);
  T.exit(4.0);
  std::vector<TimerTree::Row> Rows = T.rows();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Path, "pipeline");
  EXPECT_EQ(Rows[0].Depth, 0u);
  EXPECT_DOUBLE_EQ(Rows[0].Ms, 4.0);
  EXPECT_EQ(Rows[1].Path, "pipeline/slf");
  EXPECT_EQ(Rows[1].Depth, 1u);
  EXPECT_EQ(Rows[2].Path, "pipeline/validate");
  EXPECT_DOUBLE_EQ(Rows[2].Ms, 2.0);
}

TEST(Timers, ReenteringAPhaseAccumulates) {
  TimerTree T;
  for (int I = 0; I != 3; ++I) {
    T.enter("phase");
    T.exit(1.0);
  }
  std::vector<TimerTree::Row> Rows = T.rows();
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_DOUBLE_EQ(Rows[0].Ms, 3.0);
  EXPECT_EQ(Rows[0].Count, 3u);
}

TEST(Timers, ScopedTimerRecordsOnce) {
  TimerTree T;
  {
    ScopedTimer Outer(&T, "outer");
    ScopedTimer Inner(&T, "inner");
    double Ms = Inner.stop();
    EXPECT_GE(Ms, 0.0);
    // Second stop is idempotent: nothing further is recorded and the
    // outer phase is not closed.
    EXPECT_DOUBLE_EQ(Inner.stop(), 0.0);
  }
  std::vector<TimerTree::Row> Rows = T.rows();
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Path, "outer");
  EXPECT_EQ(Rows[1].Path, "outer/inner");
  EXPECT_EQ(Rows[0].Count, 1u);
  EXPECT_EQ(Rows[1].Count, 1u);
}

TEST(Timers, NullTreeScopedTimerIsNoop) {
  ScopedTimer Timer(nullptr, "nothing");
  EXPECT_DOUBLE_EQ(Timer.stop(), 0.0);
}

//===----------------------------------------------------------------------===//
// JSON encoding and the trace sink
//===----------------------------------------------------------------------===//

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

TEST(Json, NumbersAreFiniteOrNull) {
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  EXPECT_EQ(jsonNumber(0.0), "0");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(TraceSink, JsonlLinesAreWellFormed) {
  std::string Path = tempPath("pseq_obs_trace");
  {
    JsonlTraceSink Sink(Path);
    ASSERT_TRUE(Sink.ok());
    Sink.event("alpha", {{"n", TraceValue(uint64_t(7))},
                         {"neg", TraceValue(int64_t(-3))},
                         {"flag", TraceValue(true)},
                         {"name", TraceValue("say \"hi\"\n")}});
    Sink.event("beta", {{"r", TraceValue(2.5)}});
  }
  std::string Text = slurp(Path);
  // Two newline-terminated lines, sequenced from 0, with escaped strings.
  EXPECT_NE(Text.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(Text.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(Text.find("\"ev\":\"alpha\""), std::string::npos);
  EXPECT_NE(Text.find("\"n\":7"), std::string::npos);
  EXPECT_NE(Text.find("\"neg\":-3"), std::string::npos);
  EXPECT_NE(Text.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(Text.find("\"name\":\"say \\\"hi\\\"\\n\""), std::string::npos);
  EXPECT_NE(Text.find("\"r\":2.5"), std::string::npos);
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n');
  EXPECT_EQ(std::count(Text.begin(), Text.end(), '\n'), 2);

  // The ISSUE contract: every line must round-trip through a strict JSON
  // parser. Use python3 when available, mirroring the documented check.
  if (std::system("command -v python3 >/dev/null 2>&1") == 0) {
    std::string Cmd = "python3 -c \"import json,sys; "
                      "[json.loads(l) for l in sys.stdin]\" < " +
                      Path;
    EXPECT_EQ(std::system(Cmd.c_str()), 0) << "JSONL failed to parse";
  }
  std::remove(Path.c_str());
}

TEST(TraceSink, TelemetryTraceRoutesThroughSink) {
  std::string Path = tempPath("pseq_obs_telem_trace");
  {
    JsonlTraceSink Sink(Path);
    Telemetry T;
    EXPECT_FALSE(T.tracing());
    T.trace("dropped", {}); // no sink attached: silently ignored
    T.Sink = &Sink;
    EXPECT_TRUE(T.tracing());
    T.trace("kept", {{"v", TraceValue(1)}});
  }
  std::string Text = slurp(Path);
  EXPECT_EQ(Text.find("dropped"), std::string::npos);
  EXPECT_NE(Text.find("\"ev\":\"kept\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceSink, EnvContract) {
  // Unset and empty PSEQ_TRACE both mean "no sink".
  ::unsetenv("PSEQ_TRACE");
  EXPECT_EQ(traceSinkFromEnv(), nullptr);
  ::setenv("PSEQ_TRACE", "", 1);
  EXPECT_EQ(traceSinkFromEnv(), nullptr);

  std::string Path = tempPath("pseq_obs_env_trace");
  ::setenv("PSEQ_TRACE", Path.c_str(), 1);
  {
    std::unique_ptr<TraceSink> Sink = traceSinkFromEnv();
    ASSERT_NE(Sink, nullptr);
    EXPECT_TRUE(Sink->enabled());
    Sink->event("env", {});
  }
  ::unsetenv("PSEQ_TRACE");
  EXPECT_NE(slurp(Path).find("\"ev\":\"env\""), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

namespace {

void populate(Telemetry &T) {
  T.Counters.add("z.last", 1);
  T.Counters.add("a.first", 2);
  T.Counters.setGauge("m.gauge", 4.5);
  T.Timers.enter("outer");
  T.Timers.enter("inner");
  T.Timers.exit(1.0);
  T.Timers.exit(2.0);
}

} // namespace

TEST(Report, JsonIsDeterministicAcrossIdenticalRuns) {
  Telemetry A, B;
  populate(A);
  populate(B);
  std::string JA = renderReportJson(A);
  EXPECT_EQ(JA, renderReportJson(B));
  // Counter keys render in sorted order regardless of insertion order.
  size_t First = JA.find("a.first");
  size_t Last = JA.find("z.last");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Last, std::string::npos);
  EXPECT_LT(First, Last);
  EXPECT_NE(JA.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(JA.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(JA.find("\"timers\":["), std::string::npos);
  EXPECT_NE(JA.find("\"path\":\"outer/inner\""), std::string::npos);
}

TEST(Report, TableListsEverySection) {
  Telemetry T;
  populate(T);
  std::string Table = renderReportTable(T);
  EXPECT_NE(Table.find("counters"), std::string::npos);
  EXPECT_NE(Table.find("gauges"), std::string::npos);
  EXPECT_NE(Table.find("timers"), std::string::npos);
  EXPECT_NE(Table.find("a.first"), std::string::npos);
  EXPECT_NE(Table.find("inner"), std::string::npos);

  Telemetry Empty;
  EXPECT_NE(renderReportTable(Empty).find("(no telemetry recorded)"),
            std::string::npos);
}

TEST(Report, WriteJsonRoundTripsThroughParser) {
  Telemetry T;
  populate(T);
  std::string Path = tempPath("pseq_obs_report");
  ASSERT_TRUE(writeReportJson(T, Path));
  if (std::system("command -v python3 >/dev/null 2>&1") == 0) {
    std::string Cmd = "python3 -c \"import json,sys; "
                      "json.load(sys.stdin)\" < " +
                      Path;
    EXPECT_EQ(std::system(Cmd.c_str()), 0) << "report JSON failed to parse";
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Truncation causes
//===----------------------------------------------------------------------===//

TEST(Truncation, NamesAreStable) {
  EXPECT_STREQ(truncationCauseName(TruncationCause::None), "none");
  EXPECT_STREQ(truncationCauseName(TruncationCause::StepBudget),
               "step-budget");
  EXPECT_STREQ(truncationCauseName(TruncationCause::BehaviorCap),
               "behavior-cap");
  EXPECT_STREQ(truncationCauseName(TruncationCause::StateBudget),
               "state-budget");
  EXPECT_STREQ(truncationCauseName(TruncationCause::CertBudget),
               "cert-budget");
}

TEST(Truncation, FirstCauseWins) {
  TruncationCause C = TruncationCause::None;
  noteTruncation(C, TruncationCause::StepBudget);
  noteTruncation(C, TruncationCause::StateBudget);
  EXPECT_EQ(C, TruncationCause::StepBudget);
}

//===----------------------------------------------------------------------===//
// Counters-exact emission under memoization
//===----------------------------------------------------------------------===//

namespace {

/// Enumerates \p P's thread 0 from the all-zero initial state and returns
/// (set, emitted, dedup_hits) read back from a fresh telemetry registry.
struct EmitCounts {
  BehaviorSet B;
  uint64_t Emitted = 0;
  uint64_t DedupHits = 0;
};

EmitCounts enumerateCounted(const Program &P, memo::MemoContext *Memo) {
  Telemetry Telem;
  SeqConfig Cfg;
  Cfg.NumThreads = 1;
  Cfg.Telem = &Telem;
  Cfg.Memo = Memo;
  Cfg = resolveUniverse(Cfg, P, 0, P, 0);
  SeqMachine M(P, 0, Cfg);
  std::vector<Value> Mem(P.numLocs(), Value::of(0));
  EmitCounts Out;
  Out.B = enumerateBehaviors(
      M, M.initial(LocSet::empty(), LocSet::empty(), Mem));
  Out.Emitted = Telem.Counters.counter("seq.enum.behaviors_emitted");
  Out.DedupHits = Telem.Counters.counter("seq.enum.dedup_hits");
  return Out;
}

} // namespace

TEST(EmitInvariant, CountersExactWhenMemoAnswers) {
  // Non-atomic accesses are unlabeled, so revisiting a register-different
  // state under the same trace re-derives identical partial behaviors —
  // this program produces real dedup hits, the regression surface for the
  // memoized emit path.
  std::unique_ptr<Program> P =
      parseOrDie("na y;\n"
                 "thread { a := y@na; b := y@na; y@na := 1; return b; }");

  EmitCounts Plain = enumerateCounted(*P, nullptr);
  ASSERT_GT(Plain.DedupHits, 0u);
  // The invariant itself: every unique behavior is counted exactly once.
  EXPECT_EQ(Plain.Emitted, Plain.B.All.size());

  // First memoized run records the suffix cache; the second answers from
  // it, replaying the emission stream. Both must be counters-exact: the
  // same Emitted (== set size) and the same DedupHits as the plain run.
  memo::MemoContext MC;
  EmitCounts Cold = enumerateCounted(*P, &MC);
  EmitCounts Warm = enumerateCounted(*P, &MC);
  EXPECT_GT(MC.hits(), 0u);

  for (const EmitCounts *E : {&Cold, &Warm}) {
    EXPECT_EQ(Plain.Emitted, E->Emitted);
    EXPECT_EQ(Plain.DedupHits, E->DedupHits);
    EXPECT_EQ(E->Emitted, E->B.All.size());
    EXPECT_EQ(Plain.B.All.size(), E->B.All.size());
    EXPECT_EQ(Plain.B.Cause, E->B.Cause);
  }
}

} // namespace
