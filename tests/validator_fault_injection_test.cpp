//===- tests/validator_fault_injection_test.cpp - Miscompilation nets -----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The translation validator is this library's certificate; it must catch a
// buggy pass. Each case below injects a classic miscompilation — including
// the real-world bug shapes the paper cites (footnote 1: subtle
// interactions detected in informal arguments) — and asserts rejection.
//
//===----------------------------------------------------------------------===//

#include "opt/Validator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

void expectRejected(const char *Src, const char *Tgt, const char *Bug) {
  auto SrcP = prog(Src);
  auto TgtP = prog(Tgt);
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::ternary();
  ValidationResult V = validateTransform(*SrcP, *TgtP, Cfg);
  EXPECT_FALSE(V.Ok) << "validator missed: " << Bug;
  EXPECT_FALSE(V.Counterexample.empty());
  EXPECT_GT(V.StatesExplored, 0u) << "rejection must report the work done";
  EXPECT_GE(V.ElapsedMs, 0.0);
}

void expectAccepted(const char *Src, const char *Tgt, const char *What) {
  auto SrcP = prog(Src);
  auto TgtP = prog(Tgt);
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::ternary();
  ValidationResult V = validateTransform(*SrcP, *TgtP, Cfg);
  EXPECT_TRUE(V.Ok) << What << ": " << V.Counterexample;
  EXPECT_GT(V.StatesExplored, 0u) << "acceptance must report the work done";
  EXPECT_GE(V.ElapsedMs, 0.0);
}

} // namespace

TEST(FaultInjectionTest, WrongForwardedValue) {
  expectRejected("na x;\nthread { x@na := 1; b := x@na; return b; }",
                 "na x;\nthread { x@na := 1; b := 2; return b; }",
                 "SLF forwarding the wrong constant");
}

TEST(FaultInjectionTest, ForwardingAcrossInterveningStore) {
  expectRejected(
      "na x;\nthread { x@na := 1; x@na := 2; b := x@na; return b; }",
      "na x;\nthread { x@na := 1; x@na := 2; b := 1; return b; }",
      "SLF ignoring an intervening store");
}

TEST(FaultInjectionTest, ForwardingAcrossReleaseAcquirePair) {
  expectRejected("na x; atomic y, z;\nthread { x@na := 1; y@rel := 1; "
                 "a := z@acq; b := x@na; return b; }",
                 "na x; atomic y, z;\nthread { x@na := 1; y@rel := 1; "
                 "a := z@acq; b := 1; return b; }",
                 "SLF across a release-acquire pair (Example 2.12)");
}

TEST(FaultInjectionTest, DeadStoreThatIsNotDead) {
  expectRejected(
      "na x;\nthread { x@na := 1; a := x@na; x@na := 2; return a; }",
      "na x;\nthread { skip; a := x@na; x@na := 2; return a; }",
      "DSE across a read of the location");
}

TEST(FaultInjectionTest, EliminatingTheLastStore) {
  expectRejected("na x;\nthread { x@na := 1; return 0; }",
                 "na x;\nthread { skip; return 0; }",
                 "DSE of an externally visible store");
}

TEST(FaultInjectionTest, HoistingLoadAboveAcquire) {
  expectRejected("na x; atomic y;\nthread { a := y@acq; b := x@na; "
                 "return b; }",
                 "na x; atomic y;\nthread { b := x@na; a := y@acq; "
                 "return b; }",
                 "load hoisted above an acquire (Example 2.9(iii))");
}

TEST(FaultInjectionTest, SinkingStoreBelowRelease) {
  expectRejected("na x; atomic y;\nthread { x@na := 1; y@rel := 1; "
                 "return 0; }",
                 "na x; atomic y;\nthread { y@rel := 1; x@na := 1; "
                 "return 0; }",
                 "store sunk below a release (Example 2.9(ii))");
}

TEST(FaultInjectionTest, IntroducedStore) {
  expectRejected("na x;\nthread { a := x@na; return a; }",
                 "na x;\nthread { a := x@na; x@na := a; return a; }",
                 "store introduction (unsound in concurrent code)");
}

TEST(FaultInjectionTest, DroppedSystemCall) {
  expectRejected("na x;\nthread { print(1); return 0; }",
                 "na x;\nthread { return 0; }", "dropped print");
}

TEST(FaultInjectionTest, DuplicatedAtomicWrite) {
  expectRejected("atomic y;\nthread { y@rlx := 1; return 0; }",
                 "atomic y;\nthread { y@rlx := 1; y@rlx := 1; return 0; }",
                 "duplicated atomic write (trace length changes)");
}

TEST(FaultInjectionTest, WeakenedAccessMode) {
  expectRejected("atomic y;\nthread { a := y@acq; return a; }",
                 "atomic y;\nthread { a := y@rlx; return a; }",
                 "acquire weakened to relaxed");
}

TEST(FaultInjectionTest, ConstantFoldingUnwrittenLocation) {
  // Nothing dominates the load: b is whatever the initial memory holds.
  expectRejected("na x;\nthread { a := 1; b := x@na; return a + b; }",
                 "na x;\nthread { a := 1; b := x@na; return 2; }",
                 "folding through an unwritten location");
}

TEST(FaultInjectionTest, DominatedFoldIsActuallySound) {
  // Contrast: with the store dominating the load and no release in
  // between, the fold IS sound — if the permission is absent the source
  // hits UB at the store, which covers everything. The validator must not
  // be over-strict here.
  expectAccepted(
      "na x;\nthread { x@na := 1; a := 1; b := x@na; return a + b; }",
      "na x;\nthread { x@na := 1; a := 1; b := x@na; return 2; }",
      "fold dominated by a store");
}

TEST(FaultInjectionTest, BoundedVerdictReportsTruncationCause) {
  // A choose-driven loop under a tiny step budget: the check cannot be
  // exhaustive, so the verdict must carry the responsible budget.
  const char *Loop = "na x;\n"
                     "thread { c := choose; "
                     "while (c != 0) { x@na := 1; c := choose; } "
                     "return 0; }";
  auto SrcP = prog(Loop);
  auto TgtP = prog(Loop);
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.StepBudget = 6;
  ValidationResult V = validateTransform(*SrcP, *TgtP, Cfg);
  EXPECT_TRUE(V.Bounded);
  EXPECT_NE(V.Cause, TruncationCause::None);
  EXPECT_GT(V.StatesExplored, 0u);
  EXPECT_GT(V.ElapsedMs, 0.0)
      << "ElapsedMs must be measured even without a telemetry handle";
  EXPECT_NE(V.Counterexample.find("[bounded:"), std::string::npos)
      << "bounded verdicts must say why: " << V.Counterexample;
  EXPECT_NE(V.Counterexample.find(truncationCauseName(V.Cause)),
            std::string::npos);
}

TEST(FaultInjectionTest, ExhaustiveVerdictHasNoCause) {
  auto SrcP = prog("na x;\nthread { x@na := 1; return 0; }");
  auto TgtP = prog("na x;\nthread { x@na := 1; return 0; }");
  ValidationResult V = validateTransform(*SrcP, *TgtP);
  EXPECT_TRUE(V.Ok);
  EXPECT_FALSE(V.Bounded);
  EXPECT_EQ(V.Cause, TruncationCause::None);
  EXPECT_TRUE(V.Counterexample.empty());
}

TEST(FaultInjectionTest, SanityAcceptsEquivalentPrograms) {
  expectAccepted("na x;\nthread { x@na := 1; b := x@na; return b; }",
                 "na x;\nthread { x@na := 1; b := 1; return b; }",
                 "genuine SLF must still pass");
  expectAccepted("na x;\nthread { a := x@na; b := x@na; return b; }",
                 "na x;\nthread { a := x@na; b := a; return b; }",
                 "genuine LLF must still pass");
}
