//===- tests/serve_test.cpp - Validation server layer ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Covers the validation-as-a-service stack bottom-up:
//  * wire framing (length prefix, clean EOF, oversize rejection);
//  * the JSON protocol (request/result round trips, strict parse errors);
//  * the memo snapshot format (round trip plus every rejection path:
//    bad magic, version mismatch, truncation, checksum, trailing junk);
//  * MemoContext string-table export/import;
//  * the LRU byte-capped verdict cache, including save/load recency;
//  * job fingerprint sensitivity;
//  * runJob in-process, isolated, and under chaos injection (exactly one
//    verdict per job, crashes retried);
//  * the server end to end over a real Unix socket: batch, stats, shed,
//    graceful shutdown, and a warm SIGTERM-style restart from snapshots.
//
//===----------------------------------------------------------------------===//

#include "guard/Isolate.h"
#include "litmus/Corpus.h"
#include "memo/Snapshot.h"
#include "obs/JsonValue.h"
#include "obs/Telemetry.h"
#include "serve/Job.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Wire.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/socket.h>
#include <unistd.h>
#define PSEQ_TEST_POSIX 1
#endif

using namespace pseq;

#if defined(__SANITIZE_THREAD__)
#define PSEQ_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSEQ_TEST_TSAN 1
#endif
#endif
#ifndef PSEQ_TEST_TSAN
#define PSEQ_TEST_TSAN 0
#endif

namespace {

/// A fresh temp directory for sockets and snapshot files.
std::string makeTempDir() {
  char Template[] = "/tmp/pseq-serve-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "/tmp";
}

memo::Fp128 testKey(uint64_t I) {
  memo::Fp128 F = memo::fpSeed(0xfeedULL);
  memo::fpMix(F, I);
  return F.sealed();
}

/// A known-good refinement pair (advanced verdict holds, no loops).
const RefinementCase &okCase() {
  for (const RefinementCase &C : refinementCorpus())
    if (C.AdvancedHolds && !C.HasLoops)
      return C;
  return refinementCorpus().front();
}

serve::JobRequest pairJob(uint64_t Id, const RefinementCase &C) {
  serve::JobRequest J;
  J.Id = Id;
  J.Source = C.Src;
  J.Target = C.Tgt;
  J.Method = ValidationMethod::Advanced;
  J.StepBudget = C.StepBudget;
  return J;
}

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

#ifdef PSEQ_TEST_POSIX

/// A connected (client fd, server fd) pair over a real Unix socket.
struct WirePair {
  int Client = -1;
  int Server = -1;
  ~WirePair() {
    if (Client >= 0)
      serve::closeFd(Client);
    if (Server >= 0)
      serve::closeFd(Server);
  }
};

bool makeWirePair(const std::string &Dir, WirePair &P) {
  std::string Path = Dir + "/wire.sock";
  int Listen = serve::listenUnix(Path);
  if (Listen < 0)
    return false;
  P.Client = serve::connectUnix(Path);
  if (P.Client < 0) {
    serve::closeFd(Listen);
    return false;
  }
  P.Server = accept(Listen, nullptr, nullptr);
  serve::closeFd(Listen);
  return P.Server >= 0;
}

TEST(WireTest, FramesRoundTripInOrder) {
  std::string Dir = makeTempDir();
  WirePair P;
  ASSERT_TRUE(makeWirePair(Dir, P));

  // Several frames of varying size, including an empty payload and one
  // with embedded NULs — the length prefix, not content, delimits frames.
  std::vector<std::string> Sent = {"", "a", std::string("\0\x01n", 3),
                                   std::string(100000, 'x')};
  for (const std::string &S : Sent)
    ASSERT_TRUE(serve::sendFrame(P.Client, S));
  for (const std::string &S : Sent) {
    std::string Got;
    ASSERT_TRUE(serve::recvFrame(P.Server, Got));
    EXPECT_EQ(Got, S);
  }
}

TEST(WireTest, CleanEofIsNotAnError) {
  std::string Dir = makeTempDir();
  WirePair P;
  ASSERT_TRUE(makeWirePair(Dir, P));
  serve::closeFd(P.Client);
  P.Client = -1;

  std::string Got, Err = "sentinel";
  EXPECT_FALSE(serve::recvFrame(P.Server, Got, &Err));
  EXPECT_TRUE(Err.empty()) << "clean EOF must clear Err, got: " << Err;
}

TEST(WireTest, OversizeFrameIsRejectedBySender) {
  std::string Dir = makeTempDir();
  WirePair P;
  ASSERT_TRUE(makeWirePair(Dir, P));
  std::string Huge(serve::MaxFrameBytes + 1, 'x');
  std::string Err;
  EXPECT_FALSE(serve::sendFrame(P.Client, Huge, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(WireTest, CorruptLengthPrefixIsRejectedByReceiver) {
  std::string Dir = makeTempDir();
  WirePair P;
  ASSERT_TRUE(makeWirePair(Dir, P));
  // A hostile length field far past the cap must be a clean protocol
  // error, not a 4 GB allocation.
  const unsigned char Header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(write(P.Client, Header, 4), 4);
  std::string Got, Err;
  EXPECT_FALSE(serve::recvFrame(P.Server, Got, &Err));
  EXPECT_FALSE(Err.empty());
}

#endif // PSEQ_TEST_POSIX

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ControlOpsRoundTrip) {
  EXPECT_EQ(serve::parseRequest(serve::encodePing()).Op,
            serve::RequestOp::Ping);
  EXPECT_EQ(serve::parseRequest(serve::encodeStatsRequest()).Op,
            serve::RequestOp::Stats);
  EXPECT_EQ(serve::parseRequest(serve::encodeShutdown()).Op,
            serve::RequestOp::Shutdown);
  EXPECT_EQ(serve::replyOp(serve::encodePong()), "pong");
  EXPECT_EQ(serve::replyOp(serve::encodeShutdownAck()), "ok");
  EXPECT_EQ(serve::replyOp(serve::encodeErrorReply("bad")), "error");
}

TEST(ProtocolTest, JobRequestRoundTrip) {
  serve::JobRequest J;
  J.Id = 42;
  J.Source = "na x;\nthread { x@na := 1; return 0; }";
  J.Target = "na x;\nthread { return 0; }";
  J.Method = ValidationMethod::Simple;
  J.StepBudget = 17;
  J.DeadlineMs = 1234;
  J.MemMb = 99;

  serve::Request R = serve::parseRequest(serve::encodeJobRequest(J));
  ASSERT_EQ(R.Op, serve::RequestOp::Job);
  EXPECT_EQ(R.Job.Id, J.Id);
  EXPECT_EQ(R.Job.Source, J.Source);
  EXPECT_EQ(R.Job.Target, J.Target);
  EXPECT_EQ(R.Job.Method, J.Method);
  EXPECT_EQ(R.Job.StepBudget, J.StepBudget);
  EXPECT_EQ(R.Job.DeadlineMs, J.DeadlineMs);
  EXPECT_EQ(R.Job.MemMb, J.MemMb);
}

TEST(ProtocolTest, JobResultRoundTrip) {
  serve::JobResult R;
  R.Id = 7;
  R.Status = serve::JobStatus::Bounded;
  R.Detail = "truncated \"mid\" run";
  R.Cause = "step-budget";
  R.Lint = "racy";
  R.Attempts = 2;
  R.CacheHit = true;
  R.ElapsedMs = 12.5;
  R.PeakRssKb = 4096;
  R.UserMs = 7.25;
  R.SysMs = 1.5;

  serve::JobResult Back;
  std::string Err;
  ASSERT_TRUE(serve::parseJobResult(serve::encodeJobResult(R), Back, Err))
      << Err;
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Status, R.Status);
  EXPECT_EQ(Back.Detail, R.Detail);
  EXPECT_EQ(Back.Cause, R.Cause);
  EXPECT_EQ(Back.Lint, R.Lint);
  EXPECT_EQ(Back.Attempts, R.Attempts);
  EXPECT_EQ(Back.CacheHit, R.CacheHit);
  EXPECT_EQ(Back.PeakRssKb, R.PeakRssKb);
  EXPECT_DOUBLE_EQ(Back.UserMs, R.UserMs);
  EXPECT_DOUBLE_EQ(Back.SysMs, R.SysMs);
}

TEST(ProtocolTest, MalformedRequestsAreInvalidNotDefaulted) {
  const char *Bad[] = {
      "",                                  // empty
      "not json",                          // unparseable
      "[1,2]",                             // not an object
      "{\"no_op\":1}",                     // missing discriminator
      "{\"op\":\"warp\"}",                 // unknown op
      "{\"op\":\"job\"}",                  // job without id/source
      "{\"op\":\"job\",\"id\":1}",         // job without source
      "{\"op\":\"job\",\"id\":1,\"source\":\"x\","
      "\"method\":\"psna\"}",              // non-requestable method
  };
  for (const char *P : Bad) {
    serve::Request R = serve::parseRequest(P);
    EXPECT_EQ(R.Op, serve::RequestOp::Invalid) << "payload: " << P;
    EXPECT_FALSE(R.ParseErr.empty()) << "payload: " << P;
  }
}

TEST(ProtocolTest, StatsReplyCarriesCountersAndGauges) {
  std::map<std::string, uint64_t> C{{"serve.jobs", 3}};
  std::map<std::string, double> G{{"serve.queue.depth", 1.5}};
  std::string Payload = serve::encodeStatsReply(C, G);
  EXPECT_EQ(serve::replyOp(Payload), "stats");
  obs::JsonValue V;
  ASSERT_TRUE(obs::JsonValue::parse(Payload, V));
  const obs::JsonValue *Counters = V.field("counters");
  ASSERT_NE(Counters, nullptr);
  const obs::JsonValue *Jobs = Counters->field("serve.jobs");
  ASSERT_NE(Jobs, nullptr);
  EXPECT_EQ(Jobs->asNumber(), 3.0);
}

//===----------------------------------------------------------------------===//
// Snapshot format
//===----------------------------------------------------------------------===//

std::vector<memo::MemoContext::StringEntry> sampleEntries() {
  std::vector<memo::MemoContext::StringEntry> Entries;
  for (uint64_t I = 0; I != 5; ++I)
    Entries.push_back({testKey(I), "verdict-" + std::to_string(I)});
  Entries.push_back({testKey(99), std::string("\0binary\xff", 8)});
  return Entries;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  std::vector<memo::MemoContext::StringEntry> In = sampleEntries();
  std::string Bytes = memo::encodeSnapshot(In);

  std::vector<memo::MemoContext::StringEntry> Out;
  std::string Err;
  ASSERT_TRUE(memo::decodeSnapshot(Bytes, Out, Err)) << Err;
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I != In.size(); ++I) {
    EXPECT_EQ(Out[I].Key.Lo, In[I].Key.Lo);
    EXPECT_EQ(Out[I].Key.Hi, In[I].Key.Hi);
    EXPECT_EQ(Out[I].Value, In[I].Value);
  }
}

TEST(SnapshotTest, EncodingIsDeterministic) {
  EXPECT_EQ(memo::encodeSnapshot(sampleEntries()),
            memo::encodeSnapshot(sampleEntries()));
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::string Bytes = memo::encodeSnapshot(sampleEntries());
  Bytes[0] = 'X';
  std::vector<memo::MemoContext::StringEntry> Out;
  std::string Err;
  EXPECT_FALSE(memo::decodeSnapshot(Bytes, Out, Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
  EXPECT_TRUE(Out.empty());
}

TEST(SnapshotTest, RejectsVersionMismatch) {
  std::string Bytes = memo::encodeSnapshot(sampleEntries());
  Bytes[8] = static_cast<char>(memo::SnapshotVersion + 1); // u32 LE low byte
  std::vector<memo::MemoContext::StringEntry> Out;
  std::string Err;
  EXPECT_FALSE(memo::decodeSnapshot(Bytes, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST(SnapshotTest, RejectsEveryTruncationPoint) {
  std::string Bytes = memo::encodeSnapshot(sampleEntries());
  // Chop the file at a spread of byte offsets: header, mid-entry, and
  // mid-checksum. Every prefix must be rejected cleanly with no entries
  // leaking out.
  for (size_t Len : {size_t(0), size_t(4), size_t(11), size_t(20),
                     Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<memo::MemoContext::StringEntry> Out;
    std::string Err;
    EXPECT_FALSE(memo::decodeSnapshot(Bytes.substr(0, Len), Out, Err))
        << "accepted a " << Len << "-byte truncation";
    EXPECT_FALSE(Err.empty());
    EXPECT_TRUE(Out.empty()) << "partial load at " << Len << " bytes";
  }
}

TEST(SnapshotTest, RejectsCorruptedPayloadByChecksum) {
  std::string Bytes = memo::encodeSnapshot(sampleEntries());
  Bytes[Bytes.size() / 2] ^= 0x40; // flip a payload bit
  std::vector<memo::MemoContext::StringEntry> Out;
  std::string Err;
  EXPECT_FALSE(memo::decodeSnapshot(Bytes, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SnapshotTest, RejectsTrailingJunk) {
  std::string Bytes = memo::encodeSnapshot(sampleEntries()) + "junk";
  std::vector<memo::MemoContext::StringEntry> Out;
  std::string Err;
  EXPECT_FALSE(memo::decodeSnapshot(Bytes, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SnapshotTest, MemoContextSaveLoadRoundTrip) {
  std::string Dir = makeTempDir();
  std::string Path = Dir + "/table.snap";

  memo::MemoContext Src;
  for (uint64_t I = 0; I != 8; ++I)
    Src.insertAs<std::string>(
        memo::MemoContext::Table::ServeVerdicts, testKey(I),
        std::make_shared<const std::string>("v" + std::to_string(I)));
  std::string Err;
  ASSERT_TRUE(memo::saveSnapshot(Src, memo::MemoContext::Table::ServeVerdicts,
                                 Path, Err))
      << Err;

  memo::MemoContext Dst;
  uint64_t Loaded = 0;
  ASSERT_TRUE(memo::loadSnapshot(Dst, memo::MemoContext::Table::ServeVerdicts,
                                 Path, Loaded, Err))
      << Err;
  EXPECT_EQ(Loaded, 8u);
  for (uint64_t I = 0; I != 8; ++I) {
    auto V = Dst.lookupAs<std::string>(
        memo::MemoContext::Table::ServeVerdicts, testKey(I));
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, "v" + std::to_string(I));
  }

  // Re-import into a context that already holds one key: first-writer-wins
  // keeps the live entry, so only the other 7 count as inserted.
  memo::MemoContext Mixed;
  Mixed.insertAs<std::string>(memo::MemoContext::Table::ServeVerdicts,
                              testKey(0),
                              std::make_shared<const std::string>("live"));
  ASSERT_TRUE(memo::loadSnapshot(Mixed,
                                 memo::MemoContext::Table::ServeVerdicts,
                                 Path, Loaded, Err))
      << Err;
  EXPECT_EQ(Loaded, 7u);
  auto Kept = Mixed.lookupAs<std::string>(
      memo::MemoContext::Table::ServeVerdicts, testKey(0));
  ASSERT_NE(Kept, nullptr);
  EXPECT_EQ(*Kept, "live");
}

TEST(SnapshotTest, MissingFileIsAnErrorForLoad) {
  memo::MemoContext Ctx;
  uint64_t Loaded = 0;
  std::string Err;
  EXPECT_FALSE(memo::loadSnapshot(Ctx,
                                  memo::MemoContext::Table::ServeVerdicts,
                                  makeTempDir() + "/absent.snap", Loaded,
                                  Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Verdict cache
//===----------------------------------------------------------------------===//

TEST(VerdictCacheTest, HitMissAndRecency) {
  serve::VerdictCache Cache(1 << 20);
  std::string V;
  EXPECT_FALSE(Cache.lookup(testKey(1), V));
  Cache.insert(testKey(1), "one");
  ASSERT_TRUE(Cache.lookup(testKey(1), V));
  EXPECT_EQ(V, "one");

  serve::VerdictCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(VerdictCacheTest, EvictsLeastRecentlyUsedPastByteCap) {
  // Cap fits ~4 entries (100-byte values + 64 bookkeeping each).
  serve::VerdictCache Cache(4 * (100 + 64));
  std::string Value(100, 'v');
  for (uint64_t I = 0; I != 4; ++I)
    Cache.insert(testKey(I), Value);
  EXPECT_EQ(Cache.stats().Entries, 4u);

  // Touch 0 so it is the most recent, then overflow: 1 must go, 0 stays.
  std::string V;
  ASSERT_TRUE(Cache.lookup(testKey(0), V));
  Cache.insert(testKey(4), Value);

  serve::VerdictCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 4u);
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_TRUE(Cache.lookup(testKey(0), V));
  EXPECT_FALSE(Cache.lookup(testKey(1), V));
  EXPECT_TRUE(Cache.lookup(testKey(4), V));
}

TEST(VerdictCacheTest, OversizeValueIsIgnoredAndZeroCapDisables) {
  serve::VerdictCache Tiny(32);
  Tiny.insert(testKey(1), std::string(1000, 'x'));
  EXPECT_EQ(Tiny.stats().Entries, 0u);

  serve::VerdictCache Off(0);
  Off.insert(testKey(1), "x");
  std::string V;
  EXPECT_FALSE(Off.lookup(testKey(1), V));
}

TEST(VerdictCacheTest, SaveLoadPreservesEntriesAndRecencyOrder) {
  std::string Dir = makeTempDir();
  std::string Path = Dir + "/cache.snap";

  serve::VerdictCache Cache(1 << 20);
  for (uint64_t I = 0; I != 6; ++I)
    Cache.insert(testKey(I), "value-" + std::to_string(I));
  std::string Err;
  ASSERT_TRUE(Cache.save(Path, Err)) << Err;

  serve::VerdictCache Back(1 << 20);
  uint64_t Loaded = 0;
  ASSERT_TRUE(Back.load(Path, Loaded, Err)) << Err;
  EXPECT_EQ(Loaded, 6u);
  for (uint64_t I = 0; I != 6; ++I) {
    std::string V;
    ASSERT_TRUE(Back.lookup(testKey(I), V)) << "entry " << I << " lost";
    EXPECT_EQ(V, "value-" + std::to_string(I));
  }

  // A small cache reloading the same snapshot keeps the *hottest* entries:
  // export is most-recent-first, so the last-inserted keys survive.
  serve::VerdictCache Small(2 * ("value-0" + std::string()).size() + 2 * 64);
  ASSERT_TRUE(Small.load(Path, Loaded, Err)) << Err;
  std::string V;
  EXPECT_TRUE(Small.lookup(testKey(5), V));
  EXPECT_FALSE(Small.lookup(testKey(0), V));
}

TEST(VerdictCacheTest, LoadRejectsCorruptFileAndKeepsCacheUnchanged) {
  std::string Dir = makeTempDir();
  std::string Path = Dir + "/corrupt.snap";
  ASSERT_TRUE(support::writeFileAtomic(Path, "definitely not a snapshot"));

  serve::VerdictCache Cache(1 << 20);
  Cache.insert(testKey(1), "keep");
  uint64_t Loaded = 0;
  std::string Err;
  EXPECT_FALSE(Cache.load(Path, Loaded, Err));
  EXPECT_FALSE(Err.empty());
  std::string V;
  EXPECT_TRUE(Cache.lookup(testKey(1), V));
}

//===----------------------------------------------------------------------===//
// Jobs
//===----------------------------------------------------------------------===//

TEST(JobTest, FingerprintSeparatesEveryCachedDimension) {
  serve::JobPolicy Policy;
  serve::JobRequest Base;
  Base.Source = "na x;\nthread { x@na := 1; return 0; }";
  Base.Target = "na x;\nthread { return 0; }";
  Base.StepBudget = 10;

  memo::Fp128 F0 = serve::jobFingerprint(Base, Policy);
  EXPECT_EQ(F0.Lo, serve::jobFingerprint(Base, Policy).Lo); // deterministic

  serve::JobRequest Alt = Base;
  Alt.Source += " ";
  EXPECT_NE(serve::jobFingerprint(Alt, Policy).Lo, F0.Lo);

  Alt = Base;
  Alt.Target += " ";
  EXPECT_NE(serve::jobFingerprint(Alt, Policy).Lo, F0.Lo);

  Alt = Base;
  Alt.StepBudget = 11;
  EXPECT_NE(serve::jobFingerprint(Alt, Policy).Lo, F0.Lo);

  Alt = Base;
  Alt.Method = ValidationMethod::Simple;
  EXPECT_NE(serve::jobFingerprint(Alt, Policy).Lo, F0.Lo);

  // Ids and deadlines change nothing — they are not part of the verdict.
  Alt = Base;
  Alt.Id = 777;
  Alt.DeadlineMs = 123;
  EXPECT_EQ(serve::jobFingerprint(Alt, Policy).Lo, F0.Lo);
}

TEST(JobTest, InProcessVerdictThenCacheHit) {
  serve::JobPolicy Policy;
  Policy.Isolate = false;
  memo::MemoContext Memo;
  serve::VerdictCache Cache(1 << 20);
  serve::JobDeps Deps{&Memo, &Cache};

  serve::JobRequest J = pairJob(1, okCase());
  serve::JobTrace T1;
  serve::JobResult R1 = serve::runJob(J, Policy, Deps, T1);
  EXPECT_EQ(R1.Status, serve::JobStatus::Ok) << R1.Detail;
  EXPECT_FALSE(R1.CacheHit);
  EXPECT_FALSE(R1.Lint.empty());
  EXPECT_TRUE(T1.CacheStored);

  // Same job content, different request id: answered from the cache with
  // the new id echoed.
  J.Id = 2;
  serve::JobTrace T2;
  serve::JobResult R2 = serve::runJob(J, Policy, Deps, T2);
  EXPECT_TRUE(R2.CacheHit);
  EXPECT_EQ(R2.Id, 2u);
  EXPECT_EQ(R2.Status, serve::JobStatus::Ok);
  EXPECT_GE(Cache.stats().Hits, 1u);
}

TEST(JobTest, LintVerdictIsMemoizedAcrossJobsOfTheSameSource) {
  serve::JobPolicy Policy;
  Policy.Isolate = false;
  memo::MemoContext Memo;
  serve::JobDeps Deps{&Memo, nullptr}; // no response cache: forces reruns

  serve::JobRequest J = pairJob(1, okCase());
  serve::JobTrace T;
  serve::runJob(J, Policy, Deps, T);
  EXPECT_EQ(Memo.hits(), 0u);
  ASSERT_EQ(Memo.entryCount(memo::MemoContext::Table::ServeVerdicts), 1u);

  serve::runJob(J, Policy, Deps, T);
  EXPECT_EQ(Memo.hits(), 1u);
}

TEST(JobTest, UnparseableSourceIsBadRequestNotACrash) {
  serve::JobPolicy Policy;
  Policy.Isolate = false;
  serve::JobDeps Deps;
  serve::JobRequest J;
  J.Id = 9;
  J.Source = "this is not a program";
  serve::JobTrace T;
  serve::JobResult R = serve::runJob(J, Policy, Deps, T);
  EXPECT_EQ(R.Status, serve::JobStatus::BadRequest);
  EXPECT_FALSE(R.Detail.empty());
}

TEST(JobTest, IsolatedJobCarriesRusage) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  serve::JobPolicy Policy;
  serve::JobDeps Deps;
  serve::JobRequest J = pairJob(1, okCase());
  serve::JobTrace T;
  serve::JobResult R = serve::runJob(J, Policy, Deps, T);
  EXPECT_EQ(R.Status, serve::JobStatus::Ok) << R.Detail;
  EXPECT_EQ(R.Attempts, 1u);
  EXPECT_GT(R.PeakRssKb, 0u) << "child rusage not captured";
}

TEST(JobTest, ChaosKillIsRetriedToARealVerdict) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  serve::JobPolicy Policy;
  Policy.Chaos = true;
  Policy.BackoffBaseMs = 1; // keep the test fast
  serve::JobDeps Deps;

  // Walk the corpus until the deterministic chaos predicate selects a job;
  // over the whole corpus (~1/3 selection rate) one is all but certain.
  bool SawInjection = false;
  for (const RefinementCase &C : refinementCorpus()) {
    if (C.HasLoops)
      continue;
    serve::JobRequest J = pairJob(1, C);
    serve::JobTrace T;
    serve::JobResult R = serve::runJob(J, Policy, Deps, T);
    // Chaos or not, every job ends in a classified taxonomy status.
    EXPECT_NE(R.Status, serve::JobStatus::Shutdown);
    if (!T.ChaosInjected)
      continue;
    SawInjection = true;
    // The first attempt was SIGKILLed mid-job; the retry must converge to
    // the job's real verdict, not report the injected crash.
    EXPECT_EQ(T.Retries, 1u);
    EXPECT_EQ(R.Attempts, 2u);
    EXPECT_NE(R.Status, serve::JobStatus::Crash) << R.Detail;
    break;
  }
  EXPECT_TRUE(SawInjection)
      << "chaos predicate selected no corpus job; seed drifted?";
}

TEST(JobTest, ChaosSelectionIsDeterministic) {
  serve::JobPolicy Policy;
  Policy.Chaos = true;
  // The selection is a pure function of (fingerprint, seed), so two
  // servers with the same seed kill the same jobs — what makes the CI
  // chaos smoke reproducible. Verified indirectly: fingerprints are
  // deterministic (above) and the predicate is pure; here just pin that
  // the fingerprint of a fixed request does not drift across calls.
  serve::JobRequest J;
  J.Source = "na x;\nthread { x@na := 1; return 0; }";
  memo::Fp128 A = serve::jobFingerprint(J, Policy);
  memo::Fp128 B = serve::jobFingerprint(J, Policy);
  EXPECT_EQ(A.Lo, B.Lo);
  EXPECT_EQ(A.Hi, B.Hi);
}

//===----------------------------------------------------------------------===//
// Server end to end
//===----------------------------------------------------------------------===//

#ifdef PSEQ_TEST_POSIX

/// Runs a server on its own thread; joins on destruction.
struct ServerHandle {
  std::unique_ptr<serve::Server> Srv;
  std::thread Runner;

  explicit ServerHandle(serve::ServerOptions Opts)
      : Srv(std::make_unique<serve::Server>(std::move(Opts))) {}

  bool start() {
    std::string Err;
    if (!Srv->start(Err)) {
      ADD_FAILURE() << "server start failed: " << Err;
      return false;
    }
    Runner = std::thread([this] { Srv->run(); });
    return true;
  }

  void stopAndJoin() {
    Srv->requestStop();
    if (Runner.joinable())
      Runner.join();
  }

  ~ServerHandle() { stopAndJoin(); }
};

/// Submits \p Jobs on one connection and collects one result per id.
std::map<uint64_t, serve::JobResult>
submitBatch(const std::string &Socket,
            const std::vector<serve::JobRequest> &Jobs) {
  std::map<uint64_t, serve::JobResult> Results;
  int Fd = serve::connectUnix(Socket);
  if (Fd < 0) {
    ADD_FAILURE() << "cannot connect to " << Socket;
    return Results;
  }
  for (const serve::JobRequest &J : Jobs)
    EXPECT_TRUE(serve::sendFrame(Fd, serve::encodeJobRequest(J)));
  std::string Payload, Err;
  while (Results.size() < Jobs.size()) {
    if (!serve::recvFrame(Fd, Payload, &Err)) {
      ADD_FAILURE() << "connection lost after " << Results.size() << "/"
                    << Jobs.size() << " replies: " << Err;
      break;
    }
    serve::JobResult R;
    if (!serve::parseJobResult(Payload, R, Err)) {
      ADD_FAILURE() << "bad reply: " << Err;
      break;
    }
    EXPECT_TRUE(Results.emplace(R.Id, R).second)
        << "duplicate reply for job " << R.Id;
  }
  serve::closeFd(Fd);
  return Results;
}

TEST(ServerTest, BatchStatsAndGracefulShutdown) {
  std::string Dir = makeTempDir();
  serve::ServerOptions Opts;
  Opts.SocketPath = Dir + "/srv.sock";
  Opts.NumWorkers = 2;
  Opts.Policy.Isolate = false; // in-process workers: TSan-safe
  ServerHandle H(std::move(Opts));
  ASSERT_TRUE(H.start());

  // Ping.
  int Fd = serve::connectUnix(Dir + "/srv.sock");
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(serve::sendFrame(Fd, serve::encodePing()));
  std::string Payload;
  ASSERT_TRUE(serve::recvFrame(Fd, Payload));
  EXPECT_EQ(serve::replyOp(Payload), "pong");

  // A malformed frame is answered with an error reply, not a dropped
  // connection.
  ASSERT_TRUE(serve::sendFrame(Fd, "{\"op\":\"warp\"}"));
  ASSERT_TRUE(serve::recvFrame(Fd, Payload));
  EXPECT_EQ(serve::replyOp(Payload), "error");
  serve::closeFd(Fd);

  // A small batch: every job gets exactly one reply.
  std::vector<serve::JobRequest> Jobs;
  const std::vector<RefinementCase> &Corpus = refinementCorpus();
  for (size_t I = 0; I != 3 && I != Corpus.size(); ++I)
    Jobs.push_back(pairJob(I + 1, Corpus[I]));
  std::map<uint64_t, serve::JobResult> Results =
      submitBatch(Dir + "/srv.sock", Jobs);
  ASSERT_EQ(Results.size(), Jobs.size());

  // Stats op reflects the batch.
  Fd = serve::connectUnix(Dir + "/srv.sock");
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(serve::sendFrame(Fd, serve::encodeStatsRequest()));
  ASSERT_TRUE(serve::recvFrame(Fd, Payload));
  obs::JsonValue V;
  ASSERT_TRUE(obs::JsonValue::parse(Payload, V));
  const obs::JsonValue *Counters = V.field("counters");
  ASSERT_NE(Counters, nullptr);
  const obs::JsonValue *JobsRan = Counters->field("serve.jobs");
  ASSERT_NE(JobsRan, nullptr);
  EXPECT_GE(JobsRan->asNumber(), 3.0);

  // Shutdown op: acknowledged, then the run loop drains and returns.
  ASSERT_TRUE(serve::sendFrame(Fd, serve::encodeShutdown()));
  ASSERT_TRUE(serve::recvFrame(Fd, Payload));
  EXPECT_EQ(serve::replyOp(Payload), "ok");
  serve::closeFd(Fd);
  H.stopAndJoin();
  EXPECT_GE(H.Srv->tallies().Jobs.load(), 3u);
}

TEST(ServerTest, ShedsExplicitlyPastHighWater) {
  std::string Dir = makeTempDir();
  serve::ServerOptions Opts;
  Opts.SocketPath = Dir + "/srv.sock";
  Opts.NumWorkers = 1;
  Opts.QueueHighWater = 0; // degenerate: every admission sheds
  Opts.Policy.Isolate = false;
  ServerHandle H(std::move(Opts));
  ASSERT_TRUE(H.start());

  std::vector<serve::JobRequest> Jobs;
  Jobs.push_back(pairJob(1, okCase()));
  Jobs.push_back(pairJob(2, okCase()));
  std::map<uint64_t, serve::JobResult> Results =
      submitBatch(Dir + "/srv.sock", Jobs);
  ASSERT_EQ(Results.size(), 2u);
  for (const auto &KV : Results)
    EXPECT_EQ(KV.second.Status, serve::JobStatus::Overloaded);
  H.stopAndJoin();
  EXPECT_EQ(H.Srv->tallies().Shed.load(), 2u);
}

TEST(ServerTest, WarmRestartAnswersFromSnapshots) {
  std::string Dir = makeTempDir();
  std::string Socket = Dir + "/srv.sock";
  std::string Snap = Dir + "/verdicts.snap";

  std::vector<serve::JobRequest> Jobs;
  const std::vector<RefinementCase> &Corpus = refinementCorpus();
  for (size_t I = 0; I != 3 && I != Corpus.size(); ++I)
    Jobs.push_back(pairJob(I + 1, Corpus[I]));

  // First life: run the batch cold, then drain (the SIGTERM path calls
  // exactly this: requestStop + run-to-completion saves the snapshots).
  {
    serve::ServerOptions Opts;
    Opts.SocketPath = Socket;
    Opts.SnapshotPath = Snap;
    Opts.Policy.Isolate = false;
    ServerHandle H(std::move(Opts));
    ASSERT_TRUE(H.start());
    std::map<uint64_t, serve::JobResult> R = submitBatch(Socket, Jobs);
    ASSERT_EQ(R.size(), Jobs.size());
    for (const auto &KV : R)
      EXPECT_FALSE(KV.second.CacheHit);
    H.stopAndJoin();
    EXPECT_GT(H.Srv->tallies().SnapshotSaved.load(), 0u);
  }
  std::string SnapBytes;
  ASSERT_TRUE(support::readFileAll(Snap, SnapBytes));
  EXPECT_FALSE(SnapBytes.empty());

  // Second life: same snapshot path — the whole batch replays from the
  // reloaded verdict cache without rerunning any engine.
  {
    serve::ServerOptions Opts;
    Opts.SocketPath = Socket;
    Opts.SnapshotPath = Snap;
    Opts.Policy.Isolate = false;
    ServerHandle H(std::move(Opts));
    ASSERT_TRUE(H.start());
    EXPECT_GT(H.Srv->tallies().SnapshotLoaded.load(), 0u);
    std::map<uint64_t, serve::JobResult> R = submitBatch(Socket, Jobs);
    ASSERT_EQ(R.size(), Jobs.size());
    for (const auto &KV : R)
      EXPECT_TRUE(KV.second.CacheHit)
          << "job " << KV.first << " missed the warm cache";
    H.stopAndJoin();
  }
}

TEST(ServerTest, QueuedJobsAreAnsweredShutdownOnDrain) {
  std::string Dir = makeTempDir();
  serve::ServerOptions Opts;
  Opts.SocketPath = Dir + "/srv.sock";
  Opts.Policy.Isolate = false;
  ServerHandle H(std::move(Opts));
  ASSERT_TRUE(H.start());

  // Stop admissions first, then submit: the job arrives while draining
  // and must still get a reply (status shutdown), never silence.
  H.Srv->requestStop();
  int Fd = serve::connectUnix(Dir + "/srv.sock");
  if (Fd >= 0) {
    serve::JobRequest J = pairJob(1, okCase());
    if (serve::sendFrame(Fd, serve::encodeJobRequest(J))) {
      std::string Payload, Err;
      if (serve::recvFrame(Fd, Payload, &Err)) {
        serve::JobResult R;
        ASSERT_TRUE(serve::parseJobResult(Payload, R, Err)) << Err;
        EXPECT_EQ(R.Status, serve::JobStatus::Shutdown);
      }
    }
    serve::closeFd(Fd);
  }
  H.stopAndJoin();
}

#endif // PSEQ_TEST_POSIX

} // namespace
