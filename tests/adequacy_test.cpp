//===- tests/adequacy_test.cpp - Theorem 6.2 harness (E13) ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Empirically validates the adequacy theorem: whenever the SEQ advanced
// refinement (⊑w) validates a transformation, PS^na behavior inclusion
// holds under every context in the library. Also checks that unsound
// corpus transformations are separated by some PS^na context (witnesses),
// and sweeps random program pairs.
//
//===----------------------------------------------------------------------===//

#include "adequacy/Harness.h"
#include "adequacy/RandomProgram.h"
#include "lang/Parser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

PsConfig psCfg() {
  PsConfig C;
  C.Domain = ValueDomain::binary();
  C.PromiseBudget = 0; // promise-free contextual check (fast); promise
                       // sensitivity is covered by litmus + targeted tests
  return C;
}

class AdequacyCorpusTest : public ::testing::TestWithParam<RefinementCase> {};

} // namespace

TEST_P(AdequacyCorpusTest, SeqVerdictIsSoundForPsna) {
  const RefinementCase &RC = GetParam();
  if (RC.HasLoops)
    GTEST_SKIP() << "loop programs: PS^na exploration is unbounded";

  AdequacyRecord Rec = runAdequacy(RC, psCfg());

  // Sanity: the harness recomputes the corpus verdicts.
  EXPECT_EQ(Rec.SeqSimple, RC.SimpleHolds) << RC.Name;
  EXPECT_EQ(Rec.SeqAdvanced, RC.AdvancedHolds) << RC.Name;

  // Theorem 6.2: ⊑w implies PS^na refinement under every context.
  std::string Detail;
  for (const ContextVerdict &V : Rec.Contexts)
    if (!V.Holds)
      Detail += "  ctx " + V.Context + ": " + V.Counterexample + "\n";
  EXPECT_TRUE(Rec.adequacyHolds())
      << RC.Name << ": SEQ validated the pair but PS^na separates it —\n"
      << Detail;
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, AdequacyCorpusTest,
    ::testing::ValuesIn(refinementCorpus()),
    [](const ::testing::TestParamInfo<RefinementCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===
// Witnesses: transformations the paper argues are *semantically* unsound
// must be separated by some context in the library.
//===----------------------------------------------------------------------===

TEST(AdequacyWitnessTest, UnsoundCorpusCasesHavePsnaWitnesses) {
  // Corpus cases whose plain snippet is already separated by a library
  // context.
  const char *Names[] = {
      "ex2.5-reorder-na-same",
      "ex2.9-ii",
      "ex2.9-iv",
      "ex2.10-store-intro-after-rel",
  };
  for (const char *Name : Names) {
    const RefinementCase &RC = refinementCaseByName(Name);
    AdequacyRecord Rec = runAdequacy(RC, psCfg());
    EXPECT_TRUE(Rec.witnessFound())
        << Name << ": no PS^na context separates this unsound pair "
        << "(context library too weak?)";
  }
}

TEST(AdequacyWitnessTest, GuardedVariantsHavePsnaWitnesses) {
  // For several unsound transformations, the bare corpus snippet is NOT
  // separable as a whole program: whenever a context could distinguish
  // them it also races the *source* into UB (which masks everything), or
  // the source can mimic the target by reading a stale flag value. SEQ
  // rejecting them is an instance of sufficiency-without-necessity. The
  // guarded variants below synchronize the source's access, removing the
  // masking, and are separated by the context library.
  struct WitnessPair {
    const char *Name;
    const char *Src;
    const char *Tgt;
  };
  const WitnessPair Pairs[] = {
      // Write introduction (Example 2.6): hoisting a flag-guarded na write
      // makes the target race a plain na writer while the source never
      // writes (nobody releases the flag).
      {"write-intro-guarded",
       "na d; atomic f;\n"
       "thread { b := f@acq; if (b == 1) { d@na := 1; } return b; }",
       "na d; atomic f;\n"
       "thread { b := f@acq; d@na := 1; return b; }"},
      // Example 2.9(i) guarded: the target's na write escapes the acquire
      // and races the handoff partner's initialization of the data.
      {"ex2.9-i-guarded",
       "na d; atomic f;\n"
       "thread { a := f@acq; if (a == 1) { d@na := 1; } return a; }",
       "na d; atomic f;\n"
       "thread { d@na := 1; a := f@acq; if (a == 1) { skip; } return a; }"},
      // Example 2.9(iii) guarded: the target's hoisted na read races and
      // returns undef; the synchronized source always reads the handoff
      // value.
      {"ex2.9-iii-guarded",
       "na d; atomic f;\n"
       "thread { a := f@acq; b := 3; if (a == 1) { b := d@na; } "
       "return b; }",
       "na d; atomic f;\n"
       "thread { b := d@na; a := f@acq; if (a == 1) { skip; } "
       "else { b := 3; } return b; }"},
  };
  for (const WitnessPair &W : Pairs) {
    std::unique_ptr<Program> Src = parseOrDie(W.Src);
    std::unique_ptr<Program> Tgt = parseOrDie(W.Tgt);
    SeqConfig SeqCfg;
    SeqCfg.Domain = ValueDomain::binary();
    AdequacyRecord Rec = runAdequacy(W.Name, *Src, *Tgt, SeqCfg, psCfg(),
                                     /*HasLoops=*/false);
    EXPECT_FALSE(Rec.SeqAdvanced)
        << W.Name << ": SEQ must reject this unsound pair";
    EXPECT_TRUE(Rec.witnessFound())
        << W.Name << ": no PS^na context separates this unsound pair";
  }
}

TEST(AdequacyWitnessTest, SlfAcrossRelAcqPairSeparatedByInterveningWriter) {
  // Example 2.12's phenomenon, with the guarded consumer that forces the
  // source to observe the context's intervening write: a bespoke context
  // acquires the thread's release, overwrites x, and releases z back.
  auto Src = prog("na x; atomic y, z;\n"
                  "thread { x@na := 1; y@rel := 1; a := z@acq; "
                  "if (a == 1) { b := x@na; } else { b := 3; } return b; }\n"
                  "thread { c := y@acq; if (c == 1) { x@na := 2; "
                  "z@rel := 1; } return c; }");
  auto Tgt = prog("na x; atomic y, z;\n"
                  "thread { x@na := 1; y@rel := 1; a := z@acq; "
                  "if (a == 1) { b := 1; } else { b := 3; } return b; }\n"
                  "thread { c := y@acq; if (c == 1) { x@na := 2; "
                  "z@rel := 1; } return c; }");
  PsRefinementResult R = checkPsRefinement(*Src, *Tgt, psCfg());
  EXPECT_FALSE(R.Holds)
      << "the intervening writer must separate SLF across a rel-acq pair";
  EXPECT_NE(R.Counterexample.find("ret(1,1)"), std::string::npos)
      << "the separating behavior is the forwarded stale value, got: "
      << R.Counterexample;
}

//===----------------------------------------------------------------------===
// Random sweep: Prop 3.4 plus the Thm 6.2 direction on generated pairs.
//===----------------------------------------------------------------------===

TEST(AdequacyRandomSweepTest, SeqVerdictsSoundOnRandomPairs) {
  Rng R(20220613); // PLDI'22 first day
  unsigned Validated = 0, Rejected = 0;
  for (unsigned Iter = 0; Iter != 60; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> Src = parseOrDie(Pair.Src);
    std::unique_ptr<Program> Tgt = parseOrDie(Pair.Tgt);

    SeqConfig SeqCfg;
    SeqCfg.Domain = ValueDomain::binary();
    RefinementResult Simple = checkSimpleRefinement(*Src, *Tgt, SeqCfg);
    RefinementResult Advanced = checkAdvancedRefinement(*Src, *Tgt, SeqCfg);

    // Proposition 3.4 on random pairs.
    if (Simple.Holds) {
      EXPECT_TRUE(Advanced.Holds)
          << "Prop 3.4 violated on\n"
          << Pair.Src << "\n->\n"
          << Pair.Tgt << "\n(" << Pair.Mutation << ")";
    }

    if (!Advanced.Holds) {
      ++Rejected;
      continue;
    }
    ++Validated;
    AdequacyRecord Rec = runAdequacy("random", *Src, *Tgt, SeqCfg, psCfg(),
                                     /*HasLoops=*/false);
    std::string Detail;
    for (const ContextVerdict &V : Rec.Contexts)
      if (!V.Holds)
        Detail += "  ctx " + V.Context + ": " + V.Counterexample + "\n";
    EXPECT_TRUE(Rec.PsnaAllContexts)
        << "Thm 6.2 direction violated on\n"
        << Pair.Src << "\n->\n"
        << Pair.Tgt << "\n(" << Pair.Mutation << ")\n"
        << Detail;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(Validated, 5u);
  EXPECT_GT(Rejected, 5u);
}

TEST(AdequacyRandomSweepTest, RandomContextsCannotSeparateValidatedPairs) {
  // Beyond the curated library: compose SEQ-validated random pairs with
  // random contexts and check PS^na inclusion directly (Thm 6.2 again,
  // now with ∀-context sampled rather than enumerated).
  Rng R(20220617); // PLDI'22 last day
  unsigned Composed = 0;
  for (unsigned Iter = 0; Iter != 30 && Composed < 12; ++Iter) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> Src = parseOrDie(Pair.Src);
    std::unique_ptr<Program> Tgt = parseOrDie(Pair.Tgt);
    SeqConfig SeqCfg;
    SeqCfg.Domain = ValueDomain::binary();
    if (!checkAdvancedRefinement(*Src, *Tgt, SeqCfg).Holds)
      continue;
    std::string Ctx = randomContextThread(R);
    std::unique_ptr<Program> SrcC = parseOrDie(Pair.Src + "\n" + Ctx);
    std::unique_ptr<Program> TgtC = parseOrDie(Pair.Tgt + "\n" + Ctx);
    PsRefinementResult PR = checkPsRefinement(*SrcC, *TgtC, psCfg());
    ++Composed;
    EXPECT_TRUE(PR.Holds) << "Thm 6.2 violated:\n"
                          << Pair.Src << "\n->\n"
                          << Pair.Tgt << "\nunder context\n"
                          << Ctx << "\n"
                          << PR.Counterexample;
  }
  EXPECT_GE(Composed, 8u) << "sweep must compose enough validated pairs";
}
