//===- tests/seq_machine_test.cpp - Fig 1 transition rules ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Exercises every transition rule of the SEQ machine (Fig. 1) on unit
// programs: na-read, na-write, racy-na-read, racy-na-write, choice/relaxed,
// acq-read, rel-write, silent, and the fence/RMW extensions.
//
//===----------------------------------------------------------------------===//

#include "seq/SeqMachine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

SeqConfig cfg(const Program &P, ValueDomain D = ValueDomain::binary()) {
  SeqConfig C;
  C.Domain = D;
  C.Universe = P.naLocs();
  return C;
}

std::vector<Value> zeroMem(const Program &P) {
  return std::vector<Value>(P.numLocs(), Value::of(0));
}

} // namespace

TEST(SeqMachineTest, NaReadWithPermissionLoadsMemory) {
  auto P = prog("na x; thread { a := x@na; return a; }");
  SeqMachine M(*P, 0, cfg(*P));
  std::vector<Value> Mem = zeroMem(*P);
  Mem[0] = Value::of(1);
  SeqState S = M.initial(LocSet::single(0), LocSet::empty(), Mem);

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u) << "na-read is deterministic";
  EXPECT_TRUE(Succ[0].Labels.empty()) << "na accesses are unlabeled";
  EXPECT_EQ(Succ[0].Next.Prog.regs()[0], Value::of(1));
}

TEST(SeqMachineTest, RacyNaReadLoadsUndef) {
  auto P = prog("na x; thread { a := x@na; return a; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_TRUE(Succ[0].Next.Prog.regs()[0].isUndef());
  EXPECT_FALSE(Succ[0].Next.isBottom()) << "racy reads are not UB";
}

TEST(SeqMachineTest, NaWriteUpdatesMemoryAndWrittenSet) {
  auto P = prog("na x; thread { x@na := 1; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::single(0), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_TRUE(Succ[0].Labels.empty());
  EXPECT_EQ(Succ[0].Next.Mem[0], Value::of(1));
  EXPECT_TRUE(Succ[0].Next.Written.contains(0)) << "F gains the location";
}

TEST(SeqMachineTest, RacyNaWriteIsUB) {
  auto P = prog("na x; thread { x@na := 1; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_TRUE(Succ[0].Next.isBottom()) << "racy-na-write invokes UB";
}

TEST(SeqMachineTest, RlxReadBranchesOverDomainPlusUndef) {
  auto P = prog("atomic z; thread { a := z@rlx; return a; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  // Binary domain {0,1} plus undef.
  ASSERT_EQ(Succ.size(), 3u);
  for (const SeqTransition &T : Succ) {
    ASSERT_EQ(T.Labels.size(), 1u);
    EXPECT_EQ(T.Labels[0].K, SeqEvent::Kind::RlxRead);
  }
}

TEST(SeqMachineTest, RlxWriteEmitsLabelWithoutTouchingState) {
  auto P = prog("atomic z; na x; thread { z@rlx := 1; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  LocSet Perm = LocSet::single(*P->lookupLoc("x"));
  SeqState S = M.initial(Perm, LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u);
  ASSERT_EQ(Succ[0].Labels.size(), 1u);
  EXPECT_EQ(Succ[0].Labels[0].K, SeqEvent::Kind::RlxWrite);
  EXPECT_EQ(Succ[0].Labels[0].V, Value::of(1));
  EXPECT_EQ(Succ[0].Next.Perm, Perm) << "relaxed writes keep permissions";
  EXPECT_EQ(Succ[0].Next.Written, LocSet::empty());
}

TEST(SeqMachineTest, AcqReadGainsPermissionsAndValues) {
  auto P = prog("atomic z; na x; thread { a := z@acq; b := x@na; return b; }");
  SeqMachine M(*P, 0, cfg(*P));
  unsigned X = *P->lookupLoc("x");
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  // 3 read values × (P'=∅ (1 map) + P'={x} (3 maps)) = 12.
  ASSERT_EQ(Succ.size(), 12u);
  bool SawGain = false;
  for (const SeqTransition &T : Succ) {
    ASSERT_EQ(T.Labels.size(), 1u);
    const SeqEvent &E = T.Labels[0];
    ASSERT_EQ(E.K, SeqEvent::Kind::AcqRead);
    EXPECT_EQ(E.P, LocSet::empty());
    EXPECT_EQ(T.Next.Perm, E.P2);
    if (E.P2.contains(X)) {
      SawGain = true;
      const Value *V = E.Vm.lookup(X);
      ASSERT_NE(V, nullptr) << "gained locations get new values";
      EXPECT_EQ(T.Next.Mem[X], *V);
    }
  }
  EXPECT_TRUE(SawGain);
}

TEST(SeqMachineTest, RelWriteLosesPermissionsRecordsMemoryResetsF) {
  auto P = prog("atomic z; na x; thread { z@rel := 1; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  unsigned X = *P->lookupLoc("x");
  std::vector<Value> Mem = zeroMem(*P);
  Mem[X] = Value::of(1);
  SeqState S = M.initial(LocSet::single(X), LocSet::single(X), Mem);

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 2u) << "P' ranges over subsets of P";
  for (const SeqTransition &T : Succ) {
    ASSERT_EQ(T.Labels.size(), 1u);
    const SeqEvent &E = T.Labels[0];
    ASSERT_EQ(E.K, SeqEvent::Kind::RelWrite);
    EXPECT_EQ(E.P, LocSet::single(X));
    EXPECT_EQ(E.F, LocSet::single(X)) << "label records F before the reset";
    ASSERT_NE(E.Vm.lookup(X), nullptr) << "released memory is M|P";
    EXPECT_EQ(*E.Vm.lookup(X), Value::of(1));
    EXPECT_EQ(T.Next.Written, LocSet::empty()) << "rel-write resets F";
    EXPECT_TRUE(T.Next.Perm.isSubsetOf(LocSet::single(X)));
  }
}

TEST(SeqMachineTest, ChooseBranchesOverDefinedValues) {
  auto P = prog("thread { c := choose; return c; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 2u) << "choose never resolves to undef";
  for (const SeqTransition &T : Succ) {
    ASSERT_EQ(T.Labels.size(), 1u);
    EXPECT_EQ(T.Labels[0].K, SeqEvent::Kind::Choose);
    EXPECT_FALSE(T.Labels[0].V.isUndef());
  }
}

TEST(SeqMachineTest, AcquireFenceGainsLikeAcqRead) {
  auto P = prog("na x; thread { fence @ acq; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 4u); // P'=∅ + P'={x} with 3 values
  for (const SeqTransition &T : Succ)
    EXPECT_EQ(T.Labels[0].K, SeqEvent::Kind::AcqFence);
}

TEST(SeqMachineTest, ReleaseFenceResetsWrittenSet) {
  auto P = prog("na x; thread { x@na := 1; fence @ rel; return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::single(0), LocSet::empty(), zeroMem(*P));
  S = M.successors(S)[0].Next; // the na write
  ASSERT_TRUE(S.Written.contains(0));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 2u);
  for (const SeqTransition &T : Succ) {
    EXPECT_EQ(T.Labels[0].K, SeqEvent::Kind::RelFence);
    EXPECT_EQ(T.Labels[0].F, LocSet::single(0));
    EXPECT_EQ(T.Next.Written, LocSet::empty());
  }
}

TEST(SeqMachineTest, RmwEmitsReadAndWriteLabels) {
  auto P = prog("atomic z; thread { r := fadd(z, 1) @ rlx rlx; return r; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 3u); // old values {0,1,undef}
  for (const SeqTransition &T : Succ) {
    ASSERT_EQ(T.Labels.size(), 2u);
    EXPECT_EQ(T.Labels[0].K, SeqEvent::Kind::RlxRead);
    EXPECT_EQ(T.Labels[1].K, SeqEvent::Kind::RlxWrite);
    if (T.Labels[0].V.isUndef())
      EXPECT_TRUE(T.Labels[1].V.isUndef()) << "undef + 1 = undef";
    else
      EXPECT_EQ(T.Labels[1].V, Value::of(T.Labels[0].V.get() + 1));
  }
}

TEST(SeqMachineTest, FailedCasEmitsOnlyReadLabel) {
  auto P = prog("atomic z; thread { r := cas(z, 0, 1) @ rlx rlx; return r; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  bool SawFailure = false, SawSuccess = false, SawUB = false;
  for (const SeqTransition &T : M.successors(S)) {
    if (T.Next.isBottom()) {
      SawUB = true; // comparison against undef
      continue;
    }
    if (T.Labels.size() == 1)
      SawFailure = true;
    if (T.Labels.size() == 2)
      SawSuccess = true;
  }
  EXPECT_TRUE(SawFailure);
  EXPECT_TRUE(SawSuccess);
  EXPECT_TRUE(SawUB);
}

TEST(SeqMachineTest, PrintEmitsSyscallLabel) {
  auto P = prog("thread { print(7); return 0; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));

  std::vector<SeqTransition> Succ = M.successors(S);
  ASSERT_EQ(Succ.size(), 1u);
  ASSERT_EQ(Succ[0].Labels.size(), 1u);
  EXPECT_EQ(Succ[0].Labels[0].K, SeqEvent::Kind::Syscall);
  EXPECT_EQ(Succ[0].Labels[0].V, Value::of(7));
}

TEST(SeqMachineTest, TerminalStatesHaveNoSuccessors) {
  auto P = prog("thread { return 1; }");
  SeqMachine M(*P, 0, cfg(*P));
  SeqState S = M.initial(LocSet::empty(), LocSet::empty(), zeroMem(*P));
  S = M.successors(S)[0].Next;
  ASSERT_TRUE(S.isTerminated());
  EXPECT_TRUE(M.successors(S).empty());
}
