//===- tests/seq_behavior_test.cpp - Behaviors and Def 2.3 ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Reproduces Example 2.2's exact behavior set and unit-tests the behavior
// refinement order of Def 2.3.
//
//===----------------------------------------------------------------------===//

#include "obs/Telemetry.h"
#include "seq/BehaviorEnum.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

SeqConfig cfg(const Program &P, ValueDomain D = ValueDomain::binary()) {
  SeqConfig C;
  C.Domain = D;
  C.Universe = P.naLocs();
  return C;
}

} // namespace

//===----------------------------------------------------------------------===
// Example 2.2: x@rlx := 1; y@na := 2; return 3, with y ∈ P.
//===----------------------------------------------------------------------===

TEST(SeqBehaviorTest, Example22WithPermission) {
  auto P = prog("atomic x; na y;\n"
                "thread { x@rlx := 1; y@na := 2; return 3; }");
  unsigned Y = *P->lookupLoc("y");
  SeqConfig C = cfg(*P, ValueDomain({1, 2, 3}));
  SeqMachine M(*P, 0, C);
  std::vector<Value> Mem(P->numLocs(), Value::of(0));
  SeqState Init = M.initial(LocSet::single(Y), LocSet::empty(), Mem);

  BehaviorSet B = enumerateBehaviors(M, Init);
  EXPECT_FALSE(B.truncated());
  EXPECT_EQ(B.Cause, TruncationCause::None);

  SeqEvent W = SeqEvent::rlxWrite(*P->lookupLoc("x"), Value::of(1));

  // ⟨ε, prt(∅)⟩.
  SeqBehavior B1;
  B1.Kind = SeqBehavior::End::Partial;
  // ⟨Wrlx(x,1), prt(∅)⟩.
  SeqBehavior B2;
  B2.Trace = {W};
  B2.Kind = SeqBehavior::End::Partial;
  // ⟨Wrlx(x,1), prt({y})⟩.
  SeqBehavior B3;
  B3.Trace = {W};
  B3.Kind = SeqBehavior::End::Partial;
  B3.F = LocSet::single(Y);
  // ⟨Wrlx(x,1), trm(3, {y}, M[y↦2])⟩.
  SeqBehavior B4;
  B4.Trace = {W};
  B4.Kind = SeqBehavior::End::Term;
  B4.RetVal = Value::of(3);
  B4.F = LocSet::single(Y);
  B4.Mem = Mem;
  B4.Mem[Y] = Value::of(2);

  for (const SeqBehavior *Want : {&B1, &B2, &B3, &B4}) {
    bool Found = false;
    for (const SeqBehavior &Have : B.All)
      if (Have == *Want)
        Found = true;
    EXPECT_TRUE(Found) << "missing behavior " << Want->str();
  }
  // Exactly these four behaviors (Example 2.2 lists them exhaustively).
  EXPECT_EQ(B.All.size(), 4u);
}

TEST(SeqBehaviorTest, Example22WithoutPermission) {
  auto P = prog("atomic x; na y;\n"
                "thread { x@rlx := 1; y@na := 2; return 3; }");
  SeqConfig C = cfg(*P, ValueDomain({1, 2, 3}));
  SeqMachine M(*P, 0, C);
  std::vector<Value> Mem(P->numLocs(), Value::of(0));
  SeqState Init = M.initial(LocSet::empty(), LocSet::empty(), Mem);

  BehaviorSet B = enumerateBehaviors(M, Init);
  // With y ∉ P, ⟨Wrlx(x,1), ⊥⟩ is the only terminating behavior.
  unsigned Terminating = 0;
  for (const SeqBehavior &Have : B.All) {
    if (Have.Kind == SeqBehavior::End::Partial)
      continue;
    ++Terminating;
    EXPECT_EQ(Have.Kind, SeqBehavior::End::Bottom);
    ASSERT_EQ(Have.Trace.size(), 1u);
    EXPECT_EQ(Have.Trace[0].K, SeqEvent::Kind::RlxWrite);
  }
  EXPECT_EQ(Terminating, 1u);
}

//===----------------------------------------------------------------------===
// Telemetry: the enumerator's counters are deterministic
//===----------------------------------------------------------------------===

TEST(SeqBehaviorTest, DedupCountersStableAcrossRuns) {
  // NA accesses emit no trace events, so every intermediate state of this
  // thread produces the same partial behavior — guaranteed dedup hits.
  auto P = prog("na x;\nthread { a := x@na; b := x@na; return 1; }");

  auto countersFor = [&](obs::Telemetry &Telem) {
    SeqConfig C = cfg(*P);
    C.Telem = &Telem;
    SeqMachine M(*P, 0, C);
    std::vector<Value> Mem(P->numLocs(), Value::of(0));
    BehaviorSet B = enumerateBehaviors(
        M, M.initial(P->naLocs(), LocSet::empty(), Mem));
    EXPECT_FALSE(B.truncated());
  };

  obs::Telemetry T1, T2;
  countersFor(T1);
  countersFor(T2);

  uint64_t Dedup1 = T1.Counters.counter("seq.enum.dedup_hits");
  EXPECT_GT(Dedup1, 0u) << "identical partials must collide in the dedup set";
  EXPECT_EQ(Dedup1, T2.Counters.counter("seq.enum.dedup_hits"))
      << "enumeration is deterministic: counters agree across identical runs";
  EXPECT_EQ(T1.Counters.counter("seq.enum.states_expanded"),
            T2.Counters.counter("seq.enum.states_expanded"));
  EXPECT_EQ(T1.Counters.counter("seq.enum.behaviors_emitted"),
            T2.Counters.counter("seq.enum.behaviors_emitted"));
  EXPECT_GT(T1.Counters.counter("seq.enum.runs"), 0u);
}

//===----------------------------------------------------------------------===
// Behavior refinement (Def 2.3)
//===----------------------------------------------------------------------===

namespace {

SeqBehavior term(Value V, LocSet F, std::vector<Value> Mem,
                 std::vector<SeqEvent> Tr = {}) {
  SeqBehavior B;
  B.Trace = std::move(Tr);
  B.Kind = SeqBehavior::End::Term;
  B.RetVal = V;
  B.F = F;
  B.Mem = std::move(Mem);
  return B;
}

} // namespace

TEST(BehaviorRefineTest, TargetValueRefinesUndefSource) {
  LocSet U = LocSet::single(0);
  std::vector<Value> M0 = {Value::of(0)};
  std::vector<Value> MU = {Value::undef()};
  // Source returning undef matches any target value; memory likewise.
  EXPECT_TRUE(term(Value::of(7), LocSet::empty(), M0)
                  .refines(term(Value::undef(), LocSet::empty(), MU), U));
  EXPECT_FALSE(term(Value::undef(), LocSet::empty(), M0)
                   .refines(term(Value::of(7), LocSet::empty(), M0), U));
}

TEST(BehaviorRefineTest, WrittenSetsMustShrink) {
  LocSet U = LocSet::single(0);
  std::vector<Value> M0 = {Value::of(0)};
  // F_tgt ⊆ F_src required.
  EXPECT_TRUE(term(Value::of(0), LocSet::empty(), M0)
                  .refines(term(Value::of(0), LocSet::single(0), M0), U));
  EXPECT_FALSE(term(Value::of(0), LocSet::single(0), M0)
                   .refines(term(Value::of(0), LocSet::empty(), M0), U));
}

TEST(BehaviorRefineTest, SourceBottomMatchesAnyContinuation) {
  LocSet U;
  SeqBehavior SrcBot;
  SrcBot.Kind = SeqBehavior::End::Bottom;
  SrcBot.Trace = {SeqEvent::rlxWrite(1, Value::of(1))};

  SeqBehavior Tgt = term(Value::of(3), LocSet::empty(), {});
  Tgt.Trace = {SeqEvent::rlxWrite(1, Value::of(1)),
               SeqEvent::rlxRead(1, Value::of(0))};
  EXPECT_TRUE(Tgt.refines(SrcBot, U))
      << "UB source allows any target continuation";

  SeqBehavior TgtShort = term(Value::of(3), LocSet::empty(), {});
  EXPECT_FALSE(TgtShort.refines(SrcBot, U))
      << "the source's pre-UB trace must be covered by the target";
}

TEST(BehaviorRefineTest, TargetBottomNeedsSourceBottom) {
  LocSet U;
  SeqBehavior TgtBot;
  TgtBot.Kind = SeqBehavior::End::Bottom;
  EXPECT_FALSE(TgtBot.refines(term(Value::of(0), LocSet::empty(), {}), U));

  SeqBehavior SrcBot;
  SrcBot.Kind = SeqBehavior::End::Bottom;
  EXPECT_TRUE(TgtBot.refines(SrcBot, U));
}

TEST(BehaviorRefineTest, PartialNeverMatchesTerm) {
  LocSet U;
  SeqBehavior Prt;
  Prt.Kind = SeqBehavior::End::Partial;
  EXPECT_FALSE(Prt.refines(term(Value::of(0), LocSet::empty(), {}), U));
  EXPECT_FALSE(term(Value::of(0), LocSet::empty(), {}).refines(Prt, U));
}

TEST(BehaviorRefineTest, RelWriteLabelsCompareReleasedMemory) {
  PartialMem SrcMem, TgtMem;
  SrcMem.set(0, Value::undef());
  TgtMem.set(0, Value::of(5));
  SeqEvent Src = SeqEvent::relWrite(1, Value::of(1), LocSet::single(0),
                                    LocSet::empty(), LocSet::empty(), SrcMem);
  SeqEvent Tgt = SeqEvent::relWrite(1, Value::of(1), LocSet::single(0),
                                    LocSet::empty(), LocSet::empty(), TgtMem);
  EXPECT_TRUE(Tgt.refinesLabel(Src)) << "target memory refines undef";
  EXPECT_FALSE(Src.refinesLabel(Tgt));
}

TEST(BehaviorRefineTest, StrippedLabelsDropF) {
  PartialMem Mem;
  SeqEvent A = SeqEvent::acqRead(0, Value::of(1), LocSet::empty(),
                                 LocSet::empty(), LocSet::single(2), Mem);
  SeqEvent B = SeqEvent::acqRead(0, Value::of(1), LocSet::empty(),
                                 LocSet::empty(), LocSet::empty(), Mem);
  EXPECT_FALSE(A == B);
  EXPECT_TRUE(A.strippedEquals(B)) << "|e| drops the F component (Def 3.2)";
}
