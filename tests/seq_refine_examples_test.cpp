//===- tests/seq_refine_examples_test.cpp - §2 verdict table (E3) ---------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Reproduces the simple-refinement verdict of every paper example
// (Examples 1.1–2.12) by running the Def 2.4 decision procedure on the
// corpus. Parameterized over the corpus so each example is its own test.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "seq/SimpleRefinement.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

class SimpleRefineCorpusTest
    : public ::testing::TestWithParam<RefinementCase> {};

} // namespace

TEST_P(SimpleRefineCorpusTest, VerdictMatchesPaper) {
  const RefinementCase &RC = GetParam();
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);
  ASSERT_TRUE(sameLayout(*Src, *Tgt)) << RC.Name;

  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  RefinementResult R = checkSimpleRefinement(*Src, *Tgt, Cfg);

  EXPECT_EQ(R.Holds, RC.SimpleHolds)
      << RC.Name << " (" << RC.PaperRef << ")\n"
      << (R.Holds ? "" : "counterexample: " + R.Counterexample);
  if (!RC.HasLoops) {
    EXPECT_FALSE(R.Bounded) << RC.Name << ": loop-free check must be exact";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, SimpleRefineCorpusTest,
    ::testing::ValuesIn(refinementCorpus()),
    [](const ::testing::TestParamInfo<RefinementCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===
// Identity and smoke properties of the checker itself.
//===----------------------------------------------------------------------===

TEST(SimpleRefineTest, ReflexiveOnEveryCorpusSource) {
  for (const RefinementCase &RC : refinementCorpus()) {
    if (RC.HasLoops)
      continue; // keep runtime modest; loop programs covered elsewhere
    auto Src = prog(RC.Src);
    auto Src2 = prog(RC.Src);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    RefinementResult R = checkSimpleRefinement(*Src, *Src2, Cfg);
    EXPECT_TRUE(R.Holds) << "refinement must be reflexive: " << RC.Name
                         << "\n"
                         << R.Counterexample;
  }
}

TEST(SimpleRefineTest, UBSourceRefinesEverything) {
  auto Src = prog("na x;\nthread { abort; }");
  auto Tgt = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  RefinementResult R = checkSimpleRefinement(*Src, *Tgt);
  EXPECT_TRUE(R.Holds);
}

TEST(SimpleRefineTest, DistinctReturnValuesDoNotRefine) {
  auto Src = prog("thread { return 1; }");
  auto Tgt = prog("thread { return 2; }");
  EXPECT_FALSE(checkSimpleRefinement(*Src, *Tgt).Holds);
}

TEST(SimpleRefineTest, UndefReturnRefinedByAnyValue) {
  auto Src = prog("na x;\nthread { a := x@na; return a; }");
  // A racy source read returns undef, which any constant refines — but a
  // non-racy one returns M(x), so returning a fixed constant is unsound.
  auto Tgt = prog("na x;\nthread { return 1; }");
  EXPECT_FALSE(checkSimpleRefinement(*Src, *Tgt).Holds);
}

TEST(SimpleRefineTest, SyscallValuesMustMatch) {
  auto Src = prog("thread { print(1); return 0; }");
  auto TgtSame = prog("thread { print(1); return 0; }");
  auto TgtDiff = prog("thread { print(2); return 0; }");
  auto TgtNone = prog("thread { return 0; }");
  EXPECT_TRUE(checkSimpleRefinement(*Src, *TgtSame).Holds);
  EXPECT_FALSE(checkSimpleRefinement(*Src, *TgtDiff).Holds);
  EXPECT_FALSE(checkSimpleRefinement(*Src, *TgtNone).Holds);
}
