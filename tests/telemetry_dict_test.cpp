//===- tests/telemetry_dict_test.cpp - DESIGN.md dictionary coverage ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The telemetry dictionary in DESIGN.md is the contract for every dotted
// key the instrumentation can emit. This test drives the engines with a
// live telemetry registry and span recorder, collects every key that
// actually fired (counters, gauges, histograms, span names), and fails if
// any is missing from the dictionary table — so a new instrumentation site
// cannot land undocumented. Digit runs are normalized to `N`
// (psna.explore.thread3.steps matches psna.explore.threadN.steps).
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"
#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "litmus/RealWorld.h"
#include "memo/MemoContext.h"
#include "obs/Telemetry.h"
#include "opt/Pipeline.h"
#include "psna/Explorer.h"
#include "seq/BehaviorEnum.h"
#include "serve/Server.h"
#include "sym/SymEngine.h"

#include "gtest/gtest.h"

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace pseq;

namespace {

#ifndef PSEQ_DESIGN_MD
#error "PSEQ_DESIGN_MD must point at DESIGN.md"
#endif

/// Replaces every maximal digit run with 'N': thread3 -> threadN.
std::string normalizeDigits(const std::string &Key) {
  std::string Out;
  bool InRun = false;
  for (char C : Key) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      if (!InRun)
        Out += 'N';
      InRun = true;
    } else {
      Out += C;
      InRun = false;
    }
  }
  return Out;
}

/// First-column backticked keys of the dictionary table rows
/// (`| `key` | ...`) in DESIGN.md's "Telemetry dictionary" section.
std::set<std::string> dictionaryKeys() {
  std::ifstream In(PSEQ_DESIGN_MD);
  EXPECT_TRUE(In.good()) << "cannot open " << PSEQ_DESIGN_MD;
  std::set<std::string> Keys;
  std::string Line;
  bool InSection = false;
  while (std::getline(In, Line)) {
    if (Line.rfind("### Telemetry dictionary", 0) == 0) {
      InSection = true;
      continue;
    }
    if (InSection && (Line.rfind("## ", 0) == 0 || Line.rfind("### ", 0) == 0))
      break;
    if (!InSection || Line.rfind("| `", 0) != 0)
      continue;
    size_t End = Line.find('`', 3);
    if (End != std::string::npos)
      Keys.insert(Line.substr(3, End - 3));
  }
  return Keys;
}

/// Drives every instrumented engine once and returns the normalized keys
/// that fired.
std::set<std::string> runtimeKeys() {
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  Telem.Spans = &Spans;
  memo::MemoContext Memo;

  // Optimizer pipeline (opt.*, seq.check.*, seq.enum/machine counters).
  for (const RefinementCase &RC : refinementCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(RC.Src);
    PipelineOptions Opts;
    Opts.Cfg.Domain = RC.Domain;
    Opts.Cfg.StepBudget = RC.StepBudget;
    Opts.Telem = &Telem;
    runPipeline(*P, Opts);
  }

  // Extension passes under whole-program PS^na validation (opt.promote.*,
  // opt.weaken.*, opt.validate.method.psna, the promote/weaken spans). One
  // crafted program exercises every tally: a promotable thread-local na
  // location, a read-shared one, a thread-local atomic with strong modes,
  // an absorbable sc;acq fence pair, and a fence in an atomic-free thread.
  {
    std::unique_ptr<Program> P = parseOrDie(
        "na x;\nna s;\natomic y;\n"
        "thread { x@na := 1; a := x@na; fence @ sc; fence @ acq; "
        "b := y@acq; y@rel := b; return a; }\n"
        "thread { fence @ rel; c := s@na; return c; }\n"
        "thread { d := s@na; return d; }");
    PipelineOptions Opts;
    Opts.Cfg.Domain = ValueDomain::binary();
    Opts.PsCfg.Domain = ValueDomain::binary();
    Opts.EnablePromote = true;
    Opts.EnableWeaken = true;
    Opts.Telem = &Telem;
    runPipeline(*P, Opts);
    // The racy-rejection tally needs a PotentiallyRacy witness location.
    std::unique_ptr<Program> Racy =
        parseOrDie(litmusCaseByName("ex5.1-promise-racy-read").Text);
    runPipeline(*Racy, Opts);
  }

  // The atlas fold (atlas.* tallies, atlas.build span). Tiny budgets: the
  // verdicts are all bounded garbage, but every key still fires, and the
  // sweep stays fast.
  {
    atlas::AtlasOptions AO;
    AO.Seq.StepBudget = 2;
    AO.Ps.MaxStates = 20;
    AO.Telem = &Telem;
    atlas::buildAtlas(AO);
  }

  // PS^na explorer with memoization (psna.*, analysis.*, memo.*), both
  // serial and pooled so every span name fires.
  for (unsigned NumThreads : {1u, 2u}) {
    for (const LitmusCase &LC : litmusCorpus()) {
      std::unique_ptr<Program> P = parseOrDie(LC.Text);
      PsConfig Cfg;
      Cfg.Domain = LC.Domain;
      Cfg.PromiseBudget = LC.PromiseBudget;
      Cfg.SplitBudget = LC.SplitBudget;
      Cfg.NumThreads = NumThreads;
      Cfg.Telem = &Telem;
      Cfg.Memo = &Memo;
      explorePsna(*P, Cfg);
    }
  }

  // The real-world protocol corpus (realworld.*). One protocol plus its
  // mutant fire cases_run/mutants_run/bad_exhibited/states; a
  // state-starved rerun fires realworld.truncated. annotation_failures
  // only fires on a corpus bug, so its table row stays and this driver
  // never exercises it.
  {
    RealWorldRunOptions RO;
    RO.Telem = &Telem;
    runRealWorldCase(realWorldCaseByName("rw-rcu"), RO);
    runRealWorldCase(realWorldCaseByName("rw-rcu-early-retire"), RO);
    RealWorldCase Starved = realWorldCaseByName("rw-rcu");
    Starved.Budgets.MaxStates = 4;
    runRealWorldCase(Starved, RO);
  }

  // The symbolic refinement backend (sym.*, the sym.check span). A
  // spin-loop self-pair fires the Sound path with joins and widenings; a
  // rerun under the memo context fires sym.memo.hits; a returns-differ
  // pair walks the confirm path to a confirmed Unsound.
  {
    std::unique_ptr<Program> Spin = parseOrDie(
        "atomic f;\n"
        "thread { a := f@acq; while (a != 1) { a := f@acq; } return 0; }");
    SeqConfig Cfg;
    Cfg.Telem = &Telem;
    Cfg.Memo = &Memo;
    sym::checkSymRefinement(*Spin, 0, *Spin, 0, Cfg);
    sym::checkSymRefinement(*Spin, 0, *Spin, 0, Cfg);
    std::unique_ptr<Program> Zero = parseOrDie("na x;\nthread { return 0; }");
    std::unique_ptr<Program> One = parseOrDie("na x;\nthread { return 1; }");
    sym::checkSymRefinement(*Zero, 0, *One, 0, Cfg);
  }

  // The validation server's stats vocabulary (serve.*). A bare Server's
  // statsSnapshot names every counter and gauge the `stats` op can ever
  // report — no socket traffic needed to cover the whole namespace.
  {
    serve::ServerOptions SO;
    SO.SocketPath = "/tmp/pseq-telemetry-dict-unused.sock";
    serve::Server Srv(SO);
    std::map<std::string, uint64_t> Counters;
    std::map<std::string, double> Gauges;
    Srv.statsSnapshot(Counters, Gauges);
    for (const auto &[Name, V] : Counters)
      Telem.Counters.add(Name, V);
    for (const auto &[Name, V] : Gauges)
      Telem.Counters.maxGauge(Name, V);
  }

  std::set<std::string> Keys;
  for (const auto &[Name, V] : Telem.Counters.counters())
    Keys.insert(normalizeDigits(Name));
  for (const auto &[Name, V] : Telem.Counters.gauges())
    Keys.insert(normalizeDigits(Name));
  for (const auto &[Name, H] : Telem.Counters.histograms())
    Keys.insert(normalizeDigits(Name));
  for (unsigned L = 0; L < Spans.lanes(); ++L)
    for (const obs::SpanRecord &S : Spans.lane(L))
      Keys.insert(normalizeDigits(S.Name));
  return Keys;
}

TEST(TelemetryDictTest, DictionaryParses) {
  std::set<std::string> Dict = dictionaryKeys();
  // A representative of every kind must be present — guards against the
  // section being renamed or the table reformatted.
  EXPECT_GT(Dict.size(), 50u);
  EXPECT_TRUE(Dict.count("seq.enum.runs"));
  EXPECT_TRUE(Dict.count("psna.explore.threadN.steps"));
  EXPECT_TRUE(Dict.count("psna.explore.frontier"));
  EXPECT_TRUE(Dict.count("pool.steals"));
  EXPECT_TRUE(Dict.count("race_lint.analyze"));
  EXPECT_TRUE(Dict.count("opt.promote.locations"));
  EXPECT_TRUE(Dict.count("opt.weaken.fence_pairs"));
  EXPECT_TRUE(Dict.count("opt.validate.method.psna"));
  EXPECT_TRUE(Dict.count("atlas.mismatch"));
  EXPECT_TRUE(Dict.count("atlas.build"));
}

TEST(TelemetryDictTest, EveryRuntimeKeyIsDocumented) {
  std::set<std::string> Dict = dictionaryKeys();
  ASSERT_FALSE(Dict.empty());
  std::set<std::string> Fired = runtimeKeys();
  ASSERT_GT(Fired.size(), 20u) << "instrumentation did not fire";

  std::ostringstream Missing;
  for (const std::string &Key : Fired)
    if (!Dict.count(Key))
      Missing << "  " << Key << "\n";
  EXPECT_TRUE(Missing.str().empty())
      << "keys missing from the DESIGN.md telemetry dictionary "
         "(add a table row per key):\n"
      << Missing.str();
}

} // namespace
