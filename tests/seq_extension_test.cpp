//===- tests/seq_extension_test.cpp - Fence/RMW refinement (extensions) ---===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The Coq development covers fences and RMWs beyond the paper's presented
// fragment; these tests pin down our SEQ extension semantics: acquire
// fences gain permissions like acquire reads, release fences release like
// release writes, and RMWs behave as their read/write parts — so the §2/§3
// example verdicts transfer mutatis mutandis.
//
//===----------------------------------------------------------------------===//

#include "seq/AdvancedRefinement.h"
#include "seq/SimpleRefinement.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

void expectVerdicts(const char *Src, const char *Tgt, bool Simple,
                    bool Advanced, const char *What) {
  auto SrcP = prog(Src);
  auto TgtP = prog(Tgt);
  RefinementResult S = checkSimpleRefinement(*SrcP, *TgtP);
  RefinementResult A = checkAdvancedRefinement(*SrcP, *TgtP);
  EXPECT_EQ(S.Holds, Simple) << What << " (simple)\n" << S.Counterexample;
  EXPECT_EQ(A.Holds, Advanced) << What << " (advanced)\n"
                               << A.Counterexample;
  if (S.Holds) {
    EXPECT_TRUE(A.Holds) << What << ": Prop 3.4";
  }
}

} // namespace

//===----------------------------------------------------------------------===
// Fences follow the roach-motel discipline of Example 2.9.
//===----------------------------------------------------------------------===

TEST(FenceRefineTest, NaWriteMayNotMoveBeforeAcquireFence) {
  expectVerdicts("na y;\nthread { fence @ acq; y@na := 1; return 0; }",
                 "na y;\nthread { y@na := 1; fence @ acq; return 0; }",
                 false, false, "2.9(i) with an acquire fence");
}

TEST(FenceRefineTest, NaWriteMayMoveAfterAcquireFence) {
  expectVerdicts("na y;\nthread { y@na := 1; fence @ acq; return 0; }",
                 "na y;\nthread { fence @ acq; y@na := 1; return 0; }",
                 true, true, "2.9(i') with an acquire fence");
}

TEST(FenceRefineTest, NaWriteMayNotMoveAfterReleaseFence) {
  expectVerdicts("na y;\nthread { y@na := 1; fence @ rel; return 0; }",
                 "na y;\nthread { fence @ rel; y@na := 1; return 0; }",
                 false, false, "2.9(ii) with a release fence");
}

TEST(FenceRefineTest, NaWriteBeforeReleaseFenceNeedsAdvanced) {
  expectVerdicts("na y;\nthread { fence @ rel; y@na := 1; return 0; }",
                 "na y;\nthread { y@na := 1; fence @ rel; return 0; }",
                 false, true, "converse of 2.9(ii) with a release fence");
}

TEST(FenceRefineTest, StoreIntroductionAfterReleaseFenceUnsound) {
  // Example 2.10 with a fence: F resets at the release fence.
  expectVerdicts(
      "na x;\nthread { x@na := 1; fence @ rel; return 0; }",
      "na x;\nthread { x@na := 1; fence @ rel; x@na := 1; return 0; }",
      false, false, "2.10 with a release fence");
}

TEST(FenceRefineTest, SlfBlockedAcrossFullFence) {
  // An acqrel/sc fence is a release-acquire pair by itself: no forwarding.
  expectVerdicts(
      "na x;\nthread { x@na := 1; fence @ sc; b := x@na; return b; }",
      "na x;\nthread { x@na := 1; fence @ sc; b := 1; return b; }",
      false, false, "2.12 with an SC fence");
}

TEST(FenceRefineTest, DseAcrossReleaseFenceNeedsAdvanced) {
  // Example 3.5's • case with a fence instead of a release write.
  expectVerdicts(
      "na x;\nthread { x@na := 1; fence @ rel; x@na := 2; return 0; }",
      "na x;\nthread { fence @ rel; x@na := 2; return 0; }",
      false, true, "3.5 with a release fence");
}

//===----------------------------------------------------------------------===
// RMWs behave as their parts.
//===----------------------------------------------------------------------===

TEST(RmwRefineTest, SlfAcrossRelaxedRmw) {
  // Example 2.11 with α = a relaxed fetch-add.
  expectVerdicts("na x; atomic z;\nthread { x@na := 1; "
                 "r := fadd(z, 1) @ rlx rlx; b := x@na; return b; }",
                 "na x; atomic z;\nthread { x@na := 1; "
                 "r := fadd(z, 1) @ rlx rlx; b := 1; return b; }",
                 true, true, "2.11 with a relaxed RMW");
}

TEST(RmwRefineTest, SlfAcrossAcqRelRmwIsSound) {
  // An acq-rel RMW is acquire-THEN-release — not a release-acquire pair
  // (Example 2.12 needs the release first). The acquire only refreshes
  // locations whose permission is gained; x's value survives, so
  // forwarding remains sound (and Fig. 3's token is •(1): ◦ is unaffected
  // by the acquire part, then moved to • by the release part).
  expectVerdicts("na x; atomic z;\nthread { x@na := 1; "
                 "r := fadd(z, 1) @ acq rel; b := x@na; return b; }",
                 "na x; atomic z;\nthread { x@na := 1; "
                 "r := fadd(z, 1) @ acq rel; b := 1; return b; }",
                 true, true, "SLF across an acq-rel RMW");
}

TEST(RmwRefineTest, NaWriteMayNotMoveBeforeAcquireRmw) {
  expectVerdicts("na y; atomic z;\nthread { r := fadd(z, 1) @ acq rlx; "
                 "y@na := 1; return r; }",
                 "na y; atomic z;\nthread { y@na := 1; "
                 "r := fadd(z, 1) @ acq rlx; return r; }",
                 false, false, "2.9(i) with an acquire RMW");
}

TEST(RmwRefineTest, RmwIsNotAPlainRead) {
  // Dropping the write part of an RMW changes the trace: unsound.
  expectVerdicts(
      "atomic z;\nthread { r := fadd(z, 0) @ rlx rlx; return r; }",
      "atomic z;\nthread { r := z@rlx; return r; }",
      false, false, "RMW to read weakening");
}

TEST(RmwRefineTest, FailedCasReadsLikeARead) {
  // A CAS that can never succeed (expected value outside the domain
  // written) still emits its read label; identical programs refine.
  expectVerdicts(
      "atomic z;\nthread { r := cas(z, 7, 1) @ rlx rlx; return r; }",
      "atomic z;\nthread { r := cas(z, 7, 1) @ rlx rlx; return r; }",
      true, true, "CAS reflexivity");
}

//===----------------------------------------------------------------------===
// choose / freeze interplay with traces (Remark 3 / Appendix C).
//===----------------------------------------------------------------------===

TEST(ChooseRefineTest, ChooseMayNotReorderWithReleaseWrite) {
  // Appendix C: PS disallows it, hence SEQ's choose labels must too.
  expectVerdicts(
      "atomic x;\nthread { b := freeze(undef); x@rel := 0; return b; }",
      "atomic x;\nthread { x@rel := 0; b := freeze(undef); return b; }",
      false, false, "Appendix C reordering");
}

TEST(ChooseRefineTest, ChooseReordersWithNaAccesses) {
  // Remark 3: "the reordering of non-deterministic choices and non-atomic
  // accesses is fully allowed by SEQ" — via the *advanced* notion. The
  // simple one rejects it: without permission on y the target hits UB
  // with an empty trace while the source must emit its choose(v) label
  // first (the same shape as §3's late-UB motivation), and the partial
  // traces' F-sets disagree before the choose.
  expectVerdicts(
      "na y;\nthread { b := freeze(undef); y@na := 1; return b; }",
      "na y;\nthread { y@na := 1; b := freeze(undef); return b; }",
      false, true, "choose vs na write");
  // The converse direction is simple-valid (the source may reach ⊥ with a
  // shorter trace).
  expectVerdicts(
      "na y;\nthread { y@na := 1; b := freeze(undef); return b; }",
      "na y;\nthread { b := freeze(undef); y@na := 1; return b; }",
      true, true, "na write vs choose");
}

TEST(ChooseRefineTest, FreezeIntroductionNotSequentiallyVerifiable) {
  // Freezing a racy load's undef into a defined value is sound in PS^na
  // (v ⊑ undef pointwise on return values), but SEQ cannot verify the
  // introduction: the target's choose(v) label has no counterpart in the
  // source trace, and choose labels must match exactly — the price of
  // exposing choices (Remark 3), paid so that Appendix C's reordering is
  // invalidated. An instance of sufficiency-without-necessity.
  expectVerdicts("na y;\nthread { a := y@na; return a; }",
                 "na y;\nthread { a := y@na; a := freeze(a); return a; }",
                 false, false, "freeze introduction");
}
