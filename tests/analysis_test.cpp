//===- tests/analysis_test.cpp - Static race analyzer tests ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Tests for analysis/RaceLint.h and its wiring into the PS^na explorer:
//
//  * verdicts over the whole litmus corpus against a hand-checked table;
//  * every PotentiallyRacy witness on the corpus replays to a real dynamic
//    race (RaceSteps > 0 in a lint-off exploration) — no entry currently
//    needs the explicit false-positive classification;
//  * the soundness differential: statically-safe programs (corpus plus
//    200+ seeded random programs at 1, 2, and 8 threads) never exhibit a
//    dynamic race, and behavior sets are bit-identical lint-on vs
//    lint-off;
//  * golden snapshots of the analyzer report for six corpus programs
//    (--update-golden regenerates, like memo_golden_test);
//  * unit tests for mayFollowPath, footprints, and the discharge rule.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adequacy/RandomProgram.h"
#include "analysis/AbstractValue.h"
#include "analysis/RaceLint.h"
#include "litmus/Corpus.h"
#include "psna/Explorer.h"
#include "support/Rng.h"

#include <algorithm>
#include <limits>
#include <map>

using namespace pseq;
using analysis::RaceVerdict;

namespace {

/// Hand-checked expected verdict per corpus case. A new corpus entry must
/// be classified here (the table test fails on unknown names).
const std::map<std::string, RaceVerdict> &expectedVerdicts() {
  static const std::map<std::string, RaceVerdict> Table = {
      {"ex5.1-promise-racy-read", RaceVerdict::PotentiallyRacy},
      {"ex5.1-no-promises", RaceVerdict::PotentiallyRacy},
      {"lb-rlx", RaceVerdict::AtomicsOnly},
      {"lb-rlx-no-promises", RaceVerdict::AtomicsOnly},
      {"lb-acq", RaceVerdict::AtomicsOnly},
      {"lb-rel", RaceVerdict::AtomicsOnly},
      {"sb-rlx", RaceVerdict::AtomicsOnly},
      {"2+2w-rlx", RaceVerdict::AtomicsOnly},
      {"mp-rel-acq", RaceVerdict::RaceFree},
      {"mp-rlx-races", RaceVerdict::PotentiallyRacy},
      {"corr-rlx", RaceVerdict::AtomicsOnly},
      {"ww-race-ub", RaceVerdict::PotentiallyRacy},
      {"wr-race-undef", RaceVerdict::PotentiallyRacy},
      {"iriw-rel-acq", RaceVerdict::AtomicsOnly},
      {"wrc-rel-acq", RaceVerdict::AtomicsOnly},
      {"coww-fadd", RaceVerdict::AtomicsOnly},
      {"appB-split-writes", RaceVerdict::PotentiallyRacy},
      {"appB-single-message", RaceVerdict::PotentiallyRacy},
      {"appC-choose-rel-src", RaceVerdict::AtomicsOnly},
      {"appC-choose-rel-tgt", RaceVerdict::AtomicsOnly},
  };
  return Table;
}

/// Corpus cases whose PotentiallyRacy verdict is a known static
/// over-approximation: no dynamic race exists *under the case's explorer
/// configuration*. ex5.1-no-promises runs with PromiseBudget = 0, which
/// removes the promise the race needs; the analyzer is
/// configuration-oblivious (the same program with a promise budget — the
/// ex5.1-promise-racy-read entry — does race dynamically).
const std::vector<std::string> &knownFalsePositives() {
  static const std::vector<std::string> List = {"ex5.1-no-promises"};
  return List;
}

PsConfig caseConfig(const LitmusCase &LC, bool Lint) {
  PsConfig Cfg;
  Cfg.Domain = LC.Domain;
  Cfg.PromiseBudget = LC.PromiseBudget;
  Cfg.SplitBudget = LC.SplitBudget;
  Cfg.NumThreads = 1;
  Cfg.Lint = Lint;
  return Cfg;
}

} // namespace

TEST(RaceLint, CorpusVerdictTable) {
  const auto &Table = expectedVerdicts();
  for (const LitmusCase &LC : litmusCorpus()) {
    auto It = Table.find(LC.Name);
    ASSERT_NE(It, Table.end())
        << "corpus case '" << LC.Name
        << "' has no expected verdict — classify it in analysis_test.cpp";
    std::unique_ptr<Program> P = prog(LC.Text);
    analysis::RaceReport Rep = analysis::analyzeRaces(*P);
    EXPECT_EQ(Rep.Verdict, It->second)
        << LC.Name << ": got " << analysis::raceVerdictName(Rep.Verdict);
    // A witness accompanies exactly the racy verdict.
    EXPECT_EQ(Rep.Witness.has_value(),
              Rep.Verdict == RaceVerdict::PotentiallyRacy)
        << LC.Name;
    if (Rep.Witness) {
      const Program &Prog = *P;
      // The witness names a real cross-thread pair on a shared location
      // with a write on the A side.
      EXPECT_NE(Rep.Witness->TidA, Rep.Witness->TidB) << LC.Name;
      EXPECT_LT(Rep.Witness->Loc, Prog.numLocs()) << LC.Name;
      EXPECT_NE(Rep.Witness->StmtA, nullptr) << LC.Name;
      EXPECT_NE(Rep.Witness->StmtB, nullptr) << LC.Name;
    }
  }
}

TEST(RaceLint, EveryCorpusWitnessReplaysToADynamicRace) {
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    analysis::RaceReport Rep = analysis::analyzeRaces(*P);
    if (Rep.Verdict != RaceVerdict::PotentiallyRacy)
      continue;
    bool Whitelisted = false;
    for (const std::string &N : knownFalsePositives())
      Whitelisted |= N == LC.Name;
    PsBehaviorSet B = explorePsna(*P, caseConfig(LC, /*Lint=*/false));
    ASSERT_FALSE(B.truncated()) << LC.Name;
    if (Whitelisted) {
      EXPECT_EQ(B.RaceSteps, 0u)
          << LC.Name << " is whitelisted as a false positive but the "
          << "explorer observed a dynamic race — remove it from the list";
    } else {
      EXPECT_GT(B.RaceSteps, 0u)
          << LC.Name << ": static witness " << Rep.Witness->str(*P)
          << " did not replay to a dynamic race — classify it as a false "
          << "positive or fix the analyzer";
    }
  }
}

TEST(RaceLint, SoundnessDifferentialOnCorpus) {
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    PsBehaviorSet On = explorePsna(*P, caseConfig(LC, /*Lint=*/true));
    PsBehaviorSet Off = explorePsna(*P, caseConfig(LC, /*Lint=*/false));
    ASSERT_FALSE(On.truncated()) << LC.Name;
    ASSERT_FALSE(Off.truncated()) << LC.Name;
    // Bit-identical behavior sets (the NAMsg-pruning soundness claim).
    EXPECT_EQ(On.strs(), Off.strs()) << LC.Name;
    ASSERT_TRUE(On.Lint.has_value()) << LC.Name;
    EXPECT_FALSE(Off.Lint.has_value()) << LC.Name;
    if (*On.Lint != RaceVerdict::PotentiallyRacy) {
      // Statically safe: the dynamic oracle must agree, in both runs.
      EXPECT_EQ(Off.RaceSteps, 0u) << LC.Name;
      EXPECT_EQ(On.RaceSteps, 0u) << LC.Name;
      EXPECT_TRUE(On.MarkersSkipped) << LC.Name;
      EXPECT_EQ(On.NaMarkers, 0u) << LC.Name;
      // Suppressing markers never grows the state space.
      EXPECT_LE(On.StatesExplored, Off.StatesExplored) << LC.Name;
    } else {
      EXPECT_FALSE(On.MarkersSkipped) << LC.Name;
      EXPECT_EQ(On.StatesExplored, Off.StatesExplored) << LC.Name;
    }
  }
}

TEST(RaceLint, SoundnessDifferentialOnRandomPrograms) {
  // 210 seeded random programs: 100 single-thread, 90 two-thread, 20
  // eight-thread. Eight-thread unguarded shapes can exceed any reasonable
  // state budget, so explorations are capped; a truncated run still
  // participates in the soundness check (a race observed in a prefix is a
  // race) but not in the bit-identity check (the cap cuts the two runs at
  // different frontiers by design).
  struct Tier {
    unsigned Threads;
    unsigned Count;
    unsigned MaxStates;
  };
  const Tier Tiers[] = {{1, 100, 50000}, {2, 90, 50000}, {8, 20, 1000}};
  Rng R(20260807);
  unsigned Proved = 0, Racy = 0;
  for (const Tier &T : Tiers) {
    for (unsigned I = 0; I != T.Count; ++I) {
      std::string Text = randomConcurrentProgram(R, T.Threads);
      std::unique_ptr<Program> P = prog(Text);
      PsConfig Cfg;
      Cfg.NumThreads = 1;
      Cfg.MaxStates = T.MaxStates;
      Cfg.CertNodeBudget = 2000;
      Cfg.Lint = true;
      PsBehaviorSet On = explorePsna(*P, Cfg);
      Cfg.Lint = false;
      PsBehaviorSet Off = explorePsna(*P, Cfg);
      ASSERT_TRUE(On.Lint.has_value()) << Text;
      bool StaticSafe = *On.Lint != RaceVerdict::PotentiallyRacy;
      (StaticSafe ? Proved : Racy) += 1;
      if (StaticSafe) {
        // Soundness: no dynamic race may surface, even in a truncated
        // prefix of the state space.
        EXPECT_EQ(On.RaceSteps, 0u) << Text;
        EXPECT_EQ(Off.RaceSteps, 0u) << Text;
        EXPECT_TRUE(On.MarkersSkipped) << Text;
      }
      if (!On.truncated() && !Off.truncated())
        EXPECT_EQ(On.strs(), Off.strs()) << Text;
    }
  }
  // The generator must actually exercise both sides of the verdict:
  // single-thread programs are all provably safe, the guarded multi-thread
  // half mostly proves too, and a healthy slice of the unguarded half must
  // be racy — otherwise this differential tests nothing.
  EXPECT_GT(Proved, 100u);
  EXPECT_GT(Racy, 10u);
}

TEST(RaceLint, MayFollowPath) {
  using V = std::vector<uint32_t>;
  constexpr uint32_t Seq = 1u << 28, If = 2u << 28, Wh = 3u << 28;
  // Straight-line order: a later Seq child may follow an earlier one,
  // never the reverse.
  EXPECT_TRUE(analysis::mayFollowPath(V{Seq | 1}, V{Seq | 0}));
  EXPECT_FALSE(analysis::mayFollowPath(V{Seq | 0}, V{Seq | 1}));
  // The same site never strictly follows itself outside a loop...
  EXPECT_FALSE(analysis::mayFollowPath(V{Seq | 0}, V{Seq | 0}));
  // ...but inside a While body everything may repeat.
  EXPECT_TRUE(analysis::mayFollowPath(V{Wh | 0, Seq | 0}, V{Wh | 0, Seq | 0}));
  EXPECT_TRUE(analysis::mayFollowPath(V{Wh | 0, Seq | 0}, V{Wh | 0, Seq | 1}));
  // Exclusive If branches cannot both execute.
  EXPECT_FALSE(analysis::mayFollowPath(V{Seq | 1, If | 0}, V{Seq | 1, If | 1}));
  // Prefix relationships are conservatively ordered both ways.
  EXPECT_TRUE(analysis::mayFollowPath(V{Seq | 0, Seq | 1}, V{Seq | 0}));
}

TEST(RaceLint, FootprintsOnMessagePassing) {
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; return 0; }\n"
      "thread { b := y@acq; if (b == 1) { a := x@na; return a; } return 2; }");
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  ASSERT_EQ(Rep.Threads.size(), 2u);
  unsigned X = *P->lookupLoc("x"), Y = *P->lookupLoc("y");
  const analysis::ThreadFootprint &W = Rep.Threads[0];
  EXPECT_TRUE(W.MayWrite.contains(X));
  EXPECT_TRUE(W.MustWrite.contains(X));
  EXPECT_TRUE(W.MustWrite.contains(Y));
  EXPECT_TRUE(W.NaWrite.contains(X));
  EXPECT_FALSE(W.NaWrite.contains(Y));
  EXPECT_FALSE(W.MayRead.contains(X));
  const analysis::ThreadFootprint &Rd = Rep.Threads[1];
  EXPECT_TRUE(Rd.MustRead.contains(Y));
  EXPECT_TRUE(Rd.MayRead.contains(X));
  // The guarded na read is conditional, not a must-access.
  EXPECT_FALSE(Rd.MustRead.contains(X));
  EXPECT_TRUE(Rd.NaRead.contains(X));
  // The guarded read site carries the acquire fact y == 1.
  bool FoundGuardedRead = false;
  for (const analysis::AccessSite &S : Rd.Sites)
    if (S.Loc == X && S.IsRead) {
      FoundGuardedRead = true;
      ASSERT_EQ(S.Facts.size(), 1u);
      EXPECT_EQ(S.Facts[0].Loc, Y);
      EXPECT_EQ(S.Facts[0].Val, 1);
    }
  EXPECT_TRUE(FoundGuardedRead);
}

TEST(RaceLint, DischargeRequiresReleaseOnEveryGuardWriter) {
  // Identical MP shape, but a second thread also writes the guard value 1
  // with relaxed mode: the acquire fact no longer implies the release edge
  // (the reader may have observed the relaxed write), so the proof must
  // fail.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; return 0; }\n"
      "thread { b := y@acq; if (b == 1) { a := x@na; return a; } return 2; }\n"
      "thread { y@rlx := 1; return 0; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::PotentiallyRacy);

  // Writing a different value relaxed keeps the proof: the guard tests for
  // 1 and the relaxed writer cannot produce it.
  std::unique_ptr<Program> Q = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; return 0; }\n"
      "thread { b := y@acq; if (b == 1) { a := x@na; return a; } return 2; }\n"
      "thread { y@rlx := 0; return 0; }");
  EXPECT_EQ(analysis::analyzeRaces(*Q).Verdict, RaceVerdict::RaceFree);
}

TEST(RaceLint, DischargeRequiresAcquireOnTheReader) {
  // Relaxed read of the flag: no synchronization fact, so the guarded na
  // read stays racy.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; return 0; }\n"
      "thread { b := y@rlx; if (b == 1) { a := x@na; return a; } return 2; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, DischargeRejectsWritesAfterTheFlag) {
  // The data write sits after the release flag write, so the acquire
  // observation does not order it: must stay racy.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { y@rel := 1; x@na := 1; return 0; }\n"
      "thread { b := y@acq; if (b == 1) { a := x@na; return a; } return 2; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, ZeroGuardValueIsNotUsedForDischarge) {
  // The flag's initial value is 0, so observing 0 proves nothing: a guard
  // testing for 0 must not discharge the pair.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 0; return 0; }\n"
      "thread { b := y@acq; if (b == 0) { a := x@na; return a; } return 2; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, ReaderSignalsDischargesPostQuiescenceWrite) {
  // The dual discharge direction (the RCU-quiescence / slot-reuse shape):
  // the reader finishes its na read and release-signals; the writer
  // acquire-waits on the signal before mutating, so the read
  // happens-before the write through the reader's own flag.
  std::unique_ptr<Program> P = prog(
      "na x; atomic q;\n"
      "thread { a := x@na; q@rel := 1; return a; }\n"
      "thread { b := q@acq; while (b != 1) { b := q@acq; } x@na := 1; "
      "return 0; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::RaceFree);

  // Signalling before the read proves nothing: the writer may observe the
  // flag while the read is still in flight.
  std::unique_ptr<Program> Q = prog(
      "na x; atomic q;\n"
      "thread { q@rel := 1; a := x@na; return a; }\n"
      "thread { b := q@acq; while (b != 1) { b := q@acq; } x@na := 1; "
      "return 0; }");
  EXPECT_EQ(analysis::analyzeRaces(*Q).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, ReaderSignalsRequiresUniqueSignalWriter) {
  // A third thread also produces the signal value with relaxed mode: the
  // writer's acquire observation no longer implies the reader passed its
  // release, so the quiescence proof must fail.
  std::unique_ptr<Program> P = prog(
      "na x; atomic q;\n"
      "thread { a := x@na; q@rel := 1; return a; }\n"
      "thread { b := q@acq; while (b != 1) { b := q@acq; } x@na := 1; "
      "return 0; }\n"
      "thread { q@rlx := 1; return 0; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, WriterPublishDischargeIsPerPair) {
  // The SPSC slot-reuse shape: the producer's first store is ordered by
  // its own flag (per-pair — the *later* second store must not poison the
  // first pair's proof), and the second store is ordered by the
  // consumer's read-back signal. Both discharge directions combine to a
  // race-freedom proof.
  std::unique_ptr<Program> P = prog(
      "na s; atomic w, r;\n"
      "thread { s@na := 1; w@rel := 1;\n"
      "  a := r@acq; while (a != 1) { a := r@acq; }\n"
      "  s@na := 2; return 0; }\n"
      "thread { b := w@acq; while (b != 1) { b := w@acq; }\n"
      "  x := s@na; r@rel := 1; return x; }");
  EXPECT_EQ(analysis::analyzeRaces(*P).Verdict, RaceVerdict::RaceFree);

  // Without the read-back handshake the second store races with the
  // consumer's read: per-pair precision must not turn into unsoundness.
  std::unique_ptr<Program> Q = prog(
      "na s; atomic w, r;\n"
      "thread { s@na := 1; w@rel := 1; s@na := 2; return 0; }\n"
      "thread { b := w@acq; while (b != 1) { b := w@acq; }\n"
      "  x := s@na; r@rel := 1; return x; }");
  EXPECT_EQ(analysis::analyzeRaces(*Q).Verdict, RaceVerdict::PotentiallyRacy);
}

TEST(RaceLint, StaticallyDeadNaAccessIsIgnored)
{
  // The racy na write sits in a branch constant propagation proves dead.
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { r := 0; if (r == 1) { x@na := 1; } y@rlx := 1; return 0; }\n"
      "thread { a := x@na; return a; }");
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  EXPECT_EQ(Rep.Verdict, RaceVerdict::RaceFree);
}

TEST(RaceLint, ReportRendersVerdictAndWitness) {
  std::unique_ptr<Program> P = prog("na x;\n"
                                    "thread { x@na := 1; return 0; }\n"
                                    "thread { a := x@na; return a; }");
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  EXPECT_EQ(Rep.Verdict, RaceVerdict::PotentiallyRacy);
  std::string S = Rep.str(*P);
  EXPECT_NE(S.find("potentially-racy"), std::string::npos);
  EXPECT_NE(S.find("races with"), std::string::npos);
  std::string J = Rep.json(*P);
  EXPECT_NE(J.find("\"verdict\":"), std::string::npos);
  EXPECT_NE(J.find("\"witness\":"), std::string::npos);
}

TEST(RaceLint, TelemetryCountersFlow) {
  obs::Telemetry Telem;
  std::unique_ptr<Program> P = prog(
      "na x; atomic y;\n"
      "thread { x@na := 1; y@rel := 1; return 0; }\n"
      "thread { b := y@acq; if (b == 1) { a := x@na; return a; } return 2; }");
  PsConfig Cfg;
  Cfg.NumThreads = 1;
  Cfg.Telem = &Telem;
  PsBehaviorSet B = explorePsna(*P, Cfg);
  EXPECT_TRUE(B.MarkersSkipped);
  EXPECT_EQ(Telem.Counters.counter("analysis.runs"), 1u);
  EXPECT_EQ(Telem.Counters.counter("analysis.verdict.race_free"), 1u);
  EXPECT_EQ(Telem.Counters.counter("analysis.markers_skipped"), 1u);
  EXPECT_EQ(Telem.Counters.counter("analysis.agree"), 1u);
  EXPECT_EQ(Telem.Counters.counter("analysis.soundness_violation"), 0u);
  EXPECT_EQ(Telem.Counters.counter("psna.explore.race_steps"), 0u);
  EXPECT_EQ(Telem.Counters.counter("psna.na_markers"), 0u);
}

// --- Numeric abstract domains (Interval / Congruence / AbsDom) --------------
//
// Property tests for the symbolic backend's domains: widening behavior at
// the INT64 bounds, the zero-modulus (singleton) congruence cases, and the
// lattice absorption laws, swept over seeded random elements.

namespace {

using analysis::AbsDom;
using analysis::Congruence;
using analysis::Interval;

constexpr int64_t I64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t I64Max = std::numeric_limits<int64_t>::max();

/// A random interval biased toward the interesting boundary values.
Interval randomInterval(Rng &R) {
  auto pick = [&R]() -> int64_t {
    switch (R.below(6)) {
    case 0:
      return I64Min;
    case 1:
      return I64Max;
    case 2:
      return 0;
    case 3:
      return static_cast<int64_t>(R.below(7)) - 3;
    default:
      return static_cast<int64_t>(R.next());
    }
  };
  if (R.below(8) == 0)
    return Interval::empty();
  int64_t A = pick(), B = pick();
  return Interval::range(std::min(A, B), std::max(A, B));
}

Congruence randomCongruence(Rng &R) {
  switch (R.below(8)) {
  case 0:
    return Congruence::empty();
  case 1:
    return Congruence::top();
  case 2:
  case 3:
    return Congruence::of(static_cast<int64_t>(R.next())); // zero modulus
  default:
    return Congruence::modRem(1 + R.below(1000),
                              static_cast<int64_t>(R.next()));
  }
}

AbsDom randomAbsDom(Rng &R) {
  return AbsDom::make(randomInterval(R), randomCongruence(R),
                      R.below(3) == 0);
}

} // namespace

TEST(AbsDomains, IntervalWideningSaturatesAtInt64Bounds) {
  // An unstable bound must jump to the extreme — and never wrap.
  Interval A = Interval::range(I64Min + 1, I64Max - 1);
  Interval Grow = Interval::range(I64Min, I64Max);
  Interval W = A.widen(Grow);
  EXPECT_TRUE(W.isFull());

  // Widening something already at the extremes is a fixpoint.
  EXPECT_EQ(W.widen(Grow), W);
  EXPECT_EQ(Interval::full().widen(Interval::of(42)), Interval::full());

  // Stable bounds are kept exactly, including extreme stable bounds.
  Interval Pin = Interval::range(I64Min, 5);
  EXPECT_EQ(Pin.widen(Interval::range(I64Min, 3)), Pin);
  EXPECT_EQ(Pin.widen(Interval::range(I64Min + 7, 9)),
            Interval::range(I64Min, I64Max));

  // Property: widen covers the join, and a second application with the
  // same operand is stable (the chain has length ≤ 2 per bound).
  Rng R(0xABCD0001);
  for (unsigned I = 0; I != 500; ++I) {
    Interval X = randomInterval(R), Y = randomInterval(R);
    Interval W1 = X.widen(Y);
    EXPECT_TRUE(X.join(Y).isSubsetOf(W1)) << X.str() << " ∇ " << Y.str();
    EXPECT_EQ(W1.widen(Y), W1) << X.str() << " ∇ " << Y.str();
  }
}

TEST(AbsDomains, CongruenceJoinWithZeroModulus) {
  // Zero modulus is a singleton; joining two singletons yields the
  // |difference| class containing both.
  Congruence A = Congruence::of(3), B = Congruence::of(7);
  Congruence J = A.join(B);
  EXPECT_EQ(J, Congruence::modRem(4, 3));
  EXPECT_TRUE(J.contains(3));
  EXPECT_TRUE(J.contains(7));

  // Equal singletons stay a singleton (gcd(0,0) with equal residues).
  EXPECT_EQ(Congruence::of(5).join(Congruence::of(5)), Congruence::of(5));

  // Singleton vs a proper class folds the residue difference into the
  // modulus via gcd.
  EXPECT_EQ(Congruence::of(5).join(Congruence::modRem(6, 1)),
            Congruence::modRem(2, 1));

  // Far-apart singletons whose difference exceeds INT64_MAX go to top
  // rather than materializing an unrepresentable modulus.
  EXPECT_TRUE(Congruence::of(I64Min).join(Congruence::of(I64Max)).isTop());

  // Property: the join contains both operands, is commutative, and a
  // re-join is a fixpoint (gcd chains strictly divide).
  Rng R(0xABCD0002);
  for (unsigned I = 0; I != 500; ++I) {
    Congruence X = randomCongruence(R), Y = randomCongruence(R);
    Congruence J2 = X.join(Y);
    EXPECT_EQ(J2, Y.join(X)) << X.str() << " ⊔ " << Y.str();
    EXPECT_EQ(J2.join(X), J2) << X.str() << " ⊔ " << Y.str();
    if (!X.isEmpty() && X.mod() == 0) {
      EXPECT_TRUE(J2.contains(X.rem())) << X.str() << " ⊔ " << Y.str();
    }
    if (!Y.isEmpty() && Y.mod() == 0) {
      EXPECT_TRUE(J2.contains(Y.rem())) << X.str() << " ⊔ " << Y.str();
    }
  }
}

TEST(AbsDomains, TopBottomAbsorptionLaws) {
  Rng R(0xABCD0003);
  for (unsigned I = 0; I != 500; ++I) {
    // Interval: ⊥ ⊔ x = x, ⊤ ⊔ x = ⊤, ⊥ ⊓ x = ⊥, ⊤ ⊓ x = x.
    Interval X = randomInterval(R);
    EXPECT_EQ(Interval::empty().join(X), X);
    EXPECT_EQ(Interval::full().join(X), Interval::full());
    EXPECT_TRUE(Interval::empty().meet(X).isEmpty());
    EXPECT_EQ(Interval::full().meet(X), X);
    // x ⊔ x = x ⊓ x = x (idempotence).
    EXPECT_EQ(X.join(X), X);
    EXPECT_EQ(X.meet(X), X);

    Congruence C = randomCongruence(R);
    EXPECT_EQ(Congruence::empty().join(C), C);
    EXPECT_TRUE(Congruence::top().join(C).isTop() || C.isEmpty());
    EXPECT_TRUE(Congruence::empty().meet(C).isEmpty());
    EXPECT_EQ(Congruence::top().meet(C), C);
    EXPECT_EQ(C.join(C), C);
    EXPECT_EQ(C.meet(C), C);

    AbsDom D = randomAbsDom(R);
    EXPECT_EQ(AbsDom::bottom().join(D), D);
    EXPECT_EQ(AbsDom::top().join(D), AbsDom::top());
    EXPECT_TRUE(AbsDom::bottom().meet(D).isBottom());
    EXPECT_EQ(AbsDom::top().meet(D), D);
    EXPECT_EQ(D.join(D), D);
    // AbsDom meet is over-approximate (congruence component), so only
    // containment is guaranteed: x ⊑ x ⊓ x's over-approximation.
    EXPECT_TRUE(D.isSubsetOf(D.meet(D)));
    // Widening covers the join and absorbs ⊥ on either side.
    AbsDom E = randomAbsDom(R);
    EXPECT_TRUE(D.join(E).isSubsetOf(D.widen(E)));
    EXPECT_EQ(AbsDom::bottom().widen(D), D);
  }
}

TEST(AbsDomains, TransferFunctionsSoundOnSamples) {
  // Concrete soundness spot-check: for sampled concrete operand pairs
  // inside sampled abstract operands, the abstract result contains the
  // concrete result (and UB implies MayUB).
  Rng R(0xABCD0004);
  const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                       BinOp::Mod, BinOp::Eq,  BinOp::Ne,  BinOp::Lt,
                       BinOp::Le,  BinOp::Gt,  BinOp::Ge,  BinOp::And,
                       BinOp::Or};
  for (unsigned I = 0; I != 2000; ++I) {
    int64_t A = static_cast<int64_t>(R.below(21)) - 10;
    int64_t B = static_cast<int64_t>(R.below(21)) - 10;
    int64_t Lo1 = std::min(A, static_cast<int64_t>(R.below(21)) - 10);
    int64_t Lo2 = std::min(B, static_cast<int64_t>(R.below(21)) - 10);
    AbsDom DA = AbsDom::range(Lo1, std::max(A, Lo1 + 4), R.below(4) == 0);
    AbsDom DB = AbsDom::range(Lo2, std::max(B, Lo2 + 4), R.below(4) == 0);
    ASSERT_TRUE(DA.containsInt(A));
    ASSERT_TRUE(DB.containsInt(B));
    BinOp Op = Ops[R.below(sizeof(Ops) / sizeof(Ops[0]))];
    bool MayUB = false;
    AbsDom DR = analysis::absBinOp(Op, DA, DB, MayUB);
    bool UB = false;
    int64_t V = applyBinOp(Op, A, B, UB);
    if (UB)
      EXPECT_TRUE(MayUB) << "op " << static_cast<int>(Op) << " " << A
                         << "," << B;
    else
      EXPECT_TRUE(DR.containsInt(V))
          << "op " << static_cast<int>(Op) << " " << A << "," << B
          << " -> " << V << " not in " << DR.str();
  }
}

// --- Golden snapshots -------------------------------------------------------

namespace {

/// Renders one corpus case's analyzer report for the golden corpus.
std::string renderLintCase(const std::string &Name) {
  const LitmusCase &LC = litmusCaseByName(Name);
  std::unique_ptr<Program> P = prog(LC.Text);
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  return "case: " + LC.Name + " [" + LC.PaperRef + "]\n" + Rep.str(*P);
}

class LintGoldenTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(LintGoldenTest, MatchesGolden) {
  std::string Name = GetParam();
  EXPECT_TRUE(
      matchesGolden(PSEQ_GOLDEN_DIR, "lint-" + Name, renderLintCase(Name)));
}

INSTANTIATE_TEST_SUITE_P(Corpus, LintGoldenTest,
                         ::testing::Values("sb-rlx", "lb-rlx", "mp-rel-acq",
                                           "corr-rlx", "2+2w-rlx",
                                           "coww-fadd"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string N = I.param;
                           for (char &C : N)
                             if (C == '-' || C == '+')
                               C = '_';
                           return N;
                         });

int main(int Argc, char **Argv) {
  pseq::handleUpdateGoldenFlag(Argc, Argv);
  ::testing::InitGoogleTest(&Argc, Argv);
  return RUN_ALL_TESTS();
}
