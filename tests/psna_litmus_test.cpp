//===- tests/psna_litmus_test.cpp - Litmus outcomes (E11/E14/E15) ---------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Runs the PS^na explorer over the litmus corpus: Example 5.1, the
// Appendix B/C programs, and classic weak-memory shapes, asserting the
// paper's must-include / must-exclude outcome constraints.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "psna/Explorer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

class PsLitmusTest : public ::testing::TestWithParam<LitmusCase> {};

} // namespace

TEST_P(PsLitmusTest, OutcomesMatchPaper) {
  const LitmusCase &LC = GetParam();
  auto P = prog(LC.Text);

  PsConfig Cfg;
  Cfg.Domain = LC.Domain;
  Cfg.PromiseBudget = LC.PromiseBudget;
  Cfg.SplitBudget = LC.SplitBudget;
  PsBehaviorSet B = explorePsna(*P, Cfg);

  std::string AllStr;
  for (const std::string &S : B.strs())
    AllStr += "  " + S + "\n";

  for (const std::string &Want : LC.MustInclude)
    EXPECT_TRUE(B.containsStr(Want))
        << LC.Name << " (" << LC.PaperRef << "): missing outcome " << Want
        << "\nobserved:\n"
        << AllStr;
  for (const std::string &Forbidden : LC.MustExclude)
    EXPECT_FALSE(B.containsStr(Forbidden))
        << LC.Name << " (" << LC.PaperRef << "): forbidden outcome "
        << Forbidden << " observed\nall outcomes:\n"
        << AllStr;
  EXPECT_FALSE(B.truncated())
      << LC.Name << ": exploration must be exhaustive for litmus programs";
}

INSTANTIATE_TEST_SUITE_P(
    LitmusCorpus, PsLitmusTest, ::testing::ValuesIn(litmusCorpus()),
    [](const ::testing::TestParamInfo<LitmusCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
