//===- tests/psna_drf_test.cpp - §5 results (E12) -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The §5 "Results" paragraph: strengthening non-atomic accesses to atomic
// accesses is sound in PS^na, and the model's race discipline (UB only for
// write-write races; undef for write-read races) supports DRF-style
// programming guarantees — synchronized programs behave like interleaved
// ones and are insensitive to the promise machinery.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "psna/Explorer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

PsConfig cfg(unsigned Promises = 0) {
  PsConfig C;
  C.PromiseBudget = Promises;
  return C;
}

/// Checks outcome-set inclusion: every behavior of Tgt is ⊑-covered by Src.
void expectIncluded(const PsBehaviorSet &Tgt, const PsBehaviorSet &Src,
                    const std::string &What) {
  for (const PsBehavior &TB : Tgt.All)
    EXPECT_TRUE(Src.covers(TB))
        << What << ": behavior " << TB.str() << " not covered";
}

} // namespace

//===----------------------------------------------------------------------===
// Strengthening na → rlx (sound; the converse is not).
//===----------------------------------------------------------------------===

TEST(StrengtheningTest, NaToRlxIsSound) {
  // The same program with d non-atomic (source) vs relaxed-atomic
  // (target): every strengthened behavior must exist in the source.
  struct Shape {
    const char *Name;
    const char *Na;
    const char *Rlx;
  };
  const Shape Shapes[] = {
      {"wr-race",
       "na d;\nthread { d@na := 1; return 0; }\n"
       "thread { a := d@na; return a; }",
       "atomic d;\nthread { d@rlx := 1; return 0; }\n"
       "thread { a := d@rlx; return a; }"},
      {"mp-data",
       "na d; atomic f;\nthread { d@na := 1; f@rel := 1; return 0; }\n"
       "thread { b := f@acq; if (b == 1) { a := d@na; return a; } "
       "return 2; }",
       "atomic d, f;\nthread { d@rlx := 1; f@rel := 1; return 0; }\n"
       "thread { b := f@acq; if (b == 1) { a := d@rlx; return a; } "
       "return 2; }"},
      {"ww-race",
       "na d;\nthread { d@na := 1; return 0; }\n"
       "thread { d@na := 0; return 0; }",
       "atomic d;\nthread { d@rlx := 1; return 0; }\n"
       "thread { d@rlx := 0; return 0; }"},
  };
  for (const Shape &S : Shapes) {
    auto NaP = prog(S.Na);
    auto RlxP = prog(S.Rlx);
    PsBehaviorSet NaB = explorePsna(*NaP, cfg(1));
    PsBehaviorSet RlxB = explorePsna(*RlxP, cfg(1));
    expectIncluded(RlxB, NaB, S.Name);
  }
}

TEST(StrengtheningTest, WeakeningIsUnsound) {
  // rlx → na weakening is NOT sound: the na version races (undef / UB).
  auto RlxP = prog("atomic d;\nthread { d@rlx := 1; return 0; }\n"
                   "thread { a := d@rlx; return a; }");
  auto NaP = prog("na d;\nthread { d@na := 1; return 0; }\n"
                  "thread { a := d@na; return a; }");
  PsBehaviorSet RlxB = explorePsna(*RlxP, cfg());
  PsBehaviorSet NaB = explorePsna(*NaP, cfg());
  bool AllCovered = true;
  for (const PsBehavior &TB : NaB.All)
    AllCovered &= RlxB.covers(TB);
  EXPECT_FALSE(AllCovered) << "the na version reads undef; rlx never does";
}

//===----------------------------------------------------------------------===
// DRF-style guarantees.
//===----------------------------------------------------------------------===

TEST(DrfTest, SynchronizedProgramInsensitiveToPromises) {
  // The MP handoff uses only rel/acq synchronization: enabling promises
  // must not add outcomes (promises need a certifiable relaxed cycle).
  const char *MP =
      "na d; atomic f;\n"
      "thread { d@na := 1; f@rel := 1; return 0; }\n"
      "thread { b := f@acq; if (b == 1) { a := d@na; return a; } "
      "return 2; }";
  auto P0 = prog(MP);
  auto P1 = prog(MP);
  PsBehaviorSet NoProm = explorePsna(*P0, cfg(0));
  PsBehaviorSet Prom = explorePsna(*P1, cfg(1));
  EXPECT_EQ(NoProm.strs(), Prom.strs());
}

TEST(DrfTest, RacyProgramGainsOutcomesFromPromises) {
  // Contrast: the Example 5.1 shape gains the lb outcome with promises.
  const char *LB = "na x; atomic y;\n"
                   "thread { a := x@na; y@rlx := 1; return a; }\n"
                   "thread { b := y@rlx; if (b == 1) { x@na := 1; } "
                   "return b; }";
  auto P0 = prog(LB);
  auto P1 = prog(LB);
  PsBehaviorSet NoProm = explorePsna(*P0, cfg(0));
  PsBehaviorSet Prom = explorePsna(*P1, cfg(1));
  EXPECT_LT(NoProm.All.size(), Prom.All.size());
}

TEST(DrfTest, NoUBWithoutWriteWriteRace) {
  // §5: UB arises only from write-write races (or program faults). A
  // single-writer program never exhibits UB no matter the readers.
  const char *Programs[] = {
      "na d;\nthread { d@na := 1; return 0; }\n"
      "thread { a := d@na; b := d@na; return a + b; }",
      "na d; atomic f;\nthread { d@na := 1; f@rlx := 1; return 0; }\n"
      "thread { a := d@na; return a; }\n"
      "thread { b := d@na; return b; }",
  };
  for (const char *Text : Programs) {
    auto P = prog(Text);
    PsBehaviorSet B = explorePsna(*P, cfg(1));
    EXPECT_FALSE(B.containsStr("UB")) << Text;
  }
}

TEST(DrfTest, ReadOnlyNaSharingIsInterleavingExact) {
  // Two readers of an unwritten location always read the initial value.
  auto P = prog("na d;\n"
                "thread { a := d@na; return a; }\n"
                "thread { b := d@na; return b; }");
  PsBehaviorSet B = explorePsna(*P, cfg(1));
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_EQ(B.All[0].str(), "ret(0,0)");
}

//===----------------------------------------------------------------------===
// Guarded locking via CAS (the "locks from atomics" claim of §2).
//===----------------------------------------------------------------------===

TEST(DrfTest, CasLockProtectsNaData) {
  // Both threads take a CAS lock before touching d: no race, no undef,
  // and d ends incremented exactly... once per winner (the loser spins
  // zero times here: it simply skips on CAS failure).
  auto P = prog(
      "na d; atomic l;\n"
      "thread { w := cas(l, 0, 1) @ acq rel; if (w == 0) { a := d@na; "
      "d@na := a + 1; } return w; }\n"
      "thread { w := cas(l, 0, 1) @ acq rel; if (w == 0) { a := d@na; "
      "d@na := a + 1; } return w; }");
  PsBehaviorSet B = explorePsna(*P, cfg(1));
  EXPECT_FALSE(B.containsStr("UB"));
  // Exactly one thread wins the lock.
  EXPECT_TRUE(B.containsStr("ret(0,1)"));
  EXPECT_TRUE(B.containsStr("ret(1,0)"));
  EXPECT_FALSE(B.containsStr("ret(0,0)"));
}

//===----------------------------------------------------------------------===
// Differential properties of the explorer itself.
//===----------------------------------------------------------------------===

TEST(PsExplorerPropertyTest, NormalizationPreservesBehaviorSets) {
  // Timestamp ranking is a pure state-identification device: switching it
  // off must never change the observable outcome set, only the cost.
  for (const LitmusCase &LC : litmusCorpus()) {
    if (LC.Name.rfind("appB", 0) == 0 || LC.Name.rfind("appC", 0) == 0)
      continue; // heavyweight; covered by the bench ablation
    auto P1 = prog(LC.Text);
    auto P2 = prog(LC.Text);
    PsConfig On, Off;
    On.Domain = Off.Domain = LC.Domain;
    On.PromiseBudget = Off.PromiseBudget = LC.PromiseBudget;
    On.SplitBudget = Off.SplitBudget = LC.SplitBudget;
    Off.Normalize = false;
    PsBehaviorSet A = explorePsna(*P1, On);
    PsBehaviorSet B = explorePsna(*P2, Off);
    EXPECT_EQ(A.strs(), B.strs()) << LC.Name;
  }
}

TEST(PsExplorerPropertyTest, BehaviorInclusionIsReflexive) {
  for (const LitmusCase &LC : litmusCorpus()) {
    if (LC.PromiseBudget > 0 || LC.SplitBudget > 0)
      continue; // keep the sweep fast; promise cases covered elsewhere
    auto P = prog(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    PsBehaviorSet B = explorePsna(*P, Cfg);
    for (const PsBehavior &Beh : B.All)
      EXPECT_TRUE(B.covers(Beh)) << LC.Name << ": " << Beh.str();
  }
}

//===----------------------------------------------------------------------===
// Documented approximation: single-view fences (DESIGN.md deviation 1).
//===----------------------------------------------------------------------===

TEST(FenceApproximationTest, ScFencesDoNotForbidSbWeakOutcome) {
  // In full PS2.1 an SC fence pair forbids store buffering's ret(0,0).
  // Our single-view fragment models fences only as promise gates (the
  // paper's presented fragment has no SC accesses at all), so the weak
  // outcome remains. This test *documents* the approximation; if fences
  // ever gain real view semantics, flip the expectation.
  auto P = prog("atomic x, y;\n"
                "thread { x@rlx := 1; fence @ sc; a := y@rlx; return a; }\n"
                "thread { y@rlx := 1; fence @ sc; b := x@rlx; return b; }");
  PsBehaviorSet B = explorePsna(*P, cfg(0));
  EXPECT_TRUE(B.containsStr("ret(0,0)"))
      << "single-view approximation changed: update DESIGN.md deviation 1";
}
