//===- tests/memo_golden_test.cpp - Golden-corpus snapshots ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Locks the PS^na outcome sets of six canonical litmus shapes — SB, LB,
// MP, CoRR, 2+2W, and the RMW fairness chain — against checked-in
// snapshots in tests/golden/. The sets are rendered identically with
// memoization off and on (fresh context), so a snapshot mismatch in only
// one mode pins a memoization bug, and a mismatch in both pins a model
// change. Regenerate deliberately with
//
//   memo_golden_test --update-golden        (or PSEQ_UPDATE_GOLDEN=1)
//
// and review the .expected diff like any other semantic change.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "litmus/Corpus.h"
#include "memo/MemoContext.h"
#include "psna/Explorer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

using namespace pseq;

#ifndef PSEQ_GOLDEN_DIR
#error "PSEQ_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

/// Renders one corpus case: a header echoing the exploration bounds, then
/// the sorted outcome strings. StatesExplored is deliberately omitted —
/// pruning changes it without changing the behaviors, and the golden files
/// pin semantics, not exploration effort.
std::string renderCase(const LitmusCase &LC, bool UseMemo) {
  std::unique_ptr<Program> P = prog(LC.Text);
  memo::MemoContext MC;
  PsConfig Cfg;
  Cfg.Domain = LC.Domain;
  Cfg.PromiseBudget = LC.PromiseBudget;
  Cfg.SplitBudget = LC.SplitBudget;
  Cfg.NumThreads = 1;
  Cfg.Memo = UseMemo ? &MC : nullptr;
  PsBehaviorSet B = explorePsna(*P, Cfg);

  std::string Out = "# " + LC.Name + " [" + LC.PaperRef + "] promises=" +
                    std::to_string(LC.PromiseBudget) +
                    " splits=" + std::to_string(LC.SplitBudget) + "\n";
  Out += std::string("# cause=") + truncationCauseName(B.Cause) + "\n";
  for (const std::string &S : B.strs())
    Out += S + "\n";
  return Out;
}

class MemoGolden : public ::testing::TestWithParam<const char *> {};

TEST_P(MemoGolden, SnapshotMatchesBothModes) {
  const LitmusCase &LC = litmusCaseByName(GetParam());
  std::string Off = renderCase(LC, /*UseMemo=*/false);
  // Update mode writes the memo-off rendering; the memo-on rendering is
  // then compared against the same file, so the two modes can never drift
  // apart even while regenerating.
  EXPECT_TRUE(matchesGolden(PSEQ_GOLDEN_DIR, LC.Name, Off));
  {
    // Never update twice; compare the memoized rendering for real.
    ASSERT_EQ(Off, renderCase(LC, /*UseMemo=*/true))
        << "memoized rendering diverged for " << LC.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, MemoGolden,
                         ::testing::Values("sb-rlx", "lb-rlx", "mp-rel-acq",
                                           "corr-rlx", "2+2w-rlx",
                                           "coww-fadd"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

} // namespace

int main(int Argc, char **Argv) {
  pseq::handleUpdateGoldenFlag(Argc, Argv);
  ::testing::InitGoogleTest(&Argc, Argv);
  return RUN_ALL_TESTS();
}
