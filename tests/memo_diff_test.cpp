//===- tests/memo_diff_test.cpp - Memoization differential tests ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The memoization layer (src/memo) is pure acceleration: canonical-state
// suffix caching in the SEQ enumerator, sleep-set pruning and the
// cross-run behavior cache in the PS^na explorer. This suite pins that
// down differentially — for the whole litmus corpus and for a few hundred
// seeded random programs, the behavior sets with memoization ON must be
// byte-identical to the sets with it OFF, and identical across 1/2/8
// worker threads; truncation causes must agree under deterministic
// tripAfterPolls guards in both the tripping and non-tripping regime; and
// repeat runs through a shared context must actually hit the caches.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "adequacy/RandomProgram.h"
#include "guard/Guard.h"
#include "litmus/Corpus.h"
#include "memo/MemoContext.h"
#include "psna/Explorer.h"
#include "seq/BehaviorEnum.h"
#include "seq/SimpleRefinement.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pseq;

namespace {

// --- Rendering helpers: a behavior set as one comparable string ----------

std::string render(const PsBehaviorSet &B) {
  std::string Out = std::string("cause=") + truncationCauseName(B.Cause);
  for (const std::string &S : B.strs())
    Out += "\n" + S;
  return Out;
}

std::string render(const BehaviorSet &B) {
  // BehaviorSet::All is canonically sorted by the enumerator, so the
  // rendering is order-stable by construction.
  std::string Out = std::string("cause=") + truncationCauseName(B.Cause);
  for (const SeqBehavior &SB : B.All)
    Out += "\n" + SB.str();
  return Out;
}

PsConfig litmusConfig(const LitmusCase &LC) {
  PsConfig Cfg;
  Cfg.Domain = LC.Domain;
  Cfg.PromiseBudget = LC.PromiseBudget;
  Cfg.SplitBudget = LC.SplitBudget;
  Cfg.NumThreads = 1;
  return Cfg;
}

/// Enumerates the full Def 2.4 sweep of single-thread program \p P:
/// behaviors of every initial state, rendered into one string.
std::string seqSweep(const Program &P, SeqConfig Cfg) {
  Cfg = resolveUniverse(Cfg, P, 0, P, 0);
  SeqMachine M(P, 0, Cfg);
  std::vector<SeqState> Inits = enumerateInitialStates(M);
  std::vector<BehaviorSet> Sets = enumerateBehaviorsBatch(M, Inits);
  std::string Out;
  for (const BehaviorSet &B : Sets)
    Out += render(B) + "\n--\n";
  return Out;
}

// --- PS^na explorer: litmus corpus ---------------------------------------

TEST(MemoDiff, PsnaLitmusMemoOnEqualsOff) {
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    PsConfig Off = litmusConfig(LC);
    PsBehaviorSet BOff = explorePsna(*P, Off);

    memo::MemoContext MC;
    PsConfig On = litmusConfig(LC);
    On.Memo = &MC;
    PsBehaviorSet BOn = explorePsna(*P, On);

    EXPECT_EQ(render(BOff), render(BOn)) << "case " << LC.Name;
  }
}

TEST(MemoDiff, PsnaLitmusThreadSweepIdentical) {
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    for (bool UseMemo : {false, true}) {
      std::string Baseline;
      unsigned BaselineStates = 0;
      for (unsigned N : {1u, 2u, 8u}) {
        // A fresh context per worker count: the cross-run cache would
        // otherwise answer for the later counts and the comparison would
        // only exercise the cache, not the parallel explorer.
        memo::MemoContext MC;
        PsConfig Cfg = litmusConfig(LC);
        Cfg.NumThreads = N;
        Cfg.Memo = UseMemo ? &MC : nullptr;
        PsBehaviorSet B = explorePsna(*P, Cfg);
        if (N == 1) {
          Baseline = render(B);
          BaselineStates = B.StatesExplored;
        } else {
          EXPECT_EQ(Baseline, render(B))
              << "case " << LC.Name << " threads=" << N
              << " memo=" << UseMemo;
          EXPECT_EQ(BaselineStates, B.StatesExplored)
              << "case " << LC.Name << " threads=" << N
              << " memo=" << UseMemo;
        }
      }
    }
  }
}

TEST(MemoDiff, PsnaCrossRunCacheHitsAndAgrees) {
  memo::MemoContext MC;
  std::vector<std::string> FirstPass;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    PsConfig Cfg = litmusConfig(LC);
    Cfg.Memo = &MC;
    FirstPass.push_back(render(explorePsna(*P, Cfg)));
  }
  uint64_t MissesAfterFirst = MC.misses();
  EXPECT_EQ(MissesAfterFirst, litmusCorpus().size());
  EXPECT_EQ(MC.hits(), 0u);

  size_t I = 0;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = prog(LC.Text);
    PsConfig Cfg = litmusConfig(LC);
    Cfg.Memo = &MC;
    EXPECT_EQ(FirstPass[I++], render(explorePsna(*P, Cfg)))
        << "case " << LC.Name;
  }
  // Every second-pass exploration answered from the cache: repeat sweeps
  // cost zero exploration (the >=2x states-explored reduction the perf
  // gate checks end to end).
  EXPECT_EQ(MC.hits(), litmusCorpus().size());
  EXPECT_EQ(MC.misses(), MissesAfterFirst);
}

// --- PS^na explorer: guard interaction -----------------------------------

TEST(MemoDiff, PsnaTripCauseAgreesAndIsNotCached) {
  const LitmusCase &LC = litmusCaseByName("lb-rlx");
  std::unique_ptr<Program> P = prog(LC.Text);

  // Tripping regime: the same deterministic poll budget must produce the
  // same truncation cause with memoization on and off.
  for (uint64_t Polls : {0ull, 3ull}) {
    guard::CancellationToken TokOff, TokOn;
    guard::ResourceGuard GOff, GOn;
    TokOff.tripAfterPolls(Polls);
    TokOn.tripAfterPolls(Polls);
    GOff.setToken(&TokOff);
    GOn.setToken(&TokOn);

    PsConfig Off = litmusConfig(LC);
    Off.Guard = &GOff;
    PsBehaviorSet BOff = explorePsna(*P, Off);

    memo::MemoContext MC;
    PsConfig On = litmusConfig(LC);
    On.Guard = &GOn;
    On.Memo = &MC;
    PsBehaviorSet BOn = explorePsna(*P, On);

    EXPECT_EQ(BOff.Cause, BOn.Cause) << "polls=" << Polls;
    EXPECT_EQ(TruncationCause::Cancelled, BOn.Cause) << "polls=" << Polls;

    // A guard-truncated result must never answer for a later run: the
    // ungoverned re-run through the same context recomputes the full set.
    PsConfig Clean = litmusConfig(LC);
    Clean.Memo = &MC;
    PsBehaviorSet BFull = explorePsna(*P, Clean);
    EXPECT_EQ(TruncationCause::None, BFull.Cause);
    PsConfig Bare = litmusConfig(LC);
    EXPECT_EQ(render(explorePsna(*P, Bare)), render(BFull));
  }

  // Non-tripping regime: a generous poll budget never fires and the sets
  // match the ungoverned run exactly.
  guard::CancellationToken Tok;
  guard::ResourceGuard G;
  Tok.tripAfterPolls(1 << 20);
  G.setToken(&Tok);
  memo::MemoContext MC;
  PsConfig Cfg = litmusConfig(LC);
  Cfg.Guard = &G;
  Cfg.Memo = &MC;
  PsBehaviorSet B = explorePsna(*P, Cfg);
  EXPECT_EQ(TruncationCause::None, B.Cause);
  PsConfig Bare = litmusConfig(LC);
  EXPECT_EQ(render(explorePsna(*P, Bare)), render(B));
}

// --- SEQ enumerator: random programs -------------------------------------

TEST(MemoDiff, SeqRandomProgramsMemoOnEqualsOff) {
  Rng R(20220607);
  unsigned Cached = 0;
  for (unsigned I = 0; I != 200; ++I) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> P = prog(Pair.Src);

    SeqConfig Off;
    Off.NumThreads = 1;
    std::string SOff = seqSweep(*P, Off);

    memo::MemoContext MC;
    SeqConfig On;
    On.NumThreads = 1;
    On.Memo = &MC;
    std::string SOn = seqSweep(*P, On);
    EXPECT_EQ(SOff, SOn) << "program " << I << ":\n" << Pair.Src;

    // Second sweep through the same context: the initial-state sweep
    // re-reaches converged states, so the suffix cache must answer.
    uint64_t HitsBefore = MC.hits();
    std::string SAgain = seqSweep(*P, On);
    EXPECT_EQ(SOff, SAgain) << "program " << I;
    if (MC.hits() > HitsBefore)
      ++Cached;
  }
  // The suffix cache engages on the overwhelming majority of programs
  // (every repeated sweep replays at least its root nodes from cache).
  EXPECT_GE(Cached, 190u);
}

TEST(MemoDiff, SeqRandomProgramsThreadSweepIdentical) {
  Rng R(987654321);
  for (unsigned I = 0; I != 50; ++I) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> P = prog(Pair.Src);
    for (bool UseMemo : {false, true}) {
      std::string Baseline;
      for (unsigned N : {1u, 2u, 8u}) {
        memo::MemoContext MC;
        SeqConfig Cfg;
        Cfg.NumThreads = N;
        Cfg.Memo = UseMemo ? &MC : nullptr;
        std::string S = seqSweep(*P, Cfg);
        if (N == 1)
          Baseline = S;
        else
          EXPECT_EQ(Baseline, S) << "program " << I << " threads=" << N
                                 << " memo=" << UseMemo << ":\n"
                                 << Pair.Src;
      }
    }
  }
}

TEST(MemoDiff, SeqRefinementVerdictsAgree) {
  // End-to-end through the checker (the enumerator's main client): the
  // simple-refinement verdict, boundedness, and cause agree memo on/off
  // for random (source, target) pairs.
  Rng R(424242);
  for (unsigned I = 0; I != 100; ++I) {
    RandomPair Pair = randomRefinementPair(R);
    std::unique_ptr<Program> Src = prog(Pair.Src);
    std::unique_ptr<Program> Tgt = prog(Pair.Tgt);

    SeqConfig Off;
    Off.NumThreads = 1;
    RefinementResult ROff = checkSimpleRefinement(*Src, *Tgt, Off);

    memo::MemoContext MC;
    SeqConfig On;
    On.NumThreads = 1;
    On.Memo = &MC;
    RefinementResult ROn = checkSimpleRefinement(*Src, *Tgt, On);

    EXPECT_EQ(ROff.Holds, ROn.Holds) << Pair.Mutation << "\n" << Pair.Src;
    EXPECT_EQ(ROff.Bounded, ROn.Bounded) << Pair.Mutation;
    EXPECT_EQ(ROff.Cause, ROn.Cause) << Pair.Mutation;
    EXPECT_EQ(ROff.Counterexample, ROn.Counterexample) << Pair.Mutation;
  }
}

TEST(MemoDiff, SeqTripCauseAgreesUnderPollGuard) {
  // A looping program the step budget truncates, governed by deterministic
  // poll-count cancellation. In the tripping regime both runs must report
  // Cancelled; in the non-tripping regime both report the step-budget
  // outcome byte-identically.
  std::unique_ptr<Program> P =
      prog("atomic x;\n"
           "thread { a := 0; while (a == 0) { a := x@rlx; } return a; }");
  for (uint64_t Polls : {0ull, 2ull, 1ull << 20}) {
    guard::CancellationToken TokOff, TokOn;
    guard::ResourceGuard GOff, GOn;
    TokOff.tripAfterPolls(Polls);
    TokOn.tripAfterPolls(Polls);
    GOff.setToken(&TokOff);
    GOn.setToken(&TokOn);

    SeqConfig Off;
    Off.NumThreads = 1;
    Off.Guard = &GOff;
    Off = resolveUniverse(Off, *P, 0, *P, 0);
    SeqMachine MOff(*P, 0, Off);
    std::vector<Value> Mem(P->numLocs(), Value::of(0));
    BehaviorSet BOff =
        enumerateBehaviors(MOff, MOff.initial(LocSet::empty(),
                                              LocSet::empty(), Mem));

    memo::MemoContext MC;
    SeqConfig On = Off;
    On.Guard = &GOn;
    On.Memo = &MC;
    SeqMachine MOn(*P, 0, On);
    BehaviorSet BOn = enumerateBehaviors(
        MOn, MOn.initial(LocSet::empty(), LocSet::empty(), Mem));

    EXPECT_EQ(BOff.Cause, BOn.Cause) << "polls=" << Polls;
    if (Polls >= (1ull << 20)) // generous budget: nothing tripped
      EXPECT_EQ(render(BOff), render(BOn));
  }
}

} // namespace

// --- ConfigSalt: distinct configurations never exchange cache entries ----

// The pipeline derives a salt from its active pass configuration and sets
// it into every engine config it hands the validators (Pipeline.cpp's
// passConfigSalt). The explorer-side contract that makes this work: two
// explorations that differ ONLY in ConfigSalt must not answer each other
// from a shared context. Before the salt was mixed into the cache keys,
// the second run below hit the first run's entry.
TEST(MemoDiff, PsnaConfigSaltPartitionsTheCache) {
  const LitmusCase &LC = litmusCaseByName("lb-rlx");
  std::unique_ptr<Program> P = prog(LC.Text);
  memo::MemoContext MC;

  PsConfig Cfg = litmusConfig(LC);
  Cfg.Memo = &MC;
  Cfg.ConfigSalt = 0;
  std::string Unsalted = render(explorePsna(*P, Cfg));
  EXPECT_EQ(MC.hits(), 0u);
  uint64_t Misses = MC.misses();
  EXPECT_GE(Misses, 1u);

  // Same program, same budgets, different salt: a fresh miss, never a hit.
  Cfg.ConfigSalt = 1;
  std::string Salted = render(explorePsna(*P, Cfg));
  EXPECT_EQ(MC.hits(), 0u) << "salted run answered from the unsalted entry";
  EXPECT_GT(MC.misses(), Misses);
  // The verdict itself is salt-independent, of course.
  EXPECT_EQ(Unsalted, Salted);

  // Repeating either salt now hits its own partition.
  explorePsna(*P, Cfg);
  EXPECT_GE(MC.hits(), 1u);
}

// Hits cannot distinguish partitions here: one sweep legitimately hits
// its own fresh entries when initial states share suffixes. Misses can:
// a salted re-sweep of identical work must redo ALL the first sweep's
// misses (fresh partition), and a same-salt re-sweep must add none.
TEST(MemoDiff, SeqConfigSaltPartitionsTheCache) {
  auto P = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  memo::MemoContext MC;
  SeqConfig Cfg;
  Cfg.Memo = &MC;

  Cfg.ConfigSalt = 0;
  std::string First = seqSweep(*P, Cfg);
  uint64_t M1 = MC.misses();
  EXPECT_GE(M1, 1u);

  Cfg.ConfigSalt = 0x70736571u;
  std::string Second = seqSweep(*P, Cfg);
  EXPECT_EQ(MC.misses(), 2 * M1)
      << "salted enumeration answered from the unsalted suffix cache";
  EXPECT_EQ(First, Second);

  // Same salt again: fully served from its own partition.
  uint64_t Hits = MC.hits();
  seqSweep(*P, Cfg);
  EXPECT_EQ(MC.misses(), 2 * M1);
  EXPECT_GT(MC.hits(), Hits);
}
