//===- tests/seq_oracle_game_test.cpp - Def 3.2/3.3 game unit tests -------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Direct unit tests of the ∀-oracle adversary game shared by the advanced
// refinement matcher and the Fig. 6 simulation: goal semantics, acquire
// blocking, and the AND-over-adversary branching discipline.
//
//===----------------------------------------------------------------------===//

#include "seq/OracleGame.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

struct GameFixture {
  std::unique_ptr<Program> P;
  SeqConfig Cfg;
  std::unique_ptr<SeqMachine> M;

  explicit GameFixture(const std::string &Text,
                       ValueDomain D = ValueDomain::binary()) {
    P = prog(Text);
    Cfg.Domain = std::move(D);
    Cfg.Universe = P->naLocs();
    M = std::make_unique<SeqMachine>(*P, 0, Cfg);
  }

  SeqState state(LocSet Perm, LocSet F = LocSet::empty()) {
    return M->initial(Perm, F,
                      std::vector<Value>(P->numLocs(), Value::of(0)));
  }

  OracleGame game() { return OracleGame(*M, 1 << 20); }
};

} // namespace

TEST(OracleGameTest, BottomGoalReachedByUnconditionalAbort) {
  GameFixture F("thread { abort; }");
  EXPECT_TRUE(F.game().robustBottom(F.state(LocSet::empty())));
}

TEST(OracleGameTest, BottomGoalFailsOnTermination) {
  GameFixture F("thread { return 0; }");
  EXPECT_FALSE(F.game().robustBottom(F.state(LocSet::empty())));
}

TEST(OracleGameTest, BottomGoalViaRacyWrite) {
  GameFixture F("na x;\nthread { x@na := 1; return 0; }");
  // Without permission the write is UB on every path.
  EXPECT_TRUE(F.game().robustBottom(F.state(LocSet::empty())));
  // With permission it terminates instead.
  EXPECT_FALSE(F.game().robustBottom(F.state(F.P->naLocs())));
}

TEST(OracleGameTest, AdversaryControlsRelaxedReadValues) {
  // UB only when reading 1: the adversary answers 0 and the game fails.
  GameFixture F("atomic z;\nthread { a := z@rlx; "
                "if (a == 1) { abort; } return 0; }");
  EXPECT_FALSE(F.game().robustBottom(F.state(LocSet::empty())));

  // UB on every read value: robust.
  GameFixture G("atomic z;\nthread { a := z@rlx; abort; }");
  EXPECT_TRUE(G.game().robustBottom(G.state(LocSet::empty())));
}

TEST(OracleGameTest, AdversaryControlsChooseValues) {
  GameFixture F("thread { c := choose; if (c == 1) { abort; } return 0; }");
  EXPECT_FALSE(F.game().robustBottom(F.state(LocSet::empty())));
}

TEST(OracleGameTest, AcquireBlocksTheSuffix) {
  GameFixture F("atomic z;\nthread { a := z@acq; abort; }");
  EXPECT_FALSE(F.game().robustBottom(F.state(LocSet::empty())))
      << "no acquire read may appear in an unmatched source suffix";

  GameFixture G("thread { fence @ acq; abort; }");
  EXPECT_FALSE(G.game().robustBottom(G.state(LocSet::empty())));
}

TEST(OracleGameTest, ReleaseIsAllowedInTheSuffix) {
  GameFixture F("atomic z;\nthread { z@rel := 1; abort; }");
  EXPECT_TRUE(F.game().robustBottom(F.state(LocSet::empty())));
}

TEST(OracleGameTest, FulfillGoalByWriting) {
  GameFixture F("na x;\nthread { x@na := 1; return 0; }");
  unsigned X = *F.P->lookupLoc("x");
  // With permission: the write puts x into F — goal met on every path.
  EXPECT_TRUE(
      F.game().robustFulfill(F.state(F.P->naLocs()), LocSet::single(X)));
  // Without permission the write is UB — which also discharges the goal
  // (beh-failure subsumes beh-partial).
  EXPECT_TRUE(
      F.game().robustFulfill(F.state(LocSet::empty()), LocSet::single(X)));
}

TEST(OracleGameTest, FulfillGoalFailsWithoutAWrite) {
  GameFixture F("na x;\nthread { return 0; }");
  unsigned X = *F.P->lookupLoc("x");
  EXPECT_FALSE(
      F.game().robustFulfill(F.state(F.P->naLocs()), LocSet::single(X)));
  // The empty goal is immediately met.
  EXPECT_TRUE(F.game().robustFulfill(F.state(F.P->naLocs()), LocSet()));
}

TEST(OracleGameTest, ReleaseLabelsCollectFulfilledWrites) {
  // The write lands in a release label's F (then F resets); the collected
  // set still counts toward the goal (beh-partial's ⋃ of release F's).
  GameFixture F("na x; atomic z;\n"
                "thread { x@na := 1; z@rel := 1; return 0; }");
  unsigned X = *F.P->lookupLoc("x");
  EXPECT_TRUE(
      F.game().robustFulfill(F.state(F.P->naLocs()), LocSet::single(X)));
}

TEST(OracleGameTest, FulfillBeyondAnAcquireFails) {
  // The only write to x sits after an acquire read: commitments may not
  // be fulfilled across acquires.
  GameFixture F("na x; atomic z;\n"
                "thread { a := z@acq; x@na := 1; return 0; }");
  unsigned X = *F.P->lookupLoc("x");
  EXPECT_FALSE(
      F.game().robustFulfill(F.state(F.P->naLocs()), LocSet::single(X)));
}

TEST(OracleGameTest, SilentDivergenceNeverReachesAGoal) {
  GameFixture F("na x;\nthread { a := 1; while (a == 1) { skip; } "
                "x@na := 1; return 0; }");
  unsigned X = *F.P->lookupLoc("x");
  EXPECT_FALSE(
      F.game().robustFulfill(F.state(F.P->naLocs()), LocSet::single(X)))
      << "the cycle-cut memoization must terminate and answer false";
  EXPECT_FALSE(F.game().robustBottom(F.state(F.P->naLocs())));
}
