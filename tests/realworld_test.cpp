//===- tests/realworld_test.cpp - RealWorld corpus stack-wide suite -------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The real-world protocol corpus (litmus/RealWorld.h) as the stack-wide
// stress suite, bottom-up:
//  * corpus registration invariants (shape, explicit budgets, mutant
//    bookkeeping, lookup behavior including the aborting variants);
//  * PS^na exploration against every annotation at 1/2/8 workers,
//    bit-identically;
//  * mutants exhibiting their injected bug dynamically, and the bug being
//    absent from the parent protocol's behavior set;
//  * a promise-robustness sample (the cheap cases re-run at
//    PromiseBudget=1 — certification must not unlock any excluded
//    behavior);
//  * the static race lint cross-validated against the explorer's dynamic
//    race observations;
//  * the full optimizer pipeline under translation validation (Simulation
//    method — the per-thread enumeration checkers cannot close the
//    corpus's spin loops), with annotations re-checked on the optimized
//    programs and a whole-program PS^na adequacy cross-check;
//  * budget-truncation honesty over every TruncationCause: a starved run
//    must report a bounded verdict naming the right budget, never a clean
//    pass;
//  * a batch of pipeline jobs through the validation server.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceLint.h"
#include "guard/Guard.h"
#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "litmus/RealWorld.h"
#include "obs/Telemetry.h"
#include "opt/Pipeline.h"
#include "opt/Validator.h"
#include "psna/Explorer.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#define PSEQ_TEST_POSIX 1
#endif

using namespace pseq;

namespace {

bool contains(const std::vector<std::string> &V, const std::string &S) {
  return std::find(V.begin(), V.end(), S) != V.end();
}

/// Renders a run's annotation failures for test diagnostics.
std::string describe(const RealWorldRunResult &R) {
  std::string Out;
  for (const std::string &S : R.MissingIncludes)
    Out += " missing-include:" + S;
  for (const std::string &S : R.ForbiddenSeen)
    Out += " forbidden-seen:" + S;
  for (const std::string &S : R.MissingBad)
    Out += " missing-bad:" + S;
  if (!R.LintMatches)
    Out += " lint-mismatch";
  if (R.Behaviors.truncated())
    Out += std::string(" truncated:") + truncationCauseName(R.Behaviors.Cause);
  return Out.empty() ? " (clean)" : Out;
}

//===----------------------------------------------------------------------===//
// Corpus registration invariants
//===----------------------------------------------------------------------===//

TEST(RealWorldCorpus, ShapeAndMutantBookkeeping) {
  const std::vector<RealWorldCase> &C = realWorldCorpus();
  ASSERT_GE(C.size(), 15u);

  std::set<std::string> Names;
  std::set<std::string> Protocols;
  std::set<std::string> ProtocolsWithMutant;
  for (const RealWorldCase &RC : C) {
    EXPECT_TRUE(Names.insert(RC.Name).second) << "duplicate name " << RC.Name;
    EXPECT_EQ(RC.Name.rfind("rw-", 0), 0u)
        << RC.Name << " must carry the rw- prefix";
    EXPECT_FALSE(RC.SourceRef.empty()) << RC.Name << " needs provenance";
    EXPECT_FALSE(RC.Protocol.empty());
    EXPECT_FALSE(RC.MustInclude.empty())
        << RC.Name << ": a case that requires nothing tests nothing";

    // Parseable, and the annotations are disjoint.
    ParseResult P = parseProgram(RC.Text);
    EXPECT_TRUE(P.ok()) << RC.Name << ": " << P.Error;
    for (const std::string &S : RC.MustInclude)
      EXPECT_FALSE(contains(RC.MustExclude, S))
          << RC.Name << " requires and forbids " << S;

    if (RC.IsMutant) {
      ProtocolsWithMutant.insert(RC.Protocol);
      EXPECT_FALSE(RC.BadBehaviors.empty())
          << RC.Name << ": a mutant must name its bug's signature";
      for (const std::string &S : RC.BadBehaviors)
        EXPECT_TRUE(contains(RC.MustInclude, S))
            << RC.Name << ": bad behavior " << S
            << " must be in MustInclude (the model must exhibit it)";
      const RealWorldCase *Parent = realWorldCaseByNameMaybe(RC.MutantOf);
      ASSERT_NE(Parent, nullptr)
          << RC.Name << ": MutantOf " << RC.MutantOf << " does not resolve";
      EXPECT_FALSE(Parent->IsMutant);
      EXPECT_EQ(Parent->Protocol, RC.Protocol);
    } else {
      Protocols.insert(RC.Protocol);
      EXPECT_TRUE(RC.BadBehaviors.empty())
          << RC.Name << ": protocols carry no bug signature";
      EXPECT_TRUE(RC.MutantOf.empty());
    }
  }

  // The ISSUE floor: at least seven protocols, each with a mutant.
  EXPECT_GE(Protocols.size(), 7u);
  for (const std::string &P : Protocols)
    EXPECT_TRUE(ProtocolsWithMutant.count(P))
        << "protocol " << P << " has no broken mutant";
}

TEST(RealWorldCorpus, EveryBudgetIsExplicit) {
  // LitmusCase's defaulted StepBudget=24 silently truncates corpus-sized
  // programs, which is why RealWorldBudgets has no usable default: a case
  // that forgot to fill the struct in fails registration here.
  for (const RealWorldCase &RC : realWorldCorpus()) {
    EXPECT_TRUE(RC.Budgets.ExplicitlySet)
        << RC.Name << " registered with default-constructed budgets";
    EXPECT_GT(RC.Budgets.StepBudget, 0u) << RC.Name;
    EXPECT_GT(RC.Budgets.MaxStates, 0u) << RC.Name;
    EXPECT_GT(RC.Budgets.CertNodeBudget, 0u) << RC.Name;
    EXPECT_GT(RC.Budgets.DeadlineMs, 0u) << RC.Name;
    EXPECT_GT(RC.Budgets.MemMb, 0u) << RC.Name;
    EXPECT_FALSE(RC.Domain.values().empty()) << RC.Name;
  }
}

//===----------------------------------------------------------------------===//
// Lookups: Maybe variants and the aborting contract
//===----------------------------------------------------------------------===//

TEST(RealWorldCorpus, MaybeLookups) {
  EXPECT_NE(realWorldCaseByNameMaybe("rw-ms-queue"), nullptr);
  EXPECT_EQ(realWorldCaseByNameMaybe("rw-no-such-case"), nullptr);
  EXPECT_EQ(realWorldCaseByNameMaybe(""), nullptr);

  // The litmus and refinement corpora expose the same pattern.
  EXPECT_NE(litmusCaseByNameMaybe(litmusCorpus().front().Name), nullptr);
  EXPECT_EQ(litmusCaseByNameMaybe("no-such-litmus"), nullptr);
  EXPECT_NE(refinementCaseByNameMaybe(refinementCorpus().front().Name),
            nullptr);
  EXPECT_EQ(refinementCaseByNameMaybe("no-such-refinement"), nullptr);
}

TEST(RealWorldCorpusDeathTest, AbortingLookupsAbort) {
  EXPECT_DEATH(realWorldCaseByName("rw-no-such-case"),
               "unknown realworld case 'rw-no-such-case'");
  EXPECT_DEATH(litmusCaseByName("no-such-litmus"),
               "unknown litmus case 'no-such-litmus'");
  EXPECT_DEATH(refinementCaseByName("no-such-refinement"),
               "unknown refinement case 'no-such-refinement'");
}

//===----------------------------------------------------------------------===//
// PS^na exploration vs annotations, bit-identical across worker counts
//===----------------------------------------------------------------------===//

TEST(RealWorldExplore, AnnotationsHoldAtEveryWorkerCount) {
  for (const RealWorldCase &RC : realWorldCorpus()) {
    std::vector<std::string> BaselineStrs;
    unsigned BaselineStates = 0;
    for (unsigned NumThreads : {1u, 2u, 8u}) {
      RealWorldRunOptions Opts;
      Opts.NumThreads = NumThreads;
      RealWorldRunResult R = runRealWorldCase(RC, Opts);
      EXPECT_TRUE(R.clean())
          << RC.Name << " at " << NumThreads << " workers:" << describe(R);
      if (NumThreads == 1) {
        BaselineStrs = R.Behaviors.strs();
        BaselineStates = R.Behaviors.StatesExplored;
        EXPECT_FALSE(BaselineStrs.empty()) << RC.Name;
      } else {
        EXPECT_EQ(R.Behaviors.strs(), BaselineStrs)
            << RC.Name << ": behavior set drifted at " << NumThreads
            << " workers";
        EXPECT_EQ(R.Behaviors.StatesExplored, BaselineStates)
            << RC.Name << ": state count drifted at " << NumThreads
            << " workers";
      }
    }
  }
}

TEST(RealWorldExplore, MutantsExhibitBugsTheirProtocolForbids) {
  // Dynamic version of the mutant contract, independent of the annotation
  // lists: the injected bug's behavior shows up in the mutant's explored
  // set and not in the parent protocol's.
  for (const RealWorldCase &RC : realWorldCorpus()) {
    if (!RC.IsMutant)
      continue;
    const RealWorldCase &Parent = realWorldCaseByName(RC.MutantOf);
    RealWorldRunResult MutantRun = runRealWorldCase(RC);
    RealWorldRunResult ParentRun = runRealWorldCase(Parent);
    ASSERT_FALSE(MutantRun.Behaviors.truncated()) << RC.Name;
    ASSERT_FALSE(ParentRun.Behaviors.truncated()) << Parent.Name;
    for (const std::string &Bad : RC.BadBehaviors) {
      EXPECT_TRUE(MutantRun.Behaviors.containsStr(Bad))
          << RC.Name << " does not exhibit its own bug " << Bad;
      EXPECT_FALSE(ParentRun.Behaviors.containsStr(Bad))
          << Parent.Name << " exhibits its mutant's bug " << Bad
          << " — the mutant distinguishes nothing";
    }
  }
}

TEST(RealWorldExplore, ExclusionsArePromiseRobustOnCheapCases) {
  // The Std preset runs promise-free (certification multiplies corpus
  // runtime ~1000x); this samples the cheap cases at PromiseBudget=1 to
  // pin that promising unlocks no excluded behavior. The full corpus was
  // verified once by hand the same way.
  for (const char *Name :
       {"rw-futex", "rw-spsc-ring", "rw-rcu", "rw-ticket-lock"}) {
    RealWorldCase RC = realWorldCaseByName(Name);
    RC.Budgets.PromiseBudget = 1;
    RealWorldRunResult R = runRealWorldCase(RC);
    EXPECT_TRUE(R.clean()) << Name << " at PromiseBudget=1:" << describe(R);
  }
}

TEST(RealWorldExplore, StaticLintAgreesWithDynamicRaceObservations) {
  using analysis::RaceVerdict;
  for (const RealWorldCase &RC : realWorldCorpus()) {
    RealWorldRunResult R = runRealWorldCase(RC);
    ASSERT_FALSE(R.Behaviors.truncated()) << RC.Name;
    ASSERT_TRUE(R.Behaviors.Lint.has_value()) << RC.Name;
    EXPECT_EQ(*R.Behaviors.Lint, RC.ExpectedLint) << RC.Name;
    if (RC.ExpectedLint == RaceVerdict::RaceFree ||
        RC.ExpectedLint == RaceVerdict::AtomicsOnly) {
      // A proof of race freedom must be corroborated by the explorer
      // never enabling a racy transition.
      EXPECT_EQ(R.Behaviors.RaceSteps, 0u)
          << RC.Name << ": static verdict "
          << analysis::raceVerdictName(RC.ExpectedLint)
          << " but the explorer observed races (lint unsoundness)";
    } else {
      // Every PotentiallyRacy case in this corpus is a mutant whose bug
      // is a real race, so the dynamic oracle must see it.
      EXPECT_GT(R.Behaviors.RaceSteps, 0u)
          << RC.Name << ": flagged potentially-racy but no racy "
          << "transition was ever enabled (annotation too weak?)";
    }
  }
}

//===----------------------------------------------------------------------===//
// Optimizer pipeline under translation validation
//===----------------------------------------------------------------------===//

TEST(RealWorldPipeline, ValidatesAndPreservesAnnotations) {
  unsigned CorpusRewrites = 0;
  for (const RealWorldCase &RC : realWorldCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(RC.Text);
    PipelineOptions Opts;
    // Simulation closes the corpus's spin loops exactly; the enumeration
    // checkers would drown in unrolled read-value sequences.
    Opts.Method = ValidationMethod::Simulation;
    Opts.Cfg.Domain = RC.Domain;
    Opts.Cfg.StepBudget = RC.Budgets.StepBudget;
    Opts.EnableConstProp = true;
    Opts.EnablePromote = true;
    Opts.EnableWeaken = true;
    Opts.PsCfg = realWorldPsConfig(RC);
    PipelineResult PR = runPipeline(*P, Opts);
    EXPECT_TRUE(PR.AllValidated) << RC.Name;
    for (const PassReport &Rep : PR.Reports) {
      EXPECT_TRUE(Rep.Error.empty())
          << RC.Name << " " << Rep.Name << ": " << Rep.Error;
      if (Rep.Rewrites > 0) {
        CorpusRewrites += Rep.Rewrites;
        EXPECT_TRUE(Rep.Validated) << RC.Name << " " << Rep.Name;
      }
    }

    // Whole-program adequacy: the optimized program's PS^na outcomes are
    // included in the original's.
    ValidationResult Adequacy =
        validatePsTransform(*P, *PR.Prog, realWorldPsConfig(RC));
    EXPECT_TRUE(Adequacy.Ok)
        << RC.Name << ": " << Adequacy.Counterexample;

    // And the annotations survive optimization. Exclusions must survive
    // for every case (outcome inclusion can only shrink the set). The
    // inclusions are only required of the correct protocols: a mutant's
    // racy behaviors are legally *removable* — DSE eliminates the dead
    // first store of rw-spsc-ring-rlx-publish precisely because its
    // readers race, which is the paper's sequential reasoning at work —
    // so an optimized mutant may no longer exhibit its bug.
    PsBehaviorSet After = explorePsna(*PR.Prog, realWorldPsConfig(RC));
    ASSERT_FALSE(After.truncated()) << RC.Name;
    for (const std::string &S : RC.MustExclude)
      EXPECT_FALSE(After.containsStr(S))
          << RC.Name << ": optimization introduced forbidden behavior "
          << S;
    if (!RC.IsMutant)
      for (const std::string &S : RC.MustInclude)
        EXPECT_TRUE(After.containsStr(S))
            << RC.Name << ": optimization lost required behavior " << S;
  }
  // Non-vacuity: the corpus must make at least one pass actually fire
  // (today: DSE on rw-spsc-ring-rlx-publish, weaken on the reclamation
  // mutants), otherwise "the pipeline validates the corpus" tests
  // nothing.
  EXPECT_GE(CorpusRewrites, 1u);
}

TEST(RealWorldPipeline, LoopFreeCasesValidateExhaustively) {
  // The straight-line protocols fit the per-thread enumeration checkers:
  // the identity transform must validate with no budget consumed as an
  // excuse (Ok and not bounded) under the case's own StepBudget.
  for (const char *Name :
       {"rw-seqlock", "rw-seqlock-rlx-data", "rw-futex", "rw-futex-rlx-wake"}) {
    const RealWorldCase &RC = realWorldCaseByName(Name);
    std::unique_ptr<Program> P = parseOrDie(RC.Text);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.Budgets.StepBudget;
    ValidationResult V = validateTransform(*P, *P, Cfg);
    EXPECT_TRUE(V.Ok) << Name << ": " << V.Counterexample;
    EXPECT_FALSE(V.Bounded)
        << Name << " truncated under its own corpus budget ("
        << truncationCauseName(V.Cause) << ")";
  }
}

//===----------------------------------------------------------------------===//
// Budget-truncation honesty, one test per TruncationCause
//===----------------------------------------------------------------------===//

/// Runs rw-ms-queue with mutated budgets/guard and asserts the bounded
/// verdict names \p Want — and that a starved run never reports clean.
void expectPsTruncation(TruncationCause Want,
                        void (*Mutate)(RealWorldCase &,
                                       guard::ResourceGuard &)) {
  RealWorldCase RC = realWorldCaseByName("rw-ms-queue");
  guard::ResourceGuard Guard;
  Mutate(RC, Guard);
  RealWorldRunOptions Opts;
  Opts.Guard = &Guard;
  RealWorldRunResult R = runRealWorldCase(RC, Opts);
  EXPECT_TRUE(R.Behaviors.truncated())
      << "expected truncation by " << truncationCauseName(Want);
  EXPECT_EQ(R.Behaviors.Cause, Want)
      << "got " << truncationCauseName(R.Behaviors.Cause);
  EXPECT_FALSE(R.clean())
      << "a truncated exploration must never report a clean pass";
}

TEST(RealWorldTruncation, StateBudgetIsHonest) {
  expectPsTruncation(TruncationCause::StateBudget,
                     [](RealWorldCase &RC, guard::ResourceGuard &) {
                       RC.Budgets.MaxStates = 4;
                     });
}

TEST(RealWorldTruncation, CertBudgetIsHonest) {
  // Promise certification must be attempted for the cause to fire.
  expectPsTruncation(TruncationCause::CertBudget,
                     [](RealWorldCase &RC, guard::ResourceGuard &) {
                       RC.Budgets.PromiseBudget = 1;
                       RC.Budgets.CertNodeBudget = 1;
                     });
}

TEST(RealWorldTruncation, DeadlineIsHonest) {
  expectPsTruncation(TruncationCause::Deadline,
                     [](RealWorldCase &, guard::ResourceGuard &G) {
                       G.setDeadlineInMs(0); // already expired
                     });
}

TEST(RealWorldTruncation, MemBudgetIsHonest) {
  expectPsTruncation(TruncationCause::MemBudget,
                     [](RealWorldCase &, guard::ResourceGuard &G) {
                       G.setMemLimitBytes(1);
                     });
}

TEST(RealWorldTruncation, CancellationIsHonest) {
  static guard::CancellationToken Token;
  Token.tripAfterPolls(3);
  expectPsTruncation(TruncationCause::Cancelled,
                     [](RealWorldCase &, guard::ResourceGuard &G) {
                       G.setToken(&Token);
                     });
}

TEST(RealWorldTruncation, SeqStepBudgetIsHonest) {
  // The per-thread SEQ validator under a LitmusCase-sized step budget:
  // corpus programs do not fit, and the verdict must say so rather than
  // claim an exhaustive pass.
  const RealWorldCase &RC = realWorldCaseByName("rw-futex");
  std::unique_ptr<Program> P = parseOrDie(RC.Text);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = 4;
  ValidationResult V = validateTransform(*P, *P, Cfg);
  EXPECT_TRUE(V.Ok);
  EXPECT_TRUE(V.Bounded);
  EXPECT_EQ(V.Cause, TruncationCause::StepBudget);
}

TEST(RealWorldTruncation, BehaviorCapIsHonest) {
  const RealWorldCase &RC = realWorldCaseByName("rw-futex");
  std::unique_ptr<Program> P = parseOrDie(RC.Text);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.Budgets.StepBudget;
  Cfg.MaxBehaviors = 1;
  ValidationResult V = validateTransform(*P, *P, Cfg);
  EXPECT_TRUE(V.Ok);
  EXPECT_TRUE(V.Bounded);
  EXPECT_EQ(V.Cause, TruncationCause::BehaviorCap);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(RealWorldTelemetry, CountersTallyRunsAndMutants) {
  obs::Telemetry Telem;
  RealWorldRunOptions Opts;
  Opts.Telem = &Telem;
  runRealWorldCase(realWorldCaseByName("rw-rcu"), Opts);
  runRealWorldCase(realWorldCaseByName("rw-rcu-early-retire"), Opts);
  EXPECT_EQ(Telem.Counters.counter("realworld.cases_run"), 2u);
  EXPECT_EQ(Telem.Counters.counter("realworld.mutants_run"), 1u);
  EXPECT_EQ(Telem.Counters.counter("realworld.bad_exhibited"), 1u);
  EXPECT_GT(Telem.Counters.counter("realworld.states"), 0u);
  EXPECT_EQ(Telem.Counters.counter("realworld.annotation_failures"), 0u);
  EXPECT_EQ(Telem.Counters.counter("realworld.truncated"), 0u);

  // A starved run tallies truncated, not annotation_failures — truncation
  // is "no verdict", not "failed verdict".
  RealWorldCase Starved = realWorldCaseByName("rw-rcu");
  Starved.Budgets.MaxStates = 4;
  runRealWorldCase(Starved, Opts);
  EXPECT_EQ(Telem.Counters.counter("realworld.truncated"), 1u);
  EXPECT_EQ(Telem.Counters.counter("realworld.annotation_failures"), 0u);
}

//===----------------------------------------------------------------------===//
// The validation server runs the corpus as pipeline jobs
//===----------------------------------------------------------------------===//

#ifdef PSEQ_TEST_POSIX

namespace {

std::string makeTempDir() {
  char Template[] = "/tmp/pseq-realworld-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "/tmp";
}

/// Runs a server on its own thread; joins on destruction.
struct ServerHandle {
  std::unique_ptr<serve::Server> Srv;
  std::thread Runner;

  explicit ServerHandle(serve::ServerOptions Opts)
      : Srv(std::make_unique<serve::Server>(std::move(Opts))) {}

  bool start() {
    std::string Err;
    if (!Srv->start(Err)) {
      ADD_FAILURE() << "server start failed: " << Err;
      return false;
    }
    Runner = std::thread([this] { Srv->run(); });
    return true;
  }

  ~ServerHandle() {
    Srv->requestStop();
    if (Runner.joinable())
      Runner.join();
  }
};

/// Submits \p Jobs on one connection and collects one result per id.
std::map<uint64_t, serve::JobResult>
submitBatch(const std::string &Socket,
            const std::vector<serve::JobRequest> &Jobs) {
  std::map<uint64_t, serve::JobResult> Results;
  int Fd = serve::connectUnix(Socket);
  if (Fd < 0) {
    ADD_FAILURE() << "cannot connect to " << Socket;
    return Results;
  }
  for (const serve::JobRequest &J : Jobs)
    EXPECT_TRUE(serve::sendFrame(Fd, serve::encodeJobRequest(J)));
  std::string Payload, Err;
  while (Results.size() < Jobs.size()) {
    if (!serve::recvFrame(Fd, Payload, &Err)) {
      ADD_FAILURE() << "connection lost after " << Results.size() << "/"
                    << Jobs.size() << " replies: " << Err;
      break;
    }
    serve::JobResult R;
    if (!serve::parseJobResult(Payload, R, Err)) {
      ADD_FAILURE() << "bad reply: " << Err;
      break;
    }
    EXPECT_TRUE(Results.emplace(R.Id, R).second)
        << "duplicate reply for job " << R.Id;
  }
  serve::closeFd(Fd);
  return Results;
}

} // namespace

TEST(RealWorldServer, CorpusBatchValidatesWithMatchingLint) {
  std::string Dir = makeTempDir();
  serve::ServerOptions SO;
  SO.SocketPath = Dir + "/srv.sock";
  SO.NumWorkers = 2;
  SO.Policy.Isolate = false; // in-process workers: TSan-safe
  ServerHandle H(std::move(SO));
  ASSERT_TRUE(H.start());

  const std::vector<RealWorldCase> &Corpus = realWorldCorpus();
  std::vector<serve::JobRequest> Jobs;
  for (size_t I = 0; I != Corpus.size(); ++I) {
    serve::JobRequest J;
    J.Id = I + 1;
    J.Source = Corpus[I].Text; // no target: a full-pipeline job
    // Simulation closes the corpus spin loops; the enumeration checkers
    // would blow the deadline on any pass that fires in a loopy thread.
    J.Method = ValidationMethod::Simulation;
    J.StepBudget = Corpus[I].Budgets.StepBudget;
    J.DeadlineMs = Corpus[I].Budgets.DeadlineMs;
    J.MemMb = Corpus[I].Budgets.MemMb;
    Jobs.push_back(std::move(J));
  }
  std::map<uint64_t, serve::JobResult> Results =
      submitBatch(Dir + "/srv.sock", Jobs);
  ASSERT_EQ(Results.size(), Jobs.size());
  for (size_t I = 0; I != Corpus.size(); ++I) {
    const serve::JobResult &R = Results.at(I + 1);
    EXPECT_EQ(R.Status, serve::JobStatus::Ok)
        << Corpus[I].Name << ": " << serve::jobStatusName(R.Status) << " "
        << R.Detail;
    EXPECT_EQ(R.Lint, analysis::raceVerdictName(Corpus[I].ExpectedLint))
        << Corpus[I].Name;
  }

  // Resubmitting the identical batch is answered from the verdict cache.
  std::map<uint64_t, serve::JobResult> Again =
      submitBatch(Dir + "/srv.sock", Jobs);
  ASSERT_EQ(Again.size(), Jobs.size());
  for (const auto &[Id, R] : Again)
    EXPECT_TRUE(R.CacheHit) << "job " << Id << " missed the verdict cache";
}

#endif // PSEQ_TEST_POSIX

} // namespace
