//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef PSEQ_TESTS_TESTUTIL_H
#define PSEQ_TESTS_TESTUTIL_H

#include "lang/Parser.h"

#include <memory>
#include <string>

namespace pseq {

/// Parses a one-or-more-thread program, failing the test binary on error.
inline std::unique_ptr<Program> prog(const std::string &Text) {
  return parseOrDie(Text);
}

} // namespace pseq

#endif // PSEQ_TESTS_TESTUTIL_H
