//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef PSEQ_TESTS_TESTUTIL_H
#define PSEQ_TESTS_TESTUTIL_H

#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace pseq {

/// Parses a one-or-more-thread program, failing the test binary on error.
inline std::unique_ptr<Program> prog(const std::string &Text) {
  return parseOrDie(Text);
}

// --- Golden-corpus helpers -------------------------------------------------
//
// A golden test renders its subject to text and compares it against
// tests/golden/<name>.expected with matchesGolden(). Regenerate snapshots
// by re-running the test binary with --update-golden (or the environment
// variable PSEQ_UPDATE_GOLDEN=1); the updated files are written into the
// source tree and reviewed like any other diff.

/// True when this run should rewrite golden files instead of comparing.
inline bool updatingGolden() {
  const char *E = std::getenv("PSEQ_UPDATE_GOLDEN");
  return E && *E && std::string(E) != "0";
}

/// Scans \p Argv for --update-golden (before InitGoogleTest consumes
/// unknown flags) and turns it into the environment variable the compare
/// helper reads. Call from a custom test main.
inline void handleUpdateGoldenFlag(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--update-golden")
      setenv("PSEQ_UPDATE_GOLDEN", "1", 1);
}

/// Line-by-line diff rendering for golden mismatches: every differing line
/// is shown as `-expected` / `+actual`, with a cap so a wholesale change
/// stays readable.
inline std::string renderGoldenDiff(const std::string &Expected,
                                    const std::string &Actual) {
  auto split = [](const std::string &S) {
    std::vector<std::string> Lines;
    std::istringstream In(S);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
    return Lines;
  };
  std::vector<std::string> E = split(Expected), A = split(Actual);
  std::string Out;
  unsigned Shown = 0;
  size_t N = std::max(E.size(), A.size());
  for (size_t I = 0; I != N && Shown < 40; ++I) {
    const std::string *EL = I < E.size() ? &E[I] : nullptr;
    const std::string *AL = I < A.size() ? &A[I] : nullptr;
    if (EL && AL && *EL == *AL)
      continue;
    Out += "  line " + std::to_string(I + 1) + ":\n";
    if (EL)
      Out += "    -" + *EL + "\n";
    if (AL)
      Out += "    +" + *AL + "\n";
    ++Shown;
  }
  if (Shown == 40)
    Out += "  ... (diff capped at 40 lines)\n";
  return Out;
}

/// Compares \p Actual against \p Dir/\p Name.expected. In update mode the
/// file is (re)written and the comparison succeeds. On mismatch the
/// failure message carries a readable diff plus the regeneration hint.
inline ::testing::AssertionResult
matchesGolden(const std::string &Dir, const std::string &Name,
              const std::string &Actual) {
  std::string Path = Dir + "/" + Name + ".expected";
  if (updatingGolden()) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return ::testing::AssertionFailure()
             << "cannot write golden file " << Path;
    bool Ok = std::fwrite(Actual.data(), 1, Actual.size(), F) ==
              Actual.size();
    Ok &= std::fclose(F) == 0;
    if (!Ok)
      return ::testing::AssertionFailure()
             << "short write to golden file " << Path;
    return ::testing::AssertionSuccess() << "updated " << Path;
  }

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return ::testing::AssertionFailure()
           << "missing golden file " << Path
           << " (run with --update-golden to create it)";
  std::string Expected;
  char Buf[4096];
  for (size_t R; (R = std::fread(Buf, 1, sizeof(Buf), F)) != 0;)
    Expected.append(Buf, R);
  std::fclose(F);

  if (Expected == Actual)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "golden mismatch for " << Name << " (" << Path << "):\n"
         << renderGoldenDiff(Expected, Actual)
         << "  (re-run with --update-golden or PSEQ_UPDATE_GOLDEN=1 to "
            "regenerate)";
}

} // namespace pseq

#endif // PSEQ_TESTS_TESTUTIL_H
