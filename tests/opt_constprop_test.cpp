//===- tests/opt_constprop_test.cpp - Constant propagation (extension) ----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The extension constant-propagation/folding pass: register-level rewrites
// validated like every other pass, with care around undef and faults.
//
//===----------------------------------------------------------------------===//

#include "opt/ConstPropPass.h"
#include "opt/Pipeline.h"
#include "opt/Passes.h"
#include "opt/Validator.h"

#include "lang/Printer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

std::string runAndValidate(const char *Text, unsigned MinRewrites,
                           ValueDomain Domain = ValueDomain::ternary()) {
  auto P = prog(Text);
  PassResult R = runConstPropPass(*P);
  EXPECT_GE(R.Rewrites, MinRewrites) << Text;
  SeqConfig Cfg;
  Cfg.Domain = std::move(Domain);
  ValidationResult V = validateTransform(*P, *R.Prog, Cfg);
  EXPECT_TRUE(V.Ok) << Text << "\n" << V.Counterexample;
  return printProgram(*R.Prog);
}

} // namespace

TEST(ConstPropTest, PropagatesThroughArithmetic) {
  std::string Out = runAndValidate(
      "na x;\nthread { a := 1; b := a + 1; x@na := b; return b; }", 2,
      ValueDomain({0, 1, 2}));
  EXPECT_NE(Out.find("x@na := 2;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("return 2;"), std::string::npos) << Out;
}

TEST(ConstPropTest, RegistersStartAtZero) {
  std::string Out = runAndValidate("thread { return a + 1; }", 1);
  EXPECT_NE(Out.find("return 1;"), std::string::npos) << Out;
}

TEST(ConstPropTest, LoadsKillConstants) {
  auto P = prog("na x;\nthread { a := 1; a := x@na; return a + 1; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_EQ(Out.find("return 2;"), std::string::npos)
      << "the load clobbers a:\n"
      << Out;
}

TEST(ConstPropTest, FoldsDecidedBranch) {
  std::string Out = runAndValidate(
      "na x;\nthread { a := 1; if (a == 1) { x@na := 1; } "
      "else { x@na := 2; } return 0; }",
      1, ValueDomain({0, 1, 2}));
  EXPECT_NE(Out.find("x@na := 1;"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("x@na := 2;"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("if"), std::string::npos) << Out;
}

TEST(ConstPropTest, JoinLosesDisagreeingConstants) {
  auto P = prog("thread { c := choose; if (c == 1) { a := 1; } "
                "else { a := 2; } return a; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_NE(Out.find("return a;"), std::string::npos) << Out;
}

TEST(ConstPropTest, RemovesDeadLoop) {
  std::string Out = runAndValidate(
      "thread { a := 0; while (a == 1) { a := 1; } return a; }", 1);
  EXPECT_EQ(Out.find("while"), std::string::npos) << Out;
  EXPECT_NE(Out.find("return 0;"), std::string::npos) << Out;
}

TEST(ConstPropTest, KeepsLiveLoop) {
  auto P = prog("thread { c := choose; while (c == 1) { c := choose; } "
                "return 0; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_NE(Out.find("while"), std::string::npos) << Out;
}

TEST(ConstPropTest, NeverFoldsFaultingDivision) {
  auto P = prog("thread { a := 0; b := 1 / a; return b; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_NE(Out.find("/"), std::string::npos)
      << "folding would erase the UB:\n"
      << Out;
}

TEST(ConstPropTest, FoldsSafeDivision) {
  std::string Out = runAndValidate(
      "thread { a := 2; b := 6 / a; return b; }", 1,
      ValueDomain({0, 2, 3, 6}));
  EXPECT_NE(Out.find("return 3;"), std::string::npos) << Out;
}

TEST(ConstPropTest, FreezeOfKnownDefinedValueFolds) {
  std::string Out =
      runAndValidate("thread { a := 2; b := freeze(a); return b; }", 1,
                     ValueDomain({0, 2}));
  EXPECT_EQ(Out.find("freeze"), std::string::npos) << Out;
}

TEST(ConstPropTest, FreezeOfUndefKept) {
  auto P = prog("thread { b := freeze(undef); return b; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_NE(Out.find("freeze"), std::string::npos) << Out;
}

TEST(ConstPropTest, UndefConstantsPropagateButDoNotDecideBranches) {
  // a := undef is a known (undef) constant; branching on it stays UB and
  // must not be folded away.
  auto P = prog("thread { a := undef; if (a == 1) { skip; } return 0; }");
  PassResult R = runConstPropPass(*P);
  std::string Out = printProgram(*R.Prog);
  EXPECT_NE(Out.find("if"), std::string::npos) << Out;
}

TEST(ConstPropTest, EnablesSlfThroughStores) {
  // After const-prop the store writes a constant SLF can forward.
  auto P = prog("na x;\nthread { a := 1; x@na := a + 1; b := x@na; "
                "return b; }");
  PassResult CP = runConstPropPass(*P);
  PassResult SLF = runSlfPass(*CP.Prog);
  EXPECT_GE(SLF.Rewrites, 1u)
      << "const-prop should feed SLF:\n"
      << printProgram(*CP.Prog);
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain({0, 1, 2});
  ValidationResult V = validateTransform(*P, *SLF.Prog, Cfg);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(ConstPropTest, PipelineIntegration) {
  auto P = prog("na x;\nthread { a := 1; x@na := a + 1; b := x@na; "
                "if (b == b) { skip; } return b; }");
  PipelineOptions Opts;
  Opts.EnableConstProp = true;
  Opts.Cfg.Domain = ValueDomain({0, 1, 2});
  PipelineResult R = runPipeline(*P, Opts);
  EXPECT_TRUE(R.AllValidated);
  std::string Out = printProgram(*R.Prog);
  EXPECT_EQ(Out.find(":= x@na"), std::string::npos)
      << "const-prop + SLF should eliminate the load:\n" << Out;
}
