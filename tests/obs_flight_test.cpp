//===- tests/obs_flight_test.cpp - Flight-recorder layer tests ------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Unit tests for the flight-recorder half of src/obs: log2 histograms
// (bucketing, merge commutativity, percentiles), span lanes and the Chrome
// trace-event exporter (parsed back with obs::JsonValue and schema-checked:
// balanced B/E pairs, well-formed nesting per tid), the JSON reader itself,
// the heartbeat snapshotter, trace-sink flag/env precedence, and the final
// telemetry snapshot.
//
//===----------------------------------------------------------------------===//

#include "obs/Heartbeat.h"
#include "obs/Histogram.h"
#include "obs/JsonValue.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pseq;
using namespace pseq::obs;

namespace {

std::string tempPath(const char *Stem) {
  const char *Dir = std::getenv("TMPDIR");
  std::string Path = Dir && *Dir ? Dir : "/tmp";
  Path += "/pseq_obs_flight_";
  Path += Stem;
  Path += "_";
  Path += std::to_string(static_cast<unsigned long>(::getpid()));
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketLayout) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(1023), 10u);
  EXPECT_EQ(Histogram::bucketFor(1024), 11u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  // Bucket bounds partition: lo(b) == hi(b-1) + 1 for every b >= 1.
  for (unsigned B = 1; B < Histogram::NumBuckets; ++B)
    EXPECT_EQ(Histogram::bucketLo(B), Histogram::bucketHi(B - 1) + 1)
        << "bucket " << B;
  // Every value lands inside its own bucket's bounds.
  for (uint64_t V : {0ull, 1ull, 7ull, 255ull, 256ull, 1000000ull}) {
    unsigned B = Histogram::bucketFor(V);
    EXPECT_GE(V, Histogram::bucketLo(B));
    EXPECT_LE(V, Histogram::bucketHi(B));
  }
}

TEST(HistogramTest, RecordAndStats) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0.0);

  for (uint64_t V : {4ull, 8ull, 15ull, 16ull, 23ull, 42ull})
    H.record(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 108u);
  EXPECT_EQ(H.min(), 4u);
  EXPECT_EQ(H.max(), 42u);
  EXPECT_GT(H.percentile(99), H.percentile(1));
  EXPECT_LE(H.percentile(100), 64.0); // inside the top sample's bucket
}

TEST(HistogramTest, MergeIsCommutativeAndBitIdentical) {
  Histogram A, B, AB, BA;
  for (uint64_t V = 0; V < 200; V += 3)
    A.record(V * V);
  for (uint64_t V = 1; V < 100; V += 2)
    B.record(V);
  AB = A;
  AB.merge(B);
  BA = B;
  BA.merge(A);
  EXPECT_TRUE(AB == BA);
  EXPECT_EQ(AB.count(), A.count() + B.count());
  EXPECT_EQ(AB.sum(), A.sum() + B.sum());
  EXPECT_EQ(AB.min(), std::min(A.min(), B.min()));
  EXPECT_EQ(AB.max(), std::max(A.max(), B.max()));
  // Percentiles are pure functions of the (equal) buckets.
  EXPECT_EQ(AB.percentile(50), BA.percentile(50));
  EXPECT_EQ(AB.percentile(99), BA.percentile(99));
}

TEST(HistogramTest, PercentileRankWalk) {
  // 100 samples of 1 and 100 samples of 1000: the median sits in the
  // low bucket, p99 in the high one.
  Histogram H;
  for (int I = 0; I < 100; ++I)
    H.record(1);
  for (int I = 0; I < 100; ++I)
    H.record(1000);
  EXPECT_LE(H.percentile(25), 1.0);
  EXPECT_GE(H.percentile(99), 512.0);
  EXPECT_LE(H.percentile(99), 1024.0);
}

TEST(HistogramTest, TimingKeyConvention) {
  EXPECT_TRUE(isTimingHistKey("psna.step.us"));
  EXPECT_TRUE(isTimingHistKey("seq.task.us"));
  EXPECT_TRUE(isTimingHistKey("pool.idle.ns"));
  EXPECT_TRUE(isTimingHistKey("fuzz.pair.ms"));
  EXPECT_FALSE(isTimingHistKey("psna.explore.frontier"));
  EXPECT_FALSE(isTimingHistKey("seq.enum.behavior_set"));
  EXPECT_FALSE(isTimingHistKey("opt.pass.rewrites"));
  EXPECT_FALSE(isTimingHistKey("us")); // suffix needs the dot
}

TEST(HistogramTest, StatsHistogramRegistry) {
  Stats S;
  EXPECT_EQ(S.findHist("x"), nullptr);
  S.recordHist("x", 10);
  S.recordHist("x", 20);
  ASSERT_NE(S.findHist("x"), nullptr);
  EXPECT_EQ(S.findHist("x")->count(), 2u);

  Stats T;
  T.recordHist("x", 30);
  T.recordHist("y", 1);
  S.merge(T);
  EXPECT_EQ(S.findHist("x")->count(), 3u);
  ASSERT_NE(S.findHist("y"), nullptr);
  EXPECT_EQ(S.findHist("y")->count(), 1u);
}

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

TEST(JsonValueTest, ParsesScalarsAndContainers) {
  JsonValue V;
  ASSERT_TRUE(JsonValue::parse("null", V));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(JsonValue::parse("true", V));
  EXPECT_TRUE(V.asBool());
  ASSERT_TRUE(JsonValue::parse("-12.5e2", V));
  EXPECT_EQ(V.asNumber(), -1250.0);
  ASSERT_TRUE(JsonValue::parse("\"a\\n\\u0041\"", V));
  EXPECT_EQ(V.asString(), "a\nA");
  ASSERT_TRUE(JsonValue::parse("[1, [2, 3], {}]", V));
  ASSERT_EQ(V.array().size(), 3u);
  EXPECT_EQ(V.array()[1].array()[1].asNumber(), 3.0);
  ASSERT_TRUE(JsonValue::parse("{\"b\": 1, \"a\": {\"c\": true}}", V));
  ASSERT_NE(V.field("a"), nullptr);
  EXPECT_TRUE(V.field("a")->field("c")->asBool());
  EXPECT_EQ(V.field("missing"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedInput) {
  JsonValue V;
  std::string Err;
  EXPECT_FALSE(JsonValue::parse("", V, &Err));
  EXPECT_FALSE(JsonValue::parse("{", V, &Err));
  EXPECT_FALSE(JsonValue::parse("[1,]", V, &Err));
  EXPECT_FALSE(JsonValue::parse("{'a': 1}", V, &Err));
  EXPECT_FALSE(JsonValue::parse("1 2", V, &Err)); // trailing junk
  EXPECT_FALSE(JsonValue::parse("nul", V, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Spans and the Chrome trace exporter
//===----------------------------------------------------------------------===//

TEST(SpanTest, NullRecorderIsANoop) {
  ScopedSpan Outer(nullptr, "outer");
  ScopedSpan Inner(nullptr, "inner");
  SUCCEED();
}

TEST(SpanTest, RecordsNestedSpans) {
  SpanRecorder R;
  {
    ScopedSpan Outer(&R, "outer");
    { ScopedSpan Inner(&R, "inner"); }
    { ScopedSpan Inner2(&R, "inner"); }
  }
  EXPECT_EQ(R.totalSpans(), 3u);
  EXPECT_EQ(R.droppedSpans(), 0u);
  ASSERT_EQ(R.lanes(), 1u);
  const std::vector<SpanRecord> &L = R.lane(0);
  ASSERT_EQ(L.size(), 3u);
  // Lanes record at end time: inner spans first, outer last.
  EXPECT_STREQ(L[0].Name, "inner");
  EXPECT_EQ(L[0].Depth, 1u);
  EXPECT_STREQ(L[2].Name, "outer");
  EXPECT_EQ(L[2].Depth, 0u);
  EXPECT_LE(L[2].BeginNs, L[0].BeginNs);
  EXPECT_GE(L[2].EndNs, L[1].EndNs);
}

TEST(SpanTest, LanesArePerThread) {
  SpanRecorder R;
  constexpr unsigned NumThreads = 4;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&R] {
      for (int I = 0; I < 10; ++I)
        ScopedSpan S(&R, "work");
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(R.totalSpans(), NumThreads * 10u);
  EXPECT_EQ(R.lanes(), NumThreads);
  for (unsigned L = 0; L < R.lanes(); ++L)
    EXPECT_EQ(R.lane(L).size(), 10u);
}

/// Parses a rendered Chrome trace and schema-checks it: required members,
/// balanced B/E pairs per tid, LIFO (well-nested) begin/end order.
void checkChromeTraceSchema(const std::string &Json, unsigned ExpectSpans) {
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Json, V, &Err)) << Err;
  const JsonValue *Events = V.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  std::map<int, std::vector<std::string>> OpenByTid;
  unsigned Durations = 0;
  for (const JsonValue &E : Events->array()) {
    ASSERT_TRUE(E.isObject());
    const JsonValue *Ph = E.field("ph");
    ASSERT_NE(Ph, nullptr);
    const std::string &Kind = Ph->asString();
    if (Kind == "M")
      continue; // process/thread metadata
    ASSERT_TRUE(Kind == "B" || Kind == "E") << Kind;
    ASSERT_NE(E.field("ts"), nullptr);
    ASSERT_TRUE(E.field("ts")->isNumber());
    ASSERT_NE(E.field("pid"), nullptr);
    ASSERT_NE(E.field("tid"), nullptr);
    int Tid = static_cast<int>(E.field("tid")->asNumber());
    if (Kind == "B") {
      ASSERT_NE(E.field("name"), nullptr);
      OpenByTid[Tid].push_back(E.field("name")->asString());
    } else {
      ASSERT_FALSE(OpenByTid[Tid].empty()) << "E without B on tid " << Tid;
      OpenByTid[Tid].pop_back();
      ++Durations;
    }
  }
  for (const auto &[Tid, Open] : OpenByTid)
    EXPECT_TRUE(Open.empty()) << "unbalanced spans on tid " << Tid;
  EXPECT_EQ(Durations, ExpectSpans);
}

TEST(TraceExportTest, ExportsBalancedWellNestedEvents) {
  SpanRecorder R;
  {
    ScopedSpan A(&R, "level");
    { ScopedSpan B(&R, "expand"); }
    {
      ScopedSpan C(&R, "expand");
      ScopedSpan D(&R, "step");
    }
  }
  std::thread Worker([&R] {
    ScopedSpan W(&R, "task");
    ScopedSpan I(&R, "probe");
  });
  Worker.join();
  std::string Json = renderChromeTrace(R, "obs_flight_test");
  checkChromeTraceSchema(Json, 6);
  // Timestamps within a tid's B events must be non-decreasing.
  JsonValue V;
  ASSERT_TRUE(JsonValue::parse(Json, V));
  std::map<int, double> LastTs;
  for (const JsonValue &E : V.field("traceEvents")->array()) {
    if (E.field("ph")->asString() != "B")
      continue;
    int Tid = static_cast<int>(E.field("tid")->asNumber());
    double Ts = E.field("ts")->asNumber();
    auto It = LastTs.find(Tid);
    if (It != LastTs.end()) {
      EXPECT_GE(Ts, It->second);
    }
    LastTs[Tid] = Ts;
  }
}

TEST(TraceExportTest, WritesLoadableFile) {
  SpanRecorder R;
  { ScopedSpan A(&R, "run"); }
  std::string Path = tempPath("trace");
  ASSERT_TRUE(writeChromeTrace(R, Path, "obs_flight_test"));
  checkChromeTraceSchema(slurp(Path), 1);
  std::remove(Path.c_str());
  EXPECT_FALSE(writeChromeTrace(R, "/nonexistent-dir/x/trace.json", "t"));
}

//===----------------------------------------------------------------------===//
// Heartbeat
//===----------------------------------------------------------------------===//

TEST(HeartbeatTest, EmitsFinalTickWithProbeValues) {
  Heartbeat Beat;
  Beat.addProbe("answer", [] { return 42.0; });
  Beat.addProbe("zero", [] { return 0.0; });
  std::string Path = tempPath("heartbeat");
  ASSERT_TRUE(Beat.start(Path, 10'000)); // interval >> test: final tick only
  Beat.stop();
  Beat.stop(); // idempotent
  EXPECT_GE(Beat.beats(), 1u);

  std::istringstream In(slurp(Path));
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    JsonValue V;
    std::string Err;
    ASSERT_TRUE(JsonValue::parse(Line, V, &Err)) << Err;
    EXPECT_EQ(V.field("ev")->asString(), "heartbeat");
    EXPECT_EQ(V.field("answer")->asNumber(), 42.0);
    EXPECT_EQ(V.field("zero")->asNumber(), 0.0);
  }
  EXPECT_EQ(Lines, Beat.beats());
  std::remove(Path.c_str());
}

TEST(HeartbeatTest, StartFailsOnBadPath) {
  Heartbeat Beat;
  EXPECT_FALSE(Beat.start("/nonexistent-dir/x/hb.jsonl", 100));
  EXPECT_FALSE(Beat.running());
}

//===----------------------------------------------------------------------===//
// Trace-sink precedence and the final snapshot
//===----------------------------------------------------------------------===//

TEST(TraceSinkTest, FlagWinsOverEnv) {
  std::string FlagPath = tempPath("flag");
  std::string EnvPath = tempPath("env");
  ::setenv("PSEQ_TRACE", EnvPath.c_str(), 1);
  {
    std::unique_ptr<TraceSink> Sink = traceSinkFromFlagOrEnv(FlagPath);
    ASSERT_NE(Sink, nullptr);
    ASSERT_TRUE(Sink->enabled());
    Sink->event("test", {{"k", TraceValue(uint64_t(1))}});
  }
  ::unsetenv("PSEQ_TRACE");
  EXPECT_NE(slurp(FlagPath).find("\"ev\":\"test\""), std::string::npos);
  EXPECT_TRUE(slurp(EnvPath).empty()); // env path was never opened
  std::remove(FlagPath.c_str());
  std::remove(EnvPath.c_str());
}

TEST(TraceSinkTest, EmptyFlagFallsBackToEnv) {
  std::string EnvPath = tempPath("envonly");
  ::setenv("PSEQ_TRACE", EnvPath.c_str(), 1);
  {
    std::unique_ptr<TraceSink> Sink = traceSinkFromFlagOrEnv("");
    ASSERT_NE(Sink, nullptr);
    EXPECT_TRUE(Sink->enabled());
  }
  ::unsetenv("PSEQ_TRACE");
  EXPECT_EQ(traceSinkFromFlagOrEnv(""), nullptr); // both unset: off
  std::remove(EnvPath.c_str());
}

TEST(TelemetryTest, FinalSnapshotEmitsRunFinal) {
  std::string Path = tempPath("final");
  SpanRecorder Spans;
  { ScopedSpan S(&Spans, "x"); }
  {
    JsonlTraceSink Sink(Path);
    ASSERT_TRUE(Sink.ok());
    Telemetry Telem;
    Telem.Sink = &Sink;
    Telem.Spans = &Spans;
    Telem.Counters.add("demo.counter", 7);
    Telem.Counters.setGauge("demo.gauge", 1.5);
    Telem.finalSnapshot("complete");
  }
  std::istringstream In(slurp(Path));
  std::string Line, Last;
  while (std::getline(In, Line))
    Last = Line;
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Last, V, &Err)) << Err;
  EXPECT_EQ(V.field("ev")->asString(), "run.final");
  EXPECT_EQ(V.field("reason")->asString(), "complete");
  EXPECT_EQ(V.field("demo.counter")->asNumber(), 7.0);
  EXPECT_EQ(V.field("demo.gauge")->asNumber(), 1.5);
  EXPECT_EQ(V.field("spans.recorded")->asNumber(), 1.0);
  std::remove(Path.c_str());
}

TEST(TelemetryTest, FinalSnapshotWithoutSinkIsANoop) {
  Telemetry Telem;
  Telem.finalSnapshot("complete"); // Sink == nullptr: must not crash
  SUCCEED();
}

} // namespace
