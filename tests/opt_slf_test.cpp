//===- tests/opt_slf_test.cpp - SLF analysis and pass (E6) ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Reproduces Fig. 4 exactly — the abstract tokens at each program point
// and the optimized output — and checks the Fig. 3 transfer function on
// targeted programs, with every rewrite translation-validated.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"
#include "opt/SlfAnalysis.h"

#include "lang/Printer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

/// Finds the Nth non-atomic load statement of thread 0 (depth-first).
const Stmt *nthNaLoad(const Stmt *S, unsigned &N) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case Stmt::Kind::Load:
    if (S->readMode() == ReadMode::NA && N-- == 0)
      return S;
    return nullptr;
  case Stmt::Kind::Seq:
    for (const Stmt *Kid : S->seq())
      if (const Stmt *Found = nthNaLoad(Kid, N))
        return Found;
    return nullptr;
  case Stmt::Kind::If:
    if (const Stmt *Found = nthNaLoad(S->thenStmt(), N))
      return Found;
    return nthNaLoad(S->elseStmt(), N);
  case Stmt::Kind::While:
    return nthNaLoad(S->body(), N);
  default:
    return nullptr;
  }
}

const Stmt *naLoad(const Program &P, unsigned Idx) {
  unsigned N = Idx;
  return nthNaLoad(P.thread(0).Body, N);
}

SeqConfig valCfg(ValueDomain D) {
  SeqConfig C;
  C.Domain = std::move(D);
  return C;
}

} // namespace

//===----------------------------------------------------------------------===
// Figure 4, end to end.
//===----------------------------------------------------------------------===

TEST(SlfTest, Figure4TokensAndRewrite) {
  auto P = prog("na x; atomic y;\n"
                "thread {\n"
                "  x@na := 42;\n"
                "  l := y@acq;\n"
                "  if (l == 0) {\n"
                "    a := x@na;\n"
                "    y@rel := 1;\n"
                "  } else { skip; }\n"
                "  b := x@na;\n"
                "  return b;\n"
                "}");

  SlfAnalysisResult A = analyzeSlf(*P, 0);

  // First load (inside the branch): x ↦ ◦(42) — the acquire read does not
  // disturb a ◦ token (no release since the write).
  const Stmt *LoadA = naLoad(*P, 0);
  ASSERT_NE(LoadA, nullptr);
  ASSERT_TRUE(A.AtLoad.count(LoadA));
  EXPECT_EQ(A.AtLoad.at(LoadA).str(), "circ(42)");

  // Second load (after the join): x ↦ •(42) — the release moved ◦ to •,
  // and the join of •(42) (then) with ◦(42) (else) is •(42).
  const Stmt *LoadB = naLoad(*P, 1);
  ASSERT_NE(LoadB, nullptr);
  ASSERT_TRUE(A.AtLoad.count(LoadB));
  EXPECT_EQ(A.AtLoad.at(LoadB).str(), "bullet(42)");

  // The pass rewrites both loads to `:= 42`.
  PassResult R = runSlfPass(*P);
  EXPECT_EQ(R.Rewrites, 2u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find(":= x@na"), std::string::npos)
      << "no load of x must remain:\n"
      << Printed.substr(Printed.find("thread"));
  EXPECT_NE(Printed.find("a := 42;"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("b := 42;"), std::string::npos) << Printed;

  // Translation validation (the paper's Coq certificate stand-in).
  ValidationResult V =
      validateTransform(*P, *R.Prog, valCfg(ValueDomain({0, 1, 42})));
  EXPECT_TRUE(V.Ok) << V.Counterexample;
  EXPECT_FALSE(V.Bounded);
}

//===----------------------------------------------------------------------===
// Fig. 3 transfer function specifics.
//===----------------------------------------------------------------------===

TEST(SlfTest, ForwardsAcrossEveryNonPairAtomic) {
  // Example 2.11's four α shapes all keep the token forwardable.
  for (const char *Alpha :
       {"a := y@rlx;", "y@rlx := 1;", "a := y@acq;", "y@rel := 1;"}) {
    auto P = prog(std::string("na x; atomic y;\nthread { x@na := 1; ") +
                  Alpha + " b := x@na; return b; }");
    PassResult R = runSlfPass(*P);
    EXPECT_EQ(R.Rewrites, 1u) << "α = " << Alpha;
    ValidationResult V = validateTransform(*P, *R.Prog);
    EXPECT_TRUE(V.Ok) << "α = " << Alpha << ": " << V.Counterexample;
  }
}

TEST(SlfTest, BlocksAcrossReleaseAcquirePair) {
  // Example 2.12: ◦ → • (release) → ⊤ (acquire): no forwarding.
  auto P = prog("na x; atomic y, z;\n"
                "thread { x@na := 1; y@rel := 1; a := z@acq; b := x@na; "
                "return b; }");
  PassResult R = runSlfPass(*P);
  EXPECT_EQ(R.Rewrites, 0u);
}

TEST(SlfTest, InterveningWriteReplacesToken) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; x@na := 2; b := x@na; return b; }");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  const Stmt *Load = naLoad(*P, 0);
  ASSERT_TRUE(A.AtLoad.count(Load));
  EXPECT_EQ(A.AtLoad.at(Load).str(), "circ(2)");
}

TEST(SlfTest, RegisterValueForwardingAndInvalidation) {
  // Stores of registers forward until the register is clobbered.
  auto P = prog("na x;\n"
                "thread { r := 5; x@na := r; a := x@na; r := 9; "
                "b := x@na; return a + b; }");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  EXPECT_EQ(A.AtLoad.at(naLoad(*P, 0)).kind(), SlfToken::Kind::Circ);
  EXPECT_TRUE(A.AtLoad.at(naLoad(*P, 1)).isTop())
      << "reassigning r must invalidate the ◦(r) token";

  PassResult R = runSlfPass(*P);
  EXPECT_EQ(R.Rewrites, 1u);
  ValidationResult V = validateTransform(
      *P, *R.Prog, valCfg(ValueDomain({0, 5, 9, 14})));
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(SlfTest, NonForwardableStoreYieldsTop) {
  auto P = prog("na x;\n"
                "thread { r := 1; x@na := r + 1; b := x@na; return b; }");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  EXPECT_TRUE(A.AtLoad.at(naLoad(*P, 0)).isTop());
  EXPECT_EQ(runSlfPass(*P).Rewrites, 0u);
}

TEST(SlfTest, BranchJoinWithDifferentValuesIsTop) {
  auto P = prog("na x;\n"
                "thread { c := choose; if (c == 1) { x@na := 1; } "
                "else { x@na := 2; } b := x@na; return b; }");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  EXPECT_TRUE(A.AtLoad.at(naLoad(*P, 0)).isTop())
      << "◦(1) ⊔ ◦(2) = ⊤";
}

TEST(SlfTest, LoopFixpointConvergesWithinThreeIterations) {
  auto P = prog("na x;\n"
                "thread {\n"
                "  x@na := 1;\n"
                "  c := choose;\n"
                "  while (c != 0) {\n"
                "    a := x@na;\n"
                "    x@na := 2;\n"
                "    c := choose;\n"
                "  }\n"
                "  b := x@na;\n"
                "  return b;\n"
                "}");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  EXPECT_LE(A.MaxLoopIterations, 3u) << "§4's termination claim";
  // In-loop load joins ◦(1) (entry) with ◦(2) (back edge): ⊤.
  EXPECT_TRUE(A.AtLoad.at(naLoad(*P, 0)).isTop());
}

TEST(SlfTest, RmwModesActLikeTheirParts) {
  // A release-mode RMW moves ◦ to •; an acquire-mode RMW then tops it.
  auto P = prog("na x; atomic z;\n"
                "thread { x@na := 1; r := fadd(z, 1) @ rlx rel; "
                "s := fadd(z, 1) @ acq rlx; b := x@na; return b; }");
  SlfAnalysisResult A = analyzeSlf(*P, 0);
  EXPECT_TRUE(A.AtLoad.at(naLoad(*P, 0)).isTop());

  auto P2 = prog("na x; atomic z;\n"
                 "thread { x@na := 1; r := fadd(z, 1) @ rlx rel; "
                 "b := x@na; return b; }");
  SlfAnalysisResult A2 = analyzeSlf(*P2, 0);
  EXPECT_EQ(A2.AtLoad.at(naLoad(*P2, 0)).str(), "bullet(1)");
}

TEST(SlfTest, FenceLadderTreatsCombinedModesAsBothHalves) {
  // The Fig 3 fence transfer is a mode *ladder* (`!= ACQ` applies the
  // release half, `!= REL` the acquire half), so acqrel and sc must act
  // as a whole release-acquire pair: ◦ → • → ⊤, no forwarding. A lone
  // acq fence completes no pair (◦ survives); a lone rel fence demotes
  // to • (still forwardable, like Example 3.5's release write).
  for (const char *Fence : {"fence @ acq;", "fence @ rel;"}) {
    auto P = prog(std::string("na x;\nthread { x@na := 1; ") + Fence +
                  " b := x@na; return b; }");
    PassResult R = runSlfPass(*P);
    EXPECT_EQ(R.Rewrites, 1u) << "fence = " << Fence;
    ValidationResult V = validateTransform(*P, *R.Prog, SeqConfig(),
                                           /*UseAdvanced=*/true);
    EXPECT_TRUE(V.Ok) << "fence = " << Fence << ": " << V.Counterexample;
  }
  for (const char *Fence : {"fence @ acqrel;", "fence @ sc;"}) {
    auto P = prog(std::string("na x;\nthread { x@na := 1; ") + Fence +
                  " b := x@na; return b; }");
    EXPECT_EQ(runSlfPass(*P).Rewrites, 0u) << "fence = " << Fence;

    // The rewrite the ladder forbids really is invalid: forwarding across
    // the fence's built-in release-acquire pair loses the value the
    // acquire half may observe.
    auto Bad = prog(std::string("na x;\nthread { x@na := 1; ") + Fence +
                    " b := 1; return b; }");
    ValidationResult V = validateTransform(*P, *Bad, SeqConfig(),
                                           /*UseAdvanced=*/true);
    EXPECT_FALSE(V.Ok) << "fence = " << Fence
                       << ": forwarding across a combined fence must be "
                          "rejected (atlas fence ladder)";
  }
}
