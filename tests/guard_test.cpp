//===- tests/guard_test.cpp - Resource governance & isolation -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Covers the pseq-guard layer end to end:
//  * CancellationToken / ResourceGuard unit behavior (sticky first cause,
//    deterministic poll-count trips, expired deadlines, memory charges);
//  * cooperative drain in exec::ThreadPool / parallelFor;
//  * honest bounded verdicts from every engine under a tripped guard —
//    SEQ refinement, PS^na exploration, Fig. 6 simulation, the translation
//    validator, the optimizer pipeline, and the adequacy harness — using
//    tripAfterPolls for determinism (never wall clock);
//  * first-failure-min: a definite failure found before cancellation
//    survives it, at the lowest computed index;
//  * fork isolation outcome classification (ok / fail / crash / deadline /
//    CPU / OOM) and the fuzz campaign's fault-injection self-tests;
//  * delta-debugging shrink of a seeded failing validator pair.
//
//===----------------------------------------------------------------------===//

#include "adequacy/FuzzCampaign.h"
#include "adequacy/Harness.h"
#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "guard/Isolate.h"
#include "guard/Shrink.h"
#include "guard/Signals.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "opt/Validator.h"
#include "psna/Explorer.h"
#include "seq/AdvancedRefinement.h"
#include "seq/InitSweep.h"
#include "seq/SimpleRefinement.h"
#include "seq/Simulation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pseq;

// TSan instruments every thread; forking a process that ever spawned pool
// workers makes it abort unless configured otherwise. The fork-based tests
// are exercised by the plain and ASan jobs; under TSan they are skipped.
#if defined(__SANITIZE_THREAD__)
#define PSEQ_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSEQ_TEST_TSAN 1
#endif
#endif
#ifndef PSEQ_TEST_TSAN
#define PSEQ_TEST_TSAN 0
#endif

namespace {

std::unique_ptr<Program> parse(const char *Src) { return parseOrDie(Src); }

// A straight-line program with a shared location: several initial states
// and enough enumeration nodes that a guard can trip mid-run.
const char *kSrcStraight = "na x;\n"
                           "thread {\n"
                           "  a := x@na;\n"
                           "  x@na := a + 1;\n"
                           "  b := x@na;\n"
                           "  return b;\n"
                           "}\n";

// A genuinely failing pair: the target returns a value the source cannot.
const char *kFailSrc = "thread { return 0; }\n";
const char *kFailTgt = "thread { return 1; }\n";

} // namespace

//===----------------------------------------------------------------------===//
// CancellationToken / ResourceGuard units
//===----------------------------------------------------------------------===//

TEST(CancellationTokenTest, CancelIsSticky) {
  guard::CancellationToken T;
  EXPECT_FALSE(T.cancelled());
  EXPECT_FALSE(T.poll());
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.poll());
  EXPECT_TRUE(T.poll()); // stays tripped
}

TEST(CancellationTokenTest, TripAfterPollsIsExact) {
  guard::CancellationToken T;
  T.tripAfterPolls(3);
  EXPECT_FALSE(T.poll());
  EXPECT_FALSE(T.poll());
  EXPECT_FALSE(T.poll());
  EXPECT_TRUE(T.poll()); // the 4th poll trips
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.poll());
}

TEST(ResourceGuardTest, TokenCancellationTripsCheckpoint) {
  guard::CancellationToken T;
  guard::ResourceGuard G;
  G.setToken(&T);
  EXPECT_EQ(G.checkpoint(), TruncationCause::None);
  EXPECT_FALSE(G.stopped());
  T.cancel();
  EXPECT_EQ(G.checkpoint(), TruncationCause::Cancelled);
  EXPECT_TRUE(G.stopped());
  EXPECT_EQ(G.cause(), TruncationCause::Cancelled);
  EXPECT_TRUE(G.stopFlag().load());
}

TEST(ResourceGuardTest, ExpiredDeadlineTripsOnFirstCheckpoint) {
  // The per-guard clock stride starts at 0, so the very first checkpoint
  // consults the clock: an already-expired deadline trips deterministically.
  guard::ResourceGuard G;
  G.setDeadlineInMs(0);
  EXPECT_EQ(G.checkpoint(), TruncationCause::Deadline);
  EXPECT_EQ(G.cause(), TruncationCause::Deadline);
}

TEST(ResourceGuardTest, ChargeTripsMemBudget) {
  guard::ResourceGuard G;
  G.setMemLimitBytes(1024);
  G.charge(512);
  EXPECT_FALSE(G.stopped());
  EXPECT_EQ(G.memUsedBytes(), 512u);
  G.charge(1024); // 1536 > 1024
  EXPECT_TRUE(G.stopped());
  EXPECT_EQ(G.cause(), TruncationCause::MemBudget);
  EXPECT_EQ(G.checkpoint(), TruncationCause::MemBudget);
}

TEST(ResourceGuardTest, FirstCauseWins) {
  guard::CancellationToken T;
  guard::ResourceGuard G;
  G.setToken(&T);
  G.setMemLimitBytes(1);
  G.charge(100); // MemBudget trips first
  T.cancel();    // later cancellation must not rewrite the cause
  EXPECT_EQ(G.checkpoint(), TruncationCause::MemBudget);
  EXPECT_EQ(G.cause(), TruncationCause::MemBudget);
}

TEST(ResourceGuardTest, ResetClearsTripState) {
  guard::ResourceGuard G;
  G.setMemLimitBytes(10);
  G.charge(100);
  ASSERT_TRUE(G.stopped());
  G.reset();
  EXPECT_FALSE(G.stopped());
  EXPECT_EQ(G.cause(), TruncationCause::None);
  EXPECT_EQ(G.memUsedBytes(), 0u);
  EXPECT_FALSE(G.stopFlag().load());
  EXPECT_EQ(G.checkpoint(), TruncationCause::None);
}

TEST(TruncationTest, NamesForGuardCauses) {
  EXPECT_STREQ(truncationCauseName(TruncationCause::Deadline), "deadline");
  EXPECT_STREQ(truncationCauseName(TruncationCause::MemBudget), "mem-budget");
  EXPECT_STREQ(truncationCauseName(TruncationCause::Cancelled), "cancelled");
}

//===----------------------------------------------------------------------===//
// Fold plumbing: every cause survives the InitSweep merge
//===----------------------------------------------------------------------===//

TEST(InitSweepFoldTest, EveryCauseSurvivesTheMerge) {
  const TruncationCause Causes[] = {
      TruncationCause::StepBudget, TruncationCause::BehaviorCap,
      TruncationCause::StateBudget, TruncationCause::CertBudget,
      TruncationCause::Deadline,    TruncationCause::MemBudget,
      TruncationCause::Cancelled};
  for (TruncationCause C : Causes) {
    RefinementResult Result;
    detail::InitRecord Clean;
    Clean.SrcBehaviors = 1;
    EXPECT_TRUE(detail::foldInitRecord(Result, Clean));
    detail::InitRecord Bounded;
    Bounded.Bounded = true;
    Bounded.Cause = C;
    EXPECT_TRUE(detail::foldInitRecord(Result, Bounded));
    EXPECT_TRUE(Result.Bounded);
    EXPECT_EQ(Result.Cause, C) << truncationCauseName(C);
    EXPECT_TRUE(Result.Holds); // bounded, but not failed
  }
}

TEST(InitSweepFoldTest, FirstCauseWinsAcrossRecords) {
  RefinementResult Result;
  detail::InitRecord A;
  A.Bounded = true;
  A.Cause = TruncationCause::Deadline;
  detail::InitRecord B;
  B.Bounded = true;
  B.Cause = TruncationCause::Cancelled;
  EXPECT_TRUE(detail::foldInitRecord(Result, A));
  EXPECT_TRUE(detail::foldInitRecord(Result, B));
  EXPECT_EQ(Result.Cause, TruncationCause::Deadline);
}

TEST(InitSweepFoldTest, DefiniteFailureStopsTheFold) {
  RefinementResult Result;
  detail::InitRecord Bounded;
  Bounded.Bounded = true;
  Bounded.Cause = TruncationCause::Cancelled;
  detail::InitRecord Failed;
  Failed.Failed = true;
  Failed.Counterexample = "cex";
  EXPECT_TRUE(detail::foldInitRecord(Result, Bounded));
  EXPECT_FALSE(detail::foldInitRecord(Result, Failed));
  EXPECT_FALSE(Result.Holds);
  EXPECT_EQ(Result.Counterexample, "cex");
  EXPECT_TRUE(Result.Bounded); // the skipped prefix stays visible
}

//===----------------------------------------------------------------------===//
// ThreadPool cooperative drain
//===----------------------------------------------------------------------===//

TEST(ThreadPoolDrainTest, PreCancelledBatchNeverRunsBodies) {
  std::atomic<bool> Cancel{true};
  std::atomic<unsigned> Ran{0};
  exec::ThreadPool::global().run(
      4, [&](unsigned) { Ran.fetch_add(1); }, &Cancel);
  EXPECT_EQ(Ran.load(), 0u); // drained: claimed and completed, not run
}

TEST(ThreadPoolDrainTest, PreCancelledParallelForSkipsAllItems) {
  std::atomic<bool> Cancel{true};
  std::atomic<unsigned> Ran{0};
  exec::parallelFor(
      4, 64, [&](size_t, unsigned) { Ran.fetch_add(1); }, &Cancel);
  EXPECT_EQ(Ran.load(), 0u);
}

TEST(ThreadPoolDrainTest, MidBatchCancellationStopsQueuedItems) {
  // Item 0 cancels; items claimed afterwards are drained. With dynamic
  // claiming the exact count varies, but the batch always joins and at
  // least the canceller ran.
  std::atomic<bool> Cancel{false};
  std::atomic<unsigned> Ran{0};
  exec::parallelFor(
      2, 1024,
      [&](size_t Item, unsigned) {
        Ran.fetch_add(1);
        if (Item == 0)
          Cancel.store(true);
      },
      &Cancel);
  EXPECT_GE(Ran.load(), 1u);
  EXPECT_LT(Ran.load(), 1024u);
}

//===----------------------------------------------------------------------===//
// InitSweep under cancellation: lowest computed failure wins
//===----------------------------------------------------------------------===//

TEST(InitSweepTest, FailureFoundBeforeCancellationSurvivesIt) {
  auto P = parse(kSrcStraight);
  guard::CancellationToken Tok;
  guard::ResourceGuard G;
  G.setToken(&Tok);
  SeqConfig Cfg;
  Cfg.NumThreads = 4;
  Cfg.Guard = &G;
  SeqMachine M(*P, 0, Cfg);

  constexpr size_t NumInits = 64;
  constexpr size_t FirstFail = 8;
  RefinementResult Result;
  detail::sweepInits(
      M, M, NumInits, Result,
      [&](const SeqMachine &, const SeqMachine &, size_t Idx,
          detail::InitRecord &R) {
        if (G.checkpoint() != TruncationCause::None) {
          R.Bounded = true;
          R.Cause = G.cause();
          return;
        }
        R.SrcBehaviors = 1;
        if (Idx >= FirstFail) {
          R.Failed = true;
          R.Counterexample = "init " + std::to_string(Idx);
          Tok.cancel(); // failure first, cancellation second
        }
      });

  // The first-failure bound guarantees no index at or below the smallest
  // computed failure is skipped, so the fold reports exactly index 8 even
  // though the guard tripped while later indices were in flight.
  EXPECT_FALSE(Result.Holds);
  EXPECT_EQ(Result.Counterexample, "init " + std::to_string(FirstFail));
}

//===----------------------------------------------------------------------===//
// Engine governance: deterministic bounded verdicts via tripAfterPolls
//===----------------------------------------------------------------------===//

namespace {

SeqConfig governedSeq(guard::ResourceGuard *G, unsigned Threads = 1) {
  SeqConfig Cfg;
  Cfg.NumThreads = Threads;
  Cfg.Guard = G;
  return Cfg;
}

} // namespace

TEST(EngineGovernanceTest, SimpleRefinementCancelsHonestly) {
  auto P = parse(kSrcStraight);
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0); // first checkpoint trips
  guard::ResourceGuard G;
  G.setToken(&Tok);
  RefinementResult R = checkSimpleRefinement(*P, *P, governedSeq(&G));
  EXPECT_TRUE(R.Holds) << "a skipped check must not report failure";
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.Cause, TruncationCause::Cancelled);
}

TEST(EngineGovernanceTest, AdvancedRefinementCancelsHonestly) {
  auto P = parse(kSrcStraight);
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  RefinementResult R = checkAdvancedRefinement(*P, *P, governedSeq(&G));
  EXPECT_TRUE(R.Holds);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.Cause, TruncationCause::Cancelled);
}

TEST(EngineGovernanceTest, MidRunCancellationIsDeterministicSingleThreaded) {
  auto P = parse(kSrcStraight);
  auto Run = [&] {
    guard::CancellationToken Tok;
    Tok.tripAfterPolls(10);
    guard::ResourceGuard G;
    G.setToken(&Tok);
    return checkSimpleRefinement(*P, *P, governedSeq(&G, /*Threads=*/1));
  };
  RefinementResult A = Run();
  RefinementResult B = Run();
  EXPECT_TRUE(A.Bounded);
  EXPECT_EQ(A.Cause, TruncationCause::Cancelled);
  // Same poll budget, one thread: the Nth checkpoint is the same node.
  EXPECT_EQ(A.Holds, B.Holds);
  EXPECT_EQ(A.SrcBehaviors, B.SrcBehaviors);
  EXPECT_EQ(A.TgtBehaviors, B.TgtBehaviors);
  EXPECT_EQ(A.Counterexample, B.Counterexample);
}

TEST(EngineGovernanceTest, SeqDeadlineReportsDeadlineCause) {
  auto P = parse(kSrcStraight);
  guard::ResourceGuard G;
  G.setDeadlineInMs(0); // expired before the first checkpoint
  RefinementResult R = checkAdvancedRefinement(*P, *P, governedSeq(&G));
  EXPECT_TRUE(R.Holds);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.Cause, TruncationCause::Deadline);
}

TEST(EngineGovernanceTest, SeqMemBudgetReportsMemCause) {
  auto P = parse(kSrcStraight);
  guard::ResourceGuard G;
  G.setMemLimitBytes(1); // first retained behavior trips
  RefinementResult R = checkSimpleRefinement(*P, *P, governedSeq(&G));
  EXPECT_TRUE(R.Holds);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.Cause, TruncationCause::MemBudget);
}

TEST(EngineGovernanceTest, MultiThreadedCancelledRunStillBounded) {
  // Content may vary across worker counts under cancellation; the verdict
  // shape (Bounded + Cancelled, no spurious failure) may not.
  auto P = parse(kSrcStraight);
  guard::CancellationToken Tok;
  Tok.cancel();
  guard::ResourceGuard G;
  G.setToken(&Tok);
  RefinementResult R =
      checkSimpleRefinement(*P, *P, governedSeq(&G, /*Threads=*/4));
  EXPECT_TRUE(R.Holds);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.Cause, TruncationCause::Cancelled);
}

TEST(EngineGovernanceTest, FailureBeforeTripStaysDefinite) {
  auto Src = parse(kFailSrc);
  auto Tgt = parse(kFailTgt);
  // Ungoverned: the pair genuinely fails.
  RefinementResult Plain = checkSimpleRefinement(*Src, *Tgt, SeqConfig());
  ASSERT_FALSE(Plain.Holds);
  // Governed with a poll budget large enough to find the failure first:
  // the verdict stays a definite failure, not a bounded unknown.
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(100000);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  RefinementResult R = checkSimpleRefinement(*Src, *Tgt, governedSeq(&G));
  EXPECT_FALSE(R.Holds);
  EXPECT_EQ(R.Counterexample, Plain.Counterexample);
}

TEST(EngineGovernanceTest, PsnaExplorationCancelsHonestly) {
  auto P = parse("atomic z;\n"
                 "thread { z@rlx := 1; return 0; }\n"
                 "thread { a := z@rlx; return a; }\n");
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  PsConfig Cfg;
  Cfg.NumThreads = 1;
  Cfg.Guard = &G;
  PsBehaviorSet B = explorePsna(*P, Cfg);
  EXPECT_TRUE(B.truncated());
  EXPECT_EQ(B.Cause, TruncationCause::Cancelled);
}

TEST(EngineGovernanceTest, PsnaMemBudgetReportsMemCause) {
  auto P = parse("atomic z;\n"
                 "thread { z@rlx := 1; return 0; }\n"
                 "thread { a := z@rlx; return a; }\n");
  guard::ResourceGuard G;
  G.setMemLimitBytes(1);
  PsConfig Cfg;
  Cfg.NumThreads = 1;
  Cfg.Guard = &G;
  PsBehaviorSet B = explorePsna(*P, Cfg);
  EXPECT_TRUE(B.truncated());
  EXPECT_EQ(B.Cause, TruncationCause::MemBudget);
}

TEST(EngineGovernanceTest, SimulationCancelsHonestly) {
  auto P = parse("thread { a := 0; while (a < 3) { a := a + 1; } return a; }");
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  SimulationResult R = checkSimulation(*P, *P, governedSeq(&G));
  EXPECT_TRUE(R.Holds) << "an incomplete simulation must not reject";
  EXPECT_FALSE(R.Complete);
  EXPECT_EQ(R.Cause, TruncationCause::Cancelled);
}

TEST(EngineGovernanceTest, ValidatorCancelsHonestly) {
  auto P = parse(kSrcStraight);
  for (ValidationMethod M : {ValidationMethod::Simple,
                             ValidationMethod::Advanced,
                             ValidationMethod::Simulation}) {
    guard::CancellationToken Tok;
    Tok.tripAfterPolls(0);
    guard::ResourceGuard G;
    G.setToken(&Tok);
    ValidationResult V = validateTransform(*P, *P, governedSeq(&G), M);
    EXPECT_TRUE(V.Ok) << validationMethodName(M);
    EXPECT_TRUE(V.Bounded) << validationMethodName(M);
    EXPECT_EQ(V.Cause, TruncationCause::Cancelled) << validationMethodName(M);
    EXPECT_NE(V.Counterexample.find("cancelled"), std::string::npos)
        << "bounded verdicts must name their cause: " << V.Counterexample;
  }
}

TEST(EngineGovernanceTest, ValidatorRejectionStaysDefiniteUnderGuard) {
  auto Src = parse(kFailSrc);
  auto Tgt = parse(kFailTgt);
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(100000);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  ValidationResult V = validateTransform(*Src, *Tgt, governedSeq(&G),
                                         ValidationMethod::Advanced);
  EXPECT_FALSE(V.Ok);
  EXPECT_FALSE(V.Counterexample.empty());
}

TEST(EngineGovernanceTest, AdequacyHarnessCancelsHonestly) {
  auto Src = parse("na x; thread { x@na := 1; a := x@na; return a; }");
  auto Tgt = parse("na x; thread { x@na := 1; a := 1; return a; }");
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  SeqConfig SeqCfg = governedSeq(&G);
  PsConfig PsCfg;
  PsCfg.NumThreads = 1;
  PsCfg.Guard = &G;
  AdequacyRecord Rec =
      runAdequacy("governed", *Src, *Tgt, SeqCfg, PsCfg, /*HasLoops=*/false);
  EXPECT_TRUE(Rec.AnyBounded);
  EXPECT_EQ(Rec.FirstCause, TruncationCause::Cancelled);
  EXPECT_TRUE(Rec.adequacyHolds()) << "skipped work must never read as a "
                                      "Thm 6.2 violation";
}

TEST(EngineGovernanceTest, PipelineReportsBoundedValidation) {
  auto P = parse("na x; thread { x@na := 1; a := x@na; return a; }");
  guard::CancellationToken Tok;
  Tok.tripAfterPolls(0);
  guard::ResourceGuard G;
  G.setToken(&Tok);
  PipelineOptions Opts;
  Opts.NumThreads = 1;
  Opts.Guard = &G;
  PipelineResult R = runPipeline(*P, Opts);
  EXPECT_TRUE(R.AllValidated) << "bounded acceptance is still acceptance";
  bool SawBoundedValidation = false;
  for (const PassReport &Rep : R.Reports)
    if (Rep.Validated && Rep.ValidationBounded) {
      SawBoundedValidation = true;
      EXPECT_EQ(Rep.ValidationCause, TruncationCause::Cancelled) << Rep.Name;
    }
  EXPECT_TRUE(SawBoundedValidation);
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

namespace {

// The pipeline's predicate in miniature: a candidate counts as "still
// failing" when both sides parse, layouts and thread counts agree, and the
// validator still rejects.
guard::ShrinkPredicate validatorStillRejects() {
  return [](const std::string &S, const std::string &T) {
    ParseResult PS = parseProgram(S);
    ParseResult PT = parseProgram(T);
    if (!PS.ok() || !PT.ok())
      return false;
    if (!sameLayout(*PS.Prog, *PT.Prog) ||
        PS.Prog->numThreads() != PT.Prog->numThreads())
      return false;
    return !validateTransform(*PS.Prog, *PT.Prog, SeqConfig(),
                              ValidationMethod::Advanced)
                .Ok;
  };
}

} // namespace

TEST(ShrinkTest, ReducesSeededCounterexampleStrictly) {
  // A failing pair padded with removable register arithmetic: the minimal
  // core is the return-value mismatch.
  const std::string Src = "na x;\n"
                          "thread {\n"
                          "  a := 1;\n"
                          "  b := 2;\n"
                          "  c := a + b;\n"
                          "  x@na := 1;\n"
                          "  return 0;\n"
                          "}\n";
  const std::string Tgt = "na x;\n"
                          "thread {\n"
                          "  a := 1;\n"
                          "  b := 2;\n"
                          "  c := a + b;\n"
                          "  x@na := 1;\n"
                          "  return 1;\n"
                          "}\n";
  guard::ShrinkPredicate Pred = validatorStillRejects();
  ASSERT_TRUE(Pred(Src, Tgt)) << "the seed pair must fail to begin with";

  guard::ShrinkResult R = guard::shrinkPair(Src, Tgt, Pred);
  EXPECT_GT(R.LinesRemoved, 0u) << "nothing was shrunk";
  EXPECT_LT(R.Src.size() + R.Tgt.size(), Src.size() + Tgt.size());
  EXPECT_TRUE(Pred(R.Src, R.Tgt)) << "shrunk pair no longer fails:\n"
                                  << R.Src << "---\n"
                                  << R.Tgt;
  EXPECT_TRUE(R.Converged);
  // The padding lines are gone from both sides.
  EXPECT_EQ(R.Src.find("a := 1"), std::string::npos);
  EXPECT_EQ(R.Tgt.find("c := a + b"), std::string::npos);
}

TEST(ShrinkTest, RespectsProbeBudget) {
  const std::string Src = "thread { a := 1; b := 2; return 0; }";
  const std::string Tgt = "thread { a := 1; b := 2; return 1; }";
  guard::ShrinkOptions Opts;
  Opts.MaxProbes = 1;
  guard::ShrinkResult R = guard::shrinkPair(Src, Tgt, validatorStillRejects(), Opts);
  EXPECT_LE(R.Probes, 1u);
  EXPECT_FALSE(R.Converged);
}

TEST(ShrinkTest, TrippedGuardStopsBeforeAnyProbe) {
  guard::CancellationToken Tok;
  Tok.cancel();
  guard::ResourceGuard G;
  G.setToken(&Tok);
  guard::ShrinkOptions Opts;
  Opts.Guard = &G;
  unsigned Calls = 0;
  guard::ShrinkResult R = guard::shrinkPair(
      "line1\nline2\n", "line3\n",
      [&](const std::string &, const std::string &) {
        ++Calls;
        return true;
      },
      Opts);
  EXPECT_EQ(Calls, 0u);
  EXPECT_EQ(R.Probes, 0u);
  EXPECT_EQ(R.Src, "line1\nline2\n");
  EXPECT_FALSE(R.Converged);
}

//===----------------------------------------------------------------------===//
// Fork isolation
//===----------------------------------------------------------------------===//

TEST(IsolateTest, ClassifiesExitCodes) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  guard::IsolateResult R = guard::runIsolated([] { return 0; }, {});
  EXPECT_EQ(R.Status, guard::IsolateStatus::Ok);
  EXPECT_EQ(R.ExitCode, 0);

  R = guard::runIsolated([] { return 7; }, {});
  EXPECT_EQ(R.Status, guard::IsolateStatus::Fail);
  EXPECT_EQ(R.ExitCode, 7);

  R = guard::runIsolated([] { return guard::IsolateOomExit; }, {});
  EXPECT_EQ(R.Status, guard::IsolateStatus::Oom);
}

TEST(IsolateTest, ClassifiesCrashSignal) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  guard::IsolateResult R = guard::runIsolated(
      []() -> int {
        std::abort();
      },
      {});
  EXPECT_EQ(R.Status, guard::IsolateStatus::Crash);
  EXPECT_EQ(R.Signal, SIGABRT);
}

TEST(IsolateTest, ClassifiesUncaughtException) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  guard::IsolateResult R = guard::runIsolated(
      []() -> int { throw std::runtime_error("boom"); }, {});
  EXPECT_EQ(R.Status, guard::IsolateStatus::Crash);
  EXPECT_EQ(R.ExitCode, guard::IsolateExceptionExit);
}

TEST(IsolateTest, WallTimeoutReportsDeadline) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  guard::IsolateLimits Limits;
  Limits.WallMs = 200;
  guard::IsolateResult R = guard::runIsolated(
      [] {
        // Bounded stand-in for a hang: far longer than the wall timeout,
        // never infinite even if the limit fails.
        std::this_thread::sleep_for(std::chrono::seconds(20));
        return 0;
      },
      Limits);
  EXPECT_EQ(R.Status, guard::IsolateStatus::Deadline);
  EXPECT_LT(R.ElapsedMs, 10000.0);
}

TEST(IsolateTest, RlimitMemReportsOom) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (guard::underSanitizer())
    GTEST_SKIP() << "RLIMIT_AS is skipped under sanitizers";

  guard::IsolateLimits Limits;
  Limits.MemBytes = 64ull << 20; // 64 MB address space
  guard::IsolateResult R = guard::runIsolated(
    [] {
        // Allocate-and-touch until bad_alloc; bounded at 1 GB so a broken
        // limit fails the test instead of exhausting the host.
        std::vector<std::unique_ptr<char[]>> Chunks;
        for (int I = 0; I != 64; ++I) {
          Chunks.push_back(std::make_unique<char[]>(16u << 20));
          Chunks.back()[0] = 1;
        }
        return 0;
      },
      Limits);
  EXPECT_EQ(R.Status, guard::IsolateStatus::Oom);
  EXPECT_EQ(R.ExitCode, guard::IsolateOomExit);
}

//===----------------------------------------------------------------------===//
// Fuzz campaign
//===----------------------------------------------------------------------===//

TEST(FuzzCampaignTest, InlineCampaignRunsClean) {
  // No isolation: exercises the in-process path (the only one available
  // under TSan or on non-POSIX hosts).
  CampaignOptions O;
  O.Seed = 7;
  O.Count = 4;
  O.Isolate = false;
  O.DeadlineMs = 0;
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 4u);
  EXPECT_EQ(S.Isolated, 0u);
  EXPECT_EQ(S.Agree + S.Mismatch + S.Bounded + S.Crash, 4u);
  EXPECT_TRUE(S.clean());
}

TEST(FuzzCampaignTest, SurvivesInjectedCrash) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  CampaignOptions O;
  O.Seed = 7;
  O.Count = 3;
  O.Fault = FaultKind::Crash;
  O.InjectAt = 1;
  O.WallMs = 20000;
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 3u);
  EXPECT_EQ(S.Crash, 1u) << "the injected crash must land in its bucket";
  EXPECT_EQ(S.Agree, 2u) << "the other pairs must be unaffected";
  EXPECT_EQ(S.Isolated, 3u);
  EXPECT_FALSE(S.clean());
}

TEST(FuzzCampaignTest, SurvivesInjectedHang) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  CampaignOptions O;
  O.Seed = 7;
  O.Count = 3;
  O.Fault = FaultKind::Hang;
  O.InjectAt = 0;
  O.WallMs = 1000;
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 3u);
  EXPECT_EQ(S.Deadline, 1u) << "the hang must be reaped as a deadline";
  EXPECT_EQ(S.Agree, 2u);
  EXPECT_TRUE(S.clean()) << "a deadline is a classified outcome, not a bug";
}

TEST(FuzzCampaignTest, SurvivesInjectedOom) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (guard::underSanitizer())
    GTEST_SKIP() << "RLIMIT_AS is skipped under sanitizers";

  CampaignOptions O;
  O.Seed = 7;
  O.Count = 2;
  O.Fault = FaultKind::Oom;
  O.InjectAt = 1;
  O.WallMs = 20000;
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 2u);
  EXPECT_EQ(S.Oom, 1u);
  EXPECT_EQ(S.Agree, 1u);
  EXPECT_TRUE(S.clean());
}

TEST(FuzzCampaignTest, GovernedPairsReportBoundedNotCrash) {
  // An aggressive in-child deadline turns pairs into bounded verdicts —
  // never crashes, never campaign failures.
  CampaignOptions O;
  O.Seed = 7;
  O.Count = 3;
  O.Isolate = false;
  O.DeadlineMs = 1; // most pairs will trip; fast ones may still agree
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 3u);
  EXPECT_EQ(S.Agree + S.Bounded, 3u)
      << "a governed pair either finishes or reports bounded";
  EXPECT_TRUE(S.clean());
}

TEST(FuzzCampaignTest, RealWorldSeedCorpusRunsClean) {
  // Corpus-seeded pairs are multi-threaded spin-loop protocols: every SEQ
  // verdict is loop-bounded, so each pair must classify as agree/bounded —
  // a PS^na refutation of a truncated SEQ positive is a non-verdict, not
  // a finding.
  EXPECT_TRUE(campaignSeedCorpusKnown("realworld"));
  EXPECT_TRUE(campaignSeedCorpusKnown("random"));
  EXPECT_FALSE(campaignSeedCorpusKnown("realwrld"));

  CampaignOptions O;
  O.Seed = 11;
  O.Count = 3;
  O.Isolate = false;
  O.SeedCorpus = "realworld";
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_EQ(S.Pairs, 3u);
  EXPECT_EQ(S.Agree + S.Bounded, 3u)
      << "seeded pairs either agree or report an honest bounded verdict";
  EXPECT_TRUE(S.clean());
}

//===----------------------------------------------------------------------===//
// Isolation rusage capture & SIGKILL disambiguation
//===----------------------------------------------------------------------===//

TEST(IsolateTest, CapturesChildOutputAndRusage) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  std::string Output;
  guard::IsolateResult R = guard::runIsolatedCapture(
      [](int OutFd) -> int {
        const char Msg[] = "payload from the child";
        size_t Len = sizeof(Msg) - 1;
        size_t Off = 0;
        while (Off < Len) {
          ssize_t N = write(OutFd, Msg + Off, Len - Off);
          if (N <= 0)
            return 1;
          Off += static_cast<size_t>(N);
        }
        // Touch some memory so the peak-RSS sample is visibly nonzero.
        std::vector<char> Block(4u << 20, 1);
        return Block[12345] == 1 ? 0 : 1;
      },
      {}, Output);
  EXPECT_EQ(R.Status, guard::IsolateStatus::Ok);
  EXPECT_EQ(Output, "payload from the child");
  EXPECT_GT(R.PeakRssKb, 0u) << "wait4 rusage not recorded";
  EXPECT_GE(R.UserMs, 0.0);
  EXPECT_GE(R.SysMs, 0.0);
}

TEST(IsolateTest, CaptureSurvivesChildDeathMidWrite) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  std::string Output;
  guard::IsolateResult R = guard::runIsolatedCapture(
      [](int OutFd) -> int {
        (void)write(OutFd, "partial", 7);
        std::abort();
      },
      {}, Output);
  EXPECT_EQ(R.Status, guard::IsolateStatus::Crash);
  EXPECT_EQ(R.Signal, SIGABRT);
  EXPECT_EQ(Output, "partial") << "pre-crash bytes must still be drained";
}

TEST(IsolateTest, ExternalSigkillIsACrashNotADeadline) {
  if (!guard::isolationSupported())
    GTEST_SKIP() << "no fork() on this host";
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  // A SIGKILL with almost no CPU consumed cannot be the hard CPU rlimit
  // (chaos injection and the OOM killer die exactly like this); rusage
  // disambiguates it into Crash so the job layer retries.
  guard::IsolateLimits Limits;
  Limits.CpuSeconds = 30;
  guard::IsolateResult R = guard::runIsolated(
      []() -> int {
        raise(SIGKILL);
        return 0;
      },
      Limits);
  EXPECT_EQ(R.Status, guard::IsolateStatus::Crash);
  EXPECT_EQ(R.Signal, SIGKILL);
}

//===----------------------------------------------------------------------===//
// Graceful shutdown signals
//===----------------------------------------------------------------------===//

TEST(SignalsTest, SignalSetsFlagAndCancelsToken) {
  ASSERT_TRUE(guard::installShutdownHandlers());
  EXPECT_FALSE(guard::shutdownRequested());
  EXPECT_FALSE(guard::shutdownToken().cancelled());

  raise(SIGINT);
  EXPECT_TRUE(guard::shutdownRequested());
  EXPECT_EQ(guard::shutdownSignal(), SIGINT);
  EXPECT_TRUE(guard::shutdownToken().cancelled())
      << "a guard attached to the shared token must see the cancel";

  guard::resetShutdownStateForTests();
  EXPECT_FALSE(guard::shutdownRequested());
  EXPECT_EQ(guard::shutdownSignal(), 0);
  EXPECT_FALSE(guard::shutdownToken().cancelled());
}

TEST(SignalsTest, GuardAttachedToTokenReportsCancelled) {
  ASSERT_TRUE(guard::installShutdownHandlers());
  guard::ResourceGuard Guard;
  Guard.setToken(&guard::shutdownToken());
  EXPECT_EQ(Guard.checkpoint(), TruncationCause::None);

  raise(SIGTERM);
  EXPECT_EQ(Guard.checkpoint(), TruncationCause::Cancelled)
      << "SIGTERM must surface as an honest cancelled truncation";

  guard::resetShutdownStateForTests();
}

TEST(SignalsTest, CampaignStopsBetweenPairsOnShutdownSignal) {
  ASSERT_TRUE(guard::installShutdownHandlers());
  raise(SIGTERM);

  CampaignOptions O;
  O.Seed = 7;
  O.Count = 50;
  O.Isolate = false;
  CampaignStats S = runFuzzCampaign(O);
  EXPECT_TRUE(S.Interrupted);
  EXPECT_EQ(S.Pairs, 0u) << "the flag was set before the first pair";
  EXPECT_TRUE(S.clean());

  guard::resetShutdownStateForTests();
}
