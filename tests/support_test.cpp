//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/CliArgs.h"
#include "support/LocSet.h"
#include "support/Rational.h"
#include "support/Rng.h"
#include "support/Symbol.h"
#include "support/ValueDomain.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

using namespace pseq;

//===----------------------------------------------------------------------===
// Rational
//===----------------------------------------------------------------------===

TEST(RationalTest, NormalizesToLowestTerms) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
}

TEST(RationalTest, NormalizesSign) {
  Rational R(3, -6);
  EXPECT_EQ(R.num(), -1);
  EXPECT_EQ(R.den(), 2);
}

TEST(RationalTest, ZeroHasCanonicalForm) {
  Rational R(0, 7);
  EXPECT_EQ(R.num(), 0);
  EXPECT_EQ(R.den(), 1);
  EXPECT_TRUE(R.isZero());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LE(Rational(2), Rational(2));
  EXPECT_GT(Rational(7, 3), Rational(2));
}

TEST(RationalTest, MidpointIsStrictlyBetween) {
  Rational A(1), B(2);
  Rational M = A.midpoint(B);
  EXPECT_LT(A, M);
  EXPECT_LT(M, B);
  // Midpoints can be iterated forever (density of Q).
  Rational M2 = A.midpoint(M);
  EXPECT_LT(A, M2);
  EXPECT_LT(M2, M);
}

TEST(RationalTest, SuccessorIsGreater) {
  EXPECT_LT(Rational(5, 3), Rational(5, 3).successor());
}

TEST(RationalTest, EqualValuesHashEqually) {
  EXPECT_EQ(Rational(2, 4).hash(), Rational(1, 2).hash());
}

TEST(RationalTest, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(1, 2).str(), "1/2");
}

TEST(RationalTest, ComparisonNearInt64Max) {
  // Cross-multiplication must not wrap: 7 * INT64_MAX and 8 * INT64_MAX
  // both exceed int64, but the 128-bit intermediates order correctly.
  EXPECT_LT(Rational(7, INT64_MAX), Rational(8, INT64_MAX));
  EXPECT_LT(Rational(1, INT64_MAX), Rational(1, INT64_MAX - 1));
  EXPECT_LT(Rational(INT64_MAX - 1), Rational(INT64_MAX));
  EXPECT_FALSE(Rational(INT64_MAX) < Rational(INT64_MAX - 1));
}

TEST(RationalTest, ArithmeticNearInt64Max) {
  // Intermediates overflow int64 but the reduced results fit exactly.
  EXPECT_EQ(Rational(INT64_MAX - 1, 2) + Rational(1, 2),
            Rational(INT64_MAX, 2));
  EXPECT_EQ(Rational(INT64_MAX) - Rational(INT64_MAX - 1), Rational(1));
  EXPECT_EQ(Rational(int64_t(1) << 62, 3) * Rational(9, int64_t(1) << 62),
            Rational(3));
  EXPECT_EQ(Rational(INT64_MAX) / Rational(INT64_MAX), Rational(1));
  EXPECT_LT(Rational(INT64_MAX - 1), Rational(INT64_MAX - 1).successor());
}

TEST(RationalDeathTest, UnrepresentableResultIsHardError) {
  // A result that cannot be reduced into int64 must abort — timestamp
  // arithmetic silently wrapping would reorder messages.
  EXPECT_DEATH(Rational(INT64_MAX) + Rational(1), "rational overflow");
  EXPECT_DEATH(Rational(INT64_MAX) * Rational(2), "rational overflow");
}

//===----------------------------------------------------------------------===
// LocSet
//===----------------------------------------------------------------------===

TEST(LocSetTest, InsertRemoveContains) {
  LocSet S;
  EXPECT_TRUE(S.isEmpty());
  S.insert(3);
  S.insert(7);
  EXPECT_TRUE(S.contains(3));
  EXPECT_TRUE(S.contains(7));
  EXPECT_FALSE(S.contains(4));
  EXPECT_EQ(S.size(), 2u);
  S.remove(3);
  EXPECT_FALSE(S.contains(3));
}

TEST(LocSetTest, SetAlgebra) {
  LocSet A = LocSet::single(0).plus(1);
  LocSet B = LocSet::single(1).plus(2);
  EXPECT_EQ(A.unionWith(B), LocSet::single(0).plus(1).plus(2));
  EXPECT_EQ(A.intersectWith(B), LocSet::single(1));
  EXPECT_EQ(A.setMinus(B), LocSet::single(0));
  EXPECT_TRUE(LocSet::single(1).isSubsetOf(A));
  EXPECT_FALSE(A.isSubsetOf(B));
}

TEST(LocSetTest, SubsetEnumerationIsComplete) {
  LocSet S = LocSet::single(0).plus(2).plus(5);
  std::vector<LocSet> Subs = S.subsets();
  EXPECT_EQ(Subs.size(), 8u);
  std::set<uint64_t> Raw;
  for (LocSet Sub : Subs) {
    EXPECT_TRUE(Sub.isSubsetOf(S));
    Raw.insert(Sub.raw());
  }
  EXPECT_EQ(Raw.size(), 8u) << "subsets must be distinct";
}

TEST(LocSetTest, SupersetEnumerationWithinUniverse) {
  LocSet Base = LocSet::single(1);
  LocSet Universe = LocSet::single(0).plus(1).plus(2);
  std::vector<LocSet> Sups = Base.supersetsWithin(Universe);
  EXPECT_EQ(Sups.size(), 4u);
  for (LocSet S : Sups) {
    EXPECT_TRUE(Base.isSubsetOf(S));
    EXPECT_TRUE(S.isSubsetOf(Universe));
  }
}

TEST(LocSetTest, AllOfN) {
  EXPECT_EQ(LocSet::all(3).size(), 3u);
  EXPECT_EQ(LocSet::all(0).size(), 0u);
  EXPECT_EQ(LocSet::all(64).size(), 64u);
}

TEST(LocSetTest, MembersAreSorted) {
  LocSet S = LocSet::single(9).plus(2).plus(33);
  std::vector<unsigned> M = S.members();
  ASSERT_EQ(M.size(), 3u);
  EXPECT_EQ(M[0], 2u);
  EXPECT_EQ(M[1], 9u);
  EXPECT_EQ(M[2], 33u);
}

//===----------------------------------------------------------------------===
// ValueDomain / SymbolTable / Rng
//===----------------------------------------------------------------------===

TEST(ValueDomainTest, Factories) {
  EXPECT_EQ(ValueDomain::binary().size(), 2u);
  EXPECT_EQ(ValueDomain::ternary().size(), 3u);
  EXPECT_EQ(ValueDomain::upTo(5).size(), 5u);
  EXPECT_TRUE(ValueDomain::ternary().contains(2));
  EXPECT_FALSE(ValueDomain::binary().contains(2));
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable T;
  unsigned A = T.intern("x");
  unsigned B = T.intern("y");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.intern("x"), A);
  EXPECT_EQ(T.name(A), "x");
  EXPECT_EQ(T.size(), 2u);
  EXPECT_FALSE(T.lookup("z").has_value());
  EXPECT_EQ(*T.lookup("y"), B);
}

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(RngTest, BelowMatchesLegacyModuloForSmallBounds) {
  // Rejection sampling discards only the top 2^64 mod Bound draws, so for
  // small bounds every accepted draw equals the historical next() % Bound
  // — seeded goldens stay stable across the bias fix.
  for (uint64_t Seed : {0ull, 7ull, 42ull, 2022ull}) {
    Rng A(Seed), B(Seed);
    for (int I = 0; I < 200; ++I)
      EXPECT_EQ(A.below(13), B.next() % 13);
  }
}

TEST(RngTest, BelowRejectsBiasedTopSlice) {
  // With Bound = 2^63 + 1 every raw draw above 2^63 is biased (it maps to
  // a residue the incomplete top slice over-represents) and must be
  // redrawn, not reduced. Find a seed whose first draw lands in the
  // rejection slice and check below() skipped it.
  const uint64_t Bound = (uint64_t(1) << 63) + 1;
  const uint64_t Rem = (UINT64_MAX % Bound + 1) % Bound;
  const uint64_t Limit = UINT64_MAX - Rem;
  bool SawRejection = false;
  for (uint64_t Seed = 0; Seed != 64 && !SawRejection; ++Seed) {
    Rng Probe(Seed);
    uint64_t First = Probe.next();
    Rng R(Seed);
    uint64_t Got = R.below(Bound);
    EXPECT_LT(Got, Bound);
    if (First > Limit) {
      SawRejection = true;
      // The biased first draw was discarded; the result is a later,
      // in-range draw reduced mod Bound — not First % Bound.
      uint64_t X = First;
      Rng Replay(Seed);
      Replay.next();
      while (X > Limit)
        X = Replay.next();
      EXPECT_EQ(Got, X % Bound);
    }
  }
  EXPECT_TRUE(SawRejection) << "no seed in [0,64) hit the rejection slice";
}

//===----------------------------------------------------------------------===
// cli:: strict argument parsing (support/CliArgs.h)
//===----------------------------------------------------------------------===

TEST(CliArgsTest, ParseUnsignedAcceptsPlainDigits) {
  uint64_t V = 0;
  EXPECT_TRUE(cli::parseUnsigned("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(cli::parseUnsigned("18446744073709551615", V));
  EXPECT_EQ(V, std::numeric_limits<uint64_t>::max());
}

TEST(CliArgsTest, ParseUnsignedRejectsNonCanonicalForms) {
  uint64_t V = 0;
  for (const char *Bad : {"", " 7", "+7", "-7", "7x", "0x10",
                          "18446744073709551616", (const char *)nullptr})
    EXPECT_FALSE(cli::parseUnsigned(Bad, V)) << (Bad ? Bad : "<null>");
  unsigned U = 0;
  EXPECT_FALSE(cli::parseUnsigned("4294967296", U)) << "must not wrap";
  EXPECT_TRUE(cli::parseUnsigned("4294967295", U));
  EXPECT_EQ(U, 4294967295u);
}

TEST(CliArgsTest, InRangeAcceptsAndReturnsValue) {
  uint64_t V = 0;
  std::string Err;
  EXPECT_TRUE(cli::parseUnsignedInRange("--heartbeat-ms", "500", 1, 3600000,
                                        V, Err));
  EXPECT_EQ(V, 500u);
  EXPECT_TRUE(Err.empty());
  unsigned U = 0;
  EXPECT_TRUE(cli::parseUnsignedInRange("--threads", "8", 0u, 256u, U, Err));
  EXPECT_EQ(U, 8u);
}

TEST(CliArgsTest, InRangeDiagnosesMissingAndEmptyValues) {
  uint64_t V = 0;
  std::string Err;
  EXPECT_FALSE(
      cli::parseUnsignedInRange("--heartbeat-ms", nullptr, 1, 100, V, Err));
  EXPECT_EQ(Err, "--heartbeat-ms :1: missing value");
  EXPECT_FALSE(cli::parseUnsignedInRange("--heartbeat-ms", "", 1, 100, V,
                                         Err));
  EXPECT_EQ(Err, "--heartbeat-ms :1: empty value");
}

TEST(CliArgsTest, InRangeNamesTheFirstBadColumn) {
  uint64_t V = 0;
  std::string Err;
  EXPECT_FALSE(
      cli::parseUnsignedInRange("--threads", "12x4", 0, 256, V, Err));
  EXPECT_EQ(Err, "--threads 12x4:3: expected a base-10 unsigned integer");
  EXPECT_FALSE(
      cli::parseUnsignedInRange("--threads", "-1", 0, 256, V, Err));
  EXPECT_EQ(Err, "--threads -1:1: expected a base-10 unsigned integer");
}

TEST(CliArgsTest, InRangeRejectsOutOfRangeLoudly) {
  uint64_t V = 0;
  std::string Err;
  EXPECT_FALSE(
      cli::parseUnsignedInRange("--heartbeat-ms", "0", 1, 3600000, V, Err));
  EXPECT_EQ(Err, "--heartbeat-ms 0:1: value 0 out of range [1, 3600000]");
  unsigned U = 0;
  EXPECT_FALSE(
      cli::parseUnsignedInRange("--threads", "257", 0u, 256u, U, Err));
  EXPECT_EQ(Err, "--threads 257:1: value 257 out of range [0, 256]");
  // A value past 64 bits is still an error, with its own message.
  EXPECT_FALSE(cli::parseUnsignedInRange("--mem-mb", "18446744073709551616",
                                         1, 100, V, Err));
  EXPECT_NE(Err.find("does not fit in 64 bits"), std::string::npos) << Err;
}

TEST(CliArgsTest, FlagValueMatchesBothSpellings) {
  const char *Value = nullptr;
  char A0[] = "bin", A1[] = "--threads", A2[] = "4", A3[] = "--threads=9",
       A4[] = "--threads";
  {
    char *Argv[] = {A0, A1, A2};
    int I = 1;
    EXPECT_TRUE(cli::flagValue(3, Argv, I, "--threads", Value));
    EXPECT_STREQ(Value, "4");
    EXPECT_EQ(I, 2) << "separate value must be consumed";
  }
  {
    char *Argv[] = {A0, A3};
    int I = 1;
    EXPECT_TRUE(cli::flagValue(2, Argv, I, "--threads", Value));
    EXPECT_STREQ(Value, "9");
  }
  {
    // Trailing flag with no argument left: matched, but the value is null
    // and must be treated as a usage error by callers.
    char *Argv[] = {A0, A4};
    int I = 1;
    EXPECT_TRUE(cli::flagValue(2, Argv, I, "--threads", Value));
    EXPECT_EQ(Value, nullptr);
    std::string Err;
    uint64_t V = 0;
    EXPECT_FALSE(cli::parseUnsignedInRange("--threads", Value, 0, 256, V,
                                           Err));
    EXPECT_EQ(Err, "--threads :1: missing value");
  }
}
