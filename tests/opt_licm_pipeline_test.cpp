//===- tests/opt_licm_pipeline_test.cpp - LICM + pipeline (E9/E10/E16) ----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// LICM (Example 1.3) via load introduction + LLF, the fixpoint-in-≤3-
// iterations claim, and the full four-pass pipeline with per-pass
// translation validation.
//
//===----------------------------------------------------------------------===//

#include "opt/LicmPass.h"
#include "opt/Pipeline.h"
#include "opt/SlfAnalysis.h"

#include "lang/Printer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

//===----------------------------------------------------------------------===
// LICM (Example 1.3)
//===----------------------------------------------------------------------===

TEST(LicmTest, HoistsLoopInvariantLoad) {
  auto P = prog("na x;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) { a := x@na; c := choose; }\n"
                "  return 0;\n"
                "}");
  PassResult R = runLicmPass(*P);
  EXPECT_EQ(R.Rewrites, 2u) << "one introduced load + one forwarding";
  std::string Printed = printProgram(*R.Prog);
  // The load moved out of the loop; the body copies from the licm reg.
  size_t LoopPos = Printed.find("while");
  ASSERT_NE(LoopPos, std::string::npos);
  size_t LoadPos = Printed.find(":= x@na");
  ASSERT_NE(LoadPos, std::string::npos) << Printed;
  EXPECT_LT(LoadPos, LoopPos) << Printed;
  EXPECT_NE(Printed.find("a := licm$x;"), std::string::npos) << Printed;

  // Bounded validation (loops): the checker explores to its budget.
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.StepBudget = 18;
  ValidationResult V = validateTransform(*P, *R.Prog, Cfg);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(LicmTest, DoesNotHoistWrittenLocation) {
  auto P = prog("na x;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) { a := x@na; x@na := a + 1; c := choose; }\n"
                "  return 0;\n"
                "}");
  EXPECT_EQ(runLicmLoadIntroduction(*P).Rewrites, 0u);
}

TEST(LicmTest, DoesNotHoistAcrossAcquire) {
  auto P = prog("na x; atomic f;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) { s := f@acq; a := x@na; c := choose; }\n"
                "  return 0;\n"
                "}");
  EXPECT_EQ(runLicmLoadIntroduction(*P).Rewrites, 0u)
      << "an acquire in the body refreshes memory";
}

TEST(LicmTest, HoistsFromNestedLoops) {
  auto P = prog("na x, y;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) {\n"
                "    a := x@na;\n"
                "    d := choose;\n"
                "    while (d != 0) { b := y@na; d := choose; }\n"
                "    c := choose;\n"
                "  }\n"
                "  return 0;\n"
                "}");
  PassResult R = runLicmLoadIntroduction(*P);
  // Outer loop hoists both x and y (neither is written, no acquire);
  // nested structure is preserved.
  EXPECT_GE(R.Rewrites, 2u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_NE(Printed.find("licm$x"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("licm$y"), std::string::npos) << Printed;
}

TEST(LicmTest, LoadIntroductionAloneIsSound) {
  // Stage 1 in isolation is load introduction — the transformation that
  // catch-fire models forbid and SEQ validates (Example 2.8, Example 1.3).
  auto P = prog("na x;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) { a := x@na; c := choose; }\n"
                "  return 0;\n"
                "}");
  PassResult R = runLicmLoadIntroduction(*P);
  ASSERT_EQ(R.Rewrites, 1u);
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  Cfg.StepBudget = 18;
  ValidationResult V = validateTransform(*P, *R.Prog, Cfg);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

//===----------------------------------------------------------------------===
// Fixpoint termination (E10)
//===----------------------------------------------------------------------===

TEST(FixpointTest, AllAnalysesConvergeWithinThreeIterationsOnLoops) {
  const char *Programs[] = {
      "na x;\nthread { c := choose; while (c != 0) { a := x@na; "
      "c := choose; } return 0; }",
      "na x;\nthread { x@na := 1; c := choose; while (c != 0) "
      "{ x@na := 2; a := x@na; c := choose; } b := x@na; return b; }",
      "na x, y; atomic f;\nthread { c := choose; while (c != 0) "
      "{ a := x@na; f@rel := 1; b := y@na; c := choose; } return 0; }",
      "na x;\nthread { c := choose; while (c != 0) { d := choose; "
      "while (d != 0) { a := x@na; d := choose; } c := choose; } "
      "return 0; }",
  };
  for (const char *Text : Programs) {
    auto P = prog(Text);
    EXPECT_LE(analyzeSlf(*P, 0).MaxLoopIterations, 3u) << Text;
  }
}

//===----------------------------------------------------------------------===
// Pipeline (E16)
//===----------------------------------------------------------------------===

TEST(PipelineTest, RunsAllFourPassesValidated) {
  auto P = prog("na x; atomic y;\n"
                "thread {\n"
                "  x@na := 1;\n"       // dead (overwritten below)
                "  x@na := 2;\n"
                "  a := x@na;\n"       // SLF -> a := 2
                "  b := x@na;\n"       // SLF -> b := 2
                "  y@rel := 1;\n"
                "  return a + b;\n"
                "}");
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain({0, 1, 2, 4});
  PipelineResult R = runPipeline(*P, Opts);
  EXPECT_TRUE(R.AllValidated);
  EXPECT_GE(R.TotalRewrites, 3u);
  for (const PassReport &Rep : R.Reports)
    EXPECT_TRUE(Rep.Error.empty()) << Rep.Name << ": " << Rep.Error;

  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find("a := x@na"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("x@na := 1"), std::string::npos) << Printed;
}

TEST(PipelineTest, SimulationMethodValidatesLicmExactly) {
  // With the Fig. 6 simulation as the certificate, the loop program's
  // validation is exact (not bounded) — like the paper's Coq proof.
  auto P = prog("na x;\n"
                "thread {\n"
                "  c := choose;\n"
                "  while (c != 0) { a := x@na; c := choose; }\n"
                "  return 0;\n"
                "}");
  PipelineOptions Opts;
  Opts.Method = ValidationMethod::Simulation;
  Opts.Cfg.Domain = ValueDomain::binary();
  PipelineResult R = runPipeline(*P, Opts);
  EXPECT_TRUE(R.AllValidated);
  bool LicmRan = false;
  for (const PassReport &Rep : R.Reports) {
    if (Rep.Name != "licm" || Rep.Rewrites == 0)
      continue;
    LicmRan = true;
    EXPECT_TRUE(Rep.Validated);
    EXPECT_FALSE(Rep.ValidationBounded)
        << "simulation must close the loop coinductively";
  }
  EXPECT_TRUE(LicmRan);
}

TEST(PipelineTest, IdempotentOnOptimizedOutput) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; a := x@na; b := x@na; return a + b; }");
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain({0, 1, 2});
  PipelineResult First = runPipeline(*P, Opts);
  PipelineResult Second = runPipeline(*First.Prog, Opts);
  EXPECT_EQ(Second.TotalRewrites, 0u);
  EXPECT_TRUE(stmtStructurallyEquals(First.Prog->thread(0).Body,
                                     Second.Prog->thread(0).Body));
}

TEST(PipelineTest, LeavesAtomicsAlone) {
  // The paper deliberately performs no optimizations on atomics.
  auto P = prog("atomic y;\n"
                "thread { y@rlx := 1; a := y@rlx; y@rlx := 2; return a; }");
  PipelineResult R = runPipeline(*P);
  EXPECT_EQ(R.TotalRewrites, 0u);
  EXPECT_TRUE(stmtStructurallyEquals(P->thread(0).Body,
                                     R.Prog->thread(0).Body));
}

TEST(PipelineTest, OptimizesAllThreadsIndependently) {
  auto P = prog("na x, y;\n"
                "thread { x@na := 1; a := x@na; return a; }\n"
                "thread { y@na := 2; b := y@na; return b; }");
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain({0, 1, 2});
  PipelineResult R = runPipeline(*P, Opts);
  EXPECT_TRUE(R.AllValidated);
  EXPECT_GE(R.TotalRewrites, 2u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find(":= x@na"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find(":= y@na"), std::string::npos) << Printed;
}
