//===- tests/seq_advanced_refine_test.cpp - §3 verdict table (E4/E5) ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Reproduces the advanced-refinement (⊑w, Def 3.3) verdict of every corpus
// example — in particular the §3 cases the simple notion rejects: late UB,
// writes across release, and Example 3.5's DSE across a release write.
// Also checks Proposition 3.4 (⊑ implies ⊑w) across the corpus.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "seq/AdvancedRefinement.h"
#include "seq/SimpleRefinement.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

class AdvancedRefineCorpusTest
    : public ::testing::TestWithParam<RefinementCase> {};

} // namespace

TEST_P(AdvancedRefineCorpusTest, VerdictMatchesPaper) {
  const RefinementCase &RC = GetParam();
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);

  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  RefinementResult R = checkAdvancedRefinement(*Src, *Tgt, Cfg);

  EXPECT_EQ(R.Holds, RC.AdvancedHolds)
      << RC.Name << " (" << RC.PaperRef << ")\n"
      << (R.Holds ? "" : "counterexample: " + R.Counterexample);
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, AdvancedRefineCorpusTest,
    ::testing::ValuesIn(refinementCorpus()),
    [](const ::testing::TestParamInfo<RefinementCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===
// Proposition 3.4: σ_tgt ⊑ σ_src ⇒ σ_tgt ⊑w σ_src. The corpus encodes
// this as "SimpleHolds implies AdvancedHolds"; verify it against the
// actual checkers, not just the expectations.
//===----------------------------------------------------------------------===

TEST(Prop34Test, SimpleImpliesAdvancedOnCorpus) {
  for (const RefinementCase &RC : refinementCorpus()) {
    ASSERT_FALSE(RC.SimpleHolds && !RC.AdvancedHolds)
        << RC.Name << ": corpus expectation violates Prop 3.4";
    if (!RC.SimpleHolds || RC.HasLoops)
      continue;
    auto Src = prog(RC.Src);
    auto Tgt = prog(RC.Tgt);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    ASSERT_TRUE(checkSimpleRefinement(*Src, *Tgt, Cfg).Holds) << RC.Name;
    EXPECT_TRUE(checkAdvancedRefinement(*Src, *Tgt, Cfg).Holds)
        << RC.Name << ": Prop 3.4 violated by the implementation";
  }
}

//===----------------------------------------------------------------------===
// Targeted §3 sanity checks beyond the corpus.
//===----------------------------------------------------------------------===

TEST(AdvancedRefineTest, LateUBDoesNotLeakAcrossAcquire) {
  // Source must not pass an acquire on its way to late UB.
  auto Src = prog("na y; atomic x;\nthread { a := x@acq; abort; }");
  auto Tgt = prog("na y; atomic x;\nthread { abort; }");
  EXPECT_FALSE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, LateUBAllowsReleaseOnTheWay) {
  // A release write in the UB-suffix is fine: the adversary may take any
  // permissions, but ⊥ is reached regardless.
  auto Src = prog("atomic x;\nthread { x@rel := 1; abort; }");
  auto Tgt = prog("atomic x;\nthread { abort; }");
  EXPECT_TRUE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, LateUBMustBeOracleRobust) {
  // The source reaches UB only when reading 1; an adversarial oracle
  // denies that value, so the target's unconditional UB is unmatched.
  auto Src = prog("atomic x;\nthread { a := x@rlx; "
                  "if (a == 1) { abort; } return 0; }");
  auto Tgt = prog("atomic x;\nthread { abort; }");
  EXPECT_FALSE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, UnconditionalUBAfterReadIsRobust) {
  // Reading then UB-ing regardless of the value is robust.
  auto Src = prog("atomic x;\nthread { a := x@rlx; abort; }");
  auto Tgt = prog("atomic x;\nthread { abort; }");
  EXPECT_TRUE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, CommitmentMustBeFulfilledBeforeTermination) {
  // The target writes y before its release; the source never writes y at
  // all — the commitment {y} stays unfulfilled.
  auto Src = prog("na y; atomic x;\nthread { x@rel := 1; return 0; }");
  auto Tgt =
      prog("na y; atomic x;\nthread { y@na := 1; x@rel := 1; return 0; }");
  EXPECT_FALSE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, CommitmentMustNotCrossAcquire) {
  // Fulfilling commitments after an acquire read corresponds to the
  // disallowed reordering of writes after an acquire.
  auto Src = prog("na y; atomic x, z;\nthread { x@rel := 1; a := z@acq; "
                  "y@na := 1; return 0; }");
  auto Tgt = prog("na y; atomic x, z;\nthread { y@na := 1; x@rel := 1; "
                  "a := z@acq; return 0; }");
  EXPECT_FALSE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

TEST(AdvancedRefineTest, CommitmentFulfilledAfterRelease) {
  // Same shape, but the source writes y right after the release: sound.
  auto Src = prog("na y; atomic x;\nthread { x@rel := 1; y@na := 1; "
                  "return 0; }");
  auto Tgt = prog("na y; atomic x;\nthread { y@na := 1; x@rel := 1; "
                  "return 0; }");
  EXPECT_TRUE(checkAdvancedRefinement(*Src, *Tgt).Holds);
}

//===----------------------------------------------------------------------===
// The extension corpus (fences/RMWs/choose): both notions, plus Prop 3.4.
//===----------------------------------------------------------------------===

TEST(ExtensionCorpusTest, VerdictsMatchExpectations) {
  for (const RefinementCase &RC : extensionCorpus()) {
    auto Src = prog(RC.Src);
    auto Tgt = prog(RC.Tgt);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    RefinementResult S = checkSimpleRefinement(*Src, *Tgt, Cfg);
    RefinementResult A = checkAdvancedRefinement(*Src, *Tgt, Cfg);
    EXPECT_EQ(S.Holds, RC.SimpleHolds)
        << RC.Name << " (simple)\n" << S.Counterexample;
    EXPECT_EQ(A.Holds, RC.AdvancedHolds)
        << RC.Name << " (advanced)\n" << A.Counterexample;
    ASSERT_FALSE(RC.SimpleHolds && !RC.AdvancedHolds) << RC.Name;
  }
}
