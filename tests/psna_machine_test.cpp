//===- tests/psna_machine_test.cpp - Fig 5 transition rules ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Unit tests of the PS^na machine: views, message placement, race
// detection, promises/certification, lowering, and normalization.
//
//===----------------------------------------------------------------------===//

#include "psna/Explorer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

PsConfig cfg(unsigned Promises = 0, unsigned Splits = 0) {
  PsConfig C;
  C.Domain = ValueDomain::binary();
  C.PromiseBudget = Promises;
  C.SplitBudget = Splits;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===
// Memory primitives
//===----------------------------------------------------------------------===

TEST(PsMemoryTest, InitialMemoryHasInitMessages) {
  PsMemory M = PsMemory::initial(2);
  ASSERT_EQ(M.msgs(0).size(), 1u);
  EXPECT_TRUE(M.msgs(0)[0].isInit());
  EXPECT_EQ(M.msgs(0)[0].V, Value::of(0));
}

TEST(PsMemoryTest, SlotsAboveLeaveRoom) {
  PsMemory M = PsMemory::initial(1);
  std::vector<TimeSlot> S1 = M.slotsAbove(0, Rational(0));
  ASSERT_EQ(S1.size(), 1u) << "only the past-the-end slot initially";
  PsMessage A;
  A.Loc = 0;
  A.From = S1[0].From;
  A.To = S1[0].To;
  A.V = Value::of(1);
  M.insert(A);

  // Now: a gap slot between init and A, plus past-the-end.
  std::vector<TimeSlot> S2 = M.slotsAbove(0, Rational(0));
  ASSERT_EQ(S2.size(), 2u);
  EXPECT_LT(Rational(0), S2[0].From);
  EXPECT_LT(S2[0].To, A.From);
  EXPECT_LT(A.To, S2[1].From);
}

TEST(PsMemoryTest, AdjacentSlotAttachesAndBlocks) {
  PsMemory M = PsMemory::initial(1);
  std::optional<TimeSlot> Adj = M.adjacentSlot(0, Rational(0));
  ASSERT_TRUE(Adj.has_value());
  EXPECT_EQ(Adj->From, Rational(0)) << "RMW attaches to the read message";

  PsMessage A;
  A.Loc = 0;
  A.From = Adj->From;
  A.To = Adj->To;
  A.V = Value::of(1);
  M.insert(A);
  EXPECT_FALSE(M.adjacentSlot(0, Rational(0)).has_value())
      << "no second update can read the same message";
  EXPECT_TRUE(M.adjacentSlot(0, A.To).has_value());
}

//===----------------------------------------------------------------------===
// Machine behaviors on single-threaded programs
//===----------------------------------------------------------------------===

TEST(PsMachineTest, SequentialExecutionIsDeterministic) {
  auto P = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_EQ(B.All[0].str(), "ret(1)");
  EXPECT_FALSE(B.truncated());
}

TEST(PsMachineTest, SingleThreadReadsLatestOrInit) {
  auto P = prog("atomic x;\nthread { x@rlx := 1; a := x@rlx; return a; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  // Coherence: after writing 1, the thread's view points at its write.
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_EQ(B.All[0].str(), "ret(1)");
}

TEST(PsMachineTest, AbortIsUB) {
  auto P = prog("thread { abort; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_TRUE(B.All[0].IsUB);
}

TEST(PsMachineTest, ChooseEnumeratesDomain) {
  auto P = prog("thread { c := choose; return c; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_TRUE(B.containsStr("ret(0)"));
  EXPECT_TRUE(B.containsStr("ret(1)"));
  EXPECT_EQ(B.All.size(), 2u);
}

TEST(PsMachineTest, PrintsAreObservableInOrder) {
  auto P = prog("thread { print(1); print(0); return 0; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_EQ(B.All[0].str(), "out(1,0) ret(0)");
}

//===----------------------------------------------------------------------===
// Races
//===----------------------------------------------------------------------===

TEST(PsMachineTest, NoRaceOnSequentialThread) {
  auto P = prog("na x;\nthread { a := x@na; return a; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  ASSERT_EQ(B.All.size(), 1u);
  EXPECT_EQ(B.All[0].str(), "ret(0)") << "no race without a second thread";
}

TEST(PsMachineTest, ConcurrentNaWriteMakesReadsRacy) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; return 0; }\n"
                "thread { a := x@na; return a; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_TRUE(B.containsStr("ret(0,undef)")) << "racy read returns undef";
  EXPECT_TRUE(B.containsStr("ret(0,0)")) << "read before the write";
  EXPECT_TRUE(B.containsStr("ret(0,1)")) << "read after the write";
  EXPECT_FALSE(B.containsStr("UB")) << "wr races are not UB";
}

TEST(PsMachineTest, WriteWriteRaceIsUB) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; return 0; }\n"
                "thread { x@na := 0; return 0; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_TRUE(B.containsStr("UB"));
}

TEST(PsMachineTest, AtomicAccessesNeverRaceWithAtomics) {
  auto P = prog("atomic x;\n"
                "thread { x@rlx := 1; return 0; }\n"
                "thread { a := x@rlx; return a; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_FALSE(B.containsStr("UB"));
  EXPECT_FALSE(B.containsStr("ret(0,undef)"))
      << "atomic accesses race only with NAMsg markers";
}

TEST(PsMachineTest, ReleaseAcquireSynchronizesNaData) {
  auto P = prog("na x; atomic y;\n"
                "thread { x@na := 1; y@rel := 1; return 0; }\n"
                "thread { b := y@acq; if (b == 1) { a := x@na; return a; } "
                "return 2; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_TRUE(B.containsStr("ret(0,1)"));
  EXPECT_TRUE(B.containsStr("ret(0,2)"));
  EXPECT_FALSE(B.containsStr("ret(0,undef)"))
      << "the acquire view covers the na write";
  EXPECT_FALSE(B.containsStr("ret(0,0)"));
}

//===----------------------------------------------------------------------===
// RMWs
//===----------------------------------------------------------------------===

TEST(PsMachineTest, FaddsAreAtomic) {
  auto P = prog("atomic x;\n"
                "thread { a := fadd(x, 1) @ rlx rlx; return a; }\n"
                "thread { b := fadd(x, 1) @ rlx rlx; return b; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  // One fadd reads 0, the other must read 1: total increment is 2.
  EXPECT_TRUE(B.containsStr("ret(0,1)"));
  EXPECT_TRUE(B.containsStr("ret(1,0)"));
  EXPECT_FALSE(B.containsStr("ret(0,0)")) << "updates attach to the read";
  EXPECT_FALSE(B.containsStr("ret(1,1)"));
}

TEST(PsMachineTest, CasMutualExclusion) {
  auto P = prog("atomic l;\n"
                "thread { a := cas(l, 0, 1) @ acq rel; return a; }\n"
                "thread { b := cas(l, 0, 1) @ acq rel; return b; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_TRUE(B.containsStr("ret(0,1)"));
  EXPECT_TRUE(B.containsStr("ret(1,0)"));
  EXPECT_FALSE(B.containsStr("ret(0,0)")) << "both CASes cannot win";
}

//===----------------------------------------------------------------------===
// Promises and certification
//===----------------------------------------------------------------------===

TEST(PsMachineTest, PromiseRequiresCertification) {
  // A thread that never writes x cannot sustain a promise to x; with the
  // promise budget the only behaviors are the promise-free ones.
  auto P = prog("atomic x;\n"
                "thread { a := x@rlx; return a; }\n"
                "thread { x@rlx := 1; return 0; }");
  PsBehaviorSet B = explorePsna(*P, cfg(/*Promises=*/1));
  EXPECT_TRUE(B.containsStr("ret(0,0)"));
  EXPECT_TRUE(B.containsStr("ret(1,0)"));
  EXPECT_EQ(B.All.size(), 2u);
}

TEST(PsMachineTest, LowerAllowsUndefFulfillment) {
  // The thread promises x = 1 but the actual write is undef (via a racy
  // read); lowering the promise to undef lets it be fulfilled. Mirrors
  // Appendix E's motivation.
  auto P = prog("na d; atomic x, y;\n"
                "thread { a := d@na; x@rlx := a; b := y@rlx; return b; }\n"
                "thread { c := x@rlx; y@rlx := c; d@na := 1; return c; }");
  PsBehaviorSet B = explorePsna(*P, cfg(/*Promises=*/1));
  // Thread 0 can promise x = undef (or lower a defined promise), thread 1
  // reads it, passes it through y; thread 0 reads it back.
  EXPECT_TRUE(B.containsStr("ret(undef,undef)"));
}

//===----------------------------------------------------------------------===
// Witness extraction
//===----------------------------------------------------------------------===

TEST(PsWitnessTest, Example51WitnessGoesThroughAPromise) {
  auto P = prog("na x; atomic y;\n"
                "thread { a := x@na; y@rlx := 1; return a; }\n"
                "thread { b := y@rlx; if (b == 1) { x@na := 1; } "
                "return b; }");
  std::vector<PsMachineState> Path =
      findPsnaWitness(*P, cfg(/*Promises=*/1), "ret(undef,1)");
  ASSERT_FALSE(Path.empty());
  // The path starts at the initial state and ends terminated.
  EXPECT_TRUE(Path.front().Mem.msgs(0).size() == 1 &&
              Path.front().Mem.msgs(1).size() == 1);
  EXPECT_TRUE(Path.back().allDone());
  // Some intermediate state carries an outstanding promise — the paper's
  // execution needs one.
  bool SawPromise = false;
  for (const PsMachineState &S : Path)
    for (const PsThread &T : S.Threads)
      SawPromise |= !T.Promises.empty();
  EXPECT_TRUE(SawPromise);
}

TEST(PsWitnessTest, UnreachableBehaviorHasNoWitness) {
  auto P = prog("atomic y;\n"
                "thread { a := y@rlx; return a; }");
  EXPECT_TRUE(findPsnaWitness(*P, cfg(), "ret(7)").empty());
  EXPECT_FALSE(findPsnaWitness(*P, cfg(), "ret(0)").empty());
}

//===----------------------------------------------------------------------===
// Normalization
//===----------------------------------------------------------------------===

TEST(PsMachineTest, NormalizationMergesIsomorphicStates) {
  // Two relaxed writes to different locations commute up to timestamps;
  // exploration should stay tiny thanks to normalization.
  auto P = prog("atomic x, y;\n"
                "thread { x@rlx := 1; return 0; }\n"
                "thread { y@rlx := 1; return 0; }");
  PsBehaviorSet B = explorePsna(*P, cfg());
  EXPECT_EQ(B.All.size(), 1u);
  EXPECT_LT(B.StatesExplored, 40u) << "state dedup must be effective";
}

TEST(PsMemoryTest, FromMessagesRoundTrips) {
  PsMemory M = PsMemory::initial(2);
  PsMessage A;
  A.Loc = 0;
  A.From = Rational(1, 2);
  A.To = Rational(1);
  A.V = Value::of(1);
  A.MView = View::single(2, 0, Rational(1));
  M.insert(A);
  PsMessage B;
  B.Loc = 1;
  B.From = Rational(0);
  B.To = Rational(1, 3);
  B.Valueless = true;
  M.insert(B);

  std::vector<PsMessage> All;
  for (unsigned L = 0; L != 2; ++L)
    for (const PsMessage &Msg : M.msgs(L))
      All.push_back(Msg);
  PsMemory M2 = PsMemory::fromMessages(2, All);
  EXPECT_TRUE(M == M2);
  ASSERT_NE(M2.find(MsgId{0, Rational(1)}), nullptr);
  EXPECT_TRUE(M2.find(MsgId{1, Rational(1, 3)})->Valueless);
}

TEST(PsMachineTest, NormalizationIsIdempotentAndOrderPreserving) {
  auto P = prog("atomic x; na y;\n"
                "thread { x@rlx := 1; y@na := 1; x@rel := 0; return 0; }\n"
                "thread { a := x@acq; return a; }");
  PsMachine M(*P, PsConfig());
  // Drive a few steps and check normalize ∘ normalize = normalize and
  // that message order per location is unchanged by ranking.
  PsMachineState S = M.initialState();
  for (unsigned Step = 0; Step != 3; ++Step) {
    std::vector<PsMachineState> Succ = M.threadSuccessors(S, 0);
    ASSERT_FALSE(Succ.empty());
    S = Succ.front();
    std::vector<Value> OrderBefore;
    for (const PsMessage &Msg : S.Mem.msgs(0))
      OrderBefore.push_back(Msg.Valueless ? Value::undef() : Msg.V);
    PsMachineState Twice = S;
    Twice.normalize();
    EXPECT_TRUE(S == Twice) << "normalize must be idempotent (successors "
                               "are already normalized)";
    std::vector<Value> OrderAfter;
    for (const PsMessage &Msg : Twice.Mem.msgs(0))
      OrderAfter.push_back(Msg.Valueless ? Value::undef() : Msg.V);
    EXPECT_EQ(OrderBefore, OrderAfter);
  }
}
