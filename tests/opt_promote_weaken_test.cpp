//===- tests/opt_promote_weaken_test.cpp - Extension passes ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The two whole-program extension passes: register promotion (RaceLint-
// justified ownership) and fence/mode weakening (atlas-justified rules),
// each certified per run by the PS^na translation validator (Def 5.3
// outcome inclusion), plus the pipeline sweeps — litmus corpus and seeded
// random programs — that must validate bit-identically across worker
// counts.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"
#include "opt/PromotePass.h"
#include "opt/WeakenPass.h"

#include "adequacy/RandomProgram.h"
#include "analysis/RaceLint.h"
#include "lang/Printer.h"
#include "litmus/Corpus.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

uint64_t stat(const PassResult &R, const std::string &Key) {
  for (const auto &[K, V] : R.Stats)
    if (K == Key)
      return V;
  return 0;
}

/// Whole-program certification with the test-friendly binary domain.
ValidationResult psCertify(const Program &Src, const Program &Tgt) {
  PsConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  return validatePsTransform(Src, Tgt, Cfg);
}

} // namespace

//===----------------------------------------------------------------------===
// Register promotion
//===----------------------------------------------------------------------===

TEST(PromoteTest, PromotesAThreadLocalLocation) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; a := x@na; x@na := 0; return a; }");
  PassResult R = runPromotePass(*P);
  EXPECT_EQ(stat(R, "locations"), 1u);
  EXPECT_EQ(R.Rewrites, 3u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find("x@na"), std::string::npos) << Printed;
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(PromoteTest, PromotesPerThreadPrivateLocations) {
  // Two threads, each owning a distinct non-atomic location: both are
  // promoted, and the whole-program check still certifies the pair.
  auto P = prog("na x, y;\n"
                "thread { x@na := 1; a := x@na; return a; }\n"
                "thread { y@na := 1; b := y@na; return b; }");
  PassResult R = runPromotePass(*P);
  EXPECT_EQ(stat(R, "locations"), 2u);
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(PromoteTest, SharedLocationIsNotPromoted) {
  // Read-read sharing is race-free but still shared: ownership fails.
  auto P = prog("na x;\n"
                "thread { a := x@na; return a; }\n"
                "thread { b := x@na; return b; }");
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  EXPECT_NE(Rep.Verdict, analysis::RaceVerdict::PotentiallyRacy);
  LocSet Promotable = promotableLocs(*P, Rep);
  EXPECT_TRUE(Promotable.isEmpty());
  PassResult R = runPromotePass(*P);
  EXPECT_EQ(R.Rewrites, 0u);
  EXPECT_EQ(stat(R, "rejected_shared"), 1u);
}

// Satellite boundary: a location with a static race witness must never be
// promoted, whatever the footprints look like. Example 5.1's `x` is the
// canonical witness (one thread reads it unguarded, the other writes it
// behind a relaxed flag).
TEST(PromoteTest, RacyWitnessLocationIsNeverPromoted) {
  const LitmusCase &C = litmusCaseByName("ex5.1-promise-racy-read");
  auto P = prog(C.Text);
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  ASSERT_EQ(Rep.Verdict, analysis::RaceVerdict::PotentiallyRacy);
  ASSERT_TRUE(Rep.Witness.has_value());
  LocSet Promotable = promotableLocs(*P, Rep);
  EXPECT_FALSE(Promotable.contains(Rep.Witness->Loc));
  PassResult R = runPromotePass(*P);
  EXPECT_GE(stat(R, "rejected_racy") + stat(R, "rejected_shared"), 1u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_NE(Printed.find("x@na"), std::string::npos)
      << "racy x must stay in memory:\n"
      << Printed;
}

// The promise-ablation twin decides the same way: classification is a
// function of the program text, not of the PS^na budgets that differ
// between the two corpus entries.
TEST(PromoteTest, Ex51AblationClassifiesIdentically) {
  auto P = prog(litmusCaseByName("ex5.1-no-promises").Text);
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  LocSet Promotable = promotableLocs(*P, Rep);
  EXPECT_TRUE(Promotable.isEmpty());
  EXPECT_EQ(runPromotePass(*P).Rewrites, 0u);
}

TEST(PromoteTest, AtomicLocationsAreUntouched) {
  auto P = prog("atomic y;\n"
                "thread { y@rlx := 1; a := y@rlx; return a; }");
  PassResult R = runPromotePass(*P);
  EXPECT_EQ(R.Rewrites, 0u);
  EXPECT_EQ(stat(R, "locations"), 0u);
}

TEST(PromoteTest, FreshRegisterAvoidsCollisions) {
  // The obvious name p_x is taken; the pass must pick a fresh one and
  // still certify.
  auto P = prog("na x;\n"
                "thread { p_x := 7; x@na := 1; a := x@na; return a + p_x; }");
  PassResult R = runPromotePass(*P);
  EXPECT_EQ(stat(R, "locations"), 1u);
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
  std::string Printed = printProgram(*R.Prog);
  EXPECT_NE(Printed.find("p_x_"), std::string::npos) << Printed;
}

//===----------------------------------------------------------------------===
// Fence / mode weakening
//===----------------------------------------------------------------------===

TEST(WeakenTest, AbsorbsAdjacentSubsumingFences) {
  auto P = prog("atomic y;\n"
                "thread { y@rlx := 1; fence @ sc; fence @ acq; a := y@rlx; "
                "return a; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(stat(R, "fence_pairs"), 1u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_NE(Printed.find("fence @ sc"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("fence @ acq"), std::string::npos) << Printed;
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(WeakenTest, KeepsNonSubsumingFencePairs) {
  auto P = prog("atomic y;\n"
                "thread { fence @ acq; fence @ rel; a := y@rlx; return a; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(stat(R, "fence_pairs"), 0u);
}

TEST(WeakenTest, DropsFencesInAtomicFreeThreads) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; fence @ sc; a := x@na; return a; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(stat(R, "thread_local_fences"), 1u);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find("fence"), std::string::npos) << Printed;
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(WeakenTest, KeepsFencesNextToAtomics) {
  // Message passing: the release fence orders the data store before the
  // flag store; weakening it would be caught by the validator, so the
  // pass must not even try.
  auto P = prog("na d; atomic f;\n"
                "thread { d@na := 1; fence @ rel; f@rlx := 1; return 0; }\n"
                "thread { a := f@rlx; fence @ acq; if (a == 1) { b := d@na; } "
                "return a; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(R.Rewrites, 0u);
  EXPECT_EQ(stat(R, "thread_local_fences"), 0u);
}

TEST(WeakenTest, WeakensModesOnThreadLocalAtomics) {
  auto P = prog("atomic y;\n"
                "thread { y@rel := 1; a := y@acq; b := fadd(y, 1) @ acq rel; "
                "return a + b; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(stat(R, "weakened_modes"), 3u) << printProgram(*R.Prog);
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find("acq"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("rel"), std::string::npos) << Printed;
  ValidationResult V = psCertify(*P, *R.Prog);
  EXPECT_TRUE(V.Ok) << V.Counterexample;
}

TEST(WeakenTest, KeepsModesOnSharedAtomics) {
  auto P = prog("na d; atomic f;\n"
                "thread { d@na := 1; f@rel := 1; return 0; }\n"
                "thread { a := f@acq; if (a == 1) { b := d@na; } return a; }");
  PassResult R = runWeakenPass(*P);
  EXPECT_EQ(stat(R, "weakened_modes"), 0u);
  EXPECT_EQ(R.Rewrites, 0u);
}

//===----------------------------------------------------------------------===
// Pipeline integration: whole-program validation, sweeps, determinism
//===----------------------------------------------------------------------===

namespace {

PipelineOptions extensionPipeline(unsigned NumThreads) {
  PipelineOptions Opts;
  Opts.EnablePromote = true;
  Opts.EnableWeaken = true;
  Opts.Cfg.Domain = ValueDomain::binary();
  Opts.PsCfg.Domain = ValueDomain::binary();
  Opts.PsCfg.MaxStates = 50000;
  Opts.PsCfg.CertNodeBudget = 2000;
  Opts.NumThreads = NumThreads;
  return Opts;
}

/// Serializes the observable pipeline outcome: the printed final program
/// plus every report line's verdict-relevant fields (times excluded).
std::string outcomeKey(const PipelineResult &R) {
  std::string Out = printProgram(*R.Prog);
  Out += "| total=" + std::to_string(R.TotalRewrites);
  for (const PassReport &PR : R.Reports) {
    Out += "\n" + PR.Name + " rewrites=" + std::to_string(PR.Rewrites) +
           " method=" + validationMethodName(PR.Method) +
           " validated=" + (PR.Validated ? "1" : "0") +
           " bounded=" + (PR.ValidationBounded ? "1" : "0") +
           " err=" + PR.Error;
    for (const auto &[K, V] : PR.Stats)
      Out += " " + K + "=" + std::to_string(V);
  }
  return Out;
}

} // namespace

TEST(ExtensionPipelineTest, ReportsCarryMethodAndStats) {
  auto P = prog("na x;\n"
                "thread { x@na := 1; fence @ sc; a := x@na; return a; }");
  PipelineResult R = runPipeline(*P, extensionPipeline(1));
  EXPECT_TRUE(R.AllValidated);
  bool SawPromote = false, SawWeaken = false;
  for (const PassReport &PR : R.Reports) {
    if (PR.Name == "promote") {
      SawPromote = true;
      EXPECT_EQ(PR.Method, ValidationMethod::Psna);
      EXPECT_TRUE(PR.Validated) << PR.Error;
      EXPECT_GE(PR.Rewrites, 1u);
    }
    if (PR.Name == "weaken") {
      SawWeaken = true;
      EXPECT_EQ(PR.Method, ValidationMethod::Psna);
      EXPECT_TRUE(PR.Validated) << PR.Error;
    }
  }
  EXPECT_TRUE(SawPromote);
  EXPECT_TRUE(SawWeaken);
  // End to end the program needs neither memory nor fences.
  std::string Printed = printProgram(*R.Prog);
  EXPECT_EQ(Printed.find("x@na"), std::string::npos) << Printed;
  EXPECT_EQ(Printed.find("fence"), std::string::npos) << Printed;
}

TEST(ExtensionPipelineTest, LitmusCorpusSweepValidates) {
  for (const LitmusCase &C : litmusCorpus()) {
    auto P = prog(C.Text);
    PipelineResult R = runPipeline(*P, extensionPipeline(1));
    EXPECT_TRUE(R.AllValidated) << C.Name;
    for (const PassReport &PR : R.Reports)
      EXPECT_TRUE(PR.Error.empty()) << C.Name << "/" << PR.Name << ": "
                                    << PR.Error;
  }
}

TEST(ExtensionPipelineTest, RefinementCorpusSourcesValidate) {
  for (const RefinementCase &C : refinementCorpus()) {
    if (C.HasLoops)
      continue; // loop certification is exercised by the LICM suite
    auto P = prog(C.Src);
    PipelineResult R = runPipeline(*P, extensionPipeline(1));
    EXPECT_TRUE(R.AllValidated) << C.Name;
  }
}

// The fuzz sweep: seeded random concurrent programs through the full
// extension pipeline. Every pass on every program must validate, and the
// whole outcome — final program, rewrite counts, per-pass stats and
// verdicts — must be bit-identical across validator worker counts.
TEST(ExtensionPipelineTest, RandomSweepIsValidatedAndWorkerInvariant) {
  struct Tier {
    unsigned Threads;
    unsigned Count;
  };
  const Tier Tiers[] = {{1, 120}, {2, 80}, {3, 16}};
  Rng R(20260809);
  unsigned Ran = 0, Rewritten = 0;
  for (const Tier &T : Tiers) {
    for (unsigned I = 0; I != T.Count; ++I) {
      std::string Text = randomConcurrentProgram(R, T.Threads);
      auto P = prog(Text);
      PipelineResult R1 = runPipeline(*P, extensionPipeline(1));
      ASSERT_TRUE(R1.AllValidated) << Text;
      std::string Key = outcomeKey(R1);
      for (unsigned W : {2u, 8u}) {
        PipelineResult RW = runPipeline(*P, extensionPipeline(W));
        ASSERT_TRUE(RW.AllValidated) << Text << " (workers=" << W << ")";
        ASSERT_EQ(outcomeKey(RW), Key)
            << Text << " diverges at workers=" << W;
      }
      Rewritten += R1.TotalRewrites != 0 ? 1 : 0;
      ++Ran;
    }
  }
  EXPECT_EQ(Ran, 216u);
  // The sweep must actually exercise the passes, not vacuously validate
  // identity runs.
  EXPECT_GE(Rewritten, 20u) << "random corpus too tame";
}
