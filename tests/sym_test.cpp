//===- tests/sym_test.cpp - Symbolic refinement backend (E23) -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Differential validation of the symbolic backend (src/sym) against the
// enumerative advanced checker: over the refinement + extension corpora,
// the transformation atlas shapes, RealWorld protocol threads, and random
// programs. The contract under test is soundness, not completeness —
//
//   * symbolic Sound   must never meet an enumerative counterexample,
//   * symbolic Unsound must carry an enumerative-confirmed witness,
//   * Inconclusive is always legal (but regressions in decision coverage
//     are pinned by the sym-summary baseline, scripts/check_bench_baseline.py).
//
// Any disagreement is a hard test failure. The suite also pins the
// tentpole claim: spin-loop RealWorld threads where the enumerative
// checker can only return a truncated verdict are *decided* here.
//
//===----------------------------------------------------------------------===//

#include "adequacy/RandomProgram.h"
#include "guard/Guard.h"
#include "litmus/Corpus.h"
#include "litmus/RealWorld.h"
#include "memo/MemoContext.h"
#include "obs/Telemetry.h"
#include "seq/AdvancedRefinement.h"
#include "sym/SymEngine.h"
#include "sym/SymSolver.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <string>

using namespace pseq;
using sym::SymOptions;
using sym::SymResult;
using sym::SymVerdict;

namespace {

SeqConfig configFor(const RefinementCase &RC) {
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  return Cfg;
}

/// One differential comparison: runs both lanes and fails on any
/// soundness-relevant disagreement. \returns the symbolic result for
/// callers that want to assert more.
SymResult diffCheck(const Program &Src, const Program &Tgt, SeqConfig Cfg,
                    const std::string &What,
                    SymOptions Opts = SymOptions()) {
  SymResult S = sym::checkSymRefinement(Src, Tgt, Cfg, Opts);
  RefinementResult E = checkAdvancedRefinement(Src, Tgt, Cfg);
  if (S.Verdict == SymVerdict::Sound) {
    // A bounded enumerative positive cannot contradict us; an exact or
    // bounded *negative* carries a concrete counterexample and does.
    EXPECT_TRUE(E.Holds) << What
                         << ": symbolic Sound vs enumerative counterexample\n"
                         << E.Counterexample;
  } else if (S.Verdict == SymVerdict::Unsound) {
    EXPECT_FALSE(E.Holds && !E.Bounded)
        << What << ": symbolic Unsound vs exact enumerative Holds";
    EXPECT_FALSE(S.Witness.empty())
        << What << ": Unsound verdict must carry a confirmed witness";
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===
// Smoke: the engine on the simplest possible inputs.
//===----------------------------------------------------------------------===

TEST(SymSmokeTest, TrivialIdentityIsSound) {
  auto P = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  auto Q = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  SymResult R = sym::checkSymRefinement(*P, *Q);
  EXPECT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
  EXPECT_GT(R.InitialStates, 0u);
  EXPECT_GT(R.Nodes, 0u);
}

TEST(SymSmokeTest, ConstantReturnIsSound) {
  auto P = prog("na x;\nthread { return 1; }");
  auto Q = prog("na x;\nthread { return 1; }");
  SymResult R = sym::checkSymRefinement(*P, *Q);
  EXPECT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
}

TEST(SymSmokeTest, DifferentConstantReturnIsUnsound) {
  auto P = prog("na x;\nthread { return 1; }");
  auto Q = prog("na x;\nthread { return 2; }");
  SymResult R = sym::checkSymRefinement(*P, *Q);
  EXPECT_EQ(R.Verdict, SymVerdict::Unsound) << R.Witness;
  EXPECT_FALSE(R.Witness.empty());
}

TEST(SymSmokeTest, UBSourceRefinesEverything) {
  auto Src = prog("na x;\nthread { abort; }");
  auto Tgt = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  SymResult R = sym::checkSymRefinement(*Src, *Tgt);
  EXPECT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
}

TEST(SymSmokeTest, RelaxedMessagePassingIdentity) {
  const char *Text = "atomic f; na d;\n"
                     "thread { d@na := 1; f@rel := 1; return 0; }";
  auto P = prog(Text);
  auto Q = prog(Text);
  SymResult R = sym::checkSymRefinement(*P, *Q);
  EXPECT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
}

TEST(SymSmokeTest, RedundantLoadEliminationAgrees) {
  // Two adjacent relaxed reads collapsed into one. As *thread-local trace*
  // refinement this does not hold (the target emits one read label where
  // the source emits two), and the enumerative lane refutes it — the
  // symbolic lane must land on the same side, witness confirmed.
  auto Src = prog("atomic x;\n"
                  "thread { a := x@rlx; b := x@rlx; return a; }");
  auto Tgt = prog("atomic x;\n"
                  "thread { a := x@rlx; b := a; return a; }");
  SymResult R = diffCheck(*Src, *Tgt, SeqConfig(), "rle");
  EXPECT_EQ(R.Verdict, SymVerdict::Unsound) << R.Witness;
}

TEST(SymSmokeTest, SpinLoopSelfRefinementConverges) {
  // The canonical corpus flag-wait shape: an acquire spin loop. The
  // enumerative lane unrolls this to the step budget; path merging must
  // converge it to a handful of product nodes, and widening must keep
  // the node count independent of the step budget.
  const char *Text = "atomic f;\n"
                     "thread {\n"
                     "  a := f@acq; while (a != 1) { a := f@acq; }\n"
                     "  return a;\n"
                     "}";
  auto P = prog(Text);
  auto Q = prog(Text);
  SeqConfig Cfg;
  Cfg.StepBudget = 160; // corpus-scale budget; must not matter here
  SymResult R = sym::checkSymRefinement(*P, *Q, Cfg);
  EXPECT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
  EXPECT_LT(R.Nodes, 4000u) << "spin loop failed to converge by merging";
}

//===----------------------------------------------------------------------===
// Differential sweep: refinement + extension corpora.
//===----------------------------------------------------------------------===

namespace {

class SymCorpusTest : public ::testing::TestWithParam<RefinementCase> {};

std::vector<RefinementCase> allRefinementCases() {
  std::vector<RefinementCase> All = refinementCorpus();
  const std::vector<RefinementCase> &Ext = extensionCorpus();
  All.insert(All.end(), Ext.begin(), Ext.end());
  return All;
}

std::string caseTestName(
    const ::testing::TestParamInfo<RefinementCase> &Info) {
  std::string Name = Info.param.Name;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST_P(SymCorpusTest, AgreesWithEnumerativeLane) {
  const RefinementCase &RC = GetParam();
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);
  ASSERT_TRUE(sameLayout(*Src, *Tgt)) << RC.Name;
  SymResult S = diffCheck(*Src, *Tgt, configFor(RC), RC.Name);
  // The corpus records the expected ⊑w verdict; the symbolic lane may
  // abstain but must never land on the other side of it.
  if (S.Verdict == SymVerdict::Sound) {
    EXPECT_TRUE(RC.AdvancedHolds)
        << RC.Name << ": symbolic Sound on a known-unsound pair";
  }
  if (S.Verdict == SymVerdict::Unsound) {
    EXPECT_FALSE(RC.AdvancedHolds)
        << RC.Name << ": symbolic Unsound on a known-sound pair\n"
        << S.Witness;
  }
}

TEST_P(SymCorpusTest, SelfRefinementNeverRefuted) {
  // Reflexivity: σ ⊑w σ always holds, so the symbolic verdict on a
  // self-pair is Sound or Inconclusive — never Unsound.
  const RefinementCase &RC = GetParam();
  auto Src = prog(RC.Src);
  auto Src2 = prog(RC.Src);
  SymResult S = sym::checkSymRefinement(*Src, *Src2, configFor(RC));
  EXPECT_NE(S.Verdict, SymVerdict::Unsound)
      << RC.Name << ": refuted reflexivity\n"
      << S.Witness;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SymCorpusTest,
                         ::testing::ValuesIn(allRefinementCases()),
                         caseTestName);

//===----------------------------------------------------------------------===
// The tentpole claim: RealWorld spin-loop threads the enumerative lane
// truncates on are decided symbolically.
//===----------------------------------------------------------------------===

TEST(SymRealWorldTest, DecidesWhereEnumerativeTruncates) {
  unsigned DecidedWhereTruncated = 0;
  unsigned Checked = 0;
  for (const RealWorldCase &RC : realWorldCorpus()) {
    if (RC.IsMutant)
      continue;
    auto P = prog(RC.Text);
    for (unsigned Tid = 0; Tid != P->numThreads(); ++Tid) {
      ++Checked;
      // Symbolic lane: default budgets, but no enumerative confirm — on
      // these programs one confirm run costs more than the whole sweep,
      // and an unconfirmed negative is reported Inconclusive anyway.
      SeqConfig Cfg;
      Cfg.Domain = RC.Domain;
      SymOptions Opts;
      Opts.ConfirmUnsound = false;
      SymResult S = sym::checkSymRefinement(*P, Tid, *P, Tid, Cfg, Opts);
      // Enumerative lane: budgets shrunk so the spin-loop protocols
      // truncate in milliseconds rather than hours (the oracle-game
      // product is what explodes, so MaxBehaviors alone does not bound
      // wall-clock), plus a deadline guard as the backstop. This is the
      // point of the tentpole: at *any* budget the enumerative lane can
      // afford here, it truncates; the symbolic fixpoint closes.
      SeqConfig ECfg = Cfg;
      ECfg.StepBudget = 16;
      ECfg.MaxBehaviors = 500;
      guard::ResourceGuard G;
      G.setDeadlineInMs(3000);
      ECfg.Guard = &G;
      RefinementResult E = checkAdvancedRefinement(*P, Tid, *P, Tid, ECfg);
      // Self-refinement: neither lane may refute it.
      EXPECT_TRUE(E.Holds || E.Bounded) << RC.Name << " tid " << Tid;
      EXPECT_NE(S.Verdict, SymVerdict::Unsound)
          << RC.Name << " tid " << Tid << "\n"
          << S.Witness;
      if (E.Bounded && S.Verdict == SymVerdict::Sound)
        ++DecidedWhereTruncated;
    }
  }
  EXPECT_GT(Checked, 0u);
  // The acceptance floor: at least two protocol threads where the
  // enumerative checker can only produce a truncated verdict but the
  // symbolic fixpoint closes exhaustively. (Today it is seven: both
  // spsc-ring threads, the ms-queue consumers, both rcu threads, and
  // the epoch writer.)
  EXPECT_GE(DecidedWhereTruncated, 2u)
      << "symbolic lane no longer beats enumerative truncation";
}

//===----------------------------------------------------------------------===
// Random-program differential sweep at 1/2/8 workers.
//===----------------------------------------------------------------------===

namespace {

struct SweepStats {
  unsigned Pairs = 0;
  unsigned Sound = 0;
  unsigned Unsound = 0;
  unsigned Inconclusive = 0;
};

SweepStats randomSweep(uint64_t Seed, unsigned NumPairs,
                       unsigned NumThreads) {
  Rng R(Seed);
  SweepStats St;
  for (unsigned I = 0; I != NumPairs; ++I) {
    RandomPair RP = randomRefinementPair(R);
    auto Src = prog(RP.Src);
    auto Tgt = prog(RP.Tgt);
    SeqConfig Cfg;
    Cfg.NumThreads = NumThreads;
    SymResult S =
        diffCheck(*Src, *Tgt, Cfg,
                  "random pair #" + std::to_string(I) + " (seed " +
                      std::to_string(Seed) + ", " + RP.Mutation + ")\nsrc:\n" +
                      RP.Src + "tgt:\n" + RP.Tgt);
    ++St.Pairs;
    if (S.Verdict == SymVerdict::Sound)
      ++St.Sound;
    else if (S.Verdict == SymVerdict::Unsound)
      ++St.Unsound;
    else
      ++St.Inconclusive;
  }
  return St;
}

} // namespace

TEST(SymRandomSweepTest, Workers1) {
  SweepStats St = randomSweep(/*Seed=*/0x5eed0001, /*NumPairs=*/80,
                              /*NumThreads=*/1);
  EXPECT_EQ(St.Pairs, 80u);
  // The sweep must actually decide things, not abstain across the board.
  EXPECT_GT(St.Sound + St.Unsound, St.Pairs / 2)
      << "symbolic lane abstained on most random pairs";
}

TEST(SymRandomSweepTest, Workers2) {
  SweepStats St = randomSweep(/*Seed=*/0x5eed0002, /*NumPairs=*/80,
                              /*NumThreads=*/2);
  EXPECT_EQ(St.Pairs, 80u);
  EXPECT_GT(St.Sound + St.Unsound, St.Pairs / 2);
}

TEST(SymRandomSweepTest, Workers8) {
  SweepStats St = randomSweep(/*Seed=*/0x5eed0008, /*NumPairs=*/80,
                              /*NumThreads=*/8);
  EXPECT_EQ(St.Pairs, 80u);
  EXPECT_GT(St.Sound + St.Unsound, St.Pairs / 2);
}

//===----------------------------------------------------------------------===
// Service plumbing: telemetry, memoization, solver interface, options.
//===----------------------------------------------------------------------===

TEST(SymServiceTest, TelemetryCountersFire) {
  obs::Telemetry Telem;
  auto P = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  auto Q = prog("na x;\nthread { x@na := 1; a := x@na; return a; }");
  SeqConfig Cfg;
  Cfg.Telem = &Telem;
  SymResult R = sym::checkSymRefinement(*P, *Q, Cfg);
  ASSERT_EQ(R.Verdict, SymVerdict::Sound) << R.Witness;
  EXPECT_EQ(Telem.Counters.counter("sym.checks"), 1u);
  EXPECT_EQ(Telem.Counters.counter("sym.sound"), 1u);
  EXPECT_GT(Telem.Counters.counter("sym.nodes"), 0u);

  auto U = prog("na x;\nthread { return 1; }");
  auto V = prog("na x;\nthread { return 2; }");
  SymResult R2 = sym::checkSymRefinement(*U, *V, Cfg);
  ASSERT_EQ(R2.Verdict, SymVerdict::Unsound);
  EXPECT_EQ(Telem.Counters.counter("sym.unsound"), 1u);
  EXPECT_EQ(Telem.Counters.counter("sym.confirm.runs"), 1u);
}

TEST(SymServiceTest, MemoizationHitsOnSecondRun) {
  memo::MemoContext Memo;
  obs::Telemetry Telem;
  const char *Text = "atomic f;\n"
                     "thread { a := f@acq; while (a != 1) { a := f@acq; }\n"
                     "  return a; }";
  auto P = prog(Text);
  auto Q = prog(Text);
  SeqConfig Cfg;
  Cfg.Memo = &Memo;
  Cfg.Telem = &Telem;
  SymResult R1 = sym::checkSymRefinement(*P, *Q, Cfg);
  SymResult R2 = sym::checkSymRefinement(*P, *Q, Cfg);
  EXPECT_EQ(R1.Verdict, R2.Verdict);
  EXPECT_EQ(R1.Nodes, R2.Nodes);
  EXPECT_EQ(Telem.Counters.counter("sym.memo.hits"), 1u);

  // A different ConfigSalt must not share the entry.
  SeqConfig Salted = Cfg;
  Salted.ConfigSalt = 1234;
  SymResult R3 = sym::checkSymRefinement(*P, *Q, Salted);
  EXPECT_EQ(R3.Verdict, R1.Verdict);
  EXPECT_EQ(Telem.Counters.counter("sym.memo.hits"), 1u);
}

TEST(SymServiceTest, BuiltinSolverDecidesIntervalCongruence) {
  auto Solver = sym::makeBuiltinSolver();
  ASSERT_NE(Solver, nullptr);
  EXPECT_STREQ(Solver->name(), "builtin");
  using analysis::AbsDom;
  // x ∈ [0,1] is satisfiable; x ∈ ⊥ is not.
  std::vector<sym::SymConstraint> Sat{{1, AbsDom::range(0, 1)}};
  EXPECT_EQ(Solver->checkSat(Sat), sym::SymSolver::Sat::Sat);
  std::vector<sym::SymConstraint> Unsat{{1, AbsDom::bottom()}};
  EXPECT_EQ(Solver->checkSat(Unsat), sym::SymSolver::Sat::Unsat);
}

TEST(SymServiceTest, ConfirmUnsoundOffReportsInconclusive) {
  auto P = prog("na x;\nthread { return 1; }");
  auto Q = prog("na x;\nthread { return 2; }");
  SymOptions Opts;
  Opts.ConfirmUnsound = false;
  SymResult R = sym::checkSymRefinement(*P, *Q, SeqConfig(), Opts);
  EXPECT_EQ(R.Verdict, SymVerdict::Inconclusive);
  EXPECT_FALSE(R.Witness.empty()) << "symbolic witness note expected";
}

TEST(SymServiceTest, TinyNodeBudgetIsInconclusiveNotWrong) {
  const char *Text = "atomic f;\n"
                     "thread { a := f@acq; while (a != 1) { a := f@acq; }\n"
                     "  return a; }";
  auto P = prog(Text);
  auto Q = prog(Text);
  SymOptions Opts;
  Opts.MaxNodes = 2;
  SymResult R = sym::checkSymRefinement(*P, *Q, SeqConfig(), Opts);
  EXPECT_EQ(R.Verdict, SymVerdict::Inconclusive);
  EXPECT_NE(R.Cause, TruncationCause::None);
}
