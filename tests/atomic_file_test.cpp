//===- tests/atomic_file_test.cpp - Crash-safe whole-file writes ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The crash contract of support::writeFileAtomic: a reader at any moment —
// including while a writer process is being SIGKILLed mid-write — sees
// either the previous complete file or the new complete file, never a
// truncated hybrid. The kill-mid-write test makes that literal: a child
// process rewrites a JSON report in a tight loop while the parent kills it
// at a random point and then parses whatever is on disk.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonValue.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <ctime>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#define PSEQ_TEST_POSIX 1
#endif

using namespace pseq;

#if defined(__SANITIZE_THREAD__)
#define PSEQ_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSEQ_TEST_TSAN 1
#endif
#endif
#ifndef PSEQ_TEST_TSAN
#define PSEQ_TEST_TSAN 0
#endif

namespace {

std::string makeTempDir() {
  char Template[] = "/tmp/pseq-atomic-test-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "/tmp";
}

TEST(AtomicFileTest, WriteReadRoundTrip) {
  std::string Dir = makeTempDir();
  std::string Path = Dir + "/out.txt";
  std::string Content = "line1\nline2\n";
  std::string Err;
  ASSERT_TRUE(support::writeFileAtomic(Path, Content, &Err)) << Err;
  std::string Back;
  ASSERT_TRUE(support::readFileAll(Path, Back, &Err)) << Err;
  EXPECT_EQ(Back, Content);

  // Overwrite replaces wholesale, including shrinking the file.
  ASSERT_TRUE(support::writeFileAtomic(Path, "x", &Err)) << Err;
  ASSERT_TRUE(support::readFileAll(Path, Back, &Err)) << Err;
  EXPECT_EQ(Back, "x");
}

TEST(AtomicFileTest, BinaryContentSurvives) {
  std::string Dir = makeTempDir();
  std::string Path = Dir + "/bin";
  std::string Content;
  for (int I = 0; I != 256; ++I)
    Content += static_cast<char>(I);
  ASSERT_TRUE(support::writeFileAtomic(Path, Content));
  std::string Back;
  ASSERT_TRUE(support::readFileAll(Path, Back));
  EXPECT_EQ(Back, Content);
}

TEST(AtomicFileTest, FailureReportsTargetDirectory) {
  std::string Err;
  EXPECT_FALSE(support::writeFileAtomic("/nonexistent-dir-xyz/file", "x",
                                        &Err));
  EXPECT_FALSE(Err.empty());
  std::string Out;
  EXPECT_FALSE(support::readFileAll("/nonexistent-dir-xyz/file", Out, &Err));
  EXPECT_FALSE(Err.empty());
}

#ifdef PSEQ_TEST_POSIX

/// Builds a telemetry report big enough that a mid-write kill is likely to
/// land between the temp-file write and the rename at least sometimes.
void fillBigTelemetry(obs::Telemetry &T) {
  for (int I = 0; I != 400; ++I)
    T.Counters.add("counter.with.a.reasonably.long.name." +
                       std::to_string(I),
                   static_cast<uint64_t>(I));
}

TEST(AtomicFileTest, KillMidWriteLeavesCompleteJsonOrNothing) {
  if (PSEQ_TEST_TSAN)
    GTEST_SKIP() << "fork-based tests are skipped under TSan";

  std::string Dir = makeTempDir();
  std::string Path = Dir + "/report.json";
  obs::Telemetry T;
  fillBigTelemetry(T);

  // Several rounds with different kill delays sample different points of
  // the write cycle (buffering, fsync, rename).
  for (int Round = 0; Round != 6; ++Round) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: rewrite the report forever; only SIGKILL ends this.
      for (;;)
        obs::writeReportJson(T, Path);
    }
    struct timespec TS = {0, (Round + 1) * 700 * 1000}; // 0.7ms steps
    nanosleep(&TS, nullptr);
    kill(Pid, SIGKILL);
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFSIGNALED(WStatus));

    // Whatever is on disk now must be absent or a complete JSON document
    // — a truncated file is the bug this layer exists to prevent.
    std::string Bytes;
    if (!support::readFileAll(Path, Bytes))
      continue; // killed before any rename landed: acceptable
    obs::JsonValue V;
    ASSERT_TRUE(obs::JsonValue::parse(Bytes, V))
        << "round " << Round << ": torn report (" << Bytes.size()
        << " bytes)";
    ASSERT_TRUE(V.isObject());
    EXPECT_NE(V.field("counters"), nullptr);
  }
}

#endif // PSEQ_TEST_POSIX

} // namespace
