//===- tests/trace_determinism_test.cpp - Telemetry thread-invariance -----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The flight recorder's determinism contract: running the engines at
// --threads 1, 2, and 8 with tracing on must produce bit-identical counters
// and bit-identical non-timing histograms (sizes/counts — keys without a
// ".ns"/".us"/".ms" suffix). Gauges (pool/guard/memo occupancy, peak
// frontier) and timing histograms are thread-count-dependent by nature and
// excluded. Span *sets* (the multiset of recorded span names) must also be
// stable for the level-synchronous explorer.
//
// This is the test teeth behind the DESIGN.md claim that the PS^na frontier
// evolves identically for every worker count (level-synchronous BFS merged
// in pop order) — if instrumentation is ever moved somewhere
// schedule-dependent, this fails.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "obs/Telemetry.h"
#include "psna/Explorer.h"
#include "seq/BehaviorEnum.h"

#include "gtest/gtest.h"

#include <map>
#include <string>

using namespace pseq;

namespace {

/// Counters + non-timing histogram fingerprints after exploring the whole
/// litmus corpus with \p NumThreads workers and spans recorded.
struct CorpusTelemetry {
  std::map<std::string, uint64_t> Counters;
  /// Key -> (count, sum, min, max, bucket checksum): equal iff the
  /// histograms are bit-identical.
  std::map<std::string, std::string> Hists;
  std::map<std::string, uint64_t> SpanNames; ///< name -> multiplicity
};

std::string histFingerprint(const obs::Histogram &H) {
  std::string F = std::to_string(H.count()) + "/" + std::to_string(H.sum()) +
                  "/" + std::to_string(H.min()) + "/" +
                  std::to_string(H.max());
  for (unsigned B = 0; B < obs::Histogram::NumBuckets; ++B)
    if (H.bucket(B))
      F += "|" + std::to_string(B) + ":" + std::to_string(H.bucket(B));
  return F;
}

CorpusTelemetry explorePsnaCorpus(unsigned NumThreads) {
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  Telem.Spans = &Spans;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.NumThreads = NumThreads;
    Cfg.Telem = &Telem;
    explorePsna(*P, Cfg);
  }

  CorpusTelemetry Out;
  // Per-worker step counters (psna.explore.threadN) depend on the worker
  // count by construction; fold them into one total instead of dropping
  // the signal.
  uint64_t ThreadSteps = 0;
  for (const auto &[Name, V] : Telem.Counters.counters()) {
    if (Name.rfind("psna.explore.thread", 0) == 0)
      ThreadSteps += V;
    else
      Out.Counters[Name] = V;
  }
  Out.Counters["psna.explore.thread*"] = ThreadSteps;
  for (const auto &[Name, H] : Telem.Counters.histograms())
    if (!obs::isTimingHistKey(Name))
      Out.Hists[Name] = histFingerprint(H);
  for (unsigned L = 0; L < Spans.lanes(); ++L)
    for (const obs::SpanRecord &S : Spans.lane(L))
      ++Out.SpanNames[S.Name];
  return Out;
}

CorpusTelemetry enumerateSeqCorpus(unsigned NumThreads) {
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  Telem.Spans = &Spans;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    SeqConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.Universe = P->naLocs();
    Cfg.StepBudget = LC.StepBudget;
    Cfg.NumThreads = NumThreads;
    Cfg.Telem = &Telem;
    std::vector<Value> Mem(P->numLocs(), Value::of(0));
    for (unsigned T = 0; T < P->numThreads(); ++T) {
      SeqMachine M(*P, T, Cfg);
      enumerateBehaviors(M, M.initial(P->naLocs(), LocSet::empty(), Mem));
    }
  }

  CorpusTelemetry Out;
  Out.Counters = Telem.Counters.counters();
  for (const auto &[Name, H] : Telem.Counters.histograms())
    if (!obs::isTimingHistKey(Name))
      Out.Hists[Name] = histFingerprint(H);
  for (unsigned L = 0; L < Spans.lanes(); ++L)
    for (const obs::SpanRecord &S : Spans.lane(L))
      ++Out.SpanNames[S.Name];
  return Out;
}

void expectSameTelemetry(const CorpusTelemetry &A, const CorpusTelemetry &B,
                         const char *What, bool CompareSpans) {
  EXPECT_EQ(A.Counters, B.Counters) << What << ": counters diverged";
  EXPECT_EQ(A.Hists, B.Hists) << What << ": histograms diverged";
  // The serial path records whole-run spans (psna.explore) while the
  // pooled path records level/task spans, so span multisets only compare
  // between two pooled runs.
  if (CompareSpans) {
    EXPECT_EQ(A.SpanNames, B.SpanNames) << What << ": span set diverged";
  }
}

TEST(TraceDeterminismTest, PsnaCorpusTelemetryThreadInvariant) {
  CorpusTelemetry T1 = explorePsnaCorpus(1);
  CorpusTelemetry T2 = explorePsnaCorpus(2);
  CorpusTelemetry T8 = explorePsnaCorpus(8);
  // Sanity: the instrumentation actually fired.
  EXPECT_GT(T1.Counters.count("psna.explore.runs"), 0u);
  EXPECT_GT(T1.Hists.count("psna.explore.frontier"), 0u);
  EXPECT_GT(T1.Hists.count("psna.explore.behavior_set"), 0u);
  EXPECT_GT(T1.SpanNames.size(), 0u);
  expectSameTelemetry(T1, T2, "psna 1 vs 2", /*CompareSpans=*/false);
  expectSameTelemetry(T2, T8, "psna 2 vs 8", /*CompareSpans=*/true);
}

TEST(TraceDeterminismTest, SeqCorpusTelemetryThreadInvariant) {
  CorpusTelemetry T1 = enumerateSeqCorpus(1);
  CorpusTelemetry T2 = enumerateSeqCorpus(2);
  CorpusTelemetry T8 = enumerateSeqCorpus(8);
  EXPECT_GT(T1.Counters.count("seq.enum.behaviors_emitted"), 0u);
  EXPECT_GT(T1.Hists.count("seq.enum.behavior_set"), 0u);
  EXPECT_GT(T2.SpanNames.count("seq.enum"), 0u);
  // seq.task spans are NOT compared: the enumerator's phase-1 frontier
  // split targets N*4 tasks, so the task count is a function of the
  // worker count by design (only the merged *results* are invariant).
  expectSameTelemetry(T1, T2, "seq 1 vs 2", /*CompareSpans=*/false);
  expectSameTelemetry(T2, T8, "seq 2 vs 8", /*CompareSpans=*/false);
}

} // namespace
