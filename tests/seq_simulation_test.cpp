//===- tests/seq_simulation_test.cpp - Fig 6 simulation (Appendix A) ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The coinductive simulation checker: agrees with the trace-based advanced
// refinement on the loop-free corpus, and — its raison d'être — gives
// *exact* (Complete) verdicts on loop programs where trace enumeration is
// only bounded, exactly like the paper's Coq optimizer proof.
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "seq/Simulation.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pseq;

namespace {

class SimulationCorpusTest : public ::testing::TestWithParam<RefinementCase> {
};

} // namespace

TEST_P(SimulationCorpusTest, SoundAgainstAdvancedVerdicts) {
  const RefinementCase &RC = GetParam();
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  SimulationResult R = checkSimulation(*Src, *Tgt, Cfg);

  if (RC.AdvancedHolds) {
    // Simulation is a sound proof method for ⊑w; on this corpus it is also
    // complete (all the paper's positive examples are simulation-provable,
    // which is how the Coq optimizer certifies them).
    EXPECT_TRUE(R.Holds) << RC.Name << " (" << RC.PaperRef << ")\n"
                         << R.Counterexample;
  } else {
    // Anything failing ⊑w must fail simulation (soundness).
    EXPECT_FALSE(R.Holds)
        << RC.Name << ": simulation accepted a ⊑w-invalid pair";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, SimulationCorpusTest,
    ::testing::ValuesIn(refinementCorpus()),
    [](const ::testing::TestParamInfo<RefinementCase> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===
// Exactness on loops: the trace checkers only bound-verify these; the
// simulation closes the product graph coinductively.
//===----------------------------------------------------------------------===

TEST(SimulationLoopTest, LicmIsExactlyVerified) {
  const RefinementCase &RC = refinementCaseByName("ex1.3-licm");
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  SimulationResult R = checkSimulation(*Src, *Tgt, Cfg);
  EXPECT_TRUE(R.Holds) << R.Counterexample;
  EXPECT_TRUE(R.Complete)
      << "the product space is finite: the verdict must be exact";
  EXPECT_GT(R.ProductNodes, 0u);
}

TEST(SimulationLoopTest, ReadBeforeLoopIsExactlyVerified) {
  const RefinementCase &RC = refinementCaseByName("ex2.7-read-before-loop");
  auto Src = prog(RC.Src);
  auto Tgt = prog(RC.Tgt);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  SimulationResult R = checkSimulation(*Src, *Tgt, Cfg);
  EXPECT_TRUE(R.Holds) << R.Counterexample;
  EXPECT_TRUE(R.Complete);
}

TEST(SimulationLoopTest, InfiniteSilentLoopSimulatesItself) {
  // A genuinely divergent program: trace enumeration can never finish;
  // the coinductive fixpoint closes immediately.
  auto Src = prog("na x;\nthread { a := 1; while (a == 1) { skip; } "
                  "return 0; }");
  auto Tgt = prog("na x;\nthread { a := 1; while (a == 1) { skip; } "
                  "return 0; }");
  SimulationResult R = checkSimulation(*Src, *Tgt);
  EXPECT_TRUE(R.Holds);
  EXPECT_TRUE(R.Complete);
}

TEST(SimulationLoopTest, WriteBeforeDivergenceRejected) {
  // Example 2.7's exact shape with a genuinely infinite loop: hoisting
  // the write introduces it on the divergent path.
  auto Src = prog("na x;\nthread { a := 1; while (a == 1) { skip; } "
                  "x@na := 1; return 0; }");
  auto Tgt = prog("na x;\nthread { x@na := 1; a := 1; "
                  "while (a == 1) { skip; } return 0; }");
  SimulationResult R = checkSimulation(*Src, *Tgt);
  EXPECT_FALSE(R.Holds);
  EXPECT_TRUE(R.Complete) << "a definite counterexample, not a bound";
}

TEST(SimulationLoopTest, ReadBeforeDivergenceAccepted) {
  auto Src = prog("na x;\nthread { a := 1; while (a == 1) { skip; } "
                  "b := x@na; return 0; }");
  auto Tgt = prog("na x;\nthread { b := x@na; a := 1; "
                  "while (a == 1) { skip; } return 0; }");
  SimulationResult R = checkSimulation(*Src, *Tgt);
  EXPECT_TRUE(R.Holds) << R.Counterexample;
  EXPECT_TRUE(R.Complete);
}

TEST(SimulationLoopTest, UnboundedCounterLoopHandled) {
  // The loop counter grows without bound... except registers range over
  // the reachable value set, which the choose-driven guard keeps finite.
  // Per-iteration loads are forwarded from the hoisted preheader load.
  auto Src = prog("na x;\nthread {\n"
                  "  c := choose;\n"
                  "  while (c != 0) { a := x@na; b := a; c := choose; }\n"
                  "  return b;\n}");
  auto Tgt = prog("na x;\nthread {\n"
                  "  h := x@na;\n"
                  "  c := choose;\n"
                  "  while (c != 0) { a := h; b := a; c := choose; }\n"
                  "  return b;\n}");
  SeqConfig Cfg;
  Cfg.Domain = ValueDomain::binary();
  SimulationResult R = checkSimulation(*Src, *Tgt, Cfg);
  EXPECT_TRUE(R.Holds) << R.Counterexample;
  EXPECT_TRUE(R.Complete);
}

TEST(SimulationExtensionTest, SoundOnExtensionCorpus) {
  for (const RefinementCase &RC : extensionCorpus()) {
    auto Src = prog(RC.Src);
    auto Tgt = prog(RC.Tgt);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    SimulationResult R = checkSimulation(*Src, *Tgt, Cfg);
    EXPECT_EQ(R.Holds, RC.AdvancedHolds) << RC.Name << "\n"
                                         << R.Counterexample;
  }
}
