#!/usr/bin/env python3
"""Perf-regression gate for the memoization layer.

Two modes:

  check_bench_baseline.py --baseline BENCH_BASELINE.json --summary FILE
      FILE holds the output of `litmus_explorer --sweep N` (only the final
      "memo summary:" line is read; piping the whole stdout works). Fails
      when states_explored grew more than --tolerance (default 10%) over
      the baseline, when the cache hit-rate dropped, or when the run no
      longer beats the recorded no-memo state count by at least 2x.

  check_bench_baseline.py --bench-json FILE
      FILE is a bench_* --json dump. Sanity-checks the "memo" block: it
      must exist, report enabled=true, and count at least one explored
      state, so a silently unwired memo context fails loudly.

  check_bench_baseline.py --baseline BENCH_SERVER.json --server-json FILE
      FILE is a `validate_client --bench-out` dump from a warm-cache batch
      against validate_server. Fails on any coverage violation (missing or
      duplicate replies tracked by the client, failed jobs), or when the
      cross-request cache hit rate drops below the recorded floor.
      jobs/sec is printed but never gated — wall-clock throughput on
      shared CI runners is noise; the hit rate and coverage are the
      deterministic signals.

  check_bench_baseline.py --baseline BENCH_BASELINE.json --realworld-summary FILE
      FILE holds the output of `litmus_explorer --corpus realworld` (only
      the final "realworld summary:" line is read). Fails when the corpus
      shrinks below the recorded realworld_cases / realworld_protocols
      floors (the corpus may only grow), when any protocol loses its
      mutant (mutants < protocols), when a mutant's injected bug is no
      longer exhibited (bad_exhibited != mutants), on any annotation
      failure, when total states grow past --tolerance over
      realworld_states, or when throughput falls below the absurdly-low
      realworld_states_per_sec_floor (a machine-independent smoke floor,
      not a perf target).

  check_bench_baseline.py --baseline BENCH_BASELINE.json --sym-summary FILE
      FILE holds the output of `litmus_explorer --corpus realworld --method
      sym` (only the final "sym summary:" line is read). Fails on any
      symbolic-vs-enumerative disagreement (the zero-disagreement contract
      is the whole point of the differential sweep), when the number of
      protocol threads checked shrinks below sym_checked_floor, when fewer
      threads are decided Sound than sym_sound_floor, when the count of
      threads the symbolic backend decides where the enumerative checker
      can only truncate falls below sym_decided_cases (the backend's
      raison d'être — see EXPERIMENTS.md E23), or when any Unsound verdict
      appears on the protocol corpus (every protocol thread trivially
      refines itself).

  check_bench_baseline.py --baseline BENCH_BASELINE.json --atlas-summary FILE
      FILE holds the output of `atlas_report` (only the final
      "atlas summary:" line is read). Fails when the validator
      negative-test corpus (unsound + seq_incomplete entries) shrinks
      below the recorded atlas_unsound_entries — the corpus may only
      grow — when the template count shrinks, or when the ⊑w-vs-PS^na
      mismatch count differs from the pinned atlas_mismatch_entries
      (that set documents the explorer's unmodeled-reservation gap and
      must change only with an explicit baseline update).

The inputs are deterministic (state counts and cache counters, never
timings), so failures are reproducible locally with the same commands.
"""

import argparse
import json
import re
import sys

SUMMARY_RE = re.compile(
    r"memo summary: sweeps=(\d+) states_explored=(\d+) "
    r"memo_hits=(\d+) memo_misses=(\d+) pruned_states=(\d+)"
)

LINT_RE = re.compile(
    r"lint summary: race_free=(\d+) potentially_racy=(\d+) "
    r"atomics_only=(\d+) race_free_states=(\d+)"
)

REALWORLD_RE = re.compile(
    r"realworld summary: cases=(\d+) protocols=(\d+) mutants=(\d+) "
    r"bad_exhibited=(\d+) annotation_failures=(\d+) states=(\d+) "
    r"elapsed_ms=(\d+) states_per_sec=(\d+)"
)

SYM_RE = re.compile(
    r"sym summary: checked=(\d+) sound=(\d+) unsound=(\d+) "
    r"inconclusive=(\d+) decided_where_truncated=(\d+) disagreements=(\d+)"
)

ATLAS_RE = re.compile(
    r"atlas summary: entries=(\d+) sound=(\d+) unsound=(\d+) "
    r"seq_incomplete=(\d+) mismatch=(\d+) bounded=(\d+)"
)


def fail(msg):
    print(f"check_bench_baseline: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_summary(path):
    text = open(path).read()
    matches = SUMMARY_RE.findall(text)
    if not matches:
        fail(f"no 'memo summary:' line found in {path}")
    sweeps, states, hits, misses, pruned = map(int, matches[-1])
    out = {
        "sweeps": sweeps,
        "states_explored": states,
        "memo_hits": hits,
        "memo_misses": misses,
        "pruned_states": pruned,
    }
    lint = LINT_RE.findall(text)
    if lint:
        race_free, racy, atomics, rf_states = map(int, lint[-1])
        out["lint_proved_cases"] = race_free + atomics
        out["lint_race_free_states"] = rf_states
    return out


def hit_rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


def check_summary(args):
    base = json.load(open(args.baseline))
    cur = parse_summary(args.summary)

    if cur["sweeps"] != base["sweeps"]:
        fail(
            f"sweep count mismatch: run used --sweep {cur['sweeps']}, "
            f"baseline was recorded with --sweep {base['sweeps']}"
        )

    limit = base["states_explored"] * (1.0 + args.tolerance)
    if cur["states_explored"] > limit:
        fail(
            f"states_explored grew: {cur['states_explored']} vs baseline "
            f"{base['states_explored']} (limit {limit:.0f}, "
            f"+{args.tolerance:.0%})"
        )

    base_rate = hit_rate(base["memo_hits"], base["memo_misses"])
    cur_rate = hit_rate(cur["memo_hits"], cur["memo_misses"])
    if cur_rate + 1e-9 < base_rate:
        fail(
            f"cache hit-rate dropped: {cur_rate:.3f} vs baseline "
            f"{base_rate:.3f} (hits={cur['memo_hits']} "
            f"misses={cur['memo_misses']})"
        )

    no_memo = base.get("no_memo_states_explored")
    if no_memo and cur["states_explored"] * 2 > no_memo:
        fail(
            f"memoized run no longer halves the unmemoized exploration: "
            f"{cur['states_explored']} * 2 > {no_memo}"
        )

    # Lint gate: the analyzer must keep proving at least as many corpus
    # cases safe as the baseline records, and exploring the proved
    # race-free corpus must not cost more states than the baseline allows
    # (the NAMsg-marker suppression is what keeps this number down).
    if "lint_proved_cases" in base:
        if "lint_proved_cases" not in cur:
            fail("baseline has lint fields but no 'lint summary:' line "
                 f"found in {args.summary} (run without --no-lint)")
        if cur["lint_proved_cases"] < base["lint_proved_cases"]:
            fail(
                f"lint proved fewer cases safe: {cur['lint_proved_cases']} "
                f"vs baseline {base['lint_proved_cases']}"
            )
        rf_limit = base["lint_race_free_states"] * (1.0 + args.tolerance)
        if cur["lint_race_free_states"] > rf_limit:
            fail(
                f"states explored on the proved race-free corpus grew: "
                f"{cur['lint_race_free_states']} vs baseline "
                f"{base['lint_race_free_states']} (limit {rf_limit:.0f})"
            )

    print(
        f"check_bench_baseline: OK: states_explored="
        f"{cur['states_explored']} (baseline {base['states_explored']}), "
        f"hit-rate {cur_rate:.3f} (baseline {base_rate:.3f}), "
        f"{no_memo / cur['states_explored']:.2f}x under the no-memo count"
        if no_memo
        else "check_bench_baseline: OK"
    )


def check_realworld_summary(args):
    base = json.load(open(args.baseline))
    text = open(args.realworld_summary).read()
    matches = REALWORLD_RE.findall(text)
    if not matches:
        fail(f"no 'realworld summary:' line found in {args.realworld_summary}")
    cases, protocols, mutants, bad, ann_failures, states, _elapsed, sps = map(
        int, matches[-1]
    )

    if "realworld_cases" not in base:
        fail(f"{args.baseline} has no realworld_cases field")

    if cases < base["realworld_cases"]:
        fail(
            f"realworld corpus shrank: {cases} cases vs baseline "
            f"{base['realworld_cases']} — the corpus may only grow"
        )
    if protocols < base.get("realworld_protocols", 0):
        fail(
            f"realworld protocols shrank: {protocols} vs baseline "
            f"{base['realworld_protocols']}"
        )
    if mutants < protocols:
        fail(
            f"only {mutants} mutants for {protocols} protocols — every "
            f"protocol must keep at least one broken mutant"
        )
    if bad != mutants:
        fail(
            f"bad_exhibited={bad} but mutants={mutants} — some mutant's "
            f"injected bug is no longer exhibited by PS^na; the mutant "
            f"distinguishes nothing"
        )
    if ann_failures:
        fail(f"{ann_failures} annotation failures — see the per-case lines")

    limit = base["realworld_states"] * (1.0 + args.tolerance)
    if states > limit:
        fail(
            f"realworld states grew: {states} vs baseline "
            f"{base['realworld_states']} (limit {limit:.0f}, "
            f"+{args.tolerance:.0%})"
        )

    floor = base.get("realworld_states_per_sec_floor", 0)
    if sps < floor:
        fail(
            f"realworld throughput collapsed: {sps} states/sec vs the "
            f"absurdly-low floor {floor} — something is catastrophically "
            f"slower (timings are otherwise never gated)"
        )

    print(
        f"check_bench_baseline: OK: realworld cases={cases} "
        f"protocols={protocols} mutants={mutants} bad_exhibited={bad} "
        f"states={states} (baseline {base['realworld_states']}), "
        f"{sps} states/sec (floor {floor})"
    )


def check_sym_summary(args):
    base = json.load(open(args.baseline))
    text = open(args.sym_summary).read()
    matches = SYM_RE.findall(text)
    if not matches:
        fail(f"no 'sym summary:' line found in {args.sym_summary}")
    checked, sound, unsound, inconclusive, decided, disagreements = map(
        int, matches[-1]
    )

    if "sym_decided_cases" not in base:
        fail(f"{args.baseline} has no sym_decided_cases field")

    if disagreements:
        fail(
            f"{disagreements} symbolic-vs-enumerative disagreements — the "
            f"differential sweep's zero-disagreement contract is broken; "
            f"see the per-thread lines for the offending verdicts"
        )
    if unsound:
        fail(
            f"{unsound} protocol threads reported Unsound on the "
            f"self-refinement sweep — every thread trivially refines "
            f"itself, so this is a symbolic-backend soundness bug"
        )
    if checked < base.get("sym_checked_floor", 0):
        fail(
            f"sym sweep checked only {checked} protocol threads vs "
            f"baseline floor {base['sym_checked_floor']} — the RealWorld "
            f"corpus may only grow"
        )
    if sound < base.get("sym_sound_floor", 0):
        fail(
            f"only {sound} protocol threads decided Sound vs baseline "
            f"floor {base['sym_sound_floor']} — the abstraction got "
            f"coarser (inconclusive={inconclusive})"
        )
    if decided < base["sym_decided_cases"]:
        fail(
            f"symbolic backend decided only {decided} threads where the "
            f"enumerative checker truncates, vs baseline "
            f"{base['sym_decided_cases']} — the backend's coverage "
            f"advantage regressed (EXPERIMENTS.md E23)"
        )

    print(
        f"check_bench_baseline: OK: sym checked={checked} sound={sound} "
        f"inconclusive={inconclusive} "
        f"decided_where_truncated={decided} "
        f"(floor {base['sym_decided_cases']}), disagreements=0"
    )


def check_atlas_summary(args):
    base = json.load(open(args.baseline))
    text = open(args.atlas_summary).read()
    matches = ATLAS_RE.findall(text)
    if not matches:
        fail(f"no 'atlas summary:' line found in {args.atlas_summary}")
    entries, sound, unsound, seq_inc, mismatch, bounded = map(
        int, matches[-1]
    )

    if "atlas_unsound_entries" not in base:
        fail(f"{args.baseline} has no atlas_unsound_entries field")

    if entries < base.get("atlas_entries", 0):
        fail(
            f"atlas shrank: {entries} templates vs baseline "
            f"{base['atlas_entries']} — the template grid may only grow"
        )

    negative = unsound + seq_inc
    if negative < base["atlas_unsound_entries"]:
        fail(
            f"validator negative-test corpus shrank: {negative} "
            f"(unsound={unsound} + seq_incomplete={seq_inc}) vs baseline "
            f"{base['atlas_unsound_entries']} — entries the SEQ checkers "
            f"reject may only be added, never lost"
        )

    pinned = base.get("atlas_mismatch_entries", 0)
    if mismatch != pinned:
        fail(
            f"⊑w-vs-PS^na mismatch count changed: {mismatch} vs pinned "
            f"{pinned} — a new checker soundness bug, a fixed one, or a "
            f"change to the explorer's reservation modeling; inspect "
            f"tests/golden/atlas.md and update the baseline deliberately"
        )

    if bounded:
        fail(
            f"{bounded} atlas entries were budget-truncated — verdicts "
            f"are not trustworthy; raise the budgets"
        )

    print(
        f"check_bench_baseline: OK: atlas entries={entries} "
        f"sound={sound} negative={negative} "
        f"(baseline floor {base['atlas_unsound_entries']}), "
        f"mismatch={mismatch} (pinned)"
    )


def check_bench_json(args):
    data = json.load(open(args.bench_json))
    memo = data.get("memo")
    if memo is None:
        fail(f"no 'memo' block in {args.bench_json}")
    if not memo.get("enabled"):
        fail("memo block reports enabled=false (run without --no-memo)")
    for key in ("states_explored", "memo_hits", "memo_misses",
                "pruned_states"):
        if key not in memo:
            fail(f"memo block missing '{key}'")
    if memo["states_explored"] <= 0:
        fail("memo block counted zero explored states — telemetry unwired?")
    print(
        f"check_bench_baseline: OK: bench memo block "
        f"states_explored={memo['states_explored']} "
        f"hits={memo['memo_hits']} misses={memo['memo_misses']} "
        f"pruned={memo['pruned_states']}"
    )


def check_server_json(args):
    base = json.load(open(args.baseline))
    cur = json.load(open(args.server_json))

    for key in ("jobs", "jobs_per_sec", "cache_hit_rate", "failed",
                "duplicate_replies"):
        if key not in cur:
            fail(f"server bench dump missing '{key}' (regenerate with "
                 f"validate_client --bench-out)")

    min_jobs = base.get("min_jobs", 1)
    if cur["jobs"] < min_jobs:
        fail(
            f"batch answered only {cur['jobs']} jobs "
            f"(baseline expects at least {min_jobs}) — replies were lost"
        )
    if cur["failed"]:
        fail(
            f"{cur['failed']} jobs ended in crash/oom/deadline — every "
            f"corpus job must produce a verdict on a healthy server"
        )
    if cur["duplicate_replies"]:
        fail(
            f"{cur['duplicate_replies']} duplicate replies — the "
            f"exactly-one-verdict-per-job contract is broken"
        )

    floor = base.get("cache_hit_rate_floor", 0.0)
    if cur["cache_hit_rate"] + 1e-9 < floor:
        fail(
            f"warm-cache hit rate dropped: {cur['cache_hit_rate']:.3f} vs "
            f"floor {floor:.3f} — the snapshot restore or the verdict "
            f"cache regressed"
        )

    print(
        f"check_bench_baseline: OK: server batch jobs={cur['jobs']} "
        f"hit-rate {cur['cache_hit_rate']:.3f} (floor {floor:.3f}), "
        f"{cur['jobs_per_sec']:.1f} jobs/sec (informational)"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="BENCH_BASELINE.json path")
    ap.add_argument("--summary", help="file with litmus_explorer output")
    ap.add_argument("--bench-json", help="bench_* --json dump to sanity-check")
    ap.add_argument(
        "--atlas-summary", help="file with atlas_report output to gate"
    )
    ap.add_argument(
        "--sym-summary",
        help="file with `litmus_explorer --corpus realworld --method sym` "
        "output to gate",
    )
    ap.add_argument(
        "--realworld-summary",
        help="file with `litmus_explorer --corpus realworld` output to gate",
    )
    ap.add_argument(
        "--server-json",
        help="validate_client --bench-out dump to gate against the baseline",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative growth in states_explored (default 0.10)",
    )
    args = ap.parse_args()

    if args.bench_json:
        check_bench_json(args)
    elif args.baseline and args.server_json:
        check_server_json(args)
    elif args.baseline and args.realworld_summary:
        check_realworld_summary(args)
    elif args.baseline and args.sym_summary:
        check_sym_summary(args)
    elif args.baseline and args.atlas_summary:
        check_atlas_summary(args)
    elif args.baseline and args.summary:
        check_summary(args)
    else:
        ap.error(
            "need --baseline with --summary, --realworld-summary, "
            "--sym-summary, --atlas-summary, or --server-json, or "
            "--bench-json"
        )


if __name__ == "__main__":
    main()
