#!/usr/bin/env python3
"""Bench-trend pipeline: history, regression gate, and markdown rendering.

Extends tools/check_bench_baseline.py (imported, not duplicated): that
script gates the *deterministic* memo/lint counters; this one tracks the
*timing* side across runs.

Three modes plus a self-test:

  bench_trend.py append --history BENCH_HISTORY.jsonl --label LABEL FILE...
      FILEs are `bench_* --json` dumps. Appends one JSONL record per file:
      the per-benchmark real_time table plus the run's timing-histogram
      percentiles (telemetry keys with a .ns/.us/.ms suffix). The bench
      binary name is derived from the file stem (bench_psna_explore.json
      -> bench_psna_explore) unless --bench overrides it.

  bench_trend.py check --history BENCH_HISTORY.jsonl [--max-regress 0.15]
      For every bench binary with at least two records, compares the
      latest run against the previous one: per-benchmark real_time ratios
      are collected and the p95 ratio (robust against a single noisy
      outlier) must not exceed 1 + max-regress. Exit 1 on regression.

  bench_trend.py render --history BENCH_HISTORY.jsonl --experiments FILE
      Rewrites the block between <!-- BENCH_TREND_BEGIN --> and
      <!-- BENCH_TREND_END --> in FILE with a per-binary trend table
      (runs, latest label, geomean real_time, delta vs previous run).

  bench_trend.py --self-test
      Synthesizes a history with an injected +30% p95 regression and
      asserts `check` fails on it (and passes on a +5% drift), then
      round-trips `render`. Registered as a ctest, so the gate's teeth
      are themselves regression-tested.
"""

import argparse
import json
import math
import os
import re
import sys
import tempfile
from datetime import datetime, timezone

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_bench_baseline import fail  # noqa: E402  (shared failure style)

TIMING_SUFFIX = re.compile(r"\.(ns|us|ms)$")
BEGIN_MARK = "<!-- BENCH_TREND_BEGIN -->"
END_MARK = "<!-- BENCH_TREND_END -->"


def load_history(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad history line: {e}")
    return records


def bench_name_from_path(path):
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem


def timing_percentiles(report):
    """p50/p90/p99 of every timing histogram in a report object."""
    out = {}
    for key, hist in (report.get("histograms") or {}).items():
        if not TIMING_SUFFIX.search(key):
            continue
        out[key] = {
            p: hist[p] for p in ("p50", "p90", "p99") if p in hist
        }
    return out


def record_from_bench_json(path, label, bench):
    data = json.load(open(path))
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(f"{path}: no 'benchmarks' array — not a bench_* --json dump?")
    times = {}
    for b in benchmarks:
        if "name" not in b or "real_time" not in b:
            fail(f"{path}: benchmark entry without name/real_time")
        times[b["name"]] = {
            "real_time": b["real_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
    record = {
        "ts": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "label": label,
        "bench": bench or bench_name_from_path(path),
        "benchmarks": times,
    }
    hists = timing_percentiles(data.get("telemetry") or {})
    if hists:
        record["timing_hists"] = hists
    return record


def do_append(args):
    with open(args.history, "a") as out:
        for path in args.files:
            rec = record_from_bench_json(path, args.label, args.bench)
            out.write(json.dumps(rec, sort_keys=True) + "\n")
            print(
                f"bench_trend: appended {rec['bench']} "
                f"({len(rec['benchmarks'])} benchmarks) from {path}"
            )


def p95(values):
    """95th percentile by rank (nearest-rank on the sorted list)."""
    ordered = sorted(values)
    rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[rank]


def by_bench(records):
    groups = {}
    for rec in records:
        groups.setdefault(rec.get("bench", "?"), []).append(rec)
    return groups


def compare_runs(prev, last):
    """Per-benchmark real_time ratios for names present in both runs."""
    ratios = {}
    prev_times = prev.get("benchmarks", {})
    for name, cur in last.get("benchmarks", {}).items():
        old = prev_times.get(name)
        if not old or not old.get("real_time"):
            continue
        ratios[name] = cur["real_time"] / old["real_time"]
    return ratios


def do_check(args):
    records = load_history(args.history)
    if not records:
        print("bench_trend: OK: empty history, nothing to gate")
        return
    failures = []
    for bench, runs in sorted(by_bench(records).items()):
        if len(runs) < 2:
            print(f"bench_trend: {bench}: only one run, skipping")
            continue
        prev, last = runs[-2], runs[-1]
        ratios = compare_runs(prev, last)
        if not ratios:
            print(f"bench_trend: {bench}: no common benchmarks, skipping")
            continue
        worst = p95(ratios.values())
        limit = 1.0 + args.max_regress
        verdict = "FAIL" if worst > limit else "ok"
        print(
            f"bench_trend: {bench}: p95 real_time ratio "
            f"{worst:.3f} (limit {limit:.2f}, {len(ratios)} benchmarks, "
            f"{prev.get('label')} -> {last.get('label')}) {verdict}"
        )
        if worst > limit:
            slowest = sorted(
                ratios.items(), key=lambda kv: kv[1], reverse=True
            )[:5]
            for name, ratio in slowest:
                print(f"bench_trend:   {ratio:6.3f}x  {name}")
            failures.append(bench)
    if failures:
        fail(
            f"p95 real_time regression over {args.max_regress:.0%} in: "
            + ", ".join(failures)
        )
    print("bench_trend: OK")


def geomean_ns(run):
    times = [
        b["real_time"]
        for b in run.get("benchmarks", {}).values()
        if b.get("real_time", 0) > 0
    ]
    if not times:
        return 0.0
    return math.exp(sum(math.log(t) for t in times) / len(times))


def render_table(records):
    lines = [
        "| bench | runs | latest | geomean real_time | vs prev (p95) |",
        "|-------|------|--------|-------------------|---------------|",
    ]
    for bench, runs in sorted(by_bench(records).items()):
        last = runs[-1]
        geo = geomean_ns(last)
        if len(runs) >= 2:
            ratios = compare_runs(runs[-2], last)
            delta = f"{(p95(ratios.values()) - 1.0) * 100:+.1f}%" if ratios \
                else "n/a"
        else:
            delta = "—"
        lines.append(
            f"| {bench} | {len(runs)} | {last.get('label', '?')} "
            f"| {geo:,.0f} ns | {delta} |"
        )
    return "\n".join(lines)


def do_render(args):
    records = load_history(args.history)
    text = open(args.experiments).read()
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        fail(f"{args.experiments}: missing {BEGIN_MARK} / {END_MARK} markers")
    table = render_table(records) if records else "_no bench history yet_"
    new = (
        text[: begin + len(BEGIN_MARK)]
        + "\n"
        + table
        + "\n"
        + text[end:]
    )
    with open(args.experiments, "w") as out:
        out.write(new)
    print(
        f"bench_trend: rendered {len(records)} history records into "
        f"{args.experiments}"
    )


def synth_bench_json(path, scale):
    data = {
        "benchmarks": [
            {
                "name": f"suite/case{i}",
                "real_time": 1000.0 * (i + 1) * scale,
                "cpu_time": 900.0 * (i + 1) * scale,
                "time_unit": "ns",
                "iterations": 100,
            }
            for i in range(8)
        ],
        "telemetry": {
            "counters": {},
            "gauges": {},
            "histograms": {
                "psna.step.us": {
                    "count": 10,
                    "p50": 5.0 * scale,
                    "p90": 9.0 * scale,
                    "p99": 12.0 * scale,
                }
            },
        },
    }
    json.dump(data, open(path, "w"))


def run_mode(argv):
    """Runs main() with argv, returning the exit code instead of raising."""
    try:
        main(argv)
        return 0
    except SystemExit as e:
        return int(e.code or 0)


def self_test():
    with tempfile.TemporaryDirectory(prefix="bench_trend_") as tmp:
        hist = os.path.join(tmp, "BENCH_HISTORY.jsonl")
        base = os.path.join(tmp, "bench_synth.json")
        regress = os.path.join(tmp, "bench_regress.json")
        drift = os.path.join(tmp, "bench_drift.json")
        synth_bench_json(base, 1.0)
        synth_bench_json(regress, 1.30)  # injected >15% p95 regression
        synth_bench_json(drift, 1.05)

        assert run_mode(
            ["append", "--history", hist, "--label", "base",
             "--bench", "bench_synth", base]) == 0
        # One run: nothing to compare yet.
        assert run_mode(["check", "--history", hist]) == 0

        # The injected +30% run must trip the 15% gate.
        assert run_mode(
            ["append", "--history", hist, "--label", "bad",
             "--bench", "bench_synth", regress]) == 0
        assert run_mode(["check", "--history", hist]) != 0, (
            "check accepted an injected +30% p95 regression"
        )

        # A drift back down vs the regressed run must pass (1.05/1.30 < 1).
        assert run_mode(
            ["append", "--history", hist, "--label", "ok",
             "--bench", "bench_synth", drift]) == 0
        assert run_mode(["check", "--history", hist]) == 0

        # ...and a loosened gate accepts even the bad pair.
        hist2 = os.path.join(tmp, "H2.jsonl")
        for label, path in (("base", base), ("bad", regress)):
            run_mode(["append", "--history", hist2, "--label", label,
                      "--bench", "bench_synth", path])
        assert run_mode(
            ["check", "--history", hist2, "--max-regress", "0.50"]) == 0

        # Render round-trip: the markers survive and the table lands.
        exp = os.path.join(tmp, "EXPERIMENTS.md")
        with open(exp, "w") as out:
            out.write(f"# Trends\n\n{BEGIN_MARK}\n{END_MARK}\n\ntail\n")
        assert run_mode(["render", "--history", hist,
                         "--experiments", exp]) == 0
        text = open(exp).read()
        assert BEGIN_MARK in text and END_MARK in text
        assert "bench_synth" in text and "tail" in text
        # Idempotent: a second render replaces, not duplicates.
        assert run_mode(["render", "--history", hist,
                         "--experiments", exp]) == 0
        assert open(exp).read().count("| bench |") == 1

    print("bench_trend: self-test OK")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the gate against synthetic regressions")
    sub = ap.add_subparsers(dest="mode")

    ap_append = sub.add_parser("append", help="append bench --json runs")
    ap_append.add_argument("--history", required=True)
    ap_append.add_argument("--label", required=True,
                           help="run label (e.g. git SHA)")
    ap_append.add_argument("--bench",
                           help="bench binary name (default: file stem)")
    ap_append.add_argument("files", nargs="+")

    ap_check = sub.add_parser("check", help="gate latest run vs previous")
    ap_check.add_argument("--history", required=True)
    ap_check.add_argument("--max-regress", type=float, default=0.15,
                          help="allowed p95 real_time growth (default 0.15)")

    ap_render = sub.add_parser("render", help="write the trend table")
    ap_render.add_argument("--history", required=True)
    ap_render.add_argument("--experiments", required=True)

    args = ap.parse_args(argv)
    if args.self_test:
        self_test()
    elif args.mode == "append":
        do_append(args)
    elif args.mode == "check":
        do_check(args)
    elif args.mode == "render":
        do_render(args)
    else:
        ap.error("need a mode (append/check/render) or --self-test")


if __name__ == "__main__":
    main()
