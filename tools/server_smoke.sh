#!/usr/bin/env bash
# End-to-end smoke of the validation service's fault-tolerance contract.
#
#   tools/server_smoke.sh [BUILD_DIR]
#
# Phase 1: start validate_server in --chaos mode (deterministically
#   SIGKILLs ~1/3 of first worker attempts) and, while a corpus batch is
#   in flight, best-effort kill -9 any live worker children — the client
#   must still see exactly one verdict-or-classified-failure per job.
# Phase 2: SIGTERM the server; it must exit with the distinct graceful
#   code (75) and leave a nonempty cache snapshot on disk.
# Phase 3: restart the server on the same snapshot, run the same batch,
#   write the --bench-out dump, and gate it with check_bench_baseline.py:
#   full coverage, zero failures, and a warm-cache hit rate at or above
#   the BENCH_SERVER.json floor.
# Phase 4: stop the restarted server via the shutdown op (exit 0).
set -u

BUILD_DIR=${1:-build}
SERVER=$BUILD_DIR/examples/validate_server
CLIENT=$BUILD_DIR/examples/validate_client
BASELINE=$(dirname "$0")/../BENCH_SERVER.json

WORK=$(mktemp -d /tmp/pseq-server-smoke-XXXXXX)
SOCK=$WORK/pseq.sock
SNAP=$WORK/cache.snap
SERVER_PID=

fail() {
  echo "server_smoke: FAIL: $*" >&2
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

[ -x "$SERVER" ] || fail "$SERVER not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

wait_for_socket() {
  for _ in $(seq 1 100); do
    "$CLIENT" --socket "$SOCK" --ping >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

# --- Phase 1: chaos batch with external worker kills -----------------------
"$SERVER" --socket "$SOCK" --snapshot "$SNAP" --workers 2 --chaos &
SERVER_PID=$!
wait_for_socket || fail "server did not come up"

# Murder loop: children of the server are isolated per-job workers; killing
# them mid-run is exactly the crash the retry machinery must absorb.
(
  for _ in $(seq 1 40); do
    pkill -9 -P "$SERVER_PID" 2>/dev/null
    sleep 0.05
  done
) &
KILLER=$!

"$CLIENT" --socket "$SOCK" --quiet --repeat 2 --expect-complete \
  || fail "chaos batch lost or duplicated replies"
wait "$KILLER" 2>/dev/null
echo "server_smoke: chaos batch fully covered"

# --- Phase 2: graceful SIGTERM drain ---------------------------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
[ "$STATUS" -eq 75 ] || fail "SIGTERM exit was $STATUS, expected 75"
[ -s "$SNAP" ] || fail "no cache snapshot written at $SNAP"
SERVER_PID=
echo "server_smoke: graceful drain OK (exit 75, snapshot $(wc -c <"$SNAP") bytes)"

# --- Phase 3: warm restart, cached batch, bench gate -----------------------
"$SERVER" --socket "$SOCK" --snapshot "$SNAP" --workers 2 &
SERVER_PID=$!
wait_for_socket || fail "restarted server did not come up"

"$CLIENT" --socket "$SOCK" --quiet --expect-complete \
  --bench-out "$WORK/bench.json" \
  || fail "warm batch lost or duplicated replies"
python3 "$(dirname "$0")/check_bench_baseline.py" \
  --baseline "$BASELINE" --server-json "$WORK/bench.json" \
  || fail "bench gate rejected the warm batch"

# --- Phase 4: shutdown op --------------------------------------------------
"$CLIENT" --socket "$SOCK" --shutdown >/dev/null \
  || fail "shutdown op not acknowledged"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=
[ "$STATUS" -eq 0 ] || fail "shutdown-op exit was $STATUS, expected 0"

echo "server_smoke: OK"
