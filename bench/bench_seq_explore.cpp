//===- bench/bench_seq_explore.cpp - E1/E2: SEQ enumeration ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures exhaustive SEQ behavior enumeration (Def 2.1) as program size,
// value-domain size, and footprint grow — the raw engine underneath both
// refinement checkers. Counters report behaviors and initial states.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "seq/BehaviorEnum.h"
#include "seq/SimpleRefinement.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

std::string straightLine(unsigned Stores, unsigned Loads, bool WithAtomics) {
  std::string Out = "na x; atomic y;\nthread {\n";
  for (unsigned I = 0; I != Stores; ++I) {
    Out += "  x@na := " + std::to_string(I % 2) + ";\n";
    if (WithAtomics)
      Out += I % 2 ? "  y@rel := 1;\n" : "  s := y@acq;\n";
  }
  for (unsigned I = 0; I != Loads; ++I)
    Out += "  a" + std::to_string(I) + " := x@na;\n";
  Out += "  return a0;\n}";
  return Out;
}

void runEnum(benchmark::State &State, const std::string &Text,
             ValueDomain Domain) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  SeqConfig Cfg;
  Cfg.Domain = std::move(Domain);
  Cfg.Universe = P->naLocs();
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  SeqMachine M(*P, 0, Cfg);
  std::vector<SeqState> Inits = enumerateInitialStates(M);

  unsigned long long Behaviors = 0;
  for (auto _ : State) {
    Behaviors = 0;
    // Batch across initial states so the pool parallelizes both across and
    // within enumerations.
    for (const BehaviorSet &B : enumerateBehaviorsBatch(M, Inits))
      Behaviors += B.All.size();
    benchmark::ClobberMemory();
  }
  State.counters["behaviors"] = static_cast<double>(Behaviors);
  State.counters["initial_states"] = static_cast<double>(Inits.size());
}

void BM_SeqEnum_NonAtomic(benchmark::State &State) {
  runEnum(State,
          straightLine(static_cast<unsigned>(State.range(0)),
                       /*Loads=*/2, /*WithAtomics=*/false),
          ValueDomain::binary());
}
BENCHMARK(BM_SeqEnum_NonAtomic)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SeqEnum_WithAtomics(benchmark::State &State) {
  runEnum(State,
          straightLine(static_cast<unsigned>(State.range(0)),
                       /*Loads=*/2, /*WithAtomics=*/true),
          ValueDomain::binary());
}
BENCHMARK(BM_SeqEnum_WithAtomics)->Arg(1)->Arg(2)->Arg(3);

void BM_SeqEnum_DomainSize(benchmark::State &State) {
  runEnum(State, straightLine(2, 2, /*WithAtomics=*/true),
          ValueDomain::upTo(State.range(0)));
}
BENCHMARK(BM_SeqEnum_DomainSize)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// Example 2.2's exact program, as a fixed reference point.
void BM_SeqEnum_Example22(benchmark::State &State) {
  runEnum(State,
          "atomic x; na y;\nthread { x@rlx := 1; y@na := 2; return 3; }",
          ValueDomain({1, 2, 3}));
}
BENCHMARK(BM_SeqEnum_Example22);

} // namespace

int main(int argc, char **argv) {
  return benchsupport::benchMain(argc, argv);
}
