//===- bench/bench_psna_explore.cpp - E11/E14/E15: PS^na exploration ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures exhaustive PS^na exploration over the litmus corpus, with the
// two ablations DESIGN.md calls out:
//   * promise budget 0/1/2 — which outcomes need promises (Example 5.1);
//   * timestamp normalization on/off — how many order-isomorphic states
//     the ranking abstraction merges.
//
// Counters: states explored, distinct behaviors.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "psna/Explorer.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

void runLitmus(benchmark::State &State, const LitmusCase &LC,
               unsigned PromiseBudget, bool Normalize) {
  std::unique_ptr<Program> P = parseOrDie(LC.Text);
  PsConfig Cfg;
  Cfg.Domain = LC.Domain;
  Cfg.PromiseBudget = PromiseBudget;
  Cfg.SplitBudget = LC.SplitBudget;
  Cfg.Normalize = Normalize;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();

  PsBehaviorSet B;
  for (auto _ : State) {
    B = explorePsna(*P, Cfg);
    benchmark::ClobberMemory();
  }
  State.counters["states"] = static_cast<double>(B.StatesExplored);
  State.counters["behaviors"] = static_cast<double>(B.All.size());
  State.counters["truncated"] = B.truncated();
}

void registerAll() {
  // Promise-budget sweep on the promise-sensitive cases.
  for (const char *Name : {"ex5.1-promise-racy-read", "lb-rlx", "lb-rel"}) {
    const LitmusCase &LC = litmusCaseByName(Name);
    for (unsigned Budget : {0u, 1u, 2u}) {
      std::string Id = std::string("promises/") + Name + "/budget:" +
                       std::to_string(Budget);
      benchmark::RegisterBenchmark(
          Id.c_str(), [&LC, Budget](benchmark::State &S) {
            runLitmus(S, LC, Budget, /*Normalize=*/true);
          });
    }
  }

  // Normalization ablation across the whole corpus (at corpus budgets).
  for (const LitmusCase &LC : litmusCorpus()) {
    for (bool Normalize : {true, false}) {
      std::string Id = std::string("normalize/") + LC.Name +
                       (Normalize ? "/on" : "/off");
      benchmark::RegisterBenchmark(
          Id.c_str(), [&LC, Normalize](benchmark::State &S) {
            runLitmus(S, LC, LC.PromiseBudget, Normalize);
          });
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  return benchsupport::benchMain(argc, argv);
}
