//===- bench/bench_adequacy.cpp - E13: adequacy harness cost --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures the full Theorem 6.2 cross-validation (both SEQ verdicts plus
// PS^na behavior inclusion under every library context) on representative
// corpus cases, and the random-pair sweep throughput.
//
//===----------------------------------------------------------------------===//

#include "adequacy/Harness.h"
#include "adequacy/RandomProgram.h"
#include "lang/Parser.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

PsConfig psCfg() {
  PsConfig C;
  C.PromiseBudget = 0;
  C.Telem = benchsupport::telemetry();
  C.NumThreads = benchsupport::numThreads();
  C.Guard = benchsupport::resourceGuard();
  C.Memo = benchsupport::memoContext();
  return C;
}

void runCase(benchmark::State &State, const char *Name) {
  const RefinementCase &RC = refinementCaseByName(Name);
  AdequacyRecord Rec;
  for (auto _ : State) {
    Rec = runAdequacy(RC, psCfg());
    benchmark::ClobberMemory();
  }
  State.counters["seq_advanced"] = Rec.SeqAdvanced;
  State.counters["psna_all_ctx"] = Rec.PsnaAllContexts;
  State.counters["adequate"] = Rec.adequacyHolds();
  State.counters["contexts"] = static_cast<double>(Rec.Contexts.size());
}

void registerAll() {
  for (const char *Name :
       {"ex2.6-ii-slf", "ex2.9-ii-conv-needs-advanced",
        "ex2.11-slf-across-rel-write", "ex2.12-no-slf-across-rel-acq",
        "sec3-late-ub-rlx-read-na-write", "ex3.5-dse-across-rel-write"}) {
    benchmark::RegisterBenchmark(
        (std::string("adequacy/") + Name).c_str(),
        [Name](benchmark::State &S) { runCase(S, Name); });
  }
}

void BM_RandomSweep(benchmark::State &State) {
  unsigned Violations = 0, Checked = 0;
  for (auto _ : State) {
    Rng R(State.range(0));
    for (unsigned I = 0; I != 8; ++I) {
      RandomPair Pair = randomRefinementPair(R);
      std::unique_ptr<Program> Src = parseOrDie(Pair.Src);
      std::unique_ptr<Program> Tgt = parseOrDie(Pair.Tgt);
      SeqConfig SeqC;
      AdequacyRecord Rec = runAdequacy("random", *Src, *Tgt, SeqC, psCfg(),
                                       /*HasLoops=*/false);
      ++Checked;
      Violations += !Rec.adequacyHolds();
    }
  }
  State.counters["checked"] = Checked;
  State.counters["violations"] = Violations;
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::RegisterBenchmark("adequacy/random_sweep8", BM_RandomSweep)
      ->Arg(7);
  return benchsupport::benchMain(argc, argv);
}
