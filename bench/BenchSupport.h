//===- bench/BenchSupport.h - Shared bench main with --json -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared entry point for the bench_* binaries. Every harness accepts
///
///   bench_xxx [--json <path>] [--threads N] [google-benchmark flags...]
///
/// --threads N sets the engines' worker count (0 = all hardware threads;
/// default from PSEQ_THREADS, else 1); benchmarks read it via numThreads()
/// and pass it into their SeqConfig/PsConfig/PipelineOptions.
///
/// Without --json the run is byte-for-byte the plain google-benchmark
/// harness: telemetry() returns null, so every engine stays on its
/// uninstrumented fast path. With --json, telemetry is enabled and one JSON
/// object is written to <path>:
///
///   {"benchmarks": [{"name":..., "real_time":..., "cpu_time":...,
///                    "time_unit":..., "iterations":..., "counters":{...}},
///                   ...],
///    "telemetry": <obs::renderReportJson>}
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_BENCH_BENCHSUPPORT_H
#define PSEQ_BENCH_BENCHSUPPORT_H

#include "exec/ThreadPool.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "obs/TraceSink.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pseq {
namespace benchsupport {

namespace detail {
inline obs::Telemetry *&telemetrySlot() {
  static obs::Telemetry *Slot = nullptr;
  return Slot;
}
inline unsigned &numThreadsSlot() {
  static unsigned Slot = exec::defaultNumThreads();
  return Slot;
}
} // namespace detail

/// The harness telemetry: null unless --json was passed (so default runs
/// measure the uninstrumented engines). Benchmarks pass this into their
/// SeqConfig/PsConfig/PipelineOptions.
inline obs::Telemetry *telemetry() { return detail::telemetrySlot(); }

/// The worker count requested with --threads (0 = hardware concurrency;
/// defaults to PSEQ_THREADS, else 1). Benchmarks pass this into their
/// SeqConfig/PsConfig/PipelineOptions.
inline unsigned numThreads() { return detail::numThreadsSlot(); }

namespace detail {

/// One recorded benchmark run.
struct Row {
  std::string Name;
  double RealTime = 0;
  double CpuTime = 0;
  std::string TimeUnit;
  uint64_t Iterations = 0;
  bool Error = false;
  std::vector<std::pair<std::string, double>> Counters;
};

/// Console output as usual, plus a record of every run for the JSON dump.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  std::vector<Row> Rows;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      Row Out;
      Out.Name = R.benchmark_name();
      Out.RealTime = R.GetAdjustedRealTime();
      Out.CpuTime = R.GetAdjustedCPUTime();
      Out.TimeUnit = benchmark::GetTimeUnitString(R.time_unit);
      Out.Iterations = static_cast<uint64_t>(R.iterations);
      Out.Error = R.error_occurred;
      for (const auto &[Name, Counter] : R.counters)
        Out.Counters.emplace_back(Name, static_cast<double>(Counter));
      Rows.push_back(std::move(Out));
    }
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }
};

inline bool writeJson(const std::string &Path, const std::vector<Row> &Rows,
                      const obs::Telemetry &Telem) {
  std::string Out = "{\"benchmarks\":[";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    if (I)
      Out += ",";
    Out += "{\"name\":\"" + obs::jsonEscape(R.Name) + "\"";
    Out += ",\"real_time\":" + obs::jsonNumber(R.RealTime);
    Out += ",\"cpu_time\":" + obs::jsonNumber(R.CpuTime);
    Out += ",\"time_unit\":\"" + obs::jsonEscape(R.TimeUnit) + "\"";
    Out += ",\"iterations\":" + std::to_string(R.Iterations);
    if (R.Error)
      Out += ",\"error\":true";
    Out += ",\"counters\":{";
    for (size_t C = 0; C != R.Counters.size(); ++C) {
      if (C)
        Out += ",";
      Out += "\"" + obs::jsonEscape(R.Counters[C].first) +
             "\":" + obs::jsonNumber(R.Counters[C].second);
    }
    Out += "}}";
  }
  Out += "],\"telemetry\":" + obs::renderReportJson(Telem) + "}\n";

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Out.data(), 1, Out.size(), F) == Out.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

} // namespace detail

/// Runs the harness: strips `--json <path>` (or `--json=<path>`) and
/// `--threads N` (or `--threads=N`), forwards everything else to
/// google-benchmark, and — when --json was given — enables telemetry and
/// writes run timings plus the telemetry report as a single JSON object to
/// the path.
inline int benchMain(int Argc, char **Argv) {
  std::string JsonPath;
  std::vector<char *> Args;
  for (int I = 0; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    if (A.rfind("--json=", 0) == 0) {
      JsonPath = A.substr(7);
      continue;
    }
    if (A == "--threads" && I + 1 < Argc) {
      detail::numThreadsSlot() =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
      continue;
    }
    if (A.rfind("--threads=", 0) == 0) {
      detail::numThreadsSlot() =
          static_cast<unsigned>(std::strtoul(A.c_str() + 10, nullptr, 10));
      continue;
    }
    Args.push_back(Argv[I]);
  }
  int NewArgc = static_cast<int>(Args.size());

  obs::Telemetry Telem;
  std::unique_ptr<obs::TraceSink> EnvSink;
  if (!JsonPath.empty()) {
    EnvSink = obs::traceSinkFromEnv();
    Telem.Sink = EnvSink.get();
    detail::telemetrySlot() = &Telem;
  }

  benchmark::Initialize(&NewArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, Args.data()))
    return 1;
  detail::RecordingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  if (!JsonPath.empty() &&
      !detail::writeJson(JsonPath, Reporter.Rows, Telem)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  detail::telemetrySlot() = nullptr;
  return 0;
}

} // namespace benchsupport
} // namespace pseq

#endif // PSEQ_BENCH_BENCHSUPPORT_H
