//===- bench/BenchSupport.h - Shared bench main with --json -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared entry point for the bench_* binaries. Every harness accepts
///
///   bench_xxx [--json <path>] [--threads N] [--deadline-ms N] [--mem-mb N]
///             [--no-memo] [--trace <path>] [--trace-out <path>]
///             [--heartbeat <path>] [--heartbeat-ms N]
///             [google-benchmark flags...]
///
/// --threads N sets the engines' worker count (0 = all hardware threads;
/// default from PSEQ_THREADS, else 1); benchmarks read it via numThreads()
/// and pass it into their SeqConfig/PsConfig/PipelineOptions.
///
/// --deadline-ms / --mem-mb arm a ResourceGuard governing the whole run
/// (read via resourceGuard()): once either budget trips, remaining engine
/// work returns bounded verdicts instead of running unchecked. Numeric
/// flags are parsed strictly — a malformed value is a usage error, never a
/// silent 0.
///
/// The flight-recorder flags:
///  * --trace <path>      — JSONL event trace (same stream PSEQ_TRACE
///                          selects; the flag wins over the env var).
///  * --trace-out <path>  — Chrome trace-event / Perfetto JSON built from
///                          the engines' causal spans, written at exit.
///  * --heartbeat <path>  — progress JSONL sampled by a background thread
///                          every --heartbeat-ms (default 500) from the
///                          pool/guard/memo/span gauges.
///
/// Without any of --json/--trace/--trace-out/--heartbeat the run is
/// byte-for-byte the plain google-benchmark harness: telemetry() returns
/// null, so every engine stays on its uninstrumented fast path. With any of
/// them, telemetry is enabled; with --json one JSON object is written to
/// <path>:
///
///   {"benchmarks": [{"name":..., "real_time":..., "cpu_time":...,
///                    "time_unit":..., "iterations":..., "counters":{...}},
///                   ...],
///    "memo": {...},
///    "telemetry": <obs::renderReportJson>}
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_BENCH_BENCHSUPPORT_H
#define PSEQ_BENCH_BENCHSUPPORT_H

#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "guard/Signals.h"
#include "memo/MemoContext.h"
#include "obs/Heartbeat.h"
#include "obs/Report.h"
#include "opt/Validator.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"
#include "support/AtomicFile.h"
#include "support/CliArgs.h"
#include "support/Truncation.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace pseq {
namespace benchsupport {

namespace detail {
inline obs::Telemetry *&telemetrySlot() {
  static obs::Telemetry *Slot = nullptr;
  return Slot;
}
inline unsigned &numThreadsSlot() {
  static unsigned Slot = exec::defaultNumThreads();
  return Slot;
}
inline guard::ResourceGuard *&guardSlot() {
  static guard::ResourceGuard *Slot = nullptr;
  return Slot;
}
inline memo::MemoContext *&memoSlot() {
  static memo::MemoContext *Slot = nullptr;
  return Slot;
}
inline ValidationMethod &methodSlot() {
  static ValidationMethod Slot = ValidationMethod::Advanced;
  return Slot;
}
} // namespace detail

/// The harness telemetry: null unless --json was passed (so default runs
/// measure the uninstrumented engines). Benchmarks pass this into their
/// SeqConfig/PsConfig/PipelineOptions.
inline obs::Telemetry *telemetry() { return detail::telemetrySlot(); }

/// The worker count requested with --threads (0 = hardware concurrency;
/// defaults to PSEQ_THREADS, else 1). Benchmarks pass this into their
/// SeqConfig/PsConfig/PipelineOptions.
inline unsigned numThreads() { return detail::numThreadsSlot(); }

/// The run-wide guard armed by --deadline-ms / --mem-mb, or null when
/// neither flag was given. Benchmarks pass this into their configs; a
/// governed run degrades to bounded verdicts once a budget trips.
inline guard::ResourceGuard *resourceGuard() { return detail::guardSlot(); }

/// The run-wide memoization context, shared across every benchmark of the
/// binary (repeated iterations of the same workload hit the caches), or
/// null when --no-memo was passed. Benchmarks pass this into their
/// SeqConfig/PsConfig/PipelineOptions.
inline memo::MemoContext *memoContext() { return detail::memoSlot(); }

/// The validation method requested with --method (default Advanced).
/// Benchmarks that validate transformations pass this into their
/// PipelineOptions / validateTransform calls, so one binary measures any
/// decision-procedure lane (`--method sym` selects the symbolic backend).
inline ValidationMethod validationMethod() { return detail::methodSlot(); }

namespace detail {

/// One recorded benchmark run.
struct Row {
  std::string Name;
  double RealTime = 0;
  double CpuTime = 0;
  std::string TimeUnit;
  uint64_t Iterations = 0;
  bool Error = false;
  std::vector<std::pair<std::string, double>> Counters;
};

/// Console output as usual, plus a record of every run for the JSON dump.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  std::vector<Row> Rows;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      Row Out;
      Out.Name = R.benchmark_name();
      Out.RealTime = R.GetAdjustedRealTime();
      Out.CpuTime = R.GetAdjustedCPUTime();
      Out.TimeUnit = benchmark::GetTimeUnitString(R.time_unit);
      Out.Iterations = static_cast<uint64_t>(R.iterations);
      Out.Error = R.error_occurred;
      for (const auto &[Name, Counter] : R.counters)
        Out.Counters.emplace_back(Name, static_cast<double>(Counter));
      Rows.push_back(std::move(Out));
    }
    benchmark::ConsoleReporter::ReportRuns(Reports);
  }
};

inline bool writeJson(const std::string &Path, const std::vector<Row> &Rows,
                      const obs::Telemetry &Telem,
                      const memo::MemoContext *Memo) {
  std::string Out = "{\"benchmarks\":[";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    if (I)
      Out += ",";
    Out += "{\"name\":\"" + obs::jsonEscape(R.Name) + "\"";
    Out += ",\"real_time\":" + obs::jsonNumber(R.RealTime);
    Out += ",\"cpu_time\":" + obs::jsonNumber(R.CpuTime);
    Out += ",\"time_unit\":\"" + obs::jsonEscape(R.TimeUnit) + "\"";
    Out += ",\"iterations\":" + std::to_string(R.Iterations);
    if (R.Error)
      Out += ",\"error\":true";
    Out += ",\"counters\":{";
    for (size_t C = 0; C != R.Counters.size(); ++C) {
      if (C)
        Out += ",";
      Out += "\"" + obs::jsonEscape(R.Counters[C].first) +
             "\":" + obs::jsonNumber(R.Counters[C].second);
    }
    Out += "}}";
  }
  Out += "]";

  // Memo summary for the perf-regression gate (tools/check_bench_baseline):
  // total engine states explored plus the cache/prune counters.
  uint64_t States = Telem.Counters.counter("seq.enum.states_expanded") +
                    Telem.Counters.counter("psna.explore.states_expanded");
  Out += ",\"memo\":{";
  Out += "\"enabled\":" + std::string(Memo ? "true" : "false");
  Out += ",\"states_explored\":" + std::to_string(States);
  Out += ",\"memo_hits\":" + std::to_string(Memo ? Memo->hits() : 0);
  Out += ",\"memo_misses\":" + std::to_string(Memo ? Memo->misses() : 0);
  Out += ",\"pruned_states\":" + std::to_string(Memo ? Memo->pruned() : 0);
  Out += "}";

  Out += ",\"telemetry\":" + obs::renderReportJson(Telem) + "}\n";

  // Atomic (temp + rename): the perf gate parses this file; a bench run
  // killed mid-write must not leave a truncated JSON behind.
  return support::writeFileAtomic(Path, Out);
}

} // namespace detail

/// Runs the harness: strips `--json <path>` (or `--json=<path>`) and
/// `--threads N` (or `--threads=N`), forwards everything else to
/// google-benchmark, and — when --json was given — enables telemetry and
/// writes run timings plus the telemetry report as a single JSON object to
/// the path.
inline int benchMain(int Argc, char **Argv) {
  std::string JsonPath, TracePath, TraceOutPath, HeartbeatPath;
  uint64_t DeadlineMs = 0, MemMb = 0, HeartbeatMs = 500;
  bool NoMemo = false;
  std::vector<char *> Args;

  // Strict flags: a malformed or missing value must fail loudly, never
  // parse as 0 (which would silently mean "all hardware threads" / "no
  // budget") or as an empty path. Numeric flags go through
  // parseUnsignedInRange, so the diagnostic names the flag, the offending
  // token, and the first bad column.
  auto usage = [&](const std::string &Err) -> int {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    std::fprintf(stderr,
                 "usage: %s [--json <path>] [--threads N] [--method NAME] "
                 "[--deadline-ms N] "
                 "[--mem-mb N] [--no-memo] [--trace <path>] "
                 "[--trace-out <path>] [--heartbeat <path>] "
                 "[--heartbeat-ms N] [google-benchmark flags...]\n",
                 Argc ? Argv[0] : "bench");
    return 1;
  };
  auto usageError = [&](const char *Flag, const char *Value) -> int {
    return usage(std::string("invalid value '") + (Value ? Value : "") +
                 "' for " + Flag);
  };
  for (int I = 0; I != Argc; ++I) {
    const char *Value = nullptr;
    std::string Err;
    if (cli::flagValue(Argc, Argv, I, "--json", Value)) {
      if (!Value || !*Value)
        return usageError("--json", Value);
      JsonPath = Value;
      continue;
    }
    // --trace-out before --trace: flagValue matches whole flag names only,
    // but keeping the longer spelling first reads unambiguously.
    if (cli::flagValue(Argc, Argv, I, "--trace-out", Value)) {
      if (!Value || !*Value)
        return usageError("--trace-out", Value);
      TraceOutPath = Value;
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--trace", Value)) {
      if (!Value || !*Value)
        return usageError("--trace", Value);
      TracePath = Value;
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--heartbeat-ms", Value)) {
      // A zero period would spin the sampler thread; an hour-plus one
      // means the heartbeat never fires before any sane deadline.
      if (!cli::parseUnsignedInRange("--heartbeat-ms", Value, uint64_t(1),
                                     uint64_t(3600000), HeartbeatMs, Err))
        return usage(Err);
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--heartbeat", Value)) {
      if (!Value || !*Value)
        return usageError("--heartbeat", Value);
      HeartbeatPath = Value;
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--threads", Value)) {
      // 0 = all hardware threads; anything past the pool's hard cap is
      // rejected up front instead of being clamped mid-run.
      if (!cli::parseUnsignedInRange("--threads", Value, 0u,
                                     exec::maxThreads(),
                                     detail::numThreadsSlot(), Err))
        return usage(Err);
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--method", Value)) {
      // Same non-fatal diagnosis as the example binaries: a typo lists
      // the available methods instead of silently defaulting.
      std::optional<ValidationMethod> M;
      if (Value)
        M = parseValidationMethodMaybe(Value);
      if (!M)
        return usage(std::string("unknown validation method '") +
                     (Value ? Value : "") +
                     "' (available methods: " + validationMethodList() +
                     ")");
      detail::methodSlot() = *M;
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--deadline-ms", Value)) {
      if (!cli::parseUnsignedInRange(
              "--deadline-ms", Value, uint64_t(1),
              std::numeric_limits<uint64_t>::max(), DeadlineMs, Err))
        return usage(Err);
      continue;
    }
    if (cli::flagValue(Argc, Argv, I, "--mem-mb", Value)) {
      if (!cli::parseUnsignedInRange("--mem-mb", Value, uint64_t(1),
                                     uint64_t(1) << 24, MemMb, Err))
        return usage(Err);
      continue;
    }
    if (std::string(Argv[I]) == "--no-memo") {
      NoMemo = true;
      continue;
    }
    Args.push_back(Argv[I]);
  }
  int NewArgc = static_cast<int>(Args.size());

  memo::MemoContext Memo;
  if (!NoMemo)
    detail::memoSlot() = &Memo;

  // SIGINT/SIGTERM turn into a graceful stop: the handler trips the
  // process-wide token, so a governed run drains into bounded `cancelled`
  // verdicts, and the harness still writes every report it was asked for
  // before exiting with the distinct graceful code.
  guard::installShutdownHandlers();

  guard::ResourceGuard Guard;
  Guard.setToken(&guard::shutdownToken());
  if (DeadlineMs || MemMb) {
    if (DeadlineMs)
      Guard.setDeadlineInMs(DeadlineMs);
    if (MemMb)
      Guard.setMemLimitBytes(MemMb << 20);
    detail::guardSlot() = &Guard;
  }

  const bool WantTelemetry = !JsonPath.empty() || !TracePath.empty() ||
                             !TraceOutPath.empty() || !HeartbeatPath.empty();
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  std::unique_ptr<obs::TraceSink> Sink;
  obs::Heartbeat Beat;
  if (WantTelemetry) {
    Sink = obs::traceSinkFromFlagOrEnv(TracePath);
    Telem.Sink = Sink.get();
    if (!TraceOutPath.empty())
      Telem.Spans = &Spans;
    detail::telemetrySlot() = &Telem;
  }
  if (!HeartbeatPath.empty()) {
    // Probes read only lock-free state (atomics and stats snapshots); the
    // obs::Stats maps are off-limits while engines run.
    exec::ThreadPool &Pool = exec::ThreadPool::global();
    Beat.addProbe("pool.bodies_run", [&Pool] {
      return static_cast<double>(Pool.stats().BodiesRun);
    });
    Beat.addProbe("pool.steals", [&Pool] {
      return static_cast<double>(Pool.stats().Steals);
    });
    Beat.addProbe("pool.pending", [&Pool] {
      return static_cast<double>(Pool.stats().PendingBodies);
    });
    Beat.addProbe("pool.idle_wait_ns", [&Pool] {
      return static_cast<double>(Pool.stats().IdleWaitNs);
    });
    Beat.addProbe("guard.mem_peak_bytes", [&Guard] {
      return static_cast<double>(Guard.memPeakBytes());
    });
    Beat.addProbe("guard.checkpoint_polls", [&Guard] {
      return static_cast<double>(Guard.checkpointPolls());
    });
    Beat.addProbe("memo.hits", [&Memo] {
      return static_cast<double>(Memo.hits());
    });
    Beat.addProbe("memo.misses", [&Memo] {
      return static_cast<double>(Memo.misses());
    });
    Beat.addProbe("spans.recorded", [&Spans] {
      return static_cast<double>(Spans.totalSpans());
    });
    if (!Beat.start(HeartbeatPath, HeartbeatMs))
      std::fprintf(stderr, "warning: cannot write heartbeat to %s\n",
                   HeartbeatPath.c_str());
  }

  benchmark::Initialize(&NewArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, Args.data()))
    return 1;
  detail::RecordingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  Beat.stop();

  if (WantTelemetry) {
    // Fold the run-wide profiling state into gauges so it lands in the
    // report. Gauges are thread-count dependent (unlike the engines'
    // counters/size-histograms) and excluded from determinism checks.
    exec::ThreadPool::Stats PS = exec::ThreadPool::global().stats();
    Telem.Counters.maxGauge("pool.batches", static_cast<double>(PS.Batches));
    Telem.Counters.maxGauge("pool.bodies_run",
                            static_cast<double>(PS.BodiesRun));
    Telem.Counters.maxGauge("pool.steals", static_cast<double>(PS.Steals));
    Telem.Counters.maxGauge("pool.idle_wait_ns",
                            static_cast<double>(PS.IdleWaitNs));
    Telem.Counters.maxGauge("pool.threads_spawned",
                            static_cast<double>(PS.ThreadsSpawned));
    Telem.Counters.maxGauge("guard.mem_peak_bytes",
                            static_cast<double>(Guard.memPeakBytes()));
    Telem.Counters.maxGauge("guard.checkpoint_polls",
                            static_cast<double>(Guard.checkpointPolls()));
    if (!NoMemo) {
      memo::MemoContext::ShardStats SeqSS =
          Memo.shardStats(memo::MemoContext::Table::SeqSuffix);
      memo::MemoContext::ShardStats PsSS =
          Memo.shardStats(memo::MemoContext::Table::PsBehaviors);
      Telem.Counters.maxGauge("memo.seq_suffix.entries",
                              static_cast<double>(SeqSS.Entries));
      Telem.Counters.maxGauge("memo.seq_suffix.max_shard",
                              static_cast<double>(SeqSS.MaxShard));
      Telem.Counters.maxGauge("memo.ps_behaviors.entries",
                              static_cast<double>(PsSS.Entries));
      Telem.Counters.maxGauge("memo.ps_behaviors.max_shard",
                              static_cast<double>(PsSS.MaxShard));
    }
    Telem.finalSnapshot(Guard.stopped() ? truncationCauseName(Guard.cause())
                        : guard::shutdownRequested() ? "shutdown-signal"
                                                     : "complete");
  }

  if (!TraceOutPath.empty() &&
      !obs::writeChromeTrace(Spans, TraceOutPath, Argc ? Argv[0] : "bench")) {
    std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
    return 1;
  }
  if (!JsonPath.empty() &&
      !detail::writeJson(JsonPath, Reporter.Rows, Telem,
                         NoMemo ? nullptr : &Memo)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  detail::telemetrySlot() = nullptr;
  detail::guardSlot() = nullptr;
  detail::memoSlot() = nullptr;
  // Reports are on disk by now; the graceful code tells callers the run
  // was cut short by a signal, not that it completed or crashed.
  return guard::shutdownRequested() ? guard::GracefulSignalExit : 0;
}

} // namespace benchsupport
} // namespace pseq

#endif // PSEQ_BENCH_BENCHSUPPORT_H
