//===- bench/bench_realworld.cpp - RealWorld corpus exploration -----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures exhaustive PS^na exploration of every real-world protocol case
// (litmus/RealWorld.h) under its own corpus budgets, plus a whole-corpus
// sweep that is the states/sec figure BENCH_BASELINE.json gates.
//
// Counters: states explored, distinct behaviors, states/sec (corpus
// sweep), truncation (must stay 0 — a truncated bench run measures the
// budget, not the corpus).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/RealWorld.h"
#include "psna/Explorer.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

PsConfig benchConfig(const RealWorldCase &RC) {
  PsConfig Cfg = realWorldPsConfig(RC);
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  return Cfg;
}

void runCase(benchmark::State &State, const RealWorldCase &RC) {
  std::unique_ptr<Program> P = parseOrDie(RC.Text);
  PsConfig Cfg = benchConfig(RC);
  PsBehaviorSet B;
  for (auto _ : State) {
    B = explorePsna(*P, Cfg);
    benchmark::ClobberMemory();
  }
  State.counters["states"] = static_cast<double>(B.StatesExplored);
  State.counters["behaviors"] = static_cast<double>(B.All.size());
  State.counters["truncated"] = B.truncated();
}

void runCorpusSweep(benchmark::State &State) {
  uint64_t States = 0;
  unsigned Truncated = 0;
  for (auto _ : State) {
    States = 0;
    Truncated = 0;
    for (const RealWorldCase &RC : realWorldCorpus()) {
      std::unique_ptr<Program> P = parseOrDie(RC.Text);
      PsBehaviorSet B = explorePsna(*P, benchConfig(RC));
      States += B.StatesExplored;
      Truncated += B.truncated();
    }
    benchmark::ClobberMemory();
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["truncated"] = static_cast<double>(Truncated);
  State.counters["cases"] =
      static_cast<double>(realWorldCorpus().size());
  // states/sec over the whole corpus: the throughput figure the bench
  // baseline tracks.
  State.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(States) * State.iterations(),
      benchmark::Counter::kIsRate);
}

void registerAll() {
  for (const RealWorldCase &RC : realWorldCorpus()) {
    std::string Id = std::string("explore/") + RC.Name;
    benchmark::RegisterBenchmark(Id.c_str(),
                                 [&RC](benchmark::State &S) { runCase(S, RC); });
  }
  benchmark::RegisterBenchmark("corpus/sweep", runCorpusSweep);
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  return benchsupport::benchMain(argc, argv);
}
