//===- bench/bench_optimizer.cpp - E10: optimizer throughput --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures the four analyses/passes and the full pipeline on synthetic
// programs of growing size, plus the §4 claim that the fixpoint converges
// within three iterations on loops (reported as a counter). Validation
// cost is benchmarked separately from pure optimization.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "opt/Pipeline.h"
#include "opt/SlfAnalysis.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

/// A block-structured program with \p Blocks store/load/branch groups and
/// one choose-driven loop, exercising every pass.
std::string synthetic(unsigned Blocks) {
  std::string Out = "na x, w; atomic y;\nthread {\n";
  for (unsigned I = 0; I != Blocks; ++I) {
    std::string K = std::to_string(I % 3);
    Out += "  x@na := " + K + ";\n";
    Out += "  a" + std::to_string(I) + " := x@na;\n";
    if (I % 2)
      Out += "  y@rel := 1;\n";
    Out += "  b" + std::to_string(I) + " := x@na;\n";
    Out += "  x@na := " + K + ";\n";
  }
  Out += "  c := choose;\n"
         "  while (c != 0) { q := w@na; c := choose; }\n"
         "  return a0;\n}";
  return Out;
}

void BM_AnalyzeSlf(benchmark::State &State) {
  std::unique_ptr<Program> P =
      parseOrDie(synthetic(static_cast<unsigned>(State.range(0))));
  unsigned Iters = 0;
  for (auto _ : State) {
    SlfAnalysisResult R = analyzeSlf(*P, 0);
    Iters = R.MaxLoopIterations;
    benchmark::ClobberMemory();
  }
  State.counters["fixpoint_iters"] = Iters;
}
BENCHMARK(BM_AnalyzeSlf)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PipelineNoValidation(benchmark::State &State) {
  std::unique_ptr<Program> P =
      parseOrDie(synthetic(static_cast<unsigned>(State.range(0))));
  PipelineOptions Opts;
  Opts.Validate = false;
  Opts.Telem = benchsupport::telemetry();
  Opts.NumThreads = benchsupport::numThreads();
  Opts.Guard = benchsupport::resourceGuard();
  Opts.Memo = benchsupport::memoContext();
  unsigned Rewrites = 0;
  for (auto _ : State) {
    PipelineResult R = runPipeline(*P, Opts);
    Rewrites = R.TotalRewrites;
    benchmark::ClobberMemory();
  }
  State.counters["rewrites"] = Rewrites;
}
BENCHMARK(BM_PipelineNoValidation)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PipelineValidated(benchmark::State &State) {
  // Validation is exponential in footprint/length: bench on small inputs
  // (the translation-validation use case targets peephole-sized regions).
  std::unique_ptr<Program> P =
      parseOrDie(synthetic(static_cast<unsigned>(State.range(0))));
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain::ternary();
  Opts.Cfg.StepBudget = 20;
  Opts.Method = benchsupport::validationMethod();
  Opts.Telem = benchsupport::telemetry();
  Opts.NumThreads = benchsupport::numThreads();
  Opts.Guard = benchsupport::resourceGuard();
  Opts.Memo = benchsupport::memoContext();
  bool AllValidated = false;
  for (auto _ : State) {
    PipelineResult R = runPipeline(*P, Opts);
    AllValidated = R.AllValidated;
    benchmark::ClobberMemory();
  }
  State.counters["all_validated"] = AllValidated;
}
BENCHMARK(BM_PipelineValidated)->Arg(1)->Arg(2);

} // namespace

int main(int argc, char **argv) {
  return benchsupport::benchMain(argc, argv);
}
