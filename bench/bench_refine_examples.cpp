//===- bench/bench_refine_examples.cpp - E3/E4/E5: verdict table ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Regenerates the paper's per-example verdicts while measuring the cost of
// the simple (Def 2.4) versus advanced (Def 3.3) decision procedures — the
// ablation DESIGN.md calls out: the advanced notion's oracle game is only
// needed for a handful of transformations and costs more.
//
// Counters: verdict (1 = holds), expected verdict, target behaviors.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "seq/AdvancedRefinement.h"
#include "seq/Simulation.h"
#include "seq/SimpleRefinement.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

void runCase(benchmark::State &State, const RefinementCase &RC,
             bool Advanced) {
  std::unique_ptr<Program> Src = parseOrDie(RC.Src);
  std::unique_ptr<Program> Tgt = parseOrDie(RC.Tgt);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();

  RefinementResult R;
  for (auto _ : State) {
    R = Advanced ? checkAdvancedRefinement(*Src, *Tgt, Cfg)
                 : checkSimpleRefinement(*Src, *Tgt, Cfg);
    benchmark::ClobberMemory();
  }
  State.counters["holds"] = R.Holds;
  State.counters["expected"] = Advanced ? RC.AdvancedHolds : RC.SimpleHolds;
  State.counters["tgt_behaviors"] = static_cast<double>(R.TgtBehaviors);
}

void runSimCase(benchmark::State &State, const RefinementCase &RC) {
  std::unique_ptr<Program> Src = parseOrDie(RC.Src);
  std::unique_ptr<Program> Tgt = parseOrDie(RC.Tgt);
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.StepBudget = RC.StepBudget;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  SimulationResult R;
  for (auto _ : State) {
    R = checkSimulation(*Src, *Tgt, Cfg);
    benchmark::ClobberMemory();
  }
  State.counters["holds"] = R.Holds;
  State.counters["expected"] = RC.AdvancedHolds;
  State.counters["product_nodes"] = static_cast<double>(R.ProductNodes);
}

void registerCorpus(const std::vector<RefinementCase> &Corpus) {
  for (const RefinementCase &RC : Corpus) {
    benchmark::RegisterBenchmark(("simple/" + RC.Name).c_str(),
                                 [&RC](benchmark::State &S) {
                                   runCase(S, RC, /*Advanced=*/false);
                                 });
    benchmark::RegisterBenchmark(("advanced/" + RC.Name).c_str(),
                                 [&RC](benchmark::State &S) {
                                   runCase(S, RC, /*Advanced=*/true);
                                 });
    benchmark::RegisterBenchmark(
        ("simulation/" + RC.Name).c_str(),
        [&RC](benchmark::State &S) { runSimCase(S, RC); });
  }
}

void registerAll() {
  registerCorpus(refinementCorpus());
  registerCorpus(extensionCorpus());
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  return benchsupport::benchMain(argc, argv);
}
