//===- bench/bench_sym.cpp - Symbolic refinement backend ------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Measures the symbolic refinement backend (src/sym, EXPERIMENTS.md E23):
// per-thread self-refinement checks over the RealWorld spin-loop
// protocols — the workload the enumerative checkers can only truncate
// on — plus a whole-corpus sweep that is the nodes/sec and decided-count
// figure the sym-gate baseline pins, and a validated refinement-corpus
// pass under the --method lane (default advanced; `--method sym`
// measures the symbolic validator end-to-end).
//
// Counters: product nodes, joins, widenings, sound/decided tallies
// (sweep), nodes/sec. Confirmation is disabled for the corpus sweeps
// (an enumerative confirm costs more than the whole sweep and the
// protocols are all expected Sound anyway).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "litmus/RealWorld.h"
#include "opt/Validator.h"
#include "sym/SymEngine.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

using namespace pseq;

namespace {

SeqConfig benchConfig(const RealWorldCase &RC) {
  SeqConfig Cfg;
  Cfg.Domain = RC.Domain;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  return Cfg;
}

sym::SymOptions benchSymOptions() {
  sym::SymOptions Opts;
  Opts.ConfirmUnsound = false;
  return Opts;
}

void runThread(benchmark::State &State, const RealWorldCase &RC,
               unsigned Tid) {
  std::unique_ptr<Program> P = parseOrDie(RC.Text);
  SeqConfig Cfg = benchConfig(RC);
  sym::SymResult R;
  for (auto _ : State) {
    R = sym::checkSymRefinement(*P, Tid, *P, Tid, Cfg, benchSymOptions());
    benchmark::ClobberMemory();
  }
  State.counters["nodes"] = static_cast<double>(R.Nodes);
  State.counters["joins"] = static_cast<double>(R.Joins);
  State.counters["widenings"] = static_cast<double>(R.Widenings);
  State.counters["sound"] = R.Verdict == sym::SymVerdict::Sound;
}

void runCorpusSweep(benchmark::State &State) {
  uint64_t Nodes = 0;
  unsigned Checked = 0, Sound = 0, Unsound = 0;
  for (auto _ : State) {
    Nodes = 0;
    Checked = Sound = Unsound = 0;
    for (const RealWorldCase &RC : realWorldCorpus()) {
      if (RC.IsMutant)
        continue;
      std::unique_ptr<Program> P = parseOrDie(RC.Text);
      SeqConfig Cfg = benchConfig(RC);
      for (unsigned Tid = 0; Tid != P->numThreads(); ++Tid) {
        sym::SymResult R =
            sym::checkSymRefinement(*P, Tid, *P, Tid, Cfg, benchSymOptions());
        ++Checked;
        Nodes += R.Nodes;
        Sound += R.Verdict == sym::SymVerdict::Sound;
        Unsound += R.Verdict == sym::SymVerdict::Unsound;
      }
    }
    benchmark::ClobberMemory();
  }
  State.counters["checked"] = Checked;
  State.counters["sound"] = Sound;
  State.counters["unsound"] = Unsound;
  State.counters["nodes"] = static_cast<double>(Nodes);
  // nodes/sec over the whole protocol sweep: the throughput figure the
  // bench baseline tracks.
  State.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(Nodes) * State.iterations(),
      benchmark::Counter::kIsRate);
}

void runValidatedCorpus(benchmark::State &State) {
  // The refinement corpus under validateTransform with the --method lane:
  // `--method sym` measures the symbolic validator on the same pairs the
  // enumerative lanes are benched on (bench_refine_examples).
  unsigned Accepts = 0;
  for (auto _ : State) {
    Accepts = 0;
    for (const RefinementCase &RC : refinementCorpus()) {
      std::unique_ptr<Program> Src = parseOrDie(RC.Src);
      std::unique_ptr<Program> Tgt = parseOrDie(RC.Tgt);
      SeqConfig Cfg;
      Cfg.Domain = RC.Domain;
      Cfg.StepBudget = RC.StepBudget;
      Cfg.Telem = benchsupport::telemetry();
      Cfg.NumThreads = benchsupport::numThreads();
      Cfg.Guard = benchsupport::resourceGuard();
      Cfg.Memo = benchsupport::memoContext();
      ValidationResult V = validateTransform(
          *Src, *Tgt, Cfg, benchsupport::validationMethod());
      Accepts += V.Ok;
    }
    benchmark::ClobberMemory();
  }
  State.counters["pairs"] =
      static_cast<double>(refinementCorpus().size());
  State.counters["accepts"] = Accepts;
}

void registerAll() {
  for (const RealWorldCase &RC : realWorldCorpus()) {
    if (RC.IsMutant)
      continue;
    std::unique_ptr<Program> P = parseOrDie(RC.Text);
    for (unsigned Tid = 0; Tid != P->numThreads(); ++Tid) {
      std::string Id =
          "sym/" + RC.Name + "/thread" + std::to_string(Tid);
      benchmark::RegisterBenchmark(
          Id.c_str(),
          [&RC, Tid](benchmark::State &S) { runThread(S, RC, Tid); });
    }
  }
  benchmark::RegisterBenchmark("corpus/sweep", runCorpusSweep);
  benchmark::RegisterBenchmark("validate/refinement-corpus",
                               runValidatedCorpus);
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  return benchsupport::benchMain(argc, argv);
}
