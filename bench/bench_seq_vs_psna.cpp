//===- bench/bench_seq_vs_psna.cpp - E17: why sequential reasoning --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The paper's thesis, quantified: validating a thread-local transformation
// with the SEQ checker costs the same no matter how many threads surround
// it, while checking contextual refinement directly in PS^na grows with
// every added context thread (and requires fixing the context at all).
// This regenerates the shape: SEQ flat, PS^na blowing up in context size.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "psna/Refinement.h"
#include "seq/AdvancedRefinement.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace pseq;

namespace {

// Example 2.11's SLF-across-release — sound, validated by SEQ once and for
// all, versus PS^na re-checked per context.
const char *SrcText = "na x; atomic y;\n"
                      "thread { x@na := 1; y@rel := 1; b := x@na; "
                      "return b; }";
const char *TgtText = "na x; atomic y;\n"
                      "thread { x@na := 1; y@rel := 1; b := 1; "
                      "return b; }";

/// Appends \p N observer threads to the program.
void addContexts(Program &P, unsigned N) {
  unsigned X = *P.lookupLoc("x");
  unsigned Y = *P.lookupLoc("y");
  for (unsigned I = 0; I != N; ++I) {
    unsigned Tid = P.addThread();
    Program::ThreadCode &T = P.thread(Tid);
    unsigned B = T.Regs.intern("cb");
    unsigned A = T.Regs.intern("ca");
    const Stmt *Then = P.stmtSeq(
        {P.stmtLoad(A, X, ReadMode::NA), P.stmtReturn(P.exprReg(A))});
    P.setThreadBody(
        Tid, P.stmtSeq({P.stmtLoad(B, Y, ReadMode::ACQ),
                        P.stmtIf(P.exprBin(BinOp::Eq, P.exprReg(B),
                                           P.exprConst(1)),
                                 Then, P.stmtReturn(P.exprConst(2)))}));
  }
}

void BM_SeqAdvancedCheck(benchmark::State &State) {
  // The SEQ check is independent of any context (that is the point);
  // range(0) is carried only to align the series in the output table.
  std::unique_ptr<Program> Src = parseOrDie(SrcText);
  std::unique_ptr<Program> Tgt = parseOrDie(TgtText);
  SeqConfig Cfg;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  bool Holds = false;
  for (auto _ : State) {
    Holds = checkAdvancedRefinement(*Src, *Tgt, Cfg).Holds;
    benchmark::ClobberMemory();
  }
  State.counters["holds"] = Holds;
  State.counters["context_threads"] = static_cast<double>(State.range(0));
}
BENCHMARK(BM_SeqAdvancedCheck)->Arg(0)->Arg(1)->Arg(2);

void BM_PsnaContextualCheck(benchmark::State &State) {
  std::unique_ptr<Program> Src = parseOrDie(SrcText);
  std::unique_ptr<Program> Tgt = parseOrDie(TgtText);
  unsigned N = static_cast<unsigned>(State.range(0));
  addContexts(*Src, N);
  addContexts(*Tgt, N);
  PsConfig Cfg;
  Cfg.Telem = benchsupport::telemetry();
  Cfg.NumThreads = benchsupport::numThreads();
  Cfg.Guard = benchsupport::resourceGuard();
  Cfg.Memo = benchsupport::memoContext();
  unsigned long long States = 0;
  bool Holds = false;
  for (auto _ : State) {
    PsRefinementResult R = checkPsRefinement(*Src, *Tgt, Cfg);
    Holds = R.Holds;
    States = R.SrcStates + R.TgtStates;
    benchmark::ClobberMemory();
  }
  State.counters["holds"] = Holds;
  State.counters["context_threads"] = static_cast<double>(N);
  State.counters["states"] = static_cast<double>(States);
}
BENCHMARK(BM_PsnaContextualCheck)->Arg(0)->Arg(1)->Arg(2);

} // namespace

int main(int argc, char **argv) {
  return benchsupport::benchMain(argc, argv);
}
