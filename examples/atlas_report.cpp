//===- examples/atlas_report.cpp - The transformation atlas, tabulated ----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Enumerates and decides the full transformation atlas (src/atlas) and
// prints per-category tallies plus the machine-readable summary line the
// CI baseline gate greps for (tools/check_bench_baseline.py). With
// --markdown the rendered golden table goes to stdout instead, byte-equal
// to tests/golden/atlas.md.
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"
#include "exec/ThreadPool.h"
#include "support/CliArgs.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

using namespace pseq;

int main(int Argc, char **Argv) {
  bool Markdown = false;
  atlas::AtlasOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    std::string Err;
    if (std::strcmp(Argv[I], "--markdown") == 0) {
      Markdown = true;
    } else if (cli::flagValue(Argc, Argv, I, "--threads", Value)) {
      if (!cli::parseUnsignedInRange("--threads", Value, 1u,
                                     exec::maxThreads(), Opts.NumThreads,
                                     Err)) {
        std::fprintf(stderr, "atlas_report: %s\n", Err.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: atlas_report [--markdown] [--threads N]\n");
      return 2;
    }
  }

  atlas::AtlasResult R = atlas::buildAtlas(Opts);
  if (Markdown) {
    std::fputs(atlas::renderAtlasMarkdown(R).c_str(), stdout);
    return 0;
  }

  std::map<std::string, std::map<atlas::AtlasVerdict, unsigned>> ByCat;
  for (const atlas::AtlasEntry &E : R.Entries)
    ++ByCat[atlas::categoryName(E.Cat)][E.Verdict];
  std::printf("%-10s %6s %15s %8s\n", "category", "sound", "seq-incomplete",
              "unsound");
  for (const auto &[Cat, Tally] : ByCat) {
    auto get = [&](atlas::AtlasVerdict V) {
      auto It = Tally.find(V);
      return It == Tally.end() ? 0u : It->second;
    };
    std::printf("%-10s %6u %15u %8u\n", Cat.c_str(),
                get(atlas::AtlasVerdict::Sound),
                get(atlas::AtlasVerdict::SeqIncomplete),
                get(atlas::AtlasVerdict::Unsound));
  }
  std::printf("%s\n", R.summaryLine().c_str());
  // Mismatch rows are pinned (not forbidden): the golden table and the
  // baseline gate hold the set fixed, so the report itself always exits 0.
  return 0;
}
