//===- examples/translation_validator.cpp - Alive2-style validation -------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Checks whether a target program refines a source program in SEQ — under
// both the simple (Def 2.4) and advanced (Def 3.3) notions — exactly the
// "SMT-based translation validation" use case §7 sketches for the model:
//
//   translation_validator [--method NAME] source.pseq target.pseq
//
// By default the file mode prints all three enumeration-based verdicts
// plus the validator's; `--method NAME` (simple | advanced | simulation |
// symbolic) runs the validator under that single decision procedure — a
// typo lists the available methods and exits 2 instead of aborting.
//
// Without file arguments it runs the paper's example corpus and prints
// the verdict table (DESIGN.md experiment E3/E4).
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "opt/Validator.h"
#include "seq/AdvancedRefinement.h"
#include "seq/Simulation.h"
#include "seq/SimpleRefinement.h"
#include "support/CliArgs.h"

#include "lang/Parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

using namespace pseq;

namespace {

std::string slurp(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    std::exit(1);
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

const char *mark(bool B) { return B ? "yes" : "no "; }

} // namespace

int main(int Argc, char **Argv) {
  std::optional<ValidationMethod> Method;
  std::vector<const char *> Files;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    if (cli::flagValue(Argc, Argv, I, "--method", Value)) {
      if (Value)
        Method = parseValidationMethodMaybe(Value);
      if (!Method) {
        std::fprintf(stderr,
                     "error: unknown validation method '%s'\n"
                     "available methods: %s\n",
                     Value ? Value : "", validationMethodList());
        return 2;
      }
      continue;
    }
    Files.push_back(Argv[I]);
  }
  if (Files.size() == 2) {
    std::unique_ptr<Program> Src = parseOrDie(slurp(Files[0]));
    std::unique_ptr<Program> Tgt = parseOrDie(slurp(Files[1]));
    if (!sameLayout(*Src, *Tgt)) {
      std::fprintf(stderr, "error: programs declare different layouts\n");
      return 1;
    }
    if (Method) {
      ValidationResult V =
          validateTransform(*Src, *Tgt, SeqConfig(), *Method);
      std::printf("validator  (%s): %s — %llu states, %.2f ms%s\n",
                  validationMethodName(V.MethodUsed),
                  V.Ok ? "ACCEPTS" : "REJECTS", V.StatesExplored, V.ElapsedMs,
                  V.Bounded ? " (bounded)" : "");
      if (!V.Counterexample.empty())
        std::printf("  %s\n", V.Counterexample.c_str());
      return V.Ok ? 0 : 1;
    }
    RefinementResult Simple = checkSimpleRefinement(*Src, *Tgt);
    RefinementResult Advanced = checkAdvancedRefinement(*Src, *Tgt);
    SimulationResult Sim = checkSimulation(*Src, *Tgt);
    std::printf("simple     (Def 2.4): %s%s\n",
                Simple.Holds ? "HOLDS" : "FAILS",
                Simple.Bounded ? " (bounded)" : "");
    if (!Simple.Holds)
      std::printf("  %s\n", Simple.Counterexample.c_str());
    std::printf("advanced   (Def 3.3): %s%s\n",
                Advanced.Holds ? "HOLDS" : "FAILS",
                Advanced.Bounded ? " (bounded)" : "");
    if (!Advanced.Holds)
      std::printf("  %s\n", Advanced.Counterexample.c_str());
    std::printf("simulation (Fig. 6) : %s%s\n", Sim.Holds ? "HOLDS" : "FAILS",
                Sim.Complete ? "" : " (bounded)");
    if (!Sim.Holds)
      std::printf("  %s\n", Sim.Counterexample.c_str());

    // The per-thread validator entry point, with its work/time accounting.
    ValidationResult V = validateTransform(*Src, *Tgt);
    std::printf("validator  (%s): %s — %llu states, %.2f ms%s\n",
                validationMethodName(V.MethodUsed),
                V.Ok ? "ACCEPTS" : "REJECTS", V.StatesExplored, V.ElapsedMs,
                V.Bounded ? " (bounded)" : "");
    if (!V.Counterexample.empty())
      std::printf("  %s\n", V.Counterexample.c_str());
    return Advanced.Holds ? 0 : 1;
  }
  if (!Files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--method NAME] [source.pseq target.pseq]\n",
                 Argv[0]);
    return 2;
  }

  std::printf("%-36s %-22s %7s %9s %5s\n", "example", "paper", "simple",
              "advanced", "sim");
  std::printf("%.90s\n", std::string(90, '-').c_str());
  unsigned Mismatches = 0;
  for (const RefinementCase &RC : refinementCorpus()) {
    std::unique_ptr<Program> Src = parseOrDie(RC.Src);
    std::unique_ptr<Program> Tgt = parseOrDie(RC.Tgt);
    SeqConfig Cfg;
    Cfg.Domain = RC.Domain;
    Cfg.StepBudget = RC.StepBudget;
    RefinementResult Simple = checkSimpleRefinement(*Src, *Tgt, Cfg);
    RefinementResult Advanced = checkAdvancedRefinement(*Src, *Tgt, Cfg);
    SimulationResult Sim = checkSimulation(*Src, *Tgt, Cfg);
    bool Match = Simple.Holds == RC.SimpleHolds &&
                 Advanced.Holds == RC.AdvancedHolds &&
                 Sim.Holds == RC.AdvancedHolds;
    Mismatches += !Match;
    std::printf("%-36s %-22s %7s %9s %5s %s\n", RC.Name.c_str(),
                RC.PaperRef.c_str(), mark(Simple.Holds),
                mark(Advanced.Holds), mark(Sim.Holds),
                Match ? "" : "  <-- MISMATCH");
  }
  std::printf("\n%u mismatches against the paper's verdicts\n", Mismatches);
  return Mismatches == 0 ? 0 : 1;
}
