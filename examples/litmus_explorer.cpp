//===- examples/litmus_explorer.cpp - Exhaustive PS^na exploration --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Explores litmus tests under PS^na and prints their outcome sets —
// either a built-in corpus (no arguments) or a program from a file:
//
//   litmus_explorer [flags] [file [promise-budget [split-budget]]]
//   litmus_explorer [flags] --witness <corpus-case> <behavior>
//   litmus_explorer --list
//
//   --corpus NAME    corpus mode only: which corpus to explore — "classic"
//                    (the paper examples + classic litmus shapes, default)
//                    or "realworld" (the lock-free protocol corpus,
//                    src/litmus/RealWorld.h). The realworld run checks
//                    every case's annotations and ends with a
//                    deterministic "realworld summary:" line consumed by
//                    tools/check_bench_baseline.py --realworld-summary.
//   --method NAME    validation method for the extra refinement sweep
//                    (simple | advanced | simulation | symbolic). Today
//                    only "symbolic" changes the output: with --corpus
//                    realworld it runs the symbolic self-refinement sweep
//                    over every protocol thread, differentially checked
//                    against a budget-bounded enumerative lane, and ends
//                    with a deterministic "sym summary:" line consumed by
//                    tools/check_bench_baseline.py --sym-summary. A typo
//                    lists the available methods and exits 2.
//   --list           print every corpus with case counts and per-case
//                    paper/source refs, then exit
//   --threads N      parallelize exploration across N workers (0 = all
//                    hardware threads); outcome sets are identical for any N
//   --deadline-ms N  soft wall-clock budget for the whole run
//   --mem-mb N       approximate memory budget for retained states
//   --no-memo        disable memoization (sleep-set pruning and the
//                    cross-run behavior cache); outcome sets are identical
//                    either way
//   --no-lint        disable the static race analyzer (and with it the
//                    NAMsg-marker suppression on proved-race-free
//                    programs); outcome sets are identical either way,
//                    only the state counts change
//   --sweep N        corpus mode only: explore the whole corpus N times
//                    sharing one memo context, then print a deterministic
//                    "memo summary" block (states explored, hits, misses,
//                    pruned). The perf-regression gate diffs this block
//                    against BENCH_BASELINE.json.
//   --trace PATH     JSONL event trace (the stream PSEQ_TRACE selects; the
//                    flag wins over the env var)
//   --trace-out PATH Chrome trace-event / Perfetto JSON built from the
//                    explorer's causal spans, written at exit
//
// Numeric arguments are parsed strictly: garbage is a usage error, not a
// silent 0. Once a --deadline-ms / --mem-mb budget trips, remaining
// outcome sets print with a [TRUNCATED: deadline] / [TRUNCATED:
// mem-budget] marker instead of the run hanging or dying.
//
// The witness mode prints an execution (machine states step by step)
// exhibiting the given outcome, e.g.
//
//   litmus_explorer --witness ex5.1-promise-racy-read 'ret(undef,1)'
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "litmus/Corpus.h"
#include "litmus/RealWorld.h"
#include "memo/MemoContext.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"
#include "opt/Validator.h"
#include "psna/Explorer.h"
#include "seq/AdvancedRefinement.h"
#include "support/CliArgs.h"
#include "sym/SymEngine.h"

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

using namespace pseq;

namespace {

/// Per-corpus lint tallies for the "lint summary" line (corpus mode).
struct LintTally {
  uint64_t RaceFree = 0, PotentiallyRacy = 0, AtomicsOnly = 0;
  uint64_t RaceFreeStates = 0; ///< states explored on proved cases
};

void explore(const std::string &Title, const std::string &Text,
             const PsConfig &Cfg, bool Quiet = false,
             LintTally *Tally = nullptr) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  PsBehaviorSet B = explorePsna(*P, Cfg);
  if (Tally && B.Lint) {
    switch (*B.Lint) {
    case analysis::RaceVerdict::RaceFree:
      ++Tally->RaceFree;
      break;
    case analysis::RaceVerdict::PotentiallyRacy:
      ++Tally->PotentiallyRacy;
      break;
    case analysis::RaceVerdict::AtomicsOnly:
      ++Tally->AtomicsOnly;
      break;
    }
    if (B.MarkersSkipped)
      Tally->RaceFreeStates += B.StatesExplored;
  }
  if (Quiet)
    return;
  std::string Trunc;
  if (B.truncated())
    Trunc = std::string("  [TRUNCATED: ") + truncationCauseName(B.Cause) + "]";
  std::printf("%-28s (promises=%u splits=%u)  %u states%s\n", Title.c_str(),
              Cfg.PromiseBudget, Cfg.SplitBudget, B.StatesExplored,
              Trunc.c_str());
  for (const std::string &S : B.strs())
    std::printf("    %s\n", S.c_str());
}

int usage(const char *Prog, const std::string &Err) {
  std::fprintf(stderr, "error: %s\n", Err.c_str());
  std::fprintf(stderr,
               "usage: %s [--threads N] [--deadline-ms N] [--mem-mb N] "
               "[--no-memo] [--no-lint] [--sweep N] [--corpus classic|"
               "realworld] [--method NAME] [--trace PATH] "
               "[--trace-out PATH] [file [promise-budget [split-budget]]]\n"
               "       %s [--threads N] --witness <corpus-case> <behavior>\n"
               "       %s --list\n",
               Prog, Prog, Prog);
  return 2;
}

/// --list: every corpus with its case count and per-case refs.
int listCorpora() {
  std::printf("refinement corpus (%zu cases) — paper refinement pairs:\n",
              refinementCorpus().size());
  for (const RefinementCase &RC : refinementCorpus())
    std::printf("  %-28s [%s]\n", RC.Name.c_str(), RC.PaperRef.c_str());
  std::printf("\nextension corpus (%zu cases) — fences/RMW/choose "
              "transpositions:\n",
              extensionCorpus().size());
  for (const RefinementCase &RC : extensionCorpus())
    std::printf("  %-28s [%s]\n", RC.Name.c_str(), RC.PaperRef.c_str());
  std::printf("\nclassic corpus (%zu cases) — litmus programs "
              "(--corpus classic):\n",
              litmusCorpus().size());
  for (const LitmusCase &LC : litmusCorpus())
    std::printf("  %-28s [%s]\n", LC.Name.c_str(), LC.PaperRef.c_str());
  std::printf("\nrealworld corpus (%zu cases) — lock-free protocols "
              "(--corpus realworld):\n",
              realWorldCorpus().size());
  for (const RealWorldCase &RC : realWorldCorpus())
    std::printf("  %-28s %s[%s]\n", RC.Name.c_str(),
                RC.IsMutant ? "(mutant) " : "", RC.SourceRef.c_str());
  return 0;
}

/// Witness-mode lookup across the litmus + realworld corpora; prints the
/// available names instead of aborting when the name is unknown.
bool witnessConfig(const std::string &Name, PsConfig &Cfg,
                   std::string &Text) {
  if (const LitmusCase *LC = litmusCaseByNameMaybe(Name)) {
    Cfg.Domain = LC->Domain;
    Cfg.PromiseBudget = LC->PromiseBudget;
    Cfg.SplitBudget = LC->SplitBudget;
    Text = LC->Text;
    return true;
  }
  if (const RealWorldCase *RC = realWorldCaseByNameMaybe(Name)) {
    Cfg = realWorldPsConfig(*RC);
    Text = RC->Text;
    return true;
  }
  std::fprintf(stderr, "unknown corpus case '%s'; available cases:\n",
               Name.c_str());
  for (const LitmusCase &LC : litmusCorpus())
    std::fprintf(stderr, "  %s\n", LC.Name.c_str());
  for (const RealWorldCase &RC : realWorldCorpus())
    std::fprintf(stderr, "  %s\n", RC.Name.c_str());
  return false;
}

int usageError(const char *Prog, const std::string &What,
               const char *Value) {
  return usage(Prog, "invalid value '" + std::string(Value ? Value : "") +
                         "' for " + What);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Prog = Argc ? Argv[0] : "litmus_explorer";
  unsigned NumThreads = exec::defaultNumThreads();
  uint64_t DeadlineMs = 0, MemMb = 0;
  uint64_t Sweeps = 1;
  bool NoMemo = false;
  bool NoLint = false;
  std::string Corpus = "classic";
  std::optional<ValidationMethod> Method;
  std::string TracePath, TraceOutPath;
  {
    std::vector<char *> Rest;
    for (int I = 0; I != Argc; ++I) {
      std::string A = Argv[I];
      const char *Value = nullptr;
      std::string Err;
      if (cli::flagValue(Argc, Argv, I, "--threads", Value)) {
        // 0 = all hardware threads; the pool's hard cap bounds the rest.
        if (!cli::parseUnsignedInRange("--threads", Value, 0u,
                                       exec::maxThreads(), NumThreads, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--deadline-ms", Value)) {
        if (!cli::parseUnsignedInRange(
                "--deadline-ms", Value, uint64_t(1),
                std::numeric_limits<uint64_t>::max(), DeadlineMs, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--mem-mb", Value)) {
        if (!cli::parseUnsignedInRange("--mem-mb", Value, uint64_t(1),
                                       uint64_t(1) << 24, MemMb, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--sweep", Value)) {
        if (!cli::parseUnsignedInRange("--sweep", Value, uint64_t(1),
                                       uint64_t(1000000), Sweeps, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--trace-out", Value)) {
        if (!Value || !*Value)
          return usageError(Prog, "--trace-out", Value);
        TraceOutPath = Value;
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--trace", Value)) {
        if (!Value || !*Value)
          return usageError(Prog, "--trace", Value);
        TracePath = Value;
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--corpus", Value)) {
        Corpus = Value ? Value : "";
        if (Corpus != "classic" && Corpus != "realworld")
          return usageError(Prog, "--corpus (classic|realworld)", Value);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--method", Value)) {
        std::optional<ValidationMethod> M;
        if (Value)
          M = parseValidationMethodMaybe(Value);
        if (!M) {
          std::fprintf(stderr,
                       "error: unknown validation method '%s'\n"
                       "available methods: %s\n",
                       Value ? Value : "", validationMethodList());
          return 2;
        }
        Method = *M;
        continue;
      }
      if (A == "--list")
        return listCorpora();
      if (A == "--no-memo") {
        NoMemo = true;
        continue;
      }
      if (A == "--no-lint") {
        NoLint = true;
        continue;
      }
      Rest.push_back(Argv[I]);
    }
    Argc = static_cast<int>(Rest.size());
    for (int I = 0; I != Argc; ++I)
      Argv[I] = Rest[I];
  }

  guard::ResourceGuard Guard;
  guard::ResourceGuard *GuardPtr = nullptr;
  if (DeadlineMs || MemMb) {
    if (DeadlineMs)
      Guard.setDeadlineInMs(DeadlineMs);
    if (MemMb)
      Guard.setMemLimitBytes(MemMb << 20);
    GuardPtr = &Guard;
  }

  memo::MemoContext Memo;
  memo::MemoContext *MemoPtr = NoMemo ? nullptr : &Memo;

  // Flight recorder: the JSONL sink (flag or PSEQ_TRACE) and the span
  // recorder feed one Telemetry shared by every exploration in the run.
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  std::unique_ptr<obs::TraceSink> Sink = obs::traceSinkFromFlagOrEnv(TracePath);
  Telem.Sink = Sink.get();
  if (!TraceOutPath.empty())
    Telem.Spans = &Spans;
  const bool WantTelem = Sink != nullptr || !TraceOutPath.empty();
  // Emits the final snapshot (truncation cause included) and the Perfetto
  // export; every exit path below funnels through here.
  auto finish = [&](int Code) {
    Telem.finalSnapshot(GuardPtr && GuardPtr->stopped()
                            ? truncationCauseName(GuardPtr->cause())
                            : "complete");
    if (!TraceOutPath.empty() &&
        !obs::writeChromeTrace(Spans, TraceOutPath, "litmus_explorer")) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 1;
    }
    return Code;
  };

  if (Argc == 4 && std::string(Argv[1]) == "--witness") {
    PsConfig Cfg;
    std::string Text;
    if (!witnessConfig(Argv[2], Cfg, Text))
      return finish(2);
    std::unique_ptr<Program> P = parseOrDie(Text);
    Cfg.NumThreads = NumThreads;
    Cfg.Guard = GuardPtr;
    Cfg.Lint = !NoLint;
    Cfg.Telem = WantTelem ? &Telem : nullptr;
    std::vector<PsMachineState> Path = findPsnaWitness(*P, Cfg, Argv[3]);
    if (Path.empty()) {
      std::printf("behavior %s not reachable for %s\n", Argv[3], Argv[2]);
      return finish(1);
    }
    std::printf("witness for %s exhibiting %s (%zu machine steps):\n",
                Argv[2], Argv[3], Path.size() - 1);
    for (size_t I = 0; I != Path.size(); ++I)
      std::printf("%3zu: %s\n", I, Path[I].str().c_str());
    return finish(0);
  }
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    PsConfig Cfg;
    Cfg.NumThreads = NumThreads;
    Cfg.Guard = GuardPtr;
    Cfg.Memo = MemoPtr;
    Cfg.Lint = !NoLint;
    Cfg.Telem = WantTelem ? &Telem : nullptr;
    if (Argc > 2 && !cli::parseUnsigned(Argv[2], Cfg.PromiseBudget))
      return usageError(Prog, "promise-budget", Argv[2]);
    if (Argc > 3 && !cli::parseUnsigned(Argv[3], Cfg.SplitBudget))
      return usageError(Prog, "split-budget", Argv[3]);
    explore(Argv[1], Buf.str(), Cfg);
    return finish(0);
  }

  // RealWorld corpus mode: every exploration runs under the case's own
  // budgets (a global --deadline-ms/--mem-mb guard wins when given) and is
  // checked against its annotations on the spot. The summary line's count
  // fields are deterministic; elapsed_ms/states_per_sec are wall-clock and
  // the gate (check_bench_baseline.py --realworld-summary) treats them as
  // informational apart from an absurdly low hang-detector floor.
  if (Corpus == "realworld") {
    uint64_t Cases = 0, Protocols = 0, Mutants = 0, BadExhibited = 0;
    uint64_t Failures = 0, States = 0;
    auto T0 = std::chrono::steady_clock::now();
    std::printf("PS^na realworld outcomes (corpus of %zu cases)\n\n",
                realWorldCorpus().size());
    for (uint64_t Sweep = 0; Sweep != Sweeps; ++Sweep) {
      for (const RealWorldCase &RC : realWorldCorpus()) {
        guard::ResourceGuard CaseGuard;
        RealWorldRunOptions Opts;
        Opts.NumThreads = NumThreads;
        Opts.Lint = !NoLint;
        Opts.Telem = &Telem;
        Opts.Memo = MemoPtr;
        if (GuardPtr) {
          Opts.Guard = GuardPtr;
        } else {
          applyRealWorldGuardBudgets(CaseGuard, RC);
          Opts.Guard = &CaseGuard;
        }
        RealWorldRunResult R = runRealWorldCase(RC, Opts);
        if (Sweep != 0)
          continue; // outcome sets are identical across sweeps
        ++Cases;
        if (RC.IsMutant)
          ++Mutants;
        else
          ++Protocols;
        States += R.Behaviors.StatesExplored;
        if (RC.IsMutant && !R.Behaviors.truncated() && R.MissingBad.empty())
          ++BadExhibited;
        if (!R.clean())
          ++Failures;
        std::string Trunc;
        if (R.Behaviors.truncated())
          Trunc = std::string("  [TRUNCATED: ") +
                  truncationCauseName(R.Behaviors.Cause) + "]";
        std::printf("%-28s %s(promises=%u splits=%u lint=%s)  %u states%s\n",
                    RC.Name.c_str(), RC.IsMutant ? "(mutant) " : "",
                    RC.Budgets.PromiseBudget, RC.Budgets.SplitBudget,
                    R.Behaviors.Lint
                        ? analysis::raceVerdictName(*R.Behaviors.Lint)
                        : "off",
                    R.Behaviors.StatesExplored, Trunc.c_str());
        for (const std::string &S : R.Behaviors.strs())
          std::printf("    %s\n", S.c_str());
        for (const std::string &S : R.MissingIncludes)
          std::printf("    ANNOTATION FAILURE: must-include %s missing\n",
                      S.c_str());
        for (const std::string &S : R.ForbiddenSeen)
          std::printf("    ANNOTATION FAILURE: must-exclude %s exhibited\n",
                      S.c_str());
        for (const std::string &S : R.MissingBad)
          std::printf("    ANNOTATION FAILURE: mutant bad behavior %s "
                      "not exhibited\n",
                      S.c_str());
        if (!R.LintMatches)
          std::printf("    ANNOTATION FAILURE: lint verdict != %s\n",
                      analysis::raceVerdictName(RC.ExpectedLint));
        std::printf("\n");
      }
    }
    uint64_t Ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    std::printf("realworld summary: cases=%llu protocols=%llu mutants=%llu "
                "bad_exhibited=%llu annotation_failures=%llu states=%llu "
                "elapsed_ms=%llu states_per_sec=%llu\n",
                static_cast<unsigned long long>(Cases),
                static_cast<unsigned long long>(Protocols),
                static_cast<unsigned long long>(Mutants),
                static_cast<unsigned long long>(BadExhibited),
                static_cast<unsigned long long>(Failures),
                static_cast<unsigned long long>(States),
                static_cast<unsigned long long>(Ms),
                static_cast<unsigned long long>(States * 1000 /
                                                (Ms ? Ms : 1)));

    // --method symbolic: the symbolic self-refinement sweep over every
    // protocol thread, differentially checked against a budget-bounded
    // enumerative lane (unbounded, the enumerative oracle game runs for
    // hours on these spin loops — which is the point of the backend). The
    // summary counts are deterministic; a disagreement — symbolic Sound
    // against a definite enumerative counterexample, or the reverse — is
    // a soundness bug and fails the run.
    uint64_t SymDisagreements = 0;
    if (Method == ValidationMethod::Symbolic) {
      uint64_t SymChecked = 0, SymSound = 0, SymUnsound = 0;
      uint64_t SymInconclusive = 0, SymDecided = 0;
      std::printf("\nsymbolic self-refinement sweep (protocol threads)\n");
      for (const RealWorldCase &RC : realWorldCorpus()) {
        if (RC.IsMutant)
          continue;
        std::unique_ptr<Program> P = parseOrDie(RC.Text);
        for (unsigned Tid = 0; Tid != P->numThreads(); ++Tid) {
          ++SymChecked;
          SeqConfig SCfg;
          SCfg.Domain = RC.Domain;
          SCfg.NumThreads = 1;
          SCfg.Telem = WantTelem ? &Telem : nullptr;
          SCfg.Memo = MemoPtr;
          sym::SymOptions SOpts;
          SOpts.ConfirmUnsound = false;
          sym::SymResult S =
              sym::checkSymRefinement(*P, Tid, *P, Tid, SCfg, SOpts);
          SeqConfig ECfg = SCfg;
          ECfg.StepBudget = 16;
          ECfg.MaxBehaviors = 500;
          guard::ResourceGuard EGuard;
          EGuard.setDeadlineInMs(3000);
          ECfg.Guard = &EGuard;
          RefinementResult E = checkAdvancedRefinement(*P, Tid, *P, Tid, ECfg);
          switch (S.Verdict) {
          case sym::SymVerdict::Sound:
            ++SymSound;
            if (!E.Holds && !E.Bounded)
              ++SymDisagreements;
            break;
          case sym::SymVerdict::Unsound:
            ++SymUnsound;
            if (E.Holds && !E.Bounded)
              ++SymDisagreements;
            break;
          case sym::SymVerdict::Inconclusive:
            ++SymInconclusive;
            break;
          }
          if (S.Verdict != sym::SymVerdict::Inconclusive && E.Bounded)
            ++SymDecided;
          std::printf("%-28s tid %u: %-12s nodes=%llu  (enumerative: %s%s)\n",
                      RC.Name.c_str(), Tid, sym::symVerdictName(S.Verdict),
                      static_cast<unsigned long long>(S.Nodes),
                      E.Holds ? "holds" : "fails",
                      E.Bounded ? ", truncated" : "");
        }
      }
      std::printf("\nsym summary: checked=%llu sound=%llu unsound=%llu "
                  "inconclusive=%llu decided_where_truncated=%llu "
                  "disagreements=%llu\n",
                  static_cast<unsigned long long>(SymChecked),
                  static_cast<unsigned long long>(SymSound),
                  static_cast<unsigned long long>(SymUnsound),
                  static_cast<unsigned long long>(SymInconclusive),
                  static_cast<unsigned long long>(SymDecided),
                  static_cast<unsigned long long>(SymDisagreements));
    }
    return finish(Failures || SymDisagreements ? 1 : 0);
  }

  // Classic corpus mode. With --sweep N the corpus is explored N times
  // sharing one memo context and one telemetry registry; repeat sweeps hit
  // the cross-run behavior cache, and the summary below is deterministic
  // (state counts and cache counters only — no timing), which is what the
  // perf gate consumes.
  LintTally Tally;
  std::printf("PS^na litmus outcomes (corpus of %zu tests)\n\n",
              litmusCorpus().size());
  for (uint64_t Sweep = 0; Sweep != Sweeps; ++Sweep) {
    for (const LitmusCase &LC : litmusCorpus()) {
      PsConfig Cfg;
      Cfg.Domain = LC.Domain;
      Cfg.PromiseBudget = LC.PromiseBudget;
      Cfg.SplitBudget = LC.SplitBudget;
      Cfg.NumThreads = NumThreads;
      Cfg.Guard = GuardPtr;
      Cfg.Memo = MemoPtr;
      Cfg.Telem = &Telem;
      Cfg.Lint = !NoLint;
      bool Quiet = Sweep != 0; // outcome sets are identical across sweeps
      explore(LC.Name + " [" + LC.PaperRef + "]", LC.Text, Cfg, Quiet,
              Sweep == 0 ? &Tally : nullptr);
      if (!Quiet)
        std::printf("\n");
    }
  }
  // Static-analyzer tallies from the first sweep (verdicts are identical
  // across sweeps). race_free_states sums StatesExplored over the cases
  // whose proved verdict suppressed NAMsg markers — the number the perf
  // gate (tools/check_bench_baseline.py) bounds against BENCH_BASELINE.json.
  if (!NoLint)
    std::printf("lint summary: race_free=%llu potentially_racy=%llu "
                "atomics_only=%llu race_free_states=%llu\n",
                static_cast<unsigned long long>(Tally.RaceFree),
                static_cast<unsigned long long>(Tally.PotentiallyRacy),
                static_cast<unsigned long long>(Tally.AtomicsOnly),
                static_cast<unsigned long long>(Tally.RaceFreeStates));
  std::printf("memo summary: sweeps=%llu states_explored=%llu "
              "memo_hits=%llu memo_misses=%llu pruned_states=%llu\n",
              static_cast<unsigned long long>(Sweeps),
              static_cast<unsigned long long>(
                  Telem.Counters.counter("psna.explore.states_expanded")),
              static_cast<unsigned long long>(MemoPtr ? Memo.hits() : 0),
              static_cast<unsigned long long>(MemoPtr ? Memo.misses() : 0),
              static_cast<unsigned long long>(MemoPtr ? Memo.pruned() : 0));
  return finish(0);
}
