//===- examples/litmus_explorer.cpp - Exhaustive PS^na exploration --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Explores litmus tests under PS^na and prints their outcome sets —
// either the built-in corpus (no arguments) or a program from a file:
//
//   litmus_explorer [--threads N] [file [promise-budget [split-budget]]]
//   litmus_explorer [--threads N] --witness <corpus-case> <behavior>
//
// --threads N parallelizes exploration across N workers (0 = all hardware
// threads); the printed outcome sets are identical for every N.
//
// The witness mode prints an execution (machine states step by step)
// exhibiting the given outcome, e.g.
//
//   litmus_explorer --witness ex5.1-promise-racy-read 'ret(undef,1)'
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"
#include "litmus/Corpus.h"
#include "psna/Explorer.h"

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

using namespace pseq;

namespace {

void explore(const std::string &Title, const std::string &Text,
             const PsConfig &Cfg) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  PsBehaviorSet B = explorePsna(*P, Cfg);
  std::string Trunc;
  if (B.truncated())
    Trunc = std::string("  [TRUNCATED: ") + truncationCauseName(B.Cause) + "]";
  std::printf("%-28s (promises=%u splits=%u)  %u states%s\n", Title.c_str(),
              Cfg.PromiseBudget, Cfg.SplitBudget, B.StatesExplored,
              Trunc.c_str());
  for (const std::string &S : B.strs())
    std::printf("    %s\n", S.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumThreads = exec::defaultNumThreads();
  {
    std::vector<char *> Rest;
    for (int I = 0; I != Argc; ++I) {
      std::string A = Argv[I];
      if (A == "--threads" && I + 1 < Argc) {
        NumThreads = static_cast<unsigned>(std::atoi(Argv[++I]));
        continue;
      }
      if (A.rfind("--threads=", 0) == 0) {
        NumThreads = static_cast<unsigned>(std::atoi(A.c_str() + 10));
        continue;
      }
      Rest.push_back(Argv[I]);
    }
    Argc = static_cast<int>(Rest.size());
    for (int I = 0; I != Argc; ++I)
      Argv[I] = Rest[I];
  }

  if (Argc == 4 && std::string(Argv[1]) == "--witness") {
    const LitmusCase &LC = litmusCaseByName(Argv[2]);
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.NumThreads = NumThreads;
    std::vector<PsMachineState> Path = findPsnaWitness(*P, Cfg, Argv[3]);
    if (Path.empty()) {
      std::printf("behavior %s not reachable for %s\n", Argv[3], Argv[2]);
      return 1;
    }
    std::printf("witness for %s exhibiting %s (%zu machine steps):\n",
                Argv[2], Argv[3], Path.size() - 1);
    for (size_t I = 0; I != Path.size(); ++I)
      std::printf("%3zu: %s\n", I, Path[I].str().c_str());
    return 0;
  }
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    PsConfig Cfg;
    Cfg.NumThreads = NumThreads;
    if (Argc > 2)
      Cfg.PromiseBudget = static_cast<unsigned>(std::atoi(Argv[2]));
    if (Argc > 3)
      Cfg.SplitBudget = static_cast<unsigned>(std::atoi(Argv[3]));
    explore(Argv[1], Buf.str(), Cfg);
    return 0;
  }

  std::printf("PS^na litmus outcomes (corpus of %zu tests)\n\n",
              litmusCorpus().size());
  for (const LitmusCase &LC : litmusCorpus()) {
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.NumThreads = NumThreads;
    explore(LC.Name + " [" + LC.PaperRef + "]", LC.Text, Cfg);
    std::printf("\n");
  }
  return 0;
}
