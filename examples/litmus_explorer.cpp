//===- examples/litmus_explorer.cpp - Exhaustive PS^na exploration --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Explores litmus tests under PS^na and prints their outcome sets —
// either the built-in corpus (no arguments) or a program from a file:
//
//   litmus_explorer [flags] [file [promise-budget [split-budget]]]
//   litmus_explorer [flags] --witness <corpus-case> <behavior>
//
//   --threads N      parallelize exploration across N workers (0 = all
//                    hardware threads); outcome sets are identical for any N
//   --deadline-ms N  soft wall-clock budget for the whole run
//   --mem-mb N       approximate memory budget for retained states
//   --no-memo        disable memoization (sleep-set pruning and the
//                    cross-run behavior cache); outcome sets are identical
//                    either way
//   --no-lint        disable the static race analyzer (and with it the
//                    NAMsg-marker suppression on proved-race-free
//                    programs); outcome sets are identical either way,
//                    only the state counts change
//   --sweep N        corpus mode only: explore the whole corpus N times
//                    sharing one memo context, then print a deterministic
//                    "memo summary" block (states explored, hits, misses,
//                    pruned). The perf-regression gate diffs this block
//                    against BENCH_BASELINE.json.
//   --trace PATH     JSONL event trace (the stream PSEQ_TRACE selects; the
//                    flag wins over the env var)
//   --trace-out PATH Chrome trace-event / Perfetto JSON built from the
//                    explorer's causal spans, written at exit
//
// Numeric arguments are parsed strictly: garbage is a usage error, not a
// silent 0. Once a --deadline-ms / --mem-mb budget trips, remaining
// outcome sets print with a [TRUNCATED: deadline] / [TRUNCATED:
// mem-budget] marker instead of the run hanging or dying.
//
// The witness mode prints an execution (machine states step by step)
// exhibiting the given outcome, e.g.
//
//   litmus_explorer --witness ex5.1-promise-racy-read 'ret(undef,1)'
//
//===----------------------------------------------------------------------===//

#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "litmus/Corpus.h"
#include "memo/MemoContext.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"
#include "psna/Explorer.h"
#include "support/CliArgs.h"

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

using namespace pseq;

namespace {

/// Per-corpus lint tallies for the "lint summary" line (corpus mode).
struct LintTally {
  uint64_t RaceFree = 0, PotentiallyRacy = 0, AtomicsOnly = 0;
  uint64_t RaceFreeStates = 0; ///< states explored on proved cases
};

void explore(const std::string &Title, const std::string &Text,
             const PsConfig &Cfg, bool Quiet = false,
             LintTally *Tally = nullptr) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  PsBehaviorSet B = explorePsna(*P, Cfg);
  if (Tally && B.Lint) {
    switch (*B.Lint) {
    case analysis::RaceVerdict::RaceFree:
      ++Tally->RaceFree;
      break;
    case analysis::RaceVerdict::PotentiallyRacy:
      ++Tally->PotentiallyRacy;
      break;
    case analysis::RaceVerdict::AtomicsOnly:
      ++Tally->AtomicsOnly;
      break;
    }
    if (B.MarkersSkipped)
      Tally->RaceFreeStates += B.StatesExplored;
  }
  if (Quiet)
    return;
  std::string Trunc;
  if (B.truncated())
    Trunc = std::string("  [TRUNCATED: ") + truncationCauseName(B.Cause) + "]";
  std::printf("%-28s (promises=%u splits=%u)  %u states%s\n", Title.c_str(),
              Cfg.PromiseBudget, Cfg.SplitBudget, B.StatesExplored,
              Trunc.c_str());
  for (const std::string &S : B.strs())
    std::printf("    %s\n", S.c_str());
}

int usage(const char *Prog, const std::string &Err) {
  std::fprintf(stderr, "error: %s\n", Err.c_str());
  std::fprintf(stderr,
               "usage: %s [--threads N] [--deadline-ms N] [--mem-mb N] "
               "[--no-memo] [--no-lint] [--sweep N] [--trace PATH] "
               "[--trace-out PATH] [file [promise-budget [split-budget]]]\n"
               "       %s [--threads N] --witness <corpus-case> <behavior>\n",
               Prog, Prog);
  return 2;
}

int usageError(const char *Prog, const std::string &What,
               const char *Value) {
  return usage(Prog, "invalid value '" + std::string(Value ? Value : "") +
                         "' for " + What);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Prog = Argc ? Argv[0] : "litmus_explorer";
  unsigned NumThreads = exec::defaultNumThreads();
  uint64_t DeadlineMs = 0, MemMb = 0;
  uint64_t Sweeps = 1;
  bool NoMemo = false;
  bool NoLint = false;
  std::string TracePath, TraceOutPath;
  {
    std::vector<char *> Rest;
    for (int I = 0; I != Argc; ++I) {
      std::string A = Argv[I];
      const char *Value = nullptr;
      std::string Err;
      if (cli::flagValue(Argc, Argv, I, "--threads", Value)) {
        // 0 = all hardware threads; the pool's hard cap bounds the rest.
        if (!cli::parseUnsignedInRange("--threads", Value, 0u,
                                       exec::maxThreads(), NumThreads, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--deadline-ms", Value)) {
        if (!cli::parseUnsignedInRange(
                "--deadline-ms", Value, uint64_t(1),
                std::numeric_limits<uint64_t>::max(), DeadlineMs, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--mem-mb", Value)) {
        if (!cli::parseUnsignedInRange("--mem-mb", Value, uint64_t(1),
                                       uint64_t(1) << 24, MemMb, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--sweep", Value)) {
        if (!cli::parseUnsignedInRange("--sweep", Value, uint64_t(1),
                                       uint64_t(1000000), Sweeps, Err))
          return usage(Prog, Err);
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--trace-out", Value)) {
        if (!Value || !*Value)
          return usageError(Prog, "--trace-out", Value);
        TraceOutPath = Value;
        continue;
      }
      if (cli::flagValue(Argc, Argv, I, "--trace", Value)) {
        if (!Value || !*Value)
          return usageError(Prog, "--trace", Value);
        TracePath = Value;
        continue;
      }
      if (A == "--no-memo") {
        NoMemo = true;
        continue;
      }
      if (A == "--no-lint") {
        NoLint = true;
        continue;
      }
      Rest.push_back(Argv[I]);
    }
    Argc = static_cast<int>(Rest.size());
    for (int I = 0; I != Argc; ++I)
      Argv[I] = Rest[I];
  }

  guard::ResourceGuard Guard;
  guard::ResourceGuard *GuardPtr = nullptr;
  if (DeadlineMs || MemMb) {
    if (DeadlineMs)
      Guard.setDeadlineInMs(DeadlineMs);
    if (MemMb)
      Guard.setMemLimitBytes(MemMb << 20);
    GuardPtr = &Guard;
  }

  memo::MemoContext Memo;
  memo::MemoContext *MemoPtr = NoMemo ? nullptr : &Memo;

  // Flight recorder: the JSONL sink (flag or PSEQ_TRACE) and the span
  // recorder feed one Telemetry shared by every exploration in the run.
  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  std::unique_ptr<obs::TraceSink> Sink = obs::traceSinkFromFlagOrEnv(TracePath);
  Telem.Sink = Sink.get();
  if (!TraceOutPath.empty())
    Telem.Spans = &Spans;
  const bool WantTelem = Sink != nullptr || !TraceOutPath.empty();
  // Emits the final snapshot (truncation cause included) and the Perfetto
  // export; every exit path below funnels through here.
  auto finish = [&](int Code) {
    Telem.finalSnapshot(GuardPtr && GuardPtr->stopped()
                            ? truncationCauseName(GuardPtr->cause())
                            : "complete");
    if (!TraceOutPath.empty() &&
        !obs::writeChromeTrace(Spans, TraceOutPath, "litmus_explorer")) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 1;
    }
    return Code;
  };

  if (Argc == 4 && std::string(Argv[1]) == "--witness") {
    const LitmusCase &LC = litmusCaseByName(Argv[2]);
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.NumThreads = NumThreads;
    Cfg.Guard = GuardPtr;
    Cfg.Lint = !NoLint;
    Cfg.Telem = WantTelem ? &Telem : nullptr;
    std::vector<PsMachineState> Path = findPsnaWitness(*P, Cfg, Argv[3]);
    if (Path.empty()) {
      std::printf("behavior %s not reachable for %s\n", Argv[3], Argv[2]);
      return finish(1);
    }
    std::printf("witness for %s exhibiting %s (%zu machine steps):\n",
                Argv[2], Argv[3], Path.size() - 1);
    for (size_t I = 0; I != Path.size(); ++I)
      std::printf("%3zu: %s\n", I, Path[I].str().c_str());
    return finish(0);
  }
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    PsConfig Cfg;
    Cfg.NumThreads = NumThreads;
    Cfg.Guard = GuardPtr;
    Cfg.Memo = MemoPtr;
    Cfg.Lint = !NoLint;
    Cfg.Telem = WantTelem ? &Telem : nullptr;
    if (Argc > 2 && !cli::parseUnsigned(Argv[2], Cfg.PromiseBudget))
      return usageError(Prog, "promise-budget", Argv[2]);
    if (Argc > 3 && !cli::parseUnsigned(Argv[3], Cfg.SplitBudget))
      return usageError(Prog, "split-budget", Argv[3]);
    explore(Argv[1], Buf.str(), Cfg);
    return finish(0);
  }

  // Corpus mode. With --sweep N the corpus is explored N times sharing one
  // memo context and one telemetry registry; repeat sweeps hit the cross-run
  // behavior cache, and the summary below is deterministic (state counts and
  // cache counters only — no timing), which is what the perf gate consumes.
  LintTally Tally;
  std::printf("PS^na litmus outcomes (corpus of %zu tests)\n\n",
              litmusCorpus().size());
  for (uint64_t Sweep = 0; Sweep != Sweeps; ++Sweep) {
    for (const LitmusCase &LC : litmusCorpus()) {
      PsConfig Cfg;
      Cfg.Domain = LC.Domain;
      Cfg.PromiseBudget = LC.PromiseBudget;
      Cfg.SplitBudget = LC.SplitBudget;
      Cfg.NumThreads = NumThreads;
      Cfg.Guard = GuardPtr;
      Cfg.Memo = MemoPtr;
      Cfg.Telem = &Telem;
      Cfg.Lint = !NoLint;
      bool Quiet = Sweep != 0; // outcome sets are identical across sweeps
      explore(LC.Name + " [" + LC.PaperRef + "]", LC.Text, Cfg, Quiet,
              Sweep == 0 ? &Tally : nullptr);
      if (!Quiet)
        std::printf("\n");
    }
  }
  // Static-analyzer tallies from the first sweep (verdicts are identical
  // across sweeps). race_free_states sums StatesExplored over the cases
  // whose proved verdict suppressed NAMsg markers — the number the perf
  // gate (tools/check_bench_baseline.py) bounds against BENCH_BASELINE.json.
  if (!NoLint)
    std::printf("lint summary: race_free=%llu potentially_racy=%llu "
                "atomics_only=%llu race_free_states=%llu\n",
                static_cast<unsigned long long>(Tally.RaceFree),
                static_cast<unsigned long long>(Tally.PotentiallyRacy),
                static_cast<unsigned long long>(Tally.AtomicsOnly),
                static_cast<unsigned long long>(Tally.RaceFreeStates));
  std::printf("memo summary: sweeps=%llu states_explored=%llu "
              "memo_hits=%llu memo_misses=%llu pruned_states=%llu\n",
              static_cast<unsigned long long>(Sweeps),
              static_cast<unsigned long long>(
                  Telem.Counters.counter("psna.explore.states_expanded")),
              static_cast<unsigned long long>(MemoPtr ? Memo.hits() : 0),
              static_cast<unsigned long long>(MemoPtr ? Memo.misses() : 0),
              static_cast<unsigned long long>(MemoPtr ? Memo.pruned() : 0));
  return finish(0);
}
