//===- examples/fuzz_campaign.cpp - Crash-isolated fuzzing driver ---------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Fuzzes the adequacy harness (Thm 6.2) over random (source, target)
// pairs, each checked in a fork-isolated child so crashes, memory
// blow-ups, and hangs cost one pair, not the campaign:
//
//   fuzz_campaign [--seed N] [--count N] [--seed-corpus NAME]
//                 [--deadline-ms N] [--mem-mb N]
//                 [--wall-ms N] [--total-ms N] [--no-isolate] [--no-shrink]
//                 [--no-memo] [--fault crash|oom|hang] [--inject-at N]
//                 [--trace PATH] [--trace-out PATH] [--verbose]
//
// --seed-corpus selects where pairs come from: the default random
// single-thread stream, or "realworld" to mutate the lock-free protocol
// corpus (a typo lists the available corpora and exits 2 instead of
// aborting). Numeric arguments are parsed strictly (garbage = usage
// error). --fault
// injects one artificial child failure (self-test of the isolation and
// classification machinery); it requires isolation. --trace (or
// PSEQ_TRACE=<path>; the flag wins) writes a JSONL event per pair, flushed
// after every crashed/limited child so the record survives a dying parent;
// --trace-out writes a Chrome trace-event / Perfetto JSON with one span
// per pair. Exit status: 0 when the campaign is clean, 1 on mismatches or
// unclassified crashes (real findings).
//
//===----------------------------------------------------------------------===//

#include "adequacy/FuzzCampaign.h"
#include "guard/Isolate.h"
#include "guard/Signals.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"
#include "support/CliArgs.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace pseq;

namespace {

int usage(const char *Prog, const char *What, const char *Value) {
  if (What)
    std::fprintf(stderr, "error: invalid value '%s' for %s\n",
                 Value ? Value : "", What);
  std::fprintf(stderr,
               "usage: %s [--seed N] [--count N] [--seed-corpus NAME] "
               "[--deadline-ms N] "
               "[--mem-mb N] [--wall-ms N] [--total-ms N] [--no-isolate] "
               "[--no-shrink] [--no-memo] [--fault crash|oom|hang] "
               "[--inject-at N] [--trace PATH] [--trace-out PATH] "
               "[--verbose]\n",
               Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Prog = Argc ? Argv[0] : "fuzz_campaign";
  CampaignOptions Opts;
  std::string TracePath, TraceOutPath;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    const char *Value = nullptr;
    auto flagValue = [&](const char *Flag) {
      return cli::flagValue(Argc, Argv, I, Flag, Value) &&
             Value != nullptr;
    };
    if (flagValue("--seed")) {
      if (!cli::parseUnsigned(Value, Opts.Seed))
        return usage(Prog, "--seed", Value);
    } else if (flagValue("--count")) {
      if (!cli::parseUnsigned(Value, Opts.Count))
        return usage(Prog, "--count", Value);
    } else if (flagValue("--seed-corpus")) {
      if (!campaignSeedCorpusKnown(Value)) {
        std::fprintf(stderr,
                     "error: unknown seed corpus '%s'\n"
                     "available seed corpora: %s\n",
                     Value, campaignSeedCorpusList());
        return 2;
      }
      Opts.SeedCorpus = std::strcmp(Value, "random") == 0 ? "" : Value;
    } else if (flagValue("--deadline-ms")) {
      if (!cli::parseUnsigned(Value, Opts.DeadlineMs) || !Opts.DeadlineMs)
        return usage(Prog, "--deadline-ms", Value);
    } else if (flagValue("--mem-mb")) {
      if (!cli::parseUnsigned(Value, Opts.MemMb) || !Opts.MemMb)
        return usage(Prog, "--mem-mb", Value);
    } else if (flagValue("--wall-ms")) {
      if (!cli::parseUnsigned(Value, Opts.WallMs))
        return usage(Prog, "--wall-ms", Value);
    } else if (flagValue("--total-ms")) {
      if (!cli::parseUnsigned(Value, Opts.TotalMs) || !Opts.TotalMs)
        return usage(Prog, "--total-ms", Value);
    } else if (flagValue("--inject-at")) {
      if (!cli::parseUnsigned(Value, Opts.InjectAt))
        return usage(Prog, "--inject-at", Value);
    } else if (flagValue("--trace-out")) {
      if (!*Value)
        return usage(Prog, "--trace-out", Value);
      TraceOutPath = Value;
    } else if (flagValue("--trace")) {
      if (!*Value)
        return usage(Prog, "--trace", Value);
      TracePath = Value;
    } else if (flagValue("--fault")) {
      if (std::strcmp(Value, "crash") == 0)
        Opts.Fault = FaultKind::Crash;
      else if (std::strcmp(Value, "oom") == 0)
        Opts.Fault = FaultKind::Oom;
      else if (std::strcmp(Value, "hang") == 0)
        Opts.Fault = FaultKind::Hang;
      else
        return usage(Prog, "--fault", Value);
    } else if (A == "--no-isolate") {
      Opts.Isolate = false;
    } else if (A == "--no-shrink") {
      Opts.ShrinkFailures = false;
    } else if (A == "--no-memo") {
      Opts.UseMemo = false;
    } else if (A == "--verbose") {
      Opts.Verbose = true;
    } else {
      return usage(Prog, "argument", Argv[I]);
    }
  }
  if (Opts.Fault != FaultKind::None &&
      (!Opts.Isolate || !guard::isolationSupported())) {
    std::fprintf(stderr, "error: --fault requires fork isolation\n");
    return 2;
  }

  // Ctrl-C / SIGTERM stops the campaign between pairs: already-classified
  // pairs keep their buckets, telemetry and the trace export still flush,
  // and the process exits with the distinct graceful code.
  guard::installShutdownHandlers();

  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  std::unique_ptr<obs::TraceSink> Sink = obs::traceSinkFromFlagOrEnv(TracePath);
  Telem.Sink = Sink.get();
  if (!TraceOutPath.empty())
    Telem.Spans = &Spans;
  Opts.Telem = &Telem;

  std::printf("fuzz campaign: seed=%llu count=%u corpus=%s isolation=%s\n",
              static_cast<unsigned long long>(Opts.Seed), Opts.Count,
              Opts.SeedCorpus.empty() ? "random" : Opts.SeedCorpus.c_str(),
              Opts.Isolate && guard::isolationSupported() ? "fork" : "off");
  CampaignStats S = runFuzzCampaign(Opts);

  std::printf("pairs    %u%s%s\n", S.Pairs,
              S.TimedOut ? "  (campaign wall budget hit)" : "",
              S.Interrupted ? "  (interrupted by signal)" : "");
  std::printf("  agree    %u\n", S.Agree);
  std::printf("  mismatch %u\n", S.Mismatch);
  std::printf("  bounded  %u\n", S.Bounded);
  std::printf("  deadline %u\n", S.Deadline);
  std::printf("  oom      %u\n", S.Oom);
  std::printf("  crash    %u\n", S.Crash);
  std::printf("  isolated %u\n", S.Isolated);
  for (const std::string &F : S.Findings)
    std::printf("\nFINDING %s\n", F.c_str());
  Telem.finalSnapshot(S.Interrupted ? "shutdown-signal"
                      : S.clean()   ? "complete"
                                    : "findings");
  if (!TraceOutPath.empty() &&
      !obs::writeChromeTrace(Spans, TraceOutPath, "fuzz_campaign")) {
    std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
    return 2;
  }
  // Findings outrank the interrupt: a mismatch seen before Ctrl-C must
  // still fail the run.
  if (!S.clean())
    return 1;
  return S.Interrupted ? guard::GracefulSignalExit : 0;
}
