//===- examples/adequacy_report.cpp - Theorem 6.2, tabulated --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Prints the full adequacy matrix for the paper-example corpus: for each
// (source, target) pair, both SEQ verdicts and the PS^na inclusion verdict
// under every context in the library. The table EXPERIMENTS.md records is
// produced by this binary. Loop cases are skipped (PS^na exploration of a
// divergent program is unbounded); their SEQ verdicts are covered exactly
// by the simulation checker (see translation_validator).
//
//===----------------------------------------------------------------------===//

#include "adequacy/Harness.h"

#include <cstdio>

using namespace pseq;

int main() {
  PsConfig PsCfg;
  PsCfg.PromiseBudget = 0;

  std::printf("%-36s %4s %4s %6s %8s  %s\n", "example", "seq", "seqw",
              "psna", "Thm6.2", "separating contexts");
  std::printf("%.100s\n", std::string(100, '-').c_str());

  unsigned Violations = 0, Witnesses = 0, Checked = 0;
  for (const RefinementCase &RC : refinementCorpus()) {
    if (RC.HasLoops) {
      std::printf("%-36s %4s %4s %6s %8s  (loop program: skipped)\n",
                  RC.Name.c_str(), RC.SimpleHolds ? "yes" : "no",
                  RC.AdvancedHolds ? "yes" : "no", "-", "-");
      continue;
    }
    AdequacyRecord Rec = runAdequacy(RC, PsCfg);
    ++Checked;
    std::string Separating;
    for (const ContextVerdict &V : Rec.Contexts)
      if (!V.Holds)
        Separating += V.Context + " ";
    bool Adequate = Rec.adequacyHolds();
    Violations += !Adequate;
    Witnesses += Rec.witnessFound();
    std::printf("%-36s %4s %4s %6s %8s  %s\n", RC.Name.c_str(),
                Rec.SeqSimple ? "yes" : "no",
                Rec.SeqAdvanced ? "yes" : "no",
                Rec.PsnaAllContexts ? "yes" : "no",
                Adequate ? "ok" : "VIOLATED", Separating.c_str());
  }

  std::printf("\nchecked %u pairs against %zu contexts each: "
              "%u adequacy violations, %u PS^na witnesses for "
              "SEQ-rejected pairs\n",
              Checked, contextLibrary().size(), Violations, Witnesses);
  return Violations == 0 ? 0 : 1;
}
