//===- examples/validate_client.cpp - Validation-server batch client ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The batch client for validate_server: submits the paper's refinement
// corpus (or stdin-fed single jobs) over the wire protocol, collects one
// verdict per job, and optionally writes a BENCH_SERVER.json-shaped
// summary (jobs/sec, cross-request cache hit rate) for the CI gate.
//
//   validate_client --socket /tmp/pseq.sock --corpus --repeat 2 \
//     --expect-complete --bench-out out.json
//   validate_client --socket /tmp/pseq.sock --ping
//   validate_client --socket /tmp/pseq.sock --stats
//   validate_client --socket /tmp/pseq.sock --shutdown
//
//===----------------------------------------------------------------------===//

#include "litmus/Corpus.h"
#include "obs/JsonValue.h"
#include "obs/TraceSink.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "support/AtomicFile.h"
#include "support/CliArgs.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

using namespace pseq;

namespace {

int usage(const char *Msg) {
  if (Msg)
    std::fprintf(stderr, "validate_client: %s\n", Msg);
  std::fprintf(
      stderr,
      "usage: validate_client --socket PATH [mode] [options]\n"
      "modes (default --corpus):\n"
      "  --ping               round-trip a ping and exit\n"
      "  --stats              print the server's stats reply\n"
      "  --shutdown           ask the server to drain and stop\n"
      "  --corpus             submit the refinement corpus as a batch\n"
      "options:\n"
      "  --repeat N           submit the batch N times (default 1)\n"
      "  --expect-complete    fail unless every job got exactly one reply\n"
      "  --bench-out FILE     write jobs/sec + hit-rate JSON summary\n"
      "  --quiet              per-job lines off\n");
  return 2;
}

/// Reads the server's stats reply into counter map \p Counters.
bool fetchStats(int Fd, std::map<std::string, uint64_t> &Counters,
                std::map<std::string, double> &Gauges) {
  if (!serve::sendFrame(Fd, serve::encodeStatsRequest()))
    return false;
  std::string Payload;
  if (!serve::recvFrame(Fd, Payload))
    return false;
  obs::JsonValue V;
  if (!obs::JsonValue::parse(Payload, V) || !V.isObject())
    return false;
  if (const obs::JsonValue *C = V.field("counters"))
    for (const auto &KV : C->object())
      if (KV.second.isNumber())
        Counters[KV.first] = static_cast<uint64_t>(KV.second.asNumber());
  if (const obs::JsonValue *G = V.field("gauges"))
    for (const auto &KV : G->object())
      if (KV.second.isNumber())
        Gauges[KV.first] = KV.second.asNumber();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, BenchOut;
  enum { Corpus, Ping, Stats, Shutdown } Mode = Corpus;
  uint64_t Repeat = 1;
  bool ExpectComplete = false;
  bool Quiet = false;
  std::string Err;

  for (int I = 1; I < argc; ++I) {
    const char *V = nullptr;
    std::string A = argv[I];
    if (cli::flagValue(argc, argv, I, "--socket", V)) {
      if (!V)
        return usage("--socket needs a path");
      SocketPath = V;
    } else if (A == "--ping") {
      Mode = Ping;
    } else if (A == "--stats") {
      Mode = Stats;
    } else if (A == "--shutdown") {
      Mode = Shutdown;
    } else if (A == "--corpus") {
      Mode = Corpus;
    } else if (cli::flagValue(argc, argv, I, "--repeat", V)) {
      if (!cli::parseUnsignedInRange("--repeat", V, 1, 1000, Repeat, Err))
        return usage(Err.c_str());
    } else if (A == "--expect-complete") {
      ExpectComplete = true;
    } else if (cli::flagValue(argc, argv, I, "--bench-out", V)) {
      if (!V)
        return usage("--bench-out needs a path");
      BenchOut = V;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (A == "--help" || A == "-h") {
      usage(nullptr);
      return 0;
    } else {
      return usage(("unknown argument " + A).c_str());
    }
  }
  if (SocketPath.empty())
    return usage("--socket is required");

  int Fd = serve::connectUnix(SocketPath, &Err);
  if (Fd < 0) {
    std::fprintf(stderr, "validate_client: %s\n", Err.c_str());
    return 1;
  }

  if (Mode == Ping || Mode == Shutdown) {
    const std::string Out =
        Mode == Ping ? serve::encodePing() : serve::encodeShutdown();
    std::string Payload;
    if (!serve::sendFrame(Fd, Out, &Err) ||
        !serve::recvFrame(Fd, Payload, &Err)) {
      std::fprintf(stderr, "validate_client: %s\n",
                   Err.empty() ? "server closed the connection" : Err.c_str());
      serve::closeFd(Fd);
      return 1;
    }
    std::string Op = serve::replyOp(Payload);
    bool Ok = (Mode == Ping && Op == "pong") || (Mode == Shutdown && Op == "ok");
    std::printf("%s\n", Payload.c_str());
    serve::closeFd(Fd);
    return Ok ? 0 : 1;
  }

  if (Mode == Stats) {
    std::map<std::string, uint64_t> Counters;
    std::map<std::string, double> Gauges;
    if (!fetchStats(Fd, Counters, Gauges)) {
      std::fprintf(stderr, "validate_client: stats request failed\n");
      serve::closeFd(Fd);
      return 1;
    }
    for (const auto &KV : Counters)
      std::printf("%s %llu\n", KV.first.c_str(),
                  static_cast<unsigned long long>(KV.second));
    for (const auto &KV : Gauges)
      std::printf("%s %s\n", KV.first.c_str(),
                  obs::jsonNumber(KV.second).c_str());
    serve::closeFd(Fd);
    return 0;
  }

  // Batch mode: the refinement corpus, --repeat times. Every repeat after
  // the first should be answered from the server's verdict cache.
  const std::vector<RefinementCase> &Cases = refinementCorpus();
  std::vector<serve::JobRequest> Jobs;
  for (uint64_t R = 0; R != Repeat; ++R)
    for (const RefinementCase &C : Cases) {
      serve::JobRequest J;
      J.Id = Jobs.size() + 1;
      J.Source = C.Src;
      J.Target = C.Tgt;
      J.Method = ValidationMethod::Advanced;
      J.StepBudget = C.StepBudget;
      Jobs.push_back(std::move(J));
    }

  auto Start = std::chrono::steady_clock::now();
  for (const serve::JobRequest &J : Jobs)
    if (!serve::sendFrame(Fd, serve::encodeJobRequest(J), &Err)) {
      std::fprintf(stderr, "validate_client: send failed: %s\n", Err.c_str());
      serve::closeFd(Fd);
      return 1;
    }

  std::map<uint64_t, serve::JobResult> Results;
  uint64_t DuplicateReplies = 0;
  std::string Payload;
  while (Results.size() < Jobs.size()) {
    if (!serve::recvFrame(Fd, Payload, &Err)) {
      std::fprintf(stderr,
                   "validate_client: connection lost after %zu/%zu replies"
                   "%s%s\n",
                   Results.size(), Jobs.size(), Err.empty() ? "" : ": ",
                   Err.c_str());
      break;
    }
    serve::JobResult R;
    if (!serve::parseJobResult(Payload, R, Err)) {
      std::fprintf(stderr, "validate_client: bad reply: %s\n", Err.c_str());
      continue;
    }
    if (!Results.emplace(R.Id, R).second)
      ++DuplicateReplies;
    if (!Quiet)
      std::printf("job %llu: %s%s%s%s\n",
                  static_cast<unsigned long long>(R.Id),
                  serve::jobStatusName(R.Status), R.CacheHit ? " (cached)" : "",
                  R.Detail.empty() ? "" : " - ", R.Detail.c_str());
  }
  double ElapsedSec = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Start)
                          .count();

  uint64_t CacheHits = 0, Failed = 0;
  for (const auto &KV : Results) {
    CacheHits += KV.second.CacheHit;
    Failed += KV.second.Status == serve::JobStatus::Crash ||
              KV.second.Status == serve::JobStatus::Oom ||
              KV.second.Status == serve::JobStatus::Deadline;
  }
  double JobsPerSec =
      ElapsedSec > 0 ? static_cast<double>(Results.size()) / ElapsedSec : 0;
  double HitRate = Results.empty()
                       ? 0
                       : static_cast<double>(CacheHits) /
                             static_cast<double>(Results.size());
  std::fprintf(stderr,
               "validate_client: %zu/%zu replies, %llu cached, %llu failed, "
               "%.1f jobs/sec\n",
               Results.size(), Jobs.size(),
               static_cast<unsigned long long>(CacheHits),
               static_cast<unsigned long long>(Failed), JobsPerSec);

  if (!BenchOut.empty()) {
    std::string Json = "{\n  \"jobs\": " + std::to_string(Results.size()) +
                       ",\n  \"jobs_per_sec\": " + obs::jsonNumber(JobsPerSec) +
                       ",\n  \"cache_hit_rate\": " + obs::jsonNumber(HitRate) +
                       ",\n  \"failed\": " + std::to_string(Failed) +
                       ",\n  \"duplicate_replies\": " +
                       std::to_string(DuplicateReplies) + "\n}\n";
    if (!support::writeFileAtomic(BenchOut, Json, &Err)) {
      std::fprintf(stderr, "validate_client: %s\n", Err.c_str());
      serve::closeFd(Fd);
      return 1;
    }
  }

  serve::closeFd(Fd);
  if (ExpectComplete &&
      (Results.size() != Jobs.size() || DuplicateReplies != 0)) {
    std::fprintf(stderr,
                 "validate_client: coverage violation (%zu jobs, %zu "
                 "replies, %llu duplicates)\n",
                 Jobs.size(), Results.size(),
                 static_cast<unsigned long long>(DuplicateReplies));
    return 1;
  }
  return 0;
}
