//===- examples/race_lint.cpp - Static race & access-mode analysis --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Runs the flow-sensitive static race analyzer (analysis/RaceLint.h) and
// prints per-program verdicts: race-free (proved), potentially-racy (with a
// concrete witness pair), or atomics-only.
//
//   race_lint [--json] [--trace PATH] [--trace-out PATH]
//             [file | corpus-case-name]
//
// With no positional argument the whole litmus corpus is analyzed, one
// verdict line per case. --json emits a machine-readable report (verdict,
// witness, per-thread footprints) instead of the human-readable text.
// --trace writes the analyzer's JSONL event trace (the stream PSEQ_TRACE
// selects; the flag wins over the env var); --trace-out writes a Chrome
// trace-event / Perfetto JSON with one span per analyzed program.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceLint.h"
#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "obs/Span.h"
#include "obs/Telemetry.h"
#include "obs/TraceExport.h"
#include "obs/TraceSink.h"
#include "support/CliArgs.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace pseq;

namespace {

int report(const std::string &Title, const std::string &Text, bool Json,
           obs::Telemetry *Telem) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  analysis::RaceReport Rep = [&] {
    obs::ScopedSpan Span(Telem ? Telem->Spans : nullptr, "race_lint.analyze");
    return analysis::analyzeRaces(*P, Telem);
  }();
  if (Json) {
    std::printf("%s\n", Rep.json(*P).c_str());
  } else {
    std::printf("== %s ==\n%s", Title.c_str(), Rep.str(*P).c_str());
  }
  return Rep.Verdict == analysis::RaceVerdict::PotentiallyRacy ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  const char *Pos = nullptr;
  std::string TracePath, TraceOutPath;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: %s [--json] [--trace PATH] [--trace-out PATH] "
                  "[file | corpus-case-name]\n",
                  Argc ? Argv[0] : "race_lint");
      return 0;
    } else if (cli::flagValue(Argc, Argv, I, "--trace-out", Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "error: --trace-out needs a path\n");
        return 2;
      }
      TraceOutPath = Value;
    } else if (cli::flagValue(Argc, Argv, I, "--trace", Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "error: --trace needs a path\n");
        return 2;
      }
      TracePath = Value;
    } else if (!Pos) {
      Pos = Argv[I];
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Argv[I]);
      return 2;
    }
  }

  obs::Telemetry Telem;
  obs::SpanRecorder Spans;
  std::unique_ptr<obs::TraceSink> Sink = obs::traceSinkFromFlagOrEnv(TracePath);
  Telem.Sink = Sink.get();
  if (!TraceOutPath.empty())
    Telem.Spans = &Spans;
  obs::Telemetry *TelemPtr =
      Sink != nullptr || !TraceOutPath.empty() ? &Telem : nullptr;
  auto finish = [&](int Code) {
    Telem.finalSnapshot("complete");
    if (!TraceOutPath.empty() &&
        !obs::writeChromeTrace(Spans, TraceOutPath, "race_lint")) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOutPath.c_str());
      return 2;
    }
    return Code;
  };

  if (!Pos) {
    // Corpus mode: one verdict line per litmus case (plus witness when racy).
    int Racy = 0;
    if (Json)
      std::printf("[\n");
    bool First = true;
    for (const LitmusCase &LC : litmusCorpus()) {
      std::unique_ptr<Program> P = parseOrDie(LC.Text);
      analysis::RaceReport Rep = [&] {
        obs::ScopedSpan Span(TelemPtr ? TelemPtr->Spans : nullptr,
                             "race_lint.analyze");
        return analysis::analyzeRaces(*P, TelemPtr);
      }();
      if (Json) {
        std::printf("%s{\"case\": \"%s\", \"report\": %s}", First ? "" : ",\n",
                    LC.Name.c_str(), Rep.json(*P).c_str());
        First = false;
      } else {
        std::printf("%-28s %s\n", LC.Name.c_str(),
                    analysis::raceVerdictName(Rep.Verdict));
        if (Rep.Witness)
          std::printf("    %s\n", Rep.Witness->str(*P).c_str());
      }
      Racy += Rep.Verdict == analysis::RaceVerdict::PotentiallyRacy;
    }
    if (Json)
      std::printf("\n]\n");
    else
      std::printf("\n%zu cases, %d potentially racy\n", litmusCorpus().size(),
                  Racy);
    return finish(0);
  }

  // A file, or a named corpus case.
  std::ifstream In(Pos);
  if (In) {
    std::stringstream Buf;
    Buf << In.rdbuf();
    return finish(report(Pos, Buf.str(), Json, TelemPtr));
  }
  for (const LitmusCase &LC : litmusCorpus())
    if (LC.Name == Pos)
      return finish(
          report(LC.Name + " [" + LC.PaperRef + "]", LC.Text, Json, TelemPtr));
  std::fprintf(stderr, "error: cannot open '%s' (not a file or corpus case)\n",
               Pos);
  return 2;
}
