//===- examples/race_lint.cpp - Static race & access-mode analysis --------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Runs the flow-sensitive static race analyzer (analysis/RaceLint.h) and
// prints per-program verdicts: race-free (proved), potentially-racy (with a
// concrete witness pair), or atomics-only.
//
//   race_lint [--json] [file | corpus-case-name]
//
// With no positional argument the whole litmus corpus is analyzed, one
// verdict line per case. --json emits a machine-readable report (verdict,
// witness, per-thread footprints) instead of the human-readable text.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceLint.h"
#include "lang/Parser.h"
#include "litmus/Corpus.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace pseq;

namespace {

int report(const std::string &Title, const std::string &Text, bool Json) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  analysis::RaceReport Rep = analysis::analyzeRaces(*P);
  if (Json) {
    std::printf("%s\n", Rep.json(*P).c_str());
  } else {
    std::printf("== %s ==\n%s", Title.c_str(), Rep.str(*P).c_str());
  }
  return Rep.Verdict == analysis::RaceVerdict::PotentiallyRacy ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  const char *Pos = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: %s [--json] [file | corpus-case-name]\n",
                  Argc ? Argv[0] : "race_lint");
      return 0;
    } else if (!Pos) {
      Pos = Argv[I];
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Argv[I]);
      return 2;
    }
  }

  if (!Pos) {
    // Corpus mode: one verdict line per litmus case (plus witness when racy).
    int Racy = 0;
    if (Json)
      std::printf("[\n");
    bool First = true;
    for (const LitmusCase &LC : litmusCorpus()) {
      std::unique_ptr<Program> P = parseOrDie(LC.Text);
      analysis::RaceReport Rep = analysis::analyzeRaces(*P);
      if (Json) {
        std::printf("%s{\"case\": \"%s\", \"report\": %s}", First ? "" : ",\n",
                    LC.Name.c_str(), Rep.json(*P).c_str());
        First = false;
      } else {
        std::printf("%-28s %s\n", LC.Name.c_str(),
                    analysis::raceVerdictName(Rep.Verdict));
        if (Rep.Witness)
          std::printf("    %s\n", Rep.Witness->str(*P).c_str());
      }
      Racy += Rep.Verdict == analysis::RaceVerdict::PotentiallyRacy;
    }
    if (Json)
      std::printf("\n]\n");
    else
      std::printf("\n%zu cases, %d potentially racy\n", litmusCorpus().size(),
                  Racy);
    return 0;
  }

  // A file, or a named corpus case.
  std::ifstream In(Pos);
  if (In) {
    std::stringstream Buf;
    Buf << In.rdbuf();
    return report(Pos, Buf.str(), Json);
  }
  for (const LitmusCase &LC : litmusCorpus())
    if (LC.Name == Pos)
      return report(LC.Name + " [" + LC.PaperRef + "]", LC.Text, Json);
  std::fprintf(stderr, "error: cannot open '%s' (not a file or corpus case)\n",
               Pos);
  return 2;
}
