//===- examples/optimizer_pipeline.cpp - The §4 optimizer on a corpus -----===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Runs the four-pass pipeline on a set of programs exercising every pass —
// including Example 1.3's LICM loop and a combined program where the
// passes enable each other — printing per-pass diffs and validation
// verdicts:
//
//   optimizer_pipeline [--method NAME] [file]
//
// --method selects the per-pass validation procedure (simple | advanced |
// simulation | symbolic); a typo lists the available methods and exits 2.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "support/CliArgs.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace pseq;

namespace {

ValidationMethod Method = ValidationMethod::Advanced;

void runOn(const std::string &Title, const std::string &Text,
           ValueDomain Domain, unsigned StepBudget) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  std::printf("==== %s ====\n%s\n", Title.c_str(),
              printProgram(*P).c_str());
  PipelineOptions Opts;
  Opts.Method = Method;
  Opts.Cfg.Domain = std::move(Domain);
  Opts.Cfg.StepBudget = StepBudget;
  PipelineResult R = runPipeline(*P, Opts);
  for (const PassReport &Rep : R.Reports) {
    if (Rep.Rewrites == 0) {
      std::printf("-- %s: no rewrites\n", Rep.Name.c_str());
      continue;
    }
    std::printf("-- %s: %u rewrites, %s%s\n", Rep.Name.c_str(), Rep.Rewrites,
                Rep.Validated ? "validated in SEQ" : "REJECTED",
                Rep.ValidationBounded ? " (bounded)" : "");
    if (!Rep.Error.empty())
      std::printf("   %s\n", Rep.Error.c_str());
  }
  std::printf("\n=> optimized:\n%s\n", printProgram(*R.Prog).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  const char *File = nullptr;
  for (int I = 1; I < Argc; ++I) {
    const char *Value = nullptr;
    if (cli::flagValue(Argc, Argv, I, "--method", Value)) {
      std::optional<ValidationMethod> M;
      if (Value)
        M = parseValidationMethodMaybe(Value);
      if (!M) {
        std::fprintf(stderr,
                     "error: unknown validation method '%s'\n"
                     "available methods: %s\n",
                     Value ? Value : "", validationMethodList());
        return 2;
      }
      Method = *M;
      continue;
    }
    File = Argv[I];
  }
  if (File) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    runOn(File, Buf.str(), ValueDomain::ternary(), 18);
    return 0;
  }

  // Example 1.1/1.2: store-to-load forwarding across atomics.
  runOn("slf across atomics (Ex 1.2)",
        "na x; atomic y;\n"
        "thread { x@na := 1; s := y@acq; b := x@na; return b; }",
        ValueDomain::binary(), 48);

  // Appendix D shapes: LLF and DSE.
  runOn("llf + dse (App D)",
        "na x; atomic y;\n"
        "thread {\n"
        "  x@na := 1;\n"
        "  a := x@na;\n"
        "  b := x@na;\n"
        "  y@rel := 1;\n"
        "  x@na := 2;\n"
        "  x@na := 3;\n"
        "  return a + b;\n"
        "}",
        ValueDomain({0, 1, 2, 3}), 48);

  // Example 1.3: loop-invariant code motion.
  runOn("licm (Ex 1.3)",
        "na x;\n"
        "thread {\n"
        "  c := choose;\n"
        "  while (c != 0) { a := x@na; c := choose; }\n"
        "  return 0;\n"
        "}",
        ValueDomain::binary(), 18);

  // A program where SLF unlocks DSE: after forwarding, the first store's
  // value is never read again.
  runOn("pass synergy",
        "na x;\n"
        "thread {\n"
        "  x@na := 1;\n"
        "  a := x@na;\n"
        "  x@na := a;\n"
        "  b := x@na;\n"
        "  return a + b;\n"
        "}",
        ValueDomain({0, 1, 2}), 48);

  return 0;
}
