//===- examples/validate_server.cpp - Validation-as-a-service daemon ------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The long-lived validation daemon (serve/Server.h): accepts batches of
// (source, target, config) jobs over a Unix socket, runs them across
// crash-isolated workers, and answers every job with exactly one verdict
// or classified failure. SIGTERM/SIGINT drain gracefully — snapshots are
// saved, telemetry is flushed, and the process exits with the distinct
// graceful code (75) — so supervisors can tell an orderly stop from a
// crash.
//
//   validate_server --socket /tmp/pseq.sock --workers 4 \
//     --snapshot /var/tmp/pseq.snap [--chaos] [--trace out.jsonl]
//
//===----------------------------------------------------------------------===//

#include "guard/Signals.h"
#include "obs/Telemetry.h"
#include "serve/Server.h"
#include "support/CliArgs.h"

#include <cstdio>
#include <string>

using namespace pseq;

namespace {

int usage(const char *Msg) {
  if (Msg)
    std::fprintf(stderr, "validate_server: %s\n", Msg);
  std::fprintf(
      stderr,
      "usage: validate_server --socket PATH [options]\n"
      "  --socket PATH        Unix socket to listen on (required)\n"
      "  --workers N          worker threads (default 2)\n"
      "  --queue-high-water N admission cap before shedding (default 256)\n"
      "  --snapshot PATH      warm-cache snapshot base path (default off)\n"
      "  --cache-mb N         verdict cache byte cap in MiB (default 8)\n"
      "  --deadline-ms N      default per-job deadline (default 5000)\n"
      "  --mem-mb N           default per-job memory budget (default 512)\n"
      "  --step-budget N      default SEQ step budget (default 48)\n"
      "  --max-attempts N     isolated tries per job (default 3)\n"
      "  --backoff-ms N       retry backoff base (default 10)\n"
      "  --no-isolate         run jobs in-process (no fork isolation)\n"
      "  --chaos              deterministically kill ~1/3 of first\n"
      "                       attempts mid-job (self-test mode)\n"
      "  --chaos-seed N       chaos selection seed (default 1)\n"
      "  --trace PATH         JSONL flight-recorder trace\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  serve::ServerOptions Opts;
  std::string TracePath;
  std::string Err;

  for (int I = 1; I < argc; ++I) {
    const char *V = nullptr;
    uint64_t N = 0;
    std::string A = argv[I];
    if (cli::flagValue(argc, argv, I, "--socket", V)) {
      if (!V)
        return usage("--socket needs a path");
      Opts.SocketPath = V;
    } else if (cli::flagValue(argc, argv, I, "--workers", V)) {
      if (!cli::parseUnsignedInRange("--workers", V, 1, 256, N, Err))
        return usage(Err.c_str());
      Opts.NumWorkers = static_cast<unsigned>(N);
    } else if (cli::flagValue(argc, argv, I, "--queue-high-water", V)) {
      if (!cli::parseUnsignedInRange("--queue-high-water", V, 1, 1u << 20, N,
                                     Err))
        return usage(Err.c_str());
      Opts.QueueHighWater = static_cast<size_t>(N);
    } else if (cli::flagValue(argc, argv, I, "--snapshot", V)) {
      if (!V)
        return usage("--snapshot needs a path");
      Opts.SnapshotPath = V;
    } else if (cli::flagValue(argc, argv, I, "--cache-mb", V)) {
      if (!cli::parseUnsignedInRange("--cache-mb", V, 1, 4096, N, Err))
        return usage(Err.c_str());
      Opts.CacheCapBytes = N << 20;
    } else if (cli::flagValue(argc, argv, I, "--deadline-ms", V)) {
      if (!cli::parseUnsignedInRange("--deadline-ms", V, 1, 3600000, N, Err))
        return usage(Err.c_str());
      Opts.Policy.DefaultDeadlineMs = N;
    } else if (cli::flagValue(argc, argv, I, "--mem-mb", V)) {
      if (!cli::parseUnsignedInRange("--mem-mb", V, 16, 65536, N, Err))
        return usage(Err.c_str());
      Opts.Policy.DefaultMemMb = N;
    } else if (cli::flagValue(argc, argv, I, "--step-budget", V)) {
      if (!cli::parseUnsignedInRange("--step-budget", V, 1, 100000, N, Err))
        return usage(Err.c_str());
      Opts.Policy.DefaultStepBudget = static_cast<unsigned>(N);
    } else if (cli::flagValue(argc, argv, I, "--max-attempts", V)) {
      if (!cli::parseUnsignedInRange("--max-attempts", V, 1, 10, N, Err))
        return usage(Err.c_str());
      Opts.Policy.MaxAttempts = static_cast<unsigned>(N);
    } else if (cli::flagValue(argc, argv, I, "--backoff-ms", V)) {
      if (!cli::parseUnsignedInRange("--backoff-ms", V, 1, 10000, N, Err))
        return usage(Err.c_str());
      Opts.Policy.BackoffBaseMs = N;
    } else if (A == "--no-isolate") {
      Opts.Policy.Isolate = false;
    } else if (A == "--chaos") {
      Opts.Policy.Chaos = true;
    } else if (cli::flagValue(argc, argv, I, "--chaos-seed", V)) {
      if (!cli::parseUnsignedInRange("--chaos-seed", V, 0,
                                     ~uint64_t(0) - 1, N, Err))
        return usage(Err.c_str());
      Opts.Policy.ChaosSeed = N;
    } else if (cli::flagValue(argc, argv, I, "--trace", V)) {
      if (!V)
        return usage("--trace needs a path");
      TracePath = V;
    } else if (A == "--help" || A == "-h") {
      usage(nullptr);
      return 0;
    } else {
      return usage(("unknown argument " + A).c_str());
    }
  }
  if (Opts.SocketPath.empty())
    return usage("--socket is required");

  guard::installShutdownHandlers();

  obs::Telemetry Telem;
  std::unique_ptr<obs::TraceSink> Sink = obs::traceSinkFromFlagOrEnv(TracePath);
  Telem.Sink = Sink.get();
  Opts.Telem = &Telem;

  serve::Server Server(std::move(Opts));
  if (!Server.start(Err)) {
    std::fprintf(stderr, "validate_server: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "validate_server: listening\n");
  Server.run(); // returns after the graceful drain

  const serve::ServerTallies &T = Server.tallies();
  std::fprintf(stderr,
               "validate_server: served %llu jobs (%llu ok, %llu failed, "
               "%llu shed), %llu cache hits\n",
               static_cast<unsigned long long>(T.Jobs.load()),
               static_cast<unsigned long long>(T.JobsOk.load()),
               static_cast<unsigned long long>(T.JobsFailed.load()),
               static_cast<unsigned long long>(T.Shed.load()),
               static_cast<unsigned long long>(Server.cache().stats().Hits));

  bool Signalled = guard::shutdownRequested();
  Telem.finalSnapshot(Signalled ? "shutdown-signal" : "shutdown-op");
  return Signalled ? guard::GracefulSignalExit : 0;
}
