//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// The headline flow: write a little concurrent program, run the certified
// optimizer pipeline (SLF/LLF/DSE/LICM) with translation validation in the
// SEQ model, and confirm — directly in PS^na — that the optimized thread
// is a contextual refinement of the original (Theorem 6.2 in action).
//
//===----------------------------------------------------------------------===//

#include "adequacy/Harness.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"

#include <cstdio>

using namespace pseq;

int main() {
  // Example 1.2's motivating shape: non-atomic data guarded by an atomic
  // flag, with redundant accesses a compiler wants to clean up.
  const char *Source = "na data; atomic flag;\n"
                       "thread {\n"
                       "  data@na := 42;\n"
                       "  l := flag@acq;\n"
                       "  if (l == 0) {\n"
                       "    a := data@na;\n"
                       "    flag@rel := 1;\n"
                       "  } else { skip; }\n"
                       "  b := data@na;\n"
                       "  return b;\n"
                       "}";

  std::unique_ptr<Program> P = parseOrDie(Source);
  std::printf("== input ==\n%s\n", printProgram(*P).c_str());

  // Run the four §4 passes; every rewrite is validated against the SEQ
  // advanced refinement (Def 3.3) — the executable stand-in for the
  // paper's Coq certificate.
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain({0, 1, 42});
  PipelineResult R = runPipeline(*P, Opts);

  std::printf("== optimizer report ==\n");
  for (const PassReport &Rep : R.Reports)
    std::printf("  %-5s rewrites=%u %s%s\n", Rep.Name.c_str(), Rep.Rewrites,
                Rep.Rewrites == 0    ? "(no-op)"
                : Rep.Validated      ? "validated"
                                     : "REJECTED",
                Rep.Error.empty() ? "" : Rep.Error.c_str());
  std::printf("\n== output ==\n%s\n", printProgram(*R.Prog).c_str());

  // Cross-check in the full weak-memory model: compose both versions with
  // every context in the library and compare PS^na outcome sets.
  SeqConfig SeqCfg;
  SeqCfg.Domain = ValueDomain({0, 1, 42});
  PsConfig PsCfg;
  PsCfg.Domain = ValueDomain({0, 1, 42});
  AdequacyRecord Rec =
      runAdequacy("quickstart", *P, *R.Prog, SeqCfg, PsCfg,
                  /*HasLoops=*/false);

  std::printf("== adequacy (Theorem 6.2) ==\n");
  std::printf("  SEQ simple refinement   : %s\n",
              Rec.SeqSimple ? "holds" : "fails");
  std::printf("  SEQ advanced refinement : %s\n",
              Rec.SeqAdvanced ? "holds" : "fails");
  for (const ContextVerdict &V : Rec.Contexts)
    std::printf("  PS^na vs %-20s: %s\n", V.Context.c_str(),
                V.Holds ? "refines" : V.Counterexample.c_str());
  std::printf("  => %s\n",
              Rec.adequacyHolds() ? "sequential reasoning was sufficient"
                                  : "ADEQUACY VIOLATION (bug!)");
  return Rec.adequacyHolds() && R.AllValidated ? 0 : 1;
}
