//===- examples/dcl_pattern.cpp - Double-checked initialization -----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// A domain-specific walkthrough: the classic double-checked initialization
// pattern, exactly the kind of mixed atomic/non-atomic code the paper's
// model is designed for. Two threads race to initialize a non-atomic
// payload guarded by an atomic flag:
//
//   * with a rel/acq flag the pattern is correct — PS^na shows the reader
//     can only see the initialized payload (never undef, never UB);
//   * with a relaxed flag it is the textbook bug — PS^na exhibits the
//     undef read (the §5 race semantics: undef, not catch-fire);
//   * the optimizer is then let loose on the correct version and every
//     rewrite is validated in SEQ — including forwarding the payload
//     store to the initializer's own re-read, across the release.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opt/Pipeline.h"
#include "psna/Explorer.h"

#include <cstdio>

using namespace pseq;

namespace {

void explore(const char *Title, const char *Text) {
  std::unique_ptr<Program> P = parseOrDie(Text);
  PsConfig Cfg;
  Cfg.Domain = ValueDomain({0, 1, 41, 42});
  PsBehaviorSet B = explorePsna(*P, Cfg);
  std::printf("-- %s (%u states)\n", Title, B.StatesExplored);
  for (const std::string &S : B.strs())
    std::printf("     %s\n", S.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  // Initializer: claim the flag with a CAS, fill the payload, publish.
  // Reader: double-check the flag; only touch the payload when published.
  const char *Correct =
      "na payload; atomic inited;\n"
      // Thread 0: initialize-if-needed, then use.
      "thread {\n"
      "  f := inited@acq;\n"
      "  if (f == 0) {\n"
      "    w := cas(inited, 0, 1) @ acq rel;\n"
      "    if (w == 0) { payload@na := 41; payload@na := 42;\n"
      "                   c := payload@na; inited@rel := c - 40; }\n"
      "  }\n"
      "  g := inited@acq;\n"
      "  if (g == 2) { v := payload@na; return v; }\n"
      "  return 1;\n"
      "}\n"
      // Thread 1: same protocol.
      "thread {\n"
      "  f := inited@acq;\n"
      "  if (f == 0) {\n"
      "    w := cas(inited, 0, 1) @ acq rel;\n"
      "    if (w == 0) { payload@na := 41; payload@na := 42;\n"
      "                   c := payload@na; inited@rel := c - 40; }\n"
      "  }\n"
      "  g := inited@acq;\n"
      "  if (g == 2) { v := payload@na; return v; }\n"
      "  return 1;\n"
      "}";

  std::printf("== double-checked initialization under PS^na ==\n\n");
  explore("rel/acq publication (correct)", Correct);
  std::printf("   -> every consumed payload is 42; no undef, no UB.\n\n");

  // The textbook bug: publish with a relaxed store. The payload read is
  // no longer ordered after the initialization — PS^na returns undef for
  // the racy read (LLVM-style, not catch-fire; load introduction stays
  // sound, §1).
  const char *Broken =
      "na payload; atomic inited;\n"
      "thread { payload@na := 42; inited@rlx := 2; return 0; }\n"
      "thread { g := inited@rlx; if (g == 2) { v := payload@na; "
      "return v; } return 1; }";
  explore("rlx publication (broken)", Broken);
  std::printf("   -> ret(0,undef): the reader can consume garbage.\n\n");

  // Optimize the correct initializer and validate every rewrite.
  std::printf("== optimizing the correct version ==\n\n");
  std::unique_ptr<Program> P = parseOrDie(Correct);
  PipelineOptions Opts;
  Opts.Cfg.Domain = ValueDomain({0, 1, 2, 41, 42});
  PipelineResult R = runPipeline(*P, Opts);
  for (const PassReport &Rep : R.Reports)
    std::printf("  %-5s rewrites=%u%s\n", Rep.Name.c_str(), Rep.Rewrites,
                Rep.Rewrites == 0      ? ""
                : Rep.Validated        ? "  [validated in SEQ]"
                                       : "  [REJECTED]");
  std::printf("\n%s\n", printProgram(*R.Prog).c_str());
  return R.AllValidated ? 0 : 1;
}
