//===- examples/stats_report.cpp - Telemetry tour of the engines ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Drives every instrumented engine over the built-in corpora with one
// shared telemetry registry and prints the aggregated report:
//
//   * the validated optimizer pipeline over the refinement corpus
//     (per-pass rewrites, per-pass wall time, validation time/states);
//   * exhaustive PS^na exploration over the litmus corpus (states,
//     dedup rates, per-thread step counts);
//   * deliberately tight-budget reruns that exercise every truncation
//     cause (step budget, behavior cap, state budget, cert budget).
//
//   stats_report [--json <path>]
//   stats_report --diff <old.json> <new.json>
//
// With --json the same report is additionally written as one JSON object.
// Setting PSEQ_TRACE=<path> streams per-event JSONL to <path> as well.
//
// --diff compares two report JSON files (either stats_report --json output
// or a bench_* --json file — the report under its "telemetry" member is
// used) and prints counter deltas and histogram percentile shifts.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "obs/JsonValue.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "obs/TraceSink.h"
#include "opt/Pipeline.h"
#include "psna/Explorer.h"
#include "seq/BehaviorEnum.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace pseq;

namespace {

/// A choose-driven loop: unbounded behaviors, so small budgets truncate.
const char *LoopText = "na x;\n"
                       "thread { c := choose; "
                       "while (c != 0) { x@na := 1; c := choose; } "
                       "return 0; }";

double rate(uint64_t Hits, uint64_t Total) {
  return Total ? 100.0 * static_cast<double>(Hits) /
                     static_cast<double>(Total)
               : 0.0;
}

/// Loads a report JSON file for --diff. Accepts a bare report object or a
/// bench_* --json file, whose report sits under the "telemetry" member.
bool loadReport(const char *Path, obs::JsonValue &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  if (!obs::JsonValue::parse(Buf.str(), Out, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Err.c_str());
    return false;
  }
  if (const obs::JsonValue *Telemetry = Out.field("telemetry")) {
    // Copy out before overwriting: *Telemetry lives inside Out.
    obs::JsonValue Report = *Telemetry;
    Out = std::move(Report);
  }
  if (!Out.isObject()) {
    std::fprintf(stderr, "error: %s is not a report object\n", Path);
    return false;
  }
  return true;
}

/// Numeric members of a report section ("counters" / "gauges") as a map.
std::map<std::string, double> sectionValues(const obs::JsonValue &Report,
                                            const char *Section) {
  std::map<std::string, double> Out;
  if (const obs::JsonValue *S = Report.field(Section); S && S->isObject())
    for (const auto &[Key, V] : S->object())
      if (V.isNumber())
        Out[Key] = V.asNumber();
  return Out;
}

void printDeltaRows(const std::map<std::string, double> &Old,
                    const std::map<std::string, double> &New) {
  std::set<std::string> Keys;
  for (const auto &[K, V] : Old)
    Keys.insert(K);
  for (const auto &[K, V] : New)
    Keys.insert(K);
  for (const std::string &K : Keys) {
    auto OIt = Old.find(K), NIt = New.find(K);
    double O = OIt == Old.end() ? 0 : OIt->second;
    double N = NIt == New.end() ? 0 : NIt->second;
    if (O == N)
      continue;
    double Pct = O != 0 ? 100.0 * (N - O) / O : 0.0;
    std::printf("  %-36s %14.0f %14.0f %+10.0f", K.c_str(), O, N, N - O);
    if (O != 0)
      std::printf(" (%+.1f%%)", Pct);
    std::printf("\n");
  }
}

int diffReports(const char *OldPath, const char *NewPath) {
  obs::JsonValue OldR, NewR;
  if (!loadReport(OldPath, OldR) || !loadReport(NewPath, NewR))
    return 2;

  std::printf("report diff: %s -> %s\n\n", OldPath, NewPath);
  std::printf("counters%42s %14s %10s\n", "old", "new", "delta");
  printDeltaRows(sectionValues(OldR, "counters"),
                 sectionValues(NewR, "counters"));
  std::printf("\ngauges%44s %14s %10s\n", "old", "new", "delta");
  printDeltaRows(sectionValues(OldR, "gauges"), sectionValues(NewR, "gauges"));

  // Histogram percentile shifts: one row per percentile that moved.
  std::printf("\nhistograms%40s %14s %10s\n", "old", "new", "delta");
  const obs::JsonValue *OldH = OldR.field("histograms");
  const obs::JsonValue *NewH = NewR.field("histograms");
  std::set<std::string> Keys;
  if (OldH && OldH->isObject())
    for (const auto &[K, V] : OldH->object())
      Keys.insert(K);
  if (NewH && NewH->isObject())
    for (const auto &[K, V] : NewH->object())
      Keys.insert(K);
  for (const std::string &K : Keys) {
    const obs::JsonValue *O = OldH ? OldH->field(K) : nullptr;
    const obs::JsonValue *N = NewH ? NewH->field(K) : nullptr;
    for (const char *P : {"count", "p50", "p90", "p99", "max"}) {
      const obs::JsonValue *OV = O ? O->field(P) : nullptr;
      const obs::JsonValue *NV = N ? N->field(P) : nullptr;
      double OD = OV && OV->isNumber() ? OV->asNumber() : 0;
      double ND = NV && NV->isNumber() ? NV->asNumber() : 0;
      if (OD == ND)
        continue;
      std::string Row = K + "." + P;
      std::printf("  %-36s %14.1f %14.1f %+10.1f", Row.c_str(), OD, ND,
                  ND - OD);
      if (OD != 0)
        std::printf(" (%+.1f%%)", 100.0 * (ND - OD) / OD);
      std::printf("\n");
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  if (Argc == 4 && std::strcmp(Argv[1], "--diff") == 0)
    return diffReports(Argv[2], Argv[3]);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
    } else {
      std::fprintf(stderr, "usage: stats_report [--json <path>]\n"
                           "       stats_report --diff <old.json> <new.json>\n");
      return 1;
    }
  }

  obs::Telemetry Telem;
  std::unique_ptr<obs::TraceSink> EnvSink = obs::traceSinkFromEnv();
  Telem.Sink = EnvSink.get();

  // 1. Validated pipeline over the refinement corpus sources (they carry
  //    the SLF/LLF/DSE-shaped redundancy the passes fire on).
  unsigned PipelineRuns = 0, Rewrites = 0;
  for (const RefinementCase &RC : refinementCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(RC.Src);
    PipelineOptions Opts;
    Opts.Cfg.Domain = RC.Domain;
    Opts.Cfg.StepBudget = RC.StepBudget;
    Opts.Telem = &Telem;
    PipelineResult R = runPipeline(*P, Opts);
    ++PipelineRuns;
    Rewrites += R.TotalRewrites;
  }
  std::printf("pipeline: %u corpus sources optimized, %u rewrites total\n",
              PipelineRuns, Rewrites);

  // 2. PS^na exploration over the litmus corpus at its own budgets.
  unsigned Explored = 0;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.Telem = &Telem;
    explorePsna(*P, Cfg);
    ++Explored;
  }
  std::printf("psna: %u litmus tests explored\n", Explored);

  // 3. Tight-budget reruns: one run per truncation cause.
  std::printf("truncation showcase:\n");
  {
    std::unique_ptr<Program> P = parseOrDie(LoopText);
    SeqConfig Cfg;
    Cfg.Domain = ValueDomain::binary();
    Cfg.Universe = P->naLocs();
    Cfg.StepBudget = 6;
    Cfg.Telem = &Telem;
    SeqMachine M(*P, 0, Cfg);
    std::vector<Value> Mem(P->numLocs(), Value::of(0));
    BehaviorSet B = enumerateBehaviors(
        M, M.initial(P->naLocs(), LocSet::empty(), Mem));
    std::printf("  seq loop, step budget 6   -> %s\n",
                truncationCauseName(B.Cause));

    Cfg.MaxBehaviors = 3;
    SeqMachine M2(*P, 0, Cfg);
    BehaviorSet B2 = enumerateBehaviors(
        M2, M2.initial(P->naLocs(), LocSet::empty(), Mem));
    std::printf("  seq loop, behavior cap 3  -> %s\n",
                truncationCauseName(B2.Cause));
  }
  {
    const LitmusCase &LC = litmusCaseByName("lb-rlx");
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.MaxStates = 20;
    Cfg.Telem = &Telem;
    PsBehaviorSet B = explorePsna(*P, Cfg);
    std::printf("  psna lb-rlx, 20 states    -> %s\n",
                truncationCauseName(B.Cause));
  }
  {
    const LitmusCase &LC = litmusCaseByName("ex5.1-promise-racy-read");
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.CertNodeBudget = 1;
    Cfg.Telem = &Telem;
    PsBehaviorSet B = explorePsna(*P, Cfg);
    std::printf("  psna ex5.1, cert budget 1 -> %s\n",
                truncationCauseName(B.Cause));
  }

  // 4. Derived rates from the aggregated counters.
  uint64_t SeqEmitted = Telem.Counters.counter("seq.enum.behaviors_emitted");
  uint64_t SeqDedup = Telem.Counters.counter("seq.enum.dedup_hits");
  uint64_t PsSteps = 0;
  for (const auto &[Name, V] : Telem.Counters.counters())
    if (Name.rfind("psna.explore.thread", 0) == 0)
      PsSteps += V;
  uint64_t PsDedup = Telem.Counters.counter("psna.explore.dedup_hits");
  std::printf("dedup rates: seq %.1f%% (%llu/%llu emits), "
              "psna %.1f%% (%llu/%llu generated)\n",
              rate(SeqDedup, SeqEmitted + SeqDedup),
              static_cast<unsigned long long>(SeqDedup),
              static_cast<unsigned long long>(SeqEmitted + SeqDedup),
              rate(PsDedup, PsSteps),
              static_cast<unsigned long long>(PsDedup),
              static_cast<unsigned long long>(PsSteps));

  std::printf("\n%s", obs::renderReportTable(Telem).c_str());

  if (!JsonPath.empty() && !obs::writeReportJson(Telem, JsonPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
