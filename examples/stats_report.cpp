//===- examples/stats_report.cpp - Telemetry tour of the engines ----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
// Drives every instrumented engine over the built-in corpora with one
// shared telemetry registry and prints the aggregated report:
//
//   * the validated optimizer pipeline over the refinement corpus
//     (per-pass rewrites, per-pass wall time, validation time/states);
//   * exhaustive PS^na exploration over the litmus corpus (states,
//     dedup rates, per-thread step counts);
//   * deliberately tight-budget reruns that exercise every truncation
//     cause (step budget, behavior cap, state budget, cert budget).
//
//   stats_report [--json <path>]
//
// With --json the same report is additionally written as one JSON object.
// Setting PSEQ_TRACE=<path> streams per-event JSONL to <path> as well.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "litmus/Corpus.h"
#include "obs/Report.h"
#include "obs/Telemetry.h"
#include "obs/TraceSink.h"
#include "opt/Pipeline.h"
#include "psna/Explorer.h"
#include "seq/BehaviorEnum.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace pseq;

namespace {

/// A choose-driven loop: unbounded behaviors, so small budgets truncate.
const char *LoopText = "na x;\n"
                       "thread { c := choose; "
                       "while (c != 0) { x@na := 1; c := choose; } "
                       "return 0; }";

double rate(uint64_t Hits, uint64_t Total) {
  return Total ? 100.0 * static_cast<double>(Hits) /
                     static_cast<double>(Total)
               : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
    } else {
      std::fprintf(stderr, "usage: stats_report [--json <path>]\n");
      return 1;
    }
  }

  obs::Telemetry Telem;
  std::unique_ptr<obs::TraceSink> EnvSink = obs::traceSinkFromEnv();
  Telem.Sink = EnvSink.get();

  // 1. Validated pipeline over the refinement corpus sources (they carry
  //    the SLF/LLF/DSE-shaped redundancy the passes fire on).
  unsigned PipelineRuns = 0, Rewrites = 0;
  for (const RefinementCase &RC : refinementCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(RC.Src);
    PipelineOptions Opts;
    Opts.Cfg.Domain = RC.Domain;
    Opts.Cfg.StepBudget = RC.StepBudget;
    Opts.Telem = &Telem;
    PipelineResult R = runPipeline(*P, Opts);
    ++PipelineRuns;
    Rewrites += R.TotalRewrites;
  }
  std::printf("pipeline: %u corpus sources optimized, %u rewrites total\n",
              PipelineRuns, Rewrites);

  // 2. PS^na exploration over the litmus corpus at its own budgets.
  unsigned Explored = 0;
  for (const LitmusCase &LC : litmusCorpus()) {
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.Telem = &Telem;
    explorePsna(*P, Cfg);
    ++Explored;
  }
  std::printf("psna: %u litmus tests explored\n", Explored);

  // 3. Tight-budget reruns: one run per truncation cause.
  std::printf("truncation showcase:\n");
  {
    std::unique_ptr<Program> P = parseOrDie(LoopText);
    SeqConfig Cfg;
    Cfg.Domain = ValueDomain::binary();
    Cfg.Universe = P->naLocs();
    Cfg.StepBudget = 6;
    Cfg.Telem = &Telem;
    SeqMachine M(*P, 0, Cfg);
    std::vector<Value> Mem(P->numLocs(), Value::of(0));
    BehaviorSet B = enumerateBehaviors(
        M, M.initial(P->naLocs(), LocSet::empty(), Mem));
    std::printf("  seq loop, step budget 6   -> %s\n",
                truncationCauseName(B.Cause));

    Cfg.MaxBehaviors = 3;
    SeqMachine M2(*P, 0, Cfg);
    BehaviorSet B2 = enumerateBehaviors(
        M2, M2.initial(P->naLocs(), LocSet::empty(), Mem));
    std::printf("  seq loop, behavior cap 3  -> %s\n",
                truncationCauseName(B2.Cause));
  }
  {
    const LitmusCase &LC = litmusCaseByName("lb-rlx");
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.MaxStates = 20;
    Cfg.Telem = &Telem;
    PsBehaviorSet B = explorePsna(*P, Cfg);
    std::printf("  psna lb-rlx, 20 states    -> %s\n",
                truncationCauseName(B.Cause));
  }
  {
    const LitmusCase &LC = litmusCaseByName("ex5.1-promise-racy-read");
    std::unique_ptr<Program> P = parseOrDie(LC.Text);
    PsConfig Cfg;
    Cfg.Domain = LC.Domain;
    Cfg.PromiseBudget = LC.PromiseBudget;
    Cfg.SplitBudget = LC.SplitBudget;
    Cfg.CertNodeBudget = 1;
    Cfg.Telem = &Telem;
    PsBehaviorSet B = explorePsna(*P, Cfg);
    std::printf("  psna ex5.1, cert budget 1 -> %s\n",
                truncationCauseName(B.Cause));
  }

  // 4. Derived rates from the aggregated counters.
  uint64_t SeqEmitted = Telem.Counters.counter("seq.enum.behaviors_emitted");
  uint64_t SeqDedup = Telem.Counters.counter("seq.enum.dedup_hits");
  uint64_t PsSteps = 0;
  for (const auto &[Name, V] : Telem.Counters.counters())
    if (Name.rfind("psna.explore.thread", 0) == 0)
      PsSteps += V;
  uint64_t PsDedup = Telem.Counters.counter("psna.explore.dedup_hits");
  std::printf("dedup rates: seq %.1f%% (%llu/%llu emits), "
              "psna %.1f%% (%llu/%llu generated)\n",
              rate(SeqDedup, SeqEmitted + SeqDedup),
              static_cast<unsigned long long>(SeqDedup),
              static_cast<unsigned long long>(SeqEmitted + SeqDedup),
              rate(PsDedup, PsSteps),
              static_cast<unsigned long long>(PsDedup),
              static_cast<unsigned long long>(PsSteps));

  std::printf("\n%s", obs::renderReportTable(Telem).c_str());

  if (!JsonPath.empty() && !obs::writeReportJson(Telem, JsonPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
