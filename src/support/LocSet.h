//===- support/LocSet.h - Small location bitsets ----------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bitset over memory locations, used for the permission set P and the
/// written-locations set F of the SEQ machine (Fig. 1), and for commitment
/// sets R of the advanced refinement (Fig. 2). Programs in this reproduction
/// are bounded to 64 shared locations, which is far beyond every example in
/// the paper (the largest uses 3).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_LOCSET_H
#define PSEQ_SUPPORT_LOCSET_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pseq {

/// A set of location indices in [0, 64).
class LocSet {
  uint64_t Bits = 0;

  explicit LocSet(uint64_t Raw) : Bits(Raw) {}

public:
  static constexpr unsigned MaxLocs = 64;

  LocSet() = default;

  static LocSet empty() { return LocSet(); }
  static LocSet single(unsigned Loc) { return LocSet().plus(Loc); }
  /// \returns the full set over the first \p NumLocs locations.
  static LocSet all(unsigned NumLocs);
  static LocSet fromRaw(uint64_t Raw) { return LocSet(Raw); }

  uint64_t raw() const { return Bits; }

  bool contains(unsigned Loc) const {
    assert(Loc < MaxLocs && "location index out of range");
    return (Bits >> Loc) & 1;
  }
  bool isEmpty() const { return Bits == 0; }
  unsigned size() const { return __builtin_popcountll(Bits); }

  void insert(unsigned Loc) {
    assert(Loc < MaxLocs && "location index out of range");
    Bits |= uint64_t(1) << Loc;
  }
  void remove(unsigned Loc) {
    assert(Loc < MaxLocs && "location index out of range");
    Bits &= ~(uint64_t(1) << Loc);
  }

  /// Functional variants, convenient in enumeration code.
  LocSet plus(unsigned Loc) const {
    LocSet S = *this;
    S.insert(Loc);
    return S;
  }
  LocSet minus(unsigned Loc) const {
    LocSet S = *this;
    S.remove(Loc);
    return S;
  }

  LocSet unionWith(LocSet O) const { return LocSet(Bits | O.Bits); }
  LocSet intersectWith(LocSet O) const { return LocSet(Bits & O.Bits); }
  LocSet setMinus(LocSet O) const { return LocSet(Bits & ~O.Bits); }

  bool isSubsetOf(LocSet O) const { return (Bits & ~O.Bits) == 0; }

  bool operator==(LocSet O) const { return Bits == O.Bits; }
  bool operator!=(LocSet O) const { return Bits != O.Bits; }

  /// \returns the member locations in increasing order.
  std::vector<unsigned> members() const;

  /// Enumerates all subsets of this set (including ∅ and the set itself).
  /// Used by the SEQ machine to resolve the nondeterministic permission
  /// gains/losses of acquire reads and release writes.
  std::vector<LocSet> subsets() const;

  /// Enumerates all supersets of this set within \p Universe.
  std::vector<LocSet> supersetsWithin(LocSet Universe) const;

  /// Renders "{x0,x2}" for diagnostics, naming location i as \p Names[i]
  /// when names are provided.
  std::string str(const std::vector<std::string> *Names = nullptr) const;
};

} // namespace pseq

#endif // PSEQ_SUPPORT_LOCSET_H
