//===- support/ValueDomain.h - Finite value domains -------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's set Val is parametric and infinite; every refinement
/// counterexample in the paper distinguishes at most three defined values.
/// All bounded checkers in this reproduction therefore quantify reads,
/// freezes and environment choices over a finite, explicit value domain
/// (plus the distinguished undef, which checkers add themselves where the
/// semantics calls for it).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_VALUEDOMAIN_H
#define PSEQ_SUPPORT_VALUEDOMAIN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pseq {

/// A finite set of defined integer values used to bound enumeration.
class ValueDomain {
  std::vector<int64_t> Vals;

public:
  ValueDomain() : Vals({0, 1}) {}
  explicit ValueDomain(std::vector<int64_t> Vs) : Vals(std::move(Vs)) {}

  /// The default domain used by tests: {0, 1}.
  static ValueDomain binary() { return ValueDomain({0, 1}); }
  /// The domain used by the paper-example suites: {0, 1, 2}.
  static ValueDomain ternary() { return ValueDomain({0, 1, 2}); }
  /// {0, ..., N-1}.
  static ValueDomain upTo(int64_t N);

  const std::vector<int64_t> &values() const { return Vals; }
  size_t size() const { return Vals.size(); }
  bool contains(int64_t V) const;
};

} // namespace pseq

#endif // PSEQ_SUPPORT_VALUEDOMAIN_H
