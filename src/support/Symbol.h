//===- support/Symbol.h - Interned identifier table -------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny string interner mapping identifiers (register and location names
/// in the toy WHILE language) to dense indices. Dense indices let program
/// states be plain vectors, which keeps state hashing and copying cheap in
/// the exhaustive explorers.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_SYMBOL_H
#define PSEQ_SUPPORT_SYMBOL_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pseq {

/// Maps names to dense indices, preserving insertion order.
class SymbolTable {
  std::vector<std::string> Names;
  std::unordered_map<std::string, unsigned> Index;

public:
  /// \returns the index of \p Name, interning it on first use.
  unsigned intern(const std::string &Name);

  /// \returns the index of \p Name if already interned.
  std::optional<unsigned> lookup(const std::string &Name) const;

  const std::string &name(unsigned Idx) const;
  unsigned size() const { return static_cast<unsigned>(Names.size()); }
  const std::vector<std::string> &names() const { return Names; }
};

} // namespace pseq

#endif // PSEQ_SUPPORT_SYMBOL_H
