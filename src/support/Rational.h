//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over int64, used for the dense timestamp domain
/// Time = {0} ∪ Q+ of the promising semantics (Fig. 5 of the paper).
///
/// The model checker needs (a) a strictly ordered dense domain so that a
/// write can always be placed between two existing messages, and (b) exact
/// comparison so view joins are deterministic. Values are always kept in
/// lowest terms with a positive denominator.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_RATIONAL_H
#define PSEQ_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace pseq {

/// An exact rational number n/d with d > 0, stored in lowest terms.
///
/// Overflow safety: all arithmetic runs over __int128 intermediates and is
/// exact; a result whose lowest-terms form does not fit int64 aborts with
/// a hard error in every build type (the explorers run optimized, so a
/// debug-only assert would let timestamp comparison silently wrap). In
/// practice the explorers create timestamps only by midpoint() and
/// successor() from small integers and renormalize after every step, so
/// the error path is never taken.
class Rational {
  int64_t Num = 0;
  int64_t Den = 1;

  /// Normalizes N/D into lowest terms with D > 0, aborting (never
  /// wrapping) when the reduced form does not fit int64.
  static Rational make(__int128 N, __int128 D, const char *Op);

public:
  Rational() = default;
  explicit Rational(int64_t N) : Num(N), Den(1) {}
  Rational(int64_t N, int64_t D);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }

  Rational operator+(const Rational &O) const;
  Rational operator-(const Rational &O) const;
  Rational operator*(const Rational &O) const;
  Rational operator/(const Rational &O) const;

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const;
  bool operator<=(const Rational &O) const { return *this < O || *this == O; }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  /// \returns the midpoint (this + O) / 2; used to split timestamp intervals.
  Rational midpoint(const Rational &O) const;

  /// \returns this + 1; used to append past the maximal timestamp.
  Rational successor() const { return *this + Rational(1); }

  /// \returns a stable hash of the normalized representation.
  uint64_t hash() const;

  /// Renders "n" or "n/d" for diagnostics.
  std::string str() const;
};

} // namespace pseq

#endif // PSEQ_SUPPORT_RATIONAL_H
