//===- support/Symbol.cpp - Interned identifier table ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Symbol.h"

#include <cassert>

using namespace pseq;

unsigned SymbolTable::intern(const std::string &Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return It->second;
  unsigned Idx = static_cast<unsigned>(Names.size());
  Names.push_back(Name);
  Index.emplace(Name, Idx);
  return Idx;
}

std::optional<unsigned> SymbolTable::lookup(const std::string &Name) const {
  auto It = Index.find(Name);
  if (It == Index.end())
    return std::nullopt;
  return It->second;
}

const std::string &SymbolTable::name(unsigned Idx) const {
  assert(Idx < Names.size() && "symbol index out of range");
  return Names[Idx];
}
