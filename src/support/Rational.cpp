//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Hashing.h"

#include <numeric>

using namespace pseq;

Rational::Rational(int64_t N, int64_t D) : Num(N), Den(D) {
  assert(D != 0 && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  if (Num == 0) {
    Den = 1;
    return;
  }
  int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
  Num /= G;
  Den /= G;
}

Rational Rational::operator+(const Rational &O) const {
  return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
}

Rational Rational::operator-(const Rational &O) const {
  return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
}

Rational Rational::operator*(const Rational &O) const {
  return Rational(Num * O.Num, Den * O.Den);
}

Rational Rational::operator/(const Rational &O) const {
  assert(O.Num != 0 && "rational division by zero");
  return Rational(Num * O.Den, Den * O.Num);
}

bool Rational::operator<(const Rational &O) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return Num * O.Den < O.Num * Den;
}

Rational Rational::midpoint(const Rational &O) const {
  return (*this + O) / Rational(2);
}

uint64_t Rational::hash() const {
  return hashCombine(static_cast<uint64_t>(Num), static_cast<uint64_t>(Den));
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
