//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Hashing.h"

#include <cstdio>
#include <cstdlib>

using namespace pseq;

namespace {

using Int128 = __int128;

/// Timestamp arithmetic must be exact: silent wraparound would reorder
/// messages and corrupt view joins. All intermediates are 128-bit; a
/// result that cannot be represented in lowest terms over int64 is a hard
/// error in every build type (debug asserts are not enough — the explorers
/// run optimized).
[[noreturn]] void rationalOverflow(const char *Op) {
  std::fprintf(stderr, "pseq: rational overflow in %s\n", Op);
  std::abort();
}

/// gcd over __int128 magnitudes (std::gcd requires standard integer types,
/// which __int128 is not under -std=c++20 with extensions off).
Int128 gcd128(Int128 A, Int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    Int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

constexpr Int128 Int64Min = Int128(INT64_MIN);
constexpr Int128 Int64Max = Int128(INT64_MAX);

} // namespace

Rational Rational::make(Int128 N, Int128 D, const char *Op) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  if (N == 0)
    return Rational();
  Int128 G = gcd128(N, D);
  N /= G;
  D /= G;
  if (N < Int64Min || N > Int64Max || D > Int64Max)
    rationalOverflow(Op);
  Rational R;
  R.Num = static_cast<int64_t>(N);
  R.Den = static_cast<int64_t>(D);
  return R;
}

Rational::Rational(int64_t N, int64_t D) {
  *this = make(Int128(N), Int128(D), "construction");
}

Rational Rational::operator+(const Rational &O) const {
  return make(Int128(Num) * O.Den + Int128(O.Num) * Den,
              Int128(Den) * O.Den, "operator+");
}

Rational Rational::operator-(const Rational &O) const {
  return make(Int128(Num) * O.Den - Int128(O.Num) * Den,
              Int128(Den) * O.Den, "operator-");
}

Rational Rational::operator*(const Rational &O) const {
  return make(Int128(Num) * O.Num, Int128(Den) * O.Den, "operator*");
}

Rational Rational::operator/(const Rational &O) const {
  assert(O.Num != 0 && "rational division by zero");
  return make(Int128(Num) * O.Den, Int128(Den) * O.Num, "operator/");
}

bool Rational::operator<(const Rational &O) const {
  // Denominators are positive, so cross-multiplication preserves order;
  // 128-bit products never wrap for int64 operands.
  return Int128(Num) * O.Den < Int128(O.Num) * Den;
}

Rational Rational::midpoint(const Rational &O) const {
  return (*this + O) / Rational(2);
}

uint64_t Rational::hash() const {
  return hashCombine(static_cast<uint64_t>(Num), static_cast<uint64_t>(Den));
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
