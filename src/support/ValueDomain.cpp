//===- support/ValueDomain.cpp - Finite value domains ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/ValueDomain.h"

#include <algorithm>
#include <cassert>

using namespace pseq;

ValueDomain ValueDomain::upTo(int64_t N) {
  assert(N > 0 && "value domain must be non-empty");
  std::vector<int64_t> Vs;
  Vs.reserve(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    Vs.push_back(I);
  return ValueDomain(std::move(Vs));
}

bool ValueDomain::contains(int64_t V) const {
  return std::find(Vals.begin(), Vals.end(), V) != Vals.end();
}
