//===- support/AtomicFile.h - Crash-safe whole-file writes ------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe replacement for the "open, stream, hope" pattern behind every
/// whole-file JSON artifact (--json reports, --trace-out Perfetto dumps,
/// memo snapshots, BENCH_SERVER.json). The content is written to a
/// temporary sibling (`<path>.tmp.<pid>`) and renamed over the target, so
/// a process killed mid-write leaves either the previous complete file or
/// no file — never a truncated artifact that downstream tooling half
/// parses. On hosts without an atomic rename the implementation degrades
/// to a plain write (still a single buffered write call).
///
/// JSONL sinks (traces, heartbeats) are deliberately not routed through
/// this: they are append streams whose crash contract is "a valid prefix
/// of lines", maintained by per-event line writes and explicit flushes on
/// the guard/isolation shutdown paths.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_ATOMICFILE_H
#define PSEQ_SUPPORT_ATOMICFILE_H

#include <string>
#include <string_view>

namespace pseq {
namespace support {

/// Writes \p Contents to \p Path atomically (temp file + rename). On
/// failure returns false and, when \p Err is non-null, stores a message
/// naming the failing step. The temp file is unlinked on any failure the
/// process survives; a killed process can leave a `<path>.tmp.<pid>`
/// sibling behind, which later successful writes never read.
bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string *Err = nullptr);

/// Reads the whole file at \p Path into \p Out. Returns false (with a
/// message in \p Err when non-null) when the file cannot be opened or
/// read. Companion for snapshot/report round-trips.
bool readFileAll(const std::string &Path, std::string &Out,
                 std::string *Err = nullptr);

} // namespace support
} // namespace pseq

#endif // PSEQ_SUPPORT_ATOMICFILE_H
