//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64 generator for the property-based test sweeps and the random
/// program generator of the adequacy harness. Seeded explicitly so failures
/// reproduce exactly.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_RNG_H
#define PSEQ_SUPPORT_RNG_H

#include <cstdint>

namespace pseq {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
  uint64_t State;

public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 pseudo-random bits.
  uint64_t next();

  /// \returns a value uniform in [0, Bound); \p Bound must be positive.
  uint64_t below(uint64_t Bound);

  /// \returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);
};

} // namespace pseq

#endif // PSEQ_SUPPORT_RNG_H
