//===- support/Truncation.h - Why an exploration stopped --------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bounded-exhaustive engine in this repo (the SEQ behavior
/// enumerator, the PS^na explorer, the refinement matchers) can stop early
/// when one of its budgets runs out. Verdicts derived from a truncated set
/// are "bounded" rather than exhaustive; this enum records *which* budget
/// was responsible, so diagnostics can say more than a bare flag.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_TRUNCATION_H
#define PSEQ_SUPPORT_TRUNCATION_H

#include <cstdint>

namespace pseq {

/// The budget that cut an exploration short (None = exhaustive).
enum class TruncationCause : uint8_t {
  None,        ///< exploration ran to completion
  StepBudget,  ///< SeqConfig::StepBudget hit mid-run
  BehaviorCap, ///< SeqConfig::MaxBehaviors safety valve hit
  StateBudget, ///< a state/node cap hit (PsConfig::MaxStates, match budgets)
  CertBudget,  ///< PsConfig::CertNodeBudget hit during certification
  Deadline,    ///< guard::ResourceGuard soft wall-clock deadline expired
  MemBudget,   ///< guard::ResourceGuard approximate memory budget exceeded
  Cancelled,   ///< guard::CancellationToken tripped
};

/// Stable lowercase token for reports and JSONL traces.
constexpr const char *truncationCauseName(TruncationCause C) {
  switch (C) {
  case TruncationCause::None:
    return "none";
  case TruncationCause::StepBudget:
    return "step-budget";
  case TruncationCause::BehaviorCap:
    return "behavior-cap";
  case TruncationCause::StateBudget:
    return "state-budget";
  case TruncationCause::CertBudget:
    return "cert-budget";
  case TruncationCause::Deadline:
    return "deadline";
  case TruncationCause::MemBudget:
    return "mem-budget";
  case TruncationCause::Cancelled:
    return "cancelled";
  }
  return "none";
}

/// True for the guard-driven causes (deadline, memory, cancellation).
/// Unlike the work-item budgets, these cut an exploration at an arbitrary
/// point mid-run, so a set truncated by them is an arbitrary prefix:
/// verdicts that quantify over the *absence* of an element (an unmatched
/// behavior) must degrade to bounded instead of failing.
constexpr bool isGuardCause(TruncationCause C) {
  return C == TruncationCause::Deadline || C == TruncationCause::MemBudget ||
         C == TruncationCause::Cancelled;
}

/// Keeps the first recorded cause: the budget that fired first explains the
/// truncation; later ones are downstream noise.
inline void noteTruncation(TruncationCause &Slot, TruncationCause C) {
  if (Slot == TruncationCause::None)
    Slot = C;
}

} // namespace pseq

#endif // PSEQ_SUPPORT_TRUNCATION_H
