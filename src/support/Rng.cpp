//===- support/Rng.cpp - Deterministic random numbers ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace pseq;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below() with zero bound");
  // Modulo bias is irrelevant for test-case generation.
  return next() % Bound;
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "chance() with zero denominator");
  return below(Den) < Num;
}
