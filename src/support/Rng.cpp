//===- support/Rng.cpp - Deterministic random numbers ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace pseq;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below() with zero bound");
  // Rejection sampling: draws from the incomplete top slice of the 2^64
  // range (the top 2^64 mod Bound values) are discarded, so every residue
  // is equally likely. Rejecting the *top* slice keeps every accepted draw
  // equal to the plain `next() % Bound` of earlier versions — seeded
  // expectations only shift in the rare (p = Bound/2^64) rejection case.
  uint64_t Rem = (UINT64_MAX % Bound + 1) % Bound; // 2^64 mod Bound
  uint64_t Limit = UINT64_MAX - Rem;               // last unbiased draw
  uint64_t X = next();
  while (X > Limit)
    X = next();
  return X % Bound;
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "chance() with zero denominator");
  return below(Den) < Num;
}
