//===- support/AtomicFile.cpp - Crash-safe whole-file writes --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define PSEQ_HAVE_POSIX_RENAME 1
#include <unistd.h>
#endif

using namespace pseq;

namespace {

void setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg + ": " + std::strerror(errno);
}

} // namespace

bool pseq::support::writeFileAtomic(const std::string &Path,
                                    std::string_view Contents,
                                    std::string *Err) {
#ifdef PSEQ_HAVE_POSIX_RENAME
  const std::string Tmp = Path + ".tmp." + std::to_string(getpid());
#else
  const std::string Tmp = Path;
#endif
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    setErr(Err, "cannot open " + Tmp);
    return false;
  }
  bool Ok = Contents.empty() ||
            std::fwrite(Contents.data(), 1, Contents.size(), F) ==
                Contents.size();
  if (Ok)
    Ok = std::fflush(F) == 0;
#ifdef PSEQ_HAVE_POSIX_RENAME
  // fsync before the rename: the rename must never become durable while
  // the data is not, or a crash could leave a complete-looking empty file.
  if (Ok)
    Ok = fsync(fileno(F)) == 0;
#endif
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok) {
    setErr(Err, "cannot write " + Tmp);
#ifdef PSEQ_HAVE_POSIX_RENAME
    std::remove(Tmp.c_str());
#endif
    return false;
  }
#ifdef PSEQ_HAVE_POSIX_RENAME
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setErr(Err, "cannot rename " + Tmp + " to " + Path);
    std::remove(Tmp.c_str());
    return false;
  }
#endif
  return true;
}

bool pseq::support::readFileAll(const std::string &Path, std::string &Out,
                                std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    setErr(Err, "cannot open " + Path);
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok) {
    setErr(Err, "cannot read " + Path);
    return false;
  }
  return true;
}
