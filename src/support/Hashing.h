//===- support/Hashing.h - Hash combining utilities -------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hash-combining helpers used by the state-space
/// explorers. All hashes are stable across runs (no ASLR-dependent pointer
/// hashing), which keeps exploration order deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_HASHING_H
#define PSEQ_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pseq {

/// Mixes \p V into the running hash \p Seed (boost-style combiner with a
/// 64-bit avalanche).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  V *= 0x9e3779b97f4a7c15ULL;
  V ^= V >> 32;
  Seed ^= V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  return Seed;
}

/// Hashes a contiguous range of integer-convertible elements.
template <typename T>
uint64_t hashRange(uint64_t Seed, const std::vector<T> &Elems) {
  Seed = hashCombine(Seed, Elems.size());
  for (const T &E : Elems)
    Seed = hashCombine(Seed, static_cast<uint64_t>(E));
  return Seed;
}

} // namespace pseq

#endif // PSEQ_SUPPORT_HASHING_H
