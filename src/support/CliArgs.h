//===- support/CliArgs.h - Strict CLI argument parsing ----------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric parsing for the example and bench binaries. `atoi` /
/// bare `strtoul` silently turn garbage into 0 — `--threads garbage`
/// becoming "use all hardware threads" is exactly the kind of quiet
/// misconfiguration this project's determinism story cannot afford — so
/// every CLI number goes through these: the whole token must be a base-10
/// number in range, or the caller reports usage and exits nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SUPPORT_CLIARGS_H
#define PSEQ_SUPPORT_CLIARGS_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace pseq {
namespace cli {

/// Parses \p Text as a base-10 unsigned integer. The entire token must be
/// digits (no sign, no whitespace, no trailing junk) and fit in uint64_t.
inline bool parseUnsigned(const char *Text, uint64_t &Out) {
  if (!Text || *Text < '0' || *Text > '9')
    return false; // also rejects strtoull's tolerated "+", "-", " 7"
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (errno == ERANGE || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Same, bounded to `unsigned`.
inline bool parseUnsigned(const char *Text, unsigned &Out) {
  uint64_t V = 0;
  if (!parseUnsigned(Text, V) || V > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// Parses \p Text as a base-10 unsigned integer in [\p Min, \p Max]. On
/// failure \p Err holds a column-precise diagnostic of the shape
///
///   --threads garbage:1: expected a base-10 unsigned integer
///   --heartbeat-ms 0:1: value 0 out of range [1, 600000]
///
/// (flag, offending token, 1-based column of the first bad character,
/// message), so a bad value is rejected loudly instead of being silently
/// clamped or defaulted downstream. A null \p Text reports a missing
/// value for the flag.
inline bool parseUnsignedInRange(const char *Flag, const char *Text,
                                 uint64_t Min, uint64_t Max, uint64_t &Out,
                                 std::string &Err) {
  auto at = [&](size_t Col, const std::string &Msg) {
    Err = std::string(Flag) + " " + (Text ? Text : "") + ":" +
          std::to_string(Col) + ": " + Msg;
    return false;
  };
  if (!Text)
    return at(1, "missing value");
  if (*Text == '\0')
    return at(1, "empty value");
  for (size_t I = 0; Text[I] != '\0'; ++I)
    if (Text[I] < '0' || Text[I] > '9')
      return at(I + 1, "expected a base-10 unsigned integer");
  uint64_t V = 0;
  if (!parseUnsigned(Text, V))
    return at(1, "value does not fit in 64 bits");
  if (V < Min || V > Max)
    return at(1, "value " + std::string(Text) + " out of range [" +
                     std::to_string(Min) + ", " + std::to_string(Max) + "]");
  Out = V;
  return true;
}

/// Same, bounded to `unsigned` (the Min/Max bounds must themselves fit).
inline bool parseUnsignedInRange(const char *Flag, const char *Text,
                                 unsigned Min, unsigned Max, unsigned &Out,
                                 std::string &Err) {
  uint64_t V = 0;
  if (!parseUnsignedInRange(Flag, Text, uint64_t(Min), uint64_t(Max), V, Err))
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

/// Matches Argv[I] against a value-carrying flag, accepting both
/// `--flag VALUE` (consumes the next argument, advancing \p I) and
/// `--flag=VALUE`. \returns true when the flag matched; \p Value is then
/// the flag's value, or null for a trailing `--flag` with no argument
/// left — callers must treat null as a usage error, never a default.
/// Every binary shares this matcher so the flag surface stays uniform.
inline bool flagValue(int Argc, char **Argv, int &I, const char *Flag,
                      const char *&Value) {
  const char *A = Argv[I];
  size_t N = 0;
  while (Flag[N] != '\0') {
    if (A[N] != Flag[N])
      return false;
    ++N;
  }
  if (A[N] == '\0') {
    Value = I + 1 < Argc ? Argv[++I] : nullptr;
    return true;
  }
  if (A[N] == '=') {
    Value = A + N + 1;
    return true;
  }
  return false;
}

} // namespace cli
} // namespace pseq

#endif // PSEQ_SUPPORT_CLIARGS_H
