//===- support/LocSet.cpp - Small location bitsets ------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/LocSet.h"

using namespace pseq;

LocSet LocSet::all(unsigned NumLocs) {
  assert(NumLocs <= MaxLocs && "too many locations");
  if (NumLocs == 0)
    return LocSet();
  if (NumLocs == MaxLocs)
    return LocSet(~uint64_t(0));
  return LocSet((uint64_t(1) << NumLocs) - 1);
}

std::vector<unsigned> LocSet::members() const {
  std::vector<unsigned> Out;
  uint64_t B = Bits;
  while (B) {
    unsigned Loc = __builtin_ctzll(B);
    Out.push_back(Loc);
    B &= B - 1;
  }
  return Out;
}

std::vector<LocSet> LocSet::subsets() const {
  // Classic subset-enumeration trick: iterate Sub = (Sub - 1) & Bits.
  std::vector<LocSet> Out;
  uint64_t Sub = Bits;
  while (true) {
    Out.push_back(LocSet(Sub));
    if (Sub == 0)
      break;
    Sub = (Sub - 1) & Bits;
  }
  return Out;
}

std::vector<LocSet> LocSet::supersetsWithin(LocSet Universe) const {
  assert(isSubsetOf(Universe) && "base set escapes the universe");
  std::vector<LocSet> Out;
  for (LocSet Extra : Universe.setMinus(*this).subsets())
    Out.push_back(unionWith(Extra));
  return Out;
}

std::string LocSet::str(const std::vector<std::string> *Names) const {
  std::string Out = "{";
  bool First = true;
  for (unsigned Loc : members()) {
    if (!First)
      Out += ",";
    First = false;
    if (Names && Loc < Names->size())
      Out += (*Names)[Loc];
    else
      Out += "x" + std::to_string(Loc);
  }
  Out += "}";
  return Out;
}
