//===- opt/SlfAnalysis.h - Store-to-load forwarding (Fig 3) -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SLF analysis of §4 (Fig. 3): a forward fixpoint over the structured
/// AST assigning each non-atomic location a token ◦(v) / •(v) / ⊤ at every
/// program point. ◦(v): v was written by the most recent write and no
/// release executed since; •(v): a release executed but no release-acquire
/// pair; ⊤: anything else. A non-atomic load of x may be rewritten to a
/// register assignment when the token is ◦(v) or •(v) — the thread reads v
/// (permission kept) or undef (permission lost), and v ⊑ undef.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_SLFANALYSIS_H
#define PSEQ_OPT_SLFANALYSIS_H

#include "analysis/AbstractValue.h"

#include <unordered_map>

namespace pseq {

/// Result of running the SLF analysis over one thread.
struct SlfAnalysisResult {
  /// Token of the loaded location just before each non-atomic load.
  std::unordered_map<const Stmt *, SlfToken> AtLoad;
  /// Fixpoint iterations of the slowest loop (the paper proves ≤ 3).
  unsigned MaxLoopIterations = 0;
};

/// Runs the Fig. 3 analysis on thread \p Tid of \p P.
SlfAnalysisResult analyzeSlf(const Program &P, unsigned Tid);

} // namespace pseq

#endif // PSEQ_OPT_SLFANALYSIS_H
