//===- opt/PromotePass.h - Register promotion (extension) -------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register promotion: a non-atomic location that provably belongs to one
/// thread is demoted to a fresh register of that thread — every
/// `r := x@na` becomes a register move, every `x@na := e` a register
/// assignment, and a prologue initializes the register to the location's
/// initial value (0). The ownership proof comes from analysis/RaceLint.h:
/// the may-footprints place the location in exactly one thread, and the
/// whole-program verdict (or at least the race witness) clears it of any
/// undischarged race. Locations touched by an atomic-mode access or an RMW
/// are never promoted.
///
/// The rewrite is invisible to closed-program outcomes (PsBehavior carries
/// returns and prints, not final memory) but not to the per-thread SEQ
/// traces (the thread's memory footprint changes), and it is deliberately
/// NOT contextual — a context could re-share the location. The pipeline
/// therefore validates it with the whole-program PS^na check
/// (validatePsTransform), never with the SEQ procedures.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_PROMOTEPASS_H
#define PSEQ_OPT_PROMOTEPASS_H

#include "opt/Passes.h"
#include "support/LocSet.h"

namespace pseq {

namespace analysis {
struct RaceReport;
}

/// The locations runPromotePass would promote, given the lint report for
/// \p P. Exposed for the boundary tests (a PotentiallyRacy witness
/// location must never appear here).
LocSet promotableLocs(const Program &P, const analysis::RaceReport &Rep);

/// Runs register promotion on \p P. Stats: "locations" (promoted),
/// "rejected_shared" (non-atomic location in several threads'
/// footprints), "rejected_racy" (location named by the race witness),
/// "rejected_atomic" (owner accesses it with an atomic mode or RMW).
PassResult runPromotePass(const Program &P);

} // namespace pseq

#endif // PSEQ_OPT_PROMOTEPASS_H
