//===- opt/LlfAnalysis.cpp - Load-to-load forwarding (Fig 8a) -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/LlfAnalysis.h"

#include <cassert>

using namespace pseq;

namespace {

using State = std::vector<RegSet>; // indexed by location

/// Join is intersection: D1 ⊑ D2 ⇔ ∀x. D1(x) ⊇ D2(x) (Fig. 8a's order).
State joinStates(const State &A, const State &B) {
  assert(A.size() == B.size() && "state width mismatch");
  State Out(A.size());
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Out[I] = A[I] & B[I];
  return Out;
}

class LlfWalker {
  const Program &P;
  LlfAnalysisResult &Res;

  void evictReg(State &S, unsigned Reg) {
    if (Reg >= 64)
      return; // untracked register (see header): never in any set
    for (RegSet &RS : S)
      RS &= ~(RegSet(1) << Reg);
  }

  void clearAll(State &S) {
    for (RegSet &RS : S)
      RS = 0;
  }

public:
  LlfWalker(const Program &P, LlfAnalysisResult &Res) : P(P), Res(Res) {}

  State transfer(const Stmt *S, State In) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Print:
    case Stmt::Kind::Return:
    case Stmt::Kind::Abort:
      return In;
    case Stmt::Kind::Assign:
    case Stmt::Kind::Choose:
    case Stmt::Kind::Freeze:
      evictReg(In, S->reg());
      return In;
    case Stmt::Kind::Load: {
      if (S->readMode() == ReadMode::NA)
        Res.AtLoad[S] = In[S->loc()];
      if (S->readMode() == ReadMode::ACQ)
        clearAll(In);
      evictReg(In, S->reg());
      if (S->readMode() == ReadMode::NA && S->reg() < 64)
        In[S->loc()] |= RegSet(1) << S->reg();
      return In;
    }
    case Stmt::Kind::Store: {
      if (S->writeMode() == WriteMode::NA)
        In[S->loc()] = 0; // Fig 8a: T(x)(x^na := v, t) = ∅
      return In;
    }
    case Stmt::Kind::Cas:
    case Stmt::Kind::Fadd: {
      if (S->readMode() == ReadMode::ACQ)
        clearAll(In);
      evictReg(In, S->reg());
      return In;
    }
    case Stmt::Kind::Fence: {
      if (S->fenceMode() != FenceMode::REL)
        clearAll(In);
      return In;
    }
    case Stmt::Kind::Seq: {
      for (const Stmt *Kid : S->seq())
        In = transfer(Kid, std::move(In));
      return In;
    }
    case Stmt::Kind::If: {
      State Then = transfer(S->thenStmt(), In);
      State Else = transfer(S->elseStmt(), std::move(In));
      return joinStates(Then, Else);
    }
    case Stmt::Kind::While: {
      State Head = std::move(In);
      unsigned Iters = 0;
      while (true) {
        ++Iters;
        State Out = transfer(S->body(), Head);
        State Joined = joinStates(Head, Out);
        if (Joined == Head)
          break;
        Head = std::move(Joined);
      }
      if (Iters > Res.MaxLoopIterations)
        Res.MaxLoopIterations = Iters;
      return Head;
    }
    }
    assert(false && "unknown statement kind");
    return In;
  }
};

} // namespace

LlfAnalysisResult pseq::analyzeLlf(const Program &P, unsigned Tid) {
  LlfAnalysisResult Res;
  LlfWalker W(P, Res);
  State Init(P.numLocs(), 0);
  if (const Stmt *Body = P.thread(Tid).Body)
    W.transfer(Body, std::move(Init));
  return Res;
}
