//===- opt/DseAnalysis.h - Dead store elimination (Fig 8b) ------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backward DSE analysis of Appendix D (Fig. 8b): per location, a
/// token describing whether a later store overwrites it before the value
/// can escape — ◦ (overwritten, no acquire read nor read of x on the way),
/// • (an acquire read may intervene but no release-acquire pair), ⊤
/// (anything else). A non-atomic store may be deleted when the token
/// *after* it is ◦ or •. The • case is exactly Example 3.5: elimination
/// across a release write alone, sound only under the advanced refinement.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_DSEANALYSIS_H
#define PSEQ_OPT_DSEANALYSIS_H

#include "analysis/AbstractValue.h"

#include <unordered_map>

namespace pseq {

/// Result of the backward DSE analysis over one thread.
struct DseAnalysisResult {
  /// Token of the stored location just after each non-atomic store.
  std::unordered_map<const Stmt *, DseToken> AtStore;
  unsigned MaxLoopIterations = 0;
};

/// Runs the Fig. 8b analysis on thread \p Tid of \p P.
DseAnalysisResult analyzeDse(const Program &P, unsigned Tid);

} // namespace pseq

#endif // PSEQ_OPT_DSEANALYSIS_H
