//===- opt/Pipeline.h - The four-pass optimizer -----------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4 optimizer: SLF → LLF → DSE → LICM, each pass optionally
/// validated against the SEQ refinement checker (translation validation in
/// place of the paper's Coq certificate), optionally followed by the two
/// extension passes — register promotion and fence/mode weakening — whose
/// rewrites are invisible to closed-program outcomes but not to per-thread
/// SEQ traces, and which are therefore validated with the whole-program
/// PS^na check (validatePsTransform). The pipeline is the library's
/// top-level entry point for consumers.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_PIPELINE_H
#define PSEQ_OPT_PIPELINE_H

#include "opt/ConstPropPass.h"
#include "opt/LicmPass.h"
#include "opt/Validator.h"

#include <vector>

namespace pseq {

namespace guard {
class ResourceGuard;
}

namespace memo {
class MemoContext;
}

/// Pipeline configuration.
struct PipelineOptions {
  bool Validate = true; ///< run the SEQ checker after every pass
  /// ⊑w is needed for DSE across release writes; Simulation additionally
  /// closes loops exactly (use it when LICM fires on loop-heavy code).
  ValidationMethod Method = ValidationMethod::Advanced;
  SeqConfig Cfg; ///< checker bounds (universe auto-resolved)
  /// Run the extension constant-propagation pass before the paper's four
  /// (it feeds SLF constant stores and folds decided branches).
  bool EnableConstProp = false;
  /// Run the register-promotion pass (opt/PromotePass.h) after the
  /// paper's four. Validated whole-program in PS^na via PsCfg.
  bool EnablePromote = false;
  /// Run the fence/mode-weakening pass (opt/WeakenPass.h) last. Validated
  /// whole-program in PS^na via PsCfg.
  bool EnableWeaken = false;
  /// PS^na explorer bounds for the whole-program validation of the two
  /// extension passes. NumThreads/Telem/Guard/Memo below are forwarded
  /// into it the same way they are forwarded into Cfg, and both configs'
  /// ConfigSalt fields are re-derived from the active pass configuration
  /// (see runPipeline), so a shared MemoContext never replays a verdict
  /// recorded under a different pipeline setup.
  PsConfig PsCfg;
  /// Worker count forwarded to the validator through Cfg (overriding
  /// Cfg.NumThreads, like Telem below): 1 validates on the calling thread,
  /// 0 uses all hardware threads. Verdicts are identical either way.
  /// Defaults to the PSEQ_THREADS environment variable (unset = 1).
  unsigned NumThreads = exec::defaultNumThreads();
  /// Optional telemetry (borrowed; see obs/Telemetry.h). Also forwarded to
  /// the validator through Cfg, overriding Cfg.Telem when set.
  obs::Telemetry *Telem = nullptr;
  /// Optional resource guard (borrowed; see guard/Guard.h). Forwarded to
  /// the validator through Cfg, overriding Cfg.Guard when set: governed
  /// pipelines report bounded validation verdicts instead of running past
  /// their deadline / memory budget.
  guard::ResourceGuard *Guard = nullptr;
  /// Optional memoization context (borrowed; see memo/MemoContext.h).
  /// Forwarded to the validator through Cfg, overriding Cfg.Memo when set:
  /// the per-pass refinement checks then share one suffix cache, so the
  /// repeated initial-state sweeps after each pass reuse prior work.
  memo::MemoContext *Memo = nullptr;
  /// On a validation rejection, delta-debug the failing (input, output)
  /// pair down to a minimal still-rejected pair (PassReport::ShrunkSrc /
  /// ShrunkTgt). Rejections signal library bugs, so the cost only ever
  /// shows up when something is already wrong.
  bool ShrinkFailures = true;
};

/// One line of the pipeline report.
struct PassReport {
  std::string Name;
  unsigned Rewrites = 0;
  /// Pass-specific tallies (PassResult::Stats), also published as
  /// `opt.<pass>.<key>` counters when telemetry is attached.
  std::vector<std::pair<std::string, uint64_t>> Stats;
  /// Which decision procedure validated this pass (meaningful when
  /// Validated or Error is set): the SEQ method from
  /// PipelineOptions::Method for the thread-local passes, Psna for the
  /// whole-program extension passes.
  ValidationMethod Method = ValidationMethod::Advanced;
  bool Validated = false;       ///< checker ran and accepted
  bool ValidationBounded = false;
  TruncationCause ValidationCause = TruncationCause::None;
  std::string Error;            ///< non-empty iff validation rejected
  /// Minimal still-rejected pair from the shrinker (empty when validation
  /// accepted, shrinking is disabled, or nothing could be removed).
  std::string ShrunkSrc;
  std::string ShrunkTgt;
  double OptMs = 0.0;           ///< wall time of the pass itself
  double ValidateMs = 0.0;      ///< wall time of its validation (0 if skipped)
  unsigned long long ValidationStates = 0; ///< checker states examined
  /// Static race verdict of the pass's input program, recorded by the
  /// validator (ValidationResult::Lint). Unset when validation was skipped
  /// or linting is disabled.
  std::optional<analysis::RaceVerdict> Lint;
};

/// Pipeline output: the final program plus per-pass reports.
struct PipelineResult {
  std::unique_ptr<Program> Prog;
  std::vector<PassReport> Reports;
  bool AllValidated = true;
  unsigned TotalRewrites = 0;
  double TotalMs = 0.0; ///< wall time of the whole pipeline
};

/// Runs the full pipeline on \p P. When validation rejects a pass (which
/// indicates a bug in this library, never expected in production), the
/// pass's output is discarded and the pipeline continues from its input.
PipelineResult runPipeline(const Program &P,
                           const PipelineOptions &Opts = PipelineOptions());

/// Hash of the active pass configuration — the salt runPipeline mixes into
/// both validation configs' ConfigSalt so a shared MemoContext partitions
/// its caches per pipeline setup. Exposed so external caches keyed on
/// pipeline outcomes (the validation server's verdict cache) can partition
/// by exactly the same notion of "same configuration" the memo layer uses.
uint64_t pipelineConfigSalt(const PipelineOptions &Opts);

} // namespace pseq

#endif // PSEQ_OPT_PIPELINE_H
