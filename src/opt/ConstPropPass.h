//===- opt/ConstPropPass.h - Constant propagation (extension) ---*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic intraprocedural constant propagation + folding pass — not one
/// of the paper's four passes, but the infrastructure a real optimizer
/// would run between them (it feeds SLF more `x@na := k` stores and the
/// branch folder more decided conditions). Thread-local and memory-silent:
/// it rewrites only registers and pure expressions, so SEQ validation is
/// immediate. Expressions that may fault (division) and branches on
/// possibly-undef values are left untouched.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_CONSTPROPPASS_H
#define PSEQ_OPT_CONSTPROPPASS_H

#include "opt/Passes.h"

namespace pseq {

/// Runs constant propagation and folding on every thread of \p P.
PassResult runConstPropPass(const Program &P);

} // namespace pseq

#endif // PSEQ_OPT_CONSTPROPPASS_H
