//===- opt/LlfAnalysis.h - Load-to-load forwarding (Fig 8a) -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LLF analysis of Appendix D (Fig. 8a): per location, the set of
/// registers holding a value loaded from it since the last acquire. A
/// non-atomic load of x may be rewritten to a register copy when the set
/// is non-empty. Acquire operations clear every set (the environment may
/// have provided new values); writes to x clear x's set; reassigning a
/// register evicts it from every set.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_LLFANALYSIS_H
#define PSEQ_OPT_LLFANALYSIS_H

#include "analysis/AbstractValue.h"

#include <unordered_map>

namespace pseq {

/// Registers as a bitset. Only the first 64 registers of a thread are
/// tracked; later ones are never forwarded (a sound under-approximation —
/// the paper's programs use a handful of registers).
using RegSet = uint64_t;

/// Result of the LLF analysis over one thread.
struct LlfAnalysisResult {
  /// Register set of the loaded location just before each non-atomic load.
  std::unordered_map<const Stmt *, RegSet> AtLoad;
  unsigned MaxLoopIterations = 0;
};

/// Runs the Fig. 8a analysis on thread \p Tid of \p P.
LlfAnalysisResult analyzeLlf(const Program &P, unsigned Tid);

} // namespace pseq

#endif // PSEQ_OPT_LLFANALYSIS_H
