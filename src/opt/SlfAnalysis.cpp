//===- opt/SlfAnalysis.cpp - Store-to-load forwarding (Fig 3) -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/SlfAnalysis.h"

#include <cassert>

using namespace pseq;

namespace {

using State = std::vector<SlfToken>; // indexed by location

State joinStates(const State &A, const State &B) {
  assert(A.size() == B.size() && "state width mismatch");
  State Out(A.size());
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Out[I] = A[I].join(B[I]);
  return Out;
}

class SlfWalker {
  const Program &P;
  SlfAnalysisResult &Res;

  void invalidateReg(State &S, unsigned Reg) {
    for (SlfToken &T : S)
      T = T.invalidateReg(Reg);
  }

  /// Release effect: ◦(v) → •(v) for every location.
  void applyRelease(State &S) {
    for (SlfToken &T : S)
      if (T.kind() == SlfToken::Kind::Circ)
        T = SlfToken::bullet(T.val());
  }

  /// Acquire effect: •(v) → ⊤ for every location (◦ survives: no release
  /// happened since the write, so no release-acquire pair completed).
  void applyAcquire(State &S) {
    for (SlfToken &T : S)
      if (T.kind() == SlfToken::Kind::Bullet)
        T = SlfToken::top();
  }

public:
  SlfWalker(const Program &P, SlfAnalysisResult &Res) : P(P), Res(Res) {}

  State transfer(const Stmt *S, State In) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Print:
    case Stmt::Kind::Return:
    case Stmt::Kind::Abort:
      return In;
    case Stmt::Kind::Assign:
    case Stmt::Kind::Choose:
    case Stmt::Kind::Freeze:
      invalidateReg(In, S->reg());
      return In;
    case Stmt::Kind::Load: {
      if (S->readMode() == ReadMode::NA)
        Res.AtLoad[S] = In[S->loc()];
      if (S->readMode() == ReadMode::ACQ)
        applyAcquire(In);
      invalidateReg(In, S->reg());
      return In;
    }
    case Stmt::Kind::Store: {
      if (S->writeMode() == WriteMode::NA) {
        std::optional<AbsVal> V = AbsVal::ofExpr(S->expr());
        In[S->loc()] = V ? SlfToken::circ(*V) : SlfToken::top();
        return In;
      }
      if (S->writeMode() == WriteMode::REL)
        applyRelease(In);
      return In;
    }
    case Stmt::Kind::Cas:
    case Stmt::Kind::Fadd: {
      // Read part then write part.
      if (S->readMode() == ReadMode::ACQ)
        applyAcquire(In);
      if (S->writeMode() == WriteMode::REL)
        applyRelease(In);
      invalidateReg(In, S->reg());
      return In;
    }
    case Stmt::Kind::Fence: {
      // Combined fences complete a release-acquire pair by themselves.
      if (S->fenceMode() != FenceMode::ACQ)
        applyRelease(In);
      if (S->fenceMode() != FenceMode::REL)
        applyAcquire(In);
      return In;
    }
    case Stmt::Kind::Seq: {
      for (const Stmt *Kid : S->seq())
        In = transfer(Kid, std::move(In));
      return In;
    }
    case Stmt::Kind::If: {
      State Then = transfer(S->thenStmt(), In);
      State Else = transfer(S->elseStmt(), std::move(In));
      return joinStates(Then, Else);
    }
    case Stmt::Kind::While: {
      State Head = std::move(In);
      unsigned Iters = 0;
      while (true) {
        ++Iters;
        State Out = transfer(S->body(), Head);
        State Joined = joinStates(Head, Out);
        if (Joined == Head)
          break;
        Head = std::move(Joined);
      }
      if (Iters > Res.MaxLoopIterations)
        Res.MaxLoopIterations = Iters;
      // Loop may run zero times; the stable head is also the exit state.
      return Head;
    }
    }
    assert(false && "unknown statement kind");
    return In;
  }
};

} // namespace

SlfAnalysisResult pseq::analyzeSlf(const Program &P, unsigned Tid) {
  SlfAnalysisResult Res;
  SlfWalker W(P, Res);
  State Init(P.numLocs(), SlfToken::top());
  if (const Stmt *Body = P.thread(Tid).Body)
    W.transfer(Body, std::move(Init));
  return Res;
}
