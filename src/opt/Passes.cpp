//===- opt/Passes.cpp - The optimizer's rewrite passes --------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "opt/DseAnalysis.h"
#include "opt/LlfAnalysis.h"
#include "opt/SlfAnalysis.h"

#include <cassert>

using namespace pseq;

const Stmt *pseq::cloneWithHook(
    const Stmt *S, Program &Dst,
    const std::function<const Stmt *(const Stmt *, Program &)> &Hook) {
  if (!S)
    return nullptr;
  if (const Stmt *Replacement = Hook(S, Dst))
    return Replacement;
  switch (S->kind()) {
  case Stmt::Kind::Seq: {
    std::vector<const Stmt *> Kids;
    Kids.reserve(S->seq().size());
    for (const Stmt *Kid : S->seq())
      Kids.push_back(cloneWithHook(Kid, Dst, Hook));
    return Dst.stmtSeq(std::move(Kids));
  }
  case Stmt::Kind::If:
    return Dst.stmtIf(Dst.cloneExpr(S->expr()),
                      cloneWithHook(S->thenStmt(), Dst, Hook),
                      cloneWithHook(S->elseStmt(), Dst, Hook));
  case Stmt::Kind::While:
    return Dst.stmtWhile(Dst.cloneExpr(S->expr()),
                         cloneWithHook(S->body(), Dst, Hook));
  default:
    return Dst.cloneStmt(S);
  }
}

namespace {

/// Shared pass driver: for each thread, analyze then rewrite leaves.
template <typename AnalyzeFn, typename HookFn>
PassResult runRewritePass(const Program &P, AnalyzeFn Analyze,
                          HookFn MakeHook) {
  PassResult Result;
  Result.Prog = std::make_unique<Program>();
  Program &Dst = *Result.Prog;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L)
    Dst.declareLoc(P.locName(L), P.isAtomicLoc(L));
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    unsigned Tid = Dst.addThread();
    Dst.thread(Tid).Regs = P.thread(T).Regs;
    auto Analysis = Analyze(P, T);
    auto Hook = MakeHook(Analysis, Result.Rewrites);
    Dst.setThreadBody(Tid, cloneWithHook(P.thread(T).Body, Dst, Hook));
  }
  return Result;
}

} // namespace

PassResult pseq::runSlfPass(const Program &P) {
  return runRewritePass(
      P, [](const Program &Prog, unsigned Tid) { return analyzeSlf(Prog, Tid); },
      [](const SlfAnalysisResult &A, unsigned &Rewrites) {
        return [&A, &Rewrites](const Stmt *S,
                               Program &Dst) -> const Stmt * {
          if (S->kind() != Stmt::Kind::Load ||
              S->readMode() != ReadMode::NA)
            return nullptr;
          auto It = A.AtLoad.find(S);
          if (It == A.AtLoad.end() || It->second.isTop())
            return nullptr;
          ++Rewrites;
          return Dst.stmtAssign(S->reg(), It->second.val().materialize(Dst));
        };
      });
}

PassResult pseq::runLlfPass(const Program &P) {
  return runRewritePass(
      P, [](const Program &Prog, unsigned Tid) { return analyzeLlf(Prog, Tid); },
      [](const LlfAnalysisResult &A, unsigned &Rewrites) {
        return [&A, &Rewrites](const Stmt *S,
                               Program &Dst) -> const Stmt * {
          if (S->kind() != Stmt::Kind::Load ||
              S->readMode() != ReadMode::NA)
            return nullptr;
          auto It = A.AtLoad.find(S);
          if (It == A.AtLoad.end() || It->second == 0)
            return nullptr;
          unsigned Src = static_cast<unsigned>(__builtin_ctzll(It->second));
          if (Src == S->reg()) {
            // `a := x@na` with a already holding x: the load is redundant
            // but rewriting `a := a` is a no-op; prefer another register
            // if one is available.
            RegSet Others = It->second & ~(RegSet(1) << Src);
            if (Others == 0)
              return nullptr;
            Src = static_cast<unsigned>(__builtin_ctzll(Others));
          }
          ++Rewrites;
          return Dst.stmtAssign(S->reg(), Dst.exprReg(Src));
        };
      });
}

PassResult pseq::runDsePass(const Program &P) {
  return runRewritePass(
      P, [](const Program &Prog, unsigned Tid) { return analyzeDse(Prog, Tid); },
      [](const DseAnalysisResult &A, unsigned &Rewrites) {
        return [&A, &Rewrites](const Stmt *S,
                               Program &Dst) -> const Stmt * {
          if (S->kind() != Stmt::Kind::Store ||
              S->writeMode() != WriteMode::NA)
            return nullptr;
          auto It = A.AtStore.find(S);
          if (It == A.AtStore.end() || It->second == DseToken::Top)
            return nullptr;
          if (exprMayFault(S->expr()))
            return nullptr; // deleting the store would erase potential UB
          ++Rewrites;
          return Dst.stmtSkip();
        };
      });
}
