//===- opt/DseAnalysis.cpp - Dead store elimination (Fig 8b) --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/DseAnalysis.h"

#include <cassert>

using namespace pseq;

namespace {

using State = std::vector<DseToken>; // indexed by location

State joinStates(const State &A, const State &B) {
  assert(A.size() == B.size() && "state width mismatch");
  State Out(A.size());
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Out[I] = joinDse(A[I], B[I]);
  return Out;
}

class DseWalker {
  const Program &P;
  DseAnalysisResult &Res;

  /// Backward through an acquire read: ◦ → • for every location.
  void applyAcquire(State &S) {
    for (DseToken &T : S)
      if (T == DseToken::Circ)
        T = DseToken::Bullet;
  }

  /// Backward through a release write: • → ⊤ for every location (the
  /// release completes a release-acquire pair seen later... earlier in
  /// the backward direction).
  void applyRelease(State &S) {
    for (DseToken &T : S)
      if (T == DseToken::Bullet)
        T = DseToken::Top;
  }

public:
  DseWalker(const Program &P, DseAnalysisResult &Res) : P(P), Res(Res) {}

  /// Backward transfer: given the state *after* \p S, compute the state
  /// *before* it.
  State transferBack(const Stmt *S, State After) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Print:
    case Stmt::Kind::Assign:
    case Stmt::Kind::Choose:
    case Stmt::Kind::Freeze:
      return After;
    case Stmt::Kind::Return:
    case Stmt::Kind::Abort:
      // Nothing runs afterwards on this path: no store below can justify
      // elimination, so everything is ⊤ flowing backward into here.
      return State(After.size(), DseToken::Top);
    case Stmt::Kind::Load: {
      if (S->readMode() == ReadMode::NA)
        After[S->loc()] = DseToken::Top; // a read of x kills elimination
      if (S->readMode() == ReadMode::ACQ)
        applyAcquire(After);
      return After;
    }
    case Stmt::Kind::Store: {
      if (S->writeMode() == WriteMode::NA) {
        Res.AtStore[S] = After[S->loc()];
        After[S->loc()] = DseToken::Circ;
        return After;
      }
      if (S->writeMode() == WriteMode::REL)
        applyRelease(After);
      return After;
    }
    case Stmt::Kind::Cas:
    case Stmt::Kind::Fadd: {
      // Program order read;write — backward applies the write part first.
      if (S->writeMode() == WriteMode::REL)
        applyRelease(After);
      if (S->readMode() == ReadMode::ACQ)
        applyAcquire(After);
      return After;
    }
    case Stmt::Kind::Fence: {
      // Combined fences lower to `fence@rel; fence@acq` in program order
      // (Program.cpp), so the backward walk must undo the acquire part
      // first: ◦ →(acq) • →(rel) ⊤. Release-first would leave a ◦ token
      // at • — eliminable — across an acqrel/sc fence, but the fence's
      // release half publishes the pending store to any acquirer, so the
      // elimination is unsound (the atlas fence ladder pins this down).
      if (S->fenceMode() != FenceMode::REL)
        applyAcquire(After);
      if (S->fenceMode() != FenceMode::ACQ)
        applyRelease(After);
      return After;
    }
    case Stmt::Kind::Seq: {
      const std::vector<const Stmt *> &Kids = S->seq();
      for (auto It = Kids.rbegin(), E = Kids.rend(); It != E; ++It)
        After = transferBack(*It, std::move(After));
      return After;
    }
    case Stmt::Kind::If: {
      State Then = transferBack(S->thenStmt(), After);
      State Else = transferBack(S->elseStmt(), std::move(After));
      return joinStates(Then, Else);
    }
    case Stmt::Kind::While: {
      State Head = std::move(After);
      unsigned Iters = 0;
      while (true) {
        ++Iters;
        State Before = transferBack(S->body(), Head);
        State Joined = joinStates(Head, Before);
        if (Joined == Head)
          break;
        Head = std::move(Joined);
      }
      if (Iters > Res.MaxLoopIterations)
        Res.MaxLoopIterations = Iters;
      return Head;
    }
    }
    assert(false && "unknown statement kind");
    return After;
  }
};

} // namespace

DseAnalysisResult pseq::analyzeDse(const Program &P, unsigned Tid) {
  DseAnalysisResult Res;
  DseWalker W(P, Res);
  // At the end of the thread nothing overwrites anything: all ⊤.
  State Exit(P.numLocs(), DseToken::Top);
  if (const Stmt *Body = P.thread(Tid).Body)
    W.transferBack(Body, std::move(Exit));
  return Res;
}
