//===- opt/PromotePass.cpp - Register promotion (extension) ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/PromotePass.h"

#include "analysis/RaceLint.h"

#include <map>
#include <string>
#include <vector>

using namespace pseq;

namespace {

/// Syntactic per-location use flags for one thread. The lint footprints
/// prove ownership, but the purity scan is syntactic on purpose: a
/// statically-unreachable RMW would be missing from the lint's site list,
/// and promotion must refuse any location whose owner body mentions it
/// with an atomic mode (the rewrite below has no register form for RMWs).
struct LocUse {
  bool Accessed = false;
  bool Rmw = false;
  bool AtomicMode = false;
};

void scanStmt(const Stmt *S, std::vector<LocUse> &Use) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Load: {
    LocUse &U = Use[S->loc()];
    U.Accessed = true;
    U.AtomicMode |= S->readMode() != ReadMode::NA;
    break;
  }
  case Stmt::Kind::Store: {
    LocUse &U = Use[S->loc()];
    U.Accessed = true;
    U.AtomicMode |= S->writeMode() != WriteMode::NA;
    break;
  }
  case Stmt::Kind::Cas:
  case Stmt::Kind::Fadd: {
    LocUse &U = Use[S->loc()];
    U.Accessed = true;
    U.Rmw = true;
    break;
  }
  case Stmt::Kind::Seq:
    for (const Stmt *Kid : S->seq())
      scanStmt(Kid, Use);
    break;
  case Stmt::Kind::If:
    scanStmt(S->thenStmt(), Use);
    scanStmt(S->elseStmt(), Use);
    break;
  case Stmt::Kind::While:
    scanStmt(S->body(), Use);
    break;
  default:
    break; // expressions are pure; every other statement is memory-silent
  }
}

enum class LocClass {
  NotCandidate, ///< atomic-declared or never accessed
  Promote,
  RejectedRacy,   ///< named by the undischarged race witness
  RejectedShared, ///< in several threads' may-footprints
  RejectedAtomic, ///< owner mentions it with an atomic mode or an RMW
};

/// Classifies location \p L; \p Owner receives the owning thread for
/// Promote. The witness check runs first so a racy location reports as
/// racy, not merely shared.
LocClass classifyLoc(const Program &P, const analysis::RaceReport &Rep,
                     const std::vector<std::vector<LocUse>> &Use, unsigned L,
                     unsigned &Owner) {
  if (P.isAtomicLoc(L))
    return LocClass::NotCandidate;
  bool Touched = false;
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T)
    Touched |= Use[T][L].Accessed;
  if (!Touched)
    return LocClass::NotCandidate;
  if (Rep.Verdict == analysis::RaceVerdict::PotentiallyRacy && Rep.Witness &&
      Rep.Witness->Loc == L)
    return LocClass::RejectedRacy;
  unsigned Owners = 0;
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    const analysis::ThreadFootprint &F = Rep.Threads[T];
    if (F.MayRead.contains(L) || F.MayWrite.contains(L) ||
        Use[T][L].Accessed) {
      ++Owners;
      Owner = T;
    }
  }
  if (Owners != 1)
    return LocClass::RejectedShared;
  if (Use[Owner][L].Rmw || Use[Owner][L].AtomicMode)
    return LocClass::RejectedAtomic;
  return LocClass::Promote;
}

std::vector<std::vector<LocUse>> scanProgram(const Program &P) {
  std::vector<std::vector<LocUse>> Use(
      P.numThreads(), std::vector<LocUse>(P.numLocs()));
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T)
    scanStmt(P.thread(T).Body, Use[T]);
  return Use;
}

} // namespace

LocSet pseq::promotableLocs(const Program &P,
                            const analysis::RaceReport &Rep) {
  std::vector<std::vector<LocUse>> Use = scanProgram(P);
  LocSet Out;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L) {
    unsigned Owner = 0;
    if (classifyLoc(P, Rep, Use, L, Owner) == LocClass::Promote)
      Out.insert(L);
  }
  return Out;
}

PassResult pseq::runPromotePass(const Program &P) {
  analysis::RaceReport Rep = analysis::analyzeRaces(P);
  std::vector<std::vector<LocUse>> Use = scanProgram(P);

  // Location → owning thread, for the promoted set only.
  std::map<unsigned, unsigned> OwnerOf;
  uint64_t RejShared = 0, RejRacy = 0, RejAtomic = 0;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L) {
    unsigned Owner = 0;
    switch (classifyLoc(P, Rep, Use, L, Owner)) {
    case LocClass::NotCandidate:
      break;
    case LocClass::Promote:
      OwnerOf[L] = Owner;
      break;
    case LocClass::RejectedRacy:
      ++RejRacy;
      break;
    case LocClass::RejectedShared:
      ++RejShared;
      break;
    case LocClass::RejectedAtomic:
      ++RejAtomic;
      break;
    }
  }

  PassResult Result;
  Result.Prog = std::make_unique<Program>();
  Program &Dst = *Result.Prog;
  // The layout is preserved verbatim (sameLayout is a validator
  // precondition); a promoted location simply becomes unreferenced.
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L)
    Dst.declareLoc(P.locName(L), P.isAtomicLoc(L));

  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    unsigned Tid = Dst.addThread();
    SymbolTable &Regs = (Dst.thread(Tid).Regs = P.thread(T).Regs);

    // Fresh registers for this thread's promoted locations, named after
    // the location with a collision-proofed prefix.
    std::map<unsigned, unsigned> RegOf;
    for (const auto &[L, Owner] : OwnerOf) {
      if (Owner != T)
        continue;
      std::string Name = "p_" + P.locName(L);
      while (Regs.lookup(Name))
        Name += "_";
      RegOf[L] = Regs.intern(Name);
    }

    const Stmt *Body = cloneWithHook(
        P.thread(T).Body, Dst,
        [&](const Stmt *S, Program &D) -> const Stmt * {
          if (S->kind() == Stmt::Kind::Load) {
            auto It = RegOf.find(S->loc());
            if (It == RegOf.end())
              return nullptr;
            ++Result.Rewrites;
            return D.stmtAssign(S->reg(), D.exprReg(It->second));
          }
          if (S->kind() == Stmt::Kind::Store) {
            auto It = RegOf.find(S->loc());
            if (It == RegOf.end())
              return nullptr;
            ++Result.Rewrites;
            return D.stmtAssign(It->second, D.cloneExpr(S->expr()));
          }
          return nullptr;
        });

    if (!RegOf.empty()) {
      // Prologue: seed each promotion register with the location's initial
      // memory value (0 in PS^na), before any promoted access runs.
      std::vector<const Stmt *> Pro;
      for (const auto &[L, Reg] : RegOf) {
        (void)L;
        Pro.push_back(Dst.stmtAssign(Reg, Dst.exprConst(0)));
      }
      Pro.push_back(Body);
      Body = Dst.stmtSeq(std::move(Pro));
    }
    Dst.setThreadBody(Tid, Body);
  }

  if (!OwnerOf.empty())
    Result.Stats.push_back({"locations", OwnerOf.size()});
  if (RejShared)
    Result.Stats.push_back({"rejected_shared", RejShared});
  if (RejRacy)
    Result.Stats.push_back({"rejected_racy", RejRacy});
  if (RejAtomic)
    Result.Stats.push_back({"rejected_atomic", RejAtomic});
  return Result;
}
