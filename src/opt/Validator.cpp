//===- opt/Validator.cpp - Translation validation -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Validator.h"

#include "obs/Telemetry.h"
#include "seq/SimpleRefinement.h"

#include <cassert>
#include <chrono>
#include <string>

using namespace pseq;

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         bool UseAdvanced) {
  return validateTransform(Src, Tgt, std::move(Cfg),
                           UseAdvanced ? ValidationMethod::Advanced
                                       : ValidationMethod::Simple);
}

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         ValidationMethod Method) {
  assert(sameLayout(Src, Tgt) && "passes must preserve the memory layout");
  assert(Src.numThreads() == Tgt.numThreads() &&
         "passes must preserve the thread structure");

  obs::Telemetry *Telem = Cfg.Telem;
  obs::ScopedTimer Timer(Telem ? &Telem->Timers : nullptr, "validate");
  // ElapsedMs is part of the result (not just telemetry), so it is
  // measured unconditionally; the phase timer above only feeds the tree.
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();

  ValidationResult Out;
  Out.MethodUsed = Method;
  for (unsigned T = 0, E = Src.numThreads(); T != E; ++T) {
    bool Holds = false;
    bool Bounded = false;
    TruncationCause Cause = TruncationCause::None;
    std::string Cex;
    switch (Method) {
    case ValidationMethod::Simple: {
      RefinementResult R = checkSimpleRefinement(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = R.Bounded;
      Cause = R.Cause;
      Cex = R.Counterexample;
      Out.StatesExplored += R.InitialStates + R.SrcBehaviors + R.TgtBehaviors;
      break;
    }
    case ValidationMethod::Advanced: {
      RefinementResult R = checkAdvancedRefinement(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = R.Bounded;
      Cause = R.Cause;
      Cex = R.Counterexample;
      Out.StatesExplored += R.InitialStates + R.TgtBehaviors;
      break;
    }
    case ValidationMethod::Simulation: {
      SimulationResult R = checkSimulation(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = !R.Complete;
      if (Bounded)
        Cause = TruncationCause::StateBudget;
      Cex = R.Counterexample;
      Out.StatesExplored += R.ProductNodes;
      break;
    }
    }
    Out.Bounded |= Bounded;
    noteTruncation(Out.Cause, Cause);
    if (Holds)
      continue;
    Out.Ok = false;
    Out.Counterexample = "thread " + std::to_string(T) + ": " + Cex;
    break;
  }
  if (Out.Bounded) {
    if (!Out.Counterexample.empty())
      Out.Counterexample += " ";
    Out.Counterexample += std::string("[bounded: ") +
                          truncationCauseName(Out.Cause) + " truncation]";
  }
  Timer.stop();
  Out.ElapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  if (Telem) {
    obs::ScopedTally Tally(&Telem->Counters);
    ++Tally.slot("opt.validate.calls");
    if (!Out.Ok)
      ++Tally.slot("opt.validate.rejects");
    if (Out.Bounded)
      ++Tally.slot("opt.validate.bounded");
    Telem->Counters.add(std::string("opt.validate.method.") +
                        validationMethodName(Method));
    if (Telem->tracing())
      Telem->trace("opt.validate",
                   {{"ok", Out.Ok},
                    {"bounded", Out.Bounded},
                    {"method", validationMethodName(Method)},
                    {"cause", truncationCauseName(Out.Cause)},
                    {"states", Out.StatesExplored},
                    {"ms", Out.ElapsedMs}});
  }
  return Out;
}
