//===- opt/Validator.cpp - Translation validation -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Validator.h"

#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "obs/Telemetry.h"
#include "psna/Refinement.h"
#include "seq/SimpleRefinement.h"
#include "sym/SymEngine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <string>

using namespace pseq;

namespace {

/// What validating one program thread contributes to the verdict.
struct ThreadRecord {
  bool Ran = false; ///< false = skipped (guard tripped before this thread)
  bool Holds = false;
  bool Bounded = false;
  TruncationCause Cause = TruncationCause::None;
  std::string Cex;
  unsigned long long States = 0;
};

} // namespace

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         bool UseAdvanced) {
  return validateTransform(Src, Tgt, std::move(Cfg),
                           UseAdvanced ? ValidationMethod::Advanced
                                       : ValidationMethod::Simple);
}

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         ValidationMethod Method) {
  assert(sameLayout(Src, Tgt) && "passes must preserve the memory layout");
  assert(Src.numThreads() == Tgt.numThreads() &&
         "passes must preserve the thread structure");
  assert(Method != ValidationMethod::Psna &&
         "whole-program method: use validatePsTransform");

  obs::Telemetry *Telem = Cfg.Telem;
  obs::ScopedTimer Timer(Telem ? &Telem->Timers : nullptr, "validate");
  // ElapsedMs is part of the result (not just telemetry), so it is
  // measured unconditionally; the phase timer above only feeds the tree.
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();

  ValidationResult Out;
  Out.MethodUsed = Method;

  // Static race verdict for the source. A RaceFree verdict is the DRF-style
  // justification for the per-thread sequential fast path below: when no
  // na-race can fire, §6's adequacy needs only the SEQ refinements checked
  // here. The verdict never changes the Ok/Bounded outcome — it is recorded
  // evidence, cross-validated dynamically by the adequacy harness.
  if (Cfg.Lint)
    Out.Lint = analysis::analyzeRaces(Src, Telem).Verdict;

  const unsigned NumT = Src.numThreads();
  guard::ResourceGuard *Guard = Cfg.Guard;
  auto checkThread = [&](unsigned T, const SeqConfig &UseCfg,
                         ThreadRecord &Rec) {
    Rec.Ran = true;
    switch (Method) {
    case ValidationMethod::Simple: {
      RefinementResult R = checkSimpleRefinement(Src, T, Tgt, T, UseCfg);
      Rec.Holds = R.Holds;
      Rec.Bounded = R.Bounded;
      Rec.Cause = R.Cause;
      Rec.Cex = R.Counterexample;
      Rec.States = R.InitialStates + R.SrcBehaviors + R.TgtBehaviors;
      break;
    }
    case ValidationMethod::Advanced: {
      RefinementResult R = checkAdvancedRefinement(Src, T, Tgt, T, UseCfg);
      Rec.Holds = R.Holds;
      Rec.Bounded = R.Bounded;
      Rec.Cause = R.Cause;
      Rec.Cex = R.Counterexample;
      Rec.States = R.InitialStates + R.TgtBehaviors;
      break;
    }
    case ValidationMethod::Simulation: {
      SimulationResult R = checkSimulation(Src, T, Tgt, T, UseCfg);
      Rec.Holds = R.Holds;
      Rec.Bounded = !R.Complete;
      if (Rec.Bounded)
        Rec.Cause = R.Cause != TruncationCause::None
                        ? R.Cause
                        : TruncationCause::StateBudget;
      Rec.Cex = R.Counterexample;
      Rec.States = R.ProductNodes;
      break;
    }
    case ValidationMethod::Symbolic: {
      sym::SymResult R = sym::checkSymRefinement(Src, T, Tgt, T, UseCfg);
      switch (R.Verdict) {
      case sym::SymVerdict::Sound:
        Rec.Holds = true;
        break;
      case sym::SymVerdict::Unsound:
        // Only reported with an enumerative-lane counterexample attached
        // (SymOptions::ConfirmUnsound, on by default here).
        Rec.Holds = false;
        Rec.Cex = R.Witness;
        break;
      case sym::SymVerdict::Inconclusive:
        // No verdict, never a spurious failure. Cause stays None for pure
        // imprecision (no budget was hit; the abstraction just could not
        // close), which the bounded report prints as "none".
        Rec.Holds = true;
        Rec.Bounded = true;
        Rec.Cause = R.Cause;
        Rec.Cex = "symbolic lane inconclusive: " + R.Witness;
        break;
      }
      Rec.States = R.Nodes + R.ConfirmStates;
      break;
    }
    case ValidationMethod::Psna:
      break; // asserted away above; unreachable
    }
  };

  // (pass, thread) checks are independent; with several program threads and
  // a multi-threaded config they fan out across the pool against per-worker
  // configs (private telemetry arenas, merged after the join). Records fold
  // in thread order through the first failure, so the verdict and
  // counterexample match the sequential loop for every worker count.
  std::vector<ThreadRecord> Records(NumT);
  unsigned N = std::min(exec::resolveThreads(Cfg.NumThreads), NumT);
  if (N > 1 && !exec::ThreadPool::insideWorker()) {
    std::vector<std::unique_ptr<obs::Telemetry>> WTelems;
    std::vector<SeqConfig> WCfgs(N, Cfg);
    if (Telem)
      for (unsigned W = 0; W != N; ++W) {
        WTelems.push_back(std::make_unique<obs::Telemetry>());
        WCfgs[W].Telem = WTelems.back().get();
      }
    exec::parallelFor(
        N, NumT,
        [&](size_t T, unsigned W) {
          checkThread(static_cast<unsigned>(T), WCfgs[W], Records[T]);
        },
        Guard ? &Guard->stopFlag() : nullptr);
    if (Telem)
      for (const std::unique_ptr<obs::Telemetry> &WT : WTelems)
        Telem->mergeCounters(WT->Counters);
  } else {
    for (unsigned T = 0; T != NumT; ++T) {
      if (Guard && Guard->checkpoint() != TruncationCause::None)
        break; // remaining threads fold as bounded-skipped below
      checkThread(T, Cfg, Records[T]);
      if (!Records[T].Holds)
        break;
    }
  }

  for (unsigned T = 0; T != NumT; ++T) {
    ThreadRecord &Rec = Records[T];
    if (!Rec.Ran) {
      // Skipped by a guard trip (or sequenced after a failure): the check
      // ran out of resources before reaching this thread, so the verdict
      // is bounded — never "checked and fine", never a spurious failure.
      if (Guard && Guard->stopped()) {
        Out.Bounded = true;
        noteTruncation(Out.Cause, Guard->cause());
      }
      continue;
    }
    Out.StatesExplored += Rec.States;
    Out.Bounded |= Rec.Bounded;
    noteTruncation(Out.Cause, Rec.Cause);
    if (Rec.Holds)
      continue;
    Out.Ok = false;
    Out.Counterexample = "thread " + std::to_string(T) + ": " + Rec.Cex;
    break;
  }
  if (Guard && Guard->stopped()) {
    Out.Bounded = true;
    noteTruncation(Out.Cause, Guard->cause());
  }
  if (Out.Bounded) {
    if (!Out.Counterexample.empty())
      Out.Counterexample += " ";
    Out.Counterexample += std::string("[bounded: ") +
                          truncationCauseName(Out.Cause) + " truncation]";
  }
  Timer.stop();
  Out.ElapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  if (Telem) {
    obs::ScopedTally Tally(&Telem->Counters);
    ++Tally.slot("opt.validate.calls");
    if (!Out.Ok)
      ++Tally.slot("opt.validate.rejects");
    if (Out.Bounded)
      ++Tally.slot("opt.validate.bounded");
    Telem->Counters.add(std::string("opt.validate.method.") +
                        validationMethodName(Method));
    if (Telem->tracing())
      Telem->trace("opt.validate",
                   {{"ok", Out.Ok},
                    {"bounded", Out.Bounded},
                    {"method", validationMethodName(Method)},
                    {"cause", truncationCauseName(Out.Cause)},
                    {"lint", Out.Lint ? analysis::raceVerdictName(*Out.Lint)
                                      : "off"},
                    {"states", Out.StatesExplored},
                    {"ms", Out.ElapsedMs}});
  }
  return Out;
}

ValidationResult pseq::validatePsTransform(const Program &Src,
                                           const Program &Tgt, PsConfig Cfg) {
  assert(sameLayout(Src, Tgt) && "passes must preserve the memory layout");
  assert(Src.numThreads() == Tgt.numThreads() &&
         "passes must preserve the thread structure");

  obs::Telemetry *Telem = Cfg.Telem;
  obs::ScopedTimer Timer(Telem ? &Telem->Timers : nullptr, "validate");
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();

  ValidationResult Out;
  Out.MethodUsed = ValidationMethod::Psna;
  // The source verdict is recorded for the same reason as in the SEQ path:
  // the promotion/weakening passes justify their rewrites from it, so the
  // report should show the evidence they acted on.
  if (Cfg.Lint)
    Out.Lint = analysis::analyzeRaces(Src, Telem).Verdict;

  PsRefinementResult R = checkPsRefinement(Src, Tgt, Cfg);
  Out.Ok = R.Holds;
  Out.Bounded = R.Bounded;
  Out.Cause = R.Cause;
  Out.Counterexample = R.Counterexample;
  Out.StatesExplored =
      static_cast<unsigned long long>(R.SrcStates) + R.TgtStates;
  if (Out.Bounded) {
    if (!Out.Counterexample.empty())
      Out.Counterexample += " ";
    Out.Counterexample += std::string("[bounded: ") +
                          truncationCauseName(Out.Cause) + " truncation]";
  }
  Timer.stop();
  Out.ElapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  if (Telem) {
    obs::ScopedTally Tally(&Telem->Counters);
    ++Tally.slot("opt.validate.calls");
    if (!Out.Ok)
      ++Tally.slot("opt.validate.rejects");
    if (Out.Bounded)
      ++Tally.slot("opt.validate.bounded");
    Telem->Counters.add(std::string("opt.validate.method.") +
                        validationMethodName(ValidationMethod::Psna));
    if (Telem->tracing())
      Telem->trace("opt.validate",
                   {{"ok", Out.Ok},
                    {"bounded", Out.Bounded},
                    {"method", validationMethodName(ValidationMethod::Psna)},
                    {"cause", truncationCauseName(Out.Cause)},
                    {"lint", Out.Lint ? analysis::raceVerdictName(*Out.Lint)
                                      : "off"},
                    {"states", Out.StatesExplored},
                    {"ms", Out.ElapsedMs}});
  }
  return Out;
}
