//===- opt/Validator.cpp - Translation validation -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Validator.h"

#include "seq/SimpleRefinement.h"

#include <cassert>

using namespace pseq;

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         bool UseAdvanced) {
  return validateTransform(Src, Tgt, std::move(Cfg),
                           UseAdvanced ? ValidationMethod::Advanced
                                       : ValidationMethod::Simple);
}

ValidationResult pseq::validateTransform(const Program &Src,
                                         const Program &Tgt, SeqConfig Cfg,
                                         ValidationMethod Method) {
  assert(sameLayout(Src, Tgt) && "passes must preserve the memory layout");
  assert(Src.numThreads() == Tgt.numThreads() &&
         "passes must preserve the thread structure");

  ValidationResult Out;
  for (unsigned T = 0, E = Src.numThreads(); T != E; ++T) {
    bool Holds = false;
    bool Bounded = false;
    std::string Cex;
    switch (Method) {
    case ValidationMethod::Simple: {
      RefinementResult R = checkSimpleRefinement(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = R.Bounded;
      Cex = R.Counterexample;
      break;
    }
    case ValidationMethod::Advanced: {
      RefinementResult R = checkAdvancedRefinement(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = R.Bounded;
      Cex = R.Counterexample;
      break;
    }
    case ValidationMethod::Simulation: {
      SimulationResult R = checkSimulation(Src, T, Tgt, T, Cfg);
      Holds = R.Holds;
      Bounded = !R.Complete;
      Cex = R.Counterexample;
      break;
    }
    }
    Out.Bounded |= Bounded;
    if (Holds)
      continue;
    Out.Ok = false;
    Out.Counterexample = "thread " + std::to_string(T) + ": " + Cex;
    return Out;
  }
  return Out;
}
