//===- opt/Pipeline.cpp - The four-pass optimizer -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "guard/Guard.h"
#include "guard/Shrink.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "obs/Telemetry.h"

using namespace pseq;

namespace {

using PassFn = PassResult (*)(const Program &);

/// Delta-debugs a rejected (input, output) pair down to a minimal pair the
/// validator still rejects. Candidates that fail to parse, change the
/// memory layout, or change the thread structure are rejected by the
/// predicate, so the shrinker never feeds the validator an ill-formed pair.
void shrinkRejectedPair(const Program &Src, const Program &Tgt,
                        const SeqConfig &Cfg, ValidationMethod Method,
                        guard::ResourceGuard *Guard, PassReport &Report) {
  guard::ShrinkPredicate StillFails = [&](const std::string &S,
                                          const std::string &T) {
    ParseResult PS = parseProgram(S);
    ParseResult PT = parseProgram(T);
    if (!PS.ok() || !PT.ok())
      return false;
    if (!sameLayout(*PS.Prog, *PT.Prog) ||
        PS.Prog->numThreads() != PT.Prog->numThreads())
      return false;
    return !validateTransform(*PS.Prog, *PT.Prog, Cfg, Method).Ok;
  };
  guard::ShrinkOptions SOpts;
  SOpts.Guard = Guard;
  guard::ShrinkResult SR =
      guard::shrinkPair(printProgram(Src), printProgram(Tgt), StillFails,
                        SOpts);
  Report.ShrunkSrc = std::move(SR.Src);
  Report.ShrunkTgt = std::move(SR.Tgt);
}

} // namespace

PipelineResult pseq::runPipeline(const Program &P,
                                 const PipelineOptions &Opts) {
  PipelineResult Out;
  Out.Prog = cloneProgram(P);

  obs::Telemetry *Telem = Opts.Telem ? Opts.Telem : Opts.Cfg.Telem;
  guard::ResourceGuard *Guard = Opts.Guard ? Opts.Guard : Opts.Cfg.Guard;
  SeqConfig ValidateCfg = Opts.Cfg;
  ValidateCfg.Telem = Telem;
  ValidateCfg.NumThreads = Opts.NumThreads;
  ValidateCfg.Guard = Guard;
  ValidateCfg.Memo = Opts.Memo ? Opts.Memo : Opts.Cfg.Memo;
  obs::TimerTree *Timers = Telem ? &Telem->Timers : nullptr;
  obs::ScopedTimer PipeTimer(Timers, "pipeline");
  obs::SpanRecorder *Spans = Telem ? Telem->Spans : nullptr;
  obs::ScopedSpan PipeSpan(Spans, "opt.pipeline");

  std::vector<std::pair<const char *, PassFn>> Passes;
  if (Opts.EnableConstProp)
    Passes.push_back({"constprop", runConstPropPass});
  Passes.insert(Passes.end(), {{"slf", runSlfPass},
                               {"llf", runLlfPass},
                               {"dse", runDsePass},
                               {"licm", runLicmPass}});

  for (const auto &[Name, Pass] : Passes) {
    PassReport Report;
    Report.Name = Name;
    // Phase nesting: pipeline / <pass> / {opt, validate}.
    obs::ScopedTimer PassTimer(Timers, Name);
    obs::ScopedSpan PassSpan(Spans, Name);
    PassResult PR = [&] {
      obs::ScopedTimer OptTimer(Timers, "opt");
      obs::ScopedSpan OptSpan(Spans, "opt.rewrite");
      PassResult R = Pass(*Out.Prog);
      Report.OptMs = OptTimer.stop();
      return R;
    }();
    Report.Rewrites = PR.Rewrites;
    if (Telem) {
      Telem->Counters.recordHist("opt.pass.rewrites", PR.Rewrites);
      if (PR.Rewrites)
        Telem->Counters.add(std::string("opt.pass.") + Name + ".rewrites",
                            PR.Rewrites);
    }

    if (PR.Rewrites == 0) {
      // Nothing changed: skip validation, keep the (equivalent) output.
      Out.Prog = std::move(PR.Prog);
      Out.Reports.push_back(std::move(Report));
      continue;
    }

    if (Opts.Validate) {
      ValidationResult V = [&] {
        obs::ScopedSpan ValidateSpan(Spans, "opt.validate");
        return validateTransform(*Out.Prog, *PR.Prog, ValidateCfg,
                                 Opts.Method);
      }();
      Report.Validated = V.Ok;
      Report.ValidationBounded = V.Bounded;
      Report.ValidationCause = V.Cause;
      Report.ValidateMs = V.ElapsedMs;
      Report.ValidationStates = V.StatesExplored;
      Report.Lint = V.Lint;
      if (Telem && Telem->tracing())
        Telem->trace("opt.pass", {{"pass", Name},
                                  {"rewrites", uint64_t(PR.Rewrites)},
                                  {"validated", V.Ok},
                                  {"bounded", V.Bounded},
                                  {"opt_ms", Report.OptMs},
                                  {"validate_ms", V.ElapsedMs}});
      if (!V.Ok) {
        Report.Error = V.Counterexample;
        Out.AllValidated = false;
        if (Opts.ShrinkFailures) {
          obs::ScopedTimer ShrinkTimer(Timers, "shrink");
          obs::ScopedSpan ShrinkSpan(Spans, "opt.shrink");
          shrinkRejectedPair(*Out.Prog, *PR.Prog, ValidateCfg, Opts.Method,
                             Guard, Report);
        }
        Out.Reports.push_back(std::move(Report));
        continue; // discard this pass's output
      }
    }

    Out.TotalRewrites += PR.Rewrites;
    Out.Prog = std::move(PR.Prog);
    Out.Reports.push_back(std::move(Report));
  }
  Out.TotalMs = PipeTimer.stop();
  return Out;
}
