//===- opt/Pipeline.cpp - The four-pass optimizer -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

using namespace pseq;

namespace {

using PassFn = PassResult (*)(const Program &);

} // namespace

PipelineResult pseq::runPipeline(const Program &P,
                                 const PipelineOptions &Opts) {
  PipelineResult Out;
  Out.Prog = cloneProgram(P);

  std::vector<std::pair<const char *, PassFn>> Passes;
  if (Opts.EnableConstProp)
    Passes.push_back({"constprop", runConstPropPass});
  Passes.insert(Passes.end(), {{"slf", runSlfPass},
                               {"llf", runLlfPass},
                               {"dse", runDsePass},
                               {"licm", runLicmPass}});

  for (const auto &[Name, Pass] : Passes) {
    PassReport Report;
    Report.Name = Name;
    PassResult PR = Pass(*Out.Prog);
    Report.Rewrites = PR.Rewrites;

    if (PR.Rewrites == 0) {
      // Nothing changed: skip validation, keep the (equivalent) output.
      Out.Prog = std::move(PR.Prog);
      Out.Reports.push_back(std::move(Report));
      continue;
    }

    if (Opts.Validate) {
      ValidationResult V =
          validateTransform(*Out.Prog, *PR.Prog, Opts.Cfg, Opts.Method);
      Report.Validated = V.Ok;
      Report.ValidationBounded = V.Bounded;
      if (!V.Ok) {
        Report.Error = V.Counterexample;
        Out.AllValidated = false;
        Out.Reports.push_back(std::move(Report));
        continue; // discard this pass's output
      }
    }

    Out.TotalRewrites += PR.Rewrites;
    Out.Prog = std::move(PR.Prog);
    Out.Reports.push_back(std::move(Report));
  }
  return Out;
}
