//===- opt/Pipeline.cpp - The four-pass optimizer -------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "guard/Guard.h"
#include "guard/Shrink.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "memo/Fingerprint.h"
#include "obs/Telemetry.h"
#include "opt/PromotePass.h"
#include "opt/WeakenPass.h"

#include <functional>

using namespace pseq;

namespace {

using PassFn = PassResult (*)(const Program &);

/// One pipeline stage. WholeProgram selects the PS^na outcome-inclusion
/// validator (promotion and weakening change per-thread label traces, so
/// the SEQ procedures reject them by construction).
struct PassDesc {
  const char *Name;
  PassFn Fn;
  bool WholeProgram;
};

/// Still-rejected predicate over printed program pairs.
using RevalidateFn =
    std::function<bool(const Program &, const Program &)>;

/// Delta-debugs a rejected (input, output) pair down to a minimal pair the
/// validator still rejects. Candidates that fail to parse, change the
/// memory layout, or change the thread structure are rejected by the
/// predicate, so the shrinker never feeds the validator an ill-formed pair.
void shrinkRejectedPair(const Program &Src, const Program &Tgt,
                        const RevalidateFn &StillRejects,
                        guard::ResourceGuard *Guard, PassReport &Report) {
  guard::ShrinkPredicate StillFails = [&](const std::string &S,
                                          const std::string &T) {
    ParseResult PS = parseProgram(S);
    ParseResult PT = parseProgram(T);
    if (!PS.ok() || !PT.ok())
      return false;
    if (!sameLayout(*PS.Prog, *PT.Prog) ||
        PS.Prog->numThreads() != PT.Prog->numThreads())
      return false;
    return StillRejects(*PS.Prog, *PT.Prog);
  };
  guard::ShrinkOptions SOpts;
  SOpts.Guard = Guard;
  guard::ShrinkResult SR =
      guard::shrinkPair(printProgram(Src), printProgram(Tgt), StillFails,
                        SOpts);
  Report.ShrunkSrc = std::move(SR.Src);
  Report.ShrunkTgt = std::move(SR.Tgt);
}

} // namespace

// Mixed into both validation configs' ConfigSalt by runPipeline: a
// MemoContext shared across pipeline setups (or with direct checker runs)
// then partitions its caches per setup, so a sweep that turns a pass on
// can never be answered from entries recorded with it off.
uint64_t pseq::pipelineConfigSalt(const PipelineOptions &Opts) {
  memo::Fp128 F = memo::fpSeed(0x70736571'70697065ULL); // "pseq pipe"
  memo::fpMix(F, Opts.Cfg.ConfigSalt);
  memo::fpMix(F, Opts.PsCfg.ConfigSalt);
  uint64_t Flags = (Opts.Validate ? 1u : 0u) |
                   (Opts.EnableConstProp ? 2u : 0u) |
                   (Opts.EnablePromote ? 4u : 0u) |
                   (Opts.EnableWeaken ? 8u : 0u);
  memo::fpMix(F, Flags);
  memo::fpMix(F, static_cast<uint64_t>(Opts.Method));
  return F.Lo;
}

PipelineResult pseq::runPipeline(const Program &P,
                                 const PipelineOptions &Opts) {
  PipelineResult Out;
  Out.Prog = cloneProgram(P);

  obs::Telemetry *Telem = Opts.Telem ? Opts.Telem : Opts.Cfg.Telem;
  guard::ResourceGuard *Guard = Opts.Guard ? Opts.Guard : Opts.Cfg.Guard;
  memo::MemoContext *Memo = Opts.Memo ? Opts.Memo : Opts.Cfg.Memo;
  const uint64_t Salt = pipelineConfigSalt(Opts);
  SeqConfig ValidateCfg = Opts.Cfg;
  ValidateCfg.Telem = Telem;
  ValidateCfg.NumThreads = Opts.NumThreads;
  ValidateCfg.Guard = Guard;
  ValidateCfg.Memo = Memo;
  ValidateCfg.ConfigSalt = Salt;
  PsConfig PsValidateCfg = Opts.PsCfg;
  PsValidateCfg.Telem = Telem;
  PsValidateCfg.NumThreads = Opts.NumThreads;
  PsValidateCfg.Guard = Guard;
  PsValidateCfg.Memo = Memo;
  PsValidateCfg.ConfigSalt = Salt;
  obs::TimerTree *Timers = Telem ? &Telem->Timers : nullptr;
  obs::ScopedTimer PipeTimer(Timers, "pipeline");
  obs::SpanRecorder *Spans = Telem ? Telem->Spans : nullptr;
  obs::ScopedSpan PipeSpan(Spans, "opt.pipeline");

  std::vector<PassDesc> Passes;
  if (Opts.EnableConstProp)
    Passes.push_back({"constprop", runConstPropPass, false});
  Passes.insert(Passes.end(), {{"slf", runSlfPass, false},
                               {"llf", runLlfPass, false},
                               {"dse", runDsePass, false},
                               {"licm", runLicmPass, false}});
  if (Opts.EnablePromote)
    Passes.push_back({"promote", runPromotePass, true});
  if (Opts.EnableWeaken)
    Passes.push_back({"weaken", runWeakenPass, true});

  for (const PassDesc &Desc : Passes) {
    const char *Name = Desc.Name;
    PassReport Report;
    Report.Name = Name;
    Report.Method =
        Desc.WholeProgram ? ValidationMethod::Psna : Opts.Method;
    // Phase nesting: pipeline / <pass> / {opt, validate}.
    obs::ScopedTimer PassTimer(Timers, Name);
    obs::ScopedSpan PassSpan(Spans, Name);
    PassResult PR = [&] {
      obs::ScopedTimer OptTimer(Timers, "opt");
      obs::ScopedSpan OptSpan(Spans, "opt.rewrite");
      PassResult R = Desc.Fn(*Out.Prog);
      Report.OptMs = OptTimer.stop();
      return R;
    }();
    Report.Rewrites = PR.Rewrites;
    Report.Stats = PR.Stats;
    if (Telem) {
      Telem->Counters.recordHist("opt.pass.rewrites", PR.Rewrites);
      if (PR.Rewrites)
        Telem->Counters.add(std::string("opt.pass.") + Name + ".rewrites",
                            PR.Rewrites);
      // Pass-specific tallies fire even on zero-rewrite runs (a promotion
      // pass that rejected every candidate still explains itself).
      for (const auto &[Key, V] : PR.Stats)
        if (V)
          Telem->Counters.add(std::string("opt.") + Name + "." + Key, V);
    }

    if (PR.Rewrites == 0) {
      // Nothing changed: skip validation, keep the (equivalent) output.
      Out.Prog = std::move(PR.Prog);
      Out.Reports.push_back(std::move(Report));
      continue;
    }

    if (Opts.Validate) {
      ValidationResult V = [&] {
        obs::ScopedSpan ValidateSpan(Spans, "opt.validate");
        return Desc.WholeProgram
                   ? validatePsTransform(*Out.Prog, *PR.Prog, PsValidateCfg)
                   : validateTransform(*Out.Prog, *PR.Prog, ValidateCfg,
                                       Opts.Method);
      }();
      Report.Validated = V.Ok;
      Report.ValidationBounded = V.Bounded;
      Report.ValidationCause = V.Cause;
      Report.ValidateMs = V.ElapsedMs;
      Report.ValidationStates = V.StatesExplored;
      Report.Lint = V.Lint;
      if (Telem && Telem->tracing())
        Telem->trace("opt.pass", {{"pass", Name},
                                  {"rewrites", uint64_t(PR.Rewrites)},
                                  {"validated", V.Ok},
                                  {"bounded", V.Bounded},
                                  {"opt_ms", Report.OptMs},
                                  {"validate_ms", V.ElapsedMs}});
      if (!V.Ok) {
        Report.Error = V.Counterexample;
        Out.AllValidated = false;
        if (Opts.ShrinkFailures) {
          obs::ScopedTimer ShrinkTimer(Timers, "shrink");
          obs::ScopedSpan ShrinkSpan(Spans, "opt.shrink");
          RevalidateFn StillRejects = [&](const Program &S,
                                          const Program &T) {
            return Desc.WholeProgram
                       ? !validatePsTransform(S, T, PsValidateCfg).Ok
                       : !validateTransform(S, T, ValidateCfg, Opts.Method)
                              .Ok;
          };
          shrinkRejectedPair(*Out.Prog, *PR.Prog, StillRejects, Guard,
                             Report);
        }
        Out.Reports.push_back(std::move(Report));
        continue; // discard this pass's output
      }
    }

    Out.TotalRewrites += PR.Rewrites;
    Out.Prog = std::move(PR.Prog);
    Out.Reports.push_back(std::move(Report));
  }
  Out.TotalMs = PipeTimer.stop();
  return Out;
}
