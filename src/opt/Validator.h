//===- opt/Validator.h - Translation validation -----------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ stand-in for the paper's Coq certificate: every optimizer run
/// is checked against the SEQ refinement decision procedures — per thread,
/// since the passes are thread-local. By Thm 6.2 a validated run is a
/// contextual refinement in PS^na. (The paper proves each pass correct
/// once and for all; we verify each run, Alive2-style — the substitution
/// DESIGN.md documents for the missing proof assistant.)
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_VALIDATOR_H
#define PSEQ_OPT_VALIDATOR_H

#include "seq/AdvancedRefinement.h"
#include "seq/Simulation.h"

namespace pseq {

/// Which decision procedure certifies a pass.
enum class ValidationMethod {
  Simple,     ///< trace-based ⊑ (Def 2.4)
  Advanced,   ///< trace-based ⊑w (Def 3.3) — the default
  Simulation, ///< Fig. 6 coinductive simulation — exact on loops
};

/// Outcome of validating one transformation.
struct ValidationResult {
  bool Ok = true;
  bool Bounded = false;
  std::string Counterexample; ///< includes the offending thread index
};

/// Checks σ_tgt ⊑w σ_src (or the chosen weaker/stronger notion) for every
/// thread of the transformed program \p Tgt against \p Src.
ValidationResult validateTransform(const Program &Src, const Program &Tgt,
                                   SeqConfig Cfg = SeqConfig(),
                                   bool UseAdvanced = true);

/// Method-selecting overload.
ValidationResult validateTransform(const Program &Src, const Program &Tgt,
                                   SeqConfig Cfg, ValidationMethod Method);

} // namespace pseq

#endif // PSEQ_OPT_VALIDATOR_H
