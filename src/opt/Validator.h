//===- opt/Validator.h - Translation validation -----------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ stand-in for the paper's Coq certificate: every optimizer run
/// is checked against the SEQ refinement decision procedures — per thread,
/// since the passes are thread-local. By Thm 6.2 a validated run is a
/// contextual refinement in PS^na. (The paper proves each pass correct
/// once and for all; we verify each run, Alive2-style — the substitution
/// DESIGN.md documents for the missing proof assistant.)
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_VALIDATOR_H
#define PSEQ_OPT_VALIDATOR_H

#include "analysis/RaceLint.h"
#include "psna/Machine.h"
#include "seq/AdvancedRefinement.h"
#include "seq/Simulation.h"

#include <optional>

namespace pseq {

/// Which decision procedure certifies a pass.
enum class ValidationMethod {
  Simple,     ///< trace-based ⊑ (Def 2.4)
  Advanced,   ///< trace-based ⊑w (Def 3.3) — the default
  Simulation, ///< Fig. 6 coinductive simulation — exact on loops
  /// Symbolic ⊑w via path-merging abstract interpretation (src/sym):
  /// decides spin-loop threads the enumerative procedures truncate on.
  /// Sound verdicts are exhaustive; negatives are confirmed by the
  /// enumerative lane before being reported, and an unconfirmable
  /// negative surfaces as Ok-but-bounded (inconclusive), never as a
  /// spurious rejection.
  Symbolic,
  /// Whole-program Def 5.3 outcome inclusion in PS^na, for the passes the
  /// per-thread SEQ procedures cannot certify: register promotion changes
  /// the silent/observable split of a thread (stores vanish from memory)
  /// and fence weakening changes the label sequence, so ⊑/⊑w reject them
  /// by construction even when every closed-program outcome is preserved.
  /// Only validatePsTransform uses this method; validateTransform asserts
  /// it away.
  Psna,
};

/// Lower-case label for reports and trace events.
constexpr const char *validationMethodName(ValidationMethod M) {
  switch (M) {
  case ValidationMethod::Simple:
    return "simple";
  case ValidationMethod::Advanced:
    return "advanced";
  case ValidationMethod::Simulation:
    return "simulation";
  case ValidationMethod::Symbolic:
    return "symbolic";
  case ValidationMethod::Psna:
    return "psna";
  }
  return "unknown";
}

/// The methods a CLI `--method` flag may request, for usage messages.
/// Psna is pipeline-internal (validatePsTransform picks it by pass kind),
/// so it is deliberately absent.
constexpr const char *validationMethodList() {
  return "simple, advanced, simulation, symbolic (alias: sym)";
}

/// Parses a CLI `--method` value: the validationMethodName tokens plus
/// the "sym" alias. Returns std::nullopt on anything else — including
/// "psna" — so callers can print a usage line listing
/// validationMethodList() and exit nonzero instead of silently
/// defaulting or aborting. Shared by the example and bench binaries so a
/// typo gets the same non-fatal diagnosis everywhere.
inline std::optional<ValidationMethod>
parseValidationMethodMaybe(const std::string &Name) {
  if (Name == "simple")
    return ValidationMethod::Simple;
  if (Name == "advanced")
    return ValidationMethod::Advanced;
  if (Name == "simulation")
    return ValidationMethod::Simulation;
  if (Name == "symbolic" || Name == "sym")
    return ValidationMethod::Symbolic;
  return std::nullopt;
}

/// Outcome of validating one transformation.
struct ValidationResult {
  bool Ok = true;
  bool Bounded = false;
  /// The budget responsible for Bounded (None when exhaustive); also
  /// appended to Counterexample for bounded verdicts.
  TruncationCause Cause = TruncationCause::None;
  ValidationMethod MethodUsed = ValidationMethod::Advanced;
  std::string Counterexample; ///< includes the offending thread index
  /// States/behaviors the underlying decision procedure examined, summed
  /// over threads (initial states + behaviors for the trace checkers,
  /// product nodes for the simulation).
  unsigned long long StatesExplored = 0;
  double ElapsedMs = 0.0; ///< wall time of the whole validation
  /// Static race verdict for the source program (analysis/RaceLint.h).
  /// RaceFree records that the program is provably race-free, which is
  /// the DRF-style justification for validating per thread with the SEQ
  /// procedures alone: §6's sequential-reasoning soundness needs no
  /// stronger hypothesis when no na-race can fire. Unset when linting is
  /// disabled via SeqConfig::Lint.
  std::optional<analysis::RaceVerdict> Lint;
};

/// Checks σ_tgt ⊑w σ_src (or the chosen weaker/stronger notion) for every
/// thread of the transformed program \p Tgt against \p Src.
ValidationResult validateTransform(const Program &Src, const Program &Tgt,
                                   SeqConfig Cfg = SeqConfig(),
                                   bool UseAdvanced = true);

/// Method-selecting overload. \p Method must be one of the per-thread SEQ
/// procedures (Simple/Advanced/Simulation).
ValidationResult validateTransform(const Program &Src, const Program &Tgt,
                                   SeqConfig Cfg, ValidationMethod Method);

/// Whole-program translation validation in PS^na (Def 5.3 outcome
/// inclusion): used for register promotion and fence weakening, whose
/// rewrites are invisible to closed-program outcomes but not to the
/// per-thread SEQ label traces. Not contextual — a promoted location could
/// be re-shared by a context — so the verdict certifies exactly the closed
/// program passed in, which is what the pipeline transforms. Programs must
/// share layouts and thread counts.
ValidationResult validatePsTransform(const Program &Src, const Program &Tgt,
                                     PsConfig Cfg = PsConfig());

} // namespace pseq

#endif // PSEQ_OPT_VALIDATOR_H
