//===- opt/LicmPass.h - Loop-invariant code motion (§4) ---------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LICM as described in §4 / Appendix D, in two stages: (1) introduce an
/// irrelevant load `licm$x := x@na` before each loop whose body reads x
/// but neither writes x nor performs any acquire — load introduction is
/// unconditionally sound in SEQ (Example 2.8), which is exactly what the
/// non-catch-fire design buys; then (2) run LLF to forward the preheader
/// value to the in-loop loads (Example 1.3's pattern).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_LICMPASS_H
#define PSEQ_OPT_LICMPASS_H

#include "opt/Passes.h"

namespace pseq {

/// Runs load introduction followed by LLF.
PassResult runLicmPass(const Program &P);

/// Stage 1 only (exposed for tests): hoistable-load introduction.
PassResult runLicmLoadIntroduction(const Program &P);

} // namespace pseq

#endif // PSEQ_OPT_LICMPASS_H
