//===- opt/ConstPropPass.cpp - Constant propagation (extension) -----------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/ConstPropPass.h"

#include "analysis/AbstractValue.h"

#include <cassert>
#include <unordered_map>

using namespace pseq;

namespace {

/// Abstract register file: known constant (possibly undef) or unknown.
using Env = std::vector<std::optional<Value>>;

Env joinEnvs(const Env &A, const Env &B) {
  assert(A.size() == B.size() && "env width mismatch");
  Env Out(A.size());
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (A[I].has_value() && B[I].has_value() && *A[I] == *B[I])
      Out[I] = A[I];
  return Out;
}

/// Evaluates \p E when every register it reads is known and evaluation
/// cannot fault; returns nothing otherwise.
std::optional<Value> evalAbstract(const Expr *E, const Env &Env_) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    return E->constVal();
  case Expr::Kind::Reg:
    return Env_[E->reg()];
  case Expr::Kind::Unary: {
    std::optional<Value> Sub = evalAbstract(E->lhs(), Env_);
    if (!Sub)
      return std::nullopt;
    if (Sub->isUndef())
      return Value::undef();
    int64_t V = Sub->get();
    return Value::of(E->unOp() == UnOp::Neg ? -V : (V == 0));
  }
  case Expr::Kind::Binary: {
    std::optional<Value> L = evalAbstract(E->lhs(), Env_);
    std::optional<Value> R = evalAbstract(E->rhs(), Env_);
    if (!L || !R)
      return std::nullopt;
    if (E->binOp() == BinOp::Div || E->binOp() == BinOp::Mod) {
      // Folding must not erase (or introduce) faults.
      if (R->isUndef() || R->get() == 0)
        return std::nullopt;
    }
    if (L->isUndef() || R->isUndef())
      return Value::undef();
    bool UB = false;
    int64_t V = applyBinOp(E->binOp(), L->get(), R->get(), UB);
    if (UB)
      return std::nullopt;
    return Value::of(V);
  }
  }
  return std::nullopt;
}

/// Forward analysis + rewrite in one structure-directed walk. Loops are
/// analyzed to a fixpoint first, then rewritten under the stable head env.
class ConstProp {
  const Program &Src;
  Program &Dst;
  unsigned Rewrites = 0;

  //===-- analysis --------------------------------------------------------===

  Env transfer(const Stmt *S, Env In) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Print:
    case Stmt::Kind::Return:
    case Stmt::Kind::Abort:
    case Stmt::Kind::Store:
    case Stmt::Kind::Fence:
      return In;
    case Stmt::Kind::Assign:
      In[S->reg()] = evalAbstract(S->expr(), In);
      return In;
    case Stmt::Kind::Freeze: {
      std::optional<Value> V = evalAbstract(S->expr(), In);
      // freeze of a known *defined* value is the identity.
      In[S->reg()] =
          (V.has_value() && V->isDefined()) ? V : std::nullopt;
      return In;
    }
    case Stmt::Kind::Load:
    case Stmt::Kind::Choose:
    case Stmt::Kind::Cas:
    case Stmt::Kind::Fadd:
      In[S->reg()] = std::nullopt;
      return In;
    case Stmt::Kind::Seq:
      for (const Stmt *Kid : S->seq())
        In = transfer(Kid, std::move(In));
      return In;
    case Stmt::Kind::If: {
      Env Then = transfer(S->thenStmt(), In);
      Env Else = transfer(S->elseStmt(), std::move(In));
      return joinEnvs(Then, Else);
    }
    case Stmt::Kind::While: {
      Env Head = std::move(In);
      while (true) {
        Env Out = transfer(S->body(), Head);
        Env Joined = joinEnvs(Head, Out);
        if (Joined == Head)
          break;
        Head = std::move(Joined);
      }
      return Head;
    }
    }
    assert(false && "unknown statement kind");
    return In;
  }

  //===-- rewriting -------------------------------------------------------===

  const Expr *rewriteExpr(const Expr *E, const Env &Env_) {
    if (std::optional<Value> V = evalAbstract(E, Env_)) {
      if (E->kind() != Expr::Kind::Const) {
        ++Rewrites;
        return Dst.exprConst(*V);
      }
      return Dst.cloneExpr(E);
    }
    switch (E->kind()) {
    case Expr::Kind::Const:
    case Expr::Kind::Reg:
      return Dst.cloneExpr(E);
    case Expr::Kind::Unary:
      return Dst.exprUn(E->unOp(), rewriteExpr(E->lhs(), Env_));
    case Expr::Kind::Binary:
      return Dst.exprBin(E->binOp(), rewriteExpr(E->lhs(), Env_),
                         rewriteExpr(E->rhs(), Env_));
    }
    assert(false && "unknown expression kind");
    return nullptr;
  }

  const Stmt *rewrite(const Stmt *S, Env &In) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
    case Stmt::Kind::Abort:
    case Stmt::Kind::Fence:
      return Dst.cloneStmt(S);
    case Stmt::Kind::Assign: {
      const Stmt *Out = Dst.stmtAssign(S->reg(), rewriteExpr(S->expr(), In));
      In = transfer(S, std::move(In));
      return Out;
    }
    case Stmt::Kind::Freeze: {
      std::optional<Value> V = evalAbstract(S->expr(), In);
      const Stmt *Out;
      if (V.has_value() && V->isDefined()) {
        ++Rewrites;
        Out = Dst.stmtAssign(S->reg(), Dst.exprConst(*V));
      } else {
        Out = Dst.stmtFreeze(S->reg(), rewriteExpr(S->expr(), In));
      }
      In = transfer(S, std::move(In));
      return Out;
    }
    case Stmt::Kind::Load:
    case Stmt::Kind::Choose:
    case Stmt::Kind::Cas:
    case Stmt::Kind::Fadd: {
      // Memory statements: rewrite operand expressions only.
      const Stmt *Out;
      if (S->kind() == Stmt::Kind::Cas)
        Out = Dst.stmtCas(S->reg(), S->loc(), rewriteExpr(S->casExpected(), In),
                          rewriteExpr(S->casNew(), In), S->readMode(),
                          S->writeMode());
      else if (S->kind() == Stmt::Kind::Fadd)
        Out = Dst.stmtFadd(S->reg(), S->loc(), rewriteExpr(S->expr(), In),
                           S->readMode(), S->writeMode());
      else
        Out = Dst.cloneStmt(S);
      In = transfer(S, std::move(In));
      return Out;
    }
    case Stmt::Kind::Store:
      return Dst.stmtStore(S->loc(), rewriteExpr(S->expr(), In),
                           S->writeMode());
    case Stmt::Kind::Print:
      return Dst.stmtPrint(rewriteExpr(S->expr(), In));
    case Stmt::Kind::Return:
      return Dst.stmtReturn(rewriteExpr(S->expr(), In));
    case Stmt::Kind::Seq: {
      std::vector<const Stmt *> Kids;
      Kids.reserve(S->seq().size());
      for (const Stmt *Kid : S->seq())
        Kids.push_back(rewrite(Kid, In));
      return Dst.stmtSeq(std::move(Kids));
    }
    case Stmt::Kind::If: {
      std::optional<Value> Cond = evalAbstract(S->expr(), In);
      if (Cond.has_value() && Cond->isDefined() &&
          !exprMayFault(S->expr())) {
        // Decided branch: keep only the taken side.
        ++Rewrites;
        const Stmt *Out =
            rewrite(Cond->truthy() ? S->thenStmt() : S->elseStmt(), In);
        return Out;
      }
      const Expr *C = rewriteExpr(S->expr(), In);
      Env ThenEnv = In;
      const Stmt *Then = rewrite(S->thenStmt(), ThenEnv);
      Env ElseEnv = In;
      const Stmt *Else = rewrite(S->elseStmt(), ElseEnv);
      In = joinEnvs(ThenEnv, ElseEnv);
      return Dst.stmtIf(C, Then, Else);
    }
    case Stmt::Kind::While: {
      // The loop never runs when its condition is a known defined false at
      // entry (the body then never executes, so the env is unchanged).
      std::optional<Value> AtEntry = evalAbstract(S->expr(), In);
      if (AtEntry.has_value() && AtEntry->isDefined() &&
          !AtEntry->truthy() && !exprMayFault(S->expr())) {
        ++Rewrites;
        return Dst.stmtSkip();
      }
      // Otherwise rewrite under the stable head env.
      Env Head = transfer(S, In); // fixpoint of the loop
      Env BodyEnv = Head;
      const Stmt *Body = rewrite(S->body(), BodyEnv);
      const Stmt *Out = Dst.stmtWhile(rewriteExpr(S->expr(), Head), Body);
      In = std::move(Head);
      return Out;
    }
    }
    assert(false && "unknown statement kind");
    return nullptr;
  }

public:
  ConstProp(const Program &Src, Program &Dst) : Src(Src), Dst(Dst) {}

  unsigned run(unsigned Tid) {
    (void)Src;
    Env In(Dst.thread(Tid).Regs.size(), Value::of(0)); // registers start 0
    const Stmt *Body = rewrite(Src.thread(Tid).Body, In);
    Dst.setThreadBody(Tid, Body);
    return Rewrites;
  }
};

} // namespace

PassResult pseq::runConstPropPass(const Program &P) {
  PassResult Result;
  Result.Prog = std::make_unique<Program>();
  Program &Dst = *Result.Prog;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L)
    Dst.declareLoc(P.locName(L), P.isAtomicLoc(L));
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    unsigned Tid = Dst.addThread();
    Dst.thread(Tid).Regs = P.thread(T).Regs;
    ConstProp CP(P, Dst);
    Result.Rewrites += CP.run(Tid);
  }
  return Result;
}
