//===- opt/LicmPass.cpp - Loop-invariant code motion (§4) -----------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/LicmPass.h"

using namespace pseq;

namespace {

/// What a loop body does to shared memory, for the §4 side conditions.
struct BodySummary {
  LocSet NaReads;
  LocSet NaWrites;
  bool HasAcquire = false;
};

void scan(const Stmt *S, BodySummary &Sum) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Load:
    if (S->readMode() == ReadMode::NA)
      Sum.NaReads.insert(S->loc());
    if (S->readMode() == ReadMode::ACQ)
      Sum.HasAcquire = true;
    return;
  case Stmt::Kind::Store:
    if (S->writeMode() == WriteMode::NA)
      Sum.NaWrites.insert(S->loc());
    return;
  case Stmt::Kind::Cas:
  case Stmt::Kind::Fadd:
    if (S->readMode() == ReadMode::ACQ)
      Sum.HasAcquire = true;
    return;
  case Stmt::Kind::Fence:
    if (S->fenceMode() != FenceMode::REL)
      Sum.HasAcquire = true;
    return;
  case Stmt::Kind::Seq:
    for (const Stmt *Kid : S->seq())
      scan(Kid, Sum);
    return;
  case Stmt::Kind::If:
    scan(S->thenStmt(), Sum);
    scan(S->elseStmt(), Sum);
    return;
  case Stmt::Kind::While:
    scan(S->body(), Sum);
    return;
  default:
    return;
  }
}

} // namespace

PassResult pseq::runLicmLoadIntroduction(const Program &P) {
  PassResult Result;
  Result.Prog = std::make_unique<Program>();
  Program &Dst = *Result.Prog;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L)
    Dst.declareLoc(P.locName(L), P.isAtomicLoc(L));

  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    unsigned Tid = Dst.addThread();
    Dst.thread(Tid).Regs = P.thread(T).Regs;

    // The hook is self-referential (nested loops), so define it by name.
    std::function<const Stmt *(const Stmt *, Program &)> Hook =
        [&](const Stmt *S, Program &D) -> const Stmt * {
      if (S->kind() != Stmt::Kind::While)
        return nullptr;
      BodySummary Sum;
      scan(S->body(), Sum);
      LocSet Hoistable = Sum.NaReads.setMinus(Sum.NaWrites);
      if (Sum.HasAcquire || Hoistable.isEmpty())
        return nullptr; // recurse structurally (nested loops still hooked)
      std::vector<const Stmt *> Pre;
      for (unsigned Loc : Hoistable.members()) {
        unsigned Reg =
            D.thread(Tid).Regs.intern("licm$" + P.locName(Loc));
        Pre.push_back(D.stmtLoad(Reg, Loc, ReadMode::NA));
        ++Result.Rewrites;
      }
      Pre.push_back(D.stmtWhile(D.cloneExpr(S->expr()),
                                cloneWithHook(S->body(), D, Hook)));
      return D.stmtSeq(std::move(Pre));
    };

    Dst.setThreadBody(Tid, cloneWithHook(P.thread(T).Body, Dst, Hook));
  }
  return Result;
}

PassResult pseq::runLicmPass(const Program &P) {
  PassResult Stage1 = runLicmLoadIntroduction(P);
  PassResult Stage2 = runLlfPass(*Stage1.Prog);
  Stage2.Rewrites += Stage1.Rewrites;
  return Stage2;
}
