//===- opt/WeakenPass.h - Fence & mode weakening (extension) ----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Redundant-fence elimination and access-mode weakening, justified
/// entry-by-entry from the transformation atlas (src/atlas) and certified
/// per run by the whole-program PS^na validator (fence removal changes the
/// per-thread label sequence, so the SEQ procedures reject it by
/// construction — these are exactly the atlas's `SeqIncomplete` rows).
///
/// Three rule families:
///
///  * R1 — adjacent fence absorption: of two fences separated only by
///    skips, drop the one whose acquire/release halves the other already
///    provides (`fence@sc; fence@acq` → `fence@sc; skip`). Justified by
///    the atlas `eliminate` fence-pair entries, which are PS^na-safe under
///    every library context.
///  * R2 — fences in atomic-free threads: a thread performing no
///    atomic-mode access gains no synchronization from fences (fence
///    edges need surrounding atomics), so when the lint verdict shows no
///    undischarged race, all its fences drop. Justified by the atlas
///    `eliminate` fence-after-na-load entries.
///  * R3 — thread-local atomics: an atomic location in exactly one
///    thread's footprint has no cross-thread reader to synchronize with,
///    so acq reads / rel writes / RMW halves on it weaken to rlx. The
///    atlas `weaken` category documents which mode weakenings are
///    context-safe; this rule goes further (context-observable entries
///    become safe once the location is private), which is why the
///    pipeline certifies every run with validatePsTransform.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_WEAKENPASS_H
#define PSEQ_OPT_WEAKENPASS_H

#include "opt/Passes.h"

namespace pseq {

/// Runs fence and access-mode weakening on \p P. Stats: "fence_pairs"
/// (R1 drops), "thread_local_fences" (R2 drops), "weakened_modes" (R3
/// mode changes).
PassResult runWeakenPass(const Program &P);

} // namespace pseq

#endif // PSEQ_OPT_WEAKENPASS_H
