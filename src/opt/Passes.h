//===- opt/Passes.h - The optimizer's rewrite passes ------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four thread-local optimization passes of §4: store-to-load
/// forwarding (SLF), load-to-load forwarding (LLF), dead-store elimination
/// (DSE), and loop-invariant code motion (LICM). Each pass analyzes every
/// thread of the input program and produces a fresh transformed program
/// with the same memory layout (register tables are preserved or extended,
/// never reordered), ready for translation validation against the input.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_OPT_PASSES_H
#define PSEQ_OPT_PASSES_H

#include "lang/Program.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pseq {

/// Output of one pass run.
struct PassResult {
  std::unique_ptr<Program> Prog;
  unsigned Rewrites = 0; ///< number of statements changed
  /// Pass-specific tallies ("locations", "rejected_shared", ...). The
  /// pipeline publishes each nonzero entry as the telemetry counter
  /// `opt.<pass>.<key>` and copies the list into the pass report, so a
  /// pass can explain a zero-rewrite run (e.g. every candidate rejected).
  std::vector<std::pair<std::string, uint64_t>> Stats;
};

/// SLF (Fig. 3): `x@na := v; α; b := x@na  ⇝  ...; b := v` when α contains
/// no write to x and no release-acquire pair.
PassResult runSlfPass(const Program &P);

/// LLF (Fig. 8a): `a := x@na; β; b := x@na  ⇝  ...; b := a` when β
/// contains no write to x and no acquire.
PassResult runLlfPass(const Program &P);

/// DSE (Fig. 8b): `x@na := a; γ; x@na := b  ⇝  skip; γ; x@na := b` when γ
/// contains no read of x and no release-acquire pair. Stores whose operand
/// may fault (division) are kept.
PassResult runDsePass(const Program &P);

/// Rewrites thread \p SrcTid of \p Src into \p Dst (same layout): \p Hook
/// may return a replacement statement built in \p Dst; returning nullptr
/// recurses structurally. Exposed for the LICM pass and for tests.
const Stmt *
cloneWithHook(const Stmt *S, Program &Dst,
              const std::function<const Stmt *(const Stmt *, Program &)> &Hook);

} // namespace pseq

#endif // PSEQ_OPT_PASSES_H
