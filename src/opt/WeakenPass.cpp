//===- opt/WeakenPass.cpp - Fence & mode weakening (extension) ------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "opt/WeakenPass.h"

#include "analysis/RaceLint.h"

#include <functional>
#include <vector>

using namespace pseq;

namespace {

/// Fence halves. Combined fences (ACQREL, SC) lower to `fence@rel;
/// fence@acq` (lang/Program.cpp), so within this fragment they are
/// equivalent and mutually subsuming.
bool acqPart(FenceMode F) { return F != FenceMode::REL; }
bool relPart(FenceMode F) { return F != FenceMode::ACQ; }

/// Does fence \p A provide every half of fence \p B?
bool subsumes(FenceMode A, FenceMode B) {
  return (acqPart(A) || !acqPart(B)) && (relPart(A) || !relPart(B));
}

/// Per-thread syntactic access summary for the rule gates.
struct ThreadScan {
  bool AnyAtomicMode = false;
  std::vector<bool> TouchesLoc; // any mode
};

void scanStmt(const Stmt *S, ThreadScan &Scan) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Load:
    Scan.TouchesLoc[S->loc()] = true;
    Scan.AnyAtomicMode |= S->readMode() != ReadMode::NA;
    break;
  case Stmt::Kind::Store:
    Scan.TouchesLoc[S->loc()] = true;
    Scan.AnyAtomicMode |= S->writeMode() != WriteMode::NA;
    break;
  case Stmt::Kind::Cas:
  case Stmt::Kind::Fadd:
    Scan.TouchesLoc[S->loc()] = true;
    Scan.AnyAtomicMode = true;
    break;
  case Stmt::Kind::Seq:
    for (const Stmt *Kid : S->seq())
      scanStmt(Kid, Scan);
    break;
  case Stmt::Kind::If:
    scanStmt(S->thenStmt(), Scan);
    scanStmt(S->elseStmt(), Scan);
    break;
  case Stmt::Kind::While:
    scanStmt(S->body(), Scan);
    break;
  default:
    break;
  }
}

} // namespace

PassResult pseq::runWeakenPass(const Program &P) {
  analysis::RaceReport Rep = analysis::analyzeRaces(P);
  const bool NoUndischargedRace =
      Rep.Verdict != analysis::RaceVerdict::PotentiallyRacy;

  std::vector<ThreadScan> Scans(P.numThreads());
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    Scans[T].TouchesLoc.assign(P.numLocs(), false);
    scanStmt(P.thread(T).Body, Scans[T]);
  }

  // R3 candidates: atomic locations in exactly one thread's reach (both
  // the lint footprint and the syntactic scan agree on single ownership).
  std::vector<bool> LocalAtomic(P.numLocs(), false);
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L) {
    if (!P.isAtomicLoc(L))
      continue;
    unsigned Owners = 0;
    for (unsigned T = 0, TE = P.numThreads(); T != TE; ++T) {
      const analysis::ThreadFootprint &F = Rep.Threads[T];
      if (F.MayRead.contains(L) || F.MayWrite.contains(L) ||
          Scans[T].TouchesLoc[L])
        ++Owners;
    }
    LocalAtomic[L] = Owners == 1;
  }

  PassResult Result;
  Result.Prog = std::make_unique<Program>();
  Program &Dst = *Result.Prog;
  for (unsigned L = 0, E = P.numLocs(); L != E; ++L)
    Dst.declareLoc(P.locName(L), P.isAtomicLoc(L));

  uint64_t FencePairs = 0, LocalFences = 0, WeakenedModes = 0;
  for (unsigned T = 0, E = P.numThreads(); T != E; ++T) {
    unsigned Tid = Dst.addThread();
    Dst.thread(Tid).Regs = P.thread(T).Regs;
    // R2 gate for this thread.
    const bool DropAllFences = !Scans[T].AnyAtomicMode && NoUndischargedRace;

    std::function<const Stmt *(const Stmt *, Program &)> Hook =
        [&](const Stmt *S, Program &D) -> const Stmt * {
      switch (S->kind()) {
      case Stmt::Kind::Fence:
        if (DropAllFences) {
          ++Result.Rewrites;
          ++LocalFences;
          return D.stmtSkip();
        }
        return nullptr;
      case Stmt::Kind::Load:
        if (LocalAtomic[S->loc()] && S->readMode() == ReadMode::ACQ) {
          ++Result.Rewrites;
          ++WeakenedModes;
          return D.stmtLoad(S->reg(), S->loc(), ReadMode::RLX);
        }
        return nullptr;
      case Stmt::Kind::Store:
        if (LocalAtomic[S->loc()] && S->writeMode() == WriteMode::REL) {
          ++Result.Rewrites;
          ++WeakenedModes;
          return D.stmtStore(S->loc(), D.cloneExpr(S->expr()),
                             WriteMode::RLX);
        }
        return nullptr;
      case Stmt::Kind::Fadd: {
        if (!LocalAtomic[S->loc()])
          return nullptr;
        ReadMode RM = S->readMode() == ReadMode::ACQ ? ReadMode::RLX
                                                     : S->readMode();
        WriteMode WM = S->writeMode() == WriteMode::REL ? WriteMode::RLX
                                                        : S->writeMode();
        if (RM == S->readMode() && WM == S->writeMode())
          return nullptr;
        ++Result.Rewrites;
        ++WeakenedModes;
        return D.stmtFadd(S->reg(), S->loc(), D.cloneExpr(S->expr()), RM, WM);
      }
      case Stmt::Kind::Cas: {
        if (!LocalAtomic[S->loc()])
          return nullptr;
        ReadMode RM = S->readMode() == ReadMode::ACQ ? ReadMode::RLX
                                                     : S->readMode();
        WriteMode WM = S->writeMode() == WriteMode::REL ? WriteMode::RLX
                                                        : S->writeMode();
        if (RM == S->readMode() && WM == S->writeMode())
          return nullptr;
        ++Result.Rewrites;
        ++WeakenedModes;
        return D.stmtCas(S->reg(), S->loc(), D.cloneExpr(S->casExpected()),
                         D.cloneExpr(S->casNew()), RM, WM);
      }
      case Stmt::Kind::Seq: {
        // R1: clone the children (through this very hook), then absorb a
        // fence whose halves the previous still-standing fence already
        // provides. Skips — original or minted by R2/R1 — are transparent
        // for adjacency, matching the atlas fence-pair entries.
        std::vector<const Stmt *> Kids;
        Kids.reserve(S->seq().size());
        for (const Stmt *Kid : S->seq())
          Kids.push_back(cloneWithHook(Kid, D, Hook));
        int LastFence = -1; // index into Kids of the governing fence
        for (size_t I = 0; I != Kids.size(); ++I) {
          if (Kids[I]->kind() == Stmt::Kind::Skip)
            continue;
          if (Kids[I]->kind() != Stmt::Kind::Fence) {
            LastFence = -1;
            continue;
          }
          if (LastFence < 0) {
            LastFence = static_cast<int>(I);
            continue;
          }
          FenceMode Prev = Kids[LastFence]->fenceMode();
          FenceMode Cur = Kids[I]->fenceMode();
          if (subsumes(Prev, Cur)) {
            Kids[I] = D.stmtSkip();
            ++Result.Rewrites;
            ++FencePairs;
          } else if (subsumes(Cur, Prev)) {
            Kids[LastFence] = D.stmtSkip();
            LastFence = static_cast<int>(I);
            ++Result.Rewrites;
            ++FencePairs;
          } else {
            LastFence = static_cast<int>(I);
          }
        }
        return D.stmtSeq(std::move(Kids));
      }
      default:
        return nullptr;
      }
    };

    Dst.setThreadBody(Tid, cloneWithHook(P.thread(T).Body, Dst, Hook));
  }

  if (FencePairs)
    Result.Stats.push_back({"fence_pairs", FencePairs});
  if (LocalFences)
    Result.Stats.push_back({"thread_local_fences", LocalFences});
  if (WeakenedModes)
    Result.Stats.push_back({"weakened_modes", WeakenedModes});
  return Result;
}
