//===- memo/Snapshot.h - Durable memo-table snapshots -----------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization for string-valued memo tables, so a restarted
/// validation server resumes with a warm verdict cache instead of
/// re-exploring every program it has already judged. The format is
/// deliberately dumb and fully checked:
///
///   "PSEQSNAP"                    8-byte magic
///   version                       u32 LE (currently 1)
///   count                         u64 LE
///   count x { Lo u64 LE, Hi u64 LE, len u64 LE, len bytes }
///   checksum                      u64 LE (fingerprint chain over payload)
///
/// Decoding rejects — with a clean error message, never a crash or a
/// silently partial load — short files, bad magic, version mismatches,
/// length overflows, trailing junk, and checksum mismatches. Torn files
/// cannot occur on the write side because snapshots go to disk through
/// `support::writeFileAtomic` (temp + rename), but a decode must still
/// survive any bytes an adversarial or corrupted disk hands it.
///
/// Snapshot keys are content fingerprints salted with the pass config
/// (see MemoContext's ConfigSalt contract), so loading a snapshot recorded
/// under a different pipeline setup is safe: its keys simply never match.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_MEMO_SNAPSHOT_H
#define PSEQ_MEMO_SNAPSHOT_H

#include "memo/MemoContext.h"

#include <string>
#include <vector>

namespace pseq {
namespace memo {

/// Current snapshot format version.
inline constexpr uint32_t SnapshotVersion = 1;

/// Serializes \p Entries into the snapshot byte format (deterministic:
/// same entries in the same order produce identical bytes).
std::string encodeSnapshot(const std::vector<MemoContext::StringEntry> &Entries);

/// Parses snapshot bytes. On success fills \p Entries (in file order) and
/// returns true; on any malformation returns false with a diagnostic in
/// \p Err naming what was wrong (magic, version, truncation, checksum...).
bool decodeSnapshot(const std::string &Bytes,
                    std::vector<MemoContext::StringEntry> &Entries,
                    std::string &Err);

/// Exports \p T (a string-valued table) from \p Ctx and writes it
/// atomically to \p Path. Returns false with \p Err set on I/O failure.
bool saveSnapshot(const MemoContext &Ctx, MemoContext::Table T,
                  const std::string &Path, std::string &Err);

/// Reads \p Path, decodes it, and imports the entries into \p T of \p Ctx.
/// On success stores the number of entries actually inserted (first-writer
/// -wins: live entries are kept) into \p Loaded. A missing file is an
/// error here — callers that treat "no snapshot yet" as a cold start
/// should check existence (or just ignore the failure) themselves.
bool loadSnapshot(MemoContext &Ctx, MemoContext::Table T,
                  const std::string &Path, uint64_t &Loaded,
                  std::string &Err);

} // namespace memo
} // namespace pseq

#endif // PSEQ_MEMO_SNAPSHOT_H
