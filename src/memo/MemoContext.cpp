//===- memo/MemoContext.cpp - Cross-run memoization context ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "memo/MemoContext.h"

#include <algorithm>

using namespace pseq;
using namespace pseq::memo;

MemoContext::MemoContext(const Options &O)
    : Opts(O), Shards(new Shard[NumTables * ShardsPerTable]) {}

const MemoContext::Shard &MemoContext::shardFor(Table T,
                                                const Fp128 &Key) const {
  unsigned TableBase = static_cast<unsigned>(T) * ShardsPerTable;
  unsigned Idx = static_cast<unsigned>(Key.Lo >> 6) & (ShardsPerTable - 1);
  return Shards[TableBase + Idx];
}

std::shared_ptr<const void> MemoContext::lookup(Table T,
                                                const Fp128 &Key) const {
  const Shard &S = shardFor(T, Key);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Key);
  return It == S.Map.end() ? nullptr : It->second;
}

std::shared_ptr<const void>
MemoContext::insert(Table T, const Fp128 &Key,
                    std::shared_ptr<const void> Value) {
  std::atomic<uint64_t> &Size = Sizes[static_cast<unsigned>(T)];
  const Shard &CS = shardFor(T, Key);
  Shard &S = const_cast<Shard &>(CS);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Key);
  if (It != S.Map.end())
    return It->second; // first writer wins
  if (Size.load(std::memory_order_relaxed) >= Opts.MaxEntriesPerTable)
    return nullptr; // table full; caller keeps its local value
  S.Map.emplace(Key, Value);
  Size.fetch_add(1, std::memory_order_relaxed);
  return Value;
}

uint64_t MemoContext::entryCount(Table T) const {
  return Sizes[static_cast<unsigned>(T)].load(std::memory_order_relaxed);
}

std::vector<MemoContext::StringEntry>
MemoContext::exportStrings(Table T) const {
  std::vector<StringEntry> Out;
  unsigned TableBase = static_cast<unsigned>(T) * ShardsPerTable;
  for (unsigned I = 0; I != ShardsPerTable; ++I) {
    const Shard &S = Shards[TableBase + I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &KV : S.Map) {
      const auto *Str = static_cast<const std::string *>(KV.second.get());
      Out.push_back({KV.first, *Str});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const StringEntry &A, const StringEntry &B) {
              return A.Key.Hi != B.Key.Hi ? A.Key.Hi < B.Key.Hi
                                          : A.Key.Lo < B.Key.Lo;
            });
  return Out;
}

uint64_t MemoContext::importStrings(Table T,
                                    const std::vector<StringEntry> &Entries) {
  uint64_t Inserted = 0;
  for (const StringEntry &E : Entries) {
    auto Value = std::make_shared<const std::string>(E.Value);
    if (insert(T, E.Key, Value) == Value)
      ++Inserted;
  }
  return Inserted;
}

MemoContext::ShardStats MemoContext::shardStats(Table T) const {
  ShardStats Out;
  Out.NumShards = ShardsPerTable;
  unsigned TableBase = static_cast<unsigned>(T) * ShardsPerTable;
  for (unsigned I = 0; I != ShardsPerTable; ++I) {
    const Shard &S = Shards[TableBase + I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    uint64_t N = S.Map.size();
    Out.Entries += N;
    Out.MaxShard = std::max(Out.MaxShard, N);
    Out.NonEmptyShards += N != 0;
  }
  return Out;
}
