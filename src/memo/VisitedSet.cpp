//===- memo/VisitedSet.cpp - Sharded fingerprint hash table ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "memo/VisitedSet.h"

#include <cassert>

using namespace pseq;
using namespace pseq::memo;

namespace {

size_t roundUpPow2(size_t N) {
  size_t C = 16;
  while (C < N)
    C <<= 1;
  return C;
}

} // namespace

void VisitedSet::Shard::init(size_t Cap) {
  KeyLo.assign(Cap, 0);
  KeyHi.assign(Cap, 0);
  Mask.assign(Cap, 0);
  Used = 0;
}

size_t VisitedSet::Shard::probe(const Fp128 &Fp) const {
  size_t CapMask = KeyLo.size() - 1;
  size_t Idx = static_cast<size_t>(Fp.Hi) & CapMask;
  for (;;) {
    if (KeyLo[Idx] == 0 && KeyHi[Idx] == 0)
      return Idx; // empty slot
    if (KeyLo[Idx] == Fp.Lo && KeyHi[Idx] == Fp.Hi)
      return Idx; // occupied by Fp
    Idx = (Idx + 1) & CapMask;
  }
}

void VisitedSet::Shard::grow() {
  std::vector<uint64_t> OldLo = std::move(KeyLo);
  std::vector<uint64_t> OldHi = std::move(KeyHi);
  std::vector<uint32_t> OldMask = std::move(Mask);
  init(OldLo.size() * 2);
  for (size_t I = 0, E = OldLo.size(); I != E; ++I) {
    if (OldLo[I] == 0 && OldHi[I] == 0)
      continue;
    size_t Idx = probe(Fp128{OldLo[I], OldHi[I]});
    KeyLo[Idx] = OldLo[I];
    KeyHi[Idx] = OldHi[I];
    Mask[Idx] = OldMask[I];
    ++Used;
  }
}

VisitedSet::VisitedSet(size_t Expected) : Shards(new Shard[NumShards]) {
  size_t PerShard = roundUpPow2(Expected / NumShards + 1);
  for (size_t S = 0; S != NumShards; ++S)
    Shards[S].init(PerShard);
}

VisitedSet::Outcome VisitedSet::insertOrMerge(Fp128 Fp, uint32_t NewMask) {
  Fp = Fp.sealed();
  Shard &S = Shards[static_cast<size_t>(Fp.Lo) & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  // Grow at 62.5% load, before probing (so probe always finds a slot).
  if ((S.Used + 1) * 8 > S.KeyLo.size() * 5)
    S.grow();
  size_t Idx = S.probe(Fp);
  if (S.KeyLo[Idx] == 0 && S.KeyHi[Idx] == 0) {
    S.KeyLo[Idx] = Fp.Lo;
    S.KeyHi[Idx] = Fp.Hi;
    S.Mask[Idx] = NewMask;
    ++S.Used;
    Count.fetch_add(1, std::memory_order_relaxed);
    return Outcome{true, false, NewMask};
  }
  uint32_t Merged = S.Mask[Idx] & NewMask;
  bool Shrunk = Merged != S.Mask[Idx];
  S.Mask[Idx] = Merged;
  return Outcome{false, Shrunk, Merged};
}
