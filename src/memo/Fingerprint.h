//===- memo/Fingerprint.h - 128-bit canonical fingerprints ------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 128-bit fingerprints for canonical machine states, programs, and
/// configurations. A fingerprint is two independently-mixed 64-bit lanes
/// fed the same value stream: the Lo lane uses the repo's boost-style
/// hashCombine, the Hi lane a murmur3-finalizer chain with different
/// constants. Equal fingerprints are treated as equal states by the memo
/// layer; the ~2^-64 per-pair collision rate (squared lanes, correlated
/// only through the 64-bit component hashes fed in) is negligible against
/// the millions of states a bounded exploration visits, and the memo-off
/// path stays exact — the differential tests compare the two.
///
/// Fingerprinting is only meaningful over canonical forms: SEQ states are
/// canonical by construction (dense location vectors, sorted partial
/// memories), PS^na states after PsMachineState::normalize() has ranked
/// every location's timestamps to their order type (the explorer only
/// fingerprints normalized states).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_MEMO_FINGERPRINT_H
#define PSEQ_MEMO_FINGERPRINT_H

#include "support/Hashing.h"

#include <cstdint>

namespace pseq {

class Program;

namespace memo {

/// Two independently-mixed 64-bit lanes; the all-zero value is reserved as
/// the "empty slot" marker of VisitedSet (see seal()).
struct Fp128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Fp128 &O) const { return Lo == O.Lo && Hi == O.Hi; }
  bool operator!=(const Fp128 &O) const { return !(*this == O); }

  bool isZero() const { return Lo == 0 && Hi == 0; }

  /// Fingerprints handed to tables must never be all-zero (VisitedSet's
  /// empty-slot marker); sealing maps the (vanishingly unlikely) zero
  /// value to a fixed nonzero one.
  Fp128 sealed() const { return isZero() ? Fp128{1, 1} : *this; }
};

/// Mixes one 64-bit value into both lanes.
inline void fpMix(Fp128 &F, uint64_t V) {
  F.Lo = hashCombine(F.Lo, V);
  uint64_t H = F.Hi ^ (V + 0x9e3779b97f4a7c15ULL + (F.Hi << 6));
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ULL;
  H ^= H >> 29;
  F.Hi = H;
}

/// A fresh fingerprint chain, domain-separated by \p Tag (so e.g. a state
/// fingerprint can never alias a program fingerprint).
inline Fp128 fpSeed(uint64_t Tag) {
  Fp128 F{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  fpMix(F, Tag);
  return F;
}

/// Mixes a whole byte string (length-prefixed, so "ab"+"c" != "a"+"bc").
inline void fpMixBytes(Fp128 &F, const char *Data, size_t Len) {
  fpMix(F, Len);
  uint64_t Word = 0;
  unsigned Fill = 0;
  for (size_t I = 0; I != Len; ++I) {
    Word |= static_cast<uint64_t>(static_cast<unsigned char>(Data[I]))
            << (8 * Fill);
    if (++Fill == 8) {
      fpMix(F, Word);
      Word = 0;
      Fill = 0;
    }
  }
  if (Fill)
    fpMix(F, Word);
}

/// Combines two fingerprints (lane-wise mixing; not commutative).
inline Fp128 fpCombine(Fp128 A, const Fp128 &B) {
  fpMix(A, B.Lo);
  fpMix(A, B.Hi);
  return A;
}

struct Fp128Hash {
  size_t operator()(const Fp128 &F) const {
    return static_cast<size_t>(F.Lo ^ (F.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Fingerprint of a program's surface syntax (the printer's output is a
/// complete, parseable rendering, so equal fingerprints mean equal
/// programs up to hash collision). Deterministic across runs.
Fp128 fingerprintProgram(const Program &P);

} // namespace memo
} // namespace pseq

#endif // PSEQ_MEMO_FINGERPRINT_H
