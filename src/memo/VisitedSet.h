//===- memo/VisitedSet.h - Sharded fingerprint hash table -------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe visited-state set over 128-bit canonical fingerprints,
/// with a 32-bit payload per entry (the explorers store sleep-set masks).
/// Sharded open-addressing tables: the shard is picked from the Lo lane,
/// the probe sequence from the Hi lane, so both lanes must collide before
/// two states alias. Each shard grows independently under its own mutex;
/// sized for millions of entries (24 bytes/entry at ≤62.5% load).
///
/// The payload merge is intersection (sleep sets only ever shrink): an
/// insert of an existing key replaces the stored mask with stored∩new and
/// reports whether that strictly shrank it — the Godefroid state-caching
/// correction re-enqueues such states for re-expansion.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_MEMO_VISITEDSET_H
#define PSEQ_MEMO_VISITEDSET_H

#include "memo/Fingerprint.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace pseq {
namespace memo {

class VisitedSet {
public:
  /// \p Expected sizes the initial per-shard tables (rounded up; the
  /// tables grow as needed, this only avoids early rehashing).
  explicit VisitedSet(size_t Expected = 1 << 16);

  struct Outcome {
    bool Inserted;  ///< key was new; Mask stored as given
    bool Shrunk;    ///< key existed and the merged mask strictly shrank
    uint32_t Mask;  ///< the mask now stored for the key
  };

  /// Inserts \p Fp with \p Mask, or — when present — intersects the stored
  /// mask with \p Mask. Thread-safe per shard.
  Outcome insertOrMerge(Fp128 Fp, uint32_t Mask);

  /// Number of distinct keys inserted so far.
  uint64_t size() const { return Count.load(std::memory_order_relaxed); }

private:
  struct Shard {
    std::mutex Mu;
    std::vector<uint64_t> KeyLo;
    std::vector<uint64_t> KeyHi;
    std::vector<uint32_t> Mask;
    size_t Used = 0;

    void init(size_t Cap);
    void grow();
    /// Probe for \p Fp; \returns slot index (occupied by Fp or empty).
    size_t probe(const Fp128 &Fp) const;
  };

  static constexpr size_t NumShards = 64;
  std::unique_ptr<Shard[]> Shards;
  std::atomic<uint64_t> Count{0};
};

} // namespace memo
} // namespace pseq

#endif // PSEQ_MEMO_VISITEDSET_H
