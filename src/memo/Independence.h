//===- memo/Independence.h - Conservative step independence ----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative conflict predicate the sleep-set pruning is built on.
/// A Footprint over-approximates everything one scheduling unit's next
/// step(s) can read, write, or observe:
///
///  * Locs — memory locations touched. For a PS^na thread this closes
///    over promise insertion points (any writable location) and the
///    certification search's read set whenever the thread may still
///    promise, because certification outcomes read arbitrary locations
///    the thread accesses (see DESIGN.md "Sleep sets").
///  * Output — appends to the globally-ordered print sequence; two
///    outputs never commute (their interleavings are distinct behaviors).
///  * Global — conflicts with everything (fences, held promises,
///    permission transfer; anything whose commutation we cannot argue).
///
/// Two steps are independent iff neither is Global, at most one prints,
/// and their location sets are disjoint. Disjointness is sufficient in
/// PS^na because message insertion, visibility, racy-read/racy-write
/// detection, and timestamp normalization are all per-location: steps at
/// disjoint locations produce order-isomorphic (hence, after
/// normalization, identical) states in either order.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_MEMO_INDEPENDENCE_H
#define PSEQ_MEMO_INDEPENDENCE_H

#include "support/LocSet.h"

namespace pseq {
namespace memo {

/// Over-approximation of one step's observable effect.
struct Footprint {
  LocSet Locs;
  bool Output = false;
  bool Global = false;

  static Footprint global() {
    Footprint F;
    F.Global = true;
    return F;
  }
};

inline bool independent(const Footprint &A, const Footprint &B) {
  if (A.Global || B.Global)
    return false;
  if (A.Output && B.Output)
    return false;
  return A.Locs.intersectWith(B.Locs).isEmpty();
}

inline bool conflicts(const Footprint &A, const Footprint &B) {
  return !independent(A, B);
}

} // namespace memo
} // namespace pseq

#endif // PSEQ_MEMO_INDEPENDENCE_H
