//===- memo/Fingerprint.cpp - Program fingerprints ------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "memo/Fingerprint.h"

#include "lang/Printer.h"
#include "lang/Program.h"

using namespace pseq;
using namespace pseq::memo;

Fp128 pseq::memo::fingerprintProgram(const Program &P) {
  // The printed form carries the declarations (layout, atomicity) and every
  // thread body, so it determines the program's semantics completely.
  std::string Text = printProgram(P);
  Fp128 F = fpSeed(/*Tag=*/0x70726f67 /* "prog" */);
  fpMixBytes(F, Text.data(), Text.size());
  fpMix(F, P.numThreads());
  fpMix(F, P.numLocs());
  return F;
}
