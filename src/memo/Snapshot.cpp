//===- memo/Snapshot.cpp - Durable memo-table snapshots -------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "memo/Snapshot.h"

#include "support/AtomicFile.h"

#include <algorithm>
#include <cstring>

using namespace pseq;
using namespace pseq::memo;

namespace {

constexpr char Magic[8] = {'P', 'S', 'E', 'Q', 'S', 'N', 'A', 'P'};

/// Single-entry cap: a verdict string is a short JSON blob; anything
/// bigger than this is a corrupted length field, not data.
constexpr uint64_t MaxValueBytes = 1u << 24;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian readers over the raw byte string.
struct Reader {
  const std::string &Bytes;
  size_t Pos = 0;

  bool remaining(size_t N) const { return Bytes.size() - Pos >= N; }

  bool readU32(uint32_t &V) {
    if (!remaining(4))
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos++]))
           << (8 * I);
    return true;
  }

  bool readU64(uint64_t &V) {
    if (!remaining(8))
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[Pos++]))
           << (8 * I);
    return true;
  }
};

/// The checksum is a fingerprint chain over everything between the magic
/// and the checksum field itself (version, count, all entries).
uint64_t checksumOf(const std::string &Bytes, size_t Begin, size_t End) {
  Fp128 F = fpSeed(0x70736571'736e6170ULL); // "pseq snap"
  fpMixBytes(F, Bytes.data() + Begin, End - Begin);
  return F.Lo ^ F.Hi;
}

} // namespace

std::string
pseq::memo::encodeSnapshot(const std::vector<MemoContext::StringEntry> &Entries) {
  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putU32(Out, SnapshotVersion);
  putU64(Out, Entries.size());
  for (const MemoContext::StringEntry &E : Entries) {
    putU64(Out, E.Key.Lo);
    putU64(Out, E.Key.Hi);
    putU64(Out, E.Value.size());
    Out.append(E.Value);
  }
  Out.append(8, '\0'); // checksum placeholder... replaced below
  uint64_t Sum = checksumOf(Out, sizeof(Magic), Out.size() - 8);
  Out.resize(Out.size() - 8);
  putU64(Out, Sum);
  return Out;
}

bool pseq::memo::decodeSnapshot(const std::string &Bytes,
                                std::vector<MemoContext::StringEntry> &Entries,
                                std::string &Err) {
  Entries.clear();
  Reader R{Bytes};
  if (!R.remaining(sizeof(Magic)) ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0) {
    Err = "snapshot: bad magic (not a pseq snapshot file)";
    return false;
  }
  R.Pos = sizeof(Magic);
  uint32_t Version = 0;
  if (!R.readU32(Version)) {
    Err = "snapshot: truncated before version field";
    return false;
  }
  if (Version != SnapshotVersion) {
    Err = "snapshot: version mismatch (file has " + std::to_string(Version) +
          ", expected " + std::to_string(SnapshotVersion) + ")";
    return false;
  }
  uint64_t Count = 0;
  if (!R.readU64(Count)) {
    Err = "snapshot: truncated before entry count";
    return false;
  }
  Entries.reserve(static_cast<size_t>(
      std::min<uint64_t>(Count, Bytes.size() / 24 + 1)));
  for (uint64_t I = 0; I != Count; ++I) {
    MemoContext::StringEntry E;
    uint64_t Len = 0;
    if (!R.readU64(E.Key.Lo) || !R.readU64(E.Key.Hi) || !R.readU64(Len)) {
      Err = "snapshot: truncated in entry " + std::to_string(I) + " header";
      Entries.clear();
      return false;
    }
    if (Len > MaxValueBytes || !R.remaining(static_cast<size_t>(Len))) {
      Err = "snapshot: entry " + std::to_string(I) +
            " value length out of range";
      Entries.clear();
      return false;
    }
    E.Value.assign(Bytes, R.Pos, static_cast<size_t>(Len));
    R.Pos += static_cast<size_t>(Len);
    Entries.push_back(std::move(E));
  }
  uint64_t Sum = 0;
  size_t PayloadEnd = R.Pos;
  if (!R.readU64(Sum)) {
    Err = "snapshot: truncated before checksum";
    Entries.clear();
    return false;
  }
  if (R.Pos != Bytes.size()) {
    Err = "snapshot: trailing junk after checksum";
    Entries.clear();
    return false;
  }
  if (Sum != checksumOf(Bytes, sizeof(Magic), PayloadEnd)) {
    Err = "snapshot: checksum mismatch (corrupted payload)";
    Entries.clear();
    return false;
  }
  return true;
}

bool pseq::memo::saveSnapshot(const MemoContext &Ctx, MemoContext::Table T,
                              const std::string &Path, std::string &Err) {
  std::string Bytes = encodeSnapshot(Ctx.exportStrings(T));
  return support::writeFileAtomic(Path, Bytes, &Err);
}

bool pseq::memo::loadSnapshot(MemoContext &Ctx, MemoContext::Table T,
                              const std::string &Path, uint64_t &Loaded,
                              std::string &Err) {
  Loaded = 0;
  std::string Bytes;
  if (!support::readFileAll(Path, Bytes, &Err))
    return false;
  std::vector<MemoContext::StringEntry> Entries;
  if (!decodeSnapshot(Bytes, Entries, Err))
    return false;
  Loaded = Ctx.importStrings(T, Entries);
  return true;
}
