//===- memo/MemoContext.h - Cross-run memoization context ------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared service object behind `SeqConfig::Memo` / `PsConfig::Memo`.
/// Like the telemetry and guard slots it is borrowed, optional, and
/// thread-safe; a null pointer means "memoization off" and every engine
/// falls back to its exact legacy path.
///
/// A MemoContext owns a small number of typed-by-convention tables keyed
/// by 128-bit fingerprints. Values are type-erased `shared_ptr<const
/// void>`; each call site uses `lookupAs<T>` / `insertAs<T>` with the
/// table that it owns the type of (the memo library itself stays
/// independent of the SEQ/PS^na state types, keeping the library layering
/// acyclic). Every value stored must be a pure function of its key —
/// under that contract first-writer-wins inserts are deterministic no
/// matter which thread or run gets there first.
///
/// Tables:
///  * SeqSuffix     — SEQ DFS suffix summaries, keyed by
///                    (machine config fp, canonical state fp, steps left).
///  * PsBehaviors   — whole-exploration PS^na behavior sets, keyed by
///                    (program fp, exploration config fp).
///  * AtlasVerdicts — transformation-atlas template verdicts, keyed by
///                    (source fp, target fp, decision config fp).
///  * ServeVerdicts — validation-server verdict strings, keyed by
///                    (program fp(s), pass config salt). The one table
///                    whose values are plain `std::string` by convention,
///                    which is what makes it snapshottable to disk
///                    (memo/Snapshot.h) and warm across server restarts.
///  * SymVerdicts   — symbolic-backend SymResult values, keyed by
///                    (source/target program fps, tids, domain, universe,
///                    budgets, solver name, config salt); see sym/SymEngine.h.
///
/// Every key-building function mixes in its config's `ConfigSalt`, which
/// consumers (the optimizer pipeline, the atlas) derive from the active
/// pass configuration — so a shared context can never serve a cache entry
/// recorded under a different pipeline setup.
///
/// Stats are plain atomics mirrored into obs counters by the engines
/// (`memo.hits`, `memo.misses`, `memo.pruned_states`); bench binaries
/// read them directly for the `--json` summary block.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_MEMO_MEMOCONTEXT_H
#define PSEQ_MEMO_MEMOCONTEXT_H

#include "memo/Fingerprint.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pseq {
namespace memo {

class MemoContext {
public:
  struct Options {
    /// Enables the fingerprint caches (suffix summaries, behavior sets).
    bool Cache = true;
    /// Enables sleep-set / independence pruning in the explorers.
    bool Prune = true;
    /// Per-table entry cap; inserts beyond it are dropped (lookups still
    /// hit existing entries). Bounds cross-run memory growth.
    size_t MaxEntriesPerTable = 1u << 22;
  };

  enum class Table : unsigned { SeqSuffix = 0, PsBehaviors = 1,
                                AtlasVerdicts = 2, ServeVerdicts = 3,
                                SymVerdicts = 4 };

  MemoContext() : MemoContext(Options()) {}
  explicit MemoContext(const Options &Opts);

  const Options &options() const { return Opts; }

  /// \returns the stored value for \p Key, or null. Does NOT touch the
  /// hit/miss stats — call sites count a hit/miss themselves so that
  /// speculative probes don't skew the rates.
  std::shared_ptr<const void> lookup(Table T, const Fp128 &Key) const;

  /// First-writer-wins insert; \returns the value now stored for \p Key
  /// (the existing one if a racing insert won, \p Value otherwise, or
  /// null if the table is at capacity and \p Key is absent).
  std::shared_ptr<const void> insert(Table T, const Fp128 &Key,
                                     std::shared_ptr<const void> Value);

  template <typename T>
  std::shared_ptr<const T> lookupAs(Table Tab, const Fp128 &Key) const {
    return std::static_pointer_cast<const T>(lookup(Tab, Key));
  }

  template <typename T>
  std::shared_ptr<const T> insertAs(Table Tab, const Fp128 &Key,
                                    std::shared_ptr<const T> Value) {
    return std::static_pointer_cast<const T>(
        insert(Tab, Key, std::static_pointer_cast<const void>(Value)));
  }

  uint64_t entryCount(Table T) const;

  /// Shard-level occupancy for the profiling gauges: total entries, the
  /// largest shard, and how many of the table's shards are non-empty (a
  /// skewed fingerprint distribution shows up as MaxShard far above
  /// Entries / ShardsPerTable). Takes each shard lock briefly; intended
  /// for heartbeat probes and end-of-run snapshots, not hot paths.
  struct ShardStats {
    uint64_t Entries = 0;
    uint64_t MaxShard = 0;
    unsigned NonEmptyShards = 0;
    unsigned NumShards = 0;
  };
  ShardStats shardStats(Table T) const;

  /// One exported entry of a string-valued table.
  struct StringEntry {
    Fp128 Key;
    std::string Value;
  };

  /// Dumps every entry of \p T, which must hold `std::string` values by
  /// convention (today: ServeVerdicts only — the other tables store
  /// engine-internal types that are not serializable). Entries come out
  /// sorted by key so a snapshot of the same cache content is
  /// byte-identical regardless of insert order.
  std::vector<StringEntry> exportStrings(Table T) const;

  /// Replays exported entries back into \p T via the normal first-writer-
  /// wins insert path (a live entry beats a snapshot entry). \returns the
  /// number of entries actually inserted.
  uint64_t importStrings(Table T, const std::vector<StringEntry> &Entries);

  // Stats — bumped by the engines, read by bench/test reporting.
  void noteHit(uint64_t N = 1) { Hits.fetch_add(N, std::memory_order_relaxed); }
  void noteMiss(uint64_t N = 1) {
    Misses.fetch_add(N, std::memory_order_relaxed);
  }
  void notePruned(uint64_t N = 1) {
    Pruned.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t pruned() const { return Pruned.load(std::memory_order_relaxed); }

private:
  static constexpr unsigned NumTables = 5;
  static constexpr unsigned ShardsPerTable = 16;

  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<Fp128, std::shared_ptr<const void>, Fp128Hash> Map;
  };

  const Shard &shardFor(Table T, const Fp128 &Key) const;

  Options Opts;
  std::unique_ptr<Shard[]> Shards; // NumTables * ShardsPerTable
  std::atomic<uint64_t> Sizes[NumTables] = {};
  std::atomic<uint64_t> Hits{0}, Misses{0}, Pruned{0};
};

} // namespace memo
} // namespace pseq

#endif // PSEQ_MEMO_MEMOCONTEXT_H
