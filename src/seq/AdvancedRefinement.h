//===- seq/AdvancedRefinement.h - Fig 2 / Def 3.3 checker -------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advanced ("weak") behavioral refinement σ_tgt ⊑w σ_src of §3:
/// behavioral refinement up to a commitment set R (Fig. 2), quantified over
/// all oracles (Def 3.2, Def 3.3). It extends the simple notion with
///
///  * late UB (beh-failure): the source may reach ⊥ *after* the target,
///    provided its path to ⊥ contains no acquire reads and makes no
///    assumptions on the environment (holds for every oracle);
///  * commitment sets (beh-rel-write): release labels may disagree on
///    written-locations sets and released memories as long as the source
///    later writes the disagreeing locations (before terminating or
///    acquiring).
///
/// The ∀-oracle quantification is decided as an AND/OR game: along
/// unmatched source suffixes the adversary resolves every read value,
/// choice, and permission loss; the source must reach its goal (⊥, or
/// fulfilled commitments) on every adversary path. Oracle progress
/// guarantees writes of arbitrary values are always enabled; monotonicity
/// makes the matched prefix free (source labels ⊒ target labels are allowed
/// whenever the target's are).
///
/// Proposition 3.4 (⊑ implies ⊑w) is a property test over the corpus.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_ADVANCEDREFINEMENT_H
#define PSEQ_SEQ_ADVANCEDREFINEMENT_H

#include "seq/SimpleRefinement.h"

namespace pseq {

/// Decides σ_tgt ⊑w σ_src (Def 3.3) by exhaustive bounded enumeration.
RefinementResult checkAdvancedRefinement(const Program &SrcP, unsigned SrcTid,
                                         const Program &TgtP, unsigned TgtTid,
                                         SeqConfig Cfg = SeqConfig());

/// Convenience overload: single-thread programs (thread 0 vs thread 0).
RefinementResult checkAdvancedRefinement(const Program &SrcP,
                                         const Program &TgtP,
                                         SeqConfig Cfg = SeqConfig());

} // namespace pseq

#endif // PSEQ_SEQ_ADVANCEDREFINEMENT_H
