//===- seq/OracleGame.h - The ∀-oracle adversary game -----------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Def 3.3 quantifies refinement over all oracles (Def 3.2). In unmatched
/// source suffixes — the beh-failure and beh-partial rules of Fig. 2 —
/// this reduces to an adversary game: the oracle resolves every relaxed
/// read value, choice, and permission loss; the source must reach its goal
/// on every resolution, taking no acquire steps. Oracle *progress*
/// guarantees writes of arbitrary values stay enabled; *monotonicity*
/// makes ⊒-labels free along matched prefixes.
///
/// Shared by the advanced-refinement matcher (seq/AdvancedRefinement.cpp)
/// and the Fig. 6 simulation checker (seq/Simulation.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_ORACLEGAME_H
#define PSEQ_SEQ_ORACLEGAME_H

#include "seq/SeqMachine.h"

#include <unordered_map>

namespace pseq {

/// The acquire-free adversary game over one source machine.
class OracleGame {
  const SeqMachine &SrcM;
  unsigned NodeBudget;
  bool BudgetHit = false;

  struct Key {
    uint64_t Remaining;
    SeqState S;
    bool operator==(const Key &O) const {
      return Remaining == O.Remaining && S == O.S;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };
  enum : char { InProgress = 0, True = 1, False = 2 };
  std::unordered_map<Key, char, KeyHash> Memo;

  static constexpr uint64_t BottomGoal = ~uint64_t(0);

  bool run(uint64_t Remaining, LocSet Collected, const SeqState &S);
  bool runUncached(uint64_t Remaining, const SeqState &S);
  bool spendNode();

public:
  OracleGame(const SeqMachine &SrcM, unsigned NodeBudget)
      : SrcM(SrcM), NodeBudget(NodeBudget) {}

  /// beh-failure: on every adversary path, the source reaches ⊥ without
  /// executing an acquire.
  bool robustBottom(const SeqState &S) {
    return run(BottomGoal, LocSet::empty(), S);
  }

  /// beh-partial: on every adversary path, the source (acquire-free)
  /// passes through a running state whose written-locations — current F
  /// plus release-label F's collected along the way — cover \p Need, or
  /// reaches ⊥.
  bool robustFulfill(const SeqState &S, LocSet Need) {
    return run(Need.raw(), LocSet::empty(), S);
  }

  bool budgetHit() const { return BudgetHit; }
};

} // namespace pseq

#endif // PSEQ_SEQ_ORACLEGAME_H
