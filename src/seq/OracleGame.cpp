//===- seq/OracleGame.cpp - The ∀-oracle adversary game -------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/OracleGame.h"

#include "support/Hashing.h"

using namespace pseq;

size_t OracleGame::KeyHash::operator()(const Key &K) const {
  return static_cast<size_t>(hashCombine(K.Remaining, K.S.hash()));
}

bool OracleGame::spendNode() {
  if (NodeBudget == 0) {
    BudgetHit = true;
    return false;
  }
  --NodeBudget;
  return true;
}

bool OracleGame::run(uint64_t Remaining, LocSet Collected,
                     const SeqState &S) {
  uint64_t Rem = Remaining == BottomGoal ? BottomGoal
                                         : (Remaining & ~Collected.raw());
  Key K{Rem, S};
  auto [It, Inserted] = Memo.try_emplace(K, InProgress);
  if (!Inserted)
    return It->second == True; // cycles never achieve the goal
  bool Result = runUncached(Rem, S);
  Memo[K] = Result ? True : False;
  return Result;
}

bool OracleGame::runUncached(uint64_t Remaining, const SeqState &S) {
  if (!spendNode())
    return false;

  // ⊥ discharges every goal (the behavior ends with beh-failure).
  if (S.isBottom())
    return true;

  bool IsBottomGoal = Remaining == BottomGoal;
  if (!IsBottomGoal && !S.isTerminated() &&
      LocSet::fromRaw(Remaining).isSubsetOf(S.Written))
    return true; // stop here: prt(F) with commitments fulfilled

  if (S.isTerminated())
    return false; // trm does not witness prt; the ⊥ goal is unreachable

  ProgState::Pending Pend = SrcM.pending(S);

  // Acquire operations are forbidden in unmatched suffixes.
  if ((Pend.K == ProgState::Pending::Kind::Read &&
       Pend.RM == ReadMode::ACQ) ||
      (Pend.K == ProgState::Pending::Kind::Fence &&
       Pend.FM == FenceMode::ACQ) ||
      (Pend.K == ProgState::Pending::Kind::Rmw && Pend.RM == ReadMode::ACQ))
    return false;

  // Every adversary branch must succeed.
  std::vector<SeqTransition> Succs = SrcM.successors(S);
  if (Succs.empty())
    return false;
  for (const SeqTransition &T : Succs) {
    LocSet Collected;
    for (const SeqEvent &E : T.Labels)
      if (E.isRelease())
        Collected = Collected.unionWith(E.F);
    if (!run(Remaining, Collected, T.Next))
      return false;
  }
  return true;
}
