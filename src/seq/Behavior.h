//===- seq/Behavior.h - SEQ behaviors ---------------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behaviors of SEQ (Def 2.1): pairs ⟨tr, r⟩ of a finite trace of labels
/// and a result r ∈ { trm(v, F, M), prt(F), ⊥ }, together with the simple
/// behavioral-refinement order ⊑ on behaviors (Def 2.3(3)).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_BEHAVIOR_H
#define PSEQ_SEQ_BEHAVIOR_H

#include "seq/SeqEvent.h"

#include <vector>

namespace pseq {

/// One behavior ⟨tr, r⟩ of a SEQ state.
struct SeqBehavior {
  enum class End {
    Term,    ///< trm(v, F, M): normal termination
    Partial, ///< prt(F): ongoing execution
    Bottom   ///< ⊥: erroneous termination (UB)
  };

  std::vector<SeqEvent> Trace;
  End Kind = End::Partial;
  Value RetVal;           ///< Term only
  LocSet F;               ///< Term and Partial
  std::vector<Value> Mem; ///< Term only (full memory vector)

  /// The simple refinement ⟨tr_tgt, r_tgt⟩ ⊑ ⟨tr_src, r_src⟩ of Def 2.3(3).
  /// Memory is compared pointwise over \p Universe only (locations outside
  /// the footprint are invariant under both programs).
  bool refines(const SeqBehavior &Src, LocSet Universe) const;

  bool operator==(const SeqBehavior &O) const;
  uint64_t hash() const;
  std::string str(const std::vector<std::string> *LocNames = nullptr) const;

  /// A hash over exactly the components refines() requires to be *equal*
  /// (kind, trace length, and per label: kind, location, and — where the
  /// label rules demand equality — value, permission sets, and gained
  /// values). Any target refining a non-⊥ source shares the source's key,
  /// so a key-indexed source set answers covers() without a linear scan.
  /// ⊥-ended sources match by trace prefix and have no such key.
  uint64_t refinementKey() const;
};

/// Strict total order on behaviors, consistent with operator== (field-wise
/// lexicographic). The enumerator sorts every BehaviorSet canonically with
/// it so results are identical no matter how many workers explored.
bool behaviorLess(const SeqBehavior &A, const SeqBehavior &B);

} // namespace pseq

#endif // PSEQ_SEQ_BEHAVIOR_H
