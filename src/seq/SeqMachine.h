//===- seq/SeqMachine.h - Transitions of SEQ --------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition relation of the SEQ machine (Fig. 1), made executable by
/// bounding the two sources of infinite branching:
///
///  * read values (relaxed/acquire reads and choices) range over a finite
///    ValueDomain plus undef;
///  * permission gains/losses and acquired-value maps range over a finite
///    "universe" of non-atomic locations — the footprint of the programs
///    under comparison (untouched locations are invariant, so restricting
///    the universe preserves refinement verdicts; see DESIGN.md).
///
/// Extensions beyond the paper's figure: acquire/release fences (gain/lose
/// permissions like acquire reads / release writes), atomic RMWs (a read
/// part followed by a write part, emitting up to two labels in a single
/// transition), and print system calls.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_SEQMACHINE_H
#define PSEQ_SEQ_SEQMACHINE_H

#include "exec/ThreadPool.h"
#include "seq/SeqEvent.h"
#include "seq/SeqState.h"
#include "support/ValueDomain.h"

namespace pseq {

namespace obs {
struct Telemetry;
} // namespace obs

namespace guard {
class ResourceGuard;
} // namespace guard

namespace memo {
class MemoContext;
} // namespace memo

/// Shared bounding knobs of the SEQ-side checkers.
struct SeqConfig {
  ValueDomain Domain = ValueDomain::ternary();
  LocSet Universe; ///< non-atomic locations subject to P/M enumeration
  unsigned StepBudget = 48;      ///< max transitions per behavior
  unsigned MaxBehaviors = 200000; ///< safety valve for the enumerator
  /// Worker count for the enumerator and refinement checkers: 1 runs
  /// everything on the calling thread (bit-identical results either way;
  /// see DESIGN.md "Parallel execution"), 0 uses all hardware threads.
  /// Defaults to the PSEQ_THREADS environment variable (unset = 1).
  unsigned NumThreads = exec::defaultNumThreads();
  /// Run the static race analyzer over the source program during
  /// translation validation and record its verdict in the result
  /// (opt/Validator.h). The SEQ engines themselves ignore this flag;
  /// --no-lint in the drivers clears it.
  bool Lint = true;
  /// Optional telemetry (borrowed; see obs/Telemetry.h). Null — the
  /// default — keeps every engine on its uninstrumented fast path.
  obs::Telemetry *Telem = nullptr;
  /// Optional resource guard (borrowed; see guard/Guard.h): deadline,
  /// memory budget, cancellation. Null — the default — means ungoverned.
  /// Shared by every worker of the run; a trip surfaces as a Deadline /
  /// MemBudget / Cancelled truncation cause in the bounded verdict.
  guard::ResourceGuard *Guard = nullptr;
  /// Optional memoization context (borrowed; see memo/MemoContext.h):
  /// canonical-state suffix caching for the enumerator, shared across the
  /// refinement checkers' initial-state sweep and across whole runs. Null
  /// — the default — keeps the exact uncached paths.
  memo::MemoContext *Memo = nullptr;
  /// Cache-partitioning salt mixed into every memo fingerprint built from
  /// this config. Consumers that share one MemoContext across different
  /// run setups (the optimizer pipeline encodes its active pass
  /// configuration here, the atlas its decision config) set it to a hash
  /// of that setup so entries recorded under one configuration can never
  /// be served to another. 0 — the default — is a valid shared partition.
  uint64_t ConfigSalt = 0;
};

/// One SEQ transition: zero, one, or (for RMWs) two trace labels, plus the
/// successor state.
struct SeqTransition {
  std::vector<SeqEvent> Labels;
  SeqState Next;
};

/// The SEQ transition relation for one thread of one program.
class SeqMachine {
  const Program &Prog;
  unsigned Tid;
  SeqConfig Cfg;

public:
  SeqMachine(const Program &Prog, unsigned Tid, SeqConfig Cfg)
      : Prog(Prog), Tid(Tid), Cfg(std::move(Cfg)) {}

  const Program &program() const { return Prog; }
  unsigned tid() const { return Tid; }
  const SeqConfig &config() const { return Cfg; }

  /// \returns ⟨σ_init, P, F, M⟩ for thread Tid.
  SeqState initial(LocSet Perm, LocSet Written,
                   std::vector<Value> Mem) const;

  /// Enumerates every transition from \p S (empty for terminal states).
  std::vector<SeqTransition> successors(const SeqState &S) const;

  /// The pending program action of \p S (valid for Running states); used by
  /// the refinement matcher to group adversary branches.
  ProgState::Pending pending(const SeqState &S) const {
    return S.Prog.pending(Prog, Tid);
  }

  /// Values a read/choice may resolve to: Domain values, plus undef when
  /// \p IncludeUndef.
  std::vector<Value> readValues(bool IncludeUndef) const;

  /// All partial memories over \p Dom with values from Domain ∪ {undef}.
  std::vector<PartialMem> partialMems(LocSet Dom) const;

private:
  /// successors() minus the telemetry accounting.
  std::vector<SeqTransition> successorsUncounted(const SeqState &S) const;
};

} // namespace pseq

#endif // PSEQ_SEQ_SEQMACHINE_H
