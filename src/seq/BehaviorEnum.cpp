//===- seq/BehaviorEnum.cpp - Exhaustive behavior enumeration -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/BehaviorEnum.h"

#include "exec/ThreadPool.h"
#include "exec/WorkDeque.h"
#include "guard/Guard.h"
#include "memo/MemoContext.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <unordered_set>

using namespace pseq;

void BehaviorSet::buildIndex() const {
  RefineIndex.reserve(All.size());
  for (uint32_t I = 0, E = static_cast<uint32_t>(All.size()); I != E; ++I) {
    if (All[I].Kind == SeqBehavior::End::Bottom)
      BottomSources.push_back(I);
    else
      RefineIndex.emplace(All[I].refinementKey(), I);
  }
  Indexed = true;
}

bool BehaviorSet::covers(const SeqBehavior &Tgt, LocSet Universe) const {
  if (!Indexed)
    buildIndex();
  // ⟨tr_tgt · tr, r⟩ ⊑ ⟨tr_src, ⊥⟩ matches by trace *prefix*, so ⊥-ended
  // sources share no key with their targets; they stay in a linear side
  // list (short in practice — one per distinct UB prefix).
  for (uint32_t I : BottomSources)
    if (Tgt.refines(All[I], Universe))
      return true;
  // Every non-⊥ source a target can refine agrees with it on all the
  // equality-pinned label components, i.e. shares its refinement key.
  auto [B, E] = RefineIndex.equal_range(Tgt.refinementKey());
  for (auto It = B; It != E; ++It)
    if (Tgt.refines(All[It->second], Universe))
      return true;
  return false;
}

namespace {

struct BehaviorHash {
  size_t operator()(const SeqBehavior &B) const {
    return static_cast<size_t>(B.hash());
  }
};

/// Clock for the timing histograms (`.us`-suffixed keys, which the
/// determinism checks skip).
uint64_t nowMonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Run-local tallies: plain fields so the hot path costs one increment each
/// whether or not telemetry is attached; folded into the registry once per
/// enumerateBehaviors call.
struct EnumTallies {
  uint64_t Expanded = 0;
  uint64_t Emitted = 0;
  uint64_t DedupHits = 0;
  uint64_t TruncStep = 0;
  uint64_t TruncCap = 0;
  unsigned MaxDepth = 0;
  // Memoization (zero unless a MemoContext is attached):
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  uint64_t Pruned = 0; ///< states not re-expanded thanks to suffix hits
};

/// One attempted emission in a memoized subtree, relative to the subtree
/// root: the trace suffix below the root plus the behavior payload.
/// AtBudget marks prt-nodes that also charged the step-budget truncation.
struct SeqSuffixAttempt {
  std::vector<SeqEvent> Suffix;
  SeqBehavior::End Kind = SeqBehavior::End::Partial;
  Value RetVal;           // Term only
  LocSet F;               // Term and Partial
  std::vector<Value> Mem; // Term only
  bool AtBudget = false;  // Partial with StepsLeft == 0
};

/// A completed subtree summary, keyed by (machine fingerprint, canonical
/// state fingerprint, steps of budget left). Replaying the attempt stream
/// through emit() in DFS order reproduces the unmemoized traversal's
/// emissions exactly — Emitted, DedupHits, TruncStep, TruncCap, and the
/// cap ordering included — because emission attempts are a pure function
/// of (machine, state, budget), and dedup/cap outcomes depend only on the
/// emissions that came before. Subtrees interrupted by a tripped guard
/// are never recorded (their streams would be incomplete).
struct SeqSuffixRec {
  std::vector<SeqSuffixAttempt> Attempts;
  unsigned RelMaxDepth = 0;    ///< max steps below the root over attempts
  uint64_t SubtreeStates = 0;  ///< nodes the subtree expanded (incl. virtual)
};

/// A frontier subtree handed to a pool worker: explore \p State (reached
/// via \p Trace) with \p StepsLeft transitions of budget remaining.
struct EnumTask {
  SeqState State;
  std::vector<SeqEvent> Trace;
  unsigned StepsLeft = 0;
};

/// Explicit-stack DFS over the SEQ transition tree, emitting one behavior
/// per visited node (Def 2.1). Owns a local Seen set, so several
/// enumerators can run concurrently without sharing anything but the
/// optional approximate unique-behavior counter.
class DfsEnumerator {
  const SeqMachine &M;
  /// Cross-worker count of unique emissions, checked against MaxBehaviors.
  /// Null (the sequential / merge enumerator) uses the exact local
  /// Seen.size() instead.
  std::atomic<uint64_t> *SharedUnique;
  guard::ResourceGuard *Guard;
  /// Suffix memo (null = off): set only when the config carries a context
  /// with caching enabled.
  memo::MemoContext *Memo = nullptr;
  memo::Fp128 MachineFp;
  BehaviorSet Result;
  std::unordered_set<SeqBehavior, BehaviorHash> Seen;
  std::vector<SeqEvent> Trace;
  EnumTallies T;

  /// One DFS level: the successor list of some expanded node, the next
  /// child to explore, and how many labels the *previous* child pushed
  /// (undone when control returns to this level).
  struct Frame {
    std::vector<SeqTransition> Succs;
    size_t Idx = 0;
    size_t PrevPushed = 0;
    unsigned StepsLeft = 0;
  };

  /// An in-progress SeqSuffixRec for the node at trace length BaseLen,
  /// aligned 1:1 with explore()'s frame stack (plus a transient frame
  /// around leaf visits). Every emission attempt below the node lands in
  /// every active frame; a frame past its attempt cap overflows and is
  /// discarded at exitNode().
  struct RecFrame {
    memo::Fp128 Key;
    size_t BaseLen = 0;
    unsigned StepsAtNode = 0;
    uint64_t StartVirtual = 0;
    SeqSuffixRec Rec;
    bool Overflow = false;
  };
  std::vector<RecFrame> RecStack;
  /// Caps recording work: attempts stored per frame, and total attempt
  /// appends per enumeration (suffix copies are O(depth) each).
  static constexpr size_t MaxAttemptsPerFrame = 512;
  size_t AppendBudget = size_t(1) << 17;

public:
  explicit DfsEnumerator(const SeqMachine &M,
                         std::atomic<uint64_t> *SharedUnique = nullptr)
      : M(M), SharedUnique(SharedUnique), Guard(M.config().Guard) {
    if (memo::MemoContext *MC = M.config().Memo; MC && MC->options().Cache) {
      Memo = MC;
      MachineFp = machineFingerprint();
    }
  }

  EnumTallies &tallies() { return T; }
  BehaviorSet &result() { return Result; }
  BehaviorSet take() { return std::move(Result); }

private:
  /// Everything the transition relation depends on: the program text, the
  /// thread, the value domain, and the universe. StepBudget is excluded —
  /// the remaining budget is part of each suffix key — and MaxBehaviors /
  /// NumThreads are excluded because attempt streams are pre-cap and
  /// scheduling-independent.
  memo::Fp128 machineFingerprint() const {
    memo::Fp128 F = memo::fpSeed(/*Tag=*/0x7365716d /* "seqm" */);
    F = memo::fpCombine(F, memo::fingerprintProgram(M.program()));
    memo::fpMix(F, M.tid());
    const SeqConfig &Cfg = M.config();
    std::vector<int64_t> Vals = Cfg.Domain.values();
    memo::fpMix(F, Vals.size());
    for (int64_t V : Vals)
      memo::fpMix(F, static_cast<uint64_t>(V));
    memo::fpMix(F, Cfg.Universe.raw());
    // Partition the cache by the caller's run configuration (e.g. the
    // pipeline's active pass set) so a shared context never replays a
    // suffix recorded under a different setup.
    memo::fpMix(F, Cfg.ConfigSalt);
    return F;
  }

  /// SEQ states are canonical by construction (dense memory vector, bitset
  /// P/F, structural σ), so hashing the components is a canonical-state
  /// fingerprint directly.
  memo::Fp128 stateKey(const SeqState &S, unsigned StepsLeft) const {
    memo::Fp128 K = MachineFp;
    memo::fpMix(K, S.Prog.hash());
    memo::fpMix(K, S.Perm.raw());
    memo::fpMix(K, S.Written.raw());
    memo::fpMix(K, S.Mem.size());
    for (const Value &V : S.Mem)
      memo::fpMix(K, V.hash());
    memo::fpMix(K, StepsLeft);
    return K;
  }

  /// Appends one emission attempt (real or replayed) to every active
  /// recording frame. \p StepsLeftNow is the budget at the node that
  /// produced the attempt (for replayed attempts, at the *hit* node — the
  /// depth refinement below it is folded in separately by replay()).
  void noteVisit(const SeqBehavior &B, bool AtBudget, unsigned StepsLeftNow) {
    for (RecFrame &RF : RecStack) {
      if (RF.Overflow)
        continue;
      if (RF.Rec.Attempts.size() >= MaxAttemptsPerFrame || AppendBudget == 0) {
        RF.Overflow = true;
        RF.Rec.Attempts.clear();
        RF.Rec.Attempts.shrink_to_fit();
        continue;
      }
      --AppendBudget;
      SeqSuffixAttempt A;
      A.Suffix.assign(B.Trace.begin() + RF.BaseLen, B.Trace.end());
      A.Kind = B.Kind;
      A.RetVal = B.RetVal;
      A.F = B.F;
      A.Mem = B.Mem;
      A.AtBudget = AtBudget;
      RF.Rec.RelMaxDepth =
          std::max(RF.Rec.RelMaxDepth, RF.StepsAtNode - StepsLeftNow);
      RF.Rec.Attempts.push_back(std::move(A));
    }
  }

  /// Replays a cached subtree at the current trace position: one guard
  /// checkpoint for the hit node (the replayed nodes poll nothing — a
  /// replay is finite, so guarded runs stay bounded), then the attempt
  /// stream through emit(), reproducing the unmemoized emissions exactly.
  void replay(const SeqSuffixRec &Rec, unsigned StepsLeft) {
    if (Guard) {
      TruncationCause C = Guard->checkpoint();
      if (C != TruncationCause::None) {
        noteTruncation(Result.Cause, C);
        return;
      }
    }
    ++T.MemoHits;
    T.Pruned += Rec.SubtreeStates;
    T.MaxDepth = std::max(
        T.MaxDepth, M.config().StepBudget - StepsLeft + Rec.RelMaxDepth);
    for (RecFrame &RF : RecStack)
      if (!RF.Overflow)
        RF.Rec.RelMaxDepth =
            std::max(RF.Rec.RelMaxDepth,
                     (RF.StepsAtNode - StepsLeft) + Rec.RelMaxDepth);
    for (const SeqSuffixAttempt &A : Rec.Attempts) {
      SeqBehavior B;
      B.Trace = Trace;
      B.Trace.insert(B.Trace.end(), A.Suffix.begin(), A.Suffix.end());
      B.Kind = A.Kind;
      B.RetVal = A.RetVal;
      B.F = A.F;
      B.Mem = A.Mem;
      noteVisit(B, A.AtBudget, StepsLeft);
      emit(std::move(B));
      if (A.AtBudget) {
        ++T.TruncStep;
        noteTruncation(Result.Cause, TruncationCause::StepBudget);
      }
    }
  }

  /// Visits a node through the memo layer: answers from the suffix cache
  /// when possible, otherwise opens a recording frame around the real
  /// visit. \returns whether the node's successors should be explored;
  /// exactly then a frame stays open and exitNode() must run once the
  /// subtree completes.
  bool enterNode(const SeqState &S, unsigned StepsLeft) {
    if (!Memo)
      return visitNode(S, StepsLeft);
    memo::Fp128 Key = stateKey(S, StepsLeft);
    if (std::shared_ptr<const SeqSuffixRec> Rec = Memo->lookupAs<SeqSuffixRec>(
            memo::MemoContext::Table::SeqSuffix, Key)) {
      replay(*Rec, StepsLeft);
      return false;
    }
    ++T.MemoMisses;
    RecStack.push_back(
        RecFrame{Key, Trace.size(), StepsLeft, T.Expanded + T.Pruned, {}, false});
    bool Expand = visitNode(S, StepsLeft);
    if (!Expand)
      exitNode();
    return Expand;
  }

  /// Closes the innermost recording frame, publishing its summary unless
  /// it overflowed or a guard stopped the run mid-subtree (the stream
  /// would be incomplete, and guard causes are timing-dependent anyway).
  void exitNode() {
    if (!Memo)
      return;
    RecFrame RF = std::move(RecStack.back());
    RecStack.pop_back();
    RF.Rec.SubtreeStates = (T.Expanded + T.Pruned) - RF.StartVirtual;
    if (RF.Overflow || (Guard && Guard->stopped()))
      return;
    Memo->insertAs<SeqSuffixRec>(
        memo::MemoContext::Table::SeqSuffix, RF.Key,
        std::make_shared<const SeqSuffixRec>(std::move(RF.Rec)));
  }

public:

  void emit(SeqBehavior B) {
    // Dedup *before* the cap check: a behavior already in the set is a
    // dedup hit, never a capped emission. (Checking the cap first made it
    // fire early by however many duplicates arrived once the set was
    // full, and misattributed the truncation.)
    if (Seen.find(B) != Seen.end()) {
      ++T.DedupHits;
      return;
    }
    uint64_t Unique = SharedUnique
                          ? SharedUnique->load(std::memory_order_relaxed)
                          : Seen.size();
    if (Unique >= M.config().MaxBehaviors) {
      ++T.TruncCap;
      noteTruncation(Result.Cause, TruncationCause::BehaviorCap);
      return;
    }
    if (SharedUnique)
      SharedUnique->fetch_add(1, std::memory_order_relaxed);
    ++T.Emitted;
    if (Guard)
      // Retained twice (Seen + All); approximate both copies.
      Guard->charge(2 * (sizeof(SeqBehavior) +
                         B.Trace.size() * sizeof(SeqEvent) +
                         B.Mem.size() * sizeof(Value)));
    Seen.insert(B);
    Result.All.push_back(std::move(B));
  }

  /// Emits \p S's behavior under the current trace. \returns true when the
  /// node's successors should be explored.
  bool visitNode(const SeqState &S, unsigned StepsLeft) {
    if (Guard) {
      // One checkpoint per expanded node: a tripped guard stops the DFS
      // from growing (frames unwind without emitting or expanding).
      TruncationCause C = Guard->checkpoint();
      if (C != TruncationCause::None) {
        noteTruncation(Result.Cause, C);
        return false;
      }
    }
    ++T.Expanded;
    T.MaxDepth = std::max(T.MaxDepth, M.config().StepBudget - StepsLeft);
    // Every reachable state generates ⟨tr, prt(F)⟩ — including states that
    // could also terminate (Def 2.1's "otherwise" applies only to
    // non-terminal states, so skip those).
    if (S.isBottom()) {
      SeqBehavior B;
      B.Trace = Trace;
      B.Kind = SeqBehavior::End::Bottom;
      noteVisit(B, /*AtBudget=*/false, StepsLeft);
      emit(std::move(B));
      return false;
    }
    if (S.isTerminated()) {
      SeqBehavior B;
      B.Trace = Trace;
      B.Kind = SeqBehavior::End::Term;
      B.RetVal = S.Prog.retVal();
      B.F = S.Written;
      B.Mem = S.Mem;
      noteVisit(B, /*AtBudget=*/false, StepsLeft);
      emit(std::move(B));
      return false;
    }
    SeqBehavior B;
    B.Trace = Trace;
    B.Kind = SeqBehavior::End::Partial;
    B.F = S.Written;
    bool AtBudget = StepsLeft == 0;
    noteVisit(B, AtBudget, StepsLeft);
    emit(std::move(B));
    if (AtBudget) {
      ++T.TruncStep;
      noteTruncation(Result.Cause, TruncationCause::StepBudget);
      return false;
    }
    return true;
  }

  /// Task-generation front-end: visit \p S under an explicit trace.
  bool visitWithTrace(const SeqState &S, const std::vector<SeqEvent> &Tr,
                      unsigned StepsLeft) {
    Trace = Tr;
    return visitNode(S, StepsLeft);
  }

  /// DFS from \p Start, visiting nodes in exactly the order the recursive
  /// formulation would (parent, then children left to right), on an
  /// explicit frame stack so deep trees cannot exhaust the call stack.
  void explore(const SeqState &Start, std::vector<SeqEvent> StartTrace,
               unsigned StepsLeft) {
    Trace = std::move(StartTrace);
    if (!enterNode(Start, StepsLeft))
      return;
    std::vector<Frame> Stack;
    Stack.push_back(Frame{M.successors(Start), 0, 0, StepsLeft});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      Trace.resize(Trace.size() - F.PrevPushed);
      F.PrevPushed = 0;
      if (F.Idx == F.Succs.size()) {
        exitNode(); // each stack frame owns one recording frame
        Stack.pop_back();
        continue;
      }
      SeqTransition &Tr = F.Succs[F.Idx++];
      F.PrevPushed = Tr.Labels.size();
      for (SeqEvent &E : Tr.Labels)
        Trace.push_back(std::move(E));
      unsigned Left = F.StepsLeft - 1;
      if (enterNode(Tr.Next, Left)) {
        // Compute successors before push_back: growing the stack
        // invalidates F and Tr.
        std::vector<SeqTransition> Succs = M.successors(Tr.Next);
        Stack.push_back(Frame{std::move(Succs), 0, 0, Left});
      }
    }
  }

  /// Task-order merge step: folds a worker's subtree result into this
  /// enumerator — global dedup through emit(), first-seen truncation cause.
  void absorb(BehaviorSet &&S) {
    noteTruncation(Result.Cause, S.Cause);
    for (SeqBehavior &B : S.All)
      emit(std::move(B));
  }
};

void foldTallies(obs::Telemetry *Telem, const EnumTallies &T) {
  if (!Telem)
    return;
  obs::ScopedTally Tally(&Telem->Counters);
  Tally.slot("seq.enum.runs") += 1;
  Tally.slot("seq.enum.states_expanded") += T.Expanded;
  Tally.slot("seq.enum.behaviors_emitted") += T.Emitted;
  Tally.slot("seq.enum.dedup_hits") += T.DedupHits;
  Tally.slot("seq.enum.trunc_step_budget") += T.TruncStep;
  Tally.slot("seq.enum.trunc_behavior_cap") += T.TruncCap;
  if (T.MemoHits || T.MemoMisses || T.Pruned) {
    Tally.slot("memo.hits") += T.MemoHits;
    Tally.slot("memo.misses") += T.MemoMisses;
    Tally.slot("memo.pruned_states") += T.Pruned;
  }
  Telem->Counters.maxGauge("seq.enum.max_depth", T.MaxDepth);
}

/// Per-worker arenas for the parallel paths: each worker gets a machine
/// copy whose telemetry (if any) is a private registry, folded into the
/// orchestrator's registry after the pool joins.
struct WorkerArenas {
  std::vector<std::unique_ptr<obs::Telemetry>> Telems;
  std::vector<std::unique_ptr<SeqMachine>> Machines;

  WorkerArenas(const SeqMachine &M, unsigned N) {
    for (unsigned W = 0; W != N; ++W) {
      SeqConfig WCfg = M.config();
      if (WCfg.Telem) {
        Telems.push_back(std::make_unique<obs::Telemetry>());
        // Workers share the orchestrator's span recorder (per-thread lanes
        // internally); counters/histograms stay private and merge below.
        Telems.back()->Spans = WCfg.Telem->Spans;
        WCfg.Telem = Telems.back().get();
      }
      Machines.push_back(
          std::make_unique<SeqMachine>(M.program(), M.tid(), std::move(WCfg)));
    }
  }

  void mergeInto(obs::Telemetry *Telem) {
    if (!Telem)
      return;
    for (const std::unique_ptr<obs::Telemetry> &WT : Telems)
      Telem->mergeCounters(WT->Counters);
  }
};

BehaviorSet enumerateSequential(const SeqMachine &M, const SeqState &Init,
                                EnumTallies &Out) {
  DfsEnumerator E(M);
  E.explore(Init, {}, M.config().StepBudget);
  Out = E.tallies();
  return E.take();
}

BehaviorSet enumerateParallel(const SeqMachine &M, const SeqState &Init,
                              unsigned N, EnumTallies &Out) {
  const SeqConfig &Cfg = M.config();
  DfsEnumerator Root(M);

  // Phase 1 (orchestrator): BFS from Init until the frontier holds enough
  // independent subtrees to ride out uneven subtree sizes. Popped nodes are
  // emitted into the root result here; the frontier remainder becomes the
  // task list, in BFS order.
  std::deque<EnumTask> Queue;
  Queue.push_back(EnumTask{Init, {}, Cfg.StepBudget});
  const size_t Target = static_cast<size_t>(N) * 4;
  while (!Queue.empty() && Queue.size() < Target) {
    EnumTask Tk = std::move(Queue.front());
    Queue.pop_front();
    if (!Root.visitWithTrace(Tk.State, Tk.Trace, Tk.StepsLeft))
      continue;
    for (SeqTransition &Tr : M.successors(Tk.State)) {
      EnumTask Child;
      Child.Trace = Tk.Trace;
      for (SeqEvent &E : Tr.Labels)
        Child.Trace.push_back(std::move(E));
      Child.State = std::move(Tr.Next);
      Child.StepsLeft = Tk.StepsLeft - 1;
      Queue.push_back(std::move(Child));
    }
  }
  std::vector<EnumTask> Tasks(std::make_move_iterator(Queue.begin()),
                              std::make_move_iterator(Queue.end()));

  // Phase 2 (pool): workers drain the task deques (own shard LIFO, steal
  // FIFO), each subtree explored by a private enumerator against a private
  // machine. Results land in per-task slots — scheduling decides only *who*
  // fills a slot, never what the merge sees. MaxBehaviors is enforced
  // approximately here, via a shared count of unique-per-worker emissions,
  // and exactly at merge below.
  std::atomic<uint64_t> UniqueCount{Root.tallies().Emitted};
  WorkerArenas Arenas(M, N);
  std::vector<BehaviorSet> TaskSets(Tasks.size());
  std::vector<EnumTallies> TaskTallies(Tasks.size());
  exec::WorkDequeSet<size_t> Deques(N);
  for (size_t I = 0; I != Tasks.size(); ++I)
    Deques.push(static_cast<unsigned>(I % N), I);
  exec::ThreadPool::global().run(
      N,
      [&](unsigned W) {
        obs::Telemetry *WT =
            Arenas.Telems.empty() ? nullptr : Arenas.Telems[W].get();
        while (std::optional<size_t> Idx = Deques.next(W)) {
          if (Cfg.Guard && Cfg.Guard->stopped())
            continue; // drain remaining tasks; verdict comes from the guard
          EnumTask &Tk = Tasks[*Idx];
          obs::ScopedSpan TaskSpan(WT ? WT->Spans : nullptr, "seq.task");
          uint64_t TaskT0 = WT ? nowMonotonicNs() : 0;
          DfsEnumerator E(*Arenas.Machines[W], &UniqueCount);
          E.explore(Tk.State, std::move(Tk.Trace), Tk.StepsLeft);
          TaskSets[*Idx] = E.take();
          TaskTallies[*Idx] = E.tallies();
          if (WT)
            WT->Counters.recordHist("seq.task.us",
                                    (nowMonotonicNs() - TaskT0) / 1000);
        }
      },
      Cfg.Guard ? &Cfg.Guard->stopFlag() : nullptr);
  Arenas.mergeInto(Cfg.Telem);

  // Phase 3 (orchestrator): merge per-task results in task order with
  // global dedup. Behaviors are emitted counters-exact: Emitted counts the
  // root's and the merge's unique insertions, DedupHits the workers' local
  // hits plus the cross-task hits seen here.
  for (BehaviorSet &TS : TaskSets)
    Root.absorb(std::move(TS));
  Out = Root.tallies();
  for (const EnumTallies &TT : TaskTallies) {
    Out.Expanded += TT.Expanded;
    Out.DedupHits += TT.DedupHits;
    Out.TruncStep += TT.TruncStep;
    Out.TruncCap += TT.TruncCap;
    Out.MaxDepth = std::max(Out.MaxDepth, TT.MaxDepth);
    Out.MemoHits += TT.MemoHits;
    Out.MemoMisses += TT.MemoMisses;
    Out.Pruned += TT.Pruned;
  }
  return Root.take();
}

} // namespace

BehaviorSet pseq::enumerateBehaviors(const SeqMachine &M,
                                     const SeqState &Init) {
  unsigned N = exec::resolveThreads(M.config().NumThreads);
  obs::Telemetry *Telem = M.config().Telem;
  obs::ScopedSpan Span(Telem ? Telem->Spans : nullptr, "seq.enum");
  EnumTallies T;
  BehaviorSet R = (N <= 1 || exec::ThreadPool::insideWorker())
                      ? enumerateSequential(M, Init, T)
                      : enumerateParallel(M, Init, N, T);
  // Canonical order: both paths sort, so the vector is identical for every
  // NumThreads (the parallel merge alone would leave task-generation
  // prefixes first).
  std::sort(R.All.begin(), R.All.end(), behaviorLess);
  // A tripped guard always surfaces in the set's cause, even when the trip
  // happened after the last node this enumeration visited (e.g. drained
  // pool tasks whose results never reached the merge).
  if (guard::ResourceGuard *G = M.config().Guard; G && G->stopped())
    noteTruncation(R.Cause, G->cause());
  foldTallies(Telem, T);
  if (Telem) {
    Telem->Counters.recordHist("seq.enum.behavior_set", R.All.size());
    if (isGuardCause(R.Cause))
      Telem->finalSnapshot(truncationCauseName(R.Cause));
  }
  if (memo::MemoContext *MC = M.config().Memo;
      MC && (T.MemoHits || T.MemoMisses || T.Pruned)) {
    MC->noteHit(T.MemoHits);
    MC->noteMiss(T.MemoMisses);
    MC->notePruned(T.Pruned);
  }
  return R;
}

std::vector<BehaviorSet>
pseq::enumerateBehaviorsBatch(const SeqMachine &M,
                              const std::vector<SeqState> &Inits) {
  unsigned N = exec::resolveThreads(M.config().NumThreads);
  std::vector<BehaviorSet> Out(Inits.size());
  if (N <= 1 || exec::ThreadPool::insideWorker() || Inits.size() <= 1) {
    for (size_t I = 0, E = Inits.size(); I != E; ++I)
      Out[I] = enumerateBehaviors(M, Inits[I]);
    return Out;
  }
  // Initial states fan out across the pool; each per-init enumeration runs
  // on a pool worker and therefore degrades to its sequential path, which
  // is exactly the deterministic per-init result.
  WorkerArenas Arenas(M, N);
  exec::parallelFor(
      N, Inits.size(),
      [&](size_t I, unsigned W) {
        Out[I] = enumerateBehaviors(*Arenas.Machines[W], Inits[I]);
      },
      M.config().Guard ? &M.config().Guard->stopFlag() : nullptr);
  Arenas.mergeInto(M.config().Telem);
  if (guard::ResourceGuard *G = M.config().Guard; G && G->stopped())
    for (BehaviorSet &S : Out)
      noteTruncation(S.Cause, G->cause());
  return Out;
}

std::vector<SeqState> pseq::enumerateInitialStates(const SeqMachine &M) {
  const SeqConfig &Cfg = M.config();
  std::vector<Value> Vals;
  for (int64_t V : Cfg.Domain.values())
    Vals.push_back(Value::of(V));
  Vals.push_back(Value::undef());

  // All memories over the universe (zero elsewhere).
  std::vector<std::vector<Value>> Mems;
  Mems.push_back(
      std::vector<Value>(M.program().numLocs(), Value::of(0)));
  for (unsigned Loc : Cfg.Universe.members()) {
    std::vector<std::vector<Value>> Next;
    Next.reserve(Mems.size() * Vals.size());
    for (const std::vector<Value> &Base : Mems) {
      for (Value V : Vals) {
        std::vector<Value> Mem = Base;
        Mem[Loc] = V;
        Next.push_back(std::move(Mem));
      }
    }
    Mems = std::move(Next);
  }

  std::vector<SeqState> Out;
  for (LocSet P : Cfg.Universe.subsets())
    for (LocSet F : Cfg.Universe.subsets())
      for (const std::vector<Value> &Mem : Mems)
        Out.push_back(M.initial(P, F, Mem));
  return Out;
}
