//===- seq/BehaviorEnum.cpp - Exhaustive behavior enumeration -------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/BehaviorEnum.h"

#include "obs/Telemetry.h"

#include <algorithm>
#include <unordered_set>

using namespace pseq;

bool BehaviorSet::covers(const SeqBehavior &Tgt, LocSet Universe) const {
  for (const SeqBehavior &Src : All)
    if (Tgt.refines(Src, Universe))
      return true;
  return false;
}

namespace {

struct BehaviorHash {
  size_t operator()(const SeqBehavior &B) const {
    return static_cast<size_t>(B.hash());
  }
};

class Enumerator {
  const SeqMachine &M;
  obs::Telemetry *Telem;
  BehaviorSet Result;
  std::unordered_set<SeqBehavior, BehaviorHash> Seen;
  std::vector<SeqEvent> Trace;

  // Run-local tallies: plain members so the hot path costs one increment
  // each whether or not telemetry is attached; folded into the registry
  // once, at the end of run().
  uint64_t Expanded = 0;
  uint64_t Emitted = 0;
  uint64_t DedupHits = 0;
  uint64_t TruncStep = 0;
  uint64_t TruncCap = 0;
  unsigned MaxDepth = 0;

  void emit(SeqBehavior B) {
    if (Seen.size() >= M.config().MaxBehaviors) {
      ++TruncCap;
      noteTruncation(Result.Cause, TruncationCause::BehaviorCap);
      return;
    }
    if (Seen.insert(B).second) {
      ++Emitted;
      Result.All.push_back(std::move(B));
    } else {
      ++DedupHits;
    }
  }

  void emitPartial(const SeqState &S) {
    SeqBehavior B;
    B.Trace = Trace;
    B.Kind = SeqBehavior::End::Partial;
    B.F = S.Written;
    emit(std::move(B));
  }

  void visit(const SeqState &S, unsigned StepsLeft) {
    ++Expanded;
    MaxDepth = std::max(MaxDepth, M.config().StepBudget - StepsLeft);
    // Every reachable state generates ⟨tr, prt(F)⟩ — including states that
    // could also terminate (Def 2.1's "otherwise" applies only to
    // non-terminal states, so skip those).
    if (S.isBottom()) {
      SeqBehavior B;
      B.Trace = Trace;
      B.Kind = SeqBehavior::End::Bottom;
      emit(std::move(B));
      return;
    }
    if (S.isTerminated()) {
      SeqBehavior B;
      B.Trace = Trace;
      B.Kind = SeqBehavior::End::Term;
      B.RetVal = S.Prog.retVal();
      B.F = S.Written;
      B.Mem = S.Mem;
      emit(std::move(B));
      return;
    }
    emitPartial(S);
    if (StepsLeft == 0) {
      ++TruncStep;
      noteTruncation(Result.Cause, TruncationCause::StepBudget);
      return;
    }
    for (SeqTransition &T : M.successors(S)) {
      size_t Pushed = T.Labels.size();
      for (SeqEvent &E : T.Labels)
        Trace.push_back(std::move(E));
      visit(T.Next, StepsLeft - 1);
      Trace.resize(Trace.size() - Pushed);
    }
  }

public:
  explicit Enumerator(const SeqMachine &M) : M(M), Telem(M.config().Telem) {}

  BehaviorSet run(const SeqState &Init) {
    visit(Init, M.config().StepBudget);
    if (Telem) {
      obs::ScopedTally Tally(&Telem->Counters);
      Tally.slot("seq.enum.runs") += 1;
      Tally.slot("seq.enum.states_expanded") += Expanded;
      Tally.slot("seq.enum.behaviors_emitted") += Emitted;
      Tally.slot("seq.enum.dedup_hits") += DedupHits;
      Tally.slot("seq.enum.trunc_step_budget") += TruncStep;
      Tally.slot("seq.enum.trunc_behavior_cap") += TruncCap;
      Telem->Counters.maxGauge("seq.enum.max_depth", MaxDepth);
    }
    return std::move(Result);
  }
};

} // namespace

BehaviorSet pseq::enumerateBehaviors(const SeqMachine &M,
                                     const SeqState &Init) {
  Enumerator E(M);
  return E.run(Init);
}

std::vector<SeqState> pseq::enumerateInitialStates(const SeqMachine &M) {
  const SeqConfig &Cfg = M.config();
  std::vector<Value> Vals;
  for (int64_t V : Cfg.Domain.values())
    Vals.push_back(Value::of(V));
  Vals.push_back(Value::undef());

  // All memories over the universe (zero elsewhere).
  std::vector<std::vector<Value>> Mems;
  Mems.push_back(
      std::vector<Value>(M.program().numLocs(), Value::of(0)));
  for (unsigned Loc : Cfg.Universe.members()) {
    std::vector<std::vector<Value>> Next;
    Next.reserve(Mems.size() * Vals.size());
    for (const std::vector<Value> &Base : Mems) {
      for (Value V : Vals) {
        std::vector<Value> Mem = Base;
        Mem[Loc] = V;
        Next.push_back(std::move(Mem));
      }
    }
    Mems = std::move(Next);
  }

  std::vector<SeqState> Out;
  for (LocSet P : Cfg.Universe.subsets())
    for (LocSet F : Cfg.Universe.subsets())
      for (const std::vector<Value> &Mem : Mems)
        Out.push_back(M.initial(P, F, Mem));
  return Out;
}
