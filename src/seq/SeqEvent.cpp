//===- seq/SeqEvent.cpp - SEQ trace labels --------------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/SeqEvent.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace pseq;

//===----------------------------------------------------------------------===
// PartialMem
//===----------------------------------------------------------------------===

void PartialMem::set(unsigned Loc, Value V) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Loc,
      [](const std::pair<unsigned, Value> &E, unsigned L) {
        return E.first < L;
      });
  if (It != Entries.end() && It->first == Loc) {
    It->second = V;
    return;
  }
  Entries.insert(It, {Loc, V});
}

const Value *PartialMem::lookup(unsigned Loc) const {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Loc,
      [](const std::pair<unsigned, Value> &E, unsigned L) {
        return E.first < L;
      });
  if (It != Entries.end() && It->first == Loc)
    return &It->second;
  return nullptr;
}

LocSet PartialMem::domain() const {
  LocSet S;
  for (const auto &[Loc, V] : Entries)
    S.insert(Loc);
  return S;
}

bool PartialMem::refines(const PartialMem &Src) const {
  if (domain() != Src.domain())
    return false;
  for (const auto &[Loc, V] : Entries) {
    const Value *SV = Src.lookup(Loc);
    if (!V.refines(*SV))
      return false;
  }
  return true;
}

LocSet PartialMem::nonRefiningLocs(const PartialMem &Src) const {
  LocSet Out;
  for (const auto &[Loc, V] : Entries) {
    const Value *SV = Src.lookup(Loc);
    if (!SV || !V.refines(*SV))
      Out.insert(Loc);
  }
  return Out;
}

uint64_t PartialMem::hash() const {
  uint64_t H = Entries.size();
  for (const auto &[Loc, V] : Entries)
    H = hashCombine(hashCombine(H, Loc), V.hash());
  return H;
}

std::string PartialMem::str() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &[Loc, V] : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "x" + std::to_string(Loc) + "=" + V.str();
  }
  return Out + "]";
}

//===----------------------------------------------------------------------===
// SeqEvent
//===----------------------------------------------------------------------===

SeqEvent SeqEvent::choose(Value V) {
  SeqEvent E;
  E.K = Kind::Choose;
  E.V = V;
  return E;
}

SeqEvent SeqEvent::rlxRead(unsigned Loc, Value V) {
  SeqEvent E;
  E.K = Kind::RlxRead;
  E.Loc = Loc;
  E.V = V;
  return E;
}

SeqEvent SeqEvent::rlxWrite(unsigned Loc, Value V) {
  SeqEvent E;
  E.K = Kind::RlxWrite;
  E.Loc = Loc;
  E.V = V;
  return E;
}

SeqEvent SeqEvent::acqRead(unsigned Loc, Value V, LocSet P, LocSet P2,
                           LocSet F, PartialMem Vm) {
  SeqEvent E;
  E.K = Kind::AcqRead;
  E.Loc = Loc;
  E.V = V;
  E.P = P;
  E.P2 = P2;
  E.F = F;
  E.Vm = std::move(Vm);
  return E;
}

SeqEvent SeqEvent::relWrite(unsigned Loc, Value V, LocSet P, LocSet P2,
                            LocSet F, PartialMem Vm) {
  SeqEvent E;
  E.K = Kind::RelWrite;
  E.Loc = Loc;
  E.V = V;
  E.P = P;
  E.P2 = P2;
  E.F = F;
  E.Vm = std::move(Vm);
  return E;
}

SeqEvent SeqEvent::acqFence(LocSet P, LocSet P2, LocSet F, PartialMem Vm) {
  SeqEvent E = acqRead(0, Value::of(0), P, P2, F, std::move(Vm));
  E.K = Kind::AcqFence;
  return E;
}

SeqEvent SeqEvent::relFence(LocSet P, LocSet P2, LocSet F, PartialMem Vm) {
  SeqEvent E = relWrite(0, Value::of(0), P, P2, F, std::move(Vm));
  E.K = Kind::RelFence;
  return E;
}

SeqEvent SeqEvent::syscall(Value V) {
  SeqEvent E;
  E.K = Kind::Syscall;
  E.V = V;
  return E;
}

bool SeqEvent::refinesLabel(const SeqEvent &Src) const {
  if (K != Src.K)
    return false;
  switch (K) {
  case Kind::Choose:
  case Kind::RlxRead:
    // Reads and choices must match exactly.
    return Loc == Src.Loc && V == Src.V;
  case Kind::RlxWrite:
  case Kind::Syscall:
    // The source may be "less committed": v_tgt ⊑ v_src.
    return Loc == Src.Loc && V.refines(Src.V);
  case Kind::AcqRead:
  case Kind::AcqFence:
    // Racq(x,v,P,P',F_tgt,V) ⊑ Racq(x,v,P,P',F_src,V) when F_tgt ⊆ F_src.
    return Loc == Src.Loc && V == Src.V && P == Src.P && P2 == Src.P2 &&
           F.isSubsetOf(Src.F) && Vm == Src.Vm;
  case Kind::RelWrite:
  case Kind::RelFence:
    // Value and released memory refine pointwise; F_tgt ⊆ F_src.
    return Loc == Src.Loc && V.refines(Src.V) && P == Src.P && P2 == Src.P2 &&
           F.isSubsetOf(Src.F) && Vm.refines(Src.Vm);
  }
  return false;
}

bool SeqEvent::strippedEquals(const SeqEvent &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Choose:
  case Kind::RlxRead:
  case Kind::RlxWrite:
  case Kind::Syscall:
    return Loc == O.Loc && V == O.V;
  case Kind::AcqRead:
  case Kind::AcqFence:
  case Kind::RelWrite:
  case Kind::RelFence:
    // |e| drops the F component (Def 3.2).
    return Loc == O.Loc && V == O.V && P == O.P && P2 == O.P2 && Vm == O.Vm;
  }
  return false;
}

bool SeqEvent::operator==(const SeqEvent &O) const {
  return K == O.K && Loc == O.Loc && V == O.V && P == O.P && P2 == O.P2 &&
         F == O.F && Vm == O.Vm;
}

uint64_t SeqEvent::hash() const {
  uint64_t H = hashCombine(static_cast<uint64_t>(K), Loc);
  H = hashCombine(H, V.hash());
  H = hashCombine(H, P.raw());
  H = hashCombine(H, P2.raw());
  H = hashCombine(H, F.raw());
  H = hashCombine(H, Vm.hash());
  return H;
}

std::string SeqEvent::str(const std::vector<std::string> *LocNames) const {
  auto locStr = [&](unsigned L) {
    if (LocNames && L < LocNames->size())
      return (*LocNames)[L];
    return "x" + std::to_string(L);
  };
  switch (K) {
  case Kind::Choose:
    return "choose(" + V.str() + ")";
  case Kind::RlxRead:
    return "Rrlx(" + locStr(Loc) + "," + V.str() + ")";
  case Kind::RlxWrite:
    return "Wrlx(" + locStr(Loc) + "," + V.str() + ")";
  case Kind::AcqRead:
    return "Racq(" + locStr(Loc) + "," + V.str() + "," + P.str(LocNames) +
           "," + P2.str(LocNames) + "," + F.str(LocNames) + "," + Vm.str() +
           ")";
  case Kind::RelWrite:
    return "Wrel(" + locStr(Loc) + "," + V.str() + "," + P.str(LocNames) +
           "," + P2.str(LocNames) + "," + F.str(LocNames) + "," + Vm.str() +
           ")";
  case Kind::AcqFence:
    return "Facq(" + P.str(LocNames) + "," + P2.str(LocNames) + "," +
           F.str(LocNames) + "," + Vm.str() + ")";
  case Kind::RelFence:
    return "Frel(" + P.str(LocNames) + "," + P2.str(LocNames) + "," +
           F.str(LocNames) + "," + Vm.str() + ")";
  case Kind::Syscall:
    return "print(" + V.str() + ")";
  }
  return "?";
}

bool pseq::traceRefines(const std::vector<SeqEvent> &Tgt,
                        const std::vector<SeqEvent> &Src) {
  if (Tgt.size() != Src.size())
    return false;
  for (size_t I = 0, E = Tgt.size(); I != E; ++I)
    if (!Tgt[I].refinesLabel(Src[I]))
      return false;
  return true;
}

bool pseq::advancedLabelMatch(const SeqEvent &Tgt, const SeqEvent &Src,
                              LocSet &R) {
  if (Tgt.K != Src.K)
    return false;
  switch (Tgt.K) {
  case SeqEvent::Kind::Choose:
  case SeqEvent::Kind::RlxRead:
    return Tgt.Loc == Src.Loc && Tgt.V == Src.V;
  case SeqEvent::Kind::RlxWrite:
  case SeqEvent::Kind::Syscall:
    return Tgt.Loc == Src.Loc && Tgt.V.refines(Src.V);
  case SeqEvent::Kind::AcqRead:
  case SeqEvent::Kind::AcqFence: {
    // beh-acq-read: identical (x, v, P, P', V); F_tgt ∪ R ⊆ F_src;
    // commitments reset.
    if (Tgt.Loc != Src.Loc || Tgt.V != Src.V || Tgt.P != Src.P ||
        Tgt.P2 != Src.P2 || !(Tgt.Vm == Src.Vm))
      return false;
    if (!Tgt.F.unionWith(R).isSubsetOf(Src.F))
      return false;
    R = LocSet::empty();
    return true;
  }
  case SeqEvent::Kind::RelWrite:
  case SeqEvent::Kind::RelFence: {
    // beh-rel-write: identical (x, P, P'); v_tgt ⊑ v_src; new commitments
    // R' = (R \ F_src) ∪ (F_tgt \ F_src) ∪ {y | V_tgt(y) ⋢ V_src(y)}.
    if (Tgt.Loc != Src.Loc || Tgt.P != Src.P || Tgt.P2 != Src.P2)
      return false;
    if (!Tgt.V.refines(Src.V))
      return false;
    R = R.setMinus(Src.F)
            .unionWith(Tgt.F.setMinus(Src.F))
            .unionWith(Tgt.Vm.nonRefiningLocs(Src.Vm));
    return true;
  }
  }
  return false;
}

memo::Footprint pseq::footprint(const SeqEvent &E) {
  memo::Footprint F;
  switch (E.K) {
  case SeqEvent::Kind::Choose:
    return F; // pure nondeterminism: touches nothing
  case SeqEvent::Kind::RlxRead:
  case SeqEvent::Kind::RlxWrite:
    F.Locs = LocSet::single(E.Loc);
    return F;
  case SeqEvent::Kind::AcqRead:
  case SeqEvent::Kind::RelWrite:
  case SeqEvent::Kind::AcqFence:
  case SeqEvent::Kind::RelFence:
    // Permission transfer reads/writes the whole released memory and moves
    // arbitrary location sets between threads; no cheap disjointness
    // argument exists, so acquire/release labels conflict with everything.
    return memo::Footprint::global();
  case SeqEvent::Kind::Syscall:
    F.Output = true;
    return F;
  }
  return memo::Footprint::global();
}

bool pseq::conflicts(const SeqEvent &A, const SeqEvent &B) {
  return memo::conflicts(footprint(A), footprint(B));
}
