//===- seq/SeqState.h - SEQ machine states ----------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// States of the SEQ machine (§2): S = ⟨σ, P, F, M⟩ where σ is the program
/// state, P the permission set (non-atomic locations that may be safely
/// accessed), F the written-locations set since the last release, and M the
/// non-atomic memory. The error state ⊥ is represented by σ's Error status.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_SEQSTATE_H
#define PSEQ_SEQ_SEQSTATE_H

#include "lang/ProgState.h"
#include "support/LocSet.h"

namespace pseq {

/// A SEQ machine state ⟨σ, P, F, M⟩.
struct SeqState {
  ProgState Prog; ///< σ (⊥ encoded as ProgState::Status::Error)
  LocSet Perm;    ///< P ⊆ Loc_na
  LocSet Written; ///< F ⊆ Loc_na (written since the last release)
  std::vector<Value> Mem; ///< M : Loc_na → Val (indexed by location id;
                          ///< entries for atomic locations are unused)

  bool isBottom() const { return Prog.isError(); }
  bool isTerminated() const { return Prog.isDone(); }

  bool operator==(const SeqState &O) const {
    return Perm == O.Perm && Written == O.Written && Mem == O.Mem &&
           Prog == O.Prog;
  }
  uint64_t hash() const;
  std::string str(const std::vector<std::string> *LocNames = nullptr) const;
};

} // namespace pseq

#endif // PSEQ_SEQ_SEQSTATE_H
