//===- seq/SimpleRefinement.cpp - Def 2.4 decision procedure --------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/SimpleRefinement.h"

#include "obs/Telemetry.h"
#include "seq/InitSweep.h"

#include <cassert>

using namespace pseq;

void pseq::observeRefinementCheck(obs::Telemetry *Telem, const char *Kind,
                                  const RefinementResult &R, double Ms) {
  if (!Telem)
    return;
  std::string Prefix = std::string(Kind);
  Telem->Counters.add(Prefix + ".calls");
  if (!R.Holds)
    Telem->Counters.add(Prefix + ".fails");
  if (R.Bounded)
    Telem->Counters.add(Prefix + ".bounded");
  if (Telem->tracing())
    Telem->trace(Kind, {{"holds", R.Holds},
                        {"bounded", R.Bounded},
                        {"cause", truncationCauseName(R.Cause)},
                        {"initial_states", uint64_t(R.InitialStates)},
                        {"src_behaviors", R.SrcBehaviors},
                        {"tgt_behaviors", R.TgtBehaviors},
                        {"ms", Ms}});
}

SeqConfig pseq::resolveUniverse(SeqConfig Cfg, const Program &SrcP,
                                unsigned SrcTid, const Program &TgtP,
                                unsigned TgtTid) {
  if (!Cfg.Universe.isEmpty())
    return Cfg;
  AccessSummary SrcSum = SrcP.accessSummary(SrcTid);
  AccessSummary TgtSum = TgtP.accessSummary(TgtTid);
  Cfg.Universe = SrcSum.NaAccessed.unionWith(TgtSum.NaAccessed);
  return Cfg;
}

RefinementResult pseq::checkSimpleRefinement(const Program &SrcP,
                                             unsigned SrcTid,
                                             const Program &TgtP,
                                             unsigned TgtTid, SeqConfig Cfg) {
  assert(sameLayout(SrcP, TgtP) &&
         "refinement requires identical memory layouts");
  Cfg = resolveUniverse(Cfg, SrcP, SrcTid, TgtP, TgtTid);

  obs::Telemetry *Telem = Cfg.Telem;
  obs::ScopedTimer Timer(Telem ? &Telem->Timers : nullptr, "seq.simple");

  SeqMachine SrcM(SrcP, SrcTid, Cfg);
  SeqMachine TgtM(TgtP, TgtTid, Cfg);

  RefinementResult Result;
  std::vector<SeqState> SrcInits = enumerateInitialStates(SrcM);
  std::vector<SeqState> TgtInits = enumerateInitialStates(TgtM);
  assert(SrcInits.size() == TgtInits.size() &&
         "initial-state spaces must coincide");
  Result.InitialStates = static_cast<unsigned>(SrcInits.size());

  detail::sweepInits(
      SrcM, TgtM, SrcInits.size(), Result,
      [&](const SeqMachine &SM, const SeqMachine &TM, size_t Idx,
          detail::InitRecord &R) {
        BehaviorSet Tgt = enumerateBehaviors(TM, TgtInits[Idx]);
        BehaviorSet Src = enumerateBehaviors(SM, SrcInits[Idx]);
        R.Bounded = Tgt.truncated() || Src.truncated();
        R.Cause = Tgt.truncated() ? Tgt.Cause : Src.Cause;
        R.SrcBehaviors = Src.All.size();
        R.TgtBehaviors = Tgt.All.size();
        for (const SeqBehavior &TB : Tgt.All) {
          if (Src.covers(TB, Cfg.Universe))
            continue;
          if (Src.truncated() && isGuardCause(Src.Cause))
            break; // a guard trip leaves an arbitrary source prefix: the
                   // match may live in the unexplored part, so this is
                   // bounded, not a definite counterexample (step-budget
                   // truncation still explores every run to depth, so its
                   // cover test stays meaningful)
          R.Failed = true;
          const std::vector<std::string> &Names = SrcP.locNames();
          R.Counterexample = "initial " + TgtInits[Idx].str(&Names) +
                             " target behavior " + TB.str(&Names) +
                             " unmatched by source";
          return;
        }
      });
  observeRefinementCheck(Telem, "seq.check.simple", Result, Timer.stop());
  return Result;
}

RefinementResult pseq::checkSimpleRefinement(const Program &SrcP,
                                             const Program &TgtP,
                                             SeqConfig Cfg) {
  return checkSimpleRefinement(SrcP, 0, TgtP, 0, std::move(Cfg));
}
