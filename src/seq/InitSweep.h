//===- seq/InitSweep.h - Per-initial-state fan-out --------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal driver shared by the Def 2.4 and Fig. 2 refinement checkers:
/// both quantify over the same initial-state space (P × F × M products) and
/// fold one self-contained record per initial state into a
/// RefinementResult, stopping at the first failing state. The driver runs
/// the per-state checks either inline or fanned out across the thread
/// pool; records always fold in index order, so the result (verdict,
/// counterexample, truncation cause, behavior tallies) is identical for
/// every worker count.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_INITSWEEP_H
#define PSEQ_SEQ_INITSWEEP_H

#include "exec/ThreadPool.h"
#include "guard/Guard.h"
#include "obs/Telemetry.h"
#include "seq/SimpleRefinement.h"

#include <atomic>
#include <memory>
#include <vector>

namespace pseq::detail {

/// Everything one initial state contributes to a RefinementResult.
struct InitRecord {
  bool Failed = false;
  bool Bounded = false;
  TruncationCause Cause = TruncationCause::None;
  uint64_t SrcBehaviors = 0;
  uint64_t TgtBehaviors = 0;
  std::string Counterexample;
};

/// Folds \p R into \p Result the way the sequential loop accumulates one
/// iteration. \returns false when the sweep must stop (first failure).
inline bool foldInitRecord(RefinementResult &Result, InitRecord &R) {
  Result.Bounded |= R.Bounded;
  noteTruncation(Result.Cause, R.Cause);
  Result.SrcBehaviors += R.SrcBehaviors;
  Result.TgtBehaviors += R.TgtBehaviors;
  if (!R.Failed)
    return true;
  Result.Holds = false;
  Result.Counterexample = std::move(R.Counterexample);
  return false;
}

/// Runs CheckInit(SrcM, TgtM, Idx, Record) for initial-state indices
/// 0..NumInits and folds the records in index order, stopping at the first
/// failed index. With NumThreads > 1 (and when not already on a pool
/// worker) indices are claimed dynamically by pool workers against
/// per-worker machine copies — telemetry goes to private arenas, merged
/// after the join. A monotonically shrinking first-failure bound lets
/// workers skip indices past a known failure: the fold never reads past
/// the smallest failed index, and no index at or below it is ever
/// skipped, so the folded prefix matches the sequential run exactly.
template <typename CheckFn>
void sweepInits(const SeqMachine &SrcM, const SeqMachine &TgtM,
                size_t NumInits, RefinementResult &Result,
                CheckFn CheckInit) {
  const SeqConfig &Cfg = SrcM.config();
  unsigned N = exec::resolveThreads(Cfg.NumThreads);
  guard::ResourceGuard *G = Cfg.Guard;
  std::vector<InitRecord> Records(NumInits);

  // An initial state skipped because the guard tripped contributes a
  // bounded record naming the trip cause: the sweep over-approximates
  // "unknown" as "bounded", never as "checked and fine". The fold keeps
  // going through such records — only definite failures stop it.
  auto MarkSkipped = [&](InitRecord &R) {
    R.Bounded = true;
    noteTruncation(R.Cause, G->cause());
  };

  if (N <= 1 || exec::ThreadPool::insideWorker() || NumInits <= 1) {
    // Inline. A multi-threaded config with a single initial state still
    // parallelizes *inside* the per-state check (the enumerators fan out
    // their subtrees).
    for (size_t Idx = 0; Idx != NumInits; ++Idx) {
      if (G && G->checkpoint() != TruncationCause::None)
        MarkSkipped(Records[Idx]);
      else
        CheckInit(SrcM, TgtM, Idx, Records[Idx]);
      if (!foldInitRecord(Result, Records[Idx]))
        return;
    }
    return;
  }

  std::vector<std::unique_ptr<obs::Telemetry>> WTelems;
  std::vector<std::unique_ptr<SeqMachine>> WSrc, WTgt;
  for (unsigned W = 0; W != N; ++W) {
    SeqConfig WCfg = Cfg;
    if (WCfg.Telem) {
      WTelems.push_back(std::make_unique<obs::Telemetry>());
      WCfg.Telem = WTelems.back().get();
    }
    WSrc.push_back(
        std::make_unique<SeqMachine>(SrcM.program(), SrcM.tid(), WCfg));
    WTgt.push_back(
        std::make_unique<SeqMachine>(TgtM.program(), TgtM.tid(), WCfg));
  }

  std::atomic<size_t> Next{0};
  std::atomic<size_t> MinFail{NumInits};
  exec::ThreadPool::global().run(
      N,
      [&](unsigned W) {
        size_t Idx;
        while ((Idx = Next.fetch_add(1, std::memory_order_relaxed)) <
               NumInits) {
          if (Idx > MinFail.load(std::memory_order_relaxed))
            continue; // the fold stops before this index no matter what
          if (G && G->stopped())
            continue; // marked bounded below, after the join
          CheckInit(*WSrc[W], *WTgt[W], Idx, Records[Idx]);
          if (Records[Idx].Failed) {
            size_t Cur = MinFail.load(std::memory_order_relaxed);
            while (Idx < Cur && !MinFail.compare_exchange_weak(
                                    Cur, Idx, std::memory_order_relaxed))
              ;
          }
        }
      },
      G ? &G->stopFlag() : nullptr);

  if (Cfg.Telem)
    for (const std::unique_ptr<obs::Telemetry> &WT : WTelems)
      Cfg.Telem->mergeCounters(WT->Counters);

  if (G && G->stopped()) {
    // Indices neither failed nor bounded after a trip were skipped (or
    // their results raced the trip); mark them so the fold stays honest.
    // A failure found before the trip is still a definite failure.
    for (InitRecord &R : Records)
      if (!R.Failed && !R.Bounded && R.SrcBehaviors == 0)
        MarkSkipped(R);
  }

  for (size_t Idx = 0; Idx != NumInits; ++Idx)
    if (!foldInitRecord(Result, Records[Idx]))
      return;
}

} // namespace pseq::detail

#endif // PSEQ_SEQ_INITSWEEP_H
