//===- seq/Behavior.cpp - SEQ behaviors -----------------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/Behavior.h"

#include "support/Hashing.h"

using namespace pseq;

bool SeqBehavior::refines(const SeqBehavior &Src, LocSet Universe) const {
  // ⟨tr_tgt · tr, r⟩ ⊑ ⟨tr_src, ⊥⟩ when tr_tgt ⊑ tr_src: a UB source
  // matches any continuation of the target.
  if (Src.Kind == End::Bottom) {
    if (Trace.size() < Src.Trace.size())
      return false;
    for (size_t I = 0, E = Src.Trace.size(); I != E; ++I)
      if (!Trace[I].refinesLabel(Src.Trace[I]))
        return false;
    return true;
  }
  if (Kind != Src.Kind)
    return false;
  if (!traceRefines(Trace, Src.Trace))
    return false;
  switch (Kind) {
  case End::Term: {
    if (!RetVal.refines(Src.RetVal))
      return false;
    if (!F.isSubsetOf(Src.F))
      return false;
    for (unsigned Loc : Universe.members())
      if (!Mem[Loc].refines(Src.Mem[Loc]))
        return false;
    return true;
  }
  case End::Partial:
    return F.isSubsetOf(Src.F);
  case End::Bottom:
    // Target ⊥ is only matched by source ⊥ (handled above).
    return false;
  }
  return false;
}

bool SeqBehavior::operator==(const SeqBehavior &O) const {
  return Kind == O.Kind && RetVal == O.RetVal && F == O.F && Mem == O.Mem &&
         Trace == O.Trace;
}

uint64_t SeqBehavior::hash() const {
  uint64_t H = hashCombine(static_cast<uint64_t>(Kind), F.raw());
  H = hashCombine(H, RetVal.hash());
  for (Value V : Mem)
    H = hashCombine(H, V.hash());
  H = hashCombine(H, Trace.size());
  for (const SeqEvent &E : Trace)
    H = hashCombine(H, E.hash());
  return H;
}

uint64_t SeqBehavior::refinementKey() const {
  // Include only what refines() forces to be equal between a target and a
  // non-⊥ source. Per refinesLabel: every label pins (K, Loc); choices,
  // reads, and acquire labels additionally pin V (and acquires pin P, P',
  // Vm); release labels pin P, P' and — because PartialMem::refines
  // requires equal domains — dom(Vm). F is always ⊆-compared and the
  // terminal components (RetVal, F, Mem) are ⊑-compared, so none of those
  // may enter the key.
  uint64_t H = hashCombine(static_cast<uint64_t>(Kind), Trace.size());
  for (const SeqEvent &E : Trace) {
    H = hashCombine(H, hashCombine(static_cast<uint64_t>(E.K), E.Loc));
    switch (E.K) {
    case SeqEvent::Kind::Choose:
    case SeqEvent::Kind::RlxRead:
      H = hashCombine(H, E.V.hash());
      break;
    case SeqEvent::Kind::RlxWrite:
    case SeqEvent::Kind::Syscall:
      break; // V is ⊑-compared
    case SeqEvent::Kind::AcqRead:
    case SeqEvent::Kind::AcqFence:
      H = hashCombine(H, E.V.hash());
      H = hashCombine(H, E.P.raw());
      H = hashCombine(H, E.P2.raw());
      H = hashCombine(H, E.Vm.hash());
      break;
    case SeqEvent::Kind::RelWrite:
    case SeqEvent::Kind::RelFence:
      H = hashCombine(H, E.P.raw());
      H = hashCombine(H, E.P2.raw());
      H = hashCombine(H, E.Vm.domain().raw());
      break;
    }
  }
  return H;
}

namespace {

/// undef orders before every defined value; defined values by payload.
int valueCompare(Value A, Value B) {
  if (A.isUndef() != B.isUndef())
    return A.isUndef() ? -1 : 1;
  if (A.isUndef())
    return 0;
  if (A.get() != B.get())
    return A.get() < B.get() ? -1 : 1;
  return 0;
}

int partialMemCompare(const PartialMem &A, const PartialMem &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    const auto &EA = A.entries()[I];
    const auto &EB = B.entries()[I];
    if (EA.first != EB.first)
      return EA.first < EB.first ? -1 : 1;
    if (int C = valueCompare(EA.second, EB.second))
      return C;
  }
  return 0;
}

int rawCompare(uint64_t A, uint64_t B) {
  return A == B ? 0 : (A < B ? -1 : 1);
}

int eventCompare(const SeqEvent &A, const SeqEvent &B) {
  if (A.K != B.K)
    return A.K < B.K ? -1 : 1;
  if (A.Loc != B.Loc)
    return A.Loc < B.Loc ? -1 : 1;
  if (int C = valueCompare(A.V, B.V))
    return C;
  if (int C = rawCompare(A.P.raw(), B.P.raw()))
    return C;
  if (int C = rawCompare(A.P2.raw(), B.P2.raw()))
    return C;
  if (int C = rawCompare(A.F.raw(), B.F.raw()))
    return C;
  return partialMemCompare(A.Vm, B.Vm);
}

} // namespace

bool pseq::behaviorLess(const SeqBehavior &A, const SeqBehavior &B) {
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind;
  if (A.Trace.size() != B.Trace.size())
    return A.Trace.size() < B.Trace.size();
  for (size_t I = 0, E = A.Trace.size(); I != E; ++I)
    if (int C = eventCompare(A.Trace[I], B.Trace[I]))
      return C < 0;
  if (int C = valueCompare(A.RetVal, B.RetVal))
    return C < 0;
  if (int C = rawCompare(A.F.raw(), B.F.raw()))
    return C < 0;
  if (A.Mem.size() != B.Mem.size())
    return A.Mem.size() < B.Mem.size();
  for (size_t I = 0, E = A.Mem.size(); I != E; ++I)
    if (int C = valueCompare(A.Mem[I], B.Mem[I]))
      return C < 0;
  return false;
}

std::string
SeqBehavior::str(const std::vector<std::string> *LocNames) const {
  std::string Out = "<[";
  for (size_t I = 0, E = Trace.size(); I != E; ++I) {
    if (I)
      Out += " ";
    Out += Trace[I].str(LocNames);
  }
  Out += "], ";
  switch (Kind) {
  case End::Term: {
    Out += "trm(" + RetVal.str() + ", " + F.str(LocNames) + ", [";
    for (size_t I = 0, E = Mem.size(); I != E; ++I) {
      if (I)
        Out += ",";
      Out += Mem[I].str();
    }
    Out += "])";
    break;
  }
  case End::Partial:
    Out += "prt(" + F.str(LocNames) + ")";
    break;
  case End::Bottom:
    Out += "bottom";
    break;
  }
  return Out + ">";
}
