//===- seq/Behavior.cpp - SEQ behaviors -----------------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/Behavior.h"

#include "support/Hashing.h"

using namespace pseq;

bool SeqBehavior::refines(const SeqBehavior &Src, LocSet Universe) const {
  // ⟨tr_tgt · tr, r⟩ ⊑ ⟨tr_src, ⊥⟩ when tr_tgt ⊑ tr_src: a UB source
  // matches any continuation of the target.
  if (Src.Kind == End::Bottom) {
    if (Trace.size() < Src.Trace.size())
      return false;
    for (size_t I = 0, E = Src.Trace.size(); I != E; ++I)
      if (!Trace[I].refinesLabel(Src.Trace[I]))
        return false;
    return true;
  }
  if (Kind != Src.Kind)
    return false;
  if (!traceRefines(Trace, Src.Trace))
    return false;
  switch (Kind) {
  case End::Term: {
    if (!RetVal.refines(Src.RetVal))
      return false;
    if (!F.isSubsetOf(Src.F))
      return false;
    for (unsigned Loc : Universe.members())
      if (!Mem[Loc].refines(Src.Mem[Loc]))
        return false;
    return true;
  }
  case End::Partial:
    return F.isSubsetOf(Src.F);
  case End::Bottom:
    // Target ⊥ is only matched by source ⊥ (handled above).
    return false;
  }
  return false;
}

bool SeqBehavior::operator==(const SeqBehavior &O) const {
  return Kind == O.Kind && RetVal == O.RetVal && F == O.F && Mem == O.Mem &&
         Trace == O.Trace;
}

uint64_t SeqBehavior::hash() const {
  uint64_t H = hashCombine(static_cast<uint64_t>(Kind), F.raw());
  H = hashCombine(H, RetVal.hash());
  for (Value V : Mem)
    H = hashCombine(H, V.hash());
  H = hashCombine(H, Trace.size());
  for (const SeqEvent &E : Trace)
    H = hashCombine(H, E.hash());
  return H;
}

std::string
SeqBehavior::str(const std::vector<std::string> *LocNames) const {
  std::string Out = "<[";
  for (size_t I = 0, E = Trace.size(); I != E; ++I) {
    if (I)
      Out += " ";
    Out += Trace[I].str(LocNames);
  }
  Out += "], ";
  switch (Kind) {
  case End::Term: {
    Out += "trm(" + RetVal.str() + ", " + F.str(LocNames) + ", [";
    for (size_t I = 0, E = Mem.size(); I != E; ++I) {
      if (I)
        Out += ",";
      Out += Mem[I].str();
    }
    Out += "])";
    break;
  }
  case End::Partial:
    Out += "prt(" + F.str(LocNames) + ")";
    break;
  case End::Bottom:
    Out += "bottom";
    break;
  }
  return Out + ">";
}
