//===- seq/AdvancedRefinement.cpp - Fig 2 / Def 3.3 checker ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/AdvancedRefinement.h"

#include "obs/Telemetry.h"
#include "seq/InitSweep.h"
#include "seq/OracleGame.h"
#include "support/Hashing.h"

#include <cassert>
#include <unordered_map>

using namespace pseq;

namespace {

/// Decides whether one target behavior is matched per Fig. 2, for one
/// initial state. Memoization is per-target-behavior (positions index the
/// fixed target trace).
class Matcher {
  const SeqMachine &SrcM;
  const SeqBehavior &TB;
  LocSet Universe;
  unsigned NodeBudget;
  bool BudgetHit = false;

  // Memo for match(): key is (position, commitment set, source state).
  struct MatchKey {
    unsigned K;
    uint64_t R;
    SeqState S;
    bool operator==(const MatchKey &O) const {
      return K == O.K && R == O.R && S == O.S;
    }
  };
  struct MatchKeyHash {
    size_t operator()(const MatchKey &Key) const {
      uint64_t H = hashCombine(Key.K, Key.R);
      return static_cast<size_t>(hashCombine(H, Key.S.hash()));
    }
  };
  enum : char { InProgress = 0, True = 1, False = 2 };
  std::unordered_map<MatchKey, char, MatchKeyHash> MatchMemo;
  OracleGame Game;

  bool spendNode() {
    if (NodeBudget == 0) {
      BudgetHit = true;
      return false;
    }
    --NodeBudget;
    return true;
  }

public:
  Matcher(const SeqMachine &SrcM, const SeqBehavior &TB, LocSet Universe,
          unsigned NodeBudget)
      : SrcM(SrcM), TB(TB), Universe(Universe), NodeBudget(NodeBudget),
        Game(SrcM, NodeBudget) {}

  bool budgetHit() const { return BudgetHit || Game.budgetHit(); }

  bool run(const SeqState &SrcInit) {
    return match(0, LocSet::empty(), SrcInit);
  }

private:
  //===--------------------------------------------------------------------===
  // Prefix matching (rules beh-rlx, beh-acq-read, beh-rel-write, plus the
  // terminal rules beh-terminal / beh-partial / beh-failure).
  //===--------------------------------------------------------------------===

  bool match(unsigned K, LocSet R, const SeqState &S) {
    MatchKey Key{K, R.raw(), S};
    auto [It, Inserted] = MatchMemo.try_emplace(Key, InProgress);
    if (!Inserted)
      return It->second == True; // cycles contribute nothing new
    bool Result = matchUncached(K, R, S);
    MatchMemo[Key] = Result ? True : False;
    return Result;
  }

  bool matchUncached(unsigned K, LocSet R, const SeqState &S) {
    if (!spendNode())
      return false;

    // Source already at ⊥: beh-failure with an empty remaining source
    // trace (no acquire, no oracle constraints).
    if (S.isBottom())
      return true;

    bool AtEnd = K == TB.Trace.size();

    if (S.isTerminated()) {
      // beh-terminal: both traces consumed, target terminated.
      if (!AtEnd || TB.Kind != SeqBehavior::End::Term)
        return false;
      if (!TB.RetVal.refines(S.Prog.retVal()))
        return false;
      if (!TB.F.unionWith(R).isSubsetOf(S.Written))
        return false;
      for (unsigned Loc : Universe.members())
        if (!TB.Mem[Loc].refines(S.Mem[Loc]))
          return false;
      return true;
    }

    // beh-partial: target trace consumed and target still running; the
    // source may extend (acquire-free, oracle-robust) to fulfill
    // outstanding commitments.
    if (AtEnd && TB.Kind == SeqBehavior::End::Partial &&
        Game.robustFulfill(S, TB.F.unionWith(R)))
      return true;

    // beh-failure at any point: oracle-robust acquire-free run to ⊥.
    if (Game.robustBottom(S))
      return true;

    // Otherwise advance the source by one transition.
    for (const SeqTransition &T : SrcM.successors(S)) {
      if (T.Labels.empty()) {
        // Unlabeled (silent or non-atomic) source step.
        if (match(K, R, T.Next))
          return true;
        continue;
      }
      // Labeled step(s): must match the next target label(s).
      if (AtEnd)
        continue; // equal-length traces required for trm/prt matching
      unsigned Pos = K;
      LocSet CurR = R;
      bool Ok = true;
      for (const SeqEvent &SrcE : T.Labels) {
        if (Pos >= TB.Trace.size()) {
          Ok = false;
          break;
        }
        if (!advancedLabelMatch(TB.Trace[Pos], SrcE, CurR)) {
          Ok = false;
          break;
        }
        ++Pos;
      }
      if (Ok && match(Pos, CurR, T.Next))
        return true;
    }
    return false;
  }

};

} // namespace

RefinementResult pseq::checkAdvancedRefinement(const Program &SrcP,
                                               unsigned SrcTid,
                                               const Program &TgtP,
                                               unsigned TgtTid,
                                               SeqConfig Cfg) {
  assert(sameLayout(SrcP, TgtP) &&
         "refinement requires identical memory layouts");
  Cfg = resolveUniverse(Cfg, SrcP, SrcTid, TgtP, TgtTid);

  obs::Telemetry *Telem = Cfg.Telem;
  obs::ScopedTimer Timer(Telem ? &Telem->Timers : nullptr, "seq.advanced");

  SeqMachine SrcM(SrcP, SrcTid, Cfg);
  SeqMachine TgtM(TgtP, TgtTid, Cfg);

  RefinementResult Result;
  std::vector<SeqState> SrcInits = enumerateInitialStates(SrcM);
  std::vector<SeqState> TgtInits = enumerateInitialStates(TgtM);
  assert(SrcInits.size() == TgtInits.size() &&
         "initial-state spaces must coincide");
  Result.InitialStates = static_cast<unsigned>(SrcInits.size());

  // Node budget per behavior match; generous relative to the behavior
  // enumeration budget (the matcher explores a product space).
  const unsigned NodeBudget = Cfg.StepBudget * 4096;

  detail::sweepInits(
      SrcM, TgtM, SrcInits.size(), Result,
      [&](const SeqMachine &SM, const SeqMachine &TM, size_t Idx,
          detail::InitRecord &R) {
        BehaviorSet Tgt = enumerateBehaviors(TM, TgtInits[Idx]);
        R.Bounded = Tgt.truncated();
        R.Cause = Tgt.Cause;
        R.TgtBehaviors = Tgt.All.size();
        for (const SeqBehavior &TB : Tgt.All) {
          Matcher M(SM, TB, Cfg.Universe, NodeBudget);
          bool Matched = M.run(SrcInits[Idx]);
          if (M.budgetHit()) {
            R.Bounded = true;
            noteTruncation(R.Cause, TruncationCause::StateBudget);
          }
          if (Matched)
            continue;
          if (M.budgetHit())
            continue; // the match may live past the node budget: already
                      // recorded as bounded, not a definite counterexample
          R.Failed = true;
          const std::vector<std::string> &Names = SrcP.locNames();
          R.Counterexample = "initial " + TgtInits[Idx].str(&Names) +
                             " target behavior " + TB.str(&Names) +
                             " unmatched by source (advanced)";
          return;
        }
      });
  observeRefinementCheck(Telem, "seq.check.advanced", Result, Timer.stop());
  return Result;
}

RefinementResult pseq::checkAdvancedRefinement(const Program &SrcP,
                                               const Program &TgtP,
                                               SeqConfig Cfg) {
  return checkAdvancedRefinement(SrcP, 0, TgtP, 0, std::move(Cfg));
}
