//===- seq/BehaviorEnum.h - Exhaustive behavior enumeration -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded exhaustive enumeration of the behaviors S ⇓ ⟨tr, r⟩ (Def 2.1) of
/// a SEQ state: every reachable point contributes a partial behavior
/// ⟨tr, prt(F)⟩, terminated runs contribute ⟨tr, trm(v, F, M)⟩, and runs
/// reaching ⊥ contribute ⟨tr, ⊥⟩. Enumeration is exact for programs whose
/// runs fit in the step budget; otherwise `Cause` records which budget was
/// hit and verdicts
/// derived from the set are "bounded".
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_BEHAVIORENUM_H
#define PSEQ_SEQ_BEHAVIORENUM_H

#include "seq/Behavior.h"
#include "seq/SeqMachine.h"
#include "support/Truncation.h"

namespace pseq {

/// A deduplicated set of behaviors.
struct BehaviorSet {
  std::vector<SeqBehavior> All;
  /// Which budget (if any) cut the enumeration short.
  TruncationCause Cause = TruncationCause::None;

  /// True when some budget was hit: verdicts derived from the set are
  /// "bounded" rather than exhaustive.
  bool truncated() const { return Cause != TruncationCause::None; }

  /// \returns true when some behavior of the set ⊒-matches \p Tgt.
  bool covers(const SeqBehavior &Tgt, LocSet Universe) const;
};

/// Enumerates the behaviors of \p Init under machine \p M.
BehaviorSet enumerateBehaviors(const SeqMachine &M, const SeqState &Init);

/// Enumerates all initial SEQ states of \p M: P and F range over subsets of
/// the universe, M over functions Universe → Domain ∪ {undef} (zero outside
/// the universe). Def 2.4 quantifies refinement over all of these.
std::vector<SeqState> enumerateInitialStates(const SeqMachine &M);

} // namespace pseq

#endif // PSEQ_SEQ_BEHAVIORENUM_H
