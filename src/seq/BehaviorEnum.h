//===- seq/BehaviorEnum.h - Exhaustive behavior enumeration -----*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded exhaustive enumeration of the behaviors S ⇓ ⟨tr, r⟩ (Def 2.1) of
/// a SEQ state: every reachable point contributes a partial behavior
/// ⟨tr, prt(F)⟩, terminated runs contribute ⟨tr, trm(v, F, M)⟩, and runs
/// reaching ⊥ contribute ⟨tr, ⊥⟩. Enumeration is exact for programs whose
/// runs fit in the step budget; otherwise `Cause` records which budget was
/// hit and verdicts
/// derived from the set are "bounded".
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_BEHAVIORENUM_H
#define PSEQ_SEQ_BEHAVIORENUM_H

#include "seq/Behavior.h"
#include "seq/SeqMachine.h"
#include "support/Truncation.h"

#include <cstdint>
#include <unordered_map>

namespace pseq {

/// A deduplicated set of behaviors, canonically sorted (behaviorLess) by
/// the enumerator so the vector is identical for every NumThreads.
struct BehaviorSet {
  std::vector<SeqBehavior> All;
  /// Which budget (if any) cut the enumeration short.
  TruncationCause Cause = TruncationCause::None;

  /// True when some budget was hit: verdicts derived from the set are
  /// "bounded" rather than exhaustive.
  bool truncated() const { return Cause != TruncationCause::None; }

  /// \returns true when some behavior of the set ⊒-matches \p Tgt.
  /// Hash-indexed on the refinement key (built lazily on first call; do
  /// not mutate All afterwards): only sources whose forced-equal
  /// components match the target are tried, plus the ⊥-ended sources,
  /// which match by trace prefix and stay in a linear side list.
  bool covers(const SeqBehavior &Tgt, LocSet Universe) const;

private:
  mutable std::unordered_multimap<uint64_t, uint32_t> RefineIndex;
  mutable std::vector<uint32_t> BottomSources;
  mutable bool Indexed = false;
  void buildIndex() const;
};

/// Enumerates the behaviors of \p Init under machine \p M. With
/// M.config().NumThreads > 1 the root successor tree is split into
/// frontier tasks explored by the pool; per-task results merge in task
/// order and the set sorts canonically, so the outcome matches the
/// single-threaded run (see DESIGN.md for the BehaviorCap caveat).
BehaviorSet enumerateBehaviors(const SeqMachine &M, const SeqState &Init);

/// Enumerates behaviors of every state in \p Inits (one BehaviorSet per
/// state, in order). With NumThreads > 1 the initial states fan out
/// across the pool — the natural axis for Def 2.4-style sweeps, where
/// each initial state's tree is independent.
std::vector<BehaviorSet>
enumerateBehaviorsBatch(const SeqMachine &M,
                        const std::vector<SeqState> &Inits);

/// Enumerates all initial SEQ states of \p M: P and F range over subsets of
/// the universe, M over functions Universe → Domain ∪ {undef} (zero outside
/// the universe). Def 2.4 quantifies refinement over all of these.
std::vector<SeqState> enumerateInitialStates(const SeqMachine &M);

} // namespace pseq

#endif // PSEQ_SEQ_BEHAVIORENUM_H
