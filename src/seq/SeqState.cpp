//===- seq/SeqState.cpp - SEQ machine states ------------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/SeqState.h"

#include "support/Hashing.h"

using namespace pseq;

uint64_t SeqState::hash() const {
  uint64_t H = Prog.hash();
  H = hashCombine(H, Perm.raw());
  H = hashCombine(H, Written.raw());
  for (Value V : Mem)
    H = hashCombine(H, V.hash());
  return H;
}

std::string SeqState::str(const std::vector<std::string> *LocNames) const {
  std::string Out = "<";
  switch (Prog.status()) {
  case ProgState::Status::Running:
    Out += "pc=" + std::to_string(Prog.pc());
    break;
  case ProgState::Status::Done:
    Out += "return(" + Prog.retVal().str() + ")";
    break;
  case ProgState::Status::Error:
    Out += "bottom";
    break;
  }
  Out += ", P=" + Perm.str(LocNames);
  Out += ", F=" + Written.str(LocNames);
  Out += ", M=[";
  for (size_t I = 0, E = Mem.size(); I != E; ++I) {
    if (I)
      Out += ",";
    Out += Mem[I].str();
  }
  Out += "]>";
  return Out;
}
