//===- seq/SeqEvent.h - SEQ trace labels ------------------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transition labels of the SEQ machine (Fig. 1). Non-atomic accesses are
/// unlabeled (they do not appear in traces); the labeled transitions are
///
///   choose(v)                              nondeterministic choice
///   R^rlx(x, v), W^rlx(x, v)               relaxed accesses
///   R^acq(x, v, P, P', F, V)               acquire read
///   W^rel(x, v, P, P', F, V)               release write
///
/// plus the extension label print(v) (system call, matched like a return
/// value). The partial order ⊑ on labels (Def 2.3) and the stripped form
/// |e| feeding oracles (Def 3.2) live here too.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_SEQEVENT_H
#define PSEQ_SEQ_SEQEVENT_H

#include "lang/Value.h"
#include "memo/Independence.h"
#include "support/LocSet.h"

#include <string>
#include <utility>
#include <vector>

namespace pseq {

/// A partial function Loc_na ⇀ Val, kept sorted by location. Used for the
/// gained-values map of acquire reads and the released memory M|P of
/// release writes.
class PartialMem {
  std::vector<std::pair<unsigned, Value>> Entries;

public:
  PartialMem() = default;

  void set(unsigned Loc, Value V);
  const Value *lookup(unsigned Loc) const;
  LocSet domain() const;
  size_t size() const { return Entries.size(); }
  const std::vector<std::pair<unsigned, Value>> &entries() const {
    return Entries;
  }

  /// Pointwise ⊑ with equal domains: this (target) refines \p Src.
  bool refines(const PartialMem &Src) const;

  /// Locations where the target value does NOT refine the source value
  /// ({y | V_tgt(y) ⋢ V_src(y)} in beh-rel-write of Fig. 2). Locations
  /// missing from either side never enter the set (equal domains expected).
  LocSet nonRefiningLocs(const PartialMem &Src) const;

  bool operator==(const PartialMem &O) const { return Entries == O.Entries; }
  uint64_t hash() const;
  std::string str() const;
};

/// A SEQ trace label.
struct SeqEvent {
  enum class Kind {
    Choose,   ///< choose(v)
    RlxRead,  ///< R^rlx(x, v)
    RlxWrite, ///< W^rlx(x, v)
    AcqRead,  ///< R^acq(x, v, P, P', F, V)
    RelWrite, ///< W^rel(x, v, P, P', F, V)
    AcqFence, ///< fence extension: gains like an acquire read
    RelFence, ///< fence extension: releases like a release write
    Syscall   ///< print(v)
  };

  Kind K = Kind::Choose;
  unsigned Loc = 0; ///< unused for Choose/Syscall/fences
  Value V;
  // Acquire/release payloads:
  LocSet P;     ///< permission set before
  LocSet P2;    ///< permission set after
  LocSet F;     ///< written-locations set at the transition
  PartialMem Vm; ///< gained values (acq) / released memory M|P (rel)

  static SeqEvent choose(Value V);
  static SeqEvent rlxRead(unsigned Loc, Value V);
  static SeqEvent rlxWrite(unsigned Loc, Value V);
  static SeqEvent acqRead(unsigned Loc, Value V, LocSet P, LocSet P2,
                          LocSet F, PartialMem Vm);
  static SeqEvent relWrite(unsigned Loc, Value V, LocSet P, LocSet P2,
                           LocSet F, PartialMem Vm);
  static SeqEvent acqFence(LocSet P, LocSet P2, LocSet F, PartialMem Vm);
  static SeqEvent relFence(LocSet P, LocSet P2, LocSet F, PartialMem Vm);
  static SeqEvent syscall(Value V);

  bool isAcquire() const {
    return K == Kind::AcqRead || K == Kind::AcqFence;
  }
  bool isRelease() const {
    return K == Kind::RelWrite || K == Kind::RelFence;
  }

  /// Label refinement e_tgt ⊑ e_src (Def 2.3, extended to fences/syscalls):
  /// identical up to (a) target write/syscall values refining source
  /// values, (b) F_tgt ⊆ F_src on acquire/release labels, and (c) pointwise
  /// value refinement of the released memory on release labels.
  bool refinesLabel(const SeqEvent &Src) const;

  /// Equality of the stripped forms |e| (Def 3.2): drops the F component.
  bool strippedEquals(const SeqEvent &O) const;

  bool operator==(const SeqEvent &O) const;
  uint64_t hash() const;
  std::string str(const std::vector<std::string> *LocNames = nullptr) const;
};

/// Trace refinement: same length, pointwise label refinement (Def 2.3(2)).
bool traceRefines(const std::vector<SeqEvent> &Tgt,
                  const std::vector<SeqEvent> &Src);

/// Conservative memo::Footprint of one label, for independence reasoning
/// over SEQ traces (memo/Independence.h): choices touch nothing, relaxed
/// accesses touch their location, acquire/release labels (and fences)
/// transfer permissions over arbitrary location sets and are Global,
/// syscalls append to the output order. Note that SEQ *behaviors* embed
/// the trace itself, so reordering independent labels still changes the
/// behavior — this predicate supports clients that reason about state
/// convergence (and the PS^na explorer's footprints mirror its shape); it
/// must never be used to drop trace interleavings from a behavior set.
memo::Footprint footprint(const SeqEvent &E);

/// True when two labels may not commute (conservative; see footprint()).
bool conflicts(const SeqEvent &A, const SeqEvent &B);

/// Per-label matching of the *advanced* refinement (Fig. 2): like
/// refinesLabel, but tracking the commitment set \p R — reset at acquires
/// (after checking F_tgt ∪ R ⊆ F_src) and recomputed at releases
/// (R' = (R \ F_src) ∪ (F_tgt \ F_src) ∪ {y | V_tgt(y) ⋢ V_src(y)}).
/// Shared by the trace matcher and the Fig. 6 simulation checker.
bool advancedLabelMatch(const SeqEvent &Tgt, const SeqEvent &Src, LocSet &R);

} // namespace pseq

#endif // PSEQ_SEQ_SEQEVENT_H
