//===- seq/SeqMachine.cpp - Transitions of SEQ ----------------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/SeqMachine.h"

#include "obs/Telemetry.h"

#include <cassert>

using namespace pseq;

SeqState SeqMachine::initial(LocSet Perm, LocSet Written,
                             std::vector<Value> Mem) const {
  SeqState S;
  S.Prog = ProgState::initial(Prog, Tid);
  S.Perm = Perm;
  S.Written = Written;
  S.Mem = std::move(Mem);
  assert(S.Mem.size() == Prog.numLocs() && "memory size mismatch");
  return S;
}

std::vector<Value> SeqMachine::readValues(bool IncludeUndef) const {
  std::vector<Value> Out;
  Out.reserve(Cfg.Domain.size() + 1);
  for (int64_t V : Cfg.Domain.values())
    Out.push_back(Value::of(V));
  if (IncludeUndef)
    Out.push_back(Value::undef());
  return Out;
}

std::vector<PartialMem> SeqMachine::partialMems(LocSet Dom) const {
  std::vector<PartialMem> Out;
  Out.push_back(PartialMem());
  std::vector<Value> Vals = readValues(/*IncludeUndef=*/true);
  for (unsigned Loc : Dom.members()) {
    std::vector<PartialMem> Next;
    Next.reserve(Out.size() * Vals.size());
    for (const PartialMem &Base : Out) {
      for (Value V : Vals) {
        PartialMem M = Base;
        M.set(Loc, V);
        Next.push_back(std::move(M));
      }
    }
    Out = std::move(Next);
  }
  return Out;
}

namespace {

/// Restricts \p Mem to the locations in \p Dom (M|P in Fig. 1).
PartialMem restrict(const std::vector<Value> &Mem, LocSet Dom) {
  PartialMem Out;
  for (unsigned Loc : Dom.members())
    Out.set(Loc, Mem[Loc]);
  return Out;
}

} // namespace

std::vector<SeqTransition> SeqMachine::successors(const SeqState &S) const {
  std::vector<SeqTransition> Out = successorsUncounted(S);
  if (Cfg.Telem) {
    Cfg.Telem->Counters.add("seq.machine.successor_calls");
    Cfg.Telem->Counters.add("seq.machine.transitions", Out.size());
  }
  return Out;
}

std::vector<SeqTransition>
SeqMachine::successorsUncounted(const SeqState &S) const {
  std::vector<SeqTransition> Out;
  if (S.Prog.status() != ProgState::Status::Running)
    return Out;

  ProgState::Pending Pend = S.Prog.pending(Prog, Tid);
  switch (Pend.K) {
  case ProgState::Pending::Kind::Silent:
  case ProgState::Pending::Kind::Fail: {
    SeqTransition T;
    T.Next = S;
    T.Next.Prog.applySilent(Prog, Tid);
    Out.push_back(std::move(T));
    return Out;
  }

  case ProgState::Pending::Kind::Choose: {
    for (Value V : readValues(/*IncludeUndef=*/false)) {
      SeqTransition T;
      T.Next = S;
      T.Next.Prog.applyChoose(Prog, Tid, V);
      T.Labels.push_back(SeqEvent::choose(V));
      Out.push_back(std::move(T));
    }
    return Out;
  }

  case ProgState::Pending::Kind::Read: {
    unsigned X = Pend.Loc;
    switch (Pend.RM) {
    case ReadMode::NA: {
      // (na-read): load M(x) when x ∈ P; (racy-na-read): load undef
      // otherwise. Unlabeled either way.
      SeqTransition T;
      T.Next = S;
      Value V = S.Perm.contains(X) ? S.Mem[X] : Value::undef();
      T.Next.Prog.applyRead(Prog, Tid, V);
      Out.push_back(std::move(T));
      return Out;
    }
    case ReadMode::RLX: {
      // (choice/relaxed): the environment supplies any value.
      for (Value V : readValues(/*IncludeUndef=*/true)) {
        SeqTransition T;
        T.Next = S;
        T.Next.Prog.applyRead(Prog, Tid, V);
        T.Labels.push_back(SeqEvent::rlxRead(X, V));
        Out.push_back(std::move(T));
      }
      return Out;
    }
    case ReadMode::ACQ: {
      // (acq-read): nondeterministically gain permissions P' ⊇ P and new
      // values V for the gained locations.
      for (Value V : readValues(/*IncludeUndef=*/true)) {
        for (LocSet P2 : S.Perm.supersetsWithin(Cfg.Universe)) {
          for (PartialMem &Vm : partialMems(P2.setMinus(S.Perm))) {
            SeqTransition T;
            T.Next = S;
            T.Next.Prog.applyRead(Prog, Tid, V);
            T.Next.Perm = P2;
            for (const auto &[Loc, NewV] : Vm.entries())
              T.Next.Mem[Loc] = NewV;
            T.Labels.push_back(
                SeqEvent::acqRead(X, V, S.Perm, P2, S.Written, Vm));
            Out.push_back(std::move(T));
          }
        }
      }
      return Out;
    }
    }
    return Out;
  }

  case ProgState::Pending::Kind::Write: {
    unsigned X = Pend.Loc;
    Value V = Pend.WVal;
    switch (Pend.WM) {
    case WriteMode::NA: {
      SeqTransition T;
      T.Next = S;
      if (S.Perm.contains(X)) {
        // (na-write): update memory, record x ∈ F.
        T.Next.Prog.applyWrite(Prog, Tid);
        T.Next.Mem[X] = V;
        T.Next.Written.insert(X);
      } else {
        // (racy-na-write): UB.
        T.Next.Prog.setError();
      }
      Out.push_back(std::move(T));
      return Out;
    }
    case WriteMode::RLX: {
      SeqTransition T;
      T.Next = S;
      T.Next.Prog.applyWrite(Prog, Tid);
      T.Labels.push_back(SeqEvent::rlxWrite(X, V));
      Out.push_back(std::move(T));
      return Out;
    }
    case WriteMode::REL: {
      // (rel-write): nondeterministically lose permissions; record the
      // released memory M|P; reset F.
      PartialMem Released = restrict(S.Mem, S.Perm);
      for (LocSet P2 : S.Perm.subsets()) {
        SeqTransition T;
        T.Next = S;
        T.Next.Prog.applyWrite(Prog, Tid);
        T.Next.Perm = P2;
        T.Next.Written = LocSet::empty();
        T.Labels.push_back(
            SeqEvent::relWrite(X, V, S.Perm, P2, S.Written, Released));
        Out.push_back(std::move(T));
      }
      return Out;
    }
    }
    return Out;
  }

  case ProgState::Pending::Kind::Rmw: {
    // Extension: read part then write part, both in one transition (up to
    // two labels). Acquire read parts gain permissions, release write
    // parts lose them, mirroring the standalone accesses.
    unsigned X = Pend.Loc;
    for (Value Old : readValues(/*IncludeUndef=*/true)) {
      // Resolve the read part's permission effect.
      struct ReadCase {
        SeqState State;
        std::vector<SeqEvent> Labels;
      };
      std::vector<ReadCase> ReadCases;
      if (Pend.RM == ReadMode::ACQ) {
        for (LocSet P2 : S.Perm.supersetsWithin(Cfg.Universe)) {
          for (PartialMem &Vm : partialMems(P2.setMinus(S.Perm))) {
            ReadCase RC;
            RC.State = S;
            RC.State.Perm = P2;
            for (const auto &[Loc, NewV] : Vm.entries())
              RC.State.Mem[Loc] = NewV;
            RC.Labels.push_back(
                SeqEvent::acqRead(X, Old, S.Perm, P2, S.Written, Vm));
            ReadCases.push_back(std::move(RC));
          }
        }
      } else {
        ReadCase RC;
        RC.State = S;
        RC.Labels.push_back(SeqEvent::rlxRead(X, Old));
        ReadCases.push_back(std::move(RC));
      }
      for (ReadCase &RC : ReadCases) {
        SeqState Mid = RC.State;
        bool DoesWrite = false;
        Value NewVal;
        Mid.Prog.applyRmw(Prog, Tid, Old, DoesWrite, NewVal);
        if (Mid.Prog.isError()) {
          // CAS comparison on undef: UB after the read part.
          SeqTransition T;
          T.Labels = RC.Labels;
          T.Next = std::move(Mid);
          Out.push_back(std::move(T));
          continue;
        }
        if (!DoesWrite) {
          SeqTransition T;
          T.Labels = RC.Labels;
          T.Next = std::move(Mid);
          Out.push_back(std::move(T));
          continue;
        }
        if (Pend.WM == WriteMode::REL) {
          PartialMem Released = restrict(Mid.Mem, Mid.Perm);
          for (LocSet P2 : Mid.Perm.subsets()) {
            SeqTransition T;
            T.Labels = RC.Labels;
            T.Labels.push_back(SeqEvent::relWrite(
                X, NewVal, Mid.Perm, P2, Mid.Written, Released));
            T.Next = Mid;
            T.Next.Perm = P2;
            T.Next.Written = LocSet::empty();
            Out.push_back(std::move(T));
          }
        } else {
          SeqTransition T;
          T.Labels = RC.Labels;
          T.Labels.push_back(SeqEvent::rlxWrite(X, NewVal));
          T.Next = std::move(Mid);
          Out.push_back(std::move(T));
        }
      }
    }
    return Out;
  }

  case ProgState::Pending::Kind::Fence: {
    if (Pend.FM == FenceMode::ACQ) {
      for (LocSet P2 : S.Perm.supersetsWithin(Cfg.Universe)) {
        for (PartialMem &Vm : partialMems(P2.setMinus(S.Perm))) {
          SeqTransition T;
          T.Next = S;
          T.Next.Prog.applyFence(Prog, Tid);
          T.Next.Perm = P2;
          for (const auto &[Loc, NewV] : Vm.entries())
            T.Next.Mem[Loc] = NewV;
          T.Labels.push_back(SeqEvent::acqFence(S.Perm, P2, S.Written, Vm));
          Out.push_back(std::move(T));
        }
      }
      return Out;
    }
    assert(Pend.FM == FenceMode::REL &&
           "combined fences are lowered at compile time");
    PartialMem Released = restrict(S.Mem, S.Perm);
    for (LocSet P2 : S.Perm.subsets()) {
      SeqTransition T;
      T.Next = S;
      T.Next.Prog.applyFence(Prog, Tid);
      T.Next.Perm = P2;
      T.Next.Written = LocSet::empty();
      T.Labels.push_back(SeqEvent::relFence(S.Perm, P2, S.Written, Released));
      Out.push_back(std::move(T));
    }
    return Out;
  }

  case ProgState::Pending::Kind::Print: {
    SeqTransition T;
    T.Next = S;
    T.Next.Prog.applyPrint(Prog, Tid);
    T.Labels.push_back(SeqEvent::syscall(Pend.WVal));
    Out.push_back(std::move(T));
    return Out;
  }
  }
  assert(false && "unknown pending kind");
  return Out;
}
