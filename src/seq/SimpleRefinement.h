//===- seq/SimpleRefinement.h - Def 2.4 decision procedure ------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simple behavioral refinement of §2 (Def 2.4): σ_tgt ⊑ σ_src iff for
/// every initial ⟨P, F, M⟩, every behavior of ⟨σ_tgt, P, F, M⟩ is matched
/// (⊑, Def 2.3) by some behavior of ⟨σ_src, P, F, M⟩. Decided by exhaustive
/// bounded enumeration over the footprint universe.
///
/// This notion suffices for "the vast majority of optimizations (including
/// all those involving solely non-atomics)"; transformations combining a
/// non-atomic write with a release/relaxed atomic need the advanced notion
/// (seq/AdvancedRefinement.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_SIMPLEREFINEMENT_H
#define PSEQ_SEQ_SIMPLEREFINEMENT_H

#include "seq/BehaviorEnum.h"

#include <string>

namespace pseq {

/// Outcome of a refinement check.
struct RefinementResult {
  bool Holds = true;
  /// True when some enumeration was truncated by a budget: a positive
  /// verdict is then "bounded-verified" rather than exhaustive. Negative
  /// verdicts (counterexamples) are always definite.
  bool Bounded = false;
  /// The first budget responsible for Bounded (None when exhaustive).
  /// Matcher/game node budgets report as StateBudget.
  TruncationCause Cause = TruncationCause::None;
  std::string Counterexample; ///< initial state + unmatched target behavior

  // Statistics for the bench harness.
  unsigned InitialStates = 0;
  unsigned long long SrcBehaviors = 0;
  unsigned long long TgtBehaviors = 0;
};

/// Fills Cfg.Universe (if empty) with the union of the two threads'
/// non-atomic footprints.
SeqConfig resolveUniverse(SeqConfig Cfg, const Program &SrcP, unsigned SrcTid,
                          const Program &TgtP, unsigned TgtTid);

/// Telemetry epilogue shared by the refinement checkers: bumps
/// `<Kind>.{calls,fails,bounded}` and emits one trace event per call.
/// No-op when \p Telem is null.
void observeRefinementCheck(obs::Telemetry *Telem, const char *Kind,
                            const RefinementResult &R, double Ms);

/// Decides σ_tgt ⊑ σ_src (Def 2.4) for thread \p TgtTid of \p TgtP against
/// thread \p SrcTid of \p SrcP. The programs must share a memory layout.
RefinementResult checkSimpleRefinement(const Program &SrcP, unsigned SrcTid,
                                       const Program &TgtP, unsigned TgtTid,
                                       SeqConfig Cfg = SeqConfig());

/// Convenience overload: single-thread programs (thread 0 vs thread 0).
RefinementResult checkSimpleRefinement(const Program &SrcP,
                                       const Program &TgtP,
                                       SeqConfig Cfg = SeqConfig());

} // namespace pseq

#endif // PSEQ_SEQ_SIMPLEREFINEMENT_H
