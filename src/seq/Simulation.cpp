//===- seq/Simulation.cpp - The Fig 6 simulation checker ------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "seq/Simulation.h"

#include "guard/Guard.h"
#include "seq/BehaviorEnum.h"
#include "seq/OracleGame.h"
#include "seq/SimpleRefinement.h"
#include "support/Hashing.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace pseq;

namespace {

/// One run of the fixpoint for one initial ⟨P, F, M⟩.
class SimChecker {
  const SeqMachine &SrcM;
  const SeqMachine &TgtM;
  LocSet Universe;
  unsigned MaxNodes;
  bool Exhausted = false;
  guard::ResourceGuard *Guard;
  OracleGame Game;

  //===--------------------------------------------------------------------===
  // Product nodes
  //===--------------------------------------------------------------------===

  struct NodeKey {
    SeqState Src;
    SeqState Tgt;
    uint64_t R;
    bool operator==(const NodeKey &O) const {
      return R == O.R && Src == O.Src && Tgt == O.Tgt;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      uint64_t H = hashCombine(K.R, K.Src.hash());
      return static_cast<size_t>(hashCombine(H, K.Tgt.hash()));
    }
  };

  struct Node {
    bool Alive = true;
    bool Saved = false; ///< unconditionally true (game / terminal check)
    /// One entry per target transition; the node needs a surviving option
    /// in every entry.
    std::vector<std::vector<unsigned>> Edges;
  };

  std::vector<Node> Nodes;
  std::unordered_map<NodeKey, unsigned, NodeKeyHash> Ids;

  /// Unlabeled-reachable source states (memoized per source state).
  std::unordered_map<uint64_t, std::vector<SeqState>> ClosureMemo;

  const std::vector<SeqState> &closure(const SeqState &S) {
    uint64_t H = S.hash();
    auto It = ClosureMemo.find(H);
    if (It != ClosureMemo.end())
      return It->second;
    std::vector<SeqState> Out;
    std::deque<SeqState> Work{S};
    Out.push_back(S);
    // Visited tracking by equality over the (small) closure set.
    auto seen = [&](const SeqState &X) {
      for (const SeqState &Y : Out)
        if (X == Y)
          return true;
      return false;
    };
    while (!Work.empty()) {
      SeqState Cur = Work.front();
      Work.pop_front();
      for (const SeqTransition &T : SrcM.successors(Cur)) {
        if (!T.Labels.empty())
          continue;
        if (seen(T.Next))
          continue;
        Out.push_back(T.Next);
        Work.push_back(T.Next);
      }
    }
    return ClosureMemo.emplace(H, std::move(Out)).first->second;
  }

  /// All (source state, R') pairs reachable by consuming the label
  /// sequence \p Labels from \p S (interleaving unlabeled steps freely).
  void matchResponses(const SeqState &S, const std::vector<SeqEvent> &Labels,
                      size_t Idx, LocSet R,
                      std::vector<std::pair<SeqState, LocSet>> &Out) {
    if (Idx == Labels.size()) {
      Out.push_back({S, R});
      return;
    }
    for (const SeqState &C : closure(S)) {
      for (const SeqTransition &T : SrcM.successors(C)) {
        if (T.Labels.empty())
          continue; // closure already covered unlabeled steps
        if (T.Labels.size() > Labels.size() - Idx)
          continue;
        LocSet CurR = R;
        bool Ok = true;
        for (size_t I = 0; I != T.Labels.size(); ++I) {
          if (!advancedLabelMatch(Labels[Idx + I], T.Labels[I], CurR)) {
            Ok = false;
            break;
          }
        }
        if (Ok)
          matchResponses(T.Next, Labels, Idx + T.Labels.size(), CurR, Out);
      }
    }
  }

  /// Terminal condition (Fig. 6's return clause): some unlabeled source
  /// continuation terminates compatibly, or is already ⊥.
  bool terminalReach(const SeqState &Src, const SeqState &Tgt, LocSet R) {
    Value TgtVal = Tgt.Prog.retVal();
    for (const SeqState &C : closure(Src)) {
      if (C.isBottom())
        return true; // beh-failure with an empty suffix
      if (!C.isTerminated())
        continue;
      if (!TgtVal.refines(C.Prog.retVal()))
        continue;
      if (!Tgt.Written.unionWith(R).isSubsetOf(C.Written))
        continue;
      bool MemOk = true;
      for (unsigned Loc : Universe.members())
        if (!Tgt.Mem[Loc].refines(C.Mem[Loc]))
          MemOk = false;
      if (MemOk)
        return true;
    }
    return false;
  }

  /// Builds (or retrieves) the node for a key; returns its id, or ~0u when
  /// it is immediately false.
  static constexpr unsigned Dead = ~0u;

  unsigned build(const SeqState &Src, const SeqState &Tgt, LocSet R) {
    NodeKey Key{Src, Tgt, R.raw()};
    auto It = Ids.find(Key);
    if (It != Ids.end())
      return Nodes[It->second].Alive ? It->second : Dead;
    if (Nodes.size() >= MaxNodes) {
      Exhausted = true;
      return Dead;
    }
    if (Guard && Guard->checkpoint() != TruncationCause::None) {
      // A guard trip behaves like node exhaustion: the product space is cut
      // short, the caller reports an incomplete (never negative) verdict.
      Exhausted = true;
      return Dead;
    }

    unsigned Id = static_cast<unsigned>(Nodes.size());
    Ids.emplace(Key, Id);
    Nodes.push_back(Node());

    // Unconditional saves: source already ⊥ in the closure is subsumed by
    // the late-UB game (which also explores unlabeled steps).
    if (Game.robustBottom(Src)) {
      Nodes[Id].Saved = true;
      return Id;
    }

    if (Tgt.isBottom()) {
      // Only the game can match a ⊥ target.
      Nodes[Id].Alive = false;
      return Dead;
    }
    if (Tgt.isTerminated()) {
      bool Ok = terminalReach(Src, Tgt, R);
      Nodes[Id].Alive = Ok;
      Nodes[Id].Saved = Ok;
      return Ok ? Id : Dead;
    }

    // Running target: the prt-condition must hold here (Fig. 6's last
    // conjunct — every point of the target generates a partial behavior).
    if (!Game.robustFulfill(Src, Tgt.Written.unionWith(R))) {
      Nodes[Id].Alive = false;
      return Dead;
    }

    // Edges: every target transition needs a source response.
    std::vector<SeqTransition> TgtSuccs = TgtM.successors(Tgt);
    for (const SeqTransition &T : TgtSuccs) {
      std::vector<std::pair<SeqState, LocSet>> Responses;
      if (T.Labels.empty()) {
        Responses.push_back({Src, R});
      } else {
        matchResponses(Src, T.Labels, 0, R, Responses);
      }
      std::vector<unsigned> Options;
      for (const auto &[NextSrc, NextR] : Responses) {
        unsigned Succ = build(NextSrc, T.Next, NextR);
        if (Succ != Dead)
          Options.push_back(Succ);
      }
      // Note: a successor reported Dead here may be a node still being
      // built higher up the recursion; we only prune *definitely* dead
      // ones. Options may legitimately be empty — then this node dies in
      // the fixpoint (or immediately).
      Nodes[Id].Edges.push_back(std::move(Options));
    }
    // Re-check aliveness after recursion (the map may have been rehashed).
    for (const std::vector<unsigned> &Edge : Nodes[Id].Edges) {
      if (Edge.empty()) {
        Nodes[Id].Alive = false;
        return Dead;
      }
    }
    return Id;
  }

  /// Greatest-fixpoint pruning: kill nodes whose some edge has no living
  /// option, until stable.
  void prune() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (Node &N : Nodes) {
        if (!N.Alive || N.Saved)
          continue;
        for (const std::vector<unsigned> &Edge : N.Edges) {
          bool AnyAlive = false;
          for (unsigned Succ : Edge)
            if (Nodes[Succ].Alive)
              AnyAlive = true;
          if (!AnyAlive) {
            N.Alive = false;
            Changed = true;
            break;
          }
        }
      }
    }
  }

public:
  SimChecker(const SeqMachine &SrcM, const SeqMachine &TgtM, LocSet Universe,
             unsigned MaxNodes, unsigned GameBudget)
      : SrcM(SrcM), TgtM(TgtM), Universe(Universe), MaxNodes(MaxNodes),
        Guard(SrcM.config().Guard), Game(SrcM, GameBudget) {}

  bool run(const SeqState &SrcInit, const SeqState &TgtInit) {
    unsigned Root = build(SrcInit, TgtInit, LocSet::empty());
    if (Root == Dead)
      return false;
    prune();
    return Nodes[Root].Alive;
  }

  bool exhausted() const { return Exhausted || Game.budgetHit(); }
  unsigned nodeCount() const { return static_cast<unsigned>(Nodes.size()); }
};

} // namespace

SimulationResult pseq::checkSimulation(const Program &SrcP, unsigned SrcTid,
                                       const Program &TgtP, unsigned TgtTid,
                                       SeqConfig Cfg, unsigned MaxNodes) {
  assert(sameLayout(SrcP, TgtP) &&
         "simulation requires identical memory layouts");
  Cfg = resolveUniverse(Cfg, SrcP, SrcTid, TgtP, TgtTid);

  SeqMachine SrcM(SrcP, SrcTid, Cfg);
  SeqMachine TgtM(TgtP, TgtTid, Cfg);

  SimulationResult Result;
  std::vector<SeqState> SrcInits = enumerateInitialStates(SrcM);
  std::vector<SeqState> TgtInits = enumerateInitialStates(TgtM);
  assert(SrcInits.size() == TgtInits.size() &&
         "initial-state spaces must coincide");

  const unsigned GameBudget = Cfg.StepBudget * 4096;
  guard::ResourceGuard *G = Cfg.Guard;
  for (size_t Idx = 0, E = SrcInits.size(); Idx != E; ++Idx) {
    if (G && G->checkpoint() != TruncationCause::None) {
      // Remaining initial states go unverified: incomplete, not negative.
      Result.Complete = false;
      noteTruncation(Result.Cause, G->cause());
      return Result;
    }
    SimChecker Checker(SrcM, TgtM, Cfg.Universe, MaxNodes, GameBudget);
    bool Ok = Checker.run(SrcInits[Idx], TgtInits[Idx]);
    Result.ProductNodes += Checker.nodeCount();
    if (Checker.exhausted()) {
      Result.Complete = false;
      noteTruncation(Result.Cause, G && G->stopped()
                                       ? G->cause()
                                       : TruncationCause::StateBudget);
    }
    if (!Ok) {
      if (G && G->stopped()) {
        // The product graph was cut by the trip; a dead root proves
        // nothing. Report incomplete instead of a spurious rejection.
        Result.Complete = false;
        noteTruncation(Result.Cause, G->cause());
        return Result;
      }
      Result.Holds = false;
      const std::vector<std::string> &Names = SrcP.locNames();
      Result.Counterexample =
          "no simulation from initial " + TgtInits[Idx].str(&Names);
      return Result;
    }
  }
  return Result;
}

SimulationResult pseq::checkSimulation(const Program &SrcP,
                                       const Program &TgtP, SeqConfig Cfg,
                                       unsigned MaxNodes) {
  return checkSimulation(SrcP, 0, TgtP, 0, std::move(Cfg), MaxNodes);
}
