//===- seq/Simulation.h - The Fig 6 simulation checker ----------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appendix A's simulation relation ∼ᴬ (Fig. 6) as a greatest-fixpoint
/// computation over the product of the two SEQ machines — the device the
/// paper's Coq optimizer actually uses (Remark 2, §6). Unlike the
/// trace-based checkers, the simulation is *coinductive*: cycles in the
/// product graph (loops!) are handled exactly, so loop-carrying
/// transformations like Example 1.3's LICM get definitive verdicts
/// whenever the product space is finite.
///
/// A product node is ⟨src SEQ state, tgt SEQ state, commitment set R⟩.
/// A node survives the fixpoint iff
///   * the late-UB game saves it (∀Ω acquire-free source run to ⊥), or
///   * the target is terminated and some unlabeled source continuation
///     terminates with v_tgt ⊑ v_src, F_tgt ∪ R ⊆ F_src, M_tgt ⊑ M_src, or
///   * the target is running, the prt-condition holds (∀Ω acquire-free
///     source run fulfilling F_tgt ∪ R — Fig. 6's big last conjunct), and
///     every target transition has a surviving source response (unlabeled
///     closure + label-matched steps, with Fig. 2's commitment updates).
///
/// The relation this computes entails ⊑w, hence (Thm 6.2) contextual
/// refinement in PS^na.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SEQ_SIMULATION_H
#define PSEQ_SEQ_SIMULATION_H

#include "seq/SeqMachine.h"
#include "support/Truncation.h"

#include <string>

namespace pseq {

/// Outcome of the simulation check.
struct SimulationResult {
  bool Holds = true;
  /// True when every product space fit in the node budget and no game hit
  /// its budget: the verdict is then exact even for loop programs.
  bool Complete = true;
  /// Why the check is incomplete (StateBudget for node/game budgets, or a
  /// guard cause — Deadline / MemBudget / Cancelled). None when Complete.
  TruncationCause Cause = TruncationCause::None;
  unsigned ProductNodes = 0;
  std::string Counterexample;
};

/// Decides simulation between thread \p TgtTid of \p TgtP and thread
/// \p SrcTid of \p SrcP, quantified over all initial ⟨P, F, M⟩.
SimulationResult checkSimulation(const Program &SrcP, unsigned SrcTid,
                                 const Program &TgtP, unsigned TgtTid,
                                 SeqConfig Cfg = SeqConfig(),
                                 unsigned MaxNodes = 400000);

/// Convenience overload: single-thread programs.
SimulationResult checkSimulation(const Program &SrcP, const Program &TgtP,
                                 SeqConfig Cfg = SeqConfig(),
                                 unsigned MaxNodes = 400000);

} // namespace pseq

#endif // PSEQ_SEQ_SIMULATION_H
