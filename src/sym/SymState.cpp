//===- sym/SymState.cpp - Symbolic SEQ product states ---------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "sym/SymState.h"

#include "support/Hashing.h"

#include <cassert>
#include <limits>
#include <map>
#include <unordered_map>

using namespace pseq;
using namespace pseq::sym;
using analysis::AbsDom;
using analysis::Interval;

namespace {

constexpr uint64_t CompositeBit = uint64_t(1) << 63;

/// The correlation component of a cell: its identity when it has one, a
/// value-derived pseudo-identity when the abstract fact pins the cell
/// (equal singletons / definite undefs are equal without an identity), and
/// 0 when the cell is uncorrelatable.
uint64_t correlationComponent(const SymVal &V) {
  if (V.Id != 0)
    return V.Id;
  if (V.Abs.isSingleton())
    return hashCombine(0x5eedC0C0, static_cast<uint64_t>(V.Abs.singleton())) |
           CompositeBit;
  if (V.Abs.isDefinitelyUndef())
    return hashCombine(0x5eedDEAD, 1) | CompositeBit;
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// SymVal
//===----------------------------------------------------------------------===//

std::string SymVal::str() const {
  std::string S = Abs.str();
  if (Id != 0)
    S += "#" + std::to_string(Id & ~CompositeBit);
  return S;
}

bool pseq::sym::definitelyEqual(const SymVal &A, const SymVal &B) {
  if (A.Id != 0 && A.Id == B.Id)
    return true;
  if (A.Abs.isSingleton() && B.Abs.isSingleton())
    return A.Abs.singleton() == B.Abs.singleton();
  return A.Abs.isDefinitelyUndef() && B.Abs.isDefinitelyUndef();
}

bool pseq::sym::definitelyNotEqual(const SymVal &A, const SymVal &B) {
  if (A.Abs.mayUndef() || B.Abs.mayUndef())
    return false;
  if (A.Id != 0 && A.Id == B.Id)
    return false;
  return A.Abs.meet(B.Abs).isBottom();
}

bool pseq::sym::definitelyRefines(const SymVal &Tgt, const SymVal &Src) {
  return Src.Abs.isDefinitelyUndef() || definitelyEqual(Tgt, Src);
}

uint64_t pseq::sym::hashSymVal(const SymVal &V) {
  uint64_t H = hashCombine(0x53563030, V.Id);
  const AbsDom &A = V.Abs;
  H = hashCombine(H, A.mayUndef() ? 1 : 0);
  if (A.itv().isEmpty()) {
    H = hashCombine(H, 0x11);
  } else {
    H = hashCombine(H, static_cast<uint64_t>(A.itv().lo()));
    H = hashCombine(H, static_cast<uint64_t>(A.itv().hi()));
  }
  if (A.cng().isEmpty()) {
    H = hashCombine(H, 0x22);
  } else {
    H = hashCombine(H, A.cng().mod());
    H = hashCombine(H, static_cast<uint64_t>(A.cng().rem()));
  }
  return H;
}

//===----------------------------------------------------------------------===//
// SymProdState
//===----------------------------------------------------------------------===//

uint64_t SymProdState::keyHash() const {
  uint64_t H = hashCombine(0x50524f44, Tgt.Pc);
  H = hashCombine(H, static_cast<uint64_t>(Tgt.St));
  H = hashCombine(H, Src.Pc);
  H = hashCombine(H, static_cast<uint64_t>(Src.St));
  H = hashCombine(H, Perm.raw());
  H = hashCombine(H, WTgt.raw());
  H = hashCombine(H, WSrc.raw());
  H = hashCombine(H, R.raw());
  return H;
}

bool SymProdState::sameKey(const SymProdState &O) const {
  return Tgt.Pc == O.Tgt.Pc && Tgt.St == O.Tgt.St && Src.Pc == O.Src.Pc &&
         Src.St == O.Src.St && Perm == O.Perm && WTgt == O.WTgt &&
         WSrc == O.WSrc && R == O.R;
}

uint64_t SymProdState::hash() const {
  uint64_t H = keyHash();
  forEachCell([&](const SymVal &V) { H = hashCombine(H, hashSymVal(V)); });
  return H;
}

void SymProdState::canonicalize() {
  std::unordered_map<uint64_t, uint64_t> Rename;
  uint64_t Next = 1;
  forEachCell([&](SymVal &V) {
    if (V.Abs.isSingleton() || V.Abs.isDefinitelyUndef() || V.Abs.isBottom()) {
      V.Id = 0; // the fact itself witnesses every equality
      return;
    }
    if (V.Id == 0)
      return;
    auto [It, Inserted] = Rename.try_emplace(V.Id, Next);
    if (Inserted)
      ++Next;
    V.Id = It->second;
  });
}

bool SymProdState::joinWith(const SymProdState &O, bool Widen) {
  assert(sameKey(O) && "joining product states with different keys");
  SymProdState Old = *this;

  // Pair-consistent renaming: a correlation survives iff present on both
  // sides. Pseudo-identities let equal singletons keep correlating with
  // symbolic cells across the join (e.g. a cell that is 1 on one path and
  // symbolic-but-equal-to-its-partner on the other).
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> PairIds;
  uint64_t NextPair = 1;
  std::vector<const SymVal *> Other;
  O.forEachCell([&](const SymVal &V) { Other.push_back(&V); });
  size_t Idx = 0;
  forEachCell([&](SymVal &V) {
    const SymVal &B = *Other[Idx++];
    uint64_t CA = correlationComponent(V), CB = correlationComponent(B);
    uint64_t NewId = 0;
    if (CA != 0 && CB != 0) {
      auto [It, Inserted] = PairIds.try_emplace({CA, CB}, NextPair);
      if (Inserted)
        ++NextPair;
      NewId = It->second;
    }
    V.Abs = Widen ? V.Abs.widen(B.Abs) : V.Abs.join(B.Abs);
    V.Id = NewId;
  });
  assert(Idx == Other.size() && "cell traversals diverged");
  canonicalize();
  return !(*this == Old);
}

bool SymProdState::refineId(uint64_t Id, const AbsDom &Fact) {
  if (Id == 0)
    return true; // nothing to anchor the fact to — sound to skip
  bool Feasible = true;
  forEachCell([&](SymVal &V) {
    if (V.Id != Id)
      return;
    V.Abs = V.Abs.meet(Fact);
    if (V.Abs.isBottom())
      Feasible = false; // the cell must hold *some* value
  });
  return Feasible;
}

bool SymProdState::operator==(const SymProdState &O) const {
  return sameKey(O) && Tgt == O.Tgt && Src == O.Src && MemTgt == O.MemTgt &&
         MemSrc == O.MemSrc;
}

std::string
SymProdState::str(const std::vector<std::string> *LocNames) const {
  auto ThreadStr = [&](const SymThread &T) {
    std::string S = "pc=" + std::to_string(T.Pc);
    if (T.St == ProgState::Status::Done)
      S += " done(" + T.Ret.str() + ")";
    else if (T.St == ProgState::Status::Error)
      S += " bottom";
    S += " regs[";
    for (size_t I = 0; I != T.Regs.size(); ++I) {
      if (I)
        S += ",";
      S += T.Regs[I].str();
    }
    S += "]";
    return S;
  };
  std::string S = "tgt{" + ThreadStr(Tgt) + "} src{" + ThreadStr(Src) + "}";
  S += " P=" + Perm.str(LocNames);
  S += " Ftgt=" + WTgt.str(LocNames);
  S += " Fsrc=" + WSrc.str(LocNames);
  S += " R=" + R.str(LocNames);
  return S;
}

//===----------------------------------------------------------------------===//
// Symbolic expression evaluation
//===----------------------------------------------------------------------===//

namespace {

/// Composite identity of (op, operands): deterministic, so the same
/// expression over the same operand identities fingerprints identically on
/// both product sides. 0 when some operand is uncorrelatable.
uint64_t compositeId(uint64_t Tag, uint64_t A, uint64_t B = 0x9a9a9a9a) {
  if (A == 0 || B == 0)
    return 0;
  uint64_t H = hashCombine(hashCombine(hashCombine(0xC0117051, Tag), A), B);
  return H | CompositeBit;
}

SymEvalResult evalRec(const Expr *E, const std::vector<SymVal> &Regs) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    return {SymVal::fromValue(E->constVal()), false};
  case Expr::Kind::Reg: {
    assert(E->reg() < Regs.size() && "register out of range");
    return {Regs[E->reg()], false};
  }
  case Expr::Kind::Unary: {
    SymEvalResult Sub = evalRec(E->lhs(), Regs);
    SymVal V;
    V.Abs = analysis::absUnOp(E->unOp(), Sub.V.Abs);
    V.Id = compositeId(0x100 + static_cast<uint64_t>(E->unOp()),
                       correlationComponent(Sub.V));
    return {V, Sub.MayUB};
  }
  case Expr::Kind::Binary: {
    SymEvalResult L = evalRec(E->lhs(), Regs);
    SymEvalResult R = evalRec(E->rhs(), Regs);
    bool MayUB = L.MayUB || R.MayUB;
    SymVal V = symBinOp(E->binOp(), L.V, R.V, MayUB);
    return {V, MayUB};
  }
  }
  assert(false && "unknown expression kind");
  return {};
}

} // namespace

SymVal pseq::sym::symBinOp(BinOp Op, const SymVal &L, const SymVal &R,
                           bool &MayUB) {
  SymVal V;
  V.Abs = analysis::absBinOp(Op, L.Abs, R.Abs, MayUB);
  V.Id = compositeId(0x200 + static_cast<uint64_t>(Op),
                     correlationComponent(L), correlationComponent(R));
  if (V.Abs.isSingleton() || V.Abs.isDefinitelyUndef() || V.Abs.isBottom())
    V.Id = 0;
  return V;
}

SymEvalResult pseq::sym::symEval(const Expr *E,
                                 const std::vector<SymVal> &Regs) {
  SymEvalResult R = evalRec(E, Regs);
  // A fact-pinned result needs no identity; dropping it keeps states small
  // and canonical.
  if (R.V.Abs.isSingleton() || R.V.Abs.isDefinitelyUndef() ||
      R.V.Abs.isBottom())
    R.V.Id = 0;
  return R;
}

//===----------------------------------------------------------------------===//
// Branch assumptions
//===----------------------------------------------------------------------===//

AbsDom pseq::sym::restrictToClass(const AbsDom &Cond, BranchClass C) {
  switch (C) {
  case BranchClass::Undef:
    return Cond.mayUndef() ? AbsDom::undef() : AbsDom::bottom();
  case BranchClass::Falsy:
    return Cond.meet(AbsDom::ofConst(0));
  case BranchClass::Truthy: {
    if (Cond.itv().isEmpty())
      return AbsDom::bottom();
    Interval I = Cond.itv();
    // Trim a boundary zero; interior zeros are not representable as an
    // interval split, which only loses precision, never soundness.
    if (I.isSingleton() && I.lo() == 0)
      return AbsDom::bottom();
    if (I.lo() == 0)
      I = Interval::range(1, I.hi());
    else if (I.hi() == 0)
      I = Interval::range(I.lo(), -1);
    return AbsDom::make(I, Cond.cng(), false);
  }
  }
  return AbsDom::bottom();
}

namespace {

/// Interval constraint on the left operand of `L ⋈ K` under class \p C of
/// the comparison (Truthy = comparison holds, Falsy = it fails). K is a
/// known singleton. \returns ⊤-defined when the pattern gives nothing.
AbsDom comparisonOperandFact(BinOp Op, int64_t K, bool Holds) {
  constexpr int64_t IMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t IMax = std::numeric_limits<int64_t>::max();
  auto Rng = [](int64_t Lo, int64_t Hi) {
    return Lo > Hi ? AbsDom::bottom() : AbsDom::range(Lo, Hi);
  };
  if (!Holds) {
    // !(L ⋈ K) — flip to the complementary relation.
    switch (Op) {
    case BinOp::Eq:
      return comparisonOperandFact(BinOp::Ne, K, true);
    case BinOp::Ne:
      return comparisonOperandFact(BinOp::Eq, K, true);
    case BinOp::Lt:
      return comparisonOperandFact(BinOp::Ge, K, true);
    case BinOp::Le:
      return comparisonOperandFact(BinOp::Gt, K, true);
    case BinOp::Gt:
      return comparisonOperandFact(BinOp::Le, K, true);
    case BinOp::Ge:
      return comparisonOperandFact(BinOp::Lt, K, true);
    default:
      return AbsDom::range(IMin, IMax);
    }
  }
  switch (Op) {
  case BinOp::Eq:
    return AbsDom::ofConst(K);
  case BinOp::Ne:
    // Only boundary exclusion is representable; refined below via meet.
    return AbsDom::range(IMin, IMax);
  case BinOp::Lt:
    return K == IMin ? AbsDom::bottom() : Rng(IMin, K - 1);
  case BinOp::Le:
    return Rng(IMin, K);
  case BinOp::Gt:
    return K == IMax ? AbsDom::bottom() : Rng(K + 1, IMax);
  case BinOp::Ge:
    return Rng(K, IMax);
  default:
    return AbsDom::range(IMin, IMax);
  }
}

/// Meets \p Cell's defined part with \p Fact after trimming a boundary
/// value excluded by Ne.
AbsDom applyNeTrim(const AbsDom &Cell, int64_t K) {
  if (Cell.itv().isEmpty())
    return AbsDom::bottom();
  Interval I = Cell.itv();
  if (I.isSingleton() && I.lo() == K)
    return AbsDom::bottom();
  if (I.lo() == K)
    I = Interval::range(K + 1, I.hi());
  else if (I.hi() == K)
    I = Interval::range(I.lo(), K - 1);
  return AbsDom::make(I, Cell.cng(), false);
}

} // namespace

bool pseq::sym::assumeBranch(SymProdState &St, const Expr *E,
                             const std::vector<SymVal> &Regs, BranchClass C) {
  SymEvalResult CV = symEval(E, Regs);

  // Class feasibility on the condition value itself.
  AbsDom Restricted = restrictToClass(CV.V.Abs, C);
  if (Restricted.isBottom())
    return false;
  if (!St.refineId(CV.V.Id, Restricted))
    return false;

  // One level of comparison-pattern refinement: (reg-or-identity ⋈ const).
  if (E->kind() != Expr::Kind::Binary)
    return true;
  BinOp Op = E->binOp();
  bool IsCmp = Op == BinOp::Eq || Op == BinOp::Ne || Op == BinOp::Lt ||
               Op == BinOp::Le || Op == BinOp::Gt || Op == BinOp::Ge;
  if (!IsCmp)
    return true;

  SymEvalResult L = symEval(E->lhs(), Regs);
  SymEvalResult Rr = symEval(E->rhs(), Regs);
  if (L.MayUB || Rr.MayUB)
    return true; // a faulting operand muddies the classes; skip refinement

  // Normalize so the symbolic operand is on the left.
  SymVal Sym;
  int64_t K;
  bool Swapped;
  if (Rr.V.Abs.isSingleton() && L.V.Id != 0) {
    Sym = L.V;
    K = Rr.V.Abs.singleton();
    Swapped = false;
  } else if (L.V.Abs.isSingleton() && Rr.V.Id != 0) {
    Sym = Rr.V;
    K = L.V.Abs.singleton();
    Swapped = true;
  } else {
    return true;
  }
  BinOp NOp = Op;
  if (Swapped) {
    // K ⋈ x  ≡  x ⋈' K with the relation mirrored.
    switch (Op) {
    case BinOp::Lt:
      NOp = BinOp::Gt;
      break;
    case BinOp::Le:
      NOp = BinOp::Ge;
      break;
    case BinOp::Gt:
      NOp = BinOp::Lt;
      break;
    case BinOp::Ge:
      NOp = BinOp::Le;
      break;
    default:
      break;
    }
  }

  switch (C) {
  case BranchClass::Undef:
    // Comparisons propagate undef: with one side a defined constant, an
    // undef result pins the symbolic operand to undef.
    return St.refineId(Sym.Id, AbsDom::undef());
  case BranchClass::Truthy:
  case BranchClass::Falsy: {
    bool Holds = C == BranchClass::Truthy;
    // A defined comparison result means the symbolic operand is defined.
    AbsDom Fact = comparisonOperandFact(NOp, K, Holds);
    if (Fact.isBottom())
      return false;
    bool ExcludesK = (NOp == BinOp::Ne && Holds) || (NOp == BinOp::Eq && !Holds);
    if (ExcludesK) {
      AbsDom Trimmed = applyNeTrim(Sym.Abs, K);
      if (Trimmed.isBottom())
        return false;
      return St.refineId(Sym.Id, Trimmed);
    }
    return St.refineId(Sym.Id, Fact);
  }
  }
  return true;
}
