//===- sym/SymEngine.h - Symbolic refinement backend ------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic lane of the refinement stack: a path-merging abstract
/// interpretation of the Fig. 6 simulation over *symbolic* SEQ product
/// states (sym/SymState.h). Where the enumerative checkers quantify reads
/// over the value domain by branching, this engine binds one symbolic
/// value per read — shared between target and source by the matching
/// rules — merges paths at equal product keys (join + widening after a
/// delay), and decides the greatest fixpoint coinductively. Spin loops
/// that explode the trace enumerators converge here to a handful of
/// product nodes.
///
/// Verdicts are three-valued and never guess:
///  * Sound — a symbolic simulation proof: every abstract obligation is
///    discharged for all concretizations, so σ_tgt ⊑w σ_src (and by
///    Thm 6.2, contextual refinement in PS^na).
///  * Unsound — the symbolic product has a dead root *and* the bounded
///    enumerative checker confirms a concrete counterexample (symbolic
///    abstraction alone never produces a negative verdict, so symbolic
///    Sound/Unsound can never contradict the enumerative lane by
///    construction).
///  * Inconclusive — a budget tripped or the abstraction was too coarse;
///    Cause says which budget (None = pure imprecision).
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SYM_SYMENGINE_H
#define PSEQ_SYM_SYMENGINE_H

#include "seq/SeqMachine.h"
#include "support/Truncation.h"
#include "sym/SymSolver.h"

#include <string>

namespace pseq::sym {

/// Knobs specific to the symbolic backend (budgets shared with the
/// enumerative lane — Domain, Universe, StepBudget, guard, memo, salt —
/// come from SeqConfig).
struct SymOptions {
  /// Product-node cap across all initial states of one check.
  unsigned MaxNodes = 200000;
  /// Joins at a node before the join operator switches to widening.
  unsigned WidenDelay = 3;
  /// Node budget of one symbolic oracle game (0 = StepBudget * 256).
  unsigned GameBudget = 0;
  /// Step budget of one source unlabeled-chain walk (0 = StepBudget).
  unsigned ChainBudget = 0;
  /// Path-condition solver; null = the built-in interval/congruence
  /// procedure (an SMT binding from makeSmtSolver() may refine
  /// feasibility answers but never soundness).
  SymSolver *Solver = nullptr;
  /// Confirm dead roots with the bounded enumerative checker before
  /// reporting Unsound (the guarantee that symbolic negatives carry a
  /// concrete witness). Off = dead roots report Inconclusive.
  bool ConfirmUnsound = true;
};

/// The three-valued symbolic verdict.
enum class SymVerdict { Sound, Unsound, Inconclusive };

constexpr const char *symVerdictName(SymVerdict V) {
  switch (V) {
  case SymVerdict::Sound:
    return "sound";
  case SymVerdict::Unsound:
    return "unsound";
  case SymVerdict::Inconclusive:
    return "inconclusive";
  }
  return "unknown";
}

/// Outcome of one symbolic refinement check.
struct SymResult {
  SymVerdict Verdict = SymVerdict::Inconclusive;
  /// For Inconclusive: the budget that tripped (None = the abstraction
  /// was too coarse, every budget held).
  TruncationCause Cause = TruncationCause::None;
  /// Unsound: the confirmed concrete counterexample. Inconclusive: a
  /// note naming the first undischarged obligation (symbolic witness).
  std::string Witness;

  // Statistics for bench/test reporting.
  unsigned InitialStates = 0;
  unsigned long long Nodes = 0;       ///< product nodes created
  unsigned long long Joins = 0;       ///< path merges at existing nodes
  unsigned long long Widenings = 0;   ///< joins applied in widening mode
  unsigned long long SolverQueries = 0;
  unsigned long long ConfirmStates = 0; ///< enumerative confirm behaviors
  double ElapsedMs = 0.0;
};

/// Decides σ_tgt ⊑w σ_src symbolically for thread \p TgtTid of \p TgtP
/// against thread \p SrcTid of \p SrcP, quantified over all initial
/// ⟨P, F⟩ with one shared symbolic memory. Memoized under
/// memo::MemoContext::Table::SymVerdicts when Cfg.Memo is set (key
/// includes Cfg.ConfigSalt). Emits sym.* telemetry and a "sym.check"
/// span through Cfg.Telem.
SymResult checkSymRefinement(const Program &SrcP, unsigned SrcTid,
                             const Program &TgtP, unsigned TgtTid,
                             SeqConfig Cfg = SeqConfig(),
                             SymOptions Opts = SymOptions());

/// Convenience overload: single-thread programs (thread 0 vs thread 0).
SymResult checkSymRefinement(const Program &SrcP, const Program &TgtP,
                             SeqConfig Cfg = SeqConfig(),
                             SymOptions Opts = SymOptions());

} // namespace pseq::sym

#endif // PSEQ_SYM_SYMENGINE_H
