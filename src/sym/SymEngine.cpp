//===- sym/SymEngine.cpp - Symbolic refinement backend --------------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The symbolic counterpart of seq/Simulation.cpp: the same Fig. 6
// coinductive simulation, decided over symbolic product states instead of
// concrete ones. The structure mirrors the concrete checker exactly —
// robust-bottom quick saves, a fulfillment (prt) pre-check, per-target-
// transition families of source responses, and a greatest-fixpoint prune —
// so the two lanes agree by construction wherever both decide:
//
//  * the target side is OVER-approximated (reads bind the full domain
//    hull, unrefined may-UB classes spawn bottom obligations), which only
//    adds obligations;
//  * the source side is UNDER-approximated (source responses are claimed
//    only when every concretization supports them: must-equalities,
//    must-refinements, definitely-classified branches), which only removes
//    capabilities.
//
// A completed fixpoint with every root alive is therefore a proof; a dead
// root is only ever reported Unsound after the bounded enumerative checker
// confirms a concrete counterexample.
//
// Convergence: states with equal product keys (pcs, statuses, permission
// sets) are joined; identities survive a join only when the correlation
// holds on both sides, abstract facts join pointwise and switch to
// widening after SymOptions::WidenDelay joins. Spin loops reach a
// fixpoint in a handful of nodes where the enumerators diverge.
//
//===----------------------------------------------------------------------===//

#include "sym/SymEngine.h"

#include "guard/Guard.h"
#include "memo/Fingerprint.h"
#include "memo/MemoContext.h"
#include "obs/Telemetry.h"
#include "seq/AdvancedRefinement.h"
#include "sym/SymState.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace pseq;
using namespace pseq::sym;
using analysis::AbsDom;
using memo::Fp128;
using memo::fpCombine;
using memo::fpMix;
using memo::fpMixBytes;
using memo::fpSeed;

namespace {

/// One trace label of a symbolic target transition, to be discharged by a
/// matching source response. The permission payloads mirror SeqEvent's:
/// P/P2 for acquire/release moves, F the emitting side's written set, Vm
/// the gained (acquire) or released (release) partial memory.
struct SymLabel {
  enum Kind {
    Choose,
    RlxRead,
    RlxWrite,
    AcqRead,
    RelWrite,
    AcqFence,
    RelFence,
    Syscall
  };
  Kind K = Choose;
  unsigned Loc = 0;
  SymVal V;
  LocSet P, P2, F;
  std::vector<std::pair<unsigned, SymVal>> Vm;

  SymLabel() = default;
  explicit SymLabel(Kind K) : K(K) {}
};

/// The value domain, abstracted once per run: the hull of the domain's
/// defined values (with and without undef) plus an exactness bit. Exact
/// means the hull's concretization is precisely Domain ∪ {undef} — the
/// condition under which a symbolic read binding stands for source read
/// transitions that actually exist in the enumerative machine. Inexact
/// domains (a sparse set whose interval×congruence hull has extra members)
/// keep the engine sound by refusing labeled matches.
struct DomainInfo {
  AbsDom Defined;   // hull of the defined domain values
  AbsDom WithUndef; // Defined ∪ {undef}
  bool Exact = false;
};

DomainInfo makeDomainInfo(const ValueDomain &Dom) {
  DomainInfo D;
  D.Defined = AbsDom::bottom();
  for (int64_t V : Dom.values())
    D.Defined = D.Defined.join(AbsDom::ofConst(V));
  D.WithUndef = D.Defined.join(AbsDom::undef());
  D.Exact = !D.Defined.isBottom();
  if (D.Exact) {
    int64_t Lo = D.Defined.itv().lo(), Hi = D.Defined.itv().hi();
    if (static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) > 4096) {
      D.Exact = false;
    } else {
      for (int64_t V = Lo; V <= Hi; ++V)
        if (D.Defined.containsInt(V) && !Dom.contains(V)) {
          D.Exact = false;
          break;
        }
    }
  }
  return D;
}

/// The defined fraction of a fact (drops the may-undef bit).
AbsDom definedPart(const AbsDom &A) {
  return AbsDom::make(A.itv(), A.cng(), false);
}

/// \p A minus the single defined value \p K, when the domains can express
/// it (boundary trim / singleton kill); \p A unchanged otherwise. Used to
/// propagate CAS must-disequalities.
AbsDom excludeConst(const AbsDom &A, int64_t K) {
  if (!A.containsInt(K))
    return A;
  const analysis::Interval &I = A.itv();
  if (I.isSingleton())
    return AbsDom::make(analysis::Interval::empty(),
                        analysis::Congruence::empty(), A.mayUndef());
  if (I.lo() == K)
    return AbsDom::make(analysis::Interval::range(K + 1, I.hi()), A.cng(),
                        A.mayUndef());
  if (I.hi() == K)
    return AbsDom::make(analysis::Interval::range(I.lo(), K - 1), A.cng(),
                        A.mayUndef());
  return A; // interior value: not representable, keep the over-approximation
}

/// How a source unlabeled-chain walk ended.
enum class ChainEnd {
  Labeled,   ///< stopped at a pending labeled action
  Uncertain, ///< a step could not be decided definitely (or budget ran out)
  Terminal,  ///< source reached return(v)
  Bottom     ///< source reached ⊥
};

constexpr unsigned NoNode = ~0u;

//===----------------------------------------------------------------------===//
// SymChecker — one symbolic simulation run
//===----------------------------------------------------------------------===//

class SymChecker {
public:
  SymChecker(const Program &SrcP, unsigned SrcTid, const Program &TgtP,
             unsigned TgtTid, const SeqConfig &Cfg, const SymOptions &Opts,
             SymSolver &Solver, SymResult &Res)
      : SrcP(SrcP), TgtP(TgtP), SrcTid(SrcTid), TgtTid(TgtTid), Cfg(Cfg),
        Opts(Opts), Solver(Solver), Res(Res),
        SrcCode(SrcP.thread(SrcTid).Code), TgtCode(TgtP.thread(TgtTid).Code),
        NumLocs(SrcP.numLocs()), Dom(makeDomainInfo(Cfg.Domain)) {}

  void run();

  bool AllAlive = false;
  bool Exhausted = false;
  TruncationCause Cause = TruncationCause::None;
  std::string FailNote;

private:
  struct Node {
    SymProdState St;
    uint64_t Gen = 0;
    unsigned Joins = 0;
    bool Expanded = false;
    bool Saved = false;
    bool Dead = false;
    /// One family per target transition; options are source responses.
    std::vector<std::vector<unsigned>> Families;
  };

  const Program &SrcP, &TgtP;
  unsigned SrcTid, TgtTid;
  const SeqConfig &Cfg;
  const SymOptions &Opts;
  SymSolver &Solver;
  SymResult &Res;
  const std::vector<Instr> &SrcCode, &TgtCode;
  unsigned NumLocs;
  DomainInfo Dom;

  SymIdGen Ids;
  std::vector<Node> Nodes;
  std::unordered_multimap<uint64_t, unsigned> Index;
  std::deque<unsigned> Work;
  std::vector<unsigned> Roots;
  std::unordered_map<Fp128, char, memo::Fp128Hash> GameMemo;

  SymVal freshSym(bool WithUndef) {
    return {Ids.fresh(), WithUndef ? Dom.WithUndef : Dom.Defined};
  }

  void noteFail(const SymProdState &St, const char *What) {
    if (FailNote.empty())
      FailNote = std::string(What) + " at product state " +
                 St.str(&SrcP.locNames());
  }

  // Source-side stepping.
  ChainEnd walkSrcChain(SymProdState &W);
  bool retRefines(const SymProdState &W);
  void branchSync(SymProdState &W, uint64_t CondId, BranchClass C);

  // Symbolic oracle game (the ∀-oracle AND/OR game of Fig. 2, demonic
  // over every source move, decided on source-only projections).
  SymProdState gameView(const SymProdState &St) const;
  bool robustBottom(const SymProdState &St);
  bool robustFulfill(const SymProdState &St, LocSet Need);
  bool gameRun(SymProdState S, uint64_t Rem, unsigned &Budget);
  bool gameStep(const SymProdState &S, uint64_t Rem, unsigned &Budget);

  // Label matching (the advanced matching of Fig. 2 on symbolic labels).
  bool matchLabels(SymProdState &W, const std::vector<SymLabel> &Ls);
  bool matchRmw(SymProdState &W, const std::vector<SymLabel> &Ls, size_t &Idx,
                bool Acq);
  void applyRelease(SymProdState &W, const SymLabel &L);

  // Fixpoint machinery.
  bool classFeasible(SymProdState &W);
  unsigned getOrCreate(SymProdState S);
  void buildFamilies(const SymProdState &St0,
                     std::vector<std::vector<unsigned>> &Fams);
  void expand(unsigned Id);
  void prune(std::vector<char> &Alive);
  void buildRoots();
};

//===----------------------------------------------------------------------===//
// Source chain walking
//===----------------------------------------------------------------------===//

/// Runs the source forward over definite unlabeled steps: silent
/// instructions whose effect every concretization agrees on, plus
/// non-atomic accesses. Stops at the first pending labeled action, at
/// termination, at ⊥, or — the conservative exit — at any step whose
/// outcome the abstraction cannot decide (Uncertain never claims a source
/// response, so it only loses precision, never soundness).
ChainEnd SymChecker::walkSrcChain(SymProdState &W) {
  unsigned Budget = Opts.ChainBudget;
  for (unsigned Step = 0; Step <= Budget; ++Step) {
    if (W.Src.St == ProgState::Status::Error)
      return ChainEnd::Bottom;
    if (W.Src.St == ProgState::Status::Done)
      return ChainEnd::Terminal;
    const Instr &I = SrcCode[W.Src.Pc];
    switch (I.Op) {
    case Instr::Opcode::Assign: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB)
        return ChainEnd::Uncertain;
      W.Src.Regs[I.Reg] = Ev.V;
      ++W.Src.Pc;
      break;
    }
    case Instr::Opcode::Jmp:
      W.Src.Pc = I.TargetTrue;
      break;
    case Instr::Opcode::Br: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB() || Ev.V.Abs.isDefinitelyUndef()) {
        W.Src.St = ProgState::Status::Error; // branch on undef is UB
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB || Ev.V.Abs.mayUndef())
        return ChainEnd::Uncertain;
      if (Ev.V.Abs.definitelyTruthy())
        W.Src.Pc = I.TargetTrue;
      else if (Ev.V.Abs.definitelyFalsy())
        W.Src.Pc = I.TargetFalse;
      else
        return ChainEnd::Uncertain;
      break;
    }
    case Instr::Opcode::Freeze: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB)
        return ChainEnd::Uncertain;
      if (Ev.V.Abs.isDefinitelyUndef())
        return ChainEnd::Labeled; // pending choose(v)
      if (Ev.V.Abs.mayUndef())
        return ChainEnd::Uncertain; // mixed: silent or choose
      W.Src.Regs[I.Reg] = Ev.V;
      ++W.Src.Pc;
      break;
    }
    case Instr::Opcode::Load:
      if (I.RM != ReadMode::NA)
        return ChainEnd::Labeled;
      W.Src.Regs[I.Reg] =
          W.Perm.contains(I.Loc) ? W.MemSrc[I.Loc] : SymVal::undef();
      ++W.Src.Pc;
      break;
    case Instr::Opcode::Store: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB)
        return ChainEnd::Uncertain;
      if (I.WM != WriteMode::NA)
        return ChainEnd::Labeled;
      if (!W.Perm.contains(I.Loc)) {
        W.Src.St = ProgState::Status::Error; // racy na-write: ⊥
        return ChainEnd::Bottom;
      }
      W.MemSrc[I.Loc] = Ev.V;
      W.WSrc.insert(I.Loc);
      ++W.Src.Pc;
      break;
    }
    case Instr::Opcode::Cas: {
      SymEvalResult E2v = symEval(I.E2, W.Src.Regs);
      SymEvalResult E3v = symEval(I.E3, W.Src.Regs);
      if (E2v.definitelyUB() || E3v.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (E2v.MayUB || E3v.MayUB)
        return ChainEnd::Uncertain;
      return ChainEnd::Labeled;
    }
    case Instr::Opcode::Fadd:
    case Instr::Opcode::Print: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB)
        return ChainEnd::Uncertain;
      return ChainEnd::Labeled;
    }
    case Instr::Opcode::Fence:
    case Instr::Opcode::Choose:
      return ChainEnd::Labeled;
    case Instr::Opcode::Return: {
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.definitelyUB()) {
        W.Src.St = ProgState::Status::Error;
        return ChainEnd::Bottom;
      }
      if (Ev.MayUB)
        return ChainEnd::Uncertain;
      W.Src.St = ProgState::Status::Done;
      W.Src.Ret = Ev.V;
      return ChainEnd::Terminal;
    }
    case Instr::Opcode::Abort:
      W.Src.St = ProgState::Status::Error;
      return ChainEnd::Bottom;
    }
  }
  return ChainEnd::Uncertain; // chain budget exhausted
}

/// Ret refinement at the terminal check. The stored target ret was
/// evaluated before the node's canonical renaming, so a *composite*
/// identity in it can never match the source's freshly computed one (the
/// fingerprint embeds pre-rename operand ids). The target never steps
/// after Done and its Pc still points at the Return, so re-evaluating the
/// return expression over the current (renamed, possibly widened)
/// registers yields a sound over-approximation of the target ret in the
/// same naming era as W.Src.Ret — composite fingerprints line up again.
bool SymChecker::retRefines(const SymProdState &W) {
  if (definitelyRefines(W.Tgt.Ret, W.Src.Ret))
    return true;
  const Instr &I = TgtCode[W.Tgt.Pc];
  if (I.Op != Instr::Opcode::Return)
    return false;
  SymEvalResult Ev = symEval(I.E, W.Tgt.Regs);
  return !Ev.MayUB && definitelyRefines(Ev.V, W.Src.Ret);
}

/// After the target commits to branch class \p C of a condition carrying
/// identity \p CondId, runs the source ahead through every branch on the
/// *same* identity, committing the same class (the source's silent prefix
/// plus the branch are unlabeled responses, so committing them is always
/// allowed). Bounded: convergence past the bound is the node fixpoint's
/// job, and an empty-body loop would re-sync forever.
void SymChecker::branchSync(SymProdState &W, uint64_t CondId, BranchClass C) {
  if (!CondId)
    return;
  for (int K = 0; K != 16; ++K) {
    SymProdState Probe = W;
    if (walkSrcChain(Probe) != ChainEnd::Uncertain)
      return;
    if (Probe.Src.St != ProgState::Status::Running)
      return;
    const Instr &I = SrcCode[Probe.Src.Pc];
    if (I.Op != Instr::Opcode::Br)
      return;
    SymEvalResult CE = symEval(I.E, Probe.Src.Regs);
    if (CE.MayUB || CE.V.Id != CondId)
      return;
    if (!assumeBranch(Probe, I.E, Probe.Src.Regs, C))
      return;
    Probe.Src.Pc = (C == BranchClass::Truthy) ? I.TargetTrue : I.TargetFalse;
    W = std::move(Probe);
  }
}

//===----------------------------------------------------------------------===//
// Symbolic oracle game
//===----------------------------------------------------------------------===//

/// Projects the product onto its source side: the games quantify over the
/// source alone, so two products with equal source sides share game memo
/// entries regardless of their target components.
SymProdState SymChecker::gameView(const SymProdState &St) const {
  SymProdState G;
  G.Src = St.Src;
  G.MemSrc = St.MemSrc;
  G.Perm = St.Perm;
  G.WSrc = St.WSrc;
  return G;
}

/// Can the source reach ⊥ on *every* adversary path without acquiring?
/// (Fig. 2's beh-failure: late UB holds for every oracle.)
bool SymChecker::robustBottom(const SymProdState &St) {
  unsigned Budget = Opts.GameBudget;
  return gameRun(gameView(St), ~0ull, Budget);
}

/// Can the source write-and-release every location of \p Need on every
/// adversary path without acquiring? (Fig. 2's commitment fulfillment.)
bool SymChecker::robustFulfill(const SymProdState &St, LocSet Need) {
  if (Need.isEmpty())
    return true;
  assert(Need.raw() != ~0ull && "the all-ones goal is reserved for ⊥");
  unsigned Budget = Opts.GameBudget;
  return gameRun(gameView(St), Need.raw(), Budget);
}

bool SymChecker::gameRun(SymProdState S, uint64_t Rem, unsigned &Budget) {
  S.canonicalize();
  Fp128 K = fpSeed(0x53594d47ULL); // "SYMG"
  fpMix(K, S.keyHash());
  static_cast<const SymProdState &>(S).forEachCell(
      [&](const SymVal &V) { fpMix(K, hashSymVal(V)); });
  fpMix(K, Rem);
  auto It = GameMemo.find(K);
  if (It != GameMemo.end())
    return It->second == 1; // InProgress (0): a cycle never reaches the goal
  GameMemo.emplace(K, 0);
  bool R = gameStep(S, Rem, Budget);
  GameMemo[K] = R ? 1 : 2; // re-lookup: recursion may have rehashed
  return R;
}

/// One demonic step: the adversary resolves every read value, choice,
/// branch class, and permission loss, so every enabled class must reach
/// the goal. Symbolic classes cover sets of adversary choices at once; a
/// uniform proof over the class implies one per member, so failure here
/// only under-approximates game success (sound: fewer quick-saves).
bool SymChecker::gameStep(const SymProdState &S, uint64_t Rem,
                          unsigned &Budget) {
  if (Budget == 0) {
    Exhausted = true;
    noteTruncation(Cause, TruncationCause::StateBudget);
    return false;
  }
  --Budget;
  if (S.Src.St == ProgState::Status::Error)
    return true;
  bool BottomGoal = Rem == ~0ull;
  if (!BottomGoal && S.Src.St == ProgState::Status::Running &&
      LocSet::fromRaw(Rem).isSubsetOf(S.WSrc))
    return true;
  if (S.Src.St == ProgState::Status::Done)
    return false;
  const Instr &I = SrcCode[S.Src.Pc];
  switch (I.Op) {
  case Instr::Opcode::Assign: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    SymProdState S2 = S;
    S2.Src.Regs[I.Reg] = Ev.V;
    ++S2.Src.Pc;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Jmp: {
    SymProdState S2 = S;
    S2.Src.Pc = I.TargetTrue;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Br: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    // The undef class (branch on undef) is UB → ⊥ → goal reached; only the
    // two defined classes carry obligations.
    for (BranchClass C : {BranchClass::Truthy, BranchClass::Falsy}) {
      SymProdState S2 = S;
      if (!assumeBranch(S2, I.E, S2.Src.Regs, C))
        continue;
      S2.Src.Pc = (C == BranchClass::Truthy) ? I.TargetTrue : I.TargetFalse;
      if (!gameRun(std::move(S2), Rem, Budget))
        return false;
    }
    return true;
  }
  case Instr::Opcode::Freeze: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    if (Ev.V.Abs.mayDefined()) {
      SymProdState S2 = S;
      AbsDom D = definedPart(Ev.V.Abs);
      if (!Ev.V.Id || S2.refineId(Ev.V.Id, D)) {
        S2.Src.Regs[I.Reg] = {Ev.V.Id, D};
        ++S2.Src.Pc;
        if (!gameRun(std::move(S2), Rem, Budget))
          return false;
      }
    }
    if (Ev.V.Abs.mayUndef()) {
      SymProdState S2 = S;
      if (!Ev.V.Id || S2.refineId(Ev.V.Id, AbsDom::undef())) {
        S2.Src.Regs[I.Reg] = freshSym(false); // adversary's choice
        ++S2.Src.Pc;
        if (!gameRun(std::move(S2), Rem, Budget))
          return false;
      }
    }
    return true;
  }
  case Instr::Opcode::Load: {
    if (I.RM == ReadMode::ACQ)
      return false; // games must not acquire
    SymProdState S2 = S;
    if (I.RM == ReadMode::NA)
      S2.Src.Regs[I.Reg] =
          S.Perm.contains(I.Loc) ? S.MemSrc[I.Loc] : SymVal::undef();
    else
      S2.Src.Regs[I.Reg] = freshSym(true); // adversary's value
    ++S2.Src.Pc;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Store: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    if (I.WM == WriteMode::NA) {
      if (!S.Perm.contains(I.Loc))
        return true; // racy na-write: ⊥
      SymProdState S2 = S;
      S2.MemSrc[I.Loc] = Ev.V;
      S2.WSrc.insert(I.Loc);
      ++S2.Src.Pc;
      return gameRun(std::move(S2), Rem, Budget);
    }
    if (I.WM == WriteMode::RLX) {
      SymProdState S2 = S;
      ++S2.Src.Pc;
      return gameRun(std::move(S2), Rem, Budget);
    }
    // Release: locations written since the last release are locked in;
    // the adversary picks the permission loss.
    uint64_t Rem2 = BottomGoal ? Rem : (Rem & ~S.WSrc.raw());
    for (LocSet P2 : S.Perm.subsets()) {
      SymProdState S2 = S;
      S2.Perm = P2;
      S2.WSrc = LocSet::empty();
      ++S2.Src.Pc;
      if (!gameRun(std::move(S2), Rem2, Budget))
        return false;
    }
    return true;
  }
  case Instr::Opcode::Cas: {
    if (I.RM == ReadMode::ACQ)
      return false;
    SymEvalResult E2v = symEval(I.E2, S.Src.Regs);
    SymEvalResult E3v = symEval(I.E3, S.Src.Regs);
    if (E2v.definitelyUB() || E3v.definitelyUB())
      return true;
    SymVal Old = freshSym(false); // undef old compares are UB → ⊥ → goal
    for (bool Eq : {true, false}) {
      if (Eq ? definitelyNotEqual(Old, E2v.V) : definitelyEqual(Old, E2v.V))
        continue;
      if (Eq && I.WM == WriteMode::REL) {
        uint64_t Rem2 = BottomGoal ? Rem : (Rem & ~S.WSrc.raw());
        for (LocSet P2 : S.Perm.subsets()) {
          SymProdState S2 = S;
          S2.Src.Regs[I.Reg] = Old;
          S2.Perm = P2;
          S2.WSrc = LocSet::empty();
          ++S2.Src.Pc;
          if (!gameRun(std::move(S2), Rem2, Budget))
            return false;
        }
      } else {
        SymProdState S2 = S;
        S2.Src.Regs[I.Reg] = Old;
        ++S2.Src.Pc;
        if (!gameRun(std::move(S2), Rem, Budget))
          return false;
      }
    }
    return true;
  }
  case Instr::Opcode::Fadd: {
    if (I.RM == ReadMode::ACQ)
      return false;
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    SymVal Old = freshSym(true);
    if (I.WM == WriteMode::REL) {
      uint64_t Rem2 = BottomGoal ? Rem : (Rem & ~S.WSrc.raw());
      for (LocSet P2 : S.Perm.subsets()) {
        SymProdState S2 = S;
        S2.Src.Regs[I.Reg] = Old;
        S2.Perm = P2;
        S2.WSrc = LocSet::empty();
        ++S2.Src.Pc;
        if (!gameRun(std::move(S2), Rem2, Budget))
          return false;
      }
      return true;
    }
    SymProdState S2 = S;
    S2.Src.Regs[I.Reg] = Old;
    ++S2.Src.Pc;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Fence: {
    if (I.FM != FenceMode::REL)
      return false; // acquire-flavored fences must not run in games
    uint64_t Rem2 = BottomGoal ? Rem : (Rem & ~S.WSrc.raw());
    for (LocSet P2 : S.Perm.subsets()) {
      SymProdState S2 = S;
      S2.Perm = P2;
      S2.WSrc = LocSet::empty();
      ++S2.Src.Pc;
      if (!gameRun(std::move(S2), Rem2, Budget))
        return false;
    }
    return true;
  }
  case Instr::Opcode::Choose: {
    SymProdState S2 = S;
    S2.Src.Regs[I.Reg] = freshSym(false);
    ++S2.Src.Pc;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Print: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    if (Ev.definitelyUB())
      return true;
    SymProdState S2 = S;
    ++S2.Src.Pc;
    return gameRun(std::move(S2), Rem, Budget);
  }
  case Instr::Opcode::Return: {
    SymEvalResult Ev = symEval(I.E, S.Src.Regs);
    return Ev.definitelyUB(); // ok class terminates without the goal
  }
  case Instr::Opcode::Abort:
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Label matching
//===----------------------------------------------------------------------===//

/// Applies the release transformer of the advanced matching to the source:
/// R' = (R \ F_s) ∪ (F_t \ F_s) ∪ nonRefiningLocs(Vm_t, Vm_s), Written
/// resets, Perm drops to the label's P2. Locations whose refinement the
/// abstraction cannot prove go into R (over-approximating R only adds
/// fulfillment obligations — sound).
void SymChecker::applyRelease(SymProdState &W, const SymLabel &L) {
  uint64_t Fs = W.WSrc.raw();
  uint64_t NonRef = 0;
  for (const auto &[Lc, Vt] : L.Vm)
    if (!definitelyRefines(Vt, W.MemSrc[Lc]))
      NonRef |= uint64_t(1) << Lc;
  W.R = LocSet::fromRaw((W.R.raw() & ~Fs) | (L.F.raw() & ~Fs) | NonRef);
  W.WSrc = LocSet::empty();
  W.Perm = L.P2;
}

/// Discharges the target labels \p Ls with source transitions, advancing
/// the source through its unlabeled chains in between. Every claim is a
/// must-claim (definite equality/refinement/classification); anything
/// uncertain fails the match, which at worst loses precision. Labeled
/// matching is gated on domain exactness: a symbolic read binding stands
/// for concrete source read transitions only when the hull concretizes to
/// exactly Domain ∪ {undef}.
bool SymChecker::matchLabels(SymProdState &W, const std::vector<SymLabel> &Ls) {
  if (!Dom.Exact)
    return false;
  for (size_t Idx = 0; Idx < Ls.size();) {
    if (walkSrcChain(W) != ChainEnd::Labeled)
      return false;
    const SymLabel &L = Ls[Idx];
    const Instr &I = SrcCode[W.Src.Pc];
    switch (L.K) {
    case SymLabel::Choose: {
      // Source choose(v) — or freeze over a definitely-undef operand,
      // which is the only way Freeze reaches Labeled.
      if (I.Op != Instr::Opcode::Choose && I.Op != Instr::Opcode::Freeze)
        return false;
      if (L.V.Abs.mayUndef() || !L.V.Abs.isSubsetOf(Dom.Defined))
        return false; // choices range over the defined domain only
      W.Src.Regs[I.Reg] = L.V;
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    case SymLabel::RlxRead: {
      if (I.Op == Instr::Opcode::Load && I.RM == ReadMode::RLX &&
          I.Loc == L.Loc) {
        W.Src.Regs[I.Reg] = L.V;
        ++W.Src.Pc;
        ++Idx;
        break;
      }
      if ((I.Op == Instr::Opcode::Cas || I.Op == Instr::Opcode::Fadd) &&
          I.RM == ReadMode::RLX && I.Loc == L.Loc) {
        if (!matchRmw(W, Ls, Idx, /*Acq=*/false))
          return false;
        break;
      }
      return false;
    }
    case SymLabel::AcqRead: {
      // Acquire payloads must be identical; F_t ∪ R ⊆ F_s is the
      // commitment discharge condition of the advanced matching.
      if (!LocSet::fromRaw(L.F.raw() | W.R.raw()).isSubsetOf(W.WSrc))
        return false;
      if (I.Op == Instr::Opcode::Load && I.RM == ReadMode::ACQ &&
          I.Loc == L.Loc) {
        W.Src.Regs[I.Reg] = L.V;
        for (const auto &[Lc, Vg] : L.Vm)
          W.MemSrc[Lc] = Vg; // oracle-dictated gains, shared symbols
        W.Perm = L.P2;
        W.R = LocSet::empty();
        ++W.Src.Pc;
        ++Idx;
        break;
      }
      if ((I.Op == Instr::Opcode::Cas || I.Op == Instr::Opcode::Fadd) &&
          I.RM == ReadMode::ACQ && I.Loc == L.Loc) {
        if (!matchRmw(W, Ls, Idx, /*Acq=*/true))
          return false;
        break;
      }
      return false;
    }
    case SymLabel::RlxWrite: {
      if (I.Op != Instr::Opcode::Store || I.WM != WriteMode::RLX ||
          I.Loc != L.Loc)
        return false;
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.MayUB || !definitelyRefines(L.V, Ev.V))
        return false;
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    case SymLabel::RelWrite: {
      if (I.Op != Instr::Opcode::Store || I.WM != WriteMode::REL ||
          I.Loc != L.Loc)
        return false;
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.MayUB || !definitelyRefines(L.V, Ev.V))
        return false;
      applyRelease(W, L);
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    case SymLabel::AcqFence: {
      if (I.Op != Instr::Opcode::Fence || I.FM != FenceMode::ACQ)
        return false;
      if (!LocSet::fromRaw(L.F.raw() | W.R.raw()).isSubsetOf(W.WSrc))
        return false;
      for (const auto &[Lc, Vg] : L.Vm)
        W.MemSrc[Lc] = Vg;
      W.Perm = L.P2;
      W.R = LocSet::empty();
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    case SymLabel::RelFence: {
      if (I.Op != Instr::Opcode::Fence || I.FM != FenceMode::REL)
        return false;
      applyRelease(W, L);
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    case SymLabel::Syscall: {
      if (I.Op != Instr::Opcode::Print)
        return false;
      SymEvalResult Ev = symEval(I.E, W.Src.Regs);
      if (Ev.MayUB || !definitelyRefines(L.V, Ev.V))
        return false;
      ++W.Src.Pc;
      ++Idx;
      break;
    }
    }
  }
  return true;
}

/// Matches a source CAS/Fadd against the target's read label at Ls[Idx]
/// (and, when the source RMW writes, the write label at Ls[Idx+1]). The
/// source instruction, location, and read mode were checked by the caller;
/// for acquire RMWs the caller also checked F_t ∪ R ⊆ F_s.
bool SymChecker::matchRmw(SymProdState &W, const std::vector<SymLabel> &Ls,
                          size_t &Idx, bool Acq) {
  const SymLabel RL = Ls[Idx];
  const Instr &I = SrcCode[W.Src.Pc];
  SymVal Old = RL.V;
  if (Acq) {
    for (const auto &[Lc, Vg] : RL.Vm)
      W.MemSrc[Lc] = Vg;
    W.Perm = RL.P2;
    W.R = LocSet::empty();
  }
  if (I.Op == Instr::Opcode::Cas) {
    SymEvalResult E2v = symEval(I.E2, W.Src.Regs);
    SymEvalResult E3v = symEval(I.E3, W.Src.Regs);
    if (E2v.MayUB || E3v.MayUB)
      return false;
    // A CAS compare against undef is UB in the source; claiming that path
    // would be a ⊥-response, which the matcher never does.
    if (Old.Abs.mayUndef() || E2v.V.Abs.mayUndef())
      return false;
    if (definitelyEqual(Old, E2v.V)) {
      // Source CAS succeeds: a write label must follow.
      if (Idx + 1 >= Ls.size())
        return false;
      const SymLabel &WL = Ls[Idx + 1];
      if (WL.Loc != I.Loc)
        return false;
      if (I.WM == WriteMode::REL) {
        if (WL.K != SymLabel::RelWrite ||
            !definitelyRefines(WL.V, E3v.V))
          return false;
        applyRelease(W, WL);
      } else {
        if (WL.K != SymLabel::RlxWrite ||
            !definitelyRefines(WL.V, E3v.V))
          return false;
      }
      Idx += 2;
    } else if (definitelyNotEqual(Old, E2v.V)) {
      Idx += 1; // source CAS fails: read label only
    } else {
      return false;
    }
    W.Src.Regs[I.Reg] = Old;
    ++W.Src.Pc;
    return true;
  }
  // Fadd: always writes Old + E.
  SymEvalResult Ev = symEval(I.E, W.Src.Regs);
  if (Ev.MayUB)
    return false;
  bool UB = false;
  SymVal N = symBinOp(BinOp::Add, Old, Ev.V, UB);
  if (Idx + 1 >= Ls.size())
    return false;
  const SymLabel &WL = Ls[Idx + 1];
  if (WL.Loc != I.Loc)
    return false;
  if (I.WM == WriteMode::REL) {
    if (WL.K != SymLabel::RelWrite || !definitelyRefines(WL.V, N))
      return false;
    applyRelease(W, WL);
  } else {
    if (WL.K != SymLabel::RlxWrite || !definitelyRefines(WL.V, N))
      return false;
  }
  Idx += 2;
  W.Src.Regs[I.Reg] = Old;
  ++W.Src.Pc;
  return true;
}

//===----------------------------------------------------------------------===//
// Fixpoint machinery
//===----------------------------------------------------------------------===//

/// Consults the solver on the conjunction of per-identity facts of \p W.
/// Every refinement the engine applies over-approximates its class, so an
/// Unsat answer means the class is genuinely infeasible and carries no
/// obligations; Unknown degrades to feasible.
bool SymChecker::classFeasible(SymProdState &W) {
  std::vector<SymConstraint> Cs;
  std::unordered_map<uint64_t, size_t> Seen;
  bool Bottom = false;
  static_cast<const SymProdState &>(W).forEachCell([&](const SymVal &V) {
    if (V.Abs.isBottom())
      Bottom = true;
    if (!V.Id)
      return;
    auto [It, New] = Seen.try_emplace(V.Id, Cs.size());
    if (New)
      Cs.push_back({V.Id, V.Abs});
    else
      Cs[It->second].Dom = Cs[It->second].Dom.meet(V.Abs);
  });
  if (Bottom)
    return false;
  ++Res.SolverQueries;
  return Solver.checkSat(Cs) != SymSolver::Sat::Unsat;
}

/// Canonicalizes \p S and returns the id of its product node: an existing
/// node with the same key absorbs it by join (switching to widening after
/// WidenDelay joins, and re-enqueueing the node whenever the join changed
/// it), otherwise a fresh node is created and enqueued. NoNode only on the
/// node-budget trip.
unsigned SymChecker::getOrCreate(SymProdState S) {
  S.canonicalize();
  uint64_t K = S.keyHash();
  auto Range = Index.equal_range(K);
  for (auto It = Range.first; It != Range.second; ++It) {
    Node &N = Nodes[It->second];
    if (!N.St.sameKey(S))
      continue;
    bool Widen = N.Joins >= Opts.WidenDelay;
    ++N.Joins;
    ++Res.Joins;
    if (N.St.joinWith(S, Widen)) {
      if (Widen)
        ++Res.Widenings;
      ++N.Gen;
      N.Expanded = N.Saved = N.Dead = false;
      N.Families.clear();
      Work.push_back(It->second);
    }
    return It->second;
  }
  if (Nodes.size() >= Opts.MaxNodes) {
    Exhausted = true;
    noteTruncation(Cause, TruncationCause::StateBudget);
    return NoNode;
  }
  unsigned Id = static_cast<unsigned>(Nodes.size());
  Nodes.emplace_back();
  Nodes.back().St = std::move(S);
  Index.emplace(K, Id);
  Work.push_back(Id);
  ++Res.Nodes;
  return Id;
}

/// Builds the families of \p St0 — one per target transition (adversary
/// choice), each holding the source responses that discharge it. A family
/// left empty is an undischarged obligation: the node dies at prune time
/// unless it was quick-saved.
void SymChecker::buildFamilies(const SymProdState &St0,
                               std::vector<std::vector<unsigned>> &Fams) {
  auto pushFamily = [&](SymProdState W, const std::vector<SymLabel> &Ls) {
    Fams.emplace_back();
    if (!Ls.empty() && !matchLabels(W, Ls)) {
      noteFail(St0, "unmatched target label");
      return;
    }
    unsigned Id = getOrCreate(std::move(W));
    if (Id != NoNode)
      Fams.back().push_back(Id);
  };
  // The target steps to ⊥ (a may-UB class, a racy na-write, abort): the
  // successor's expansion demands a robust source ⊥.
  auto addBottom = [&](SymProdState W) {
    W.Tgt.St = ProgState::Status::Error;
    Fams.emplace_back();
    unsigned Id = getOrCreate(std::move(W));
    if (Id != NoNode)
      Fams.back().push_back(Id);
  };
  // Read variants of a target RMW: one for a relaxed read part, one per
  // permission/memory gain for an acquire read part. Gains are fresh
  // symbols written to the target memory here and shared with the source
  // at label-match time (identical acquire payloads).
  struct ReadVariant {
    SymProdState W;
    SymLabel RL;
    LocSet PermAfter;
  };
  auto rmwReadVariants = [&](const Instr &I) {
    std::vector<ReadVariant> Vs;
    if (I.RM == ReadMode::ACQ) {
      for (LocSet P2 : St0.Perm.supersetsWithin(Cfg.Universe)) {
        ReadVariant V{St0, SymLabel{SymLabel::AcqRead}, P2};
        V.RL.Loc = I.Loc;
        V.RL.V = freshSym(true);
        V.RL.P = St0.Perm;
        V.RL.P2 = P2;
        V.RL.F = St0.WTgt;
        for (unsigned Lc : P2.setMinus(St0.Perm).members()) {
          SymVal G = freshSym(true);
          V.RL.Vm.push_back({Lc, G});
          V.W.MemTgt[Lc] = G;
        }
        Vs.push_back(std::move(V));
      }
    } else {
      ReadVariant V{St0, SymLabel{SymLabel::RlxRead}, St0.Perm};
      V.RL.Loc = I.Loc;
      V.RL.V = freshSym(true);
      Vs.push_back(std::move(V));
    }
    return Vs;
  };

  const Instr &I = TgtCode[St0.Tgt.Pc];
  switch (I.Op) {
  case Instr::Opcode::Assign: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (!Ev.definitelyUB()) {
      SymProdState W = St0;
      W.Tgt.Regs[I.Reg] = Ev.V;
      ++W.Tgt.Pc;
      pushFamily(std::move(W), {});
    }
    break;
  }
  case Instr::Opcode::Jmp: {
    SymProdState W = St0;
    W.Tgt.Pc = I.TargetTrue;
    pushFamily(std::move(W), {});
    break;
  }
  case Instr::Opcode::Br: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    uint64_t CondId = Ev.V.Id;
    if (Ev.V.Abs.mayUndef()) {
      SymProdState W = St0;
      if (assumeBranch(W, I.E, W.Tgt.Regs, BranchClass::Undef))
        addBottom(std::move(W)); // branching on undef is UB
    }
    for (BranchClass C : {BranchClass::Truthy, BranchClass::Falsy}) {
      SymProdState W = St0;
      if (!assumeBranch(W, I.E, W.Tgt.Regs, C))
        continue;
      if (!classFeasible(W))
        continue;
      W.Tgt.Pc = (C == BranchClass::Truthy) ? I.TargetTrue : I.TargetFalse;
      branchSync(W, CondId, C);
      pushFamily(std::move(W), {});
    }
    break;
  }
  case Instr::Opcode::Load: {
    if (I.RM == ReadMode::NA) {
      SymProdState W = St0;
      W.Tgt.Regs[I.Reg] =
          St0.Perm.contains(I.Loc) ? St0.MemTgt[I.Loc] : SymVal::undef();
      ++W.Tgt.Pc;
      pushFamily(std::move(W), {});
    } else if (I.RM == ReadMode::RLX) {
      SymProdState W = St0;
      SymVal S = freshSym(true);
      W.Tgt.Regs[I.Reg] = S;
      ++W.Tgt.Pc;
      SymLabel L{SymLabel::RlxRead};
      L.Loc = I.Loc;
      L.V = S;
      pushFamily(std::move(W), {L});
    } else {
      for (LocSet P2 : St0.Perm.supersetsWithin(Cfg.Universe)) {
        SymProdState W = St0;
        SymVal S = freshSym(true);
        SymLabel L{SymLabel::AcqRead};
        L.Loc = I.Loc;
        L.V = S;
        L.P = St0.Perm;
        L.P2 = P2;
        L.F = St0.WTgt;
        for (unsigned Lc : P2.setMinus(St0.Perm).members()) {
          SymVal G = freshSym(true);
          L.Vm.push_back({Lc, G});
          W.MemTgt[Lc] = G;
        }
        W.Tgt.Regs[I.Reg] = S;
        ++W.Tgt.Pc;
        pushFamily(std::move(W), {L});
      }
    }
    break;
  }
  case Instr::Opcode::Store: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    if (I.WM == WriteMode::NA) {
      if (!St0.Perm.contains(I.Loc)) {
        addBottom(St0); // racy na-write: the only transition is to ⊥
        break;
      }
      SymProdState W = St0;
      W.MemTgt[I.Loc] = Ev.V;
      W.WTgt.insert(I.Loc);
      ++W.Tgt.Pc;
      pushFamily(std::move(W), {});
    } else if (I.WM == WriteMode::RLX) {
      SymProdState W = St0;
      ++W.Tgt.Pc;
      SymLabel L{SymLabel::RlxWrite};
      L.Loc = I.Loc;
      L.V = Ev.V;
      pushFamily(std::move(W), {L});
    } else {
      std::vector<std::pair<unsigned, SymVal>> Rel;
      for (unsigned Lc : St0.Perm.members())
        Rel.push_back({Lc, St0.MemTgt[Lc]});
      for (LocSet P2 : St0.Perm.subsets()) {
        SymProdState W = St0;
        ++W.Tgt.Pc;
        W.WTgt = LocSet::empty();
        SymLabel L{SymLabel::RelWrite};
        L.Loc = I.Loc;
        L.V = Ev.V;
        L.P = St0.Perm;
        L.P2 = P2;
        L.F = St0.WTgt;
        L.Vm = Rel;
        pushFamily(std::move(W), {L});
      }
    }
    break;
  }
  case Instr::Opcode::Cas: {
    SymEvalResult E2v = symEval(I.E2, St0.Tgt.Regs);
    SymEvalResult E3v = symEval(I.E3, St0.Tgt.Regs);
    if (E2v.MayUB || E3v.MayUB)
      addBottom(St0); // operand UB: Pending::Fail, unlabeled ⊥
    if (E2v.definitelyUB() || E3v.definitelyUB())
      break;
    for (ReadVariant &RV : rmwReadVariants(I)) {
      const SymVal S = RV.RL.V;
      // (a) The read value may be undef: the compare is UB.
      {
        SymProdState W = RV.W;
        W.Tgt.St = ProgState::Status::Error;
        SymLabel RL = RV.RL;
        RL.V = {S.Id, AbsDom::undef()};
        pushFamily(std::move(W), {RL});
      }
      // (b) The expected value may be undef: also UB.
      if (E2v.V.Abs.mayUndef()) {
        SymProdState W = RV.W;
        if (!E2v.V.Id || W.refineId(E2v.V.Id, AbsDom::undef())) {
          W.Tgt.St = ProgState::Status::Error;
          SymLabel RL = RV.RL;
          RL.V = {S.Id, Dom.Defined};
          pushFamily(std::move(W), {RL});
        }
      }
      AbsDom EDef = definedPart(E2v.V.Abs);
      // (c) Equal (both defined): the CAS writes E3.
      {
        SymProdState W = RV.W;
        AbsDom M = Dom.Defined.meet(EDef);
        bool Feasible = !M.isBottom();
        if (Feasible && E2v.V.Id)
          Feasible = W.refineId(E2v.V.Id, M);
        if (Feasible) {
          // Unify the read symbol with the expected value: same identity,
          // met fact — the correlation CAS success establishes.
          SymVal SRef = {E2v.V.Id ? E2v.V.Id : S.Id, M};
          SymLabel RL = RV.RL;
          RL.V = SRef;
          SymEvalResult N3 = symEval(I.E3, W.Tgt.Regs);
          if (!N3.definitelyUB()) {
            if (I.WM == WriteMode::REL) {
              std::vector<std::pair<unsigned, SymVal>> Rel;
              for (unsigned Lc : RV.PermAfter.members())
                Rel.push_back({Lc, W.MemTgt[Lc]});
              for (LocSet P2w : RV.PermAfter.subsets()) {
                SymProdState W2 = W;
                W2.Tgt.Regs[I.Reg] = SRef;
                ++W2.Tgt.Pc;
                W2.WTgt = LocSet::empty();
                SymLabel WL{SymLabel::RelWrite};
                WL.Loc = I.Loc;
                WL.V = N3.V;
                WL.P = RV.PermAfter;
                WL.P2 = P2w;
                WL.F = St0.WTgt;
                WL.Vm = Rel;
                pushFamily(std::move(W2), {RL, WL});
              }
            } else {
              SymProdState W2 = W;
              W2.Tgt.Regs[I.Reg] = SRef;
              ++W2.Tgt.Pc;
              SymLabel WL{SymLabel::RlxWrite};
              WL.Loc = I.Loc;
              WL.V = N3.V;
              pushFamily(std::move(W2), {RL, WL});
            }
          }
        }
      }
      // (d) Not equal (both defined): read label only. When the expected
      // value is a known constant, carve it out of the read symbol's fact
      // so the source's own CAS can prove its compare fails too.
      {
        SymProdState W = RV.W;
        bool Feasible = !EDef.isBottom();
        if (Feasible && E2v.V.Id && E2v.V.Abs.mayUndef())
          Feasible = W.refineId(E2v.V.Id, EDef);
        AbsDom SNe = Dom.Defined;
        if (Feasible && EDef.isSingleton()) {
          SNe = excludeConst(SNe, EDef.singleton());
          Feasible = !SNe.isBottom();
        }
        if (Feasible) {
          SymLabel RL = RV.RL;
          RL.V = {S.Id, SNe};
          W.Tgt.Regs[I.Reg] = RL.V;
          ++W.Tgt.Pc;
          pushFamily(std::move(W), {RL});
        }
      }
    }
    break;
  }
  case Instr::Opcode::Fadd: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    for (ReadVariant &RV : rmwReadVariants(I)) {
      const SymVal S = RV.RL.V;
      bool UB = false;
      SymVal N = symBinOp(BinOp::Add, S, Ev.V, UB);
      if (I.WM == WriteMode::REL) {
        std::vector<std::pair<unsigned, SymVal>> Rel;
        for (unsigned Lc : RV.PermAfter.members())
          Rel.push_back({Lc, RV.W.MemTgt[Lc]});
        for (LocSet P2w : RV.PermAfter.subsets()) {
          SymProdState W2 = RV.W;
          W2.Tgt.Regs[I.Reg] = S;
          ++W2.Tgt.Pc;
          W2.WTgt = LocSet::empty();
          SymLabel WL{SymLabel::RelWrite};
          WL.Loc = I.Loc;
          WL.V = N;
          WL.P = RV.PermAfter;
          WL.P2 = P2w;
          WL.F = St0.WTgt;
          WL.Vm = Rel;
          pushFamily(std::move(W2), {RV.RL, WL});
        }
      } else {
        SymProdState W2 = RV.W;
        W2.Tgt.Regs[I.Reg] = S;
        ++W2.Tgt.Pc;
        SymLabel WL{SymLabel::RlxWrite};
        WL.Loc = I.Loc;
        WL.V = N;
        pushFamily(std::move(W2), {RV.RL, WL});
      }
    }
    break;
  }
  case Instr::Opcode::Fence: {
    if (I.FM == FenceMode::ACQ) {
      for (LocSet P2 : St0.Perm.supersetsWithin(Cfg.Universe)) {
        SymProdState W = St0;
        SymLabel L{SymLabel::AcqFence};
        L.P = St0.Perm;
        L.P2 = P2;
        L.F = St0.WTgt;
        for (unsigned Lc : P2.setMinus(St0.Perm).members()) {
          SymVal G = freshSym(true);
          L.Vm.push_back({Lc, G});
          W.MemTgt[Lc] = G;
        }
        ++W.Tgt.Pc;
        pushFamily(std::move(W), {L});
      }
    } else if (I.FM == FenceMode::REL) {
      std::vector<std::pair<unsigned, SymVal>> Rel;
      for (unsigned Lc : St0.Perm.members())
        Rel.push_back({Lc, St0.MemTgt[Lc]});
      for (LocSet P2 : St0.Perm.subsets()) {
        SymProdState W = St0;
        ++W.Tgt.Pc;
        W.WTgt = LocSet::empty();
        SymLabel L{SymLabel::RelFence};
        L.P = St0.Perm;
        L.P2 = P2;
        L.F = St0.WTgt;
        L.Vm = Rel;
        pushFamily(std::move(W), {L});
      }
    } else {
      addBottom(St0); // acq-rel / sc fences are outside the fragment
    }
    break;
  }
  case Instr::Opcode::Choose: {
    SymProdState W = St0;
    SymVal S = freshSym(false);
    W.Tgt.Regs[I.Reg] = S;
    ++W.Tgt.Pc;
    SymLabel L{SymLabel::Choose};
    L.V = S;
    pushFamily(std::move(W), {L});
    break;
  }
  case Instr::Opcode::Freeze: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    if (Ev.V.Abs.mayDefined()) {
      SymProdState W = St0;
      AbsDom D = definedPart(Ev.V.Abs);
      if (!Ev.V.Id || W.refineId(Ev.V.Id, D)) {
        W.Tgt.Regs[I.Reg] = {Ev.V.Id, D};
        ++W.Tgt.Pc;
        pushFamily(std::move(W), {});
      }
    }
    if (Ev.V.Abs.mayUndef()) {
      SymProdState W = St0;
      if (!Ev.V.Id || W.refineId(Ev.V.Id, AbsDom::undef())) {
        SymVal S = freshSym(false);
        W.Tgt.Regs[I.Reg] = S;
        ++W.Tgt.Pc;
        SymLabel L{SymLabel::Choose};
        L.V = S;
        pushFamily(std::move(W), {L});
      }
    }
    break;
  }
  case Instr::Opcode::Print: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    SymProdState W = St0;
    ++W.Tgt.Pc;
    SymLabel L{SymLabel::Syscall};
    L.V = Ev.V;
    pushFamily(std::move(W), {L});
    break;
  }
  case Instr::Opcode::Return: {
    SymEvalResult Ev = symEval(I.E, St0.Tgt.Regs);
    if (Ev.MayUB)
      addBottom(St0);
    if (Ev.definitelyUB())
      break;
    SymProdState W = St0;
    W.Tgt.St = ProgState::Status::Done;
    W.Tgt.Ret = Ev.V;
    pushFamily(std::move(W), {});
    break;
  }
  case Instr::Opcode::Abort:
    addBottom(St0);
    break;
  }
}

/// Expands one node: quick-saves (robust source ⊥), the terminal check,
/// the fulfillment pre-check, then the families. Works on a copy of the
/// node's state — getOrCreate below may reallocate Nodes, and a self-loop
/// join may change the node mid-expansion (detected by the Gen snapshot;
/// the join re-enqueued it, so the stale results are simply dropped).
void SymChecker::expand(unsigned Id) {
  uint64_t Gen = Nodes[Id].Gen;
  SymProdState St = Nodes[Id].St;
  bool Saved = false, Dead = false;
  std::vector<std::vector<unsigned>> Fams;
  if (St.Tgt.St == ProgState::Status::Error) {
    Saved = robustBottom(St);
    Dead = !Saved;
    if (Dead)
      noteFail(St, "target ⊥ without a robust source ⊥");
  } else if (St.Tgt.St == ProgState::Status::Done) {
    SymProdState W = St;
    ChainEnd E = walkSrcChain(W);
    bool Ok = false;
    if (E == ChainEnd::Bottom) {
      Ok = true; // beh-failure: late source UB matches anything
    } else if (E == ChainEnd::Terminal) {
      Ok = retRefines(W) &&
           LocSet::fromRaw(W.WTgt.raw() | W.R.raw()).isSubsetOf(W.WSrc);
      if (Ok)
        for (unsigned Lc : Cfg.Universe.members())
          if (!definitelyRefines(W.MemTgt[Lc], W.MemSrc[Lc])) {
            Ok = false;
            break;
          }
    }
    if (!Ok)
      Ok = robustBottom(St);
    Saved = Ok;
    Dead = !Ok;
    if (Dead)
      noteFail(St, "unmatched terminal target");
  } else {
    if (robustBottom(St)) {
      Saved = true;
    } else {
      LocSet Need = LocSet::fromRaw(St.WTgt.raw() | St.R.raw());
      if (!robustFulfill(St, Need)) {
        Dead = true;
        noteFail(St, "unfulfillable commitment set");
      } else {
        buildFamilies(St, Fams);
      }
    }
  }
  if (Exhausted || Nodes[Id].Gen != Gen)
    return;
  Node &N = Nodes[Id];
  N.Expanded = true;
  N.Saved = Saved;
  N.Dead = Dead;
  N.Families = std::move(Fams);
}

/// Greatest-fixpoint prune, exactly the concrete checker's: kill every
/// unsaved node with a family whose options are all dead, to fixpoint.
/// What survives is a coinductive simulation certificate.
void SymChecker::prune(std::vector<char> &Alive) {
  Alive.assign(Nodes.size(), 1);
  for (size_t N = 0; N != Nodes.size(); ++N)
    Alive[N] = !Nodes[N].Dead;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t N = 0; N != Nodes.size(); ++N) {
      if (!Alive[N] || Nodes[N].Saved)
        continue;
      for (const std::vector<unsigned> &Fam : Nodes[N].Families) {
        bool Any = false;
        for (unsigned O : Fam)
          if (Alive[O]) {
            Any = true;
            break;
          }
        if (!Any) {
          Alive[N] = 0;
          Changed = true;
          break;
        }
      }
    }
  }
}

/// One root per initial ⟨P, F⟩ over the universe. The initial memory is
/// one fresh symbol per universe location, SHARED between the two sides —
/// the correlation Def 2.4's "same initial memory" provides. The symbol's
/// hull covers Domain ∪ {undef} (a superset for inexact domains, which
/// only adds obligations on valuations both sides share — sound).
void SymChecker::buildRoots() {
  unsigned NTgtRegs =
      static_cast<unsigned>(ProgState::initial(TgtP, TgtTid).regs().size());
  unsigned NSrcRegs =
      static_cast<unsigned>(ProgState::initial(SrcP, SrcTid).regs().size());
  for (LocSet P : Cfg.Universe.subsets()) {
    for (LocSet F : Cfg.Universe.subsets()) {
      SymProdState S;
      S.Tgt.Regs.assign(NTgtRegs, SymVal::ofConst(0));
      S.Src.Regs.assign(NSrcRegs, SymVal::ofConst(0));
      S.MemTgt.assign(NumLocs, SymVal::ofConst(0));
      S.MemSrc.assign(NumLocs, SymVal::ofConst(0));
      for (unsigned Lc : Cfg.Universe.members()) {
        SymVal M = freshSym(true);
        S.MemTgt[Lc] = M;
        S.MemSrc[Lc] = M;
      }
      S.Perm = P;
      S.WTgt = F;
      S.WSrc = F;
      unsigned Id = getOrCreate(std::move(S));
      if (Id == NoNode)
        return;
      Roots.push_back(Id);
    }
  }
  Res.InitialStates = static_cast<unsigned>(Roots.size());
}

void SymChecker::run() {
  buildRoots();
  while (!Work.empty() && !Exhausted) {
    if (Cfg.Guard) {
      TruncationCause C = Cfg.Guard->checkpoint();
      if (C != TruncationCause::None) {
        Exhausted = true;
        noteTruncation(Cause, C);
        break;
      }
    }
    unsigned Id = Work.front();
    Work.pop_front();
    if (Nodes[Id].Expanded)
      continue;
    expand(Id);
  }
  if (Exhausted)
    return;
  std::vector<char> Alive;
  prune(Alive);
  AllAlive = true;
  for (unsigned Rt : Roots)
    if (!Alive[Rt]) {
      AllAlive = false;
      break;
    }
  if (!AllAlive && FailNote.empty())
    FailNote = "dead root product state";
}

//===----------------------------------------------------------------------===//
// Memo key
//===----------------------------------------------------------------------===//

Fp128 symKey(const Program &SrcP, unsigned SrcTid, const Program &TgtP,
             unsigned TgtTid, const SeqConfig &Cfg, const SymOptions &Opts,
             const char *SolverName) {
  Fp128 K = fpSeed(0x53594d52ULL); // "SYMR"
  K = fpCombine(K, memo::fingerprintProgram(SrcP));
  K = fpCombine(K, memo::fingerprintProgram(TgtP));
  fpMix(K, SrcTid);
  fpMix(K, TgtTid);
  fpMix(K, Cfg.Domain.values().size());
  for (int64_t V : Cfg.Domain.values())
    fpMix(K, static_cast<uint64_t>(V));
  fpMix(K, Cfg.Universe.raw());
  fpMix(K, Cfg.StepBudget);
  fpMix(K, Cfg.MaxBehaviors);
  fpMix(K, Opts.MaxNodes);
  fpMix(K, Opts.WidenDelay);
  fpMix(K, Opts.GameBudget);
  fpMix(K, Opts.ChainBudget);
  fpMix(K, Opts.ConfirmUnsound ? 1 : 0);
  fpMixBytes(K, SolverName, std::strlen(SolverName));
  fpMix(K, Cfg.ConfigSalt);
  return K.sealed();
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

SymResult pseq::sym::checkSymRefinement(const Program &SrcP, unsigned SrcTid,
                                        const Program &TgtP, unsigned TgtTid,
                                        SeqConfig Cfg, SymOptions Opts) {
  assert(sameLayout(SrcP, TgtP) && "refinement needs a shared memory layout");
  auto Start = std::chrono::steady_clock::now();
  Cfg = resolveUniverse(std::move(Cfg), SrcP, SrcTid, TgtP, TgtTid);
  obs::Telemetry *T = Cfg.Telem;
  obs::ScopedSpan Span(T ? T->Spans : nullptr, "sym.check");
  if (T)
    T->Counters.add("sym.checks");
  if (!Opts.GameBudget)
    Opts.GameBudget = Cfg.StepBudget * 256;
  if (!Opts.ChainBudget)
    Opts.ChainBudget = Cfg.StepBudget;
  std::unique_ptr<SymSolver> Owned;
  SymSolver *Solver = Opts.Solver;
  if (!Solver) {
    Owned = makeSmtSolver();
    if (!Owned)
      Owned = makeBuiltinSolver();
    Solver = Owned.get();
  }
  auto ElapsedMs = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  Fp128 Key;
  if (Cfg.Memo) {
    Key = symKey(SrcP, SrcTid, TgtP, TgtTid, Cfg, Opts, Solver->name());
    if (std::shared_ptr<const SymResult> Hit = Cfg.Memo->lookupAs<SymResult>(
            memo::MemoContext::Table::SymVerdicts, Key)) {
      Cfg.Memo->noteHit();
      if (T) {
        T->Counters.add("sym.memo.hits");
        T->Counters.add(std::string("sym.") + symVerdictName(Hit->Verdict));
      }
      SymResult R = *Hit;
      R.ElapsedMs = ElapsedMs();
      return R;
    }
    Cfg.Memo->noteMiss();
  }
  SymResult Res;
  SymChecker C(SrcP, SrcTid, TgtP, TgtTid, Cfg, Opts, *Solver, Res);
  C.run();
  if (C.Exhausted) {
    Res.Verdict = SymVerdict::Inconclusive;
    Res.Cause =
        C.Cause == TruncationCause::None ? TruncationCause::StateBudget
                                         : C.Cause;
    Res.Witness = C.FailNote;
  } else if (C.AllAlive) {
    Res.Verdict = SymVerdict::Sound;
  } else if (Opts.ConfirmUnsound) {
    // A dead root alone never leaves the engine: symbolic negatives are
    // only reported with a concrete counterexample from the enumerative
    // lane, so the two lanes cannot disagree by construction.
    if (T)
      T->Counters.add("sym.confirm.runs");
    RefinementResult RR =
        checkAdvancedRefinement(SrcP, SrcTid, TgtP, TgtTid, Cfg);
    Res.ConfirmStates = RR.SrcBehaviors + RR.TgtBehaviors;
    if (!RR.Holds) {
      Res.Verdict = SymVerdict::Unsound;
      Res.Witness = RR.Counterexample;
    } else {
      Res.Verdict = SymVerdict::Inconclusive;
      Res.Cause = TruncationCause::None; // pure imprecision
      Res.Witness = C.FailNote;
    }
  } else {
    Res.Verdict = SymVerdict::Inconclusive;
    Res.Cause = TruncationCause::None;
    Res.Witness = C.FailNote;
  }
  Res.ElapsedMs = ElapsedMs();
  if (T) {
    T->Counters.add(std::string("sym.") + symVerdictName(Res.Verdict));
    T->Counters.add("sym.nodes", Res.Nodes);
    T->Counters.add("sym.joins", Res.Joins);
    T->Counters.add("sym.widenings", Res.Widenings);
    T->Counters.add("sym.solver.queries", Res.SolverQueries);
  }
  if (Cfg.Memo) {
    auto Val = std::make_shared<SymResult>(Res);
    Val->ElapsedMs = 0.0; // stored values are pure functions of the key
    Cfg.Memo->insertAs<SymResult>(memo::MemoContext::Table::SymVerdicts, Key,
                                  std::move(Val));
  }
  return Res;
}

SymResult pseq::sym::checkSymRefinement(const Program &SrcP,
                                        const Program &TgtP, SeqConfig Cfg,
                                        SymOptions Opts) {
  return checkSymRefinement(SrcP, 0, TgtP, 0, std::move(Cfg), std::move(Opts));
}
