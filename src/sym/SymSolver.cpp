//===- sym/SymSolver.cpp - Pluggable path-condition solvers ---------------===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "sym/SymSolver.h"

#include <cstdio>
#include <cstdlib>

using namespace pseq;
using namespace pseq::sym;
using analysis::AbsDom;

SymSolver::~SymSolver() = default;

//===----------------------------------------------------------------------===//
// Built-in interval/congruence decision procedure
//===----------------------------------------------------------------------===//

namespace {

/// Exact for the engine's constraint language: every conjunct constrains a
/// single identity, and the engine has already met repeated constraints on
/// the same identity into one AbsDom — so the conjunction is satisfiable
/// iff no conjunct denotes the empty set.
class BuiltinSolver final : public SymSolver {
public:
  Sat checkSat(const std::vector<SymConstraint> &Cs) override {
    for (const SymConstraint &C : Cs)
      if (C.Dom.isBottom())
        return Sat::Unsat;
    return Sat::Sat;
  }

  bool model(const std::vector<SymConstraint> &Cs, uint64_t Id,
             int64_t &Out) override {
    for (const SymConstraint &C : Cs) {
      if (C.Id != Id)
        continue;
      if (!C.Dom.mayDefined())
        return false;
      // Smallest defined member: the first value ≥ lo the congruence
      // admits, computed directly (no scan; mod can be huge).
      int64_t Lo = C.Dom.itv().lo(), Hi = C.Dom.itv().hi();
      const analysis::Congruence &G = C.Dom.cng();
      if (G.isEmpty())
        return false;
      __int128 V = Lo;
      if (G.isSingleton()) {
        V = G.rem();
      } else if (!G.isTop()) {
        __int128 M = static_cast<__int128>(G.mod());
        __int128 D = (static_cast<__int128>(G.rem()) - V) % M;
        if (D < 0)
          D += M;
        V += D;
      }
      if (V < Lo || V > Hi)
        return false;
      return Out = static_cast<int64_t>(V), true;
    }
    return Out = 0, true; // unconstrained: any value models it
  }

  const char *name() const override { return "builtin"; }
};

} // namespace

std::unique_ptr<SymSolver> pseq::sym::makeBuiltinSolver() {
  return std::make_unique<BuiltinSolver>();
}

//===----------------------------------------------------------------------===//
// SMT-LIB2 emission (shared with tests; used by the optional binding)
//===----------------------------------------------------------------------===//

std::string pseq::sym::toSmtLib2(const std::vector<SymConstraint> &Cs) {
  auto Num = [](int64_t V) {
    if (V >= 0)
      return std::to_string(V);
    // Negate via uint64 so INT64_MIN cannot overflow.
    uint64_t Mag = uint64_t(-(V + 1)) + 1;
    return "(- " + std::to_string(Mag) + ")";
  };
  std::string S = "(set-logic QF_LIA)\n";
  for (const SymConstraint &C : Cs) {
    std::string X = "s" + std::to_string(C.Id);
    S += "(declare-const " + X + " Int)\n";
    // may-undef is modeled as a per-symbol boolean; a definitely-undef
    // constraint leaves the integer unconstrained but satisfiable.
    if (C.Dom.isBottom()) {
      S += "(assert false)\n";
      continue;
    }
    if (!C.Dom.mayDefined())
      continue; // undef-only: no integer constraint
    const analysis::Interval &I = C.Dom.itv();
    if (!I.isFull()) {
      S += "(assert (>= " + X + " " + Num(I.lo()) + "))\n";
      S += "(assert (<= " + X + " " + Num(I.hi()) + "))\n";
    }
    const analysis::Congruence &G = C.Dom.cng();
    if (!G.isTop() && !G.isEmpty()) {
      if (G.isSingleton())
        S += "(assert (= " + X + " " + Num(G.rem()) + "))\n";
      else
        S += "(assert (= (mod " + X + " " + std::to_string(G.mod()) + ") " +
             Num(G.rem()) + "))\n";
    }
  }
  S += "(check-sat)\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Optional SMT binding (PSEQ_ENABLE_SMT)
//===----------------------------------------------------------------------===//

bool pseq::sym::smtBindingCompiled() {
#ifdef PSEQ_ENABLE_SMT
  return true;
#else
  return false;
#endif
}

#ifdef PSEQ_ENABLE_SMT

namespace {

/// Pipes the SMT-LIB2 rendering of each query to the binary named by
/// PSEQ_SMT_SOLVER (which must read a script on stdin and print sat/unsat,
/// e.g. `z3 -in` or `cvc5 --lang smt2`). Every failure mode returns
/// Unknown so the engine's built-in fallback decides.
class SmtSolver final : public SymSolver {
  std::string Cmd;

public:
  explicit SmtSolver(std::string Cmd) : Cmd(std::move(Cmd)) {}

  Sat checkSat(const std::vector<SymConstraint> &Cs) override {
    std::string Script = toSmtLib2(Cs);
    std::string Full = "printf '%s' '";
    for (char C : Script)
      Full += C == '\'' ? std::string("'\\''") : std::string(1, C);
    Full += "' | " + Cmd + " 2>/dev/null";
    FILE *R = popen(Full.c_str(), "r");
    if (!R)
      return Sat::Unknown;
    char Buf[64] = {};
    size_t N = fread(Buf, 1, sizeof(Buf) - 1, R);
    pclose(R);
    std::string Out(Buf, N);
    if (Out.find("unsat") != std::string::npos)
      return Sat::Unsat;
    if (Out.find("sat") != std::string::npos)
      return Sat::Sat;
    return Sat::Unknown;
  }

  bool model(const std::vector<SymConstraint> &Cs, uint64_t Id,
             int64_t &Out) override {
    // Model extraction stays on the exact built-in procedure.
    return BuiltinSolver().model(Cs, Id, Out);
  }

  const char *name() const override { return "smt"; }
};

} // namespace

std::unique_ptr<SymSolver> pseq::sym::makeSmtSolver() {
  const char *Cmd = std::getenv("PSEQ_SMT_SOLVER");
  if (!Cmd || !*Cmd)
    return nullptr;
  return std::make_unique<SmtSolver>(Cmd);
}

#else

std::unique_ptr<SymSolver> pseq::sym::makeSmtSolver() { return nullptr; }

#endif // PSEQ_ENABLE_SMT
