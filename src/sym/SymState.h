//===- sym/SymState.h - Symbolic SEQ product states -------------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State representation of the symbolic refinement backend (src/sym): one
/// product of a target and a source SEQ state whose value cells are
/// *symbolic* — an `analysis::AbsDom` fact (interval × congruence ×
/// may-undef) plus an optional value identity. Two cells carrying the same
/// nonzero identity hold the *same* value in every concretization; that is
/// how the backend tracks the target/source correlations (a read bound on
/// both sides, an initial memory shared by both sides) that the matching
/// rules of Fig. 2 need, without enumerating concrete values.
///
/// Identities are deliberately weak: they are erased whenever the abstract
/// fact already pins the cell (singletons, definite undef), renamed to a
/// canonical 1,2,3,… stream at every node creation, and intersected at
/// join points (a correlation survives a join only if it holds on both
/// incoming states). Joins with pair-consistent renaming plus AbsDom
/// widening are what make spin loops converge to a finite product.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SYM_SYMSTATE_H
#define PSEQ_SYM_SYMSTATE_H

#include "analysis/AbstractValue.h"
#include "lang/ProgState.h"
#include "support/LocSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pseq::sym {

/// One symbolic value cell: an abstract fact plus an optional identity.
/// Id == 0 means "no identity" — the cell is unrelated to every other
/// cell. A nonzero Id names a single (unknown) value: all cells carrying
/// it are equal in every concretization the state denotes.
struct SymVal {
  uint64_t Id = 0;
  analysis::AbsDom Abs; // ⊥ by default

  static SymVal ofConst(int64_t V) { return {0, analysis::AbsDom::ofConst(V)}; }
  static SymVal undef() { return {0, analysis::AbsDom::undef()}; }
  static SymVal fromValue(Value V) {
    return V.isUndef() ? undef() : ofConst(V.get());
  }

  bool operator==(const SymVal &O) const { return Id == O.Id && Abs == O.Abs; }
  bool operator!=(const SymVal &O) const { return !(*this == O); }
  std::string str() const;
};

/// Must-equality: true only when every concretization gives both cells the
/// same value (shared identity, equal singletons, or both definitely
/// undef). False means "unknown", not "different".
bool definitelyEqual(const SymVal &A, const SymVal &B);

/// Must-disequality: no concretization gives both cells the same *defined*
/// value and neither may be undef (undef ⊑-matches anything, so it never
/// witnesses disequality). Used to resolve CAS compares definitively.
bool definitelyNotEqual(const SymVal &A, const SymVal &B);

/// Must-refinement for the paper's v ⊑ v' order: every concretization of
/// \p Tgt refines the corresponding concretization of \p Src — the source
/// is definitely undef, or the two are definitely equal.
bool definitelyRefines(const SymVal &Tgt, const SymVal &Src);

/// Hash of one cell (identity + abstract fact), for game memo keys.
uint64_t hashSymVal(const SymVal &V);

/// One side's thread state: σ with symbolic registers.
struct SymThread {
  unsigned Pc = 0;
  ProgState::Status St = ProgState::Status::Running;
  std::vector<SymVal> Regs;
  SymVal Ret; // meaningful when St == Done

  bool operator==(const SymThread &O) const {
    return Pc == O.Pc && St == O.St && Regs == O.Regs && Ret == O.Ret;
  }
};

/// The product of one target and one source SEQ state, as abstracted by a
/// node of the symbolic simulation. The permission set P is shared: the
/// advanced matching forces equal P/P' components on every acquire/release
/// label and nothing else moves P, so the two sides' permission sets are
/// equal at every reachable product point. Written sets and memories can
/// diverge (non-atomics run unlabeled) and stay per-side. R is Fig. 2's
/// commitment set.
struct SymProdState {
  SymThread Tgt, Src;
  std::vector<SymVal> MemTgt, MemSrc; // indexed by location id
  LocSet Perm;                        // shared P
  LocSet WTgt, WSrc;                  // per-side F
  LocSet R;                           // commitment set

  /// The concrete node key (everything except the abstract cells): states
  /// with equal keys are joined into one product node.
  uint64_t keyHash() const;
  bool sameKey(const SymProdState &O) const;

  /// Full structural hash, for game memo keys (call on canonical states).
  uint64_t hash() const;

  /// Renames identities to 1,2,3,… in first-occurrence order of the
  /// canonical cell traversal and erases identities on cells the abstract
  /// fact already pins (singleton / definitely-undef / ⊥ cells, whose
  /// equalities the facts themselves witness). Two states describing the
  /// same correlations become structurally equal — the convergence device
  /// for loops.
  void canonicalize();

  /// Joins \p O (canonical, same key) into this state (canonical):
  /// abstract facts join pointwise (widen when \p Widen), identities are
  /// renamed pair-consistently so exactly the correlations present in
  /// both states survive. Re-canonicalizes. \returns true when this state
  /// changed (the owning node must then re-expand).
  bool joinWith(const SymProdState &O, bool Widen);

  /// Meets every cell carrying identity \p Id with \p Fact (all such cells
  /// hold the same value, so a fact learned about one holds for all).
  /// \returns false when some cell becomes ⊥ — the refinement describes an
  /// infeasible class and the caller must drop it.
  bool refineId(uint64_t Id, const analysis::AbsDom &Fact);

  bool operator==(const SymProdState &O) const;
  std::string str(const std::vector<std::string> *LocNames = nullptr) const;

  /// Canonical traversal: target regs, target ret, source regs, source
  /// ret, target memory, source memory. A Ret cell is visited only once
  /// its thread is Done — before that it is a default ⊥ placeholder, and
  /// treating it as a live cell would make every Running state look
  /// infeasible. Statuses are part of the product key, so two states with
  /// equal keys always agree on which cells the traversal visits.
  template <typename Fn> void forEachCell(Fn F) {
    for (SymVal &V : Tgt.Regs)
      F(V);
    if (Tgt.St == ProgState::Status::Done)
      F(Tgt.Ret);
    for (SymVal &V : Src.Regs)
      F(V);
    if (Src.St == ProgState::Status::Done)
      F(Src.Ret);
    for (SymVal &V : MemTgt)
      F(V);
    for (SymVal &V : MemSrc)
      F(V);
  }
  template <typename Fn> void forEachCell(Fn F) const {
    const_cast<SymProdState *>(this)->forEachCell(
        [&](SymVal &V) { F(static_cast<const SymVal &>(V)); });
  }
};

/// Allocator for fresh value identities, one per engine run. Composite
/// identities (deterministic expression fingerprints) live in the upper
/// half of the id space so they can never collide with the counter.
class SymIdGen {
  uint64_t Next = 1;

public:
  uint64_t fresh() { return Next++; }
};

/// Result of symbolically evaluating an expression.
struct SymEvalResult {
  SymVal V;
  bool MayUB = false; ///< some concretization divides by zero/undef
  /// Every concretization faults: the step definitely goes to ⊥.
  bool definitelyUB() const { return MayUB && V.Abs.isBottom(); }
};

/// Abstract interpretation of \p E over the symbolic register file,
/// mirroring Expr::eval's undef/UB discipline via analysis::absBinOp.
/// Results that are not pinned by their abstract fact get a *composite*
/// identity — a deterministic fingerprint of (operator, operand
/// identities/constants) — so the same expression over the same operands
/// evaluates to the same identity on both sides of the product.
SymEvalResult symEval(const Expr *E, const std::vector<SymVal> &Regs);

/// One abstract binary operation with composite-identity tracking (the
/// building block of symEval; exposed for the engine's RMW transfer).
SymVal symBinOp(BinOp Op, const SymVal &L, const SymVal &R, bool &MayUB);

/// The three concretization classes of a branch condition.
enum class BranchClass { Truthy, Falsy, Undef };

/// Restricts \p Cond to \p C: Truthy drops undef and trims a boundary 0,
/// Falsy pins {0}, Undef keeps only undef. ⊥ result = infeasible class.
analysis::AbsDom restrictToClass(const analysis::AbsDom &Cond, BranchClass C);

/// Applies the class-\p C assumption on branch condition \p E (evaluated
/// over \p Regs) to the whole product state: the condition's identity is
/// refined id-wide, and one level of comparison patterns (reg ⋈ constant)
/// refines the compared operand. \returns false when the class is
/// infeasible under the current facts (caller drops it). Sound to apply
/// partially — every refinement only shrinks the concretization set of a
/// class that, by construction, the refined fact over-approximates.
bool assumeBranch(SymProdState &St, const Expr *E,
                  const std::vector<SymVal> &Regs, BranchClass C);

} // namespace pseq::sym

#endif // PSEQ_SYM_SYMSTATE_H
