//===- sym/SymSolver.h - Pluggable path-condition solvers -------*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver seam of the symbolic refinement backend. The engine reduces
/// every path condition to a conjunction of per-identity domain
/// constraints (interval × congruence × may-undef, one per symbolic
/// value); a SymSolver decides satisfiability of such a conjunction and
/// produces model values for witnesses.
///
/// Two implementations:
///  * the built-in interval/congruence decision procedure — exact for the
///    constraint language the engine emits (each conjunct constrains one
///    identity, so the conjunction is satisfiable iff no conjunct is ⊥),
///    dependency-free, and the default;
///  * an external SMT binding (makeSmtSolver), compiled only when the
///    PSEQ_ENABLE_SMT CMake option is ON: constraints are emitted as
///    SMT-LIB2 text and piped to the solver binary named by the
///    PSEQ_SMT_SOLVER environment variable. Any failure (flag off, no
///    binary, malformed reply) degrades to Unknown and the engine falls
///    back to the built-in answer, so enabling the flag can only refine
///    results, never change soundness.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_SYM_SYMSOLVER_H
#define PSEQ_SYM_SYMSOLVER_H

#include "sym/SymState.h"

#include <memory>
#include <string>
#include <vector>

namespace pseq::sym {

/// One conjunct: identity \p Id ranges over \p Dom.
struct SymConstraint {
  uint64_t Id = 0;
  analysis::AbsDom Dom;
};

/// Decision interface for conjunctions of domain constraints.
class SymSolver {
public:
  enum class Sat { Sat, Unsat, Unknown };

  virtual ~SymSolver();

  /// Satisfiability of the conjunction ⋀ (Cs[i].Id ∈ Cs[i].Dom).
  virtual Sat checkSat(const std::vector<SymConstraint> &Cs) = 0;

  /// Binds \p Out to a concrete defined value of \p Id under \p Cs;
  /// false when \p Id may only be undef (or the conjunction is unsat).
  virtual bool model(const std::vector<SymConstraint> &Cs, uint64_t Id,
                     int64_t &Out) = 0;

  /// Stable label for telemetry and memo partitioning.
  virtual const char *name() const = 0;
};

/// The built-in interval/congruence decision procedure.
std::unique_ptr<SymSolver> makeBuiltinSolver();

/// The optional SMT binding; null when PSEQ_ENABLE_SMT is off or no
/// solver binary is configured (callers fall back to the built-in).
std::unique_ptr<SymSolver> makeSmtSolver();

/// True when this build carries the SMT binding (PSEQ_ENABLE_SMT=ON).
bool smtBindingCompiled();

/// Renders \p Cs as an SMT-LIB2 script (declare-const + range/congruence
/// asserts + check-sat). Exposed for tests; the SMT binding pipes exactly
/// this text to the external solver.
std::string toSmtLib2(const std::vector<SymConstraint> &Cs);

} // namespace pseq::sym

#endif // PSEQ_SYM_SYMSOLVER_H
