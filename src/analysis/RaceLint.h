//===- analysis/RaceLint.h - Static race & access-mode analysis -*- C++ -*-===//
//
// Part of the pseq project, reproducing "Sequential Reasoning for Optimizing
// Compilers under Weak Memory Concurrency" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive static analyzer over the WHILE language. Per thread it
/// computes may/must access footprints (location × mode × read/write) by
/// abstract interpretation of the Stmt/Expr trees, approximates the
/// happens-before relation from release/acquire message-passing edges, and
/// derives one of three whole-program verdicts:
///
///  * RaceFree        — every cross-thread conflicting access pair on a
///                      non-atomic-mode access is provably ordered by an
///                      acquire-read-of-release-write edge (or one side is
///                      statically unreachable);
///  * PotentiallyRacy — some pair could not be discharged; the report
///                      carries a concrete witness (two statements, the
///                      location, both access modes);
///  * AtomicsOnly     — the program performs no non-atomic-mode access at
///                      all (race transitions are impossible by mode).
///
/// The verdicts feed three consumers: the PS^na explorer skips valueless
/// NAMsg race-marker generation when the verdict is not PotentiallyRacy
/// (see DESIGN.md "Static race analysis" for the soundness argument), the
/// validator records the source verdict as the DRF justification for the
/// sequential-reasoning fast path, and the adequacy/fuzz harnesses
/// cross-validate the static verdict against the dynamic race oracle.
///
//===----------------------------------------------------------------------===//

#ifndef PSEQ_ANALYSIS_RACELINT_H
#define PSEQ_ANALYSIS_RACELINT_H

#include "lang/Program.h"
#include "obs/Telemetry.h"
#include "support/LocSet.h"

#include <optional>
#include <string>
#include <vector>

namespace pseq::analysis {

/// The whole-program race verdict.
enum class RaceVerdict {
  RaceFree,        ///< proved: no race transition can fire
  PotentiallyRacy, ///< some conflicting pair could not be discharged
  AtomicsOnly      ///< no non-atomic-mode access exists at all
};

const char *raceVerdictName(RaceVerdict V);

/// A must-fact attached to a program point: on every path reaching the
/// point, an acquire-mode read of location \c Loc observed value \c Val
/// (and the observing register has not been clobbered since the test that
/// established the fact).
struct Fact {
  unsigned Loc = 0;
  int64_t Val = 0;

  bool operator==(const Fact &O) const { return Loc == O.Loc && Val == O.Val; }
  bool operator<(const Fact &O) const {
    return Loc != O.Loc ? Loc < O.Loc : Val < O.Val;
  }
};

/// One statically-reachable shared-memory access site.
struct AccessSite {
  const Stmt *S = nullptr;
  unsigned Tid = 0;
  unsigned Loc = 0;
  bool IsRead = false;
  bool IsWrite = false;
  bool IsRmw = false;
  ReadMode RM = ReadMode::NA;
  WriteMode WM = WriteMode::NA;
  /// True when the site executes on every terminating path of its thread
  /// (not nested under an unresolved branch or a loop).
  bool Must = false;
  /// Structural position for the intra-thread may-follow order (see
  /// mayFollowPath). One element per enclosing Seq/If/While edge.
  std::vector<uint32_t> Path;
  /// Must-facts holding when the site executes.
  std::vector<Fact> Facts;
  /// The written value when statically known (writes only); nullopt = ⊤.
  std::optional<Value> WVal;
};

/// Per-thread access footprint.
struct ThreadFootprint {
  LocSet MayRead, MayWrite;   ///< any mode
  LocSet MustRead, MustWrite; ///< on every terminating path
  LocSet NaRead, NaWrite;     ///< non-atomic-MODE accesses
  std::vector<AccessSite> Sites;
};

/// A concrete undischarged conflicting pair. \c A is always a write.
struct RaceWitness {
  unsigned TidA = 0, TidB = 0;
  const Stmt *StmtA = nullptr, *StmtB = nullptr;
  unsigned Loc = 0;

  std::string str(const Program &P) const;
};

/// The full analysis result.
struct RaceReport {
  RaceVerdict Verdict = RaceVerdict::PotentiallyRacy;
  std::optional<RaceWitness> Witness; ///< set iff PotentiallyRacy
  std::vector<ThreadFootprint> Threads;
  uint64_t PairsChecked = 0;
  uint64_t PairsDischarged = 0;

  /// True when the PS^na explorer may omit valueless NAMsg race markers:
  /// either no race transition can fire (RaceFree) or no non-atomic-mode
  /// access exists to observe one (AtomicsOnly).
  bool skipNaMarkers() const { return Verdict != RaceVerdict::PotentiallyRacy; }

  std::string str(const Program &P) const;
  std::string json(const Program &P) const;
};

/// Intra-thread structural order used by the happens-before approximation:
/// may an execution of the site at \p A occur strictly after an execution
/// of the site at \p B? Conservative (returns true when unsure); exposed
/// for unit tests.
bool mayFollowPath(const std::vector<uint32_t> &A,
                   const std::vector<uint32_t> &B);

/// Runs the analyzer. Deterministic; O(sites²) in the worst case, which
/// for this repo's programs is microseconds. Emits analysis.* counters
/// through \p Telem when non-null.
RaceReport analyzeRaces(const Program &P, obs::Telemetry *Telem = nullptr);

} // namespace pseq::analysis

#endif // PSEQ_ANALYSIS_RACELINT_H
